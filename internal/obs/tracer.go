package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Attestation verb names the tracer counts (Tracer.Verb).
const (
	VerbVerify = "verify"
	VerbRotate = "rotate"
	VerbRevoke = "revoke"
)

// Anomaly is one flight-recorder dump trigger: the first revocation,
// the first shed frame, a rollout abort. The tracer snapshots every
// shard's flight-recorder ring at trigger time, giving the operator the
// admission timeline that led up to the event.
type Anomaly struct {
	Kind   string
	Detail string
	// Flight holds the per-shard ring snapshots (oldest-first), keyed by
	// shard name.
	Flight map[string][]FlightEvent
}

// Tracer is the fleet-level telemetry root: it owns the per-device
// sampling decision, the sampled devices' trace contexts, the per-shard
// flight recorders, the attestation verb counters and the anomaly log.
// A nil *Tracer disables telemetry entirely — every method no-ops — so
// the fleet threads it unconditionally.
type Tracer struct {
	every int

	mu        sync.Mutex
	devices   []*TraceContext
	unsampled int
	verbs     map[string]uint64
	flushes   map[string]uint64
	flights   map[string]*FlightRecorder
	anomalies []Anomaly
	seen      map[string]bool
}

// NewTracer starts a tracer sampling 1 in every devices (<=1 traces
// everything).
func NewTracer(sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{
		every:   sampleEvery,
		verbs:   make(map[string]uint64),
		flushes: make(map[string]uint64),
		flights: make(map[string]*FlightRecorder),
		seen:    make(map[string]bool),
	}
}

// SampleEvery returns the sampling rate (0 on a nil tracer).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return t.every
}

// Device decides the device's sampling fate from its trace seed
// (core.DeriveSeed(root, SaltTrace, i)) and returns its trace context —
// nil for sampled-out devices, which is precisely the zero-cost path.
func (t *Tracer) Device(id, tenant string, seed uint64) *TraceContext {
	if t == nil {
		return nil
	}
	if !Sampled(seed, t.every) {
		t.mu.Lock()
		t.unsampled++
		t.mu.Unlock()
		return nil
	}
	tc := newTraceContext(id, tenant)
	t.mu.Lock()
	t.devices = append(t.devices, tc)
	t.mu.Unlock()
	return tc
}

// Verb counts one attestation-protocol verb (verify, rotate, revoke).
func (t *Tracer) Verb(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.verbs[name]++
	t.mu.Unlock()
}

// Flushes folds scheduler flush counts (keyed by flush reason:
// full/age/idle/drain) into the tracer. The batch scheduler reports its
// totals once at drain time rather than per flush, so the tracer holds
// a plain additive map like the verb counters.
func (t *Tracer) Flushes(byReason map[string]uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, n := range byReason {
		t.flushes[k] += n
	}
}

// Flight returns the shard's flight recorder, creating it (with
// DefaultFlightCap) on first use. The recorder self-triggers the
// first-shed anomaly.
func (t *Tracer) Flight(shard string) *FlightRecorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.flights[shard]
	if !ok {
		f = newFlightRecorder(shard, DefaultFlightCap, func() {
			t.Anomaly("first-shed", fmt.Sprintf("shard %s shed its first frame", shard))
		})
		t.flights[shard] = f
	}
	return f
}

// Anomaly records one anomaly, deduplicated by kind (only the *first*
// revocation, shed or abort dumps the recorders), and snapshots every
// shard's flight-recorder ring.
func (t *Tracer) Anomaly(kind, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seen[kind] {
		return
	}
	t.seen[kind] = true
	a := Anomaly{Kind: kind, Detail: detail, Flight: make(map[string][]FlightEvent, len(t.flights))}
	for name, f := range t.flights {
		a.Flight[name] = f.Events()
	}
	t.anomalies = append(t.anomalies, a)
}

// Anomalies snapshots the anomaly log in trigger order.
func (t *Tracer) Anomalies() []Anomaly {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Anomaly(nil), t.anomalies...)
}

// Summary folds everything the tracer observed into a Telemetry block:
// per-stage latency histograms and verdict counters from the sampled
// spans, queue-depth histograms from the flight recorders, verb
// counters and anomalies. Traces are sorted by device ID so the
// summary — and the dump rendered from it — is deterministic.
func (t *Tracer) Summary() (*Telemetry, error) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	devices := append([]*TraceContext(nil), t.devices...)
	unsampled := t.unsampled
	verbs := make(map[string]uint64, len(t.verbs))
	for k, v := range t.verbs {
		verbs[k] = v
	}
	flushes := make(map[string]uint64, len(t.flushes))
	for k, v := range t.flushes {
		flushes[k] = v
	}
	flights := make([]*FlightRecorder, 0, len(t.flights))
	for _, f := range t.flights {
		flights = append(flights, f)
	}
	anomalies := append([]Anomaly(nil), t.anomalies...)
	t.mu.Unlock()

	tel, err := NewTelemetry(t.every)
	if err != nil {
		return nil, err
	}
	tel.Verbs = verbs
	tel.Flushes = flushes
	tel.Anomalies = anomalies
	tel.UnsampledDevices = unsampled
	sort.Slice(devices, func(i, j int) bool { return devices[i].device < devices[j].device })
	for _, tc := range devices {
		tel.Traces = append(tel.Traces, DeviceTrace{
			Device: tc.device, Tenant: tc.tenant, Spans: tc.Spans(),
		})
	}
	if err := tel.foldTraces(); err != nil {
		return nil, err
	}
	for _, f := range flights {
		if err := tel.Queue.Merge(f.DepthHistogram()); err != nil {
			return nil, err
		}
	}
	return tel, nil
}
