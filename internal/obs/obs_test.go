package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tz"
)

// Sampling is a pure function of the seed: same seed, same fate, and a
// 1-in-N rate actually fires even though DeriveSeed only produces odd
// seeds (the finalizer must avalanche before the modulo).
func TestSampledDeterministicAndNonDegenerate(t *testing.T) {
	hits := 0
	for i := 0; i < 64*64; i++ {
		seed := uint64(i)*0x9e3779b97f4a7c15 | 1 // odd, like DeriveSeed outputs
		a, b := Sampled(seed, 64), Sampled(seed, 64)
		if a != b {
			t.Fatalf("sampling not deterministic for seed %#x", seed)
		}
		if a {
			hits++
		}
	}
	// 4096 odd seeds at 1/64: expect ~64 hits; degenerate implementations
	// (bare modulo on odd seeds) give 0.
	if hits < 16 || hits > 256 {
		t.Fatalf("1/64 sampling hit %d of 4096 odd seeds; want roughly 64", hits)
	}
	if !Sampled(12345, 1) || !Sampled(12345, 0) {
		t.Fatal("rate <= 1 must sample everything")
	}
}

// A sampled-out device's nil TraceContext must cost zero allocations on
// every hot-path entry point — the PR-2 discipline applied to telemetry.
func TestNilTraceContextZeroAlloc(t *testing.T) {
	var tc *TraceContext
	var f *FlightRecorder
	allocs := testing.AllocsPerRun(200, func() {
		tc.NextItem()
		tc.Emit(StageCapture, VerdictNone, 1, 2, 3, 0)
		tc.Emit(StageRelay, VerdictDelivered, 4, 5, 6, 0)
		f.Note("device-00001", "tenant-00", VerdictDelivered, 1)
	})
	if allocs != 0 {
		t.Fatalf("nil telemetry path allocated %.1f times per run; want 0", allocs)
	}
}

// A live flight recorder must also be allocation-free per Note: the ring
// and histogram are preallocated.
func TestFlightRecorderNoteZeroAlloc(t *testing.T) {
	f := newFlightRecorder("shard-00", 8, nil)
	allocs := testing.AllocsPerRun(200, func() {
		f.Note("device-00001", "tenant-00", VerdictDelivered, 3)
	})
	if allocs != 0 {
		t.Fatalf("FlightRecorder.Note allocated %.1f times per run; want 0", allocs)
	}
}

func TestFlightRecorderRingWrapsOldestFirst(t *testing.T) {
	f := newFlightRecorder("shard-00", 4, nil)
	for i := 0; i < 10; i++ {
		f.Note("device", "tenant", VerdictDelivered, i)
	}
	ev := f.Events()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.Depth != 6+i {
			t.Fatalf("event %d depth %d, want %d (oldest-first)", i, e.Depth, 6+i)
		}
	}
	if f.Total() != 10 {
		t.Fatalf("total %d, want 10", f.Total())
	}
}

func TestFirstShedTriggersAnomalyOnce(t *testing.T) {
	tr := NewTracer(1)
	f := tr.Flight("shard-00")
	f.Note("device-00001", "tenant-00", VerdictDelivered, 1)
	f.Note("device-00002", "tenant-00", VerdictShed, 5)
	f.Note("device-00003", "tenant-00", VerdictShed, 6)
	an := tr.Anomalies()
	if len(an) != 1 || an[0].Kind != "first-shed" {
		t.Fatalf("anomalies = %+v, want exactly one first-shed", an)
	}
	if len(an[0].Flight["shard-00"]) != 2 {
		t.Fatalf("anomaly snapshot has %d events, want the 2 noted before the trigger ran", len(an[0].Flight["shard-00"]))
	}
}

func TestDumpRoundTrip(t *testing.T) {
	tr := NewTracer(1)
	a := tr.Device("device-00002", "tenant-01", 7)
	b := tr.Device("device-00001", "tenant-00", 9)
	for _, tc := range []*TraceContext{a, b} {
		tc.NextItem()
		tc.Emit(StageCapture, VerdictNone, 100, 200, 0, 0)
		tc.Emit(StageClassify, VerdictNone, 300, 400, 0, 4)
		tc.Emit(StageRelay, VerdictDelivered, 700, 50, 640, 0)
		tc.NextItem()
		tc.Emit(StageClassify, VerdictBlocked, 800, 90, 0, 4)
	}
	tr.Verb(VerbVerify)
	tel, err := tr.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if tel.Traces[0].Device != "device-00001" {
		t.Fatalf("summary traces not sorted by device: %q first", tel.Traces[0].Device)
	}
	var buf bytes.Buffer
	buf.WriteString("human preamble the parser must skip\n")
	if err := tel.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := ParseDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleEvery != 1 || got.SampledDevices() != 2 || got.SpanCount() != 8 {
		t.Fatalf("round-trip lost shape: every=%d devices=%d spans=%d",
			got.SampleEvery, got.SampledDevices(), got.SpanCount())
	}
	if got.VerdictCount(VerdictDelivered) != 2 || got.VerdictCount(VerdictBlocked) != 2 {
		t.Fatalf("round-trip verdicts: %+v", got.Verdicts)
	}
	for i, tr2 := range got.Traces {
		if len(tr2.Spans) != len(tel.Traces[i].Spans) {
			t.Fatalf("device %s span count changed", tr2.Device)
		}
		for j, sp := range tr2.Spans {
			if sp != tel.Traces[i].Spans[j] {
				t.Fatalf("span %d/%d changed across round-trip: %+v vs %+v",
					i, j, sp, tel.Traces[i].Spans[j])
			}
		}
	}
	// Two dumps of the same block are byte-identical.
	var second bytes.Buffer
	if err := tel.WriteDump(&second); err != nil {
		t.Fatal(err)
	}
	first = first[strings.Index(first, dumpHeader):]
	if first != second.String() {
		t.Fatal("WriteDump is not deterministic for the same block")
	}
	var tl bytes.Buffer
	if err := got.RenderTimeline(&tl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl.String(), "device-00001") || !strings.Contains(tl.String(), "delivered") {
		t.Fatalf("timeline rendering lost content:\n%s", tl.String())
	}
}

func TestParseDumpRejectsFreeText(t *testing.T) {
	for _, bad := range []string{
		dumpHeader + "\nspan device=device-1 tenant=tenant-0 seq=0 stage=capture verdict=- start=1 dur=2 bytes=0 batch=0 secret=hello\n",
		dumpHeader + "\nspan device=the alarm code tenant=tenant-0 seq=0 stage=capture verdict=- start=1 dur=2 bytes=0 batch=0\n",
		dumpHeader + "\ntranscript: my alarm code is 4711\n",
		"no header at all\n",
	} {
		if _, err := ParseDump(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseDump accepted malformed input:\n%s", bad)
		}
	}
}

// Merge of per-shard telemetry blocks == one block observing the whole
// stream, bucket counts bit-identical (the Audit.Merge property).
func TestTelemetryMergeMatchesSingle(t *testing.T) {
	mkTracer := func(ids []string) *Tracer {
		tr := NewTracer(1)
		for i, id := range ids {
			tc := tr.Device(id, "tenant-00", uint64(i+1))
			tc.NextItem()
			// Duration keyed to the device identity, so the same device
			// observes the same value whichever tracer it lands in.
			dur := tz.Cycles(1000 * uint64(id[len(id)-1]-'0'))
			tc.Emit(StageCapture, VerdictNone, 0, dur, 0, 0)
			tc.Emit(StageRelay, VerdictDelivered, 2000, 500, 64, 0)
		}
		tr.Verb(VerbVerify)
		return tr
	}
	all := mkTracer([]string{"device-00001", "device-00002", "device-00003", "device-00004"})
	p1 := mkTracer([]string{"device-00001", "device-00002"})
	p2 := mkTracer([]string{"device-00003", "device-00004"})
	single, err := all.Summary()
	if err != nil {
		t.Fatal(err)
	}
	t1, err := p1.Summary()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p2.Summary()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := NewTelemetry(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(t2); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(t1); err != nil {
		t.Fatal(err)
	}
	for _, s := range Stages() {
		a, b := merged.Stages[s].Buckets(), single.Stages[s].Buckets()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("stage %s bucket %d: merged %d vs single %d", s, i, a[i], b[i])
			}
		}
	}
	if merged.Verdicts[VerdictDelivered] != single.Verdicts[VerdictDelivered] {
		t.Fatalf("merged verdict count %d vs single %d",
			merged.Verdicts[VerdictDelivered], single.Verdicts[VerdictDelivered])
	}
	if merged.Verbs[VerbVerify] != 2 {
		t.Fatalf("merged verbs %v", merged.Verbs)
	}
}
