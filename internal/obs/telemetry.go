package obs

import (
	"fmt"

	"repro/internal/metrics"
)

// Histogram bucket layouts. Stage durations are virtual cycles (1 GHz:
// 1e3 = 1 virtual µs); queue depth and batch occupancy are small
// integers. Fixed layouts are what make Merge a pure bucket addition.
var (
	stageBounds = metrics.ExpBuckets(1_000, 4, 12)
	queueBounds = metrics.ExpBuckets(1, 2, 10)
	batchBounds = metrics.ExpBuckets(1, 2, 4)
)

// DeviceTrace is one sampled device's exported span list (emission
// order).
type DeviceTrace struct {
	Device string
	Tenant string
	Spans  []Span
}

// Telemetry is the aggregated telemetry block of one fleet run: the
// histogram/counter registry plus the sampled traces it was folded
// from. It merges like cloud.Audit.Merge — per-shard or per-run blocks
// fold into a fleet view with bit-identical counters regardless of
// order.
type Telemetry struct {
	// SampleEvery is the 1-in-N device sampling rate the run traced at.
	SampleEvery int
	// UnsampledDevices counts devices the sampler skipped.
	UnsampledDevices int

	// Stages holds per-stage latency histograms in virtual cycles.
	Stages map[Stage]*metrics.Histogram
	// Queue is the shard queue-depth histogram (from flight recorders;
	// every frame, not only sampled devices).
	Queue *metrics.Histogram
	// Batch is the TA batch-occupancy histogram (classify spans).
	Batch *metrics.Histogram
	// Verdicts counts terminal spans per verdict.
	Verdicts map[Verdict]uint64
	// Verbs counts attestation-protocol verbs (verify/rotate/revoke).
	Verbs map[string]uint64
	// Flushes counts shared-scheduler batch flushes by reason
	// (full/age/idle/drain); empty when no batch scheduler ran.
	Flushes map[string]uint64
	// Anomalies is the flight-recorder dump log, trigger order.
	Anomalies []Anomaly
	// Traces are the sampled devices' spans, sorted by device ID.
	Traces []DeviceTrace
}

// NewTelemetry builds an empty block with the registry's fixed bucket
// layouts.
func NewTelemetry(sampleEvery int) (*Telemetry, error) {
	t := &Telemetry{
		SampleEvery: sampleEvery,
		Stages:      make(map[Stage]*metrics.Histogram, len(Stages())),
		Verdicts:    make(map[Verdict]uint64),
		Verbs:       make(map[string]uint64),
		Flushes:     make(map[string]uint64),
	}
	var err error
	for _, s := range Stages() {
		if t.Stages[s], err = metrics.NewHistogram(stageBounds...); err != nil {
			return nil, err
		}
	}
	if t.Queue, err = metrics.NewHistogram(queueBounds...); err != nil {
		return nil, err
	}
	if t.Batch, err = metrics.NewHistogram(batchBounds...); err != nil {
		return nil, err
	}
	return t, nil
}

// SampledDevices counts the devices whose spans are in Traces.
func (t *Telemetry) SampledDevices() int {
	if t == nil {
		return 0
	}
	return len(t.Traces)
}

// SpanCount counts all exported spans.
func (t *Telemetry) SpanCount() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for _, tr := range t.Traces {
		n += uint64(len(tr.Spans))
	}
	return n
}

// foldTraces replays Traces into the stage/batch histograms and verdict
// counters (idempotent only on a fresh block; callers fold once).
func (t *Telemetry) foldTraces() error {
	for _, tr := range t.Traces {
		for _, sp := range tr.Spans {
			h, ok := t.Stages[sp.Stage]
			if !ok {
				return fmt.Errorf("obs: span with unknown stage %d", sp.Stage)
			}
			h.Observe(float64(sp.Dur))
			if sp.Batch > 0 && sp.Stage == StageClassify {
				t.Batch.Observe(float64(sp.Batch))
			}
			if sp.Verdict != VerdictNone {
				t.Verdicts[sp.Verdict]++
			}
		}
	}
	return nil
}

// Merge folds o into t: histogram buckets add, counters add, anomalies
// and traces append (traces re-sorted by the caller if needed). Bucket
// layouts are fixed package-wide, so merging is bit-exact in any order.
func (t *Telemetry) Merge(o *Telemetry) error {
	if o == nil {
		return nil
	}
	for _, s := range Stages() {
		if err := t.Stages[s].Merge(o.Stages[s]); err != nil {
			return fmt.Errorf("obs: merge stage %s: %w", s, err)
		}
	}
	if err := t.Queue.Merge(o.Queue); err != nil {
		return fmt.Errorf("obs: merge queue depth: %w", err)
	}
	if err := t.Batch.Merge(o.Batch); err != nil {
		return fmt.Errorf("obs: merge batch occupancy: %w", err)
	}
	for v, n := range o.Verdicts {
		t.Verdicts[v] += n
	}
	for k, n := range o.Verbs {
		t.Verbs[k] += n
	}
	for k, n := range o.Flushes {
		t.Flushes[k] += n
	}
	t.UnsampledDevices += o.UnsampledDevices
	t.Anomalies = append(t.Anomalies, o.Anomalies...)
	t.Traces = append(t.Traces, o.Traces...)
	return nil
}

// VerdictCount returns the terminal-span count for one verdict.
func (t *Telemetry) VerdictCount(v Verdict) uint64 {
	if t == nil {
		return 0
	}
	return t.Verdicts[v]
}

// RejectedCount sums the terminal spans across all rejection verdicts.
func (t *Telemetry) RejectedCount() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for v, c := range t.Verdicts {
		if v.Rejected() {
			n += c
		}
	}
	return n
}
