package obs

import (
	"sync"

	"repro/internal/metrics"
)

// DefaultFlightCap is the per-shard flight-recorder ring capacity.
const DefaultFlightCap = 256

// FlightEvent is one admission outcome in a shard's flight recorder:
// cleartext connection metadata plus the queue depth the frontend saw
// when it decided — exactly what an operator needs to diagnose a slow
// or shedding shard, and nothing a provider does not already learn.
type FlightEvent struct {
	Device  string
	Tenant  string
	Verdict Verdict
	Depth   int // admitted-but-unserved frames at decision time
}

// FlightRecorder is a bounded ring of the most recent admission
// outcomes on one shard. Note is allocation-free (the ring and the
// depth histogram are preallocated) and safe under the shard lock: its
// own mutex is a leaf, and the first-shed trigger runs after the lock
// is released. Ring contents depend on arrival order across device
// workers and are therefore diagnostic, never part of the
// deterministic trace dump.
type FlightRecorder struct {
	shard  string
	onShed func() // first-shed anomaly trigger (runs unlocked)

	mu       sync.Mutex
	ring     []FlightEvent
	next     int
	total    uint64
	depth    *metrics.Histogram
	shedSeen bool
}

// newFlightRecorder preallocates the ring and the queue-depth
// histogram; capacity is floored at 1.
func newFlightRecorder(shard string, capacity int, onShed func()) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	depth, err := metrics.NewHistogram(metrics.ExpBuckets(1, 2, 10)...)
	if err != nil {
		panic(err) // static bounds; unreachable
	}
	return &FlightRecorder{
		shard:  shard,
		onShed: onShed,
		ring:   make([]FlightEvent, capacity),
		depth:  depth,
	}
}

// Shard returns the shard this recorder rides on.
func (f *FlightRecorder) Shard() string {
	if f == nil {
		return ""
	}
	return f.shard
}

// Note records one admission outcome. Nil-safe and allocation-free, so
// the shard ingest path calls it unconditionally. The first shed seen
// fires the anomaly trigger exactly once, outside the recorder lock.
func (f *FlightRecorder) Note(device, tenant string, verdict Verdict, depth int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = FlightEvent{Device: device, Tenant: tenant, Verdict: verdict, Depth: depth}
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
	}
	f.total++
	f.depth.Observe(float64(depth))
	fire := false
	if verdict == VerdictShed && !f.shedSeen {
		f.shedSeen = true
		fire = f.onShed != nil
	}
	f.mu.Unlock()
	if fire {
		f.onShed()
	}
}

// Total returns how many outcomes were noted (including overwritten
// ones).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Events snapshots the ring oldest-first.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.ring)
	if f.total < uint64(n) {
		n = int(f.total)
		return append([]FlightEvent(nil), f.ring[:n]...)
	}
	out := make([]FlightEvent, 0, n)
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// DepthHistogram returns a copy of the queue-depth histogram.
func (f *FlightRecorder) DepthHistogram() *metrics.Histogram {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.depth.Clone()
}
