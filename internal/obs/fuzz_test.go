package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tz"
)

// fuzzSeedDump renders a representative dump through the real writer so
// the fuzzer starts from the grammar's happy path: multiple devices,
// every stage, terminal verdicts, a skipped preamble and comments.
func fuzzSeedDump(tb testing.TB) []byte {
	tel, err := NewTelemetry(4)
	if err != nil {
		tb.Fatal(err)
	}
	tel.Traces = []DeviceTrace{
		{Device: "device-00001", Tenant: "tenant-0", Spans: []Span{
			{Device: "device-00001", Tenant: "tenant-0", Seq: 0, Stage: StageCapture, Start: 10, Dur: 100},
			{Device: "device-00001", Tenant: "tenant-0", Seq: 0, Stage: StageTranscribe, Start: 110, Dur: 4000},
			{Device: "device-00001", Tenant: "tenant-0", Seq: 0, Stage: StageClassify, Start: 4110, Dur: 900, Batch: 4},
			{Device: "device-00001", Tenant: "tenant-0", Seq: 0, Stage: StageRelay, Verdict: VerdictDelivered, Start: 5010, Dur: 50, Bytes: 640},
		}},
		{Device: "device-00002", Tenant: "tenant-1", Spans: []Span{
			{Device: "device-00002", Tenant: "tenant-1", Seq: 3, Stage: StageClassify, Verdict: VerdictBlocked, Start: 800, Dur: 90, Batch: 8},
			{Device: "device-00002", Tenant: "tenant-1", Seq: 4, Stage: StageAdmit, Verdict: VerdictRejectedRevoked, Start: 900, Dur: 0},
		}},
	}
	if err := tel.foldTraces(); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString("human preamble the parser skips\n")
	if err := tel.WriteDump(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParseDump drives the strict dump grammar with arbitrary input.
// ParseDump is the trust boundary a CLI crosses when it ingests a dump
// from disk or a pipe, so it must never panic, and anything it accepts
// must be well-formed enough to survive a write→parse round trip with
// byte-identical output (the dump format is its own canonical form).
func FuzzParseDump(f *testing.F) {
	f.Add(fuzzSeedDump(f))
	f.Add([]byte(dumpHeader + "\n"))
	f.Add([]byte(dumpHeader + "\n# sample-every 64 sampled 0 spans 0\n"))
	f.Add([]byte(dumpHeader + "\nspan device=d-1 tenant=t-0 seq=0 stage=classify verdict=none start=1 dur=2 bytes=0 batch=4\n"))
	f.Add([]byte("no header at all\nspan device=d tenant=t\n"))
	f.Add([]byte(dumpHeader + "\nspan device=../etc tenant=t seq=0 stage=classify verdict=none start=1 dur=2 bytes=0 batch=0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tel, err := ParseDump(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: every label obeys the identifier charset (the
		// grammar is the dump's leak guard — no free text may ride a
		// label field through a parse).
		for _, tr := range tel.Traces {
			if !labelOK(tr.Device) || !labelOK(tr.Tenant) {
				t.Fatalf("parser accepted non-identifier labels %q/%q", tr.Device, tr.Tenant)
			}
			for _, sp := range tr.Spans {
				if sp.Stage.String() == "unknown" {
					t.Fatalf("parser accepted unknown stage %d", sp.Stage)
				}
				if sp.Start < 0 || sp.Dur < 0 {
					t.Fatalf("parser accepted negative virtual time %d/%d", sp.Start, sp.Dur)
				}
				_ = tz.Cycles(sp.Dur)
			}
		}
		// Round trip: what we parsed re-renders and re-parses to the
		// same canonical bytes.
		var first bytes.Buffer
		if err := tel.WriteDump(&first); err != nil {
			t.Fatalf("re-render of accepted dump failed: %v", err)
		}
		tel2, err := ParseDump(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("re-parse of rendered dump failed: %v\ndump:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := tel2.WriteDump(&second); err != nil {
			t.Fatalf("second render failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("dump round trip not a fixpoint:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
	})
}
