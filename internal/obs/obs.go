// Package obs is the frame-telemetry layer: virtual-time tracing spans
// that follow a frame from device capture through the TEE pipeline to
// shard admission, per-shard flight recorders, and a histogram registry
// that summarizes a fleet run for the -json snapshot.
//
// Design constraints, in order:
//
//   - Zero allocation on the hot path for untraced devices. Every entry
//     point is a nil-safe method on a pointer receiver, so a sampled-out
//     device threads a nil *TraceContext through its whole pipeline and
//     each stage pays exactly one nil check.
//   - Deterministic. Spans are stamped in virtual tz.Cycles (per-device
//     virtual clocks are bit-reproducible per root seed) and sampling is
//     a pure function of a per-device seed derived from the root seed,
//     so the exported trace dump is byte-identical across runs. Flight
//     recorder ring contents depend on goroutine arrival order and are
//     therefore diagnostic only — they are never part of the dump.
//   - Metadata only. A span carries identity labels, stage, verdict,
//     sizes and virtual timestamps; there is no field that could hold
//     transcript tokens or sealed payload bytes, and the dump grammar
//     (ParseDump) rejects any line that does not parse back into exactly
//     those fields.
package obs

import (
	"sync"

	"repro/internal/tz"
)

// Stage names one pipeline stage a span measures.
type Stage uint8

// Pipeline stages, in frame order.
const (
	// StageCapture covers peripheral capture + i2s/DMA into the pipeline
	// (mic ring reads for speakers, sensor DMA + copy-out for cameras).
	StageCapture Stage = iota + 1
	// StageTranscribe covers in-TEE ASR decode (speakers only).
	StageTranscribe
	// StageClassify covers in-TEE classifier inference (batched or not).
	StageClassify
	// StageRelay covers seal + uplink RPC + directive open.
	StageRelay
	// StageAdmit marks frontend admission outcomes observed off-device
	// (post-revocation probes, rogue traffic); its duration is 0 because
	// no device virtual clock runs there.
	StageAdmit
)

var stageNames = [...]string{"", "capture", "transcribe", "classify", "relay", "admit"}

// String returns the stage's dump token.
func (s Stage) String() string {
	if int(s) < len(stageNames) && s > 0 {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage in pipeline order (registry iteration order).
func Stages() []Stage {
	return []Stage{StageCapture, StageTranscribe, StageClassify, StageRelay, StageAdmit}
}

// Verdict is the terminal outcome a frame's last span carries. Exactly
// one span per traced item bears a verdict other than VerdictNone, so
// summing spans per verdict counts items — the property E14 checks
// against the audit counters.
type Verdict uint8

// Frame verdicts.
const (
	// VerdictNone marks a non-terminal span (an intermediate stage).
	VerdictNone Verdict = iota
	// VerdictBlocked: the in-TEE filter withheld the frame on-device.
	VerdictBlocked
	// VerdictDelivered: the frame was served by a shard worker.
	VerdictDelivered
	// VerdictShed: the admission policy dropped the frame under pressure.
	VerdictShed
	// VerdictRejectedRevoked: admission rejected a revoked identity.
	VerdictRejectedRevoked
	// VerdictRejectedStale: admission rejected a stale model version or
	// key epoch (the minimum-version / epoch-floor policies).
	VerdictRejectedStale
	// VerdictRejectedForged: admission rejected forged or replayed
	// evidence.
	VerdictRejectedForged
	// VerdictRejectedPolicy: admission rejected for any other policy
	// reason (unattested, bad measurement, unknown device).
	VerdictRejectedPolicy
	// VerdictExpired: the uplink retry budget ran out before the frame
	// was admitted (deterministic give-up under a fault plan). Appended
	// after the rejection block so Rejected()'s range stays contiguous.
	VerdictExpired
)

var verdictNames = [...]string{
	"-", "blocked", "delivered", "shed",
	"rejected-revoked", "rejected-stale", "rejected-forged", "rejected-policy",
	"expired",
}

// String returns the verdict's dump token.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "unknown"
}

// Rejected reports whether the verdict is an admission rejection.
func (v Verdict) Rejected() bool {
	return v >= VerdictRejectedRevoked && v <= VerdictRejectedPolicy
}

// Verdicts lists every verdict in dump order.
func Verdicts() []Verdict {
	return []Verdict{
		VerdictBlocked, VerdictDelivered, VerdictShed,
		VerdictRejectedRevoked, VerdictRejectedStale, VerdictRejectedForged, VerdictRejectedPolicy,
		VerdictExpired,
	}
}

// Span is one traced pipeline stage of one frame. Every field is
// metadata: labels, indices, sizes and virtual timestamps. There is
// deliberately no payload field.
type Span struct {
	Device  string
	Tenant  string
	Seq     int // item index within the device's run
	Stage   Stage
	Verdict Verdict
	Batch   int // TA batch occupancy the item was processed in (0 = unbatched)
	Bytes   int // payload size in bytes (0 where no payload crosses)
	Start   tz.Cycles
	Dur     tz.Cycles
}

// TraceContext collects the spans of one sampled device. A nil
// *TraceContext is the sampled-out case: every method no-ops without
// allocating, so the pipeline threads it unconditionally.
type TraceContext struct {
	device string
	tenant string

	mu    sync.Mutex
	seq   int
	spans []Span
}

// newTraceContext starts a context with seq parked before item 0.
func newTraceContext(device, tenant string) *TraceContext {
	return &TraceContext{device: device, tenant: tenant, seq: -1, spans: make([]Span, 0, 16)}
}

// Enabled reports whether spans are being collected.
func (tc *TraceContext) Enabled() bool { return tc != nil }

// NextItem advances the item sequence number; call it once per
// utterance/frame before the item's first span.
func (tc *TraceContext) NextItem() {
	if tc == nil {
		return
	}
	tc.mu.Lock()
	tc.seq++
	tc.mu.Unlock()
}

// Emit records one span for the current item.
func (tc *TraceContext) Emit(stage Stage, verdict Verdict, start, dur tz.Cycles, bytes, batch int) {
	if tc == nil {
		return
	}
	tc.mu.Lock()
	tc.spans = append(tc.spans, Span{
		Device: tc.device, Tenant: tc.tenant, Seq: tc.seq,
		Stage: stage, Verdict: verdict, Batch: batch, Bytes: bytes,
		Start: start, Dur: dur,
	})
	tc.mu.Unlock()
}

// Spans snapshots the collected spans (emission order).
func (tc *TraceContext) Spans() []Span {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return append([]Span(nil), tc.spans...)
}

// mix64 is the splitmix64 finalizer. Sampling seeds come from
// core.DeriveSeed, whose outputs are always odd (the low bit is forced),
// so a bare modulo would alias; the finalizer avalanches all 64 bits
// first.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sampled decides, purely from the device's trace seed, whether the
// device is traced at a 1-in-every rate. every <= 1 samples everything.
func Sampled(seed uint64, every int) bool {
	if every <= 1 {
		return true
	}
	return mix64(seed)%uint64(every) == 0
}
