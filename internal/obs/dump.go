package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/tz"
)

// dumpHeader is the first line of every trace dump; the parser keys on
// it, so a CLI can skip any human-readable preamble printed before it.
const dumpHeader = "# periguard trace v1"

// WriteDump renders the deterministic part of the telemetry block: the
// header, the run's sampling parameters, and every sampled span sorted
// by device (Traces order) with emission order preserved per device.
// Spans are stamped in virtual cycles, so the dump is byte-identical
// across runs of the same seed and config. Flight-recorder rings and
// the queue-depth histogram depend on goroutine arrival order and are
// deliberately absent.
func (t *Telemetry) WriteDump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, dumpHeader)
	fmt.Fprintf(bw, "# sample-every %d sampled %d spans %d\n",
		t.SampleEvery, t.SampledDevices(), t.SpanCount())
	for _, tr := range t.Traces {
		for _, sp := range tr.Spans {
			fmt.Fprintf(bw, "span device=%s tenant=%s seq=%d stage=%s verdict=%s start=%d dur=%d bytes=%d batch=%d\n",
				sp.Device, sp.Tenant, sp.Seq, sp.Stage, sp.Verdict,
				uint64(sp.Start), uint64(sp.Dur), sp.Bytes, sp.Batch)
		}
	}
	return bw.Flush()
}

// parseStage / parseVerdict invert the String tokens.
func parseStage(tok string) (Stage, error) {
	for _, s := range Stages() {
		if s.String() == tok {
			return s, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown stage %q", tok)
}

func parseVerdict(tok string) (Verdict, error) {
	if tok == VerdictNone.String() {
		return VerdictNone, nil
	}
	for _, v := range Verdicts() {
		if v.String() == tok {
			return v, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown verdict %q", tok)
}

// labelOK enforces the identity-label charset: device and tenant names
// are machine identifiers, so any free text in a label field is a
// grammar violation, not data.
func labelOK(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

// spanFields is the exact field order of a span line.
var spanFields = []string{"device", "tenant", "seq", "stage", "verdict", "start", "dur", "bytes", "batch"}

// parseSpanLine parses one "span ..." line under the strict grammar:
// the nine known key=value fields, in order, with validated values.
func parseSpanLine(line string) (Span, error) {
	fields := strings.Fields(line)
	if len(fields) != len(spanFields)+1 || fields[0] != "span" {
		return Span{}, fmt.Errorf("obs: malformed span line %q", line)
	}
	vals := make(map[string]string, len(spanFields))
	for i, key := range spanFields {
		kv := fields[i+1]
		prefix := key + "="
		if !strings.HasPrefix(kv, prefix) {
			return Span{}, fmt.Errorf("obs: span line field %d: want %s=..., got %q", i+1, key, kv)
		}
		vals[key] = kv[len(prefix):]
	}
	var sp Span
	sp.Device, sp.Tenant = vals["device"], vals["tenant"]
	if !labelOK(sp.Device) || !labelOK(sp.Tenant) {
		return Span{}, fmt.Errorf("obs: span line carries a non-identifier label: %q", line)
	}
	var err error
	if sp.Seq, err = strconv.Atoi(vals["seq"]); err != nil {
		return Span{}, fmt.Errorf("obs: bad seq: %w", err)
	}
	if sp.Stage, err = parseStage(vals["stage"]); err != nil {
		return Span{}, err
	}
	if sp.Verdict, err = parseVerdict(vals["verdict"]); err != nil {
		return Span{}, err
	}
	start, err := strconv.ParseUint(vals["start"], 10, 64)
	if err != nil {
		return Span{}, fmt.Errorf("obs: bad start: %w", err)
	}
	dur, err := strconv.ParseUint(vals["dur"], 10, 64)
	if err != nil {
		return Span{}, fmt.Errorf("obs: bad dur: %w", err)
	}
	sp.Start, sp.Dur = tz.Cycles(start), tz.Cycles(dur)
	if sp.Bytes, err = strconv.Atoi(vals["bytes"]); err != nil {
		return Span{}, fmt.Errorf("obs: bad bytes: %w", err)
	}
	if sp.Batch, err = strconv.Atoi(vals["batch"]); err != nil {
		return Span{}, fmt.Errorf("obs: bad batch: %w", err)
	}
	return sp, nil
}

// ParseDump reads a trace dump back into a Telemetry block (traces,
// stage/batch histograms and verdict counters rebuilt from the spans).
// Input before the header line is skipped, so the CLI output of
// periguard-fleet pipes in directly. The grammar is strict: after the
// header, every non-comment line must be a well-formed span line —
// that strictness is the dump's leak guard, since no field can carry
// free text.
func ParseDump(r io.Reader) (*Telemetry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	started := false
	sampleEvery := 1
	var spans []Span
	for sc.Scan() {
		line := sc.Text()
		if !started {
			if strings.TrimSpace(line) == dumpHeader {
				started = true
			}
			continue
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "# sample-every ") {
			fields := strings.Fields(trimmed)
			if len(fields) >= 3 {
				if n, err := strconv.Atoi(fields[2]); err == nil && n > 0 {
					sampleEvery = n
				}
			}
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			continue
		}
		sp, err := parseSpanLine(trimmed)
		if err != nil {
			return nil, err
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !started {
		return nil, fmt.Errorf("obs: no %q header in input", dumpHeader)
	}
	tel, err := NewTelemetry(sampleEvery)
	if err != nil {
		return nil, err
	}
	var cur *DeviceTrace
	for _, sp := range spans {
		if cur == nil || cur.Device != sp.Device {
			tel.Traces = append(tel.Traces, DeviceTrace{Device: sp.Device, Tenant: sp.Tenant})
			cur = &tel.Traces[len(tel.Traces)-1]
		}
		cur.Spans = append(cur.Spans, sp)
	}
	if err := tel.foldTraces(); err != nil {
		return nil, err
	}
	return tel, nil
}

// RenderTimeline renders the per-device span timelines as aligned text
// (virtual microseconds at 1 GHz) followed by the per-stage latency
// summary — the human view of a dump, shared by cmd/periguard-trace
// and the experiment harness.
func (t *Telemetry) RenderTimeline(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "== frame trace: %d sampled device(s), %d spans (1-in-%d sampling) ==\n",
		t.SampledDevices(), t.SpanCount(), t.SampleEvery)
	for _, tr := range t.Traces {
		fmt.Fprintf(bw, "%s  tenant=%s\n", tr.Device, tr.Tenant)
		for _, sp := range tr.Spans {
			verdict := ""
			if sp.Verdict != VerdictNone {
				verdict = "  -> " + sp.Verdict.String()
			}
			extra := ""
			if sp.Batch > 0 {
				extra = fmt.Sprintf("  batch=%d", sp.Batch)
			}
			if sp.Bytes > 0 {
				extra += fmt.Sprintf("  bytes=%d", sp.Bytes)
			}
			fmt.Fprintf(bw, "  item %2d  %-10s %10.1f +%9.1f vus%s%s\n",
				sp.Seq, sp.Stage, float64(sp.Start)/1e3, float64(sp.Dur)/1e3, extra, verdict)
		}
	}
	fmt.Fprintln(bw, "per-stage latency (virtual us):")
	for _, s := range Stages() {
		h := t.Stages[s]
		if h == nil || h.Count() == 0 {
			continue
		}
		fmt.Fprintf(bw, "  %-10s n=%-6d p50=%10.1f p99=%10.1f\n",
			s, h.Count(), h.Quantile(0.5)/1e3, h.Quantile(0.99)/1e3)
	}
	verdicts := "verdicts:"
	for _, v := range Verdicts() {
		if n := t.Verdicts[v]; n > 0 {
			verdicts += fmt.Sprintf(" %s=%d", v, n)
		}
	}
	fmt.Fprintln(bw, verdicts)
	for _, a := range t.Anomalies {
		fmt.Fprintf(bw, "anomaly %s: %s\n", a.Kind, a.Detail)
	}
	return bw.Flush()
}
