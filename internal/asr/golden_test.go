package asr

// Golden equivalence for the optimized recognizer: scratch-reusing
// segment features and early-abandon template matching must reproduce
// the pre-refactor full-scan pipeline bit for bit — same segments, same
// winning words, same distances. naiveTranscribe below is the historical
// implementation kept verbatim against the same trained templates.

import (
	"math"
	"testing"

	"repro/internal/audio"
	"repro/internal/dsp"
)

// naiveSegmentFeature is the historical allocate-per-call feature path.
func naiveSegmentFeature(ex *dsp.Extractor, samples []float64) ([]float64, error) {
	frames, err := ex.Signal(samples)
	if err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, nil
	}
	mean := dsp.MeanVector(frames)
	std := make([]float64, len(mean))
	for _, f := range frames {
		for i := range mean {
			d := f[i] - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i] / float64(len(frames)))
	}
	return append(mean, std...), nil
}

// naiveTranscribe is the historical exhaustive-scan matcher.
func naiveTranscribe(m *Model, s *Session, pcm audio.PCM) ([]WordResult, error) {
	ex, err := dsp.NewExtractor(dsp.DefaultMFCCConfig(m.cfg.SampleRate))
	if err != nil {
		return nil, err
	}
	var out []WordResult
	for _, seg := range s.Segment(pcm) {
		feat, err := naiveSegmentFeature(ex, pcm.Samples[seg[0]:seg[1]])
		if err != nil {
			return nil, err
		}
		if feat == nil {
			continue
		}
		bestW, bestD := -1, math.Inf(1)
		for wi, tpl := range m.templates {
			if d := dsp.EuclideanDistance(feat, tpl); d < bestD {
				bestW, bestD = wi, d
			}
		}
		if bestW >= 0 {
			out = append(out, WordResult{
				Word: m.words[bestW], Distance: bestD, Start: seg[0], End: seg[1],
			})
		}
	}
	return out, nil
}

func TestTranscribeMatchesNaiveBitExact(t *testing.T) {
	words := []string{"password", "weather", "music", "light", "timer", "garage"}
	voice := audio.DefaultVoice(31)
	voice.NoiseAmp = 0.01
	model, err := TrainModel(DefaultConfig(voice.Rate), words, voice)
	if err != nil {
		t.Fatalf("TrainModel: %v", err)
	}
	sess, err := model.NewSession()
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	utterances := [][]string{
		{"password"},
		{"music", "light"},
		{"timer", "garage", "weather"},
		{"weather", "password", "music", "light"},
	}
	for ui, u := range utterances {
		v := voice
		v.Seed = 5000 + uint64(ui)*37
		pcm := v.Synthesize(u)
		// Segments alias session scratch; copy for the reference pass.
		naiveSess, err := model.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		want, err := naiveTranscribe(model, naiveSess, pcm)
		if err != nil {
			t.Fatalf("naiveTranscribe: %v", err)
		}
		got, err := sess.Transcribe(pcm)
		if err != nil {
			t.Fatalf("Transcribe: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("utterance %d: %d results, want %d", ui, len(got), len(want))
		}
		if len(want) == 0 {
			t.Fatalf("utterance %d: reference recognized nothing (test is vacuous)", ui)
		}
		for i := range want {
			if got[i].Word != want[i].Word || got[i].Start != want[i].Start || got[i].End != want[i].End {
				t.Fatalf("utterance %d result %d: got %+v, want %+v", ui, i, got[i], want[i])
			}
			if math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
				t.Fatalf("utterance %d result %d: distance %v != %v (not bit-identical)",
					ui, i, got[i].Distance, want[i].Distance)
			}
		}
	}
}

func TestSessionsShareImmutableModel(t *testing.T) {
	words := []string{"on", "off"}
	voice := audio.DefaultVoice(3)
	model, err := TrainModel(DefaultConfig(voice.Rate), words, voice)
	if err != nil {
		t.Fatalf("TrainModel: %v", err)
	}
	a, err := model.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	b, err := model.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if a.Model() != model || b.Model() != model {
		t.Fatal("sessions do not share the trained model")
	}
	pcm := voice.Synthesize([]string{"on"})
	wa, err := a.TranscribeWords(pcm)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := b.TranscribeWords(pcm)
	if err != nil {
		t.Fatal(err)
	}
	if len(wa) != len(wb) {
		t.Fatalf("sessions disagree: %v vs %v", wa, wb)
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("sessions disagree: %v vs %v", wa, wb)
		}
	}
	if model.MemoryBytes() == 0 {
		t.Error("trained model reports zero template footprint")
	}
}

func BenchmarkTranscribe(b *testing.B) {
	words := []string{"password", "weather", "music", "light", "timer", "garage"}
	voice := audio.DefaultVoice(31)
	voice.NoiseAmp = 0.01
	model, err := TrainModel(DefaultConfig(voice.Rate), words, voice)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := model.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	pcm := voice.Synthesize([]string{"weather", "password", "music", "light"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Transcribe(pcm); err != nil {
			b.Fatal(err)
		}
	}
}
