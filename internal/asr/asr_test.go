package asr

import (
	"errors"
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/sensitive"
)

func trainedRecognizer(t *testing.T, words []string, noise float64) (*Recognizer, audio.Voice) {
	t.Helper()
	voice := audio.DefaultVoice(100)
	voice.NoiseAmp = noise
	r, err := New(DefaultConfig(voice.Rate))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := r.Train(words, voice); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return r, voice
}

func TestTrainErrors(t *testing.T) {
	r, err := New(DefaultConfig(16000))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := r.Train(nil, audio.DefaultVoice(1)); !errors.Is(err, ErrNoVocabulary) {
		t.Errorf("empty Train = %v", err)
	}
	if _, err := r.Transcribe(audio.Silence(16000, time.Second)); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained Transcribe = %v", err)
	}
}

func TestSegmentFindsWords(t *testing.T) {
	words := []string{"turn", "on", "light"}
	r, voice := trainedRecognizer(t, words, 0.01)
	pcm := voice.Synthesize(words)
	segs := r.Segment(pcm)
	if len(segs) != len(words) {
		t.Fatalf("found %d segments, want %d", len(segs), len(words))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i][0] <= segs[i-1][1] {
			t.Error("segments overlap or out of order")
		}
	}
}

func TestSegmentSilence(t *testing.T) {
	r, _ := trainedRecognizer(t, []string{"on"}, 0)
	if segs := r.Segment(audio.Silence(16000, 500*time.Millisecond)); segs != nil {
		t.Errorf("silence produced segments: %v", segs)
	}
	if segs := r.Segment(audio.PCM{Rate: 16000}); segs != nil {
		t.Errorf("empty signal produced segments: %v", segs)
	}
}

func TestTranscribeCleanSpeech(t *testing.T) {
	vocab := sensitive.NewVocabulary().Words()
	r, voice := trainedRecognizer(t, vocab, 0.01)
	ref := []string{"my", "password", "is", "tango", "seven"}
	// A different utterance seed than training: generalization, not recall.
	voice.Seed = 777
	pcm := voice.Synthesize(ref)
	hyp, err := r.TranscribeWords(pcm)
	if err != nil {
		t.Fatalf("Transcribe: %v", err)
	}
	if acc := WordAccuracy(ref, hyp); acc < 0.8 {
		t.Errorf("clean-speech accuracy = %v (hyp %v), want >= 0.8", acc, hyp)
	}
}

func TestTranscribeDegradesWithNoise(t *testing.T) {
	vocab := sensitive.NewVocabulary().Words()
	ref := []string{"call", "my", "doctor", "about", "the", "diagnosis"}

	accAt := func(noise float64) float64 {
		r, voice := trainedRecognizer(t, vocab, 0.01)
		voice.Seed = 555
		voice.NoiseAmp = noise
		pcm := voice.Synthesize(ref)
		hyp, err := r.TranscribeWords(pcm)
		if err != nil {
			t.Fatalf("Transcribe: %v", err)
		}
		return WordAccuracy(ref, hyp)
	}
	clean := accAt(0.005)
	noisy := accAt(0.3)
	if clean < 0.8 {
		t.Errorf("clean accuracy = %v, want >= 0.8", clean)
	}
	if noisy > clean {
		t.Errorf("noisy accuracy %v exceeds clean %v", noisy, clean)
	}
}

func TestTranscribeReportsPositions(t *testing.T) {
	r, voice := trainedRecognizer(t, []string{"music", "stop"}, 0.01)
	pcm := voice.Synthesize([]string{"music", "stop"})
	results, err := r.Transcribe(pcm)
	if err != nil {
		t.Fatalf("Transcribe: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, res := range results {
		if res.Start >= res.End || res.End > len(pcm.Samples) {
			t.Errorf("bad span [%d,%d)", res.Start, res.End)
		}
		if res.Distance < 0 {
			t.Errorf("negative distance %v", res.Distance)
		}
	}
	if results[0].End > results[1].Start {
		t.Error("results out of temporal order")
	}
}

func TestWordAccuracy(t *testing.T) {
	tests := []struct {
		ref, hyp []string
		want     float64
	}{
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"a", "x"}, 0.5},
		{[]string{"a", "b"}, []string{"a"}, 0.5},
		{[]string{"a"}, []string{"a", "b"}, 0.5},
		{nil, nil, 1},
		{nil, []string{"x"}, 0},
	}
	for _, tt := range tests {
		if got := WordAccuracy(tt.ref, tt.hyp); got != tt.want {
			t.Errorf("WordAccuracy(%v,%v) = %v, want %v", tt.ref, tt.hyp, got, tt.want)
		}
	}
}

func TestRecognizerMemoryAccounting(t *testing.T) {
	vocab := sensitive.NewVocabulary().Words()
	r, _ := trainedRecognizer(t, vocab, 0.01)
	if r.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive after training")
	}
	// Small-footprint requirement: the whole template set stays well under
	// 1 MiB (paper §V: small TEE memory).
	if r.MemoryBytes() > 1<<20 {
		t.Errorf("templates use %d bytes, want < 1 MiB", r.MemoryBytes())
	}
	if got := len(r.Vocabulary()); got != len(vocab) {
		t.Errorf("Vocabulary() = %d words, want %d", got, len(vocab))
	}
	if !r.Trained() {
		t.Error("Trained() = false after Train")
	}
}
