// Package asr is the keyword-spotting speech recognizer that runs inside
// the TA (paper §IV.4: "a pre-trained speech recognition model can be used
// to transcribe the audio signals received from the device driver"). It is
// a classical small-footprint pipeline — energy-based voice activity
// detection, MFCC features, nearest-template matching — chosen because the
// TEE memory budget (§V) rules out large neural acoustic models.
//
// The trained state is split so a fleet can share it: Model is the
// immutable template pack (train once, read from everywhere), Session is
// a cheap per-device view holding the MFCC extractor and matching
// scratch. A Session is single-goroutine state; a Model is safe to share
// across any number of Sessions.
package asr

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/audio"
	"repro/internal/dsp"
)

// Errors returned by the recognizer.
var (
	// ErrNotTrained is returned when transcribing before Train.
	ErrNotTrained = errors.New("asr: recognizer not trained")
	// ErrNoVocabulary is returned for an empty word list.
	ErrNoVocabulary = errors.New("asr: empty vocabulary")
)

// Config tunes the recognizer.
type Config struct {
	SampleRate int
	// TrainRenditions is how many noisy renditions per word build the
	// template (more renditions, more robust templates).
	TrainRenditions int
	// VADThresholdFrac sets the voice-activity energy threshold as a
	// fraction of the utterance's peak frame energy.
	VADThresholdFrac float64
	// MinSegmentMs drops detected segments shorter than this.
	MinSegmentMs int
}

// DefaultConfig returns the recognizer settings used in the experiments.
func DefaultConfig(rate int) Config {
	return Config{
		SampleRate:       rate,
		TrainRenditions:  5,
		VADThresholdFrac: 0.08,
		MinSegmentMs:     60,
	}
}

// Model is an immutable trained template pack. It holds no mutable
// state, so one Model is safely shared by every device (and the cloud's
// server-side recognizer) in a fleet; per-device scratch lives in the
// Sessions it vends.
type Model struct {
	cfg       Config
	words     []string
	templates [][]float64 // parallel to words
}

// TrainModel builds per-word templates by synthesizing renditions with
// different seeds and averaging their features. The voice passed here is
// the "pre-training" voice; recognition generalizes to other seeds of the
// same synthetic speaker model.
func TrainModel(cfg Config, words []string, voice audio.Voice) (*Model, error) {
	if len(words) == 0 {
		return nil, ErrNoVocabulary
	}
	m := &Model{
		cfg:       cfg,
		words:     append([]string(nil), words...),
		templates: make([][]float64, len(words)),
	}
	s, err := m.NewSession()
	if err != nil {
		return nil, err
	}
	for wi, w := range words {
		var acc []float64
		count := 0
		for k := 0; k < cfg.TrainRenditions; k++ {
			v := voice
			v.Seed = voice.Seed + uint64(k)*7919 + 1
			pcm := v.SynthesizeWord(w)
			feat, err := s.segmentFeature(pcm.Samples)
			if err != nil {
				return nil, fmt.Errorf("train %q: %w", w, err)
			}
			if feat == nil {
				continue
			}
			if acc == nil {
				acc = make([]float64, len(feat))
			}
			for i := range feat {
				acc[i] += feat[i]
			}
			count++
		}
		if count == 0 {
			return nil, fmt.Errorf("train %q: no usable renditions", w)
		}
		for i := range acc {
			acc[i] /= float64(count)
		}
		m.templates[wi] = acc
	}
	return m, nil
}

// Config returns the model's recognizer configuration.
func (m *Model) Config() Config { return m.cfg }

// Vocabulary returns the trained word list.
func (m *Model) Vocabulary() []string {
	return append([]string(nil), m.words...)
}

// MemoryBytes reports the template footprint (the in-TEE resident cost
// of the "speech model").
func (m *Model) MemoryBytes() int {
	n := 0
	for _, t := range m.templates {
		n += len(t) * 8
	}
	return n
}

// NewSession creates a per-device view of the model: the MFCC extractor
// plus matching scratch. Sessions are cheap (a few KB) and must not be
// shared across goroutines.
func (m *Model) NewSession() (*Session, error) {
	ex, err := dsp.NewExtractor(dsp.DefaultMFCCConfig(m.cfg.SampleRate))
	if err != nil {
		return nil, fmt.Errorf("asr extractor: %w", err)
	}
	return &Session{model: m, extractor: ex}, nil
}

// Session is one device's transcription state over a shared Model.
type Session struct {
	model     *Model
	extractor *dsp.Extractor

	// Scratch reused across Transcribe calls.
	feat     []float64 // segment feature (mean ++ std)
	energies []float64 // VAD frame energies
	segments [][2]int  // VAD segment spans
}

// Model returns the shared template pack behind the session.
func (s *Session) Model() *Model { return s.model }

// segmentFeature summarizes one voiced segment: mean and standard
// deviation of its MFCC frames, concatenated. The returned slice aliases
// session scratch and is valid until the next segmentFeature call.
func (s *Session) segmentFeature(samples []float64) ([]float64, error) {
	frames, err := s.extractor.Signal(samples)
	if err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, nil
	}
	nc := len(frames[0])
	if cap(s.feat) < 2*nc {
		s.feat = make([]float64, 2*nc)
	}
	s.feat = s.feat[:2*nc]
	mean, std := s.feat[:nc], s.feat[nc:]
	for i := range mean {
		mean[i], std[i] = 0, 0
	}
	for _, v := range frames {
		for i := range mean {
			mean[i] += v[i]
		}
	}
	for i := range mean {
		mean[i] /= float64(len(frames))
	}
	for _, f := range frames {
		for i := range mean {
			d := f[i] - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i] / float64(len(frames)))
	}
	return s.feat, nil
}

// Segment finds voiced regions via short-term energy. Returned ranges
// are sample offsets [start, end); the slice aliases session scratch and
// is valid until the next Segment or Transcribe call.
func (s *Session) Segment(pcm audio.PCM) [][2]int {
	frameLen := s.model.cfg.SampleRate / 100 // 10 ms
	if frameLen == 0 || len(pcm.Samples) < frameLen {
		return nil
	}
	nFrames := len(pcm.Samples) / frameLen
	if cap(s.energies) < nFrames {
		s.energies = make([]float64, nFrames)
	}
	energies := s.energies[:nFrames]
	var peak float64
	for i := 0; i < nFrames; i++ {
		var e float64
		for _, v := range pcm.Samples[i*frameLen : (i+1)*frameLen] {
			e += v * v
		}
		energies[i] = e
		if e > peak {
			peak = e
		}
	}
	if peak == 0 {
		return nil
	}
	threshold := peak * s.model.cfg.VADThresholdFrac
	minFrames := s.model.cfg.MinSegmentMs / 10
	segments := s.segments[:0]
	start := -1
	for i := 0; i <= nFrames; i++ {
		active := i < nFrames && energies[i] >= threshold
		if active && start < 0 {
			start = i
		}
		if !active && start >= 0 {
			if i-start >= minFrames {
				segments = append(segments, [2]int{start * frameLen, i * frameLen})
			}
			start = -1
		}
	}
	s.segments = segments
	return segments
}

// WordResult is one recognized word with its matching distance.
type WordResult struct {
	Word     string
	Distance float64
	Start    int // sample offset
	End      int
}

// Transcribe segments the utterance and matches each voiced segment to
// the nearest word template. Matching early-abandons a template as soon
// as its running squared distance exceeds the best seen, which cannot
// change the selected word: a partial sum already at or above the best
// squared distance can only grow, and the final comparison on completed
// sums uses the same sqrt-space strict inequality as an exhaustive scan.
func (s *Session) Transcribe(pcm audio.PCM) ([]WordResult, error) {
	var out []WordResult
	for _, seg := range s.Segment(pcm) {
		feat, err := s.segmentFeature(pcm.Samples[seg[0]:seg[1]])
		if err != nil {
			return nil, err
		}
		if feat == nil {
			continue
		}
		bestW := -1
		bestD := math.Inf(1)
		bestSq := math.Inf(1)
		for wi, tpl := range s.model.templates {
			sum, abandoned := 0.0, false
			for i := range feat {
				d := feat[i] - tpl[i]
				sum += d * d
				if sum >= bestSq {
					abandoned = true
					break
				}
			}
			if abandoned {
				continue
			}
			if d := math.Sqrt(sum); d < bestD {
				bestW, bestD, bestSq = wi, d, sum
			}
		}
		if bestW >= 0 {
			out = append(out, WordResult{
				Word: s.model.words[bestW], Distance: bestD, Start: seg[0], End: seg[1],
			})
		}
	}
	return out, nil
}

// TranscribeWords returns just the recognized word strings.
func (s *Session) TranscribeWords(pcm audio.PCM) ([]string, error) {
	results, err := s.Transcribe(pcm)
	if err != nil {
		return nil, err
	}
	words := make([]string, len(results))
	for i, res := range results {
		words[i] = res.Word
	}
	return words, nil
}

// MemoryBytes reports the shared model's template footprint.
func (s *Session) MemoryBytes() int { return s.model.MemoryBytes() }

// Recognizer is the train-then-transcribe convenience wrapper: one Model
// plus one Session behind the original single-type API. Experiments and
// tests that build a private recognizer use it; fleet-scale callers
// train a Model once and vend Sessions instead.
type Recognizer struct {
	cfg     Config
	model   *Model
	session *Session
	segSess *Session // lazily built for pre-training Segment calls
}

// New creates an untrained recognizer.
func New(cfg Config) (*Recognizer, error) {
	// Validate the MFCC configuration up front, as the historical API did.
	if _, err := dsp.NewExtractor(dsp.DefaultMFCCConfig(cfg.SampleRate)); err != nil {
		return nil, fmt.Errorf("asr extractor: %w", err)
	}
	return &Recognizer{cfg: cfg}, nil
}

// Train builds the template pack; see TrainModel.
func (r *Recognizer) Train(words []string, voice audio.Voice) error {
	m, err := TrainModel(r.cfg, words, voice)
	if err != nil {
		return err
	}
	s, err := m.NewSession()
	if err != nil {
		return err
	}
	r.model, r.session = m, s
	return nil
}

// Trained reports whether templates exist.
func (r *Recognizer) Trained() bool { return r.model != nil }

// Model returns the trained template pack (nil before Train).
func (r *Recognizer) Model() *Model { return r.model }

// Vocabulary returns the trained word list.
func (r *Recognizer) Vocabulary() []string {
	if r.model == nil {
		return nil
	}
	return r.model.Vocabulary()
}

// Segment finds voiced regions via short-term energy; see Session.Segment.
// Segmentation needs no templates, so it also works before Train (over a
// session on an empty model, built once and cached).
func (r *Recognizer) Segment(pcm audio.PCM) [][2]int {
	if r.session != nil {
		return r.session.Segment(pcm)
	}
	if r.segSess == nil {
		s, err := (&Model{cfg: r.cfg}).NewSession()
		if err != nil {
			return nil // New() validated the config; unreachable in practice
		}
		r.segSess = s
	}
	return r.segSess.Segment(pcm)
}

// Transcribe matches each voiced segment; see Session.Transcribe.
func (r *Recognizer) Transcribe(pcm audio.PCM) ([]WordResult, error) {
	if r.session == nil {
		return nil, ErrNotTrained
	}
	return r.session.Transcribe(pcm)
}

// TranscribeWords returns just the recognized word strings.
func (r *Recognizer) TranscribeWords(pcm audio.PCM) ([]string, error) {
	if r.session == nil {
		return nil, ErrNotTrained
	}
	return r.session.TranscribeWords(pcm)
}

// MemoryBytes reports the recognizer's template footprint.
func (r *Recognizer) MemoryBytes() int {
	if r.model == nil {
		return 0
	}
	return r.model.MemoryBytes()
}

// WordAccuracy compares a recognized word sequence to the reference and
// returns the fraction of positions that match (up to the shorter length,
// penalizing length mismatch).
func WordAccuracy(ref, hyp []string) float64 {
	if len(ref) == 0 {
		if len(hyp) == 0 {
			return 1
		}
		return 0
	}
	n := len(ref)
	if len(hyp) < n {
		n = len(hyp)
	}
	match := 0
	for i := 0; i < n; i++ {
		if ref[i] == hyp[i] {
			match++
		}
	}
	denom := len(ref)
	if len(hyp) > denom {
		denom = len(hyp)
	}
	return float64(match) / float64(denom)
}
