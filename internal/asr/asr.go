// Package asr is the keyword-spotting speech recognizer that runs inside
// the TA (paper §IV.4: "a pre-trained speech recognition model can be used
// to transcribe the audio signals received from the device driver"). It is
// a classical small-footprint pipeline — energy-based voice activity
// detection, MFCC features, nearest-template matching — chosen because the
// TEE memory budget (§V) rules out large neural acoustic models.
package asr

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/audio"
	"repro/internal/dsp"
)

// Errors returned by the recognizer.
var (
	// ErrNotTrained is returned when transcribing before Train.
	ErrNotTrained = errors.New("asr: recognizer not trained")
	// ErrNoVocabulary is returned for an empty word list.
	ErrNoVocabulary = errors.New("asr: empty vocabulary")
)

// Config tunes the recognizer.
type Config struct {
	SampleRate int
	// TrainRenditions is how many noisy renditions per word build the
	// template (more renditions, more robust templates).
	TrainRenditions int
	// VADThresholdFrac sets the voice-activity energy threshold as a
	// fraction of the utterance's peak frame energy.
	VADThresholdFrac float64
	// MinSegmentMs drops detected segments shorter than this.
	MinSegmentMs int
}

// DefaultConfig returns the recognizer settings used in the experiments.
func DefaultConfig(rate int) Config {
	return Config{
		SampleRate:       rate,
		TrainRenditions:  5,
		VADThresholdFrac: 0.08,
		MinSegmentMs:     60,
	}
}

// Recognizer is a trained keyword-spotting transcriber.
type Recognizer struct {
	cfg       Config
	extractor *dsp.Extractor
	words     []string
	templates [][]float64 // parallel to words
}

// New creates an untrained recognizer.
func New(cfg Config) (*Recognizer, error) {
	ex, err := dsp.NewExtractor(dsp.DefaultMFCCConfig(cfg.SampleRate))
	if err != nil {
		return nil, fmt.Errorf("asr extractor: %w", err)
	}
	return &Recognizer{cfg: cfg, extractor: ex}, nil
}

// segmentFeature summarizes one voiced segment: mean and standard
// deviation of its MFCC frames, concatenated.
func (r *Recognizer) segmentFeature(samples []float64) ([]float64, error) {
	frames, err := r.extractor.Signal(samples)
	if err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, nil
	}
	mean := dsp.MeanVector(frames)
	std := make([]float64, len(mean))
	for _, f := range frames {
		for i := range mean {
			d := f[i] - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i] / float64(len(frames)))
	}
	return append(mean, std...), nil
}

// Train builds per-word templates by synthesizing renditions with
// different seeds and averaging their features. The voice passed here is
// the "pre-training" voice; recognition generalizes to other seeds of the
// same synthetic speaker model.
func (r *Recognizer) Train(words []string, voice audio.Voice) error {
	if len(words) == 0 {
		return ErrNoVocabulary
	}
	r.words = append([]string(nil), words...)
	r.templates = make([][]float64, len(words))
	for wi, w := range words {
		var acc []float64
		count := 0
		for k := 0; k < r.cfg.TrainRenditions; k++ {
			v := voice
			v.Seed = voice.Seed + uint64(k)*7919 + 1
			pcm := v.SynthesizeWord(w)
			feat, err := r.segmentFeature(pcm.Samples)
			if err != nil {
				return fmt.Errorf("train %q: %w", w, err)
			}
			if feat == nil {
				continue
			}
			if acc == nil {
				acc = make([]float64, len(feat))
			}
			for i := range feat {
				acc[i] += feat[i]
			}
			count++
		}
		if count == 0 {
			return fmt.Errorf("train %q: no usable renditions", w)
		}
		for i := range acc {
			acc[i] /= float64(count)
		}
		r.templates[wi] = acc
	}
	return nil
}

// Trained reports whether templates exist.
func (r *Recognizer) Trained() bool { return len(r.templates) > 0 }

// Vocabulary returns the trained word list.
func (r *Recognizer) Vocabulary() []string {
	return append([]string(nil), r.words...)
}

// Segment finds voiced regions via short-term energy. Returned ranges are
// sample offsets [start, end).
func (r *Recognizer) Segment(pcm audio.PCM) [][2]int {
	frameLen := r.cfg.SampleRate / 100 // 10 ms
	if frameLen == 0 || len(pcm.Samples) < frameLen {
		return nil
	}
	nFrames := len(pcm.Samples) / frameLen
	energies := make([]float64, nFrames)
	var peak float64
	for i := 0; i < nFrames; i++ {
		var e float64
		for _, s := range pcm.Samples[i*frameLen : (i+1)*frameLen] {
			e += s * s
		}
		energies[i] = e
		if e > peak {
			peak = e
		}
	}
	if peak == 0 {
		return nil
	}
	threshold := peak * r.cfg.VADThresholdFrac
	minFrames := r.cfg.MinSegmentMs / 10
	var segments [][2]int
	start := -1
	for i := 0; i <= nFrames; i++ {
		active := i < nFrames && energies[i] >= threshold
		if active && start < 0 {
			start = i
		}
		if !active && start >= 0 {
			if i-start >= minFrames {
				segments = append(segments, [2]int{start * frameLen, i * frameLen})
			}
			start = -1
		}
	}
	return segments
}

// WordResult is one recognized word with its matching distance.
type WordResult struct {
	Word     string
	Distance float64
	Start    int // sample offset
	End      int
}

// Transcribe segments the utterance and matches each voiced segment to the
// nearest word template.
func (r *Recognizer) Transcribe(pcm audio.PCM) ([]WordResult, error) {
	if !r.Trained() {
		return nil, ErrNotTrained
	}
	var out []WordResult
	for _, seg := range r.Segment(pcm) {
		feat, err := r.segmentFeature(pcm.Samples[seg[0]:seg[1]])
		if err != nil {
			return nil, err
		}
		if feat == nil {
			continue
		}
		bestW, bestD := -1, math.Inf(1)
		for wi, tpl := range r.templates {
			if d := dsp.EuclideanDistance(feat, tpl); d < bestD {
				bestW, bestD = wi, d
			}
		}
		if bestW >= 0 {
			out = append(out, WordResult{
				Word: r.words[bestW], Distance: bestD, Start: seg[0], End: seg[1],
			})
		}
	}
	return out, nil
}

// TranscribeWords returns just the recognized word strings.
func (r *Recognizer) TranscribeWords(pcm audio.PCM) ([]string, error) {
	results, err := r.Transcribe(pcm)
	if err != nil {
		return nil, err
	}
	words := make([]string, len(results))
	for i, res := range results {
		words[i] = res.Word
	}
	return words, nil
}

// WordAccuracy compares a recognized word sequence to the reference and
// returns the fraction of positions that match (up to the shorter length,
// penalizing length mismatch).
func WordAccuracy(ref, hyp []string) float64 {
	if len(ref) == 0 {
		if len(hyp) == 0 {
			return 1
		}
		return 0
	}
	n := len(ref)
	if len(hyp) < n {
		n = len(hyp)
	}
	match := 0
	for i := 0; i < n; i++ {
		if ref[i] == hyp[i] {
			match++
		}
	}
	denom := len(ref)
	if len(hyp) > denom {
		denom = len(hyp)
	}
	return float64(match) / float64(denom)
}

// MemoryBytes reports the recognizer's template footprint (the in-TEE
// resident cost of the "speech model").
func (r *Recognizer) MemoryBytes() int {
	n := 0
	for _, t := range r.templates {
		n += len(t) * 8
	}
	return n
}
