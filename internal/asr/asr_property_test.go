package asr

import (
	"testing"
	"testing/quick"

	"repro/internal/audio"
	"repro/internal/sensitive"
)

// Property: voiced segments are in-bounds, ordered, non-overlapping, and
// at least the configured minimum length, for any word sequence.
func TestSegmentInvariantsProperty(t *testing.T) {
	vocab := sensitive.NewVocabulary().Words()
	r, err := New(DefaultConfig(16000))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cfg := DefaultConfig(16000)
	prop := func(picks []uint8, seed uint64) bool {
		if len(picks) == 0 || len(picks) > 6 {
			return true
		}
		words := make([]string, len(picks))
		for i, p := range picks {
			words[i] = vocab[int(p)%len(vocab)]
		}
		voice := audio.DefaultVoice(seed)
		pcm := voice.Synthesize(words)
		segs := r.Segment(pcm)
		minSamples := cfg.MinSegmentMs * 16 // 16 samples per ms at 16 kHz
		prevEnd := -1
		for _, s := range segs {
			if s[0] < 0 || s[1] > len(pcm.Samples) || s[0] >= s[1] {
				return false
			}
			if s[1]-s[0] < minSamples {
				return false
			}
			if s[0] <= prevEnd {
				return false
			}
			prevEnd = s[1]
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: transcription of synthesized vocabulary words only ever emits
// vocabulary words.
func TestTranscribeClosedVocabularyProperty(t *testing.T) {
	vocab := sensitive.NewVocabulary().Words()
	inVocab := make(map[string]bool, len(vocab))
	for _, w := range vocab {
		inVocab[w] = true
	}
	voice := audio.DefaultVoice(3)
	r, err := New(DefaultConfig(voice.Rate))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := r.Train(vocab, voice); err != nil {
		t.Fatalf("Train: %v", err)
	}
	prop := func(picks []uint8, seed uint64) bool {
		if len(picks) == 0 || len(picks) > 4 {
			return true
		}
		words := make([]string, len(picks))
		for i, p := range picks {
			words[i] = vocab[int(p)%len(vocab)]
		}
		v := voice
		v.Seed = seed
		hyp, err := r.TranscribeWords(v.Synthesize(words))
		if err != nil {
			return false
		}
		for _, w := range hyp {
			if !inVocab[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
