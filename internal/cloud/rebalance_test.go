package cloud

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRouterWeightedRing: a weight-3 shard owns roughly three times the
// keys of a weight-1 shard, and reweighting migrates registrations to
// the new owners.
func TestRouterWeightedRing(t *testing.T) {
	light, heavy := NewShard("light", 1, 2), NewShard("heavy", 1, 2)
	r, err := NewRouter([]*Shard{light, heavy}, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetWeight("heavy", 3)

	const n = 2000
	owned := map[string]int{}
	for i := 0; i < n; i++ {
		owned[r.ShardFor(fmt.Sprintf("device-%d", i)).Name()]++
	}
	// Expect ~3:1; allow generous slack for hash noise.
	if owned["heavy"] < n/2 || owned["light"] > n/2 {
		t.Fatalf("weight-3 shard owns %d/%d keys, weight-1 owns %d", owned["heavy"], n, owned["light"])
	}

	// Registrations follow a reweight: park every device, flip the
	// weights, and check each is ingestable (i.e. hosted by its owner).
	for i := 0; i < 64; i++ {
		r.Register(fmt.Sprintf("device-%d", i), &countingProvider{})
	}
	r.SetWeight("heavy", 1)
	r.SetWeight("light", 3)
	for i := 0; i < 64; i++ {
		if _, err := r.Ingest(fmt.Sprintf("device-%d", i), []byte("x")); err != nil {
			t.Fatalf("device-%d unreachable after reweight: %v", i, err)
		}
	}
}

// TestRouterDrainHandsOffOwnership: draining moves endpoints to ring
// successors, retires the shard's counters, and keeps every device
// ingestable with nothing double-counted.
func TestRouterDrainHandsOffOwnership(t *testing.T) {
	shards := []*Shard{NewShard("s0", 1, 2), NewShard("s1", 1, 2), NewShard("s2", 1, 2)}
	r, err := NewRouter(shards, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const devices = 48
	for i := 0; i < devices; i++ {
		r.Register(fmt.Sprintf("device-%d", i), &countingProvider{})
	}
	for i := 0; i < devices; i++ {
		if _, err := r.Ingest(fmt.Sprintf("device-%d", i), []byte("pre")); err != nil {
			t.Fatal(err)
		}
	}
	preFrames := uint64(0)
	for _, st := range r.Stats() {
		preFrames += st.Frames
	}
	if preFrames != devices {
		t.Fatalf("pre-drain frames %d, want %d", preFrames, devices)
	}

	if err := r.Drain("s1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain("nope"); err == nil {
		t.Fatal("drained an unknown shard")
	}

	for i := 0; i < devices; i++ {
		if _, err := r.Ingest(fmt.Sprintf("device-%d", i), []byte("post")); err != nil {
			t.Fatalf("device-%d lost after drain: %v", i, err)
		}
	}
	var drained *ShardStats
	total, registered := uint64(0), 0
	for _, st := range r.Stats() {
		st := st
		total += st.Frames
		registered += st.Devices
		if st.Drained {
			drained = &st
		}
	}
	if drained == nil || drained.Name != "s1" {
		t.Fatalf("retired stats missing: %+v", r.Stats())
	}
	if drained.Devices != 0 {
		t.Fatalf("drained shard still hosts %d devices", drained.Devices)
	}
	if total != 2*devices {
		t.Fatalf("frames %d across stats, want %d", total, 2*devices)
	}
	if registered != devices {
		t.Fatalf("registered %d devices across active shards, want %d", registered, devices)
	}
	if r.Audit().Events != 2*devices {
		t.Fatalf("audit events %d, want %d (endpoints double-counted or lost)", r.Audit().Events, 2*devices)
	}

	// The ring cannot be drained empty.
	if err := r.Drain("s0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain("s2"); !errors.Is(err, ErrLastShard) {
		t.Fatalf("want ErrLastShard, got %v", err)
	}
}

// TestRebalanceUnderLoadRace is the rebalance-under-churn race test (run
// with -race): devices keep joining and ingesting while one shard drains
// and a fresh weighted shard joins the ring mid-stream. Every frame must
// be delivered exactly once — a frame that raced the ring change is
// redirected, never dropped — and the audit must balance to the frame
// count.
func TestRebalanceUnderLoadRace(t *testing.T) {
	shards := []*Shard{NewShard("s0", 2, 4), NewShard("s1", 2, 4), NewShard("s2", 2, 4)}
	r, err := NewRouter(shards, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const (
		baseDevices = 24
		joiners     = 24
		frames      = 20
	)
	providers := make([]*countingProvider, baseDevices+joiners)
	for i := 0; i < baseDevices; i++ {
		providers[i] = &countingProvider{}
		r.Register(fmt.Sprintf("device-%d", i), providers[i])
	}

	var wg sync.WaitGroup
	var sent atomic.Uint64
	ingest := func(i int) {
		defer wg.Done()
		id := fmt.Sprintf("device-%d", i)
		for f := 0; f < frames; f++ {
			if _, err := r.Ingest(id, []byte("frame")); err != nil {
				t.Errorf("%s frame %d: %v", id, f, err)
				return
			}
			sent.Add(1)
		}
	}
	for i := 0; i < baseDevices; i++ {
		wg.Add(1)
		go ingest(i)
	}
	// Joiners register while the base population is mid-stream.
	for i := baseDevices; i < baseDevices+joiners; i++ {
		wg.Add(1)
		go func(i int) {
			providers[i] = &countingProvider{}
			r.Register(fmt.Sprintf("device-%d", i), providers[i])
			ingest(i)
		}(i)
	}
	// And the tier rebalances under them: a weighted shard joins, then a
	// founding shard drains.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.AddShard(NewShard("s3", 2, 4), 2)
		if err := r.Drain("s0"); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	wg.Wait()

	want := int(sent.Load())
	if want != (baseDevices+joiners)*frames {
		t.Fatalf("sent %d frames, want %d", want, (baseDevices+joiners)*frames)
	}
	got := 0
	for i, p := range providers {
		ev := p.Audit().Events
		if ev != frames {
			t.Fatalf("device-%d delivered %d frames, want %d", i, ev, frames)
		}
		got += ev
	}
	total := uint64(0)
	sawDrained := false
	for _, st := range r.Stats() {
		total += st.Frames
		if st.Errors != 0 {
			t.Fatalf("shard %s: %d endpoint errors", st.Name, st.Errors)
		}
		sawDrained = sawDrained || st.Drained
	}
	if got != want || total != uint64(want) {
		t.Fatalf("delivered %d / shard-counted %d frames, want %d", got, total, want)
	}
	if !sawDrained {
		t.Fatal("no drained shard in stats")
	}
}
