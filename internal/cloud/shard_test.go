package cloud

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// countingProvider is a minimal endpoint: it records frame counts and
// byte totals like a real backend would.
type countingProvider struct {
	mu     sync.Mutex
	frames int
	bytes  int
	fail   bool
}

func (p *countingProvider) Deliver(frame []byte) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail {
		return nil, errors.New("endpoint down")
	}
	p.frames++
	p.bytes += len(frame)
	return []byte("ack"), nil
}

func (p *countingProvider) Audit() Audit {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Audit{Events: p.frames, AudioBytes: p.bytes}
}

func (p *countingProvider) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames, p.bytes = 0, 0
}

func TestAuditMerge(t *testing.T) {
	a := Audit{Events: 2, TokensSeen: 5, SensitiveTokens: 1, AudioBytes: 10, Transcripts: [][]string{{"a"}}}
	b := Audit{Events: 3, TokensSeen: 7, SensitiveTokens: 4, AudioBytes: 20, Transcripts: [][]string{{"b"}, {"c"}}}
	m := a.Merge(b)
	if m.Events != 5 || m.TokensSeen != 12 || m.SensitiveTokens != 5 || m.AudioBytes != 30 {
		t.Fatalf("bad merge: %+v", m)
	}
	if len(m.Transcripts) != 3 {
		t.Fatalf("merge lost transcripts: %d", len(m.Transcripts))
	}
	// Merge must not mutate its receiver.
	if a.Events != 2 || len(a.Transcripts) != 1 {
		t.Fatalf("merge mutated receiver: %+v", a)
	}
}

func TestShardIngestAndAudit(t *testing.T) {
	s := NewShard("s0", 2, 4)
	defer s.Close()
	p0, p1 := &countingProvider{}, &countingProvider{}
	s.Register("dev-0", p0)
	s.Register("dev-1", p1)

	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("dev-%d", i%2)
		ack, err := s.Ingest(id, []byte{byte(i)})
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		if string(ack) != "ack" {
			t.Fatalf("ingest %d: bad directive %q", i, ack)
		}
	}
	if p0.Audit().Events != 5 || p1.Audit().Events != 5 {
		t.Fatalf("frames misrouted: %d/%d", p0.Audit().Events, p1.Audit().Events)
	}
	if got := s.Audit().Events; got != 10 {
		t.Fatalf("shard audit events = %d, want 10", got)
	}
	st := s.Stats()
	if st.Frames != 10 || st.Errors != 0 || st.Devices != 2 {
		t.Fatalf("bad stats: %+v", st)
	}
}

// allowGate admits only the device IDs in its set.
type allowGate struct{ allowed map[string]bool }

func (g *allowGate) Admit(deviceID string) error {
	if g.allowed[deviceID] {
		return nil
	}
	return errors.New("not attested")
}

func TestShardAdmissionGate(t *testing.T) {
	s := NewShard("s0", 1, 2)
	defer s.Close()
	good, bad := &countingProvider{}, &countingProvider{}
	s.Register("attested", good)
	s.Register("rogue", bad)
	s.SetGate(&allowGate{allowed: map[string]bool{"attested": true}})

	if _, err := s.Ingest("attested", []byte("x")); err != nil {
		t.Fatalf("attested device rejected: %v", err)
	}
	if _, err := s.Ingest("rogue", []byte("x")); !errors.Is(err, ErrRejected) {
		t.Fatalf("rogue: got %v, want ErrRejected", err)
	}
	if bad.Audit().Events != 0 {
		t.Fatalf("rejected frame reached the endpoint: %d events", bad.Audit().Events)
	}
	st := s.Stats()
	if st.Frames != 1 || st.Rejected != 1 || st.Errors != 0 {
		t.Fatalf("bad stats: %+v", st)
	}
	// Clearing the gate restores open admission.
	s.SetGate(nil)
	if _, err := s.Ingest("rogue", []byte("x")); err != nil {
		t.Fatalf("gateless ingest: %v", err)
	}
}

func TestShardErrors(t *testing.T) {
	s := NewShard("s0", 1, 1)
	if _, err := s.Ingest("ghost", nil); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("want ErrUnknownDevice, got %v", err)
	}
	bad := &countingProvider{fail: true}
	s.Register("dev", bad)
	if _, err := s.Ingest("dev", []byte("x")); err == nil {
		t.Fatal("want endpoint error")
	}
	if st := s.Stats(); st.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Errors)
	}
	s.Close()
	if _, err := s.Ingest("dev", []byte("x")); !errors.Is(err, ErrShardClosed) {
		t.Fatalf("want ErrShardClosed, got %v", err)
	}
	s.Close() // idempotent
}

func TestRouterConsistentHashing(t *testing.T) {
	shards := []*Shard{NewShard("s0", 1, 2), NewShard("s1", 1, 2), NewShard("s2", 1, 2), NewShard("s3", 1, 2)}
	r, err := NewRouter(shards, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Placement is deterministic and spread over multiple shards.
	used := map[string]int{}
	for i := 0; i < 256; i++ {
		id := fmt.Sprintf("device-%d", i)
		a, b := r.ShardFor(id), r.ShardFor(id)
		if a != b {
			t.Fatalf("placement of %s not stable", id)
		}
		used[a.Name()]++
	}
	if len(used) != 4 {
		t.Fatalf("256 devices only landed on %d/4 shards: %v", len(used), used)
	}

	// A device registered via the router is ingestable via the router.
	p := &countingProvider{}
	r.Register("device-7", p)
	if _, err := r.Ingest("device-7", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := r.Audit().Events; got != 1 {
		t.Fatalf("router audit events = %d, want 1", got)
	}
	if got := len(r.Stats()); got != 4 {
		t.Fatalf("stats for %d shards, want 4", got)
	}

	if _, err := NewRouter(nil, 8); !errors.Is(err, ErrNoShards) {
		t.Fatalf("want ErrNoShards, got %v", err)
	}
}

func TestRouterRingMovesFewKeysOnShardAdd(t *testing.T) {
	mk := func(names ...string) *Router {
		ss := make([]*Shard, len(names))
		for i, n := range names {
			ss[i] = NewShard(n, 1, 1)
		}
		r, err := NewRouter(ss, 64)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r4 := mk("s0", "s1", "s2", "s3")
	r5 := mk("s0", "s1", "s2", "s3", "s4")
	defer r4.Close()
	defer r5.Close()
	moved := 0
	const n = 1000
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("device-%d", i)
		if r4.ShardFor(id).Name() != r5.ShardFor(id).Name() {
			moved++
		}
	}
	// Consistent hashing moves ~1/5 of keys when going 4→5 shards; a
	// modulo hash would move ~4/5. Allow generous slack.
	if moved > n*2/5 {
		t.Fatalf("adding a shard moved %d/%d keys — not consistent hashing", moved, n)
	}
}

func TestShardBackpressureConcurrentIngest(t *testing.T) {
	// Many producers against one slow single-worker shard with a depth-2
	// queue: everything must still arrive exactly once.
	s := NewShard("s0", 1, 2)
	defer s.Close()
	p := &countingProvider{}
	s.Register("dev", p)
	var wg sync.WaitGroup
	const producers, frames = 16, 8
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				if _, err := s.Ingest("dev", []byte("f")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := p.Audit().Events; got != producers*frames {
		t.Fatalf("delivered %d frames, want %d", got, producers*frames)
	}
}

func TestUplinkRoutesDeviceTraffic(t *testing.T) {
	s := NewShard("s0", 1, 1)
	defer s.Close()
	r, err := NewRouter([]*Shard{s}, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := &countingProvider{}
	r.Register("dev", p)
	u := &Uplink{DeviceID: "dev", Router: r}
	if _, err := u.Deliver([]byte("frame")); err != nil {
		t.Fatal(err)
	}
	if p.Audit().Events != 1 {
		t.Fatal("uplink did not reach the endpoint")
	}
}
