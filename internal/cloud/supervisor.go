// Shard supervision. A production ingest tier does not stay up because
// shards never fail — it stays up because something notices when one
// does and brings it back without losing the frames it was holding. The
// Supervisor is that something: every Shard.Crash notifies it, and its
// loop restarts the crashed shard's worker pool so the queue that
// survived the crash is replayed to completion (ShardStats.Recovered).
// Recovery preserves the trust invariants: the admission gate, policy
// and endpoints are untouched by a restart — only the worker generation
// is replaced — so a replayed frame is judged exactly as it was when
// first admitted.
package cloud

import (
	"sync"
	"time"
)

// SupervisorEvent describes one supervision action, surfaced to the
// observability layer (flight-recorder notes, tracer anomalies).
type SupervisorEvent struct {
	// Kind is "shard-crash" or "shard-restart".
	Kind string
	// Shard is the affected shard's ring label.
	Shard string
	// Queued is the number of admitted frames stranded in the shard's
	// queue at crash time — the frames the restart must replay.
	Queued int
}

type crashNotice struct {
	shard  *Shard
	queued int
}

// Supervisor watches the ring for crashed shards and restarts them.
// Create one with Router.Supervise; Close it after the run (a closed
// supervisor still restarts inline, so a late crash cannot wedge the
// tier).
type Supervisor struct {
	workers int
	onEvent func(SupervisorEvent) // nil drops events
	notify  chan crashNotice
	wg      sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	restarts int
	queued   int
}

// Supervise attaches a supervisor to every shard on the ring (including
// shards added later): a crash is detected via the shard's notification
// and healed by restarting its worker pool with `workers` workers
// (floored at 1). onEvent, if non-nil, observes every crash and restart.
func (r *Router) Supervise(workers int, onEvent func(SupervisorEvent)) *Supervisor {
	if workers < 1 {
		workers = 1
	}
	sup := &Supervisor{
		workers: workers,
		onEvent: onEvent,
		notify:  make(chan crashNotice, 64),
	}
	sup.wg.Add(1)
	go sup.loop()
	r.mu.Lock()
	r.sup = sup
	for _, s := range r.shards {
		s.setSupervisor(sup)
	}
	r.mu.Unlock()
	return sup
}

// CrashShard crashes the named active shard (see Shard.Crash), returning
// the number of queued frames the restart will replay and whether the
// shard was found on the ring. Drained or unknown shards report false.
func (r *Router) CrashShard(name string) (queued int, ok bool) {
	r.mu.RLock()
	var victim *Shard
	for _, s := range r.shards {
		if s.Name() == name {
			victim = s
			break
		}
	}
	r.mu.RUnlock()
	if victim == nil {
		return 0, false
	}
	// Crash blocks until the dying worker generation exits; never under
	// the router lock, so routing stays live for the other shards.
	return victim.Crash(), true
}

// SlowShard installs a fault-injected per-frame serve delay on the named
// active shard (see Shard.SetServeDelay); reports whether it was found.
func (r *Router) SlowShard(name string, d time.Duration) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, s := range r.shards {
		if s.Name() == name {
			s.SetServeDelay(d)
			return true
		}
	}
	return false
}

func (sup *Supervisor) loop() {
	defer sup.wg.Done()
	for n := range sup.notify {
		sup.event(SupervisorEvent{Kind: "shard-crash", Shard: n.shard.Name(), Queued: n.queued})
		n.shard.Restart(sup.workers)
		sup.mu.Lock()
		sup.restarts++
		sup.queued += n.queued
		sup.mu.Unlock()
		sup.event(SupervisorEvent{Kind: "shard-restart", Shard: n.shard.Name(), Queued: n.queued})
	}
}

func (sup *Supervisor) event(e SupervisorEvent) {
	if sup.onEvent != nil {
		sup.onEvent(e)
	}
}

// notifyCrash hands a crashed shard to the supervision loop. After Close
// the restart happens inline instead, so a crash can never strand a
// queue just because supervision already wound down.
func (sup *Supervisor) notifyCrash(s *Shard, queued int) {
	sup.mu.Lock()
	if sup.closed {
		sup.mu.Unlock()
		s.Restart(sup.workers)
		return
	}
	sup.notify <- crashNotice{shard: s, queued: queued}
	sup.mu.Unlock()
}

// Restarts reports how many shard restarts the supervisor performed.
func (sup *Supervisor) Restarts() int {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	return sup.restarts
}

// QueuedReplayed reports the total frames that were stranded in crashed
// shards' queues and handed to restarts for replay.
func (sup *Supervisor) QueuedReplayed() int {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	return sup.queued
}

// Close drains pending supervision work and stops the loop. Crashes
// after Close are still healed (inline).
func (sup *Supervisor) Close() {
	sup.mu.Lock()
	if sup.closed {
		sup.mu.Unlock()
		return
	}
	sup.closed = true
	sup.mu.Unlock()
	close(sup.notify)
	sup.wg.Wait()
}
