// Package cloud simulates the untrusted cloud service provider of the
// paper's threat model (§I): an honest-but-curious voice-assistant backend
// that faithfully serves requests and records *everything* it receives.
// The auditor quantifies leakage as the number of private tokens the
// provider observed — the paper's central privacy metric.
//
// Two ingestion paths model the two deployments:
//
//   - Service (sealed relay frames): the paper's design. The cloud is the
//     legitimate TLS peer, so it decrypts events — filtering must happen
//     before sealing, on the device.
//   - PlainIngest (raw audio): the §I baseline, where devices ship raw
//     microphone audio; the cloud runs its own large speech model.
//
// At fleet scale (shard.go) the provider runs many per-device channel
// terminators behind consistent-hash shards: Router places device IDs on
// Shards, each Shard serializes its devices' frames through a bounded
// worker pool with queue backpressure, and per-shard/per-fleet Audits
// aggregate what the provider learned. In attested deployments every
// frame additionally passes an AdmissionGate before reaching a worker,
// so unattested or stale-model devices are rejected at the frontend —
// the cloud half of the remote-attestation handshake implemented in
// internal/attest.
package cloud

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/asr"
	"repro/internal/audio"
	"repro/internal/relay"
	"repro/internal/sensitive"
	"repro/internal/supplicant"
)

// ErrNoChannel is returned when sealed frames arrive before a handshake.
var ErrNoChannel = errors.New("cloud: no established channel")

// Observation is one recorded cloud-side datum.
type Observation struct {
	Kind       string // "transcript" or "audio"
	Tokens     []string
	AudioBytes int
}

// Audit summarizes what the provider (or anyone who compromises it)
// learned.
type Audit struct {
	Events          int
	TokensSeen      int
	SensitiveTokens int
	AudioBytes      int
	Transcripts     [][]string
}

// Service is the AVS-like backend speaking the sealed relay protocol.
type Service struct {
	identity *Identity

	mu           sync.Mutex
	channel      *relay.Channel
	observed     []Observation
	directiveSeq uint64
}

// Identity wraps the service's key pair so callers cannot touch the
// private half.
type Identity struct {
	id *relay.Identity
}

// NewIdentity creates the cloud's key pair (rand as in relay.NewIdentity).
func NewIdentity(id *relay.Identity) *Identity { return &Identity{id: id} }

// NewService creates a backend with the given identity.
func NewService(id *Identity) *Service {
	return &Service{identity: id}
}

// PublicKey returns the service's public key for client handshakes.
func (s *Service) PublicKey() []byte { return s.identity.id.PublicKey() }

// Handshake completes the server side of the channel with a client's
// public key.
func (s *Service) Handshake(clientPub []byte) error {
	ch, err := relay.NewChannel(s.identity.id, clientPub, false)
	if err != nil {
		return fmt.Errorf("cloud handshake: %w", err)
	}
	s.mu.Lock()
	s.channel = ch
	s.mu.Unlock()
	return nil
}

var _ supplicant.NetSink = (*Service)(nil)

// Deliver implements supplicant.NetSink: the cloud terminates the secure
// channel, records the decrypted event, and returns a sealed directive.
func (s *Service) Deliver(frame []byte) ([]byte, error) {
	s.mu.Lock()
	ch := s.channel
	s.mu.Unlock()
	if ch == nil {
		return nil, ErrNoChannel
	}
	plain, err := ch.Open(frame)
	if err != nil {
		return nil, fmt.Errorf("cloud open: %w", err)
	}
	event, err := relay.DecodeEvent(plain)
	if err != nil {
		return nil, fmt.Errorf("cloud decode: %w", err)
	}
	s.record(event)
	s.mu.Lock()
	s.directiveSeq++
	seq := s.directiveSeq
	s.mu.Unlock()
	ack, err := relay.EncodeEvent(relay.Event{
		Namespace: relay.NamespaceSystem,
		Name:      relay.NameAckDirective,
		MessageID: seq,
	})
	if err != nil {
		return nil, err
	}
	return ch.Seal(ack), nil
}

func (s *Service) record(e relay.Event) {
	obs := Observation{}
	switch e.Name {
	case relay.NameTranscript:
		obs.Kind = "transcript"
		obs.Tokens = append([]string(nil), e.Transcript...)
	case relay.NameAudio:
		obs.Kind = "audio"
		obs.AudioBytes = len(e.Audio)
	default:
		obs.Kind = e.Name
	}
	s.mu.Lock()
	s.observed = append(s.observed, obs)
	s.mu.Unlock()
}

// Audit returns the provider's accumulated view.
func (s *Service) Audit() Audit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return buildAudit(s.observed)
}

// Reset clears the recorded observations (between experiment runs).
func (s *Service) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observed = nil
}

func buildAudit(obs []Observation) Audit {
	var a Audit
	for _, o := range obs {
		a.Events++
		a.TokensSeen += len(o.Tokens)
		a.SensitiveTokens += sensitive.CountSensitiveTokens(o.Tokens)
		a.AudioBytes += o.AudioBytes
		if len(o.Tokens) > 0 {
			a.Transcripts = append(a.Transcripts, o.Tokens)
		}
	}
	return a
}

// Transcriber is the server-side ASR contract PlainService needs; both
// *asr.Recognizer and the fleet-shared *asr.Session satisfy it.
type Transcriber interface {
	TranscribeWords(pcm audio.PCM) ([]string, error)
}

var (
	_ Transcriber = (*asr.Recognizer)(nil)
	_ Transcriber = (*asr.Session)(nil)
)

// PlainService is the baseline backend: it ingests raw (unfiltered,
// unsealed) audio, transcribes it with the provider's own large speech
// model, and records the result. This is the deployment the paper's §I
// incidents describe.
type PlainService struct {
	mu         sync.Mutex
	recognizer Transcriber
	observed   []Observation
	decodeBuf  []float64 // per-service decode scratch (guarded by mu)
}

// NewPlainService creates the baseline backend. The recognizer stands in
// for the provider's server-side ASR; callers train it on the experiment
// voice (providers have far better models than any device).
func NewPlainService(recognizer Transcriber) *PlainService {
	return &PlainService{recognizer: recognizer}
}

var _ supplicant.NetSink = (*PlainService)(nil)

// Deliver implements supplicant.NetSink for raw 16-bit PCM payloads.
// Transcription happens under the service lock: recognizer sessions
// carry scratch state, and the lock serializes them even if a shard
// pool ever delivers two of a device's frames concurrently.
func (p *PlainService) Deliver(payload []byte) ([]byte, error) {
	p.mu.Lock()
	floats, err := audio.DecodePCM16Into(p.decodeBuf, payload)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	p.decodeBuf = floats
	pcm := audio.PCM{Rate: 16000, Samples: floats}
	tokens, err := p.recognizer.TranscribeWords(pcm)
	if err != nil {
		p.mu.Unlock()
		return nil, fmt.Errorf("cloud asr: %w", err)
	}
	p.observed = append(p.observed, Observation{
		Kind: "audio", Tokens: tokens, AudioBytes: len(payload),
	})
	p.mu.Unlock()
	return []byte(`{"name":"Directive.Ack"}`), nil
}

// Audit returns the provider's accumulated view.
func (p *PlainService) Audit() Audit {
	p.mu.Lock()
	defer p.mu.Unlock()
	return buildAudit(p.observed)
}

// Reset clears recorded observations.
func (p *PlainService) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observed = nil
}

func decodePCM16(payload []byte) (audio.PCM, error) {
	samples, err := audio.DecodePCM16Into(nil, payload)
	if err != nil {
		return audio.PCM{}, fmt.Errorf("cloud: %w", err)
	}
	return audio.PCM{Rate: 16000, Samples: samples}, nil
}

// EncodePCM16 is the inverse wire helper used by device-side senders.
func EncodePCM16(pcm audio.PCM) []byte {
	samples := pcm.ToInt16()
	out := make([]byte, len(samples)*2)
	for i, s := range samples {
		out[2*i] = byte(uint16(s))
		out[2*i+1] = byte(uint16(s) >> 8)
	}
	return out
}
