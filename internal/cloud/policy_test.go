package cloud

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

// slowProvider holds every delivery until released, so tests can build
// real queue pressure deterministically; started signals each Deliver
// entry so a test can wait until the worker holds a frame.
type slowProvider struct {
	mu        sync.Mutex
	delivered int
	gate      chan struct{}
	started   chan struct{}
}

func newSlowProvider() *slowProvider {
	return &slowProvider{gate: make(chan struct{}), started: make(chan struct{}, 64)}
}

func (p *slowProvider) Deliver(frame []byte) ([]byte, error) {
	select {
	case p.started <- struct{}{}:
	default: // signal is best-effort; tests consume only the first
	}
	<-p.gate
	p.mu.Lock()
	p.delivered++
	p.mu.Unlock()
	return []byte("ack"), nil
}

func (p *slowProvider) Audit() Audit {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Audit{Events: p.delivered}
}

func (p *slowProvider) Reset() {}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"": "fixed", "fixed": "fixed", "shed": "shed", "fair": "fair",
	} {
		p, ok := PolicyByName(name)
		if !ok || p.Name() != want {
			t.Fatalf("PolicyByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := PolicyByName("bogus"); ok {
		t.Fatal("accepted unknown policy name")
	}
}

// TestLoadShedUnderPressure: with the queue held at its high-water mark,
// bulk frames shed and priority frames do not.
func TestLoadShedUnderPressure(t *testing.T) {
	s := NewShard("s0", 1, 4)
	s.SetPolicy(&LoadShedPolicy{HighWater: 0.5})
	p := newSlowProvider()
	s.Register("dev", p)

	// Fill the queue to the mark one admitted frame at a time (so no
	// fill frame ever sees the mark itself): the single worker blocks on
	// the provider holding the first frame, two more sit queued
	// (bulk pending 2 = mark).
	var wg sync.WaitGroup
	fill := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Ingest("dev", []byte("fill")); err != nil {
				t.Errorf("fill frame: %v", err)
			}
		}()
	}
	fill()
	<-p.started // worker holds frame 1; queue empty
	fill()
	waitForPending(t, s, 1)
	fill()
	waitForPending(t, s, 2)

	if _, err := s.Ingest("dev", []byte("bulk")); !errors.Is(err, ErrShed) {
		t.Fatalf("bulk frame above high water: got %v, want ErrShed", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.IngestMeta("dev", []byte("prio"), FrameMeta{Priority: true})
		done <- err
	}()

	close(p.gate)
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("priority frame under pressure: %v", err)
	}
	st := s.Stats()
	if st.Shed != 1 || st.Prioritized != 1 {
		t.Fatalf("stats: %+v (want Shed=1 Prioritized=1)", st)
	}
	s.Close()
}

// TestFairShareShedsOnlyOverShareTenants: above the high-water mark the
// fair-share policy sheds the tenant hogging the queue but still admits
// a tenant under its share.
func TestFairShareShedsOnlyOverShareTenants(t *testing.T) {
	s := NewShard("s0", 1, 4)
	s.SetPolicy(NewFairSharePolicy(0.5))
	p := newSlowProvider()
	s.Register("dev", p)

	hog := FrameMeta{Tenant: "hog"}
	var wg sync.WaitGroup
	send := func(meta FrameMeta) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.IngestMeta("dev", []byte("fill"), meta); err != nil {
				t.Errorf("fill frame (%+v): %v", meta, err)
			}
		}()
	}
	// Build pressure one admitted frame at a time so the policy's view is
	// deterministic: the worker holds one hog frame, three more hog frames
	// and one quiet frame sit queued. With only "hog" active its fair
	// share is the whole queue, so nothing sheds while it is alone.
	send(hog)
	<-p.started // worker holds frame 1; queue empty
	send(hog)
	waitForPending(t, s, 1)
	send(hog)
	waitForPending(t, s, 2)
	send(hog)
	waitForPending(t, s, 3)
	send(FrameMeta{Tenant: "quiet"})
	waitForPending(t, s, 4)

	// Two active tenants now split a capacity-4 queue: fair share 2.
	// "hog" queues 3 frames (over share) → its next bulk frame sheds;
	// "quiet" queues 1 (under share) → its next frame is admitted.
	if _, err := s.IngestMeta("dev", []byte("more"), hog); !errors.Is(err, ErrShed) {
		t.Fatalf("over-share tenant: got %v, want ErrShed", err)
	}
	send(FrameMeta{Tenant: "quiet"})

	close(p.gate)
	wg.Wait()
	if st := s.Stats(); st.Shed != 1 || st.Frames != 6 {
		t.Fatalf("stats: %+v (want Shed=1 Frames=6)", st)
	}
	s.Close()
}

// TestShedOnlyEverDropsBulkFrames is the shed-safety property test: for
// randomized mixes of priority/bulk traffic, tenants, queue depths and
// policies, fired concurrently against slow shards, a shed frame is only
// ever a bulk frame. The property is structural (the shard never asks
// the policy about a priority frame), and this is the behavioural check:
// priority senders must never observe ErrShed, no matter the pressure.
func TestShedOnlyEverDropsBulkFrames(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(0xe1a57, uint64(trial)))
			var policy AdmissionPolicy = &LoadShedPolicy{HighWater: 0.25 + rng.Float64()/2}
			if trial%2 == 1 {
				policy = NewFairSharePolicy(0.25 + rng.Float64()/2)
			}
			depth := 1 + rng.IntN(4)
			s := NewShard("s0", 1, depth)
			s.SetPolicy(policy)
			p := newSlowProvider()
			s.Register("dev", p)

			const senders = 24
			frames := 4 + rng.IntN(8)
			prioBySender := make([]bool, senders)
			tenantBySender := make([]string, senders)
			for i := range prioBySender {
				prioBySender[i] = rng.Float64() < 0.4
				tenantBySender[i] = fmt.Sprintf("tenant-%d", rng.IntN(3))
			}

			var wg sync.WaitGroup
			var mu sync.Mutex
			prioShed, bulkShed, otherErrs := 0, 0, 0
			for i := 0; i < senders; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					meta := FrameMeta{Tenant: tenantBySender[i], Priority: prioBySender[i]}
					for f := 0; f < frames; f++ {
						_, err := s.IngestMeta("dev", []byte("x"), meta)
						switch {
						case err == nil:
						case errors.Is(err, ErrShed):
							mu.Lock()
							if meta.Priority {
								prioShed++
							} else {
								bulkShed++
							}
							mu.Unlock()
						default:
							mu.Lock()
							otherErrs++
							mu.Unlock()
						}
					}
				}(i)
			}
			// Keep the provider slow long enough for pressure to build,
			// then let the queue drain so every sender finishes.
			time.Sleep(2 * time.Millisecond)
			close(p.gate)
			wg.Wait()

			if prioShed != 0 {
				t.Fatalf("%d priority frames shed (bulk shed %d)", prioShed, bulkShed)
			}
			if otherErrs != 0 {
				t.Fatalf("%d unexpected errors", otherErrs)
			}
			st := s.Stats()
			if int(st.Shed) != bulkShed {
				t.Fatalf("shard counted %d shed, senders observed %d", st.Shed, bulkShed)
			}
			if int(st.Frames)+bulkShed != senders*frames {
				t.Fatalf("frames %d + shed %d != sent %d", st.Frames, bulkShed, senders*frames)
			}
			s.Close()
		})
	}
}

// waitForPending blocks until the shard has n admitted-but-unserved
// frames (the test's pressure precondition).
func waitForPending(t *testing.T, s *Shard, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		pending := s.pending
		s.mu.Unlock()
		if pending >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending stuck at %d, want %d", pending, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}
