// Admission policies. The PR-1 ingest tier had exactly one admission
// behaviour: a fixed-depth queue whose fullness blocked the radio
// (backpressure). A production frontend serving an elastic fleet needs
// more: under queue pressure it sheds bulk telemetry rather than
// stalling every device behind one slow shard, it keeps a priority lane
// for flagged/security events so they are never the frames that get
// dropped, and it stops a single chatty tenant from starving everyone
// else's share of the queue.
//
// AdmissionPolicy is the pluggable seam for those behaviours. It
// composes with (and runs after) the attestation AdmissionGate: the gate
// answers *who* may ingest at all — an identity/trust decision — while
// the policy answers *whether this frame fits right now* — a capacity
// decision. Policies see only cleartext connection metadata (FrameMeta:
// tenant label and traffic class); frames themselves are sealed, so an
// honest-but-curious frontend cannot make admission decisions from
// content even if it wanted to. The priority lane itself is enforced by
// the Shard, not the policy: a policy is never asked to shed a priority
// frame, so "priority frames are never shed" holds for any policy
// implementation, including a buggy one.
package cloud

import "sync"

// FrameMeta is the cleartext connection metadata the ingest frontend may
// use for admission decisions. It travels outside the sealed payload —
// the provider terminates TLS per device and reads the traffic class and
// tenant from the connection, never from frame content.
type FrameMeta struct {
	// Tenant is the billing/fair-share label of the device's owner.
	Tenant string
	// Priority marks flagged/security events (e.g. doorbell events) that
	// ride the priority lane: served before bulk telemetry and never
	// shed by an admission policy.
	Priority bool
	// Seq is the device-assigned frame sequence number (1-based; 0 means
	// unsequenced, e.g. probe traffic). The shard dedups by (device, Seq)
	// so a duplicated delivery can never double-count in the audit. Like
	// the rest of FrameMeta it is cleartext connection metadata — it says
	// nothing about frame content.
	Seq uint64
}

// AdmissionPolicy decides, per non-priority frame, whether the shard
// should shed it instead of queueing it. Admitted/Served bracket a
// frame's time in the queue so stateful policies (fair share) can track
// occupancy. All three methods are called under the shard lock; a policy
// shared across shards must do its own locking for cross-shard state.
type AdmissionPolicy interface {
	// Name labels the policy in stats and snapshots.
	Name() string
	// ShouldShed reports whether a non-priority frame should be shed
	// given the shard's queued *bulk*-frame count and the bulk lane's
	// capacity. The shard never consults ShouldShed for priority frames,
	// and priority-lane occupancy is excluded from pending — priority
	// bursts cannot make a policy shed bulk frames out of an empty bulk
	// queue.
	ShouldShed(f FrameMeta, pending, capacity int) bool
	// Admitted notes a frame (any class) entering the shard queue.
	Admitted(f FrameMeta)
	// Served notes a previously Admitted frame being picked up by a
	// worker.
	Served(f FrameMeta)
}

// FixedQueuePolicy is the PR-1 behaviour made explicit: never shed, let
// the bounded queue block the radio. A nil policy behaves identically;
// this type exists so the choice shows up by name in stats.
type FixedQueuePolicy struct{}

// Name implements AdmissionPolicy.
func (FixedQueuePolicy) Name() string { return "fixed" }

// ShouldShed implements AdmissionPolicy: never shed.
func (FixedQueuePolicy) ShouldShed(FrameMeta, int, int) bool { return false }

// Admitted implements AdmissionPolicy.
func (FixedQueuePolicy) Admitted(FrameMeta) {}

// Served implements AdmissionPolicy.
func (FixedQueuePolicy) Served(FrameMeta) {}

// DefaultHighWater is the queue-occupancy fraction above which the
// shedding policies start dropping bulk frames.
const DefaultHighWater = 0.75

// LoadShedPolicy sheds bulk telemetry once the queue passes a high-water
// fraction of its capacity, trading completeness for tail latency: a
// burst beyond what the workers absorb drops cheap frames at the
// frontend instead of stalling every device behind the full queue.
type LoadShedPolicy struct {
	// HighWater is the occupancy fraction (of queue capacity) at which
	// shedding starts; 0 means DefaultHighWater.
	HighWater float64
}

// Name implements AdmissionPolicy.
func (p *LoadShedPolicy) Name() string { return "shed" }

// ShouldShed implements AdmissionPolicy.
func (p *LoadShedPolicy) ShouldShed(_ FrameMeta, pending, capacity int) bool {
	return pending >= highWaterMark(p.HighWater, capacity)
}

// Admitted implements AdmissionPolicy.
func (p *LoadShedPolicy) Admitted(FrameMeta) {}

// Served implements AdmissionPolicy.
func (p *LoadShedPolicy) Served(FrameMeta) {}

// FairSharePolicy is LoadShedPolicy with per-tenant accounting: above
// the high-water mark it sheds bulk frames only from tenants that hold
// at least their fair share (capacity / active tenants) of the bulk
// queue, so one chatty tenant's burst cannot crowd out everyone else's
// telemetry. Only bulk frames count toward a tenant's occupancy — the
// priority lane is arbitrated separately, so a tenant's security events
// can never cost it its telemetry share. One instance may be installed
// on every shard of a router, in which case occupancy is tracked
// tier-wide (the tenant's global bulk footprint is judged against the
// local shard's capacity).
type FairSharePolicy struct {
	// HighWater is the occupancy fraction at which shedding starts;
	// 0 means DefaultHighWater.
	HighWater float64

	mu     sync.Mutex
	queued map[string]int // tenant -> bulk frames currently queued
}

// NewFairSharePolicy creates the policy (highWater 0 = DefaultHighWater).
func NewFairSharePolicy(highWater float64) *FairSharePolicy {
	return &FairSharePolicy{HighWater: highWater, queued: make(map[string]int)}
}

// Name implements AdmissionPolicy.
func (p *FairSharePolicy) Name() string { return "fair" }

// ShouldShed implements AdmissionPolicy.
func (p *FairSharePolicy) ShouldShed(f FrameMeta, pending, capacity int) bool {
	if pending < highWaterMark(p.HighWater, capacity) {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	active := len(p.queued)
	if p.queued[f.Tenant] == 0 {
		active++ // the candidate's tenant counts toward the division
	}
	fair := capacity / active
	if fair < 1 {
		fair = 1
	}
	return p.queued[f.Tenant] >= fair
}

// Admitted implements AdmissionPolicy. Priority frames are excluded:
// tenant occupancy tracks the bulk lane ShouldShed arbitrates.
func (p *FairSharePolicy) Admitted(f FrameMeta) {
	if f.Priority {
		return
	}
	p.mu.Lock()
	p.queued[f.Tenant]++
	p.mu.Unlock()
}

// Served implements AdmissionPolicy.
func (p *FairSharePolicy) Served(f FrameMeta) {
	if f.Priority {
		return
	}
	p.mu.Lock()
	if p.queued[f.Tenant]--; p.queued[f.Tenant] <= 0 {
		delete(p.queued, f.Tenant)
	}
	p.mu.Unlock()
}

// highWaterMark converts a fraction into a queued-frame threshold,
// floored at 1 so a capacity-1 queue can still shed.
func highWaterMark(frac float64, capacity int) int {
	if frac <= 0 {
		frac = DefaultHighWater
	}
	mark := int(frac * float64(capacity))
	if mark < 1 {
		mark = 1
	}
	return mark
}

// PolicyByName maps the CLI/config spelling to a policy instance:
// "" or "fixed" → FixedQueuePolicy, "shed" → LoadShedPolicy,
// "fair" → FairSharePolicy. Unknown names return (nil, false).
func PolicyByName(name string) (AdmissionPolicy, bool) {
	switch name {
	case "", "fixed":
		return FixedQueuePolicy{}, true
	case "shed":
		return &LoadShedPolicy{}, true
	case "fair":
		return NewFairSharePolicy(0), true
	default:
		return nil, false
	}
}
