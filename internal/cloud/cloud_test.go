package cloud

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/asr"
	"repro/internal/audio"
	"repro/internal/relay"
	"repro/internal/sensitive"
)

type seededReader struct{ rng *rand.Rand }

func (s seededReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(s.rng.Uint64())
	}
	return len(p), nil
}

func sealedFixture(t *testing.T) (*Service, *relay.Channel) {
	t.Helper()
	rng := seededReader{rand.New(rand.NewPCG(1, 2))}
	cloudID, err := relay.NewIdentity(rng)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	taID, err := relay.NewIdentity(rng)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	svc := NewService(NewIdentity(cloudID))
	if err := svc.Handshake(taID.PublicKey()); err != nil {
		t.Fatalf("Handshake: %v", err)
	}
	ch, err := relay.NewChannel(taID, svc.PublicKey(), true)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	return svc, ch
}

func sealEvent(t *testing.T, ch *relay.Channel, e relay.Event) []byte {
	t.Helper()
	data, err := relay.EncodeEvent(e)
	if err != nil {
		t.Fatalf("EncodeEvent: %v", err)
	}
	return ch.Seal(data)
}

func TestServiceRecordsTranscripts(t *testing.T) {
	svc, ch := sealedFixture(t)
	frame := sealEvent(t, ch, relay.Event{
		Namespace:  relay.NamespaceSpeech,
		Name:       relay.NameTranscript,
		MessageID:  1,
		Transcript: []string{"my", "password", "is", "tango"},
	})
	reply, err := svc.Deliver(frame)
	if err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	// The reply is a sealed directive the TA can open.
	plain, err := ch.Open(reply)
	if err != nil {
		t.Fatalf("Open reply: %v", err)
	}
	dir, err := relay.DecodeEvent(plain)
	if err != nil || dir.Name != relay.NameAckDirective {
		t.Errorf("directive = %+v, %v", dir, err)
	}
	audit := svc.Audit()
	if audit.Events != 1 || audit.TokensSeen != 4 || audit.SensitiveTokens != 1 {
		t.Errorf("audit = %+v", audit)
	}
}

func TestServiceRejectsGarbage(t *testing.T) {
	svc, _ := sealedFixture(t)
	garbage := make([]byte, 64)
	garbage[7] = 1 // plausible sequence number, bogus ciphertext
	if _, err := svc.Deliver(garbage); !errors.Is(err, relay.ErrBadFrame) {
		t.Errorf("garbage Deliver = %v", err)
	}
	fresh := NewService(NewIdentity(mustIdentity(t)))
	if _, err := fresh.Deliver(make([]byte, 64)); !errors.Is(err, ErrNoChannel) {
		t.Errorf("pre-handshake Deliver = %v", err)
	}
}

func mustIdentity(t *testing.T) *relay.Identity {
	t.Helper()
	id, err := relay.NewIdentity(seededReader{rand.New(rand.NewPCG(7, 7))})
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	return id
}

func TestServiceReset(t *testing.T) {
	svc, ch := sealedFixture(t)
	if _, err := svc.Deliver(sealEvent(t, ch, relay.Event{Name: relay.NameTranscript, Transcript: []string{"hi"}})); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	svc.Reset()
	if a := svc.Audit(); a.Events != 0 {
		t.Errorf("audit after reset = %+v", a)
	}
}

func TestPlainServiceTranscribesRawAudio(t *testing.T) {
	voice := audio.DefaultVoice(1000)
	rec, err := asr.New(asr.DefaultConfig(voice.Rate))
	if err != nil {
		t.Fatalf("asr.New: %v", err)
	}
	vocab := sensitive.NewVocabulary()
	if err := rec.Train(vocab.Words(), voice); err != nil {
		t.Fatalf("Train: %v", err)
	}
	svc := NewPlainService(rec)

	speak := voice
	speak.Seed = 123
	pcm := speak.Synthesize([]string{"my", "password", "is", "tango"})
	reply, err := svc.Deliver(EncodePCM16(pcm))
	if err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if len(reply) == 0 {
		t.Error("empty reply")
	}
	audit := svc.Audit()
	if audit.Events != 1 {
		t.Fatalf("audit = %+v", audit)
	}
	// The provider transcribed the raw audio and saw the private token:
	// exactly the §I leak.
	if audit.SensitiveTokens == 0 {
		t.Errorf("cloud ASR missed the private token: transcripts %v", audit.Transcripts)
	}
	if audit.AudioBytes != len(pcm.Samples)*2 {
		t.Errorf("AudioBytes = %d, want %d", audit.AudioBytes, len(pcm.Samples)*2)
	}
	svc.Reset()
	if svc.Audit().Events != 0 {
		t.Error("reset failed")
	}
}

func TestPlainServiceOddPayload(t *testing.T) {
	rec, err := asr.New(asr.DefaultConfig(16000))
	if err != nil {
		t.Fatalf("asr.New: %v", err)
	}
	svc := NewPlainService(rec)
	if _, err := svc.Deliver([]byte{1, 2, 3}); err == nil {
		t.Error("odd payload accepted")
	}
}

func TestPCM16WireRoundTrip(t *testing.T) {
	pcm := audio.Sine(16000, 440, 0.5, 20*time.Millisecond)
	wire := EncodePCM16(pcm)
	back, err := decodePCM16(wire)
	if err != nil {
		t.Fatalf("decodePCM16: %v", err)
	}
	if len(back.Samples) != len(pcm.Samples) {
		t.Fatalf("lengths differ")
	}
	wire2 := EncodePCM16(back)
	if !bytes.Equal(wire, wire2) {
		t.Error("wire form not stable")
	}
}

func TestAuditCountsAcrossEvents(t *testing.T) {
	svc, ch := sealedFixture(t)
	events := []relay.Event{
		{Name: relay.NameTranscript, MessageID: 1, Transcript: []string{"turn", "on", "light"}},
		{Name: relay.NameTranscript, MessageID: 2, Transcript: []string{"password", "account"}},
		{Name: relay.NameAudio, MessageID: 3, Audio: make([]byte, 100)},
	}
	for _, e := range events {
		if _, err := svc.Deliver(sealEvent(t, ch, e)); err != nil {
			t.Fatalf("Deliver: %v", err)
		}
	}
	a := svc.Audit()
	if a.Events != 3 || a.TokensSeen != 5 || a.SensitiveTokens != 2 || a.AudioBytes != 100 {
		t.Errorf("audit = %+v", a)
	}
	if len(a.Transcripts) != 2 {
		t.Errorf("transcripts = %v", a.Transcripts)
	}
}
