// Fleet-scale ingest. A single Service terminates one device's channel;
// a provider serving millions of devices runs many such terminators
// behind a sharded frontend. Shard hosts the per-device endpoints hashed
// to it and serializes their ingest through a bounded worker pool with
// two lanes: a bulk lane whose fullness pushes back on the radio, and a
// priority lane for flagged/security events that workers drain first.
// Router places devices on shards with a weighted consistent-hash ring
// (virtual nodes per shard × shard weight) so membership changes move
// only neighbouring devices — and the membership *can* change at
// runtime: AddShard grows the ring, SetWeight retunes it, and Drain
// retires a shard without dropping an in-flight frame (stop accepting,
// flush the queue, hand the ownership ranges and their endpoints to the
// ring successors, retire the audit counters into the router's history).
//
// Two pluggable checks run per frame before it reaches a worker, in
// order: the AdmissionGate (the attestation verifier in attested fleets
// — an identity decision: may this device ingest at all?) and the
// AdmissionPolicy (a capacity decision: does this frame fit right now,
// or is it shed?). Rejections, sheds, priority admissions and frames
// redirected by a rebalance are all counted per shard (ShardStats).
package cloud

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attest"
	"repro/internal/obs"
	"repro/internal/supplicant"
)

// Provider is the ingest-side contract every backend flavour satisfies
// (sealed Service, baseline PlainService): deliver one frame, account for
// what was learned.
type Provider interface {
	Deliver(frame []byte) ([]byte, error)
	Audit() Audit
	Reset()
}

var (
	_ Provider = (*Service)(nil)
	_ Provider = (*PlainService)(nil)
)

// Merge folds b's counters and transcripts into a copy of a, so per-shard
// and per-fleet views aggregate from per-device audits.
func (a Audit) Merge(b Audit) Audit {
	a.Events += b.Events
	a.TokensSeen += b.TokensSeen
	a.SensitiveTokens += b.SensitiveTokens
	a.AudioBytes += b.AudioBytes
	a.Transcripts = append(a.Transcripts, b.Transcripts...)
	return a
}

// AdmissionGate decides, per frame, whether a device's traffic may
// reach its endpoint. attest.Verifier implements it; a nil gate admits
// everything (the pre-attestation deployment).
type AdmissionGate interface {
	// Admit returns nil to accept the device's frame, or the policy
	// error that rejected it (e.g. attest.ErrUnattested).
	Admit(deviceID string) error
}

// TenantAdmissionGate is an AdmissionGate that routes the admission
// decision by the tenant label the frontend reads from the connection
// (FrameMeta.Tenant) — attest.Federation implements it, giving every
// tenant its own digest policy, minimum version and revocation list. A
// gate that implements this interface is consulted through AdmitTenant
// on every frame; plain gates keep the identity-only Admit path. Like
// the admission policy, the gate sees only cleartext connection
// metadata, never sealed frame content.
type TenantAdmissionGate interface {
	AdmissionGate
	// AdmitTenant judges the device's frame by its tenant's policy.
	AdmitTenant(deviceID, tenant string) error
}

// Errors returned by the ingest tier.
var (
	// ErrUnknownDevice is returned for frames from unregistered devices.
	ErrUnknownDevice = errors.New("cloud: unknown device")
	// ErrRejected wraps admission-gate rejections.
	ErrRejected = errors.New("cloud: admission rejected")
	// ErrShed is returned for frames the admission policy dropped under
	// queue pressure. Senders treat it as a retriable drop, not a fault.
	// It wraps supplicant.ErrShed so the RPC daemon ferrying a sealed
	// frame can classify the refusal separately from transport errors.
	ErrShed = fmt.Errorf("cloud: frame shed by admission policy (%w)", supplicant.ErrShed)
	// ErrShardClosed is returned for ingest after Close (or Drain).
	ErrShardClosed = errors.New("cloud: shard closed")
	// ErrShardCrashed is returned for ingest attempts while a shard is
	// crashed and awaiting its supervisor restart. It wraps
	// supplicant.ErrTransient: the ring still names this shard as the
	// owner — it is briefly down, not gone — so senders retry with
	// backoff instead of re-resolving.
	ErrShardCrashed = fmt.Errorf("cloud: shard crashed (%w)", supplicant.ErrTransient)
	// ErrExpired is returned for frames whose delivery was explicitly
	// given up on: the device-side retry budget ran out, or the router's
	// re-resolution stopped making progress. It wraps
	// supplicant.ErrExpired so the RPC daemon and the device TA classify
	// the frame as an explicit Expired outcome — accounted, never lost.
	ErrExpired = fmt.Errorf("cloud: frame delivery expired (%w)", supplicant.ErrExpired)
	// ErrDuplicate is returned for a frame the shard already served under
	// the same (device, seq): deduplicated so audits never double-count.
	ErrDuplicate = errors.New("cloud: duplicate frame")
	// ErrNoShards is returned when a router is built without shards.
	ErrNoShards = errors.New("cloud: router needs at least one shard")
	// ErrLastShard is returned when draining would empty the ring.
	ErrLastShard = errors.New("cloud: cannot drain the last shard")
)

// ingestJob carries one frame through a shard worker and its reply back
// to the delivering goroutine.
type ingestJob struct {
	device   string
	endpoint Provider
	frame    []byte
	meta     FrameMeta
	reply    chan ingestReply
}

type ingestReply struct {
	directive []byte
	err       error
}

// ShardStats is a snapshot of one shard's ingest counters.
type ShardStats struct {
	Name        string
	Devices     int
	Weight      int    // ring weight (virtual nodes = replicas × weight)
	Frames      uint64 // frames fully processed
	Errors      uint64 // frames whose endpoint rejected them
	Rejected    uint64 // frames the admission gate turned away
	Shed        uint64 // bulk frames the admission policy dropped
	Prioritized uint64 // frames admitted through the priority lane
	Rebalanced  uint64 // frames redirected here after a ring change
	QueuePeak   int    // high-water mark of admitted-but-not-yet-served frames
	Drained     bool   // shard was drained out of the ring

	// Crash/recovery counters (zero outside fault runs).
	Restarts          uint64 // worker-pool restarts after a crash
	Recovered         uint64 // in-queue frames replayed to completion after a restart
	DuplicatesDropped uint64 // frames deduplicated by (device, seq)

	// Per-reason split of Rejected, classified from the gate error's
	// %w chain (RejectVerdict). The four always sum to Rejected.
	RejectedRevoked uint64 // revocation-list hits (attest.ErrRevoked)
	RejectedStale   uint64 // model/epoch floor (attest.ErrStaleModel, ErrKeyEpoch)
	RejectedForged  uint64 // forged or replayed evidence (attest.ErrBadReport, ErrReplay)
	RejectedPolicy  uint64 // everything else (unattested, measurement, unknown)
}

// RejectVerdict classifies an admission-gate rejection by the %w-wrapped
// cause chain the gate returned, mapping it onto the telemetry verdict
// that names the reason. Anything the chain does not identify is a
// policy rejection.
func RejectVerdict(gateErr error) obs.Verdict {
	switch {
	case errors.Is(gateErr, attest.ErrRevoked):
		return obs.VerdictRejectedRevoked
	case errors.Is(gateErr, attest.ErrStaleModel), errors.Is(gateErr, attest.ErrKeyEpoch):
		return obs.VerdictRejectedStale
	case errors.Is(gateErr, attest.ErrReplay), errors.Is(gateErr, attest.ErrBadReport):
		return obs.VerdictRejectedForged
	default:
		return obs.VerdictRejectedPolicy
	}
}

// Shard is one ingest partition: a set of device endpoints plus a bounded
// worker pool that processes their frames. Bulk frames queue on the
// fixed-depth lane (fullness blocks the sender — backpressure); priority
// frames queue on a lane workers always drain first.
type Shard struct {
	name     string
	jobs     chan ingestJob // bulk lane
	prio     chan ingestJob // priority lane
	depth    int            // bulk-lane capacity, the policy's reference
	wg       sync.WaitGroup
	inflight sync.WaitGroup // Ingests between admission and reply

	mu          sync.Mutex
	gate        AdmissionGate
	tenantGate  TenantAdmissionGate // gate, when it routes by tenant (cached assertion)
	policy      AdmissionPolicy
	flight      *obs.FlightRecorder // nil outside traced runs (nil-safe Note)
	sup         *Supervisor         // notified on Crash (nil unsupervised)
	endpoints   map[string]Provider
	closed      bool
	crashed     bool          // worker pool down, awaiting Restart
	quit        chan struct{} // closed to kill the current worker generation
	frames      uint64
	errs        uint64
	rejected    uint64
	rejRevoked  uint64
	rejStale    uint64
	rejForged   uint64
	rejPolicy   uint64
	shed        uint64
	prioritized uint64
	rebalanced  uint64
	restarts    uint64
	recovered   uint64
	dupDropped  uint64
	slowServe   time.Duration // fault-injected wall latency per served frame
	replaying   int           // queued-at-crash frames the restarted generation still owes
	pending     int           // admitted frames (both lanes) not yet picked up by a worker
	bulkPending int           // bulk-lane share of pending: the policy's occupancy signal
	queuePeak   int
	// maxServed records the highest frame seq served per device, so a
	// duplicate of an already-served frame is dropped at admission (a
	// retried-but-never-served frame is not a duplicate).
	maxServed map[string]uint64
}

// NewShard starts a shard with the given worker count and admission-queue
// depth (both floored at 1).
func NewShard(name string, workers, queueDepth int) *Shard {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	s := &Shard{
		name:      name,
		jobs:      make(chan ingestJob, queueDepth),
		prio:      make(chan ingestJob, queueDepth),
		depth:     queueDepth,
		quit:      make(chan struct{}),
		endpoints: make(map[string]Provider),
		maxServed: make(map[string]uint64),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker(s.quit)
	}
	return s
}

// worker drains the two lanes, always preferring the priority lane when
// it has a frame ready. A closed lane is parked (nil channel) so the
// loop exits only once both lanes are closed and empty; a closed quit
// channel kills this worker generation immediately (Crash), leaving
// queued jobs in the lanes for the restarted generation to replay.
func (s *Shard) worker(quit chan struct{}) {
	defer s.wg.Done()
	prio, bulk := s.prio, s.jobs
	for prio != nil || bulk != nil {
		select {
		case <-quit:
			return
		default:
		}
		if prio != nil {
			select {
			case job, ok := <-prio:
				if !ok {
					prio = nil
					continue
				}
				s.serve(job)
				continue
			default:
			}
		}
		select {
		case <-quit:
			return
		case job, ok := <-prio:
			if !ok {
				prio = nil
				continue
			}
			s.serve(job)
		case job, ok := <-bulk:
			if !ok {
				bulk = nil
				continue
			}
			s.serve(job)
		}
	}
}

func (s *Shard) serve(job ingestJob) {
	s.mu.Lock()
	s.pending--
	if !job.meta.Priority {
		s.bulkPending--
	}
	if s.policy != nil {
		s.policy.Served(job.meta)
	}
	if s.replaying > 0 {
		// A frame that sat in the queue when the shard crashed: the
		// restarted worker generation is replaying it now.
		s.replaying--
		s.recovered++
	}
	slow := s.slowServe
	s.mu.Unlock()
	if slow > 0 {
		// Fault-injected straggler: the shard serves every frame late. Wall
		// latency only — the device's virtual clock and the audit counters
		// are untouched, so a slow shard degrades throughput, not accounting.
		time.Sleep(slow)
	}
	directive, err := job.endpoint.Deliver(job.frame)
	s.mu.Lock()
	if err != nil {
		s.errs++
	} else {
		s.frames++
		if job.meta.Seq != 0 && job.meta.Seq > s.maxServed[job.device] {
			s.maxServed[job.device] = job.meta.Seq
		}
	}
	s.mu.Unlock()
	job.reply <- ingestReply{directive: directive, err: err}
}

// Name returns the shard's ring label.
func (s *Shard) Name() string { return s.name }

// Utilization reports the bulk-lane admission-queue occupancy in [0,1] —
// the same pending/capacity signal the admission policy sheds on
// (AdmissionPolicy.ShouldShed). Upstream batch schedulers consult it as
// a backpressure gauge: above the policy's high-water mark they flush
// smaller batches sooner instead of bursting into a queue that is about
// to shed.
func (s *Shard) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.depth <= 0 {
		return 0
	}
	u := float64(s.bulkPending) / float64(s.depth)
	if u > 1 {
		u = 1
	}
	return u
}

// Register binds a device ID to its channel-terminating endpoint.
func (s *Shard) Register(deviceID string, p Provider) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.endpoints[deviceID] = p
}

// Deregister removes a device's endpoint; later frames from the ID fail
// with ErrUnknownDevice. Removing an unknown ID is not an error.
func (s *Shard) Deregister(deviceID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.endpoints, deviceID)
}

// endpointsSnapshot copies the registration map (for ring migrations).
func (s *Shard) endpointsSnapshot() map[string]Provider {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Provider, len(s.endpoints))
	for id, p := range s.endpoints {
		out[id] = p
	}
	return out
}

// SetGate installs (or clears, with nil) the admission gate. A gate
// that routes by tenant (TenantAdmissionGate) is detected here once, so
// the per-frame path pays no type assertion.
func (s *Shard) SetGate(g AdmissionGate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gate = g
	s.tenantGate, _ = g.(TenantAdmissionGate)
}

// SetPolicy installs (or clears, with nil) the admission policy.
func (s *Shard) SetPolicy(p AdmissionPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policy = p
}

// SetFlightRecorder installs (or clears, with nil) the shard's telemetry
// flight recorder. Every admission verdict — delivered, shed, rejected —
// is noted with the queue depth at decision time; a nil recorder keeps
// the path free of telemetry work.
func (s *Shard) SetFlightRecorder(f *obs.FlightRecorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flight = f
}

// noteRebalanced counts a frame that reached this shard only after a
// ring change redirected it away from its previously resolved owner.
func (s *Shard) noteRebalanced() {
	s.mu.Lock()
	s.rebalanced++
	s.mu.Unlock()
}

// setSupervisor binds the shard to a supervisor notified on Crash.
func (s *Shard) setSupervisor(sup *Supervisor) {
	s.mu.Lock()
	s.sup = sup
	s.mu.Unlock()
}

// Crash kills the shard's worker pool mid-run, simulating a worker-tier
// failure. Frames already admitted stay queued in the lanes (their
// senders keep blocking on the reply — the queue survives the crash, the
// workers do not) and are replayed by the restarted generation, counted
// in ShardStats.Recovered. New ingest attempts while crashed fail with
// ErrShardCrashed, a transient error senders retry with backoff. Returns
// the number of queued frames owed to the restart; 0 if the shard was
// already crashed or closed. A crashed shard must be Restarted before
// Close — the Supervisor does this automatically.
func (s *Shard) Crash() int {
	s.mu.Lock()
	if s.closed || s.crashed {
		s.mu.Unlock()
		return 0
	}
	s.crashed = true
	queued := s.pending
	s.replaying += queued
	close(s.quit)
	sup := s.sup
	s.mu.Unlock()
	s.wg.Wait() // the dying generation finishes in-service frames, then exits
	if sup != nil {
		sup.notifyCrash(s, queued)
	}
	return queued
}

// Restart brings a crashed shard back: a fresh worker generation (floored
// at 1) drains the surviving queue — replaying the frames the crash
// stranded — and new ingest is admitted again. No-op unless crashed.
func (s *Shard) Restart(workers int) {
	if workers < 1 {
		workers = 1
	}
	s.mu.Lock()
	if s.closed || !s.crashed {
		s.mu.Unlock()
		return
	}
	s.crashed = false
	s.quit = make(chan struct{})
	s.restarts++
	quit := s.quit
	s.wg.Add(workers)
	s.mu.Unlock()
	for i := 0; i < workers; i++ {
		go s.worker(quit)
	}
}

// SetServeDelay installs (or clears, with 0) a fault-injected wall-clock
// delay per served frame, simulating a straggler shard.
func (s *Shard) SetServeDelay(d time.Duration) {
	s.mu.Lock()
	s.slowServe = d
	s.mu.Unlock()
}

// Ingest processes one bulk frame from the device; see IngestMeta.
func (s *Shard) Ingest(deviceID string, frame []byte) ([]byte, error) {
	return s.IngestMeta(deviceID, frame, FrameMeta{})
}

// IngestMeta processes one frame through the worker pool. The admission
// gate runs first (identity), then — for bulk frames only — the
// admission policy (capacity): a shed frame returns ErrShed without ever
// queueing. Admitted frames block while their lane is full
// (backpressure) and until the frame's directive is ready; priority
// frames are served before queued bulk frames.
func (s *Shard) IngestMeta(deviceID string, frame []byte, meta FrameMeta) ([]byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrShardClosed, s.name)
	}
	if s.crashed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrShardCrashed, s.name)
	}
	endpoint, ok := s.endpoints[deviceID]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q on shard %s", ErrUnknownDevice, deviceID, s.name)
	}
	if meta.Seq != 0 && meta.Seq <= s.maxServed[deviceID] {
		// A duplicate of a frame this shard already served under the same
		// (device, seq): drop it before the gate and policy see it, so
		// neither the audit nor the capacity counters double-count.
		s.dupDropped++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q seq %d on shard %s", ErrDuplicate, deviceID, meta.Seq, s.name)
	}
	if s.gate != nil {
		var gateErr error
		if s.tenantGate != nil {
			gateErr = s.tenantGate.AdmitTenant(deviceID, meta.Tenant)
		} else {
			gateErr = s.gate.Admit(deviceID)
		}
		if gateErr != nil {
			s.rejected++
			verdict := RejectVerdict(gateErr)
			switch verdict {
			case obs.VerdictRejectedRevoked:
				s.rejRevoked++
			case obs.VerdictRejectedStale:
				s.rejStale++
			case obs.VerdictRejectedForged:
				s.rejForged++
			default:
				s.rejPolicy++
			}
			flight, depth := s.flight, s.pending
			s.mu.Unlock()
			flight.Note(deviceID, meta.Tenant, verdict, depth)
			return nil, fmt.Errorf("%w: %q on shard %s: %w", ErrRejected, deviceID, s.name, gateErr)
		}
	}
	// The priority lane is enforced here, not in the policy: ShouldShed
	// is never consulted for a priority frame, so no policy — however
	// buggy — can shed one. The occupancy it sees is the bulk lane's
	// alone, judged against the bulk lane's capacity: a burst of
	// priority traffic must not make the policy shed bulk frames out of
	// an empty bulk queue.
	if s.policy != nil && !meta.Priority && s.policy.ShouldShed(meta, s.bulkPending, s.depth) {
		s.shed++
		flight, depth := s.flight, s.bulkPending
		s.mu.Unlock()
		flight.Note(deviceID, meta.Tenant, obs.VerdictShed, depth)
		return nil, fmt.Errorf("%w: %q on shard %s", ErrShed, deviceID, s.name)
	}
	if meta.Priority {
		s.prioritized++
	} else {
		s.bulkPending++
	}
	if s.policy != nil {
		s.policy.Admitted(meta)
	}
	// Admitted while holding the lock, so Close cannot tear the queue
	// down under an in-flight frame; pending tracks admitted frames no
	// worker has picked up yet — its high-water mark is the real
	// backpressure signal.
	s.pending++
	if s.pending > s.queuePeak {
		s.queuePeak = s.pending
	}
	s.inflight.Add(1)
	flight, depth := s.flight, s.pending
	s.mu.Unlock()
	defer s.inflight.Done()
	flight.Note(deviceID, meta.Tenant, obs.VerdictDelivered, depth)

	reply := make(chan ingestReply, 1)
	job := ingestJob{device: deviceID, endpoint: endpoint, frame: frame, meta: meta, reply: reply}
	if meta.Priority {
		s.prio <- job
	} else {
		s.jobs <- job
	}
	r := <-reply
	return r.directive, r.err
}

// Audit merges the audits of every endpoint hosted on the shard.
func (s *Shard) Audit() Audit {
	s.mu.Lock()
	endpoints := make([]Provider, 0, len(s.endpoints))
	for _, p := range s.endpoints {
		endpoints = append(endpoints, p)
	}
	s.mu.Unlock()
	var a Audit
	for _, p := range endpoints {
		a = a.Merge(p.Audit())
	}
	return a
}

// Stats snapshots the shard's counters.
func (s *Shard) Stats() ShardStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardStats{
		Name:              s.name,
		Devices:           len(s.endpoints),
		Frames:            s.frames,
		Errors:            s.errs,
		Rejected:          s.rejected,
		RejectedRevoked:   s.rejRevoked,
		RejectedStale:     s.rejStale,
		RejectedForged:    s.rejForged,
		RejectedPolicy:    s.rejPolicy,
		Shed:              s.shed,
		Prioritized:       s.prioritized,
		Rebalanced:        s.rebalanced,
		QueuePeak:         s.queuePeak,
		Restarts:          s.restarts,
		Recovered:         s.recovered,
		DuplicatesDropped: s.dupDropped,
	}
}

// Close waits for admitted frames, then drains the workers. Ingest after
// Close fails with ErrShardClosed.
func (s *Shard) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()
	close(s.jobs)
	close(s.prio)
	s.wg.Wait()
}

// Router maps device IDs onto shards with a weighted consistent-hash
// ring. Membership is elastic: shards can be added, reweighted and
// drained at runtime; the router migrates endpoint registrations to the
// new owners atomically with each ring change and redirects frames that
// raced with the change, so no frame is lost to a rebalance.
type Router struct {
	mu       sync.RWMutex
	replicas int
	gate     AdmissionGate
	policy   AdmissionPolicy
	flight   func(string) *obs.FlightRecorder // per-shard recorder source (nil untraced)
	sup      *Supervisor                      // crash supervision (nil unsupervised)
	shards   []*Shard
	weights  map[string]int
	ring     []ringPoint // sorted by hash
	retired  []ShardStats
}

type ringPoint struct {
	hash  uint64
	shard *Shard
}

// NewRouter builds the ring with `replicas` virtual nodes per
// weight-unit per shard (floored at 1; 64 is a sensible default for even
// spread). Every shard starts at weight 1; use AddShard or SetWeight for
// heavier ones.
func NewRouter(shards []*Shard, replicas int) (*Router, error) {
	if len(shards) == 0 {
		return nil, ErrNoShards
	}
	if replicas < 1 {
		replicas = 1
	}
	r := &Router{replicas: replicas, shards: shards, weights: make(map[string]int, len(shards))}
	for _, s := range shards {
		r.weights[s.Name()] = 1
	}
	r.rebuildRingLocked()
	return r, nil
}

// rebuildRingLocked recomputes the ring from the active shard list and
// weights. Caller holds r.mu for writing (or is the constructor).
func (r *Router) rebuildRingLocked() {
	r.ring = r.ring[:0]
	for _, s := range r.shards {
		w := r.weights[s.Name()]
		if w < 1 {
			w = 1
		}
		for v := 0; v < r.replicas*w; v++ {
			r.ring = append(r.ring, ringPoint{
				hash:  ringHash(fmt.Sprintf("%s#%d", s.Name(), v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].hash < r.ring[j].hash })
}

// migrateLocked moves every endpoint whose ring owner changed to its new
// owner and returns how many moved. Registration moves are atomic with
// the ring swap (caller holds r.mu for writing), so a resolver never
// observes a half-migrated tier.
func (r *Router) migrateLocked() int {
	moved := 0
	for _, s := range r.shards {
		for id, ep := range s.endpointsSnapshot() {
			owner := r.shardForLocked(id)
			if owner != s {
				owner.Register(id, ep)
				s.Deregister(id)
				moved++
			}
		}
	}
	return moved
}

func ringHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	// FNV avalanches poorly on short keys that differ only in a suffix
	// (exactly what "shard#replica" and "device-N" are); a splitmix64
	// finalizer spreads ring points and device keys evenly.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardFor returns the shard owning the device ID (first ring point at or
// after the key's hash, wrapping).
func (r *Router) ShardFor(deviceID string) *Shard {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.shardForLocked(deviceID)
}

func (r *Router) shardForLocked(deviceID string) *Shard {
	if len(r.ring) == 0 {
		return nil
	}
	h := ringHash(deviceID)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].shard
}

// AddShard joins a fresh shard to the ring with the given weight
// (floored at 1): the router's gate and policy are installed on it, the
// ring gains replicas×weight points, and endpoints in the ownership
// ranges it takes over migrate to it before any frame can resolve there.
func (r *Router) AddShard(s *Shard, weight int) {
	if weight < 1 {
		weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.SetGate(r.gate)
	s.SetPolicy(r.policy)
	if r.flight != nil {
		s.SetFlightRecorder(r.flight(s.Name()))
	}
	if r.sup != nil {
		s.setSupervisor(r.sup)
	}
	r.shards = append(r.shards, s)
	r.weights[s.Name()] = weight
	r.rebuildRingLocked()
	r.migrateLocked()
}

// SetWeight retunes a shard's share of the ring (floored at 1) and
// migrates endpoints to the rebalanced owners. Unknown names are a no-op.
func (r *Router) SetWeight(name string, weight int) {
	if weight < 1 {
		weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.weights[name]; !ok {
		return
	}
	r.weights[name] = weight
	r.rebuildRingLocked()
	r.migrateLocked()
}

// Drain retires a shard from the ring without dropping a frame: its ring
// points are removed and its endpoints handed to the ring successors
// (atomically, so new frames resolve to the successors), then the shard
// stops accepting and flushes its queue — frames already admitted are
// served to completion, frames that raced the ring swap are redirected
// by Ingest — and finally its counters are retired into the router's
// stats history (Drained=true).
func (r *Router) Drain(name string) error {
	r.mu.Lock()
	var victim *Shard
	for i, s := range r.shards {
		if s.Name() == name {
			if len(r.shards) == 1 {
				r.mu.Unlock()
				return ErrLastShard
			}
			victim = s
			r.shards = append(r.shards[:i], r.shards[i+1:]...)
			break
		}
	}
	if victim == nil {
		r.mu.Unlock()
		return fmt.Errorf("cloud: drain: unknown shard %q", name)
	}
	delete(r.weights, name)
	r.rebuildRingLocked()
	// Hand the victim's endpoints to their ring successors. The victim
	// is out of the ring, so every endpoint resolves elsewhere.
	for id, ep := range victim.endpointsSnapshot() {
		r.shardForLocked(id).Register(id, ep)
		victim.Deregister(id)
	}
	r.mu.Unlock()

	// Flush outside the router lock: admitted frames finish against the
	// victim's workers while new frames already resolve to successors.
	victim.Close()

	r.mu.Lock()
	st := victim.Stats()
	st.Drained = true
	r.retired = append(r.retired, st)
	r.mu.Unlock()
	return nil
}

// Register places the device's endpoint on its ring shard and returns
// that shard. The read lock spans resolve+register so a concurrent
// rebalance cannot strand the registration on a stale owner.
func (r *Router) Register(deviceID string, p Provider) *Shard {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.shardForLocked(deviceID)
	if s != nil {
		s.Register(deviceID, p)
	}
	return s
}

// Deregister removes the device's endpoint from its ring shard.
func (r *Router) Deregister(deviceID string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if s := r.shardForLocked(deviceID); s != nil {
		s.Deregister(deviceID)
	}
}

// SetGate installs the admission gate on every shard (including shards
// added later).
func (r *Router) SetGate(g AdmissionGate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gate = g
	for _, s := range r.shards {
		s.SetGate(g)
	}
}

// SetPolicy installs the admission policy on every shard (including
// shards added later). Stateful policies installed this way track
// occupancy tier-wide.
func (r *Router) SetPolicy(p AdmissionPolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.policy = p
	for _, s := range r.shards {
		s.SetPolicy(p)
	}
}

// SetFlight installs a per-shard flight-recorder source (obs.Tracer's
// Flight method fits) on every shard, including shards added later. A
// nil source clears the recorders.
func (r *Router) SetFlight(fn func(string) *obs.FlightRecorder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flight = fn
	for _, s := range r.shards {
		if fn == nil {
			s.SetFlightRecorder(nil)
		} else {
			s.SetFlightRecorder(fn(s.Name()))
		}
	}
}

// Policy returns the installed admission policy (nil if none).
func (r *Router) Policy() AdmissionPolicy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.policy
}

// Ingest routes one bulk frame to the owning shard; see IngestMeta.
func (r *Router) Ingest(deviceID string, frame []byte) ([]byte, error) {
	return r.IngestMeta(deviceID, frame, FrameMeta{})
}

// IngestMeta routes one frame to the owning shard. If a rebalance races
// the resolution — the resolved shard drained, or the device's endpoint
// migrated before the frame arrived — the frame is re-resolved against
// the current ring and redirected (counted in ShardStats.Rebalanced)
// rather than dropped. The retry gives up when a re-resolution stops
// making progress (same owner twice); the give-up is classified as an
// explicit ErrExpired wrapping the underlying cause, so the frame keeps
// its accounting context (the device counts it expired — never lost)
// while errors.Is still surfaces the genuine unknown-device or
// closed-tier error underneath. A crashed shard is not re-resolved: the
// ring is unchanged, the owner is briefly down, and ErrShardCrashed is
// returned to the sender's retry layer as a transient failure.
func (r *Router) IngestMeta(deviceID string, frame []byte, meta FrameMeta) ([]byte, error) {
	var last *Shard
	var lastErr error
	for {
		s := r.ShardFor(deviceID)
		if s == nil {
			return nil, ErrNoShards
		}
		if s == last {
			return nil, fmt.Errorf("%w: ingest of %q gave up after re-resolution stalled: %w", ErrExpired, deviceID, lastErr)
		}
		directive, err := s.IngestMeta(deviceID, frame, meta)
		switch {
		case err == nil:
			if last != nil {
				s.noteRebalanced()
			}
			return directive, nil
		case errors.Is(err, ErrShardClosed) || errors.Is(err, ErrUnknownDevice):
			// Membership changed between resolve and ingest; re-resolve.
			last, lastErr = s, err
		default:
			return nil, err
		}
	}
}

// Audit aggregates every active shard's audit. Drained shards hand their
// endpoints to successors before retiring, so their traffic is counted
// exactly once.
func (r *Router) Audit() Audit {
	r.mu.RLock()
	shards := append([]*Shard(nil), r.shards...)
	r.mu.RUnlock()
	var a Audit
	for _, s := range shards {
		a = a.Merge(s.Audit())
	}
	return a
}

// Stats snapshots every active shard (with its ring weight) followed by
// the retired stats of every drained shard.
func (r *Router) Stats() []ShardStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ShardStats, 0, len(r.shards)+len(r.retired))
	for _, s := range r.shards {
		st := s.Stats()
		st.Weight = r.weights[s.Name()]
		out = append(out, st)
	}
	out = append(out, r.retired...)
	return out
}

// Close drains all active shards.
func (r *Router) Close() {
	r.mu.RLock()
	shards := append([]*Shard(nil), r.shards...)
	r.mu.RUnlock()
	for _, s := range shards {
		s.Close()
	}
}

// Ingestor is the frame-ingest contract an Uplink delivers through.
// Router implements it; fault injectors wrap it so chaos plans can drop,
// delay or duplicate frames below the sequence-number assignment (an
// injected duplicate carries the same seq and is deduplicated at the
// shard).
type Ingestor interface {
	IngestMeta(deviceID string, frame []byte, meta FrameMeta) ([]byte, error)
}

var _ Ingestor = (*Router)(nil)

// Uplink adapts one device's ID to the router's ingest so it can stand in
// as the device's network sink (supplicant.NetSink without the import).
// Meta is the cleartext connection metadata the frontend reads per frame
// (tenant label, traffic class). Every Deliver stamps the frame with the
// device's next sequence number — retried frames are new deliveries and
// get fresh seqs; only an injected duplicate of the same delivery shares
// one, which is what shard-side dedup keys on.
type Uplink struct {
	DeviceID string
	Router   *Router
	Meta     FrameMeta
	// Ingest overrides Router as the delivery path when set (fault
	// injectors wrap the router); nil delivers straight to Router.
	Ingest Ingestor

	seq atomic.Uint64
}

// Deliver implements the device-side sink by routing through the ring.
func (u *Uplink) Deliver(frame []byte) ([]byte, error) {
	meta := u.Meta
	meta.Seq = u.seq.Add(1)
	if u.Ingest != nil {
		return u.Ingest.IngestMeta(u.DeviceID, frame, meta)
	}
	return u.Router.IngestMeta(u.DeviceID, frame, meta)
}
