// Fleet-scale ingest. A single Service terminates one device's channel;
// a provider serving millions of devices runs many such terminators
// behind a sharded frontend. Shard hosts the per-device endpoints hashed
// to it and serializes their ingest through a bounded worker pool (the
// channel doubles as admission control: a full queue pushes back on the
// radio rather than buffering unboundedly). Router places devices on
// shards with a consistent-hash ring so membership changes move only
// neighbouring devices. An optional AdmissionGate (the attestation
// verifier, in attested fleets) is consulted on every frame before it
// reaches a worker: frames from devices that never attested, or that
// attested with a stale model pack, are rejected and counted without
// ever touching the device's endpoint.
package cloud

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Provider is the ingest-side contract every backend flavour satisfies
// (sealed Service, baseline PlainService): deliver one frame, account for
// what was learned.
type Provider interface {
	Deliver(frame []byte) ([]byte, error)
	Audit() Audit
	Reset()
}

var (
	_ Provider = (*Service)(nil)
	_ Provider = (*PlainService)(nil)
)

// Merge folds b's counters and transcripts into a copy of a, so per-shard
// and per-fleet views aggregate from per-device audits.
func (a Audit) Merge(b Audit) Audit {
	a.Events += b.Events
	a.TokensSeen += b.TokensSeen
	a.SensitiveTokens += b.SensitiveTokens
	a.AudioBytes += b.AudioBytes
	a.Transcripts = append(a.Transcripts, b.Transcripts...)
	return a
}

// AdmissionGate decides, per frame, whether a device's traffic may
// reach its endpoint. attest.Verifier implements it; a nil gate admits
// everything (the pre-attestation deployment).
type AdmissionGate interface {
	// Admit returns nil to accept the device's frame, or the policy
	// error that rejected it (e.g. attest.ErrUnattested).
	Admit(deviceID string) error
}

// Errors returned by the ingest tier.
var (
	// ErrUnknownDevice is returned for frames from unregistered devices.
	ErrUnknownDevice = errors.New("cloud: unknown device")
	// ErrRejected wraps admission-gate rejections.
	ErrRejected = errors.New("cloud: admission rejected")
	// ErrShardClosed is returned for ingest after Close.
	ErrShardClosed = errors.New("cloud: shard closed")
	// ErrNoShards is returned when a router is built without shards.
	ErrNoShards = errors.New("cloud: router needs at least one shard")
)

// ingestJob carries one frame through a shard worker and its reply back
// to the delivering goroutine.
type ingestJob struct {
	endpoint Provider
	frame    []byte
	reply    chan ingestReply
}

type ingestReply struct {
	directive []byte
	err       error
}

// ShardStats is a snapshot of one shard's ingest counters.
type ShardStats struct {
	Name      string
	Devices   int
	Frames    uint64 // frames fully processed
	Errors    uint64 // frames whose endpoint rejected them
	Rejected  uint64 // frames the admission gate turned away
	QueuePeak int    // high-water mark of admitted-but-not-yet-served frames
}

// Shard is one ingest partition: a set of device endpoints plus a bounded
// worker pool that processes their frames.
type Shard struct {
	name     string
	jobs     chan ingestJob
	wg       sync.WaitGroup
	inflight sync.WaitGroup // Ingests between admission and reply

	mu        sync.Mutex
	gate      AdmissionGate
	endpoints map[string]Provider
	closed    bool
	frames    uint64
	errs      uint64
	rejected  uint64
	pending   int // admitted frames not yet picked up by a worker
	queuePeak int
}

// NewShard starts a shard with the given worker count and admission-queue
// depth (both floored at 1).
func NewShard(name string, workers, queueDepth int) *Shard {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	s := &Shard{
		name:      name,
		jobs:      make(chan ingestJob, queueDepth),
		endpoints: make(map[string]Provider),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Shard) worker() {
	defer s.wg.Done()
	for job := range s.jobs {
		s.mu.Lock()
		s.pending--
		s.mu.Unlock()
		directive, err := job.endpoint.Deliver(job.frame)
		s.mu.Lock()
		if err != nil {
			s.errs++
		} else {
			s.frames++
		}
		s.mu.Unlock()
		job.reply <- ingestReply{directive: directive, err: err}
	}
}

// Name returns the shard's ring label.
func (s *Shard) Name() string { return s.name }

// Register binds a device ID to its channel-terminating endpoint.
func (s *Shard) Register(deviceID string, p Provider) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.endpoints[deviceID] = p
}

// Deregister removes a device's endpoint; later frames from the ID fail
// with ErrUnknownDevice. Removing an unknown ID is not an error.
func (s *Shard) Deregister(deviceID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.endpoints, deviceID)
}

// SetGate installs (or clears, with nil) the admission gate.
func (s *Shard) SetGate(g AdmissionGate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gate = g
}

// Ingest processes one frame from the device through the worker pool,
// blocking while the admission queue is full (backpressure) and until the
// frame's directive is ready.
func (s *Shard) Ingest(deviceID string, frame []byte) ([]byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShardClosed
	}
	endpoint, ok := s.endpoints[deviceID]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q on shard %s", ErrUnknownDevice, deviceID, s.name)
	}
	if s.gate != nil {
		if err := s.gate.Admit(deviceID); err != nil {
			s.rejected++
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %q on shard %s: %v", ErrRejected, deviceID, s.name, err)
		}
	}
	// Admitted while holding the lock, so Close cannot tear the queue
	// down under an in-flight frame; pending tracks admitted frames no
	// worker has picked up yet — its high-water mark is the real
	// backpressure signal.
	s.pending++
	if s.pending > s.queuePeak {
		s.queuePeak = s.pending
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	reply := make(chan ingestReply, 1)
	s.jobs <- ingestJob{endpoint: endpoint, frame: frame, reply: reply}
	r := <-reply
	return r.directive, r.err
}

// Audit merges the audits of every endpoint hosted on the shard.
func (s *Shard) Audit() Audit {
	s.mu.Lock()
	endpoints := make([]Provider, 0, len(s.endpoints))
	for _, p := range s.endpoints {
		endpoints = append(endpoints, p)
	}
	s.mu.Unlock()
	var a Audit
	for _, p := range endpoints {
		a = a.Merge(p.Audit())
	}
	return a
}

// Stats snapshots the shard's counters.
func (s *Shard) Stats() ShardStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardStats{
		Name:      s.name,
		Devices:   len(s.endpoints),
		Frames:    s.frames,
		Errors:    s.errs,
		Rejected:  s.rejected,
		QueuePeak: s.queuePeak,
	}
}

// Close waits for admitted frames, then drains the workers. Ingest after
// Close fails with ErrShardClosed.
func (s *Shard) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()
	close(s.jobs)
	s.wg.Wait()
}

// Router maps device IDs onto shards with a consistent-hash ring.
type Router struct {
	shards []*Shard
	ring   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard *Shard
}

// NewRouter builds the ring with `replicas` virtual nodes per shard
// (floored at 1; 64 is a sensible default for even spread).
func NewRouter(shards []*Shard, replicas int) (*Router, error) {
	if len(shards) == 0 {
		return nil, ErrNoShards
	}
	if replicas < 1 {
		replicas = 1
	}
	r := &Router{shards: shards}
	for _, s := range shards {
		for v := 0; v < replicas; v++ {
			r.ring = append(r.ring, ringPoint{
				hash:  ringHash(fmt.Sprintf("%s#%d", s.Name(), v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].hash < r.ring[j].hash })
	return r, nil
}

func ringHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	// FNV avalanches poorly on short keys that differ only in a suffix
	// (exactly what "shard#replica" and "device-N" are); a splitmix64
	// finalizer spreads ring points and device keys evenly.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardFor returns the shard owning the device ID (first ring point at or
// after the key's hash, wrapping).
func (r *Router) ShardFor(deviceID string) *Shard {
	h := ringHash(deviceID)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].shard
}

// Register places the device's endpoint on its ring shard and returns
// that shard.
func (r *Router) Register(deviceID string, p Provider) *Shard {
	s := r.ShardFor(deviceID)
	s.Register(deviceID, p)
	return s
}

// Deregister removes the device's endpoint from its ring shard.
func (r *Router) Deregister(deviceID string) {
	r.ShardFor(deviceID).Deregister(deviceID)
}

// SetGate installs the admission gate on every shard.
func (r *Router) SetGate(g AdmissionGate) {
	for _, s := range r.shards {
		s.SetGate(g)
	}
}

// Ingest routes one frame to the owning shard.
func (r *Router) Ingest(deviceID string, frame []byte) ([]byte, error) {
	return r.ShardFor(deviceID).Ingest(deviceID, frame)
}

// Audit aggregates every shard's audit.
func (r *Router) Audit() Audit {
	var a Audit
	for _, s := range r.shards {
		a = a.Merge(s.Audit())
	}
	return a
}

// Stats snapshots every shard.
func (r *Router) Stats() []ShardStats {
	out := make([]ShardStats, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.Stats()
	}
	return out
}

// Close drains all shards.
func (r *Router) Close() {
	for _, s := range r.shards {
		s.Close()
	}
}

// Uplink adapts one device's ID to the router's ingest so it can stand in
// as the device's network sink (supplicant.NetSink without the import).
type Uplink struct {
	DeviceID string
	Router   *Router
}

// Deliver implements the device-side sink by routing through the ring.
func (u *Uplink) Deliver(frame []byte) ([]byte, error) {
	return u.Router.Ingest(u.DeviceID, frame)
}
