package cloud

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/supplicant"
)

// TestShardCrashReplay: a crash strands the admitted queue, the senders
// keep blocking on their replies, and a restart replays every stranded
// frame to completion — counted in Restarts/Recovered, delivered exactly
// once.
func TestShardCrashReplay(t *testing.T) {
	s := NewShard("s0", 1, 8)
	defer s.Close()
	p := &countingProvider{}
	s.Register("dev", p)
	s.SetServeDelay(2 * time.Millisecond) // keep frames queued at crash time

	const frames = 6
	var wg sync.WaitGroup
	for i := 0; i < frames; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.IngestMeta("dev", []byte("x"), FrameMeta{Seq: uint64(i + 1)}); err != nil {
				t.Errorf("frame %d: %v", i, err)
			}
		}(i)
	}
	// Let the senders enqueue, then pull the rug.
	time.Sleep(5 * time.Millisecond)
	queued := s.Crash()

	// While crashed, new ingest fails transiently — retriable, never lost.
	if _, err := s.IngestMeta("dev", []byte("x"), FrameMeta{Seq: 99}); !errors.Is(err, ErrShardCrashed) ||
		!errors.Is(err, supplicant.ErrTransient) {
		t.Fatalf("ingest while crashed misclassified: %v", err)
	}

	s.SetServeDelay(0)
	s.Restart(2)
	wg.Wait()

	st := s.Stats()
	if st.Restarts != 1 {
		t.Fatalf("restarts %d, want 1", st.Restarts)
	}
	if st.Recovered != uint64(queued) {
		t.Fatalf("recovered %d frames, %d were stranded at crash", st.Recovered, queued)
	}
	if p.Audit().Events != frames {
		t.Fatalf("delivered %d frames, want %d (crash lost or duplicated frames)", p.Audit().Events, frames)
	}
	if st.Frames != frames {
		t.Fatalf("shard counted %d frames, want %d", st.Frames, frames)
	}
}

// TestShardDedup: a duplicate of an already-served (device, seq) is
// dropped at admission — before gate, policy and audit — while seq 0
// (unsequenced probes) is exempt.
func TestShardDedup(t *testing.T) {
	s := NewShard("s0", 1, 4)
	defer s.Close()
	p := &countingProvider{}
	s.Register("dev", p)

	if _, err := s.IngestMeta("dev", []byte("a"), FrameMeta{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestMeta("dev", []byte("a"), FrameMeta{Seq: 1}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("replayed seq 1 was not deduplicated: %v", err)
	}
	if _, err := s.IngestMeta("dev", []byte("b"), FrameMeta{Seq: 2}); err != nil {
		t.Fatalf("fresh seq after a duplicate: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.IngestMeta("dev", []byte("probe"), FrameMeta{}); err != nil {
			t.Fatalf("unsequenced frame %d blocked by dedup: %v", i, err)
		}
	}
	st := s.Stats()
	if st.DuplicatesDropped != 1 {
		t.Fatalf("duplicates dropped %d, want 1", st.DuplicatesDropped)
	}
	if ev := p.Audit().Events; ev != 4 {
		t.Fatalf("endpoint saw %d events, want 4 (duplicate double-counted or frame lost)", ev)
	}
}

// TestRouterIngestGiveUpExpires is the give-up regression test: when
// every re-resolution lands on the same dead shard, the router's give-up
// path must classify the frame as expired — the error chains through
// ErrExpired to supplicant.ErrExpired with the underlying cause intact —
// not silently surface a bare routing error.
func TestRouterIngestGiveUpExpires(t *testing.T) {
	s := NewShard("s0", 1, 2)
	r, err := NewRouter([]*Shard{s}, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Register("dev", &countingProvider{})
	s.Close() // kill the only shard under the router

	_, err = r.Ingest("dev", []byte("x"))
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("give-up path did not expire: %v", err)
	}
	if !errors.Is(err, supplicant.ErrExpired) {
		t.Fatalf("expiry does not reach the supplicant classification: %v", err)
	}
	if !errors.Is(err, ErrShardClosed) {
		t.Fatalf("give-up error lost its cause: %v", err)
	}
}

// TestCrashRecoveryUnderLoadRace is the crash-under-churn race test (run
// with -race): devices keep ingesting while a supervised shard crashes
// and restarts twice, a weighted shard joins the ring, and a founding
// shard drains — all concurrently. Senders retry transient failures the
// way the device retry layer does; every frame must land exactly once.
func TestCrashRecoveryUnderLoadRace(t *testing.T) {
	shards := []*Shard{NewShard("s0", 2, 4), NewShard("s1", 2, 4), NewShard("s2", 2, 4)}
	r, err := NewRouter(shards, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var crashEvents, restartEvents atomic.Int64
	sup := r.Supervise(2, func(e SupervisorEvent) {
		switch e.Kind {
		case "shard-crash":
			crashEvents.Add(1)
		case "shard-restart":
			restartEvents.Add(1)
		}
	})
	defer sup.Close()

	const (
		devices = 32
		frames  = 20
	)
	providers := make([]*countingProvider, devices)
	for i := range providers {
		providers[i] = &countingProvider{}
		r.Register(fmt.Sprintf("device-%d", i), providers[i])
	}

	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("device-%d", i)
			for f := 0; f < frames; f++ {
				seq := uint64(f + 1)
				for {
					_, err := r.IngestMeta(id, []byte("frame"), FrameMeta{Seq: seq})
					if err == nil {
						break
					}
					if !errors.Is(err, supplicant.ErrTransient) {
						t.Errorf("%s frame %d: %v", id, f, err)
						return
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(i)
	}
	// The tier churns under the load: s1 crashes twice (supervised
	// restarts), a weighted shard joins, s0 drains.
	var queuedAtCrash atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 2; k++ {
			time.Sleep(time.Millisecond)
			if queued, ok := r.CrashShard("s1"); ok {
				queuedAtCrash.Add(int64(queued))
			} else {
				t.Error("s1 not found for crash")
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.AddShard(NewShard("s3", 2, 4), 2)
		if err := r.Drain("s0"); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	wg.Wait()
	sup.Close() // settle pending restarts before reading stats

	for i, p := range providers {
		if ev := p.Audit().Events; ev != frames {
			t.Fatalf("device-%d delivered %d frames, want %d", i, ev, frames)
		}
	}
	var restarts, recovered, total uint64
	for _, st := range r.Stats() {
		restarts += st.Restarts
		recovered += st.Recovered
		total += st.Frames
		if st.Errors != 0 {
			t.Fatalf("shard %s: %d endpoint errors", st.Name, st.Errors)
		}
	}
	if restarts != 2 {
		t.Fatalf("restarts %d, want 2", restarts)
	}
	if recovered != uint64(queuedAtCrash.Load()) {
		t.Fatalf("recovered %d frames, %d were stranded at crash", recovered, queuedAtCrash.Load())
	}
	if total != devices*frames {
		t.Fatalf("shard-counted %d frames, want %d", total, devices*frames)
	}
	if crashEvents.Load() != 2 || restartEvents.Load() != 2 {
		t.Fatalf("supervisor events: %d crashes / %d restarts, want 2/2",
			crashEvents.Load(), restartEvents.Load())
	}
}
