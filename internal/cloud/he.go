package cloud

// HEService is the provider's homomorphic-evaluation endpoint for the
// hybrid HE+TEE split-inference mode. The provider holds the first
// linear layer's weights in the clear (it trained the model) and
// evaluates it over ciphertexts the device encrypted under the
// provider's public key — it operates on opaque wire blobs and never
// holds a plaintext activation, which HEAudit makes checkable: the
// audit counts every byte the service observed, and
// CleartextFeatureBytes is zero by construction of this file (there is
// no code path that decrypts — the service has no secret key).

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/he"
)

// ErrNoModel is returned when an HE evaluation arrives before the
// provider provisioned the corresponding layer.
var ErrNoModel = errors.New("cloud: no HE layer provisioned")

// HEAudit summarizes what the provider observed on the HE path. The
// leakage experiment pins these: ciphertext bytes grow with the
// expansion factor, cleartext feature bytes stay zero.
type HEAudit struct {
	// Evals counts homomorphic layer evaluations served.
	Evals int
	// CiphertextBytesIn/Out count the opaque wire bytes crossing the
	// service, in each direction.
	CiphertextBytesIn  uint64
	CiphertextBytesOut uint64
	// CleartextFeatureBytes counts plaintext activation bytes the
	// provider saw. The hybrid design keeps this zero; the field exists
	// so the claim is an assertion, not an assumption.
	CleartextFeatureBytes uint64
}

// HEService evaluates provisioned linear layers over ciphertexts.
type HEService struct {
	mu    sync.Mutex
	eval  *he.Evaluator
	text  *he.Conv1D
	image *he.Conv2D
	audit HEAudit
}

// NewHEService creates the provider endpoint around an evaluator
// (whose clock charges the HE compute into the run's virtual time).
func NewHEService(eval *he.Evaluator) *HEService {
	return &HEService{eval: eval}
}

// Params returns the evaluator's HE parameter set.
func (s *HEService) Params() he.Params { return s.eval.Params }

// ProvisionText installs the speaker classifier's first conv layer.
func (s *HEService) ProvisionText(op *he.Conv1D) {
	s.mu.Lock()
	s.text = op
	s.mu.Unlock()
}

// ProvisionImage installs the camera classifier's first conv layer.
func (s *HEService) ProvisionImage(op *he.Conv2D) {
	s.mu.Lock()
	s.image = op
	s.mu.Unlock()
}

// EvalText evaluates the provisioned text conv over one ciphertext
// blob, returning the result blob.
func (s *HEService) EvalText(wire []byte) ([]byte, error) {
	s.mu.Lock()
	op := s.text
	s.mu.Unlock()
	if op == nil {
		return nil, fmt.Errorf("%w: text", ErrNoModel)
	}
	return s.evalBlob(wire, func(ct *he.Ciphertext) (*he.Ciphertext, error) {
		return s.eval.Conv1D(op, ct)
	})
}

// EvalImage evaluates the provisioned image conv over one ciphertext
// blob, returning the result blob.
func (s *HEService) EvalImage(wire []byte) ([]byte, error) {
	s.mu.Lock()
	op := s.image
	s.mu.Unlock()
	if op == nil {
		return nil, fmt.Errorf("%w: image", ErrNoModel)
	}
	return s.evalBlob(wire, func(ct *he.Ciphertext) (*he.Ciphertext, error) {
		return s.eval.Conv2D(op, ct)
	})
}

func (s *HEService) evalBlob(wire []byte, f func(*he.Ciphertext) (*he.Ciphertext, error)) ([]byte, error) {
	ct, err := s.eval.Unmarshal(wire)
	if err != nil {
		return nil, err
	}
	out, err := f(ct)
	if err != nil {
		return nil, err
	}
	res := out.Marshal(s.eval.Params)
	s.mu.Lock()
	s.audit.Evals++
	s.audit.CiphertextBytesIn += uint64(len(wire))
	s.audit.CiphertextBytesOut += uint64(len(res))
	s.mu.Unlock()
	return res, nil
}

// Audit returns the provider's accumulated HE-path view.
func (s *HEService) Audit() HEAudit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.audit
}

// Reset clears the audit counters (between experiment runs).
func (s *HEService) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.audit = HEAudit{}
}
