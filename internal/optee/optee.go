// Package optee models the OP-TEE trusted OS the paper builds on (§II):
// trusted applications (TAs) with GlobalPlatform-style sessions, commands
// and parameters; pseudo trusted applications (PTAs) — "secure modules with
// OS-level privileges that serve as an intermediary between a TA and
// low-level code like device driver software"; RPC to the normal-world
// tee-supplicant for OS services; and AES-GCM secure storage for TA
// objects such as model weights.
//
// Every entry from the normal world crosses the secure monitor (tz.Monitor)
// and is cost-accounted; every RPC to the supplicant pays two extra world
// switches, exactly the traffic pattern whose overhead the paper's §V
// flags as the main performance limitation.
package optee

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/memory"
	"repro/internal/tz"
)

// Errors returned by the TEE.
var (
	// ErrUnknownTA is returned when opening a session to an unknown UUID.
	ErrUnknownTA = errors.New("optee: unknown trusted application")
	// ErrBadSession is returned for operations on closed sessions.
	ErrBadSession = errors.New("optee: bad session")
	// ErrNoRPCHandler is returned when an RPC fires with no supplicant.
	ErrNoRPCHandler = errors.New("optee: no RPC handler registered")
	// ErrBadParam is returned for malformed parameter lists.
	ErrBadParam = errors.New("optee: bad parameter")
	// ErrAccessDenied is returned when a normal-world client addresses a
	// PTA directly; PTAs are reachable only from inside the secure world.
	ErrAccessDenied = errors.New("optee: access denied")
)

// ParamType tags one invocation parameter, following the GlobalPlatform
// TEE Client API types. ParamNone is the zero value so unused slots need
// no initialization.
type ParamType int

const (
	// ParamNone marks an unused slot.
	ParamNone ParamType = iota
	// ValueIn passes two scalars into the TEE.
	ValueIn
	// ValueOut returns two scalars from the TEE.
	ValueOut
	// ValueInOut passes and returns scalars.
	ValueInOut
	// MemrefIn passes a buffer into the TEE.
	MemrefIn
	// MemrefOut returns a buffer from the TEE (TA sets Buf length used).
	MemrefOut
	// MemrefInOut passes and returns a buffer.
	MemrefInOut
)

// IsMemref reports whether the type carries a buffer.
func (t ParamType) IsMemref() bool {
	return t == MemrefIn || t == MemrefOut || t == MemrefInOut
}

// Param is one invocation parameter.
type Param struct {
	Type ParamType
	A, B uint64
	Buf  []byte
}

// Params is the GlobalPlatform fixed four-slot parameter list.
type Params [4]Param

// Validate rejects inconsistent parameter lists.
func (p *Params) Validate() error {
	for i, prm := range p {
		if prm.Type.IsMemref() && prm.Buf == nil && prm.Type != MemrefOut {
			return fmt.Errorf("%w: slot %d: memref without buffer", ErrBadParam, i)
		}
		if !prm.Type.IsMemref() && prm.Buf != nil {
			return fmt.Errorf("%w: slot %d: buffer on value param", ErrBadParam, i)
		}
	}
	return nil
}

// TA is a trusted application (or pseudo TA). Implementations run with the
// CPU in the secure world.
type TA interface {
	// UUID identifies the application.
	UUID() string
	// Open is called when a session is opened.
	Open(sessionID uint32) error
	// Invoke executes a command. Memref-out parameters are written in
	// place.
	Invoke(sessionID uint32, cmd uint32, p *Params) error
	// Close is called when the session closes.
	Close(sessionID uint32)
}

// RPCKind selects a supplicant service.
type RPCKind int

const (
	// RPCNetSend forwards a payload to the network and returns the reply.
	RPCNetSend RPCKind = iota + 1
	// RPCTimeGet returns the current virtual time.
	RPCTimeGet
	// RPCLog appends a diagnostic line to the normal-world log.
	RPCLog
)

// String returns the RPC kind name.
func (k RPCKind) String() string {
	switch k {
	case RPCNetSend:
		return "net-send"
	case RPCTimeGet:
		return "time-get"
	case RPCLog:
		return "log"
	default:
		return fmt.Sprintf("rpc(%d)", int(k))
	}
}

// RPCRequest is one supplicant service request.
type RPCRequest struct {
	Kind    RPCKind
	Target  string // e.g. cloud endpoint name for RPCNetSend
	Payload []byte
}

// RPCResponse carries the supplicant's answer.
type RPCResponse struct {
	Payload []byte
}

// RPCHandler services requests in the normal world (the tee-supplicant).
type RPCHandler interface {
	HandleRPC(req RPCRequest) (RPCResponse, error)
}

// Stats snapshots TEE activity.
type Stats struct {
	SessionsOpened uint64
	Invocations    uint64
	PTAInvocations uint64
	RPCs           uint64
}

// SMC function IDs used by the TEE entry vector.
const (
	smcOpenSession  tz.SMCFunc = 0xb200_0001
	smcInvoke       tz.SMCFunc = 0xb200_0002
	smcCloseSession tz.SMCFunc = 0xb200_0003
)

type session struct {
	id   uint32
	ta   TA
	uuid string
}

// OS is the OP-TEE core instance.
type OS struct {
	monitor *tz.Monitor
	heap    *memory.Heap

	// entryMu serializes normal-world entries into the TEE. The model is
	// a single-CPU platform: only one thread can be inside the secure
	// world at a time, which is exactly how OP-TEE gates SMC entry per
	// core.
	entryMu sync.Mutex

	mu       sync.Mutex
	tas      map[string]TA
	ptas     map[string]TA
	sessions map[uint32]*session
	nextID   uint32
	rpc      RPCHandler
	stats    Stats

	// pending carries the rich argument payload across the SMC register
	// interface (real OP-TEE passes a physical pointer to a message
	// structure in shared memory; the cost of that indirection is charged
	// via the cache-flush penalty on memref parameters).
	pending *message
}

type message struct {
	uuid    string
	session uint32
	cmd     uint32
	params  *Params
	// results
	newSession uint32
	err        error
}

// New creates the TEE core and installs its SMC handlers on the monitor.
func New(monitor *tz.Monitor, heap *memory.Heap) *OS {
	o := &OS{
		monitor:  monitor,
		heap:     heap,
		tas:      make(map[string]TA),
		ptas:     make(map[string]TA),
		sessions: make(map[uint32]*session),
		nextID:   1,
	}
	monitor.Register(smcOpenSession, o.handleOpen)
	monitor.Register(smcInvoke, o.handleInvoke)
	monitor.Register(smcCloseSession, o.handleClose)
	return o
}

// Monitor returns the secure monitor the OS is bound to.
func (o *OS) Monitor() *tz.Monitor { return o.monitor }

// SecureHeap returns the TEE's secure memory allocator.
func (o *OS) SecureHeap() *memory.Heap { return o.heap }

// RegisterTA installs a trusted application.
func (o *OS) RegisterTA(ta TA) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.tas[ta.UUID()] = ta
}

// RegisterPTA installs a pseudo trusted application. PTAs are reachable
// only from the secure world (InvokeSecure), never from normal-world
// clients.
func (o *OS) RegisterPTA(ta TA) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ptas[ta.UUID()] = ta
}

// SetRPCHandler connects the tee-supplicant.
func (o *OS) SetRPCHandler(h RPCHandler) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rpc = h
}

// Stats returns a snapshot of TEE activity.
func (o *OS) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// --- normal-world entry points (called by the TEE client library) ----------

// OpenSession opens a session to a TA from the normal world, crossing the
// monitor. Sessions to PTAs are denied, as in real OP-TEE for PTAs that
// serve kernel/driver purposes.
func (o *OS) OpenSession(uuid string) (uint32, error) {
	msg := &message{uuid: uuid}
	if err := o.smc(smcOpenSession, msg); err != nil {
		return 0, err
	}
	return msg.newSession, nil
}

// Invoke executes a command on an open session from the normal world.
func (o *OS) Invoke(sessionID uint32, cmd uint32, p *Params) error {
	if p == nil {
		p = &Params{}
	}
	if err := p.Validate(); err != nil {
		return err
	}
	// Shared-memory parameters pay cache maintenance on the way in.
	for _, prm := range p {
		if prm.Type.IsMemref() {
			o.monitor.FlushSharedRange()
		}
	}
	msg := &message{session: sessionID, cmd: cmd, params: p}
	return o.smc(smcInvoke, msg)
}

// CloseSession closes a session from the normal world.
func (o *OS) CloseSession(sessionID uint32) error {
	msg := &message{session: sessionID}
	return o.smc(smcCloseSession, msg)
}

func (o *OS) smc(fn tz.SMCFunc, msg *message) error {
	o.entryMu.Lock()
	defer o.entryMu.Unlock()
	o.mu.Lock()
	o.pending = msg
	o.mu.Unlock()
	if _, err := o.monitor.SMC(fn, [4]uint64{}); err != nil {
		return err
	}
	return msg.err
}

func (o *OS) takePending() *message {
	o.mu.Lock()
	defer o.mu.Unlock()
	msg := o.pending
	o.pending = nil
	return msg
}

// --- secure-world handlers ---------------------------------------------------

func (o *OS) handleOpen(args [4]uint64) ([4]uint64, error) {
	msg := o.takePending()
	if msg == nil {
		return [4]uint64{}, fmt.Errorf("%w: no pending open", ErrBadParam)
	}
	o.mu.Lock()
	ta, ok := o.tas[msg.uuid]
	if !ok {
		if _, isPTA := o.ptas[msg.uuid]; isPTA {
			o.mu.Unlock()
			msg.err = fmt.Errorf("%w: %s is a PTA", ErrAccessDenied, msg.uuid)
			return [4]uint64{}, nil
		}
		o.mu.Unlock()
		msg.err = fmt.Errorf("%w: %s", ErrUnknownTA, msg.uuid)
		return [4]uint64{}, nil
	}
	id := o.nextID
	o.nextID++
	o.mu.Unlock()

	if err := ta.Open(id); err != nil {
		msg.err = fmt.Errorf("open %s: %w", msg.uuid, err)
		return [4]uint64{}, nil
	}
	o.mu.Lock()
	o.sessions[id] = &session{id: id, ta: ta, uuid: msg.uuid}
	o.stats.SessionsOpened++
	o.mu.Unlock()
	msg.newSession = id
	return [4]uint64{uint64(id)}, nil
}

func (o *OS) handleInvoke(args [4]uint64) ([4]uint64, error) {
	msg := o.takePending()
	if msg == nil {
		return [4]uint64{}, fmt.Errorf("%w: no pending invoke", ErrBadParam)
	}
	o.mu.Lock()
	s, ok := o.sessions[msg.session]
	if ok {
		o.stats.Invocations++
	}
	o.mu.Unlock()
	if !ok {
		msg.err = fmt.Errorf("%w: %d", ErrBadSession, msg.session)
		return [4]uint64{}, nil
	}
	p := msg.params
	if p == nil {
		p = &Params{}
	}
	msg.err = s.ta.Invoke(msg.session, msg.cmd, p)
	return [4]uint64{}, nil
}

func (o *OS) handleClose(args [4]uint64) ([4]uint64, error) {
	msg := o.takePending()
	if msg == nil {
		return [4]uint64{}, fmt.Errorf("%w: no pending close", ErrBadParam)
	}
	o.mu.Lock()
	s, ok := o.sessions[msg.session]
	delete(o.sessions, msg.session)
	o.mu.Unlock()
	if !ok {
		msg.err = fmt.Errorf("%w: %d", ErrBadSession, msg.session)
		return [4]uint64{}, nil
	}
	s.ta.Close(s.id)
	return [4]uint64{}, nil
}

// --- secure-world services for TAs ---------------------------------------------

// InvokeSecure lets a TA (already executing in the secure world) call a
// PTA or another TA through the TEE-internal syscall interface. No world
// switch occurs; the dispatch cost is one TEE syscall.
func (o *OS) InvokeSecure(uuid string, cmd uint32, p *Params) error {
	if o.monitor.World() != tz.WorldSecure {
		return fmt.Errorf("%w: InvokeSecure from %s world", ErrAccessDenied, o.monitor.World())
	}
	if p == nil {
		p = &Params{}
	}
	if err := p.Validate(); err != nil {
		return err
	}
	o.monitor.Clock().Advance(o.monitor.Cost().Syscall)
	o.mu.Lock()
	ta, ok := o.ptas[uuid]
	if !ok {
		ta, ok = o.tas[uuid]
	}
	if ok {
		o.stats.PTAInvocations++
	}
	o.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTA, uuid)
	}
	return ta.Invoke(0, cmd, p)
}

// RPC suspends the calling TA and services req in the normal world via the
// tee-supplicant, paying the two extra world switches of the OP-TEE RPC
// path.
func (o *OS) RPC(req RPCRequest) (RPCResponse, error) {
	o.mu.Lock()
	h := o.rpc
	o.mu.Unlock()
	if h == nil {
		return RPCResponse{}, ErrNoRPCHandler
	}
	if o.monitor.World() != tz.WorldSecure {
		return RPCResponse{}, fmt.Errorf("%w: RPC from %s world", ErrAccessDenied, o.monitor.World())
	}
	var (
		resp RPCResponse
		err  error
	)
	o.monitor.NormalCall(func() {
		resp, err = h.HandleRPC(req)
	})
	o.mu.Lock()
	o.stats.RPCs++
	o.mu.Unlock()
	if err != nil {
		return RPCResponse{}, fmt.Errorf("rpc %s: %w", req.Kind, err)
	}
	return resp, nil
}
