package optee

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/memory"
	"repro/internal/tz"
)

// echoTA copies memref-in to memref-out and doubles value params.
type echoTA struct {
	uuid    string
	opens   int
	closes  int
	invokes int
	openErr error
}

func (e *echoTA) UUID() string { return e.uuid }

func (e *echoTA) Open(sessionID uint32) error {
	if e.openErr != nil {
		return e.openErr
	}
	e.opens++
	return nil
}

func (e *echoTA) Invoke(sessionID uint32, cmd uint32, p *Params) error {
	e.invokes++
	if p[0].Type == ValueInOut {
		p[0].A *= 2
	}
	if p[1].Type == MemrefInOut {
		for i := range p[1].Buf {
			p[1].Buf[i] ^= 0x55
		}
	}
	return nil
}

func (e *echoTA) Close(sessionID uint32) { e.closes++ }

func newTEE(t *testing.T) (*OS, *tz.Monitor, *tz.Clock) {
	t.Helper()
	clock := tz.NewClock()
	mon := tz.NewMonitor(clock, tz.DefaultCostModel())
	plat, err := memory.NewPlatform(memory.DefaultLayout())
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return New(mon, plat.SecureHeap), mon, clock
}

func TestSessionLifecycle(t *testing.T) {
	os, mon, _ := newTEE(t)
	ta := &echoTA{uuid: "echo"}
	os.RegisterTA(ta)

	id, err := os.OpenSession("echo")
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if id == 0 {
		t.Error("session id should be nonzero")
	}
	p := &Params{{Type: ValueInOut, A: 21}}
	if err := os.Invoke(id, 1, p); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if p[0].A != 42 {
		t.Errorf("value round trip = %d, want 42", p[0].A)
	}
	if err := os.CloseSession(id); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if ta.opens != 1 || ta.invokes != 1 || ta.closes != 1 {
		t.Errorf("ta saw %d/%d/%d", ta.opens, ta.invokes, ta.closes)
	}
	// All entries crossed the monitor: 3 SMCs = 6 switches.
	if st := mon.Stats(); st.SMCs != 3 || st.Switches != 6 {
		t.Errorf("monitor stats = %+v", st)
	}
	if st := os.Stats(); st.SessionsOpened != 1 || st.Invocations != 1 {
		t.Errorf("tee stats = %+v", st)
	}
}

func TestOpenSessionErrors(t *testing.T) {
	os, _, _ := newTEE(t)
	if _, err := os.OpenSession("ghost"); !errors.Is(err, ErrUnknownTA) {
		t.Errorf("OpenSession ghost = %v", err)
	}
	boom := errors.New("ta init failed")
	os.RegisterTA(&echoTA{uuid: "bad", openErr: boom})
	if _, err := os.OpenSession("bad"); !errors.Is(err, boom) {
		t.Errorf("OpenSession bad = %v", err)
	}
	// PTAs are not reachable from the normal world.
	os.RegisterPTA(&echoTA{uuid: "pta.driver"})
	if _, err := os.OpenSession("pta.driver"); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("OpenSession on PTA = %v, want ErrAccessDenied", err)
	}
}

func TestInvokeBadSession(t *testing.T) {
	os, _, _ := newTEE(t)
	if err := os.Invoke(99, 1, nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("Invoke bad session = %v", err)
	}
	if err := os.CloseSession(99); !errors.Is(err, ErrBadSession) {
		t.Errorf("Close bad session = %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	good := &Params{
		{Type: ValueIn, A: 1},
		{Type: MemrefIn, Buf: []byte{1}},
		{Type: MemrefOut, Buf: make([]byte, 4)},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad1 := &Params{{Type: MemrefIn}}
	if err := bad1.Validate(); !errors.Is(err, ErrBadParam) {
		t.Errorf("memref without buffer = %v", err)
	}
	bad2 := &Params{{Type: ValueIn, Buf: []byte{1}}}
	if err := bad2.Validate(); !errors.Is(err, ErrBadParam) {
		t.Errorf("value with buffer = %v", err)
	}
}

func TestMemrefRoundTripAndCacheCost(t *testing.T) {
	os, mon, clock := newTEE(t)
	os.RegisterTA(&echoTA{uuid: "echo"})
	id, err := os.OpenSession("echo")
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	buf := []byte{0x00, 0xff}
	before := clock.Now()
	p := &Params{{}, {Type: MemrefInOut, Buf: buf}}
	if err := os.Invoke(id, 1, p); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if buf[0] != 0x55 || buf[1] != 0xaa {
		t.Errorf("memref transform = %v", buf)
	}
	// One memref param must cost at least one cache flush beyond the SMC.
	cost := mon.Cost()
	minCycles := 2*cost.WorldSwitch + cost.SMCDispatch + cost.CacheFlush
	if got := clock.Now() - before; got < minCycles {
		t.Errorf("invoke cost %d cycles, want >= %d", got, minCycles)
	}
}

func TestInvokeSecureReachesPTAWithoutWorldSwitch(t *testing.T) {
	os, mon, _ := newTEE(t)
	pta := &echoTA{uuid: "pta.driver"}
	os.RegisterPTA(pta)

	// bridgeTA calls the PTA from inside the secure world.
	bridge := &bridgeTA{os: os, target: "pta.driver"}
	os.RegisterTA(bridge)

	id, err := os.OpenSession("bridge")
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	switchesBefore := mon.Stats().Switches
	if err := os.Invoke(id, 7, &Params{{Type: ValueInOut, A: 5}}); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	// Exactly one SMC round trip (2 switches) regardless of the nested
	// PTA call.
	if got := mon.Stats().Switches - switchesBefore; got != 2 {
		t.Errorf("TA->PTA invocation used %d switches, want 2", got)
	}
	if pta.invokes != 1 {
		t.Errorf("PTA invoked %d times", pta.invokes)
	}
	if st := os.Stats(); st.PTAInvocations != 1 {
		t.Errorf("PTAInvocations = %d", st.PTAInvocations)
	}
}

// bridgeTA forwards its command to another TA/PTA via InvokeSecure.
type bridgeTA struct {
	os     *OS
	target string
}

func (b *bridgeTA) UUID() string                { return "bridge" }
func (b *bridgeTA) Open(sessionID uint32) error { return nil }
func (b *bridgeTA) Close(sessionID uint32)      {}

func (b *bridgeTA) Invoke(sessionID uint32, cmd uint32, p *Params) error {
	return b.os.InvokeSecure(b.target, cmd, p)
}

func TestInvokeSecureDeniedFromNormalWorld(t *testing.T) {
	os, _, _ := newTEE(t)
	os.RegisterPTA(&echoTA{uuid: "pta.x"})
	if err := os.InvokeSecure("pta.x", 1, nil); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("InvokeSecure from normal world = %v", err)
	}
}

// rpcTA issues an RPC from inside Invoke.
type rpcTA struct {
	os   *OS
	got  []byte
	rerr error
}

func (r *rpcTA) UUID() string                { return "rpc-ta" }
func (r *rpcTA) Open(sessionID uint32) error { return nil }
func (r *rpcTA) Close(sessionID uint32)      {}

func (r *rpcTA) Invoke(sessionID uint32, cmd uint32, p *Params) error {
	resp, err := r.os.RPC(RPCRequest{Kind: RPCNetSend, Target: "cloud", Payload: []byte("sealed")})
	r.got = resp.Payload
	r.rerr = err
	return err
}

type fakeRPC struct {
	reqs []RPCRequest
}

func (f *fakeRPC) HandleRPC(req RPCRequest) (RPCResponse, error) {
	f.reqs = append(f.reqs, req)
	return RPCResponse{Payload: []byte("ack")}, nil
}

func TestRPCChargesExtraSwitches(t *testing.T) {
	os, mon, _ := newTEE(t)
	handler := &fakeRPC{}
	os.SetRPCHandler(handler)
	ta := &rpcTA{os: os}
	os.RegisterTA(ta)

	id, err := os.OpenSession("rpc-ta")
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	switchesBefore := mon.Stats().Switches
	if err := os.Invoke(id, 1, nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	// SMC round trip (2) + RPC exit/re-enter (2) = 4 switches.
	if got := mon.Stats().Switches - switchesBefore; got != 4 {
		t.Errorf("RPC invoke used %d switches, want 4", got)
	}
	if string(ta.got) != "ack" {
		t.Errorf("RPC response = %q", ta.got)
	}
	if len(handler.reqs) != 1 || handler.reqs[0].Kind != RPCNetSend {
		t.Errorf("handler saw %+v", handler.reqs)
	}
	if st := os.Stats(); st.RPCs != 1 {
		t.Errorf("RPCs = %d", st.RPCs)
	}
}

func TestRPCWithoutHandler(t *testing.T) {
	os, _, _ := newTEE(t)
	ta := &rpcTA{os: os}
	os.RegisterTA(ta)
	id, err := os.OpenSession("rpc-ta")
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if err := os.Invoke(id, 1, nil); !errors.Is(err, ErrNoRPCHandler) {
		t.Errorf("Invoke without supplicant = %v", err)
	}
}

func TestConcurrentInvocationsSerialized(t *testing.T) {
	os, _, _ := newTEE(t)
	os.RegisterTA(&echoTA{uuid: "echo"})
	const workers = 8
	const perWorker = 50
	ids := make([]uint32, workers)
	for w := range ids {
		id, err := os.OpenSession("echo")
		if err != nil {
			t.Fatalf("OpenSession: %v", err)
		}
		ids[w] = id
	}
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				p := &Params{{Type: ValueInOut, A: uint64(w*1000 + i)}}
				if err := os.Invoke(ids[w], 1, p); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if p[0].A != uint64(w*1000+i)*2 {
					errs <- fmt.Errorf("worker %d: cross-talk: got %d", w, p[0].A)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if st := os.Stats(); st.Invocations != workers*perWorker {
		t.Errorf("Invocations = %d, want %d", st.Invocations, workers*perWorker)
	}
}

// Property: value parameters of any magnitude round-trip unchanged
// through a session invoke (the echo TA doubles A; B is untouched).
func TestInvokeValueParamProperty(t *testing.T) {
	os, _, _ := newTEE(t)
	os.RegisterTA(&echoTA{uuid: "echo"})
	id, err := os.OpenSession("echo")
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	prop := func(a, b uint64) bool {
		p := &Params{{Type: ValueInOut, A: a, B: b}}
		if err := os.Invoke(id, 1, p); err != nil {
			return false
		}
		return p[0].A == a*2 && p[0].B == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParamTypeHelpers(t *testing.T) {
	if !MemrefIn.IsMemref() || !MemrefOut.IsMemref() || !MemrefInOut.IsMemref() {
		t.Error("memref types misclassified")
	}
	if ParamNone.IsMemref() || ValueIn.IsMemref() {
		t.Error("value types misclassified")
	}
	if RPCNetSend.String() != "net-send" || RPCKind(99).String() != "rpc(99)" {
		t.Error("RPCKind strings wrong")
	}
}

func TestStorageSealUnseal(t *testing.T) {
	st, err := NewStorage([]byte("device-unique-key"))
	if err != nil {
		t.Fatalf("NewStorage: %v", err)
	}
	weights := []byte("model-weights-v1: [0.1, 0.2, 0.3]")
	st.Put("classifier", weights)
	got, err := st.Get("classifier")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, weights) {
		t.Errorf("round trip = %q", got)
	}
	if _, err := st.Get("missing"); !errors.Is(err, ErrObjectNotFound) {
		t.Errorf("Get missing = %v", err)
	}
}

func TestStorageConfidentialityAndTamper(t *testing.T) {
	st, err := NewStorage([]byte("device-unique-key"))
	if err != nil {
		t.Fatalf("NewStorage: %v", err)
	}
	secret := []byte("sensitive model weights")
	st.Put("m", secret)
	sealed, ok := st.SealedBytes("m")
	if !ok {
		t.Fatal("sealed blob missing")
	}
	if bytes.Contains(sealed, secret) {
		t.Error("sealed blob contains plaintext")
	}
	if !st.Tamper("m", len(sealed)-1) {
		t.Fatal("tamper hook failed")
	}
	if _, err := st.Get("m"); !errors.Is(err, ErrCorruptObject) {
		t.Errorf("Get after tamper = %v, want ErrCorruptObject", err)
	}
}

func TestStorageDeleteAndList(t *testing.T) {
	st, err := NewStorage([]byte("k"))
	if err != nil {
		t.Fatalf("NewStorage: %v", err)
	}
	st.Put("a", []byte("1"))
	st.Put("b", []byte("2"))
	if got := st.List(); len(got) != 2 {
		t.Errorf("List = %v", got)
	}
	st.Delete("a")
	st.Delete("a") // idempotent
	if got := st.List(); len(got) != 1 || got[0] != "b" {
		t.Errorf("List after delete = %v", got)
	}
}

func TestStorageOverwriteReturnsLatest(t *testing.T) {
	st, err := NewStorage([]byte("k"))
	if err != nil {
		t.Fatalf("NewStorage: %v", err)
	}
	st.Put("m", []byte("v1"))
	blob1, _ := st.SealedBytes("m")
	st.Put("m", []byte("v2"))
	got, err := st.Get("m")
	if err != nil || string(got) != "v2" {
		t.Errorf("Get after overwrite = %q, %v", got, err)
	}
	// Nonces are unique per Put: the two sealed blobs must differ even
	// beyond the ciphertext (no nonce reuse).
	blob2, _ := st.SealedBytes("m")
	if bytes.Equal(blob1[:12], blob2[:12]) {
		t.Error("nonce reused across Puts")
	}
	// A rolled-back blob (the old sealed bytes re-installed by a hostile
	// normal world) still decrypts — rollback protection requires a
	// monotonic counter in hardware, which the paper's platform model
	// does not include; documented as out of scope.
}

func TestMonitorWorldInvariantUnderConcurrentSMC(t *testing.T) {
	os, mon, _ := newTEE(t)
	os.RegisterTA(&echoTA{uuid: "echo"})
	const workers = 6
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			id, err := os.OpenSession("echo")
			if err != nil {
				done <- err
				return
			}
			for i := 0; i < 30; i++ {
				if err := os.Invoke(id, 1, &Params{{Type: ValueInOut, A: 1}}); err != nil {
					done <- err
					return
				}
			}
			done <- os.CloseSession(id)
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// After all entries drained, the CPU must be back in the normal world.
	if mon.World() != tz.WorldNormal {
		t.Errorf("world = %v after quiescence", mon.World())
	}
}

func TestStorageDistinctKeysPerDevice(t *testing.T) {
	a, _ := NewStorage([]byte("device-a"))
	b, _ := NewStorage([]byte("device-b"))
	a.Put("m", []byte("secret"))
	blob, _ := a.SealedBytes("m")
	// Device B cannot unseal device A's object (simulate by installing
	// the blob directly).
	b.Put("m", nil) // create the slot
	b.mu.Lock()
	b.objects["m"] = blob
	b.mu.Unlock()
	if _, err := b.Get("m"); !errors.Is(err, ErrCorruptObject) {
		t.Errorf("cross-device unseal = %v, want ErrCorruptObject", err)
	}
}
