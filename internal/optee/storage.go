// Secure storage: the TEE-side persistent object store (GlobalPlatform
// Trusted Storage in real OP-TEE). Objects are sealed with AES-256-GCM
// under a key derived from the device's hardware unique key, giving two
// properties the rest of the system leans on: confidentiality (a
// normal-world attacker who steals the backing bytes learns nothing —
// SealedBytes is the test hook for exactly that view) and tamper
// evidence (any bit flip fails authentication on Get — Tamper is the
// matching hook).
//
// TAs use it for the assets that must survive reboots without ever
// existing in normal-world plaintext: the pre-trained classifier
// weights unsealed on first use, and — since the rollout subsystem —
// every provisioned model pack, stored both as a versioned history
// object ("voice-ta/model-pack-vN") and as the current-weights object
// the next unseal picks up. The sealing key never leaves the
// type; callers only see plaintext on the secure-world side of Get.
// (The package-level doc lives in optee.go; this header documents the
// storage subsystem.)

package optee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// Secure storage errors.
var (
	// ErrObjectNotFound is returned for missing storage objects.
	ErrObjectNotFound = errors.New("optee: storage object not found")
	// ErrCorruptObject is returned when authentication fails on load.
	ErrCorruptObject = errors.New("optee: storage object corrupt")
)

// Storage is the TEE secure object store: objects are sealed with a
// device-unique key (AES-256-GCM) so that even if the backing bytes leak
// to the normal world, they are confidential and tamper-evident. TAs use
// it for persistent assets — here, the pre-trained classifier weights.
type Storage struct {
	aead cipher.AEAD

	mu      sync.Mutex
	objects map[string][]byte // sealed blobs
	nonce   uint64
}

// NewStorage derives the sealing key from the device-unique secret
// (the hardware unique key real OP-TEE reads from fuses).
func NewStorage(deviceSecret []byte) (*Storage, error) {
	key := sha256.Sum256(append([]byte("optee-storage-v1:"), deviceSecret...))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("storage cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("storage gcm: %w", err)
	}
	return &Storage{aead: aead, objects: make(map[string][]byte)}, nil
}

// Put seals and stores an object under id.
func (s *Storage) Put(id string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nonce := make([]byte, s.aead.NonceSize())
	s.nonce++
	putUint64(nonce, s.nonce)
	sealed := s.aead.Seal(nil, nonce, data, []byte(id))
	blob := make([]byte, 0, len(nonce)+len(sealed))
	blob = append(blob, nonce...)
	blob = append(blob, sealed...)
	s.objects[id] = blob
}

// Get unseals the object stored under id.
func (s *Storage) Get(id string) ([]byte, error) {
	s.mu.Lock()
	blob, ok := s.objects[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrObjectNotFound, id)
	}
	ns := s.aead.NonceSize()
	if len(blob) < ns {
		return nil, fmt.Errorf("%w: %q truncated", ErrCorruptObject, id)
	}
	data, err := s.aead.Open(nil, blob[:ns], blob[ns:], []byte(id))
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrCorruptObject, id, err)
	}
	return data, nil
}

// Delete removes an object; deleting a missing object is not an error.
func (s *Storage) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, id)
}

// List returns the stored object ids (unordered).
func (s *Storage) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.objects))
	for id := range s.objects {
		out = append(out, id)
	}
	return out
}

// SealedBytes returns the raw sealed blob (what a normal-world attacker
// stealing the backing store would see). Used by tests to verify
// confidentiality.
func (s *Storage) SealedBytes(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.objects[id]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), blob...), true
}

// Tamper flips a byte inside the sealed blob (test hook for the
// tamper-evidence property).
func (s *Storage) Tamper(id string, offset int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.objects[id]
	if !ok || offset >= len(blob) {
		return false
	}
	blob[offset] ^= 0xff
	return true
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8 && i < len(b); i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}
