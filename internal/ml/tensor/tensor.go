// Package tensor provides the dense float32 tensors underneath the
// from-scratch neural network stack. Shapes are row-major; the first axis
// is the batch dimension by convention.
//
// The stack is stdlib-only on purpose: the paper's TEE-resident classifier
// must be small and dependency-free, and parameter/byte accounting (for the
// TEE memory-fit experiment) needs full visibility into every buffer.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// ErrShape is returned for operations on incompatible shapes.
var ErrShape = errors.New("tensor: shape mismatch")

// Tensor is a dense row-major float32 array.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zeroed tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dim %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d elements for shape %v", ErrShape, len(data), shape)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}, nil
}

// Randn fills a new tensor with N(0, std) Gaussian values from rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dims returns the number of axes.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view with a new shape (same backing data).
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		return nil, fmt.Errorf("%w: reshape %v -> %v", ErrShape, t.Shape, shape)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}, nil
}

// At returns the element at the multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set writes the element at the multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

// offset keeps its panic messages free of the index slice on purpose:
// formatting idx forces every variadic At/Set call to heap-allocate its
// index, which used to dominate the conv-layer hot loops.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic("tensor: index rank mismatch for shape")
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic("tensor: index out of shape")
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Zero clears all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// AddInPlace adds o element-wise into t.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: %v + %v", ErrShape, t.Shape, o.Shape)
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
	return nil
}

// ScaleInPlace multiplies all elements by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Add returns t + o as a new tensor.
func Add(a, b *Tensor) (*Tensor, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("%w: %v + %v", ErrShape, a.Shape, b.Shape)
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out, nil
}

// Mul returns the element-wise product as a new tensor.
func Mul(a, b *Tensor) (*Tensor, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("%w: %v * %v", ErrShape, a.Shape, b.Shape)
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] *= b.Data[i]
	}
	return out, nil
}

// MatMul multiplies two 2-D tensors: [m,k] x [k,n] -> [m,n].
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 || a.Shape[1] != b.Shape[0] {
		return nil, fmt.Errorf("%w: matmul %v x %v", ErrShape, a.Shape, b.Shape)
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out, nil
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: transpose of %v", ErrShape, a.Shape)
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out, nil
}

// SoftmaxRows applies softmax along the last axis of a 2-D tensor in a new
// tensor, with the usual max-subtraction for stability.
func SoftmaxRows(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: softmax of %v", ErrShape, a.Shape)
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		orow := out.Data[i*n : (i+1)*n]
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			orow[j] = float32(e)
			sum += e
		}
		for j := range orow {
			orow[j] = float32(float64(orow[j]) / sum)
		}
	}
	return out, nil
}

// ArgMaxRows returns the index of the maximum in each row of a 2-D tensor.
func ArgMaxRows(a *Tensor) ([]int, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: argmax of %v", ErrShape, a.Shape)
	}
	m, n := a.Shape[0], a.Shape[1]
	out := make([]int, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out, nil
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.Data {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

// Row returns row i of a 2-D tensor as a mutable slice view.
func (t *Tensor) Row(i int) []float32 {
	n := t.Shape[len(t.Shape)-1]
	return t.Data[i*n : (i+1)*n]
}

// String renders a compact description.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(%d elems)", t.Shape, len(t.Data))
}
