package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// Property: softmax rows are probability distributions for any input.
func TestSoftmaxDistributionProperty(t *testing.T) {
	prop := func(seed uint64, rows, cols uint8) bool {
		m := int(rows%6) + 1
		n := int(cols%6) + 1
		rng := rand.New(rand.NewPCG(seed, seed^1))
		a := Randn(rng, 10, m, n) // large spread stresses stability
		s, err := SoftmaxRows(a)
		if err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				v := float64(s.At(i, j))
				if v < 0 || v > 1 || math.IsNaN(v) {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: matmul distributes over addition: A(B+C) == AB + AC.
func TestMatMulDistributivityProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^2))
		m, k, n := int(seed%4)+1, int(seed>>8%4)+1, int(seed>>16%4)+1
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c := Randn(rng, 1, k, n)
		bc, err := Add(b, c)
		if err != nil {
			return false
		}
		left, err := MatMul(a, bc)
		if err != nil {
			return false
		}
		ab, err := MatMul(a, b)
		if err != nil {
			return false
		}
		ac, err := MatMul(a, c)
		if err != nil {
			return false
		}
		right, err := Add(ab, ac)
		if err != nil {
			return false
		}
		for i := range left.Data {
			if math.Abs(float64(left.Data[i]-right.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: transpose preserves all elements ((A^T)_{ji} == A_{ij}).
func TestTransposeElementsProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^3))
		m, n := int(seed%5)+1, int(seed>>8%5)+1
		a := Randn(rng, 1, m, n)
		at, err := Transpose(a)
		if err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if a.At(i, j) != at.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ArgMaxRows returns the position of a strictly dominant value.
func TestArgMaxDominantProperty(t *testing.T) {
	prop := func(seed uint64, pos uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^4))
		n := int(seed%7) + 2
		a := Randn(rng, 1, 1, n)
		p := int(pos) % n
		a.Set(float32(a.MaxAbs())+1, 0, p)
		idx, err := ArgMaxRows(a)
		if err != nil {
			return false
		}
		return idx[0] == p
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
