package tensor

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 || x.Dims() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("bad tensor: %v", x)
	}
	x.Set(5, 1, 2)
	if x.At(1, 2) != 5 {
		t.Error("Set/At mismatch")
	}
	if x.String() == "" {
		t.Error("empty String()")
	}
}

func TestFromSlice(t *testing.T) {
	x, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	if x.At(1, 0) != 3 {
		t.Error("layout wrong")
	}
	if _, err := FromSlice([]float32{1, 2, 3}, 2, 2); !errors.Is(err, ErrShape) {
		t.Errorf("bad FromSlice = %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	x := New(2, 2)
	x.Fill(1)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Error("Clone shares data")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 3)
	y, err := x.Reshape(3, 2)
	if err != nil {
		t.Fatalf("Reshape: %v", err)
	}
	y.Data[0] = 7
	if x.Data[0] != 7 {
		t.Error("Reshape copied data")
	}
	if _, err := x.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Errorf("bad Reshape = %v", err)
	}
}

func TestMatMulKnown(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatalf("MatMul: %v", err)
	}
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
	if _, err := MatMul(a, a); !errors.Is(err, ErrShape) {
		t.Errorf("bad MatMul = %v", err)
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	prop := func(seed uint32) bool {
		n := int(seed%5) + 2
		a := Randn(rng, 1, n, n)
		eye := New(n, n)
		for i := 0; i < n; i++ {
			eye.Set(1, i, i)
		}
		out, err := MatMul(a, eye)
		if err != nil {
			return false
		}
		for i := range a.Data {
			if math.Abs(float64(out.Data[i]-a.Data[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	a := Randn(rng, 1, 3, 5)
	at, err := Transpose(a)
	if err != nil {
		t.Fatalf("Transpose: %v", err)
	}
	att, err := Transpose(at)
	if err != nil {
		t.Fatalf("Transpose: %v", err)
	}
	for i := range a.Data {
		if a.Data[i] != att.Data[i] {
			t.Fatal("double transpose != identity")
		}
	}
	if at.Dim(0) != 5 || at.Dim(1) != 3 {
		t.Errorf("transpose shape = %v", at.Shape)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	s, err := SoftmaxRows(a)
	if err != nil {
		t.Fatalf("SoftmaxRows: %v", err)
	}
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			v := float64(s.At(i, j))
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax[%d,%d] = %v", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	if s.At(0, 2) <= s.At(0, 0) {
		t.Error("softmax not monotonic")
	}
}

func TestArgMaxRows(t *testing.T) {
	a, _ := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	idx, err := ArgMaxRows(a)
	if err != nil {
		t.Fatalf("ArgMaxRows: %v", err)
	}
	if idx[0] != 1 || idx[1] != 0 {
		t.Errorf("argmax = %v", idx)
	}
}

func TestElementwiseOps(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2}, 2)
	b, _ := FromSlice([]float32{3, 4}, 2)
	sum, err := Add(a, b)
	if err != nil || sum.Data[0] != 4 || sum.Data[1] != 6 {
		t.Errorf("Add = %v, %v", sum, err)
	}
	prod, err := Mul(a, b)
	if err != nil || prod.Data[0] != 3 || prod.Data[1] != 8 {
		t.Errorf("Mul = %v, %v", prod, err)
	}
	c := New(3)
	if _, err := Add(a, c); !errors.Is(err, ErrShape) {
		t.Errorf("shape-mismatched Add = %v", err)
	}
	if err := a.AddInPlace(b); err != nil || a.Data[0] != 4 {
		t.Errorf("AddInPlace = %v", err)
	}
	a.ScaleInPlace(2)
	if a.Data[0] != 8 {
		t.Error("ScaleInPlace wrong")
	}
}

func TestReductions(t *testing.T) {
	a, _ := FromSlice([]float32{1, -2, 3}, 3)
	if a.Sum() != 2 {
		t.Errorf("Sum = %v", a.Sum())
	}
	if math.Abs(a.Mean()-2.0/3) > 1e-9 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if a.MaxAbs() != 3 {
		t.Errorf("MaxAbs = %v", a.MaxAbs())
	}
	empty := &Tensor{}
	if empty.Mean() != 0 {
		t.Error("empty Mean should be 0")
	}
}

func TestRandnDeterminism(t *testing.T) {
	a := Randn(rand.New(rand.NewPCG(9, 9)), 1, 4, 4)
	b := Randn(rand.New(rand.NewPCG(9, 9)), 1, 4, 4)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different tensors")
		}
	}
}

func TestRowView(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	r := a.Row(1)
	r[0] = 9
	if a.At(1, 0) != 9 {
		t.Error("Row is not a view")
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Error("equal shapes reported different")
	}
	if New(2, 3).SameShape(New(3, 2)) || New(2).SameShape(New(2, 1)) {
		t.Error("different shapes reported same")
	}
}
