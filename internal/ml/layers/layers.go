// Package layers implements the neural-network building blocks of the
// paper's §IV.4 classifier menu — dense, 1-D/2-D convolution, pooling,
// embeddings, layer normalization and multi-head self-attention — each
// with explicit forward and backward passes so the models can be trained
// in-repo, then frozen and shipped into the TEE.
//
// Tensors flow as [batch, ...]; layers cache whatever the backward pass
// needs, so a Layer instance serves one forward/backward pair at a time
// (mini-batch training and single-stream inference, which is all the
// pipeline requires).
package layers

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ml/tensor"
)

// Errors returned by the package.
var (
	// ErrShape is returned for inputs with unexpected shapes.
	ErrShape = errors.New("layers: shape mismatch")
	// ErrNoForward is returned by Backward before any Forward.
	ErrNoForward = errors.New("layers: backward before forward")
)

// Param is one trainable parameter with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

func newParam(name string, v *tensor.Tensor) *Param {
	return &Param{Name: name, Value: v, Grad: tensor.New(v.Shape...)}
}

// Layer is one differentiable block.
type Layer interface {
	// Name identifies the layer in diagnostics.
	Name() string
	// Forward computes the output and caches state for Backward.
	Forward(x *tensor.Tensor) (*tensor.Tensor, error)
	// Backward consumes dOut and returns dIn, accumulating parameter
	// gradients.
	Backward(dOut *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the trainable parameters (nil for stateless layers).
	Params() []*Param
}

// ParamCount sums the parameter element counts of a layer list.
func ParamCount(ls []Layer) int {
	n := 0
	for _, l := range ls {
		for _, p := range l.Params() {
			n += p.Value.Len()
		}
	}
	return n
}

// --- Dense --------------------------------------------------------------------

// Dense is a fully connected layer: y = xW + b, x [B,in] -> y [B,out].
type Dense struct {
	In, Out int
	w, b    *Param
	x       *tensor.Tensor
}

// NewDense creates a dense layer with Xavier-scaled weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	std := math.Sqrt(2.0 / float64(in+out))
	return &Dense{
		In:  in,
		Out: out,
		w:   newParam("dense.w", tensor.Randn(rng, std, in, out)),
		b:   newParam("dense.b", tensor.New(out)),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.In, d.Out) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 2 || x.Dim(1) != d.In {
		return nil, fmt.Errorf("%w: %s got %v", ErrShape, d.Name(), x.Shape)
	}
	d.x = x
	out, err := tensor.MatMul(x, d.w.Value)
	if err != nil {
		return nil, err
	}
	b := d.b.Value.Data
	for i := 0; i < out.Dim(0); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += b[j]
		}
	}
	return out, nil
}

// Backward implements Layer.
func (d *Dense) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if d.x == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoForward, d.Name())
	}
	if dOut.Dims() != 2 || dOut.Dim(1) != d.Out || dOut.Dim(0) != d.x.Dim(0) {
		return nil, fmt.Errorf("%w: %s backward got %v", ErrShape, d.Name(), dOut.Shape)
	}
	xt, err := tensor.Transpose(d.x)
	if err != nil {
		return nil, err
	}
	dw, err := tensor.MatMul(xt, dOut)
	if err != nil {
		return nil, err
	}
	if err := d.w.Grad.AddInPlace(dw); err != nil {
		return nil, err
	}
	for i := 0; i < dOut.Dim(0); i++ {
		row := dOut.Row(i)
		for j, v := range row {
			d.b.Grad.Data[j] += v
		}
	}
	wt, err := tensor.Transpose(d.w.Value)
	if err != nil {
		return nil, err
	}
	return tensor.MatMul(dOut, wt)
}

// --- Activations ------------------------------------------------------------------

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU creates a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	out := x.Clone()
	r.mask = make([]bool, len(out.Data))
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			out.Data[i] = 0
		}
	}
	return out, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if r.mask == nil {
		return nil, fmt.Errorf("%w: relu", ErrNoForward)
	}
	if len(dOut.Data) != len(r.mask) {
		return nil, fmt.Errorf("%w: relu backward", ErrShape)
	}
	dIn := dOut.Clone()
	for i := range dIn.Data {
		if !r.mask[i] {
			dIn.Data[i] = 0
		}
	}
	return dIn, nil
}

// GELU is the Gaussian-error linear unit (tanh approximation), the
// transformer-standard activation.
type GELU struct {
	x *tensor.Tensor
}

// NewGELU creates a GELU layer.
func NewGELU() *GELU { return &GELU{} }

// Name implements Layer.
func (g *GELU) Name() string { return "gelu" }

// Params implements Layer.
func (g *GELU) Params() []*Param { return nil }

const geluC = 0.7978845608028654 // sqrt(2/pi)

func geluFwd(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x)))
}

func geluGrad(x float64) float64 {
	t := math.Tanh(geluC * (x + 0.044715*x*x*x))
	dt := (1 - t*t) * geluC * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*dt
}

// Forward implements Layer.
func (g *GELU) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	g.x = x.Clone()
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = float32(geluFwd(float64(v)))
	}
	return out, nil
}

// Backward implements Layer.
func (g *GELU) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if g.x == nil {
		return nil, fmt.Errorf("%w: gelu", ErrNoForward)
	}
	dIn := dOut.Clone()
	for i := range dIn.Data {
		dIn.Data[i] *= float32(geluGrad(float64(g.x.Data[i])))
	}
	return dIn, nil
}

// --- Conv1D ---------------------------------------------------------------------------

// Conv1D is a 1-D convolution over sequences: input [B, L, Cin] ->
// output [B, L-K+1, Cout] (valid padding, stride 1). Weight layout is
// [K, Cin, Cout].
type Conv1D struct {
	K, Cin, Cout int
	w, b         *Param
	x            *tensor.Tensor
}

// NewConv1D creates a 1-D convolution with He-scaled weights.
func NewConv1D(rng *rand.Rand, k, cin, cout int) *Conv1D {
	std := math.Sqrt(2.0 / float64(k*cin))
	return &Conv1D{
		K: k, Cin: cin, Cout: cout,
		w: newParam("conv1d.w", tensor.Randn(rng, std, k, cin, cout)),
		b: newParam("conv1d.b", tensor.New(cout)),
	}
}

// Name implements Layer.
func (c *Conv1D) Name() string { return fmt.Sprintf("conv1d(k%d,%d->%d)", c.K, c.Cin, c.Cout) }

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.w, c.b} }

// Forward implements Layer.
func (c *Conv1D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 3 || x.Dim(2) != c.Cin || x.Dim(1) < c.K {
		return nil, fmt.Errorf("%w: %s got %v", ErrShape, c.Name(), x.Shape)
	}
	c.x = x
	B, L := x.Dim(0), x.Dim(1)
	Lout := L - c.K + 1
	out := tensor.New(B, Lout, c.Cout)
	// Flat row-major indexing: x is [B,L,Cin], w is [K,Cin,Cout]. The
	// accumulation order matches the historical At/Set loops exactly; only
	// the index arithmetic is hoisted out of the inner loop.
	xd, wd, bd, od := x.Data, c.w.Value.Data, c.b.Value.Data, out.Data
	for bi := 0; bi < B; bi++ {
		for t := 0; t < Lout; t++ {
			for co := 0; co < c.Cout; co++ {
				acc := bd[co]
				for k := 0; k < c.K; k++ {
					xrow := xd[(bi*L+t+k)*c.Cin:]
					wrow := wd[k*c.Cin*c.Cout+co:]
					for ci := 0; ci < c.Cin; ci++ {
						acc += xrow[ci] * wrow[ci*c.Cout]
					}
				}
				od[(bi*Lout+t)*c.Cout+co] = acc
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (c *Conv1D) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if c.x == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoForward, c.Name())
	}
	x := c.x
	B, L := x.Dim(0), x.Dim(1)
	Lout := L - c.K + 1
	if dOut.Dims() != 3 || dOut.Dim(0) != B || dOut.Dim(1) != Lout || dOut.Dim(2) != c.Cout {
		return nil, fmt.Errorf("%w: %s backward got %v", ErrShape, c.Name(), dOut.Shape)
	}
	dIn := tensor.New(B, L, c.Cin)
	xd, wd := x.Data, c.w.Value.Data
	for bi := 0; bi < B; bi++ {
		for t := 0; t < Lout; t++ {
			for co := 0; co < c.Cout; co++ {
				g := dOut.Data[(bi*Lout+t)*c.Cout+co]
				if g == 0 {
					continue
				}
				c.b.Grad.Data[co] += g
				for k := 0; k < c.K; k++ {
					xrow := xd[(bi*L+t+k)*c.Cin:]
					irow := dIn.Data[(bi*L+t+k)*c.Cin:]
					for ci := 0; ci < c.Cin; ci++ {
						wIdx := (k*c.Cin+ci)*c.Cout + co
						c.w.Grad.Data[wIdx] += g * xrow[ci]
						irow[ci] += g * wd[wIdx]
					}
				}
			}
		}
	}
	return dIn, nil
}

// --- Pooling -------------------------------------------------------------------------------

// GlobalMaxPool1D reduces [B, L, C] -> [B, C] by max over time.
type GlobalMaxPool1D struct {
	arg []int // flat argmax per (b, c)
	L   int
	C   int
	B   int
}

// NewGlobalMaxPool1D creates the pool.
func NewGlobalMaxPool1D() *GlobalMaxPool1D { return &GlobalMaxPool1D{} }

// Name implements Layer.
func (p *GlobalMaxPool1D) Name() string { return "gmaxpool1d" }

// Params implements Layer.
func (p *GlobalMaxPool1D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *GlobalMaxPool1D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 3 {
		return nil, fmt.Errorf("%w: gmaxpool1d got %v", ErrShape, x.Shape)
	}
	B, L, C := x.Dim(0), x.Dim(1), x.Dim(2)
	p.B, p.L, p.C = B, L, C
	p.arg = make([]int, B*C)
	out := tensor.New(B, C)
	for b := 0; b < B; b++ {
		for c := 0; c < C; c++ {
			base := b * L * C
			best, bestT := x.Data[base+c], 0
			for t := 1; t < L; t++ {
				if v := x.Data[base+t*C+c]; v > best {
					best, bestT = v, t
				}
			}
			out.Data[b*C+c] = best
			p.arg[b*C+c] = bestT
		}
	}
	return out, nil
}

// Backward implements Layer.
func (p *GlobalMaxPool1D) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if p.arg == nil {
		return nil, fmt.Errorf("%w: gmaxpool1d", ErrNoForward)
	}
	if dOut.Dims() != 2 || dOut.Dim(0) != p.B || dOut.Dim(1) != p.C {
		return nil, fmt.Errorf("%w: gmaxpool1d backward got %v", ErrShape, dOut.Shape)
	}
	dIn := tensor.New(p.B, p.L, p.C)
	for b := 0; b < p.B; b++ {
		for c := 0; c < p.C; c++ {
			dIn.Set(dOut.At(b, c), b, p.arg[b*p.C+c], c)
		}
	}
	return dIn, nil
}

// MeanPool1D reduces [B, L, C] -> [B, C] by averaging over time.
type MeanPool1D struct {
	B, L, C int
}

// NewMeanPool1D creates the pool.
func NewMeanPool1D() *MeanPool1D { return &MeanPool1D{} }

// Name implements Layer.
func (p *MeanPool1D) Name() string { return "meanpool1d" }

// Params implements Layer.
func (p *MeanPool1D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MeanPool1D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 3 {
		return nil, fmt.Errorf("%w: meanpool1d got %v", ErrShape, x.Shape)
	}
	p.B, p.L, p.C = x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(p.B, p.C)
	for b := 0; b < p.B; b++ {
		for c := 0; c < p.C; c++ {
			base := b * p.L * p.C
			var s float32
			for t := 0; t < p.L; t++ {
				s += x.Data[base+t*p.C+c]
			}
			out.Data[b*p.C+c] = s / float32(p.L)
		}
	}
	return out, nil
}

// Backward implements Layer.
func (p *MeanPool1D) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if p.L == 0 {
		return nil, fmt.Errorf("%w: meanpool1d", ErrNoForward)
	}
	if dOut.Dims() != 2 || dOut.Dim(0) != p.B || dOut.Dim(1) != p.C {
		return nil, fmt.Errorf("%w: meanpool1d backward got %v", ErrShape, dOut.Shape)
	}
	dIn := tensor.New(p.B, p.L, p.C)
	inv := 1 / float32(p.L)
	for b := 0; b < p.B; b++ {
		for c := 0; c < p.C; c++ {
			g := dOut.At(b, c) * inv
			for t := 0; t < p.L; t++ {
				dIn.Set(g, b, t, c)
			}
		}
	}
	return dIn, nil
}

// --- Embedding ----------------------------------------------------------------------------------

// Embedding maps token ids (carried as a float tensor [B, L] of integral
// values) to vectors [B, L, D]. Out-of-range ids map to the padding row 0.
type Embedding struct {
	Vocab, D int
	table    *Param
	ids      []int
	B, L     int
}

// NewEmbedding creates an embedding table.
func NewEmbedding(rng *rand.Rand, vocab, d int) *Embedding {
	return &Embedding{
		Vocab: vocab, D: d,
		table: newParam("embedding", tensor.Randn(rng, 0.1, vocab, d)),
	}
}

// Name implements Layer.
func (e *Embedding) Name() string { return fmt.Sprintf("embedding(%dx%d)", e.Vocab, e.D) }

// Params implements Layer.
func (e *Embedding) Params() []*Param { return []*Param{e.table} }

// Forward implements Layer.
func (e *Embedding) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 2 {
		return nil, fmt.Errorf("%w: embedding got %v", ErrShape, x.Shape)
	}
	e.B, e.L = x.Dim(0), x.Dim(1)
	e.ids = make([]int, e.B*e.L)
	out := tensor.New(e.B, e.L, e.D)
	for i, v := range x.Data {
		id := int(v)
		if id < 0 || id >= e.Vocab {
			id = 0
		}
		e.ids[i] = id
		copy(out.Data[i*e.D:(i+1)*e.D], e.table.Value.Data[id*e.D:(id+1)*e.D])
	}
	return out, nil
}

// Backward implements Layer. Token-id inputs receive no gradient; the
// returned dIn is a zero tensor of the input shape.
func (e *Embedding) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if e.ids == nil {
		return nil, fmt.Errorf("%w: embedding", ErrNoForward)
	}
	if dOut.Dims() != 3 || dOut.Dim(0) != e.B || dOut.Dim(1) != e.L || dOut.Dim(2) != e.D {
		return nil, fmt.Errorf("%w: embedding backward got %v", ErrShape, dOut.Shape)
	}
	for i, id := range e.ids {
		grow := e.table.Grad.Data[id*e.D : (id+1)*e.D]
		drow := dOut.Data[i*e.D : (i+1)*e.D]
		for j := range grow {
			grow[j] += drow[j]
		}
	}
	return tensor.New(e.B, e.L), nil
}

// --- Positional encoding -----------------------------------------------------------------------------

// PositionalEncoding adds fixed sinusoidal position information to
// [B, L, D] inputs (Vaswani et al. layout).
type PositionalEncoding struct {
	MaxLen, D int
	pe        *tensor.Tensor
}

// NewPositionalEncoding precomputes encodings up to maxLen.
func NewPositionalEncoding(maxLen, d int) *PositionalEncoding {
	pe := tensor.New(maxLen, d)
	for pos := 0; pos < maxLen; pos++ {
		for i := 0; i < d; i++ {
			angle := float64(pos) / math.Pow(10000, float64(2*(i/2))/float64(d))
			if i%2 == 0 {
				pe.Set(float32(math.Sin(angle)), pos, i)
			} else {
				pe.Set(float32(math.Cos(angle)), pos, i)
			}
		}
	}
	return &PositionalEncoding{MaxLen: maxLen, D: d, pe: pe}
}

// Name implements Layer.
func (p *PositionalEncoding) Name() string { return "posenc" }

// Params implements Layer.
func (p *PositionalEncoding) Params() []*Param { return nil }

// Forward implements Layer.
func (p *PositionalEncoding) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 3 || x.Dim(2) != p.D || x.Dim(1) > p.MaxLen {
		return nil, fmt.Errorf("%w: posenc got %v (max len %d)", ErrShape, x.Shape, p.MaxLen)
	}
	out := x.Clone()
	B, L, D := x.Dim(0), x.Dim(1), x.Dim(2)
	for b := 0; b < B; b++ {
		for t := 0; t < L; t++ {
			row := out.Data[(b*L+t)*D : (b*L+t+1)*D]
			perow := p.pe.Data[t*D : (t+1)*D]
			for i := range row {
				row[i] += perow[i]
			}
		}
	}
	return out, nil
}

// Backward implements Layer (identity gradient).
func (p *PositionalEncoding) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	return dOut.Clone(), nil
}

// --- LayerNorm ------------------------------------------------------------------------------------------

// LayerNorm normalizes the last axis of [B, L, D] (or [B, D]) inputs.
type LayerNorm struct {
	D           int
	gamma, beta *Param
	x, xhat     *tensor.Tensor
	invStd      []float32
	eps         float32
}

// NewLayerNorm creates a layer norm over dimension d.
func NewLayerNorm(d int) *LayerNorm {
	gamma := tensor.New(d)
	gamma.Fill(1)
	return &LayerNorm{
		D:     d,
		gamma: newParam("ln.gamma", gamma),
		beta:  newParam("ln.beta", tensor.New(d)),
		eps:   1e-5,
	}
}

// Name implements Layer.
func (l *LayerNorm) Name() string { return fmt.Sprintf("layernorm(%d)", l.D) }

// Params implements Layer.
func (l *LayerNorm) Params() []*Param { return []*Param{l.gamma, l.beta} }

// Forward implements Layer.
func (l *LayerNorm) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dim(x.Dims()-1) != l.D {
		return nil, fmt.Errorf("%w: layernorm got %v", ErrShape, x.Shape)
	}
	l.x = x
	rows := x.Len() / l.D
	out := x.Clone()
	l.xhat = tensor.New(x.Shape...)
	l.invStd = make([]float32, rows)
	for r := 0; r < rows; r++ {
		seg := x.Data[r*l.D : (r+1)*l.D]
		var mean float64
		for _, v := range seg {
			mean += float64(v)
		}
		mean /= float64(l.D)
		var varSum float64
		for _, v := range seg {
			d := float64(v) - mean
			varSum += d * d
		}
		invStd := 1 / math.Sqrt(varSum/float64(l.D)+float64(l.eps))
		l.invStd[r] = float32(invStd)
		oseg := out.Data[r*l.D : (r+1)*l.D]
		hseg := l.xhat.Data[r*l.D : (r+1)*l.D]
		for i, v := range seg {
			h := float32((float64(v) - mean) * invStd)
			hseg[i] = h
			oseg[i] = h*l.gamma.Value.Data[i] + l.beta.Value.Data[i]
		}
	}
	return out, nil
}

// Backward implements Layer.
func (l *LayerNorm) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if l.xhat == nil {
		return nil, fmt.Errorf("%w: layernorm", ErrNoForward)
	}
	if !dOut.SameShape(l.x) {
		return nil, fmt.Errorf("%w: layernorm backward got %v", ErrShape, dOut.Shape)
	}
	rows := dOut.Len() / l.D
	dIn := tensor.New(l.x.Shape...)
	for r := 0; r < rows; r++ {
		dseg := dOut.Data[r*l.D : (r+1)*l.D]
		hseg := l.xhat.Data[r*l.D : (r+1)*l.D]
		// Parameter grads.
		for i := 0; i < l.D; i++ {
			l.gamma.Grad.Data[i] += dseg[i] * hseg[i]
			l.beta.Grad.Data[i] += dseg[i]
		}
		// dxhat = dOut * gamma; dIn via the layer-norm backward identity.
		var sumD, sumDH float64
		dxhat := make([]float64, l.D)
		for i := 0; i < l.D; i++ {
			dx := float64(dseg[i]) * float64(l.gamma.Value.Data[i])
			dxhat[i] = dx
			sumD += dx
			sumDH += dx * float64(hseg[i])
		}
		inv := float64(l.invStd[r])
		iseg := dIn.Data[r*l.D : (r+1)*l.D]
		n := float64(l.D)
		for i := 0; i < l.D; i++ {
			iseg[i] = float32(inv * (dxhat[i] - sumD/n - float64(hseg[i])*sumDH/n))
		}
	}
	return dIn, nil
}
