package layers

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ml/tensor"
)

// gradCheck verifies a layer's Backward against central-difference
// numerical gradients of the scalar loss sum(Forward(x) .* R) for a fixed
// random R — both for the input gradient and every parameter gradient.
func gradCheck(t *testing.T, mk func() Layer, inShape []int) {
	t.Helper()
	const (
		eps = 1e-2
		tol = 2e-2
	)
	rng := rand.New(rand.NewPCG(42, 43))
	layer := mk()
	x := tensor.Randn(rng, 1, inShape...)

	out, err := layer.Forward(x.Clone())
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	r := tensor.Randn(rng, 1, out.Shape...)

	loss := func(o *tensor.Tensor) float64 {
		var s float64
		for i := range o.Data {
			s += float64(o.Data[i]) * float64(r.Data[i])
		}
		return s
	}

	// Analytic gradients.
	for _, p := range layer.Params() {
		p.Grad.Zero()
	}
	dIn, err := layer.Backward(r.Clone())
	if err != nil {
		t.Fatalf("backward: %v", err)
	}

	check := func(name string, analytic float64, perturb func(delta float32) float64) {
		t.Helper()
		plus := perturb(eps)
		minus := perturb(-eps)
		numeric := (plus - minus) / (2 * eps)
		scale := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
		if math.Abs(analytic-numeric)/scale > tol {
			t.Errorf("%s: analytic %v vs numeric %v", name, analytic, numeric)
		}
	}

	// Input gradient at a sample of coordinates.
	stride := len(x.Data)/8 + 1
	for i := 0; i < len(x.Data); i += stride {
		i := i
		check("dIn", float64(dIn.Data[i]), func(delta float32) float64 {
			fresh := mk() // re-created layer shares no cached state
			copyParams(t, layer, fresh)
			xp := x.Clone()
			xp.Data[i] += delta
			o, err := fresh.Forward(xp)
			if err != nil {
				t.Fatalf("perturbed forward: %v", err)
			}
			return loss(o)
		})
	}
	// Parameter gradients at a sample of coordinates.
	for pi, p := range layer.Params() {
		stride := len(p.Value.Data)/8 + 1
		for i := 0; i < len(p.Value.Data); i += stride {
			pi, i := pi, i
			check(p.Name, float64(p.Grad.Data[i]), func(delta float32) float64 {
				fresh := mk()
				copyParams(t, layer, fresh)
				fp := fresh.Params()[pi]
				fp.Value.Data[i] += delta
				o, err := fresh.Forward(x.Clone())
				if err != nil {
					t.Fatalf("perturbed forward: %v", err)
				}
				return loss(o)
			})
		}
	}
}

func copyParams(t *testing.T, from, to Layer) {
	t.Helper()
	fp, tp := from.Params(), to.Params()
	if len(fp) != len(tp) {
		t.Fatalf("param count mismatch: %d vs %d", len(fp), len(tp))
	}
	for i := range fp {
		copy(tp[i].Value.Data, fp[i].Value.Data)
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	gradCheck(t, func() Layer { return NewDense(rand.New(rand.NewPCG(1, 1)), 5, 3) }, []int{4, 5})
	_ = rng
}

func TestReLUGradCheck(t *testing.T) {
	gradCheck(t, func() Layer { return NewReLU() }, []int{3, 6})
}

func TestGELUGradCheck(t *testing.T) {
	gradCheck(t, func() Layer { return NewGELU() }, []int{3, 6})
}

func TestConv1DGradCheck(t *testing.T) {
	gradCheck(t, func() Layer { return NewConv1D(rand.New(rand.NewPCG(2, 2)), 3, 2, 4) }, []int{2, 7, 2})
}

func TestConv2DGradCheck(t *testing.T) {
	gradCheck(t, func() Layer { return NewConv2D(rand.New(rand.NewPCG(3, 3)), 3, 1, 2) }, []int{1, 6, 6, 1})
}

func TestMaxPool2DGradCheck(t *testing.T) {
	gradCheck(t, func() Layer { return NewMaxPool2D(2) }, []int{1, 4, 4, 2})
}

func TestGlobalMaxPoolGradCheck(t *testing.T) {
	gradCheck(t, func() Layer { return NewGlobalMaxPool1D() }, []int{2, 5, 3})
}

func TestMeanPoolGradCheck(t *testing.T) {
	gradCheck(t, func() Layer { return NewMeanPool1D() }, []int{2, 5, 3})
}

func TestLayerNormGradCheck(t *testing.T) {
	gradCheck(t, func() Layer { return NewLayerNorm(6) }, []int{2, 3, 6})
}

func TestMHSAGradCheck(t *testing.T) {
	gradCheck(t, func() Layer {
		m, err := NewMultiHeadSelfAttention(rand.New(rand.NewPCG(4, 4)), 8, 2)
		if err != nil {
			t.Fatalf("NewMultiHeadSelfAttention: %v", err)
		}
		return m
	}, []int{1, 4, 8})
}

func TestSequentialGradCheck(t *testing.T) {
	gradCheck(t, func() Layer {
		rng := rand.New(rand.NewPCG(5, 5))
		return NewSequential("mlp",
			NewDense(rng, 6, 8),
			NewReLU(),
			NewDense(rng, 8, 2),
		)
	}, []int{3, 6})
}

func TestEmbeddingForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	emb := NewEmbedding(rng, 10, 4)
	ids, _ := tensor.FromSlice([]float32{1, 2, 2, 0, 9, 100}, 2, 3) // 100 -> padded to 0
	out, err := emb.Forward(ids)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Dims() != 3 || out.Dim(2) != 4 {
		t.Fatalf("out shape %v", out.Shape)
	}
	// Rows with the same id must embed identically.
	for j := 0; j < 4; j++ {
		if out.At(0, 1, j) != out.At(0, 2, j) {
			t.Error("same token embedded differently")
		}
	}
	// Backward accumulates per row; token 2 used twice gets double grad.
	g := tensor.New(2, 3, 4)
	g.Fill(1)
	if _, err := emb.Backward(g); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	if got := emb.table.Grad.At(2, 0); got != 2 {
		t.Errorf("token-2 grad = %v, want 2", got)
	}
	if got := emb.table.Grad.At(5, 0); got != 0 {
		t.Errorf("unused token grad = %v, want 0", got)
	}
}

func TestPositionalEncodingAddsAndPassesGrad(t *testing.T) {
	pe := NewPositionalEncoding(16, 8)
	x := tensor.New(2, 4, 8)
	out, err := pe.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	// Position 0 dim 1 is cos(0)=1.
	if got := out.At(0, 0, 1); math.Abs(float64(got)-1) > 1e-6 {
		t.Errorf("pe[0,1] = %v, want 1", got)
	}
	// Different positions must differ.
	same := true
	for j := 0; j < 8; j++ {
		if out.At(0, 0, j) != out.At(0, 1, j) {
			same = false
			break
		}
	}
	if same {
		t.Error("positions 0 and 1 encoded identically")
	}
	g := tensor.New(2, 4, 8)
	g.Fill(3)
	dIn, err := pe.Backward(g)
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	if dIn.At(1, 2, 3) != 3 {
		t.Error("posenc gradient not identity")
	}
	// Too-long input rejected.
	if _, err := pe.Forward(tensor.New(1, 17, 8)); !errors.Is(err, ErrShape) {
		t.Errorf("over-length input = %v", err)
	}
}

func TestLayerShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	d := NewDense(rng, 4, 2)
	if _, err := d.Forward(tensor.New(3, 5)); !errors.Is(err, ErrShape) {
		t.Errorf("dense bad input = %v", err)
	}
	if _, err := d.Backward(tensor.New(3, 2)); !errors.Is(err, ErrNoForward) {
		t.Errorf("dense backward-first = %v", err)
	}
	c := NewConv1D(rng, 3, 2, 2)
	if _, err := c.Forward(tensor.New(1, 2, 2)); !errors.Is(err, ErrShape) {
		t.Errorf("conv1d short input = %v", err)
	}
	if _, err := NewMultiHeadSelfAttention(rng, 7, 2); !errors.Is(err, ErrShape) {
		t.Error("mhsa accepted d not divisible by heads")
	}
	mp := NewMaxPool2D(2)
	if _, err := mp.Forward(tensor.New(1, 5, 4, 1)); !errors.Is(err, ErrShape) {
		t.Errorf("maxpool2d odd input = %v", err)
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	seq := NewSequential("m",
		NewDense(rng, 10, 5), // 10*5 + 5 = 55
		NewReLU(),
		NewDense(rng, 5, 2), // 5*2 + 2 = 12
	)
	if got := ParamCount([]Layer{seq}); got != 67 {
		t.Errorf("ParamCount = %d, want 67", got)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4)
	out, err := f.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Dims() != 2 || out.Dim(1) != 12 {
		t.Errorf("flatten shape = %v", out.Shape)
	}
	back, err := f.Backward(out)
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	if back.Dims() != 3 || back.Dim(2) != 4 {
		t.Errorf("unflatten shape = %v", back.Shape)
	}
}

func TestSequentialPropagatesLayerErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	seq := NewSequential("bad", NewDense(rng, 4, 4), NewDense(rng, 5, 2))
	if _, err := seq.Forward(tensor.New(1, 4)); !errors.Is(err, ErrShape) {
		t.Errorf("sequential mismatched chain = %v", err)
	}
	if got := len(seq.Layers()); got != 2 {
		t.Errorf("Layers() = %d", got)
	}
}
