package layers

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ml/tensor"
)

// MultiHeadSelfAttention is the transformer attention block over [B, L, D]:
// per head h, A = softmax(Q K^T / sqrt(dk)), output = concat(A V) Wo.
type MultiHeadSelfAttention struct {
	D, Heads, dk   int
	wq, wk, wv, wo *Param

	// Cached forward state, per batch element.
	x       *tensor.Tensor
	q, k, v *tensor.Tensor   // [B*L, D] projections
	attn    []*tensor.Tensor // per (b, h): [L, L] softmax matrices
	concat  *tensor.Tensor   // [B*L, D] pre-Wo
}

// NewMultiHeadSelfAttention creates an attention block; d must divide by
// heads.
func NewMultiHeadSelfAttention(rng *rand.Rand, d, heads int) (*MultiHeadSelfAttention, error) {
	if heads <= 0 || d%heads != 0 {
		return nil, fmt.Errorf("%w: d=%d heads=%d", ErrShape, d, heads)
	}
	std := math.Sqrt(2.0 / float64(2*d))
	return &MultiHeadSelfAttention{
		D: d, Heads: heads, dk: d / heads,
		wq: newParam("mhsa.wq", tensor.Randn(rng, std, d, d)),
		wk: newParam("mhsa.wk", tensor.Randn(rng, std, d, d)),
		wv: newParam("mhsa.wv", tensor.Randn(rng, std, d, d)),
		wo: newParam("mhsa.wo", tensor.Randn(rng, std, d, d)),
	}, nil
}

// Name implements Layer.
func (m *MultiHeadSelfAttention) Name() string {
	return fmt.Sprintf("mhsa(d%d,h%d)", m.D, m.Heads)
}

// Params implements Layer.
func (m *MultiHeadSelfAttention) Params() []*Param {
	return []*Param{m.wq, m.wk, m.wv, m.wo}
}

// Forward implements Layer.
func (m *MultiHeadSelfAttention) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 3 || x.Dim(2) != m.D {
		return nil, fmt.Errorf("%w: %s got %v", ErrShape, m.Name(), x.Shape)
	}
	B, L, D := x.Dim(0), x.Dim(1), x.Dim(2)
	m.x = x
	flat, err := x.Reshape(B*L, D)
	if err != nil {
		return nil, err
	}
	if m.q, err = tensor.MatMul(flat, m.wq.Value); err != nil {
		return nil, err
	}
	if m.k, err = tensor.MatMul(flat, m.wk.Value); err != nil {
		return nil, err
	}
	if m.v, err = tensor.MatMul(flat, m.wv.Value); err != nil {
		return nil, err
	}
	m.attn = make([]*tensor.Tensor, B*m.Heads)
	m.concat = tensor.New(B*L, D)
	scale := float32(1 / math.Sqrt(float64(m.dk)))
	for b := 0; b < B; b++ {
		for h := 0; h < m.Heads; h++ {
			// Scores S = Qh Kh^T * scale, Qh rows are q[b*L+t][h*dk:(h+1)*dk].
			s := tensor.New(L, L)
			for i := 0; i < L; i++ {
				qi := m.q.Data[(b*L+i)*D+h*m.dk : (b*L+i)*D+(h+1)*m.dk]
				for j := 0; j < L; j++ {
					kj := m.k.Data[(b*L+j)*D+h*m.dk : (b*L+j)*D+(h+1)*m.dk]
					var acc float32
					for p := 0; p < m.dk; p++ {
						acc += qi[p] * kj[p]
					}
					s.Set(acc*scale, i, j)
				}
			}
			a, err := tensor.SoftmaxRows(s)
			if err != nil {
				return nil, err
			}
			m.attn[b*m.Heads+h] = a
			// Oh = A Vh into the concat buffer.
			for i := 0; i < L; i++ {
				orow := m.concat.Data[(b*L+i)*D+h*m.dk : (b*L+i)*D+(h+1)*m.dk]
				for j := 0; j < L; j++ {
					av := a.At(i, j)
					if av == 0 {
						continue
					}
					vj := m.v.Data[(b*L+j)*D+h*m.dk : (b*L+j)*D+(h+1)*m.dk]
					for p := 0; p < m.dk; p++ {
						orow[p] += av * vj[p]
					}
				}
			}
		}
	}
	out2d, err := tensor.MatMul(m.concat, m.wo.Value)
	if err != nil {
		return nil, err
	}
	return out2d.Reshape(B, L, D)
}

// Backward implements Layer.
func (m *MultiHeadSelfAttention) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if m.x == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoForward, m.Name())
	}
	B, L, D := m.x.Dim(0), m.x.Dim(1), m.x.Dim(2)
	if dOut.Dims() != 3 || dOut.Dim(0) != B || dOut.Dim(1) != L || dOut.Dim(2) != D {
		return nil, fmt.Errorf("%w: %s backward got %v", ErrShape, m.Name(), dOut.Shape)
	}
	dOut2d, err := dOut.Reshape(B*L, D)
	if err != nil {
		return nil, err
	}
	// Out = concat Wo.
	concatT, err := tensor.Transpose(m.concat)
	if err != nil {
		return nil, err
	}
	dWo, err := tensor.MatMul(concatT, dOut2d)
	if err != nil {
		return nil, err
	}
	if err := m.wo.Grad.AddInPlace(dWo); err != nil {
		return nil, err
	}
	woT, err := tensor.Transpose(m.wo.Value)
	if err != nil {
		return nil, err
	}
	dConcat, err := tensor.MatMul(dOut2d, woT)
	if err != nil {
		return nil, err
	}

	dQ := tensor.New(B*L, D)
	dK := tensor.New(B*L, D)
	dV := tensor.New(B*L, D)
	scale := float32(1 / math.Sqrt(float64(m.dk)))
	for b := 0; b < B; b++ {
		for h := 0; h < m.Heads; h++ {
			a := m.attn[b*m.Heads+h]
			// dA = dOh Vh^T ; dVh = A^T dOh
			dA := tensor.New(L, L)
			for i := 0; i < L; i++ {
				dohi := dConcat.Data[(b*L+i)*D+h*m.dk : (b*L+i)*D+(h+1)*m.dk]
				for j := 0; j < L; j++ {
					vj := m.v.Data[(b*L+j)*D+h*m.dk : (b*L+j)*D+(h+1)*m.dk]
					var acc float32
					for p := 0; p < m.dk; p++ {
						acc += dohi[p] * vj[p]
					}
					dA.Set(acc, i, j)
					// dVh[j] += A[i,j] * dOh[i]
					av := a.At(i, j)
					if av != 0 {
						dvj := dV.Data[(b*L+j)*D+h*m.dk : (b*L+j)*D+(h+1)*m.dk]
						for p := 0; p < m.dk; p++ {
							dvj[p] += av * dohi[p]
						}
					}
				}
			}
			// Softmax backward: dS_ij = A_ij * (dA_ij - sum_k dA_ik A_ik).
			dS := tensor.New(L, L)
			for i := 0; i < L; i++ {
				var dot float64
				for j := 0; j < L; j++ {
					dot += float64(dA.At(i, j)) * float64(a.At(i, j))
				}
				for j := 0; j < L; j++ {
					dS.Set(a.At(i, j)*(dA.At(i, j)-float32(dot)), i, j)
				}
			}
			// dQh = dS Kh * scale ; dKh = dS^T Qh * scale.
			for i := 0; i < L; i++ {
				dqi := dQ.Data[(b*L+i)*D+h*m.dk : (b*L+i)*D+(h+1)*m.dk]
				for j := 0; j < L; j++ {
					g := dS.At(i, j) * scale
					if g == 0 {
						continue
					}
					kj := m.k.Data[(b*L+j)*D+h*m.dk : (b*L+j)*D+(h+1)*m.dk]
					for p := 0; p < m.dk; p++ {
						dqi[p] += g * kj[p]
					}
					dkj := dK.Data[(b*L+j)*D+h*m.dk : (b*L+j)*D+(h+1)*m.dk]
					qi := m.q.Data[(b*L+i)*D+h*m.dk : (b*L+i)*D+(h+1)*m.dk]
					for p := 0; p < m.dk; p++ {
						dkj[p] += g * qi[p]
					}
				}
			}
		}
	}
	// Project back through Wq/Wk/Wv.
	flat, err := m.x.Reshape(B*L, D)
	if err != nil {
		return nil, err
	}
	flatT, err := tensor.Transpose(flat)
	if err != nil {
		return nil, err
	}
	dIn := tensor.New(B*L, D)
	for _, step := range []struct {
		w  *Param
		dp *tensor.Tensor
	}{{m.wq, dQ}, {m.wk, dK}, {m.wv, dV}} {
		dw, err := tensor.MatMul(flatT, step.dp)
		if err != nil {
			return nil, err
		}
		if err := step.w.Grad.AddInPlace(dw); err != nil {
			return nil, err
		}
		wT, err := tensor.Transpose(step.w.Value)
		if err != nil {
			return nil, err
		}
		dx, err := tensor.MatMul(step.dp, wT)
		if err != nil {
			return nil, err
		}
		if err := dIn.AddInPlace(dx); err != nil {
			return nil, err
		}
	}
	return dIn.Reshape(B, L, D)
}
