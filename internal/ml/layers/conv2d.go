package layers

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ml/tensor"
)

// Conv2D is a 2-D convolution for the camera path: input [B, H, W, Cin] ->
// output [B, H-K+1, W-K+1, Cout] (valid padding, stride 1, square kernel).
// Weight layout is [K, K, Cin, Cout].
type Conv2D struct {
	K, Cin, Cout int
	w, b         *Param
	x            *tensor.Tensor
}

// NewConv2D creates a 2-D convolution with He-scaled weights.
func NewConv2D(rng *rand.Rand, k, cin, cout int) *Conv2D {
	std := math.Sqrt(2.0 / float64(k*k*cin))
	return &Conv2D{
		K: k, Cin: cin, Cout: cout,
		w: newParam("conv2d.w", tensor.Randn(rng, std, k, k, cin, cout)),
		b: newParam("conv2d.b", tensor.New(cout)),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return fmt.Sprintf("conv2d(k%d,%d->%d)", c.K, c.Cin, c.Cout) }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 4 || x.Dim(3) != c.Cin || x.Dim(1) < c.K || x.Dim(2) < c.K {
		return nil, fmt.Errorf("%w: %s got %v", ErrShape, c.Name(), x.Shape)
	}
	c.x = x
	B, H, W := x.Dim(0), x.Dim(1), x.Dim(2)
	Ho, Wo := H-c.K+1, W-c.K+1
	out := tensor.New(B, Ho, Wo, c.Cout)
	// Flat row-major indexing: x is [B,H,W,Cin], w is [K,K,Cin,Cout].
	// Accumulation order matches the historical At/Set loops exactly.
	xd, wd, bd, od := x.Data, c.w.Value.Data, c.b.Value.Data, out.Data
	for b := 0; b < B; b++ {
		for i := 0; i < Ho; i++ {
			for j := 0; j < Wo; j++ {
				for co := 0; co < c.Cout; co++ {
					acc := bd[co]
					for ki := 0; ki < c.K; ki++ {
						for kj := 0; kj < c.K; kj++ {
							xrow := xd[((b*H+i+ki)*W+j+kj)*c.Cin:]
							wrow := wd[(ki*c.K+kj)*c.Cin*c.Cout+co:]
							for ci := 0; ci < c.Cin; ci++ {
								acc += xrow[ci] * wrow[ci*c.Cout]
							}
						}
					}
					od[((b*Ho+i)*Wo+j)*c.Cout+co] = acc
				}
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if c.x == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoForward, c.Name())
	}
	x := c.x
	B, H, W := x.Dim(0), x.Dim(1), x.Dim(2)
	Ho, Wo := H-c.K+1, W-c.K+1
	if dOut.Dims() != 4 || dOut.Dim(0) != B || dOut.Dim(1) != Ho || dOut.Dim(2) != Wo || dOut.Dim(3) != c.Cout {
		return nil, fmt.Errorf("%w: %s backward got %v", ErrShape, c.Name(), dOut.Shape)
	}
	dIn := tensor.New(B, H, W, c.Cin)
	for b := 0; b < B; b++ {
		for i := 0; i < Ho; i++ {
			for j := 0; j < Wo; j++ {
				for co := 0; co < c.Cout; co++ {
					g := dOut.Data[((b*Ho+i)*Wo+j)*c.Cout+co]
					if g == 0 {
						continue
					}
					c.b.Grad.Data[co] += g
					for ki := 0; ki < c.K; ki++ {
						for kj := 0; kj < c.K; kj++ {
							xrow := x.Data[((b*H+i+ki)*W+j+kj)*c.Cin:]
							irow := dIn.Data[((b*H+i+ki)*W+j+kj)*c.Cin:]
							for ci := 0; ci < c.Cin; ci++ {
								wIdx := ((ki*c.K+kj)*c.Cin+ci)*c.Cout + co
								c.w.Grad.Data[wIdx] += g * xrow[ci]
								irow[ci] += g * c.w.Value.Data[wIdx]
							}
						}
					}
				}
			}
		}
	}
	return dIn, nil
}

// MaxPool2D is a non-overlapping 2-D max pool with a square window:
// [B, H, W, C] -> [B, H/P, W/P, C]. H and W must divide by P.
type MaxPool2D struct {
	P    int
	arg  []int
	dims [4]int
}

// NewMaxPool2D creates a pool with window p.
func NewMaxPool2D(p int) *MaxPool2D { return &MaxPool2D{P: p} }

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("maxpool2d(%d)", m.P) }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 4 || x.Dim(1)%m.P != 0 || x.Dim(2)%m.P != 0 {
		return nil, fmt.Errorf("%w: %s got %v", ErrShape, m.Name(), x.Shape)
	}
	B, H, W, C := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	m.dims = [4]int{B, H, W, C}
	Ho, Wo := H/m.P, W/m.P
	out := tensor.New(B, Ho, Wo, C)
	m.arg = make([]int, B*Ho*Wo*C)
	for b := 0; b < B; b++ {
		for i := 0; i < Ho; i++ {
			for j := 0; j < Wo; j++ {
				for c := 0; c < C; c++ {
					best := float32(math.Inf(-1))
					bestIdx := 0
					for pi := 0; pi < m.P; pi++ {
						for pj := 0; pj < m.P; pj++ {
							idx := ((b*H+i*m.P+pi)*W+j*m.P+pj)*C + c
							if v := x.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					out.Set(best, b, i, j, c)
					m.arg[((b*Ho+i)*Wo+j)*C+c] = bestIdx
				}
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if m.arg == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoForward, m.Name())
	}
	B, H, W, C := m.dims[0], m.dims[1], m.dims[2], m.dims[3]
	Ho, Wo := H/m.P, W/m.P
	if dOut.Dims() != 4 || dOut.Dim(0) != B || dOut.Dim(1) != Ho || dOut.Dim(2) != Wo || dOut.Dim(3) != C {
		return nil, fmt.Errorf("%w: %s backward got %v", ErrShape, m.Name(), dOut.Shape)
	}
	dIn := tensor.New(B, H, W, C)
	for i, srcIdx := range m.arg {
		dIn.Data[srcIdx] += dOut.Data[i]
	}
	return dIn, nil
}

// Flatten reshapes [B, ...] -> [B, prod(rest)].
type Flatten struct {
	inShape []int
}

// NewFlatten creates a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() < 2 {
		return nil, fmt.Errorf("%w: flatten got %v", ErrShape, x.Shape)
	}
	f.inShape = append([]int(nil), x.Shape...)
	rest := 1
	for _, d := range x.Shape[1:] {
		rest *= d
	}
	return x.Reshape(x.Dim(0), rest)
}

// Backward implements Layer.
func (f *Flatten) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	if f.inShape == nil {
		return nil, fmt.Errorf("%w: flatten", ErrNoForward)
	}
	return dOut.Reshape(f.inShape...)
}

// Sequential chains layers.
type Sequential struct {
	label  string
	layers []Layer
}

// NewSequential creates a named chain.
func NewSequential(label string, ls ...Layer) *Sequential {
	return &Sequential{label: label, layers: ls}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.label }

// Layers returns the chain (for introspection).
func (s *Sequential) Layers() []Layer { return s.layers }

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for _, l := range s.layers {
		if x, err = l.Forward(x); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", s.label, l.Name(), err)
		}
	}
	return x, nil
}

// Backward implements Layer.
func (s *Sequential) Backward(dOut *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for i := len(s.layers) - 1; i >= 0; i-- {
		if dOut, err = s.layers[i].Backward(dOut); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", s.label, s.layers[i].Name(), err)
		}
	}
	return dOut, nil
}
