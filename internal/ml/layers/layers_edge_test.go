package layers

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ml/tensor"
)

func TestBackwardShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))

	d := NewDense(rng, 3, 2)
	if _, err := d.Forward(tensor.New(2, 3)); err != nil {
		t.Fatalf("dense forward: %v", err)
	}
	if _, err := d.Backward(tensor.New(2, 5)); !errors.Is(err, ErrShape) {
		t.Errorf("dense bad backward = %v", err)
	}

	c := NewConv1D(rng, 3, 2, 2)
	if _, err := c.Forward(tensor.New(1, 5, 2)); err != nil {
		t.Fatalf("conv1d forward: %v", err)
	}
	if _, err := c.Backward(tensor.New(1, 9, 2)); !errors.Is(err, ErrShape) {
		t.Errorf("conv1d bad backward = %v", err)
	}
	if _, err := NewConv2D(rng, 3, 1, 1).Backward(tensor.New(1, 1, 1, 1)); !errors.Is(err, ErrNoForward) {
		t.Errorf("conv2d backward-first = %v", err)
	}

	ln := NewLayerNorm(4)
	if _, err := ln.Forward(tensor.New(2, 4)); err != nil {
		t.Fatalf("ln forward: %v", err)
	}
	if _, err := ln.Backward(tensor.New(2, 5)); !errors.Is(err, ErrShape) {
		t.Errorf("ln bad backward = %v", err)
	}
	if _, err := NewLayerNorm(5).Forward(tensor.New(2, 4)); !errors.Is(err, ErrShape) {
		t.Errorf("ln bad forward = %v", err)
	}

	m, err := NewMultiHeadSelfAttention(rng, 4, 2)
	if err != nil {
		t.Fatalf("mhsa: %v", err)
	}
	if _, err := m.Backward(tensor.New(1, 2, 4)); !errors.Is(err, ErrNoForward) {
		t.Errorf("mhsa backward-first = %v", err)
	}
	if _, err := m.Forward(tensor.New(1, 2, 4)); err != nil {
		t.Fatalf("mhsa forward: %v", err)
	}
	if _, err := m.Backward(tensor.New(1, 3, 4)); !errors.Is(err, ErrShape) {
		t.Errorf("mhsa bad backward = %v", err)
	}

	e := NewEmbedding(rng, 5, 3)
	if _, err := e.Backward(tensor.New(1, 2, 3)); !errors.Is(err, ErrNoForward) {
		t.Errorf("embedding backward-first = %v", err)
	}
	if _, err := e.Forward(tensor.New(1, 2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("embedding 3d input = %v", err)
	}

	p := NewGlobalMaxPool1D()
	if _, err := p.Backward(tensor.New(1, 2)); !errors.Is(err, ErrNoForward) {
		t.Errorf("pool backward-first = %v", err)
	}
	if _, err := p.Forward(tensor.New(2, 2)); !errors.Is(err, ErrShape) {
		t.Errorf("pool 2d input = %v", err)
	}

	mp := NewMeanPool1D()
	if _, err := mp.Backward(tensor.New(1, 2)); !errors.Is(err, ErrNoForward) {
		t.Errorf("meanpool backward-first = %v", err)
	}

	f := NewFlatten()
	if _, err := f.Backward(tensor.New(2, 2)); !errors.Is(err, ErrNoForward) {
		t.Errorf("flatten backward-first = %v", err)
	}
	if _, err := f.Forward(tensor.New(3)); !errors.Is(err, ErrShape) {
		t.Errorf("flatten 1d input = %v", err)
	}

	r := NewReLU()
	if _, err := r.Backward(tensor.New(3)); !errors.Is(err, ErrNoForward) {
		t.Errorf("relu backward-first = %v", err)
	}
	g := NewGELU()
	if _, err := g.Backward(tensor.New(3)); !errors.Is(err, ErrNoForward) {
		t.Errorf("gelu backward-first = %v", err)
	}
}

func TestGELUKnownValues(t *testing.T) {
	// GELU(0) = 0; GELU(x) -> x for large x; GELU(-large) -> 0.
	if v := geluFwd(0); v != 0 {
		t.Errorf("gelu(0) = %v", v)
	}
	if v := geluFwd(10); math.Abs(v-10) > 1e-3 {
		t.Errorf("gelu(10) = %v", v)
	}
	if v := geluFwd(-10); math.Abs(v) > 1e-3 {
		t.Errorf("gelu(-10) = %v", v)
	}
	// Standard reference point: gelu(1) ≈ 0.8412.
	if v := geluFwd(1); math.Abs(v-0.8412) > 1e-3 {
		t.Errorf("gelu(1) = %v", v)
	}
}

func TestLayerNormOutputStatistics(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	ln := NewLayerNorm(64)
	x := tensor.Randn(rng, 3, 4, 64)
	// Shift the input mean to verify normalization removes it.
	for i := range x.Data {
		x.Data[i] += 7
	}
	out, err := ln.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	for r := 0; r < 4; r++ {
		seg := out.Data[r*64 : (r+1)*64]
		var mean, variance float64
		for _, v := range seg {
			mean += float64(v)
		}
		mean /= 64
		for _, v := range seg {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= 64
		if math.Abs(mean) > 1e-4 {
			t.Errorf("row %d mean = %v, want ~0", r, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Errorf("row %d variance = %v, want ~1", r, variance)
		}
	}
}

func TestAttentionIsPermutationSensitiveWithPosenc(t *testing.T) {
	// With positional encoding, swapping two tokens must change the
	// pooled representation (the transformer can use order).
	rng := rand.New(rand.NewPCG(6, 6))
	emb := NewEmbedding(rng, 10, 8)
	pe := NewPositionalEncoding(16, 8)
	mhsa, err := NewMultiHeadSelfAttention(rng, 8, 2)
	if err != nil {
		t.Fatalf("mhsa: %v", err)
	}
	pool := NewMeanPool1D()
	runSeq := func(ids []float32) []float32 {
		x, err := tensor.FromSlice(ids, 1, len(ids))
		if err != nil {
			t.Fatalf("FromSlice: %v", err)
		}
		h, err := emb.Forward(x)
		if err != nil {
			t.Fatalf("emb: %v", err)
		}
		if h, err = pe.Forward(h); err != nil {
			t.Fatalf("pe: %v", err)
		}
		if h, err = mhsa.Forward(h); err != nil {
			t.Fatalf("mhsa: %v", err)
		}
		if h, err = pool.Forward(h); err != nil {
			t.Fatalf("pool: %v", err)
		}
		return append([]float32(nil), h.Data...)
	}
	a := runSeq([]float32{2, 3, 4, 5})
	b := runSeq([]float32{5, 3, 4, 2})
	same := true
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-6 {
			same = false
			break
		}
	}
	if same {
		t.Error("token order had no effect despite positional encoding")
	}
}

func TestOptimizersHandleFreshParams(t *testing.T) {
	// Both optimizers must lazily initialize state for unseen params.
	rng := rand.New(rand.NewPCG(7, 7))
	d := NewDense(rng, 2, 2)
	for _, p := range d.Params() {
		p.Grad.Fill(1)
	}
	before := d.Params()[0].Value.Clone()
	sgdStep(d)
	after := d.Params()[0].Value
	changed := false
	for i := range after.Data {
		if after.Data[i] != before.Data[i] {
			changed = true
		}
	}
	if !changed {
		t.Error("sgd step changed nothing")
	}
}

// sgdStep applies a tiny hand-rolled update to confirm Param plumbing is
// usable outside the train package.
func sgdStep(l Layer) {
	for _, p := range l.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] -= 0.1 * p.Grad.Data[i]
		}
		p.Grad.Zero()
	}
}
