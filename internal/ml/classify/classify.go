// Package classify builds the paper's §IV.4 sensitive-content classifiers:
// a CNN, a Transformer encoder, and the hybrid CNN+Transformer model, all
// operating on token sequences produced by the in-TEE transcriber, plus a
// small CNN for the camera path. Each model reports its parameter count
// and memory footprint so the TEE-fit experiment can check it against the
// secure-RAM budget (§V: "TrustZone provides relatively small memory
// resources").
package classify

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ml/layers"
	"repro/internal/ml/tensor"
)

// Errors returned by the package.
var (
	// ErrBadArch is returned for unknown architectures.
	ErrBadArch = errors.New("classify: unknown architecture")
	// ErrBadWeights is returned when deserializing incompatible weights.
	ErrBadWeights = errors.New("classify: incompatible weights")
)

// Arch selects a classifier architecture.
type Arch int

const (
	// ArchCNN is the convolutional text classifier.
	ArchCNN Arch = iota + 1
	// ArchTransformer is the self-attention text classifier.
	ArchTransformer
	// ArchHybrid uses a CNN feature extractor under a transformer
	// classifier, the paper's combined option.
	ArchHybrid
)

// String returns the architecture name.
func (a Arch) String() string {
	switch a {
	case ArchCNN:
		return "cnn"
	case ArchTransformer:
		return "transformer"
	case ArchHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("arch(%d)", int(a))
	}
}

// ParseArch converts a name to an Arch.
func ParseArch(s string) (Arch, error) {
	switch s {
	case "cnn":
		return ArchCNN, nil
	case "transformer":
		return ArchTransformer, nil
	case "hybrid":
		return ArchHybrid, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrBadArch, s)
	}
}

// Classifier is a binary sensitive/benign classifier over fixed-shape
// inputs (padded token sequences for text, normalized pixels for images).
type Classifier struct {
	arch    Arch
	inShape []int // per-sample feature shape
	model   *layers.Sequential
	seqLen  int // text models: tokens per input
	isText  bool
}

// NewText builds a text classifier of the given architecture over a
// vocabulary of vocab tokens and sequences padded to seqLen.
func NewText(arch Arch, rng *rand.Rand, vocab, seqLen int) (*Classifier, error) {
	const d = 16
	var model *layers.Sequential
	switch arch {
	case ArchCNN:
		model = layers.NewSequential("cnn",
			layers.NewEmbedding(rng, vocab, d),
			layers.NewConv1D(rng, 3, d, 32),
			layers.NewReLU(),
			layers.NewGlobalMaxPool1D(),
			layers.NewDense(rng, 32, 2),
		)
	case ArchTransformer:
		mhsa, err := layers.NewMultiHeadSelfAttention(rng, d, 2)
		if err != nil {
			return nil, err
		}
		model = layers.NewSequential("transformer",
			layers.NewEmbedding(rng, vocab, d),
			layers.NewPositionalEncoding(seqLen, d),
			mhsa,
			layers.NewLayerNorm(d),
			layers.NewGELU(),
			layers.NewMeanPool1D(),
			layers.NewDense(rng, d, 2),
		)
	case ArchHybrid:
		mhsa, err := layers.NewMultiHeadSelfAttention(rng, d, 2)
		if err != nil {
			return nil, err
		}
		model = layers.NewSequential("hybrid",
			layers.NewEmbedding(rng, vocab, d),
			layers.NewConv1D(rng, 3, d, d), // CNN feature extractor
			layers.NewReLU(),
			layers.NewPositionalEncoding(seqLen, d),
			mhsa, // transformer classifier head
			layers.NewLayerNorm(d),
			layers.NewMeanPool1D(),
			layers.NewDense(rng, d, 2),
		)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadArch, int(arch))
	}
	return &Classifier{
		arch:    arch,
		inShape: []int{seqLen},
		model:   model,
		seqLen:  seqLen,
		isText:  true,
	}, nil
}

// NewImage builds the camera-path classifier for h-by-w grayscale frames.
func NewImage(rng *rand.Rand, h, w int) (*Classifier, error) {
	if h < 4 || w < 4 || (h-2)%2 != 0 || (w-2)%2 != 0 {
		return nil, fmt.Errorf("%w: image %dx%d (need conv+pool-compatible dims)", ErrBadArch, h, w)
	}
	flat := (h - 2) / 2 * ((w - 2) / 2) * 4
	model := layers.NewSequential("imagecnn",
		layers.NewConv2D(rng, 3, 1, 4),
		layers.NewReLU(),
		layers.NewMaxPool2D(2),
		layers.NewFlatten(),
		layers.NewDense(rng, flat, 2),
	)
	return &Classifier{
		arch:    ArchCNN,
		inShape: []int{h, w, 1},
		model:   model,
	}, nil
}

// Arch returns the classifier architecture.
func (c *Classifier) Arch() Arch { return c.arch }

// Model exposes the underlying layer stack (for the trainer).
func (c *Classifier) Model() *layers.Sequential { return c.model }

// InputShape returns the per-sample feature shape.
func (c *Classifier) InputShape() []int { return append([]int(nil), c.inShape...) }

// FeatureLen returns the flat feature length of one sample.
func (c *Classifier) FeatureLen() int {
	n := 1
	for _, d := range c.inShape {
		n *= d
	}
	return n
}

// TokensToFeatures pads/truncates a token-id sequence to the model's
// input length (text models only).
func (c *Classifier) TokensToFeatures(ids []int) []float32 {
	out := make([]float32, c.seqLen)
	for i := 0; i < c.seqLen && i < len(ids); i++ {
		out[i] = float32(ids[i])
	}
	return out
}

// Predict classifies one sample; class 1 means "sensitive".
func (c *Classifier) Predict(features []float32) (int, error) {
	classes, err := c.PredictBatch([][]float32{features})
	if err != nil {
		return 0, err
	}
	return classes[0], nil
}

// PredictBatch classifies a batch of samples.
func (c *Classifier) PredictBatch(batch [][]float32) ([]int, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	featLen := c.FeatureLen()
	x := tensor.New(append([]int{len(batch)}, c.inShape...)...)
	for i, f := range batch {
		if len(f) != featLen {
			return nil, fmt.Errorf("%w: sample %d has %d features, want %d", ErrBadWeights, i, len(f), featLen)
		}
		copy(x.Data[i*featLen:(i+1)*featLen], f)
	}
	logits, err := c.model.Forward(x)
	if err != nil {
		return nil, err
	}
	return tensor.ArgMaxRows(logits)
}

// ParamCount returns the number of trainable parameters.
func (c *Classifier) ParamCount() int {
	return layers.ParamCount([]layers.Layer{c.model})
}

// MemoryBytes estimates the in-TEE resident footprint: float32 weights
// plus a 25% activation/workspace overhead, the accounting the TEE-fit
// experiment checks against the secure heap budget.
func (c *Classifier) MemoryBytes() int {
	weights := c.ParamCount() * 4
	return weights + weights/4
}

// EstimateMACs approximates multiply-accumulate operations for one
// inference, used by the cost model to charge TEE cycles.
func (c *Classifier) EstimateMACs() int {
	// Two MACs per parameter per input position is a standard first-order
	// estimate for the small sequence lengths used here.
	return 2 * c.ParamCount()
}

// FitsIn reports whether the model fits a secure-memory budget.
func (c *Classifier) FitsIn(budgetBytes int) bool {
	return c.MemoryBytes() <= budgetBytes
}

// --- weight (de)serialization -----------------------------------------------------

const weightsMagic = 0x54454557 // "WEET"

// SerializeWeights flattens all parameters into a portable blob that the
// TA seals into OP-TEE secure storage.
func (c *Classifier) SerializeWeights() []byte {
	params := c.model.Params()
	size := 12
	for _, p := range params {
		size += 4 + p.Value.Len()*4
	}
	out := make([]byte, 0, size)
	var scratch [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:], v)
		out = append(out, scratch[:]...)
	}
	put32(weightsMagic)
	put32(uint32(c.arch))
	put32(uint32(len(params)))
	for _, p := range params {
		put32(uint32(p.Value.Len()))
		for _, v := range p.Value.Data {
			put32(math.Float32bits(v))
		}
	}
	return out
}

// LoadWeights restores parameters serialized by SerializeWeights into a
// classifier of identical architecture.
func (c *Classifier) LoadWeights(blob []byte) error {
	if len(blob) < 12 {
		return fmt.Errorf("%w: truncated header", ErrBadWeights)
	}
	get32 := func(off int) uint32 { return binary.LittleEndian.Uint32(blob[off:]) }
	if get32(0) != weightsMagic {
		return fmt.Errorf("%w: bad magic", ErrBadWeights)
	}
	if Arch(get32(4)) != c.arch {
		return fmt.Errorf("%w: arch %v blob for %v model", ErrBadWeights, Arch(get32(4)), c.arch)
	}
	params := c.model.Params()
	if int(get32(8)) != len(params) {
		return fmt.Errorf("%w: %d params in blob, model has %d", ErrBadWeights, get32(8), len(params))
	}
	off := 12
	for _, p := range params {
		if off+4 > len(blob) {
			return fmt.Errorf("%w: truncated at param %s", ErrBadWeights, p.Name)
		}
		n := int(get32(off))
		off += 4
		if n != p.Value.Len() {
			return fmt.Errorf("%w: param %s has %d elements, blob %d", ErrBadWeights, p.Name, p.Value.Len(), n)
		}
		if off+n*4 > len(blob) {
			return fmt.Errorf("%w: truncated data for %s", ErrBadWeights, p.Name)
		}
		for i := 0; i < n; i++ {
			p.Value.Data[i] = math.Float32frombits(get32(off))
			off += 4
		}
	}
	if off != len(blob) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadWeights, len(blob)-off)
	}
	return nil
}
