package classify

// Hybrid HE+TEE model splits. ModeHybridHE partitions a classifier into
// three stages with three different trust domains:
//
//   head (normal world)  — feature extraction on the device: token
//                          embedding for text, pixel normalization for
//                          images. Runs on data the normal world already
//                          holds, so it leaks nothing new.
//   HE layer (provider)  — the first linear layer (Conv1D / Conv2D),
//                          evaluated homomorphically under the
//                          provider's key. The provider holds these
//                          weights in the clear (it trained the model)
//                          but never sees a cleartext activation.
//   tail (TEE)           — everything non-linear (ReLU, pooling, dense
//                          head, argmax), run inside the TA after the
//                          sealed HE secret key decrypts the handoff.
//
// The split aliases the classifier's own layers — no copies — so a
// weight load into the classifier is immediately visible to all three
// stages.

import (
	"fmt"

	"repro/internal/ml/layers"
	"repro/internal/ml/tensor"
)

// TextSplit is the hybrid partition of the CNN text classifier.
type TextSplit struct {
	// Embed is the normal-world head (token ids → embeddings).
	Embed *layers.Embedding
	// Conv is the provider's HE layer (weights provisioned in the clear,
	// activations only ever encrypted).
	Conv *layers.Conv1D
	// Tail is the in-TA remainder: ReLU → global max pool → dense.
	Tail *layers.Sequential
	// SeqLen is the padded token-sequence length the head consumes.
	SeqLen int
}

// SplitText partitions a CNN text classifier for hybrid HE+TEE
// inference. Only ArchCNN splits: its prefix is exactly one embedding
// and one linear conv, which is what the leveled-HE depth budget
// supports.
func SplitText(c *Classifier) (*TextSplit, error) {
	if !c.isText || c.arch != ArchCNN {
		return nil, fmt.Errorf("%w: hybrid split needs the CNN text classifier, got %v", ErrBadArch, c.arch)
	}
	ls := c.model.Layers()
	embed, ok1 := ls[0].(*layers.Embedding)
	conv, ok2 := ls[1].(*layers.Conv1D)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("%w: unexpected CNN prefix %T/%T", ErrBadArch, ls[0], ls[1])
	}
	return &TextSplit{
		Embed:  embed,
		Conv:   conv,
		Tail:   layers.NewSequential(c.model.Name()+"-tail", ls[2:]...),
		SeqLen: c.seqLen,
	}, nil
}

// EmbedFeatures runs the normal-world head over one padded token
// sequence (as produced by TokensToFeatures), returning the flat
// embedding slots and their [SeqLen, D] shape — the plaintext the
// device encrypts under the provider's HE key.
func (s *TextSplit) EmbedFeatures(features []float32) ([]float32, []int, error) {
	if len(features) != s.SeqLen {
		return nil, nil, fmt.Errorf("%w: %d features, head wants %d", ErrBadWeights, len(features), s.SeqLen)
	}
	x := tensor.New(1, s.SeqLen)
	copy(x.Data, features)
	out, err := s.Embed.Forward(x)
	if err != nil {
		return nil, nil, err
	}
	return out.Data, []int{s.SeqLen, s.Embed.D}, nil
}

// TailPredict runs the in-TA tail over one decrypted HE-layer output
// (flat slots plus per-sample shape); class 1 means "sensitive".
func (s *TextSplit) TailPredict(data []float32, shape []int) (int, error) {
	return tailPredict(s.Tail, data, shape)
}

// ImageSplit is the hybrid partition of the camera classifier.
type ImageSplit struct {
	// Conv is the provider's HE layer.
	Conv *layers.Conv2D
	// Tail is the in-TA remainder: ReLU → max pool → flatten → dense.
	Tail *layers.Sequential
	// H, W are the grayscale frame dimensions the pipeline consumes.
	H, W int
}

// SplitImage partitions the camera classifier for hybrid HE+TEE
// inference.
func SplitImage(c *Classifier) (*ImageSplit, error) {
	if c.isText || len(c.inShape) != 3 {
		return nil, fmt.Errorf("%w: hybrid split needs the image classifier", ErrBadArch)
	}
	ls := c.model.Layers()
	conv, ok := ls[0].(*layers.Conv2D)
	if !ok {
		return nil, fmt.Errorf("%w: unexpected image prefix %T", ErrBadArch, ls[0])
	}
	return &ImageSplit{
		Conv: conv,
		Tail: layers.NewSequential(c.model.Name()+"-tail", ls[1:]...),
		H:    c.inShape[0],
		W:    c.inShape[1],
	}, nil
}

// TailPredict runs the in-TA tail over one decrypted HE-layer output;
// class 1 means "person present".
func (s *ImageSplit) TailPredict(data []float32, shape []int) (int, error) {
	return tailPredict(s.Tail, data, shape)
}

func tailPredict(tail *layers.Sequential, data []float32, shape []int) (int, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return 0, fmt.Errorf("%w: %d values for shape %v", ErrBadWeights, len(data), shape)
	}
	x := tensor.New(append([]int{1}, shape...)...)
	copy(x.Data, data)
	logits, err := tail.Forward(x)
	if err != nil {
		return 0, err
	}
	classes, err := tensor.ArgMaxRows(logits)
	if err != nil {
		return 0, err
	}
	return classes[0], nil
}
