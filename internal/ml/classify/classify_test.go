package classify

import (
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/ml/train"
	"repro/internal/peripheral"
	"repro/internal/sensitive"
)

func corpusSamples(t *testing.T, c *Classifier, utts []sensitive.Utterance, vocab *sensitive.Vocabulary) []train.Sample {
	t.Helper()
	out := make([]train.Sample, 0, len(utts))
	for _, u := range utts {
		out = append(out, train.Sample{
			X: c.TokensToFeatures(vocab.Encode(u.Words)),
			Y: u.Label(),
		})
	}
	return out
}

// trainText trains a small text classifier on the synthetic corpus and
// returns its test metrics.
func trainText(t *testing.T, arch Arch, seed uint64) (train.Metrics, *Classifier, *sensitive.Vocabulary) {
	t.Helper()
	vocab := sensitive.NewVocabulary()
	corpus, err := sensitive.Generate(sensitive.GenConfig{N: 240, SensitiveFraction: 0.45, Seed: seed})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	trainSet, testSet := sensitive.Split(corpus, 0.8, seed)

	rng := rand.New(rand.NewPCG(seed, seed^0xc1a))
	const seqLen = 12
	clf, err := NewText(arch, rng, vocab.Size(), seqLen)
	if err != nil {
		t.Fatalf("NewText(%v): %v", arch, err)
	}
	_, err = train.Fit(clf.Model(), train.NewAdam(0.01),
		corpusSamples(t, clf, trainSet, vocab),
		train.Config{Epochs: 8, BatchSize: 16, Seed: seed, Shape: clf.InputShape()})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	m, err := train.Evaluate(clf.Model(), corpusSamples(t, clf, testSet, vocab), clf.InputShape())
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return m, clf, vocab
}

func TestCNNLearnsSensitiveDetection(t *testing.T) {
	m, _, _ := trainText(t, ArchCNN, 11)
	if m.Accuracy() < 0.9 {
		t.Errorf("cnn accuracy = %v, want >= 0.9", m.Accuracy())
	}
	if m.Recall() < 0.9 {
		t.Errorf("cnn recall = %v, want >= 0.9 (missed sensitive content leaks)", m.Recall())
	}
}

func TestTransformerLearnsSensitiveDetection(t *testing.T) {
	m, _, _ := trainText(t, ArchTransformer, 12)
	if m.Accuracy() < 0.85 {
		t.Errorf("transformer accuracy = %v, want >= 0.85", m.Accuracy())
	}
}

func TestHybridLearnsSensitiveDetection(t *testing.T) {
	m, _, _ := trainText(t, ArchHybrid, 13)
	if m.Accuracy() < 0.85 {
		t.Errorf("hybrid accuracy = %v, want >= 0.85", m.Accuracy())
	}
}

func TestPredictMatchesEvaluate(t *testing.T) {
	_, clf, vocab := trainText(t, ArchCNN, 14)
	u := sensitive.Utterance{Words: []string{"my", "password", "is", "tango"}, Sensitive: true}
	cls, err := clf.Predict(clf.TokensToFeatures(vocab.Encode(u.Words)))
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if cls != 1 {
		t.Errorf("password utterance classified %d, want 1 (sensitive)", cls)
	}
	benign := []string{"turn", "on", "the", "light"}
	cls, err = clf.Predict(clf.TokensToFeatures(vocab.Encode(benign)))
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if cls != 0 {
		t.Errorf("benign utterance classified %d, want 0", cls)
	}
}

func TestArchParsingAndStrings(t *testing.T) {
	for _, name := range []string{"cnn", "transformer", "hybrid"} {
		a, err := ParseArch(name)
		if err != nil {
			t.Errorf("ParseArch(%q): %v", name, err)
		}
		if a.String() != name {
			t.Errorf("round trip %q -> %q", name, a.String())
		}
	}
	if _, err := ParseArch("lstm"); !errors.Is(err, ErrBadArch) {
		t.Errorf("ParseArch(lstm) = %v", err)
	}
	if Arch(9).String() != "arch(9)" {
		t.Error("unknown arch string")
	}
}

func TestNewTextBadArch(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := NewText(Arch(9), rng, 10, 8); !errors.Is(err, ErrBadArch) {
		t.Errorf("NewText bad arch = %v", err)
	}
}

func TestParamAccountingOrdering(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	vocabSize, seqLen := 50, 12
	cnn, err := NewText(ArchCNN, rng, vocabSize, seqLen)
	if err != nil {
		t.Fatalf("cnn: %v", err)
	}
	tr, err := NewText(ArchTransformer, rng, vocabSize, seqLen)
	if err != nil {
		t.Fatalf("transformer: %v", err)
	}
	hy, err := NewText(ArchHybrid, rng, vocabSize, seqLen)
	if err != nil {
		t.Fatalf("hybrid: %v", err)
	}
	for _, c := range []*Classifier{cnn, tr, hy} {
		if c.ParamCount() <= 0 || c.MemoryBytes() <= c.ParamCount()*4-1 {
			t.Errorf("%v accounting: params=%d mem=%d", c.Arch(), c.ParamCount(), c.MemoryBytes())
		}
		if c.EstimateMACs() != 2*c.ParamCount() {
			t.Errorf("%v MACs = %d", c.Arch(), c.EstimateMACs())
		}
	}
	// The hybrid stacks CNN + attention, so it must be the largest.
	if hy.ParamCount() <= cnn.ParamCount() || hy.ParamCount() <= tr.ParamCount() {
		t.Errorf("param ordering: cnn=%d tr=%d hybrid=%d",
			cnn.ParamCount(), tr.ParamCount(), hy.ParamCount())
	}
	// All of them must fit a 1 MiB TEE model budget (paper §V smallness).
	for _, c := range []*Classifier{cnn, tr, hy} {
		if !c.FitsIn(1 << 20) {
			t.Errorf("%v does not fit 1 MiB (needs %d)", c.Arch(), c.MemoryBytes())
		}
	}
	if cnn.FitsIn(10) {
		t.Error("FitsIn(10) should be false")
	}
}

func TestWeightsSerializationRoundTrip(t *testing.T) {
	_, clf, vocab := trainText(t, ArchCNN, 15)
	blob := clf.SerializeWeights()

	rng := rand.New(rand.NewPCG(99, 99))
	fresh, err := NewText(ArchCNN, rng, vocab.Size(), 12)
	if err != nil {
		t.Fatalf("NewText: %v", err)
	}
	feats := clf.TokensToFeatures(vocab.Encode([]string{"my", "password", "is", "tango"}))
	before, err := fresh.Predict(feats)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	_ = before // untrained prediction may be anything
	if err := fresh.LoadWeights(blob); err != nil {
		t.Fatalf("LoadWeights: %v", err)
	}
	orig, err := clf.Predict(feats)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	loaded, err := fresh.Predict(feats)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if orig != loaded {
		t.Errorf("loaded model predicts %d, original %d", loaded, orig)
	}
}

func TestLoadWeightsErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	cnn, _ := NewText(ArchCNN, rng, 20, 8)
	tr, _ := NewText(ArchTransformer, rng, 20, 8)
	if err := cnn.LoadWeights([]byte{1, 2}); !errors.Is(err, ErrBadWeights) {
		t.Errorf("truncated blob = %v", err)
	}
	if err := tr.LoadWeights(cnn.SerializeWeights()); !errors.Is(err, ErrBadWeights) {
		t.Errorf("cross-arch load = %v", err)
	}
	blob := cnn.SerializeWeights()
	if err := cnn.LoadWeights(blob[:len(blob)-2]); !errors.Is(err, ErrBadWeights) {
		t.Errorf("truncated data = %v", err)
	}
	if err := cnn.LoadWeights(append(blob, 0)); !errors.Is(err, ErrBadWeights) {
		t.Errorf("trailing bytes = %v", err)
	}
}

func TestImageClassifierLearnsPersonDetection(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	clf, err := NewImage(rng, 24, 24)
	if err != nil {
		t.Fatalf("NewImage: %v", err)
	}
	samples := imageSamples(t, 120, 20)
	_, err = train.Fit(clf.Model(), train.NewAdam(0.005), samples[:100],
		train.Config{Epochs: 6, BatchSize: 10, Seed: 5, Shape: clf.InputShape()})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	m, err := train.Evaluate(clf.Model(), samples[100:], clf.InputShape())
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if m.Accuracy() < 0.85 {
		t.Errorf("image accuracy = %v, want >= 0.85", m.Accuracy())
	}
}

// imageSamples renders synthetic empty/person frames.
func imageSamples(t *testing.T, n, _ int) []train.Sample {
	t.Helper()
	out := make([]train.Sample, 0, n)
	for i := 0; i < n; i++ {
		label := i % 2
		scene := peripheral.SceneEmpty
		if label == 1 {
			scene = peripheral.ScenePerson
		}
		im := peripheral.SynthesizeImage(scene, uint64(i))
		out = append(out, train.Sample{X: im.Floats(), Y: label})
	}
	return out
}

func TestNewImageBadDims(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	if _, err := NewImage(rng, 3, 3); !errors.Is(err, ErrBadArch) {
		t.Errorf("NewImage(3,3) = %v", err)
	}
	if _, err := NewImage(rng, 23, 24); !errors.Is(err, ErrBadArch) {
		t.Errorf("NewImage(23,24) = %v", err)
	}
}

func TestPredictBatchShapeError(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	clf, _ := NewText(ArchCNN, rng, 10, 8)
	if _, err := clf.PredictBatch([][]float32{{1, 2}}); !errors.Is(err, ErrBadWeights) {
		t.Errorf("short features = %v", err)
	}
	got, err := clf.PredictBatch(nil)
	if err != nil || got != nil {
		t.Errorf("empty batch = %v, %v", got, err)
	}
}
