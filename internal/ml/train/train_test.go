package train

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ml/layers"
	"repro/internal/ml/tensor"
)

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	logits, _ := tensor.FromSlice([]float32{0, 0}, 1, 2)
	loss, grad, err := SoftmaxCrossEntropy(logits, []int{1})
	if err != nil {
		t.Fatalf("SoftmaxCrossEntropy: %v", err)
	}
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Errorf("loss = %v, want ln2", loss)
	}
	// Gradient: p - onehot = [0.5, -0.5].
	if math.Abs(float64(grad.At(0, 0))-0.5) > 1e-6 || math.Abs(float64(grad.At(0, 1))+0.5) > 1e-6 {
		t.Errorf("grad = %v", grad.Data)
	}
}

func TestSoftmaxCrossEntropyErrors(t *testing.T) {
	logits := tensor.New(2, 3)
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0}); !errors.Is(err, ErrBadLabels) {
		t.Errorf("mismatched labels = %v", err)
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0, 9}); !errors.Is(err, ErrBadLabels) {
		t.Errorf("out-of-range label = %v", err)
	}
}

func TestSoftmaxCrossEntropyGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	logits := tensor.Randn(rng, 1, 3, 4)
	labels := []int{1, 3, 0}
	_, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatalf("SoftmaxCrossEntropy: %v", err)
	}
	const eps = 1e-2
	for i := range logits.Data {
		lp := logits.Clone()
		lp.Data[i] += eps
		lossP, _, _ := SoftmaxCrossEntropy(lp, labels)
		lm := logits.Clone()
		lm.Data[i] -= eps
		lossM, _, _ := SoftmaxCrossEntropy(lm, labels)
		numeric := (lossP - lossM) / (2 * eps)
		if math.Abs(numeric-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("grad[%d]: analytic %v vs numeric %v", i, grad.Data[i], numeric)
		}
	}
}

// xorSamples is the classic non-linearly-separable set.
func xorSamples() []Sample {
	return []Sample{
		{X: []float32{0, 0}, Y: 0},
		{X: []float32{0, 1}, Y: 1},
		{X: []float32{1, 0}, Y: 1},
		{X: []float32{1, 1}, Y: 0},
	}
}

func TestFitLearnsXORWithAdam(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	model := layers.NewSequential("xor",
		layers.NewDense(rng, 2, 16),
		layers.NewReLU(),
		layers.NewDense(rng, 16, 2),
	)
	res, err := Fit(model, NewAdam(0.02), xorSamples(), Config{
		Epochs: 300, BatchSize: 4, Seed: 1, Shape: []int{2},
	})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if res.FinalLoss > 0.1 {
		t.Errorf("final loss %v, want < 0.1", res.FinalLoss)
	}
	m, err := Evaluate(model, xorSamples(), []int{2})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if m.Accuracy() != 1 {
		t.Errorf("XOR accuracy = %v, want 1.0", m.Accuracy())
	}
}

func TestFitLearnsWithSGDMomentum(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	model := layers.NewSequential("xor-sgd",
		layers.NewDense(rng, 2, 16),
		layers.NewReLU(),
		layers.NewDense(rng, 16, 2),
	)
	res, err := Fit(model, NewSGD(0.1, 0.9), xorSamples(), Config{
		Epochs: 500, BatchSize: 4, Seed: 2, Shape: []int{2},
	})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if res.FinalLoss > 0.2 {
		t.Errorf("final loss %v, want < 0.2", res.FinalLoss)
	}
}

func TestFitErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	model := layers.NewDense(rng, 2, 2)
	if _, err := Fit(model, NewAdam(0.01), nil, Config{Shape: []int{2}}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty Fit = %v", err)
	}
	bad := []Sample{{X: []float32{1, 2}, Y: 0}, {X: []float32{1}, Y: 0}}
	if _, err := Fit(model, NewAdam(0.01), bad, Config{Shape: []int{2}}); !errors.Is(err, ErrBadLabels) {
		t.Errorf("ragged Fit = %v", err)
	}
}

func TestFitProgressCallback(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	model := layers.NewDense(rng, 2, 2)
	calls := 0
	_, err := Fit(model, NewSGD(0.01, 0), xorSamples(), Config{
		Epochs: 3, BatchSize: 2, Shape: []int{2},
		Progress: func(epoch int, loss float64) { calls++ },
	})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if calls != 3 {
		t.Errorf("progress called %d times, want 3", calls)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	model := layers.NewDense(rng, 2, 2)
	if _, err := Evaluate(model, nil, []int{2}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty Evaluate = %v", err)
	}
}

func TestMetricsMath(t *testing.T) {
	var m Metrics
	// 3 TP, 1 FN, 1 FP, 5 TN.
	for i := 0; i < 3; i++ {
		m.Observe(1, 1)
	}
	m.Observe(1, 0)
	m.Observe(0, 1)
	for i := 0; i < 5; i++ {
		m.Observe(0, 0)
	}
	if m.Total() != 10 {
		t.Errorf("Total = %d", m.Total())
	}
	if math.Abs(m.Accuracy()-0.8) > 1e-12 {
		t.Errorf("Accuracy = %v", m.Accuracy())
	}
	if math.Abs(m.Precision()-0.75) > 1e-12 {
		t.Errorf("Precision = %v", m.Precision())
	}
	if math.Abs(m.Recall()-0.75) > 1e-12 {
		t.Errorf("Recall = %v", m.Recall())
	}
	if math.Abs(m.F1()-0.75) > 1e-12 {
		t.Errorf("F1 = %v", m.F1())
	}
	var empty Metrics
	if empty.Accuracy() != 0 || empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Error("empty metrics should be zero")
	}
}

func TestAdamConvergesFasterThanSGDOnXOR(t *testing.T) {
	lossAfter := func(opt Optimizer, seed uint64) float64 {
		rng := rand.New(rand.NewPCG(seed, seed))
		model := layers.NewSequential("m",
			layers.NewDense(rng, 2, 16),
			layers.NewReLU(),
			layers.NewDense(rng, 16, 2),
		)
		res, err := Fit(model, opt, xorSamples(), Config{
			Epochs: 60, BatchSize: 4, Seed: seed, Shape: []int{2},
		})
		if err != nil {
			t.Fatalf("Fit: %v", err)
		}
		return res.FinalLoss
	}
	adam := lossAfter(NewAdam(0.02), 21)
	sgd := lossAfter(NewSGD(0.02, 0), 21)
	if adam >= sgd {
		t.Logf("note: adam %v vs sgd %v (adam usually faster here)", adam, sgd)
	}
	if adam > 0.5 {
		t.Errorf("adam loss after 60 epochs = %v, want < 0.5", adam)
	}
}
