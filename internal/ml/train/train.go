// Package train provides the loss, optimizers and mini-batch loop used to
// pre-train the sensitive-content classifiers before they are frozen and
// deployed into the TEE (the paper assumes "a pre-trained ML classifier",
// §II; training happens offline, outside the device).
package train

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ml/layers"
	"repro/internal/ml/tensor"
)

// Errors returned by the package.
var (
	// ErrBadLabels is returned when labels disagree with logits.
	ErrBadLabels = errors.New("train: labels mismatch logits")
	// ErrNoData is returned for empty datasets.
	ErrNoData = errors.New("train: empty dataset")
)

// SoftmaxCrossEntropy computes mean cross-entropy over a batch of logits
// [B, C] with integer labels, and the gradient w.r.t. the logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor, error) {
	if logits.Dims() != 2 || logits.Dim(0) != len(labels) {
		return 0, nil, fmt.Errorf("%w: logits %v, %d labels", ErrBadLabels, logits.Shape, len(labels))
	}
	B, C := logits.Dim(0), logits.Dim(1)
	probs, err := tensor.SoftmaxRows(logits)
	if err != nil {
		return 0, nil, err
	}
	grad := probs.Clone()
	var loss float64
	for b := 0; b < B; b++ {
		y := labels[b]
		if y < 0 || y >= C {
			return 0, nil, fmt.Errorf("%w: label %d with %d classes", ErrBadLabels, y, C)
		}
		p := float64(probs.At(b, y))
		loss -= math.Log(p + 1e-12)
		grad.Set(grad.At(b, y)-1, b, y)
	}
	grad.ScaleInPlace(1 / float32(B))
	return loss / float64(B), grad, nil
}

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and implicitly consumes the gradients.
	Step(params []*layers.Param)
	// ZeroGrad clears accumulated gradients.
	ZeroGrad(params []*layers.Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*layers.Param]*tensor.Tensor
}

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*layers.Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*layers.Param) {
	for _, p := range params {
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Shape...)
			s.velocity[p] = v
		}
		for i := range p.Value.Data {
			v.Data[i] = float32(s.Momentum)*v.Data[i] - float32(s.LR)*p.Grad.Data[i]
			p.Value.Data[i] += v.Data[i]
		}
	}
}

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad(params []*layers.Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// Adam is the Adam optimizer (Kingma & Ba).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*layers.Param]*tensor.Tensor
}

// NewAdam creates an Adam optimizer with standard defaults for unset betas.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*layers.Param]*tensor.Tensor),
		v: make(map[*layers.Param]*tensor.Tensor),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*layers.Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape...)
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = tensor.New(p.Value.Shape...)
			a.v[p] = v
		}
		for i := range p.Value.Data {
			g := float64(p.Grad.Data[i])
			mi := a.Beta1*float64(m.Data[i]) + (1-a.Beta1)*g
			vi := a.Beta2*float64(v.Data[i]) + (1-a.Beta2)*g*g
			m.Data[i] = float32(mi)
			v.Data[i] = float32(vi)
			p.Value.Data[i] -= float32(a.LR * (mi / bc1) / (math.Sqrt(vi/bc2) + a.Eps))
		}
	}
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad(params []*layers.Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// Sample is one training example: a feature tensor (without batch axis
// encoded; X rows are packed by the trainer) and an integer class label.
type Sample struct {
	X []float32
	Y int
}

// Config drives the training loop.
type Config struct {
	Epochs    int
	BatchSize int
	Seed      uint64
	// Shape is the per-sample feature shape (the trainer prepends batch).
	Shape []int
	// Quiet suppresses the per-epoch progress callback.
	Progress func(epoch int, loss float64)
}

// Result summarizes a finished run.
type Result struct {
	Epochs    int
	FinalLoss float64
}

// Fit trains model on samples with the optimizer.
func Fit(model layers.Layer, opt Optimizer, samples []Sample, cfg Config) (Result, error) {
	if len(samples) == 0 {
		return Result{}, ErrNoData
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	featLen := len(samples[0].X)
	for i, s := range samples {
		if len(s.X) != featLen {
			return Result{}, fmt.Errorf("%w: sample %d has %d features, want %d", ErrBadLabels, i, len(s.X), featLen)
		}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xfeed))
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			idx := order[start:end]
			B := len(idx)
			x := tensor.New(append([]int{B}, cfg.Shape...)...)
			labels := make([]int, B)
			for bi, si := range idx {
				copy(x.Data[bi*featLen:(bi+1)*featLen], samples[si].X)
				labels[bi] = samples[si].Y
			}
			logits, err := model.Forward(x)
			if err != nil {
				return Result{}, fmt.Errorf("epoch %d forward: %w", epoch, err)
			}
			loss, grad, err := SoftmaxCrossEntropy(logits, labels)
			if err != nil {
				return Result{}, fmt.Errorf("epoch %d loss: %w", epoch, err)
			}
			if _, err := model.Backward(grad); err != nil {
				return Result{}, fmt.Errorf("epoch %d backward: %w", epoch, err)
			}
			opt.Step(model.Params())
			opt.ZeroGrad(model.Params())
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Progress != nil {
			cfg.Progress(epoch, lastLoss)
		}
	}
	return Result{Epochs: cfg.Epochs, FinalLoss: lastLoss}, nil
}

// Evaluate runs the model over samples and returns classification metrics.
func Evaluate(model layers.Layer, samples []Sample, shape []int) (Metrics, error) {
	if len(samples) == 0 {
		return Metrics{}, ErrNoData
	}
	featLen := len(samples[0].X)
	var m Metrics
	const batch = 32
	for start := 0; start < len(samples); start += batch {
		end := start + batch
		if end > len(samples) {
			end = len(samples)
		}
		B := end - start
		x := tensor.New(append([]int{B}, shape...)...)
		for bi := 0; bi < B; bi++ {
			copy(x.Data[bi*featLen:(bi+1)*featLen], samples[start+bi].X)
		}
		logits, err := model.Forward(x)
		if err != nil {
			return Metrics{}, err
		}
		pred, err := tensor.ArgMaxRows(logits)
		if err != nil {
			return Metrics{}, err
		}
		for bi := 0; bi < B; bi++ {
			m.Observe(samples[start+bi].Y, pred[bi])
		}
	}
	return m, nil
}

// Metrics accumulates binary-classification counts (class 1 = positive,
// i.e. "sensitive").
type Metrics struct {
	TP, TN, FP, FN int
}

// Observe records one (truth, prediction) pair.
func (m *Metrics) Observe(truth, pred int) {
	switch {
	case truth == 1 && pred == 1:
		m.TP++
	case truth == 0 && pred == 0:
		m.TN++
	case truth == 0 && pred == 1:
		m.FP++
	default:
		m.FN++
	}
}

// Total returns the number of observations.
func (m Metrics) Total() int { return m.TP + m.TN + m.FP + m.FN }

// Accuracy returns the fraction classified correctly.
func (m Metrics) Accuracy() float64 {
	if m.Total() == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(m.Total())
}

// Precision returns TP / (TP + FP).
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP / (TP + FN) — the fraction of sensitive content caught,
// the security-critical number for the paper's filter.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
