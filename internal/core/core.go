// Package core assembles the paper's Fig. 1 system end to end: microphone
// → I2S controller → sound driver → (PTA → TA with ASR + ML filter →
// relay → supplicant) → cloud, over the TrustZone/OP-TEE substrate, plus
// the insecure baseline deployment used for comparison.
//
// Four deployment modes cover the paper's design space plus the hybrid
// extension:
//
//   - ModeBaseline: the driver lives in the untrusted kernel, raw audio is
//     shipped to the cloud, and the provider transcribes it server-side —
//     the deployment behind the §I leak incidents.
//   - ModeSecureNoFilter: the driver is ported into OP-TEE (data never
//     touches normal-world memory) but the TA relays the full transcript.
//   - ModeSecureFilter: the full design — the TA transcribes, classifies
//     and filters before anything leaves the TEE.
//   - ModeHybridHE: secure-filter's pipeline with the classifier's first
//     linear layer outsourced under homomorphic encryption — the device
//     encrypts extracted features under the provider's HE key, the
//     provider evaluates the layer blind, and the TA decrypts with the
//     sealed secret key to run the non-linear tail. The provider never
//     sees a cleartext feature byte.
package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"strings"
	"sync"

	"repro/internal/asr"
	"repro/internal/attest"
	"repro/internal/audio"
	"repro/internal/bus"
	"repro/internal/cloud"
	"repro/internal/driver"
	"repro/internal/ftrace"
	"repro/internal/he"
	"repro/internal/i2s"
	"repro/internal/kernel"
	"repro/internal/memory"
	"repro/internal/ml/classify"
	"repro/internal/ml/train"
	"repro/internal/obs"
	"repro/internal/optee"
	"repro/internal/peripheral"
	"repro/internal/relay"
	"repro/internal/sensitive"
	"repro/internal/supplicant"
	"repro/internal/tz"
)

// Errors returned by the package.
var (
	// ErrBadMode is returned for unknown deployment modes.
	ErrBadMode = errors.New("core: unknown mode")
	// ErrBadConfig is returned for invalid configurations.
	ErrBadConfig = errors.New("core: invalid config")
)

// Mode selects the deployment under test.
type Mode int

const (
	// ModeBaseline is the untrusted-driver, raw-audio-to-cloud deployment.
	ModeBaseline Mode = iota + 1
	// ModeSecureNoFilter ports the driver into the TEE but relays full
	// transcripts.
	ModeSecureNoFilter
	// ModeSecureFilter is the paper's complete design.
	ModeSecureFilter
	// ModeHybridHE splits inference between homomorphic encryption and
	// the TEE: the first linear layer evaluates under the provider's HE
	// key, the non-linear tail runs inside the TA after the sealed
	// secret key decrypts the handoff.
	ModeHybridHE
)

// Modes returns the registered deployment modes in declaration order.
// Every layer that enumerates modes — the fleet mix, CLI parsing,
// experiments — derives from this registry instead of hard-coding a
// count, so a new mode lands by extending the list (and String).
func Modes() []Mode {
	return []Mode{ModeBaseline, ModeSecureNoFilter, ModeSecureFilter, ModeHybridHE}
}

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeSecureNoFilter:
		return "secure-nofilter"
	case ModeSecureFilter:
		return "secure-filter"
	case ModeHybridHE:
		return "hybrid-he"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode maps a mode name (as produced by String) back to its Mode.
// Unknown names return ErrBadMode listing the registered modes.
func ParseMode(s string) (Mode, error) {
	names := make([]string, 0, len(Modes()))
	for _, m := range Modes() {
		if m.String() == s {
			return m, nil
		}
		names = append(names, m.String())
	}
	return 0, fmt.Errorf("%w: %q (registered modes: %s)", ErrBadMode, s, strings.Join(names, ", "))
}

// Config parameterizes a System.
type Config struct {
	// Mode is the deployment (required).
	Mode Mode
	// Arch selects the TA classifier (secure-filter mode); default CNN.
	Arch classify.Arch
	// Policy is the filter action; default PolicyBlock.
	Policy relay.Policy
	// BufBytes is the driver DMA buffer size; default 4096.
	BufBytes int
	// WorldSwitchCycles overrides the SMC one-way switch cost (0 = default).
	WorldSwitchCycles tz.Cycles
	// Seed fixes all randomness.
	Seed uint64
	// ModelSeed fixes classifier pre-training independently of Seed
	// (0 = Seed). A fleet gives every device a distinct Seed but one
	// shared ModelSeed, modelling a provider that provisions a single
	// pre-trained model to the whole population (and letting the trainer
	// memoize one model instead of one per device).
	ModelSeed uint64
	// FreqHz is the modelled core frequency; default 1 GHz.
	FreqHz uint64
	// NoiseAmp is the synthetic speaker's background noise level.
	NoiseAmp float64
	// TrainEpochs controls classifier pre-training; default 8.
	TrainEpochs int

	// DeviceID names the device on an attested ingest tier ("" outside
	// fleets); AttestKeySeed derives its attestation key via
	// attest.KeyFromSeed (0 disables attestation); ModelVersion is the
	// provisioned model-pack version the device boots with (0 = 1 when
	// attestation is enabled).
	DeviceID      string
	AttestKeySeed uint64
	ModelVersion  uint64

	// SharedClassify marks a secure-filter device whose classify stage is
	// served by a shared cross-device scheduler (wired afterwards via
	// SetClassifyService): the per-device classifier build and weight
	// sealing are skipped, since the device never runs a forward pass
	// itself. The caller must wire the service before the session runs.
	SharedClassify bool
}

func (c *Config) fillDefaults() error {
	valid := false
	for _, m := range Modes() {
		if c.Mode == m {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("%w: %v", ErrBadMode, c.Mode)
	}
	if c.Arch == 0 {
		c.Arch = classify.ArchCNN
	}
	if c.Policy == 0 {
		c.Policy = relay.PolicyBlock
	}
	if c.BufBytes <= 0 {
		c.BufBytes = 4096
	}
	if c.FreqHz == 0 {
		c.FreqHz = 1_000_000_000
	}
	if c.NoiseAmp == 0 {
		c.NoiseAmp = 0.01
	}
	if c.TrainEpochs <= 0 {
		c.TrainEpochs = 8
	}
	if c.ModelSeed == 0 {
		c.ModelSeed = c.Seed
	}
	if c.AttestKeySeed != 0 && c.ModelVersion == 0 {
		c.ModelVersion = 1
	}
	if c.BufBytes > 1<<20 {
		return fmt.Errorf("%w: buffer %d too large", ErrBadConfig, c.BufBytes)
	}
	return nil
}

// UUIDs of the secure components.
const (
	UUIDDriverPTA = "pta.i2s.capture"
	UUIDVoiceTA   = "ta.voice.guard"
	// CloudTarget is the supplicant route name for the AVS endpoint.
	CloudTarget = "avs.cloud.example"
)

// System is one fully wired device-plus-cloud instance.
type System struct {
	cfg Config

	// Hardware substrate.
	Clock    *tz.Clock
	Cost     tz.CostModel
	Monitor  *tz.Monitor
	Platform *memory.Platform
	Bus      *bus.Bus
	Ctrl     *i2s.Controller
	DMA      *bus.DMA
	Mic      *peripheral.Microphone
	Voice    audio.Voice

	// Normal world.
	Kernel  *kernel.Kernel
	Snooper *kernel.Snooper
	Tracer  *ftrace.Tracer
	Driver  *driver.SoundDriver

	// Secure world (nil in baseline mode).
	TEE        *optee.OS
	Supplicant *supplicant.Supplicant
	Storage    *optee.Storage
	VoiceTA    *VoiceTA
	DriverPTA  *DriverPTA

	// Cloud side.
	CloudSealed *cloud.Service      // secure modes
	CloudPlain  *cloud.PlainService // baseline
	// uplink is where baseline device→cloud traffic leaves the device;
	// it defaults to CloudPlain and is rerouted by SetUplink when the
	// device joins a fleet ingest tier. Secure modes route through the
	// supplicant instead.
	uplink supplicant.NetSink

	// Hybrid HE+TEE split (ModeHybridHE only; nil/zero otherwise). HE is
	// the provider's blind-evaluation endpoint, HEPub the provider key
	// the normal world encrypts features under, HEEval the device-side
	// evaluator charging encrypt cycles to this device's clock, and
	// heSplit the three-way model partition.
	HE      *cloud.HEService
	HEPub   he.PublicKey
	HEEval  *he.Evaluator
	heSplit *classify.TextSplit

	// Shared models. ASRModel is the immutable trained template pack
	// (shared across every device with the same training conditions);
	// Recognizer is this device's private transcription session over it.
	Vocab      *sensitive.Vocabulary
	ASRModel   *asr.Model
	Recognizer *asr.Session // device-side (TA) recognizer session

	// trace is the device's sampled telemetry context (nil outside traced
	// runs and for sampled-out devices — the zero-cost path).
	trace *obs.TraceContext

	radioBytes uint64
	mu         sync.Mutex

	// Session scratch: utterances are synthesized, captured and encoded
	// one at a time per system, so these buffers are reused across the
	// whole run (the mic and the uplink both copy what they consume).
	synthBuf     []float64
	baseCaptured []byte
	baseRead     []byte
	baseSamples  []int32
	basePayload  []byte
}

// trainedWeights memoizes classifier pre-training per (arch, seed, epochs):
// training is deterministic, and experiments build many Systems.
var (
	trainedMu      sync.Mutex
	trainedWeights = make(map[string][]byte)
)

// TrainClassifier pre-trains (or fetches the memoized) classifier for the
// architecture on the standard corpus. The lock is held across training —
// as in trainedRecognizer — so a fleet building thousands of devices with
// one shared ModelSeed trains the model exactly once.
func TrainClassifier(arch classify.Arch, vocab *sensitive.Vocabulary, seed uint64, epochs int) (*classify.Classifier, error) {
	const seqLen = 12
	key := fmt.Sprintf("%d/%d/%d", arch, seed, epochs)
	rng := NewRNG(seed, seed^SaltClassifier)
	clf, err := classify.NewText(arch, rng, vocab.Size(), seqLen)
	if err != nil {
		return nil, err
	}
	trainedMu.Lock()
	defer trainedMu.Unlock()
	if blob, ok := trainedWeights[key]; ok {
		if err := clf.LoadWeights(blob); err != nil {
			return nil, err
		}
		return clf, nil
	}
	corpus, err := sensitive.Generate(sensitive.GenConfig{N: 280, SensitiveFraction: 0.45, Seed: seed})
	if err != nil {
		return nil, err
	}
	samples := make([]train.Sample, 0, len(corpus))
	for _, u := range corpus {
		samples = append(samples, train.Sample{
			X: clf.TokensToFeatures(vocab.Encode(u.Words)),
			Y: u.Label(),
		})
	}
	if _, err := train.Fit(clf.Model(), train.NewAdam(0.01), samples, train.Config{
		Epochs: epochs, BatchSize: 16, Seed: seed, Shape: clf.InputShape(),
	}); err != nil {
		return nil, err
	}
	trainedWeights[key] = clf.SerializeWeights()
	return clf, nil
}

// seededReader adapts the deterministic PRNG to io.Reader for key
// generation, keeping whole experiments reproducible.
type seededReader struct{ rng *rand.Rand }

func (s seededReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(s.rng.Uint64())
	}
	return len(p), nil
}

const ctrlMMIOBase = 0x7000_9000

// NewSystem builds a complete instance for the configuration.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	cost := tz.DefaultCostModel()
	if cfg.WorldSwitchCycles > 0 {
		cost.WorldSwitch = cfg.WorldSwitchCycles
	}
	clock := tz.NewClock()
	plat, err := memory.NewPlatform(memory.DefaultLayout())
	if err != nil {
		return nil, fmt.Errorf("core platform: %w", err)
	}
	monitor := tz.NewMonitor(clock, cost)
	b := bus.New(clock, cost)
	secureDevice := cfg.Mode != ModeBaseline
	// A large controller FIFO lets the simulator pump a whole utterance
	// synchronously before the consumer drains it; it stands in for the
	// continuous real-time streaming the simulation compresses.
	ctrl := i2s.NewController("i2s0", 1<<20)
	if err := b.Map(ctrlMMIOBase, i2s.RegSize, secureDevice, ctrl); err != nil {
		return nil, fmt.Errorf("core bus: %w", err)
	}
	dmaEngine := bus.NewDMA(clock, cost, plat.Mem)

	voice := audio.DefaultVoice(cfg.Seed)
	voice.NoiseAmp = cfg.NoiseAmp
	mic, err := peripheral.NewMicrophone(ctrl, i2s.DefaultFormat())
	if err != nil {
		return nil, fmt.Errorf("core mic: %w", err)
	}

	world := tz.WorldNormal
	heap := plat.DMAHeap
	if secureDevice {
		world = tz.WorldSecure
		heap = plat.SecureHeap
	}
	tracer := ftrace.New(clock)
	drv, err := driver.New(driver.Config{
		Name:     "i2s0-" + world.String(),
		World:    world,
		Bus:      b,
		Ctrl:     ctrl,
		CtrlBase: ctrlMMIOBase,
		DMA:      dmaEngine,
		Mem:      plat.Mem,
		Heap:     heap,
		Clock:    clock,
		Cost:     cost,
		Tracer:   tracer,
		BufBytes: cfg.BufBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("core driver: %w", err)
	}

	kern := kernel.New(clock, cost, plat.Mem)
	sys := &System{
		cfg:      cfg,
		Clock:    clock,
		Cost:     cost,
		Monitor:  monitor,
		Platform: plat,
		Bus:      b,
		Ctrl:     ctrl,
		DMA:      dmaEngine,
		Mic:      mic,
		Voice:    voice,
		Kernel:   kern,
		Snooper:  kernel.NewSnooper(plat.Mem),
		Tracer:   tracer,
		Driver:   drv,
		Vocab:    sensitive.NewVocabulary(),
	}

	// Device-side recognizer: the template pack is trained once per
	// training condition and shared fleet-wide; the session (extractor +
	// matching scratch) is private to this device.
	model, err := trainedModel(sys.Vocab, voice)
	if err != nil {
		return nil, fmt.Errorf("core asr: %w", err)
	}
	sys.ASRModel = model
	sys.Recognizer, err = model.NewSession()
	if err != nil {
		return nil, fmt.Errorf("core asr session: %w", err)
	}

	if cfg.Mode == ModeBaseline {
		return sys, sys.buildBaseline()
	}
	return sys, sys.buildSecure()
}

// Config returns the system's configuration (defaults filled).
func (s *System) Config() Config { return s.cfg }

// SetTrace installs the device's telemetry trace context (nil clears).
// Spans carry stage timings, sealed sizes and admission verdicts only —
// never transcript tokens. Install before RunSession; the hot path reads
// the pointer without locking.
func (s *System) SetTrace(tc *obs.TraceContext) { s.trace = tc }

// buildBaseline registers the normal-world char device and the plain cloud.
func (s *System) buildBaseline() error {
	chardev := driver.NewCharDev(s.Driver, i2s.DefaultFormat())
	s.Kernel.RegisterDevice("/dev/i2s0", chardev)

	// The provider's server-side ASR (trained on the same voice model —
	// providers have better acoustic coverage than any device). The
	// template pack is shared with the device side; the cloud endpoint
	// gets its own session.
	cloudModel, err := trainedModel(s.Vocab, s.Voice)
	if err != nil {
		return fmt.Errorf("core cloud asr: %w", err)
	}
	cloudSess, err := cloudModel.NewSession()
	if err != nil {
		return fmt.Errorf("core cloud asr session: %w", err)
	}
	s.CloudPlain = cloud.NewPlainService(cloudSess)
	s.uplink = s.CloudPlain
	return nil
}

// SetUplink reroutes the device's cloud-bound traffic through sink (the
// fleet ingest tier). The device's own cloud endpoint keeps terminating
// the channel — the sink decides on which shard/worker that happens.
func (s *System) SetUplink(sink supplicant.NetSink) {
	if s.cfg.Mode == ModeBaseline {
		s.mu.Lock()
		s.uplink = sink
		s.mu.Unlock()
		return
	}
	s.Supplicant.Route(CloudTarget, sink)
}

// CloudEndpoint returns the provider-side terminator of this device's
// traffic: the sealed service in secure modes, the plain service in
// baseline. Fleet shards host it.
func (s *System) CloudEndpoint() cloud.Provider {
	if s.cfg.Mode == ModeBaseline {
		return s.CloudPlain
	}
	return s.CloudSealed
}

// recognizerCache memoizes template training per (rate, noise, vocab):
// the trained asr.Model is immutable, so every system under the same
// training conditions shares one template pack and only pays for a
// per-device session. The key includes a digest of the vocabulary the
// templates are trained on — two configurations that share a sample rate
// and noise level but speak different word lists must not share a model.
var (
	recognizerMu    sync.Mutex
	recognizerCache = make(map[string]*asr.Model)
)

// vocabDigest fingerprints the ordered word list for cache keying.
func vocabDigest(words []string) uint64 {
	h := fnv.New64a()
	for _, w := range words {
		_, _ = h.Write([]byte(w))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

func trainedModel(vocab *sensitive.Vocabulary, voice audio.Voice) (*asr.Model, error) {
	trainVoice := voice
	trainVoice.Seed = 1000 // pre-training voice differs from runtime seeds
	words := vocab.Words()
	key := fmt.Sprintf("%d/%g/%016x", trainVoice.Rate, trainVoice.NoiseAmp, vocabDigest(words))
	recognizerMu.Lock()
	defer recognizerMu.Unlock()
	if m, ok := recognizerCache[key]; ok {
		return m, nil
	}
	m, err := asr.TrainModel(asr.DefaultConfig(trainVoice.Rate), words, trainVoice)
	if err != nil {
		return nil, err
	}
	recognizerCache[key] = m
	return m, nil
}

// buildSecure wires OP-TEE, the PTA/TA pair, the supplicant and the
// sealed cloud endpoint.
func (s *System) buildSecure() error {
	s.TEE = optee.New(s.Monitor, s.Platform.SecureHeap)
	s.Supplicant = supplicant.New(s.Clock, s.Cost)
	s.TEE.SetRPCHandler(s.Supplicant)

	storage, err := optee.NewStorage([]byte(fmt.Sprintf("device-huk-%d", s.cfg.Seed)))
	if err != nil {
		return fmt.Errorf("core storage: %w", err)
	}
	s.Storage = storage

	// Pre-train the classifier offline and seal its weights into secure
	// storage; the TA unseals them at session open (paper §IV.4:
	// "pre-trained ML classifier" shipped to the TA).
	if s.cfg.Mode == ModeHybridHE && s.cfg.SharedClassify {
		return fmt.Errorf("%w: hybrid-he classify cannot be shared — the HE handoff needs the sealed secret key on-device", ErrBadConfig)
	}
	var clf *classify.Classifier
	if (s.cfg.Mode == ModeSecureFilter || s.cfg.Mode == ModeHybridHE) && !s.cfg.SharedClassify {
		clf, err = TrainClassifier(s.cfg.Arch, s.Vocab, s.cfg.ModelSeed, s.cfg.TrainEpochs)
		if err != nil {
			return fmt.Errorf("core classifier: %w", err)
		}
		storage.Put(weightsObjectID, clf.SerializeWeights())
	}

	// Hybrid split: generate the HE keypair from the shared model seed
	// (the provider provisions one parameter set fleet-wide, like the
	// model pack), seal the secret key next to the weights, and stand up
	// the provider's blind-evaluation endpoint with the classifier's
	// first conv provisioned in the clear.
	var heParams he.Params
	if s.cfg.Mode == ModeHybridHE {
		heParams = he.DefaultParams()
		kp, err := he.KeyGen(heParams, s.cfg.ModelSeed)
		if err != nil {
			return fmt.Errorf("core he keygen: %w", err)
		}
		storage.Put(heSecretKeyID, kp.Secret.Marshal())
		s.HEPub = kp.Public
		if s.HEEval, err = he.NewEvaluator(heParams, s.Clock, s.Cost); err != nil {
			return fmt.Errorf("core he evaluator: %w", err)
		}
		providerEval, err := he.NewEvaluator(heParams, s.Clock, s.Cost)
		if err != nil {
			return fmt.Errorf("core he provider: %w", err)
		}
		s.HE = cloud.NewHEService(providerEval)
		split, err := classify.SplitText(clf)
		if err != nil {
			return fmt.Errorf("core he split: %w", err)
		}
		s.heSplit = split
		ps := split.Conv.Params()
		s.HE.ProvisionText(&he.Conv1D{
			K: split.Conv.K, Cin: split.Conv.Cin, Cout: split.Conv.Cout,
			W: ps[0].Value.Data, B: ps[1].Value.Data,
		})
	}

	// Cloud endpoint + handshake keys.
	keyRand := NewSeedReader(s.cfg.Seed^0xc10d, s.cfg.Seed+77)
	cloudID, err := relay.NewIdentity(keyRand)
	if err != nil {
		return fmt.Errorf("core cloud id: %w", err)
	}
	s.CloudSealed = cloud.NewService(cloud.NewIdentity(cloudID))
	s.Supplicant.Route(CloudTarget, s.CloudSealed)

	taID, err := relay.NewIdentity(keyRand)
	if err != nil {
		return fmt.Errorf("core ta id: %w", err)
	}
	if err := s.CloudSealed.Handshake(taID.PublicKey()); err != nil {
		return err
	}

	s.DriverPTA = NewDriverPTA(s.Driver)
	s.TEE.RegisterPTA(s.DriverPTA)

	// The attestation key lives with the TA: evidence is signed inside
	// the TEE, never by the normal world.
	var attestor *attest.Attestor
	if s.cfg.AttestKeySeed != 0 {
		attestor = attest.NewAttestor(s.cfg.DeviceID, attest.KeyFromSeed(s.cfg.AttestKeySeed))
	}

	ta, err := NewVoiceTA(VoiceTAConfig{
		TEE:          s.TEE,
		Storage:      storage,
		Recognizer:   s.Recognizer,
		Arch:         s.cfg.Arch,
		VocabSize:    s.Vocab.Size(),
		Vocab:        s.Vocab,
		Policy:       s.cfg.Policy,
		Filter:       s.cfg.Mode == ModeSecureFilter || s.cfg.Mode == ModeHybridHE,
		Hybrid:       s.cfg.Mode == ModeHybridHE,
		HEParams:     heParams,
		Identity:     taID,
		CloudPub:     cloudID.PublicKey(),
		Clock:        s.Clock,
		Cost:         s.Cost,
		Seed:         s.cfg.ModelSeed,
		Attestor:     attestor,
		ModelVersion: s.cfg.ModelVersion,
	})
	if err != nil {
		return fmt.Errorf("core voice ta: %w", err)
	}
	s.VoiceTA = ta
	s.TEE.RegisterTA(ta)
	return nil
}
