package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/attest"
	"repro/internal/ml/classify"
)

// attestRig is a secure system enrolled with a test verifier.
type attestRig struct {
	sys      *System
	verifier *attest.Verifier
	key      attest.DeviceKey
}

func newAttestRig(t *testing.T, mode Mode) *attestRig {
	t.Helper()
	const keySeed = 777
	sys, err := NewSystem(Config{
		Mode:          mode,
		Seed:          42,
		DeviceID:      "dev-under-test",
		AttestKeySeed: keySeed,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	key := attest.KeyFromSeed(keySeed)
	v := attest.NewVerifier(1, func(id string) (attest.DeviceKey, bool) {
		return key, id == "dev-under-test"
	})
	v.AllowMeasurement(VoiceTADigest, true)
	return &attestRig{sys: sys, verifier: v, key: key}
}

// packV2 publishes a version-2 pack for the rig's vocabulary, with a
// manifest token authorizing it for the device.
func (r *attestRig) packV2(t *testing.T) (attest.Pack, attest.ManifestToken) {
	t.Helper()
	const v2Seed = 4242
	clf, err := TrainClassifier(classify.ArchCNN, r.sys.Vocab, v2Seed, 2)
	if err != nil {
		t.Fatalf("train v2: %v", err)
	}
	pack := attest.Pack{Version: 2, ModelSeed: v2Seed, Text: clf.SerializeWeights()}
	tok, err := r.verifier.Manifest("dev-under-test", pack)
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	return pack, tok
}

func TestSystemAttestReportVerifies(t *testing.T) {
	r := newAttestRig(t, ModeSecureFilter)
	nonce := r.verifier.Challenge("dev-under-test")
	rep, err := r.sys.Attest(nonce)
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if rep.Code != VoiceTADigest || rep.ModelVersion != 1 || rep.DeviceID != "dev-under-test" {
		t.Fatalf("unexpected measurement: %+v", rep)
	}
	if err := r.verifier.Verify(rep); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// A bit-flipped report is rejected (and the nonce burns).
	nonce = r.verifier.Challenge("dev-under-test")
	rep, err = r.sys.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	rep.MAC[0] ^= 0xff
	if err := r.verifier.Verify(rep); !errors.Is(err, attest.ErrBadReport) {
		t.Fatalf("tampered report: got %v, want ErrBadReport", err)
	}
}

func TestUpdateModelTamperedPackRejected(t *testing.T) {
	r := newAttestRig(t, ModeSecureFilter)
	pack, tok := r.packV2(t)

	// Payload tampered in transit: the manifest digest no longer matches.
	bad := pack
	bad.Text = append([]byte(nil), pack.Text...)
	bad.Text[len(bad.Text)/2] ^= 0xff
	if err := r.sys.UpdateModel(bad, tok); !errors.Is(err, attest.ErrBadPack) {
		t.Fatalf("tampered pack: got %v, want ErrBadPack", err)
	}
	if got := r.sys.ModelVersion(); got != 1 {
		t.Fatalf("version moved to %d after rejected update", got)
	}
	// A forged manifest (bad MAC) is rejected too.
	forged := tok
	forged.MAC[3] ^= 0x01
	if err := r.sys.UpdateModel(pack, forged); !errors.Is(err, attest.ErrBadManifest) {
		t.Fatalf("forged manifest: got %v, want ErrBadManifest", err)
	}
	// The device still works on its v1 model after the failed updates.
	res, err := r.sys.RunSession(testUtterances()[:2])
	if err != nil {
		t.Fatalf("session after rejected update: %v", err)
	}
	if len(res.Utterances) != 2 {
		t.Fatalf("processed %d utterances", len(res.Utterances))
	}
}

func TestUpdateModelPersistsThroughSealedStorage(t *testing.T) {
	r := newAttestRig(t, ModeSecureFilter)
	pack, tok := r.packV2(t)
	if err := r.sys.UpdateModel(pack, tok); err != nil {
		t.Fatalf("UpdateModel: %v", err)
	}
	if got := r.sys.ModelVersion(); got != 2 {
		t.Fatalf("ModelVersion = %d, want 2", got)
	}
	// The versioned pack is sealed into secure storage, not plaintext.
	sealed, ok := r.sys.Storage.SealedBytes("voice-ta/model-pack-v2")
	if !ok {
		t.Fatal("model pack not persisted in secure storage")
	}
	if bytes.Contains(sealed, pack.Text[:32]) {
		t.Fatal("sealed pack leaks plaintext weights")
	}
	// The current-weights object now unseals to the v2 weights, so a
	// fresh session open picks the new model up from storage.
	blob, err := r.sys.Storage.Get(weightsObjectID)
	if err != nil {
		t.Fatalf("weights object: %v", err)
	}
	if !bytes.Equal(blob, pack.Text) {
		t.Fatal("current-weights object does not hold the v2 weights")
	}
	// Idempotent re-delivery of the installed version is a no-op.
	if err := r.sys.UpdateModel(pack, tok); err != nil {
		t.Fatalf("re-delivery: %v", err)
	}
	// An older pack is rejected (no rollback).
	old := attest.Pack{Version: 1, ModelSeed: 42, Text: pack.Text}
	oldTok, err := r.verifier.Manifest("dev-under-test", old)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.sys.UpdateModel(old, oldTok); !errors.Is(err, attest.ErrBadPack) {
		t.Fatalf("rollback: got %v, want ErrBadPack", err)
	}
}

// TestHotSwapDuringBatchedInference is the rollout race test: a model
// update lands through a management session while a batched inference
// session is mid-run. Run with -race. No batch may be dropped, and the
// device must end on the new version.
func TestHotSwapDuringBatchedInference(t *testing.T) {
	r := newAttestRig(t, ModeSecureFilter)
	pack, tok := r.packV2(t)

	utts := append(testUtterances(), testUtterances()...) // 12 utterances, 3 batches
	var (
		wg     sync.WaitGroup
		res    *SessionResult
		runErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, runErr = r.sys.RunSessionBatched(utts, 4)
	}()
	if err := r.sys.UpdateModel(pack, tok); err != nil {
		t.Errorf("concurrent UpdateModel: %v", err)
	}
	wg.Wait()
	if runErr != nil {
		t.Fatalf("batched session during hot-swap: %v", runErr)
	}
	if len(res.Utterances) != len(utts) {
		t.Fatalf("dropped batches: %d/%d utterances processed", len(res.Utterances), len(utts))
	}
	if got := r.sys.ModelVersion(); got != 2 {
		t.Fatalf("ModelVersion = %d after hot-swap, want 2", got)
	}
	// The capture stream survived the management session's open/close
	// (session refcounting): a follow-up run still captures fine.
	if _, err := r.sys.RunSessionBatched(testUtterances()[:2], 2); err != nil {
		t.Fatalf("session after hot-swap: %v", err)
	}
}

func TestCameraUpdateModel(t *testing.T) {
	const keySeed = 888
	sys, err := NewCameraSystem(CameraConfig{
		Mode:          ModeSecureFilter,
		Seed:          42,
		DeviceID:      "cam-under-test",
		AttestKeySeed: keySeed,
	})
	if err != nil {
		t.Fatalf("NewCameraSystem: %v", err)
	}
	key := attest.KeyFromSeed(keySeed)
	v := attest.NewVerifier(1, func(id string) (attest.DeviceKey, bool) {
		return key, id == "cam-under-test"
	})
	v.AllowMeasurement(CameraTADigest, true)

	rep, err := sys.Attest(v.Challenge("cam-under-test"))
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if err := v.Verify(rep); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Code != CameraTADigest || rep.ModelVersion != 1 {
		t.Fatalf("unexpected measurement: %+v", rep)
	}

	clf, err := TrainImageClassifier(5150)
	if err != nil {
		t.Fatal(err)
	}
	pack := attest.Pack{Version: 2, ModelSeed: 5150, Image: clf.SerializeWeights()}
	tok, err := v.Manifest("cam-under-test", pack)
	if err != nil {
		t.Fatal(err)
	}
	// Tampered image payload rejected first.
	bad := pack
	bad.Image = append([]byte(nil), pack.Image...)
	bad.Image[0] ^= 0xff
	if err := sys.UpdateModel(bad, tok); !errors.Is(err, attest.ErrBadPack) {
		t.Fatalf("tampered pack: got %v, want ErrBadPack", err)
	}
	if err := sys.UpdateModel(pack, tok); err != nil {
		t.Fatalf("UpdateModel: %v", err)
	}
	if got := sys.ModelVersion(); got != 2 {
		t.Fatalf("ModelVersion = %d, want 2", got)
	}
	if _, ok := sys.Storage.SealedBytes("camera-ta/model-pack-v2"); !ok {
		t.Fatal("camera pack not persisted in secure storage")
	}
	// The doorbell still processes frames on the new model.
	res, err := sys.RunSession(daySenes()[:4])
	if err != nil {
		t.Fatalf("session after update: %v", err)
	}
	if res.Frames != 4 {
		t.Fatalf("processed %d frames, want 4", res.Frames)
	}
}
