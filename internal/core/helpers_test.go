package core

import (
	"testing"

	"repro/internal/ml/classify"
	"repro/internal/sensitive"
)

func TestContainsWord(t *testing.T) {
	tests := []struct {
		payload string
		word    string
		want    bool
	}{
		{"xxpasswordyy", "password", true},
		{"password", "password", true},
		{"passwor", "password", false},
		{"", "password", false},
		{"abc", "", false},
	}
	for _, tt := range tests {
		if got := containsWord([]byte(tt.payload), tt.word); got != tt.want {
			t.Errorf("containsWord(%q,%q) = %v", tt.payload, tt.word, got)
		}
	}
}

func TestUtteranceAudioVariesAcrossIndexButDeterministic(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeBaseline, Seed: 42})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	u := sensitive.Utterance{Words: []string{"play", "music"}}
	// utteranceAudio returns scratch-backed PCM valid until the next
	// call; retain copies to compare renditions.
	a := sys.utteranceAudio(0, u).Clone()
	b := sys.utteranceAudio(1, u).Clone()
	c := sys.utteranceAudio(0, u)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("lengths differ")
	}
	same := true
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different utterance indices produced identical audio")
	}
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			t.Fatal("same index produced different audio")
		}
	}
}

func TestTrainClassifierMemoization(t *testing.T) {
	vocab := sensitive.NewVocabulary()
	a, err := TrainClassifier(classify.ArchCNN, vocab, 777, 2)
	if err != nil {
		t.Fatalf("TrainClassifier: %v", err)
	}
	b, err := TrainClassifier(classify.ArchCNN, vocab, 777, 2)
	if err != nil {
		t.Fatalf("TrainClassifier (cached): %v", err)
	}
	// Distinct instances, identical weights.
	if a == b {
		t.Error("cache returned the same instance (unsafe sharing)")
	}
	feats := a.TokensToFeatures(vocab.Encode([]string{"my", "password"}))
	pa, err := a.Predict(feats)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	pb, err := b.Predict(feats)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if pa != pb {
		t.Error("memoized classifier disagrees with original")
	}
}

func TestStageCyclesTotal(t *testing.T) {
	s := StageCycles{Capture: 1, Transcribe: 2, Classify: 3, Relay: 4}
	if s.Total() != 10 {
		t.Errorf("Total = %d", s.Total())
	}
}

func TestConfigDefaultsFilled(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeSecureFilter})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	cfg := sys.Config()
	if cfg.Arch != classify.ArchCNN || cfg.BufBytes != 4096 || cfg.FreqHz == 0 || cfg.TrainEpochs == 0 {
		t.Errorf("defaults not filled: %+v", cfg)
	}
}
