package core

// Device factory: a uniform construction-and-run surface over the two
// peripheral classes (smart speaker, camera doorbell) so orchestration
// layers (internal/fleet) can instantiate mixed populations without
// caring which concrete pipeline sits behind a spec.

import (
	"fmt"

	"repro/internal/attest"
	"repro/internal/audio"
	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/ml/classify"
	"repro/internal/obs"
	"repro/internal/peripheral"
	"repro/internal/relay"
	"repro/internal/sensitive"
	"repro/internal/supplicant"
	"repro/internal/tz"
)

// BaselineAgentDigest is the measured identity of the normal-world
// baseline agent. Baseline deployments have no TEE, so their
// "attestation" is software-only — exactly as trustworthy as the OS it
// runs on. The verifier's policy makes that explicit by enrolling this
// digest as unversioned (baseline devices hold no provisioned model and
// are exempt from the minimum-version admission policy).
var BaselineAgentDigest = attest.MeasureCode("periguard", "normal-world/baseline-agent")

// DeviceKind selects the peripheral class.
type DeviceKind int

const (
	// DeviceSpeaker is the paper's smart speaker (mic → ASR → filter).
	DeviceSpeaker DeviceKind = iota + 1
	// DeviceDoorbell is the §IV.6 camera doorbell (frames → image filter).
	DeviceDoorbell
)

// String returns the kind name.
func (k DeviceKind) String() string {
	switch k {
	case DeviceSpeaker:
		return "speaker"
	case DeviceDoorbell:
		return "doorbell"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrBadKind is returned for unknown device kinds.
var ErrBadKind = fmt.Errorf("%w: unknown device kind", ErrBadConfig)

// DeviceSpec parameterizes one fleet member.
type DeviceSpec struct {
	Kind DeviceKind
	Mode Mode
	// Arch and Policy apply to secure-filter speakers.
	Arch   classify.Arch
	Policy relay.Policy
	// Seed is the device's own randomness; ModelSeed the provisioned
	// model's (0 = Seed). Fleets share one ModelSeed across members.
	Seed      uint64
	ModelSeed uint64
	FreqHz    uint64
	NoiseAmp  float64
	BufBytes  int
	// Batch > 1 enables TA-side batched processing on secure speakers
	// (capped at MaxBatch).
	Batch int
	// DeviceID names the device on an attested ingest tier;
	// AttestKeySeed derives its attestation key (0 disables attestation);
	// ModelVersion is the provisioned pack version it boots with (0 = 1
	// when attestation is enabled). See Config.
	DeviceID      string
	AttestKeySeed uint64
	ModelVersion  uint64
	// SharedClassify marks a secure-filter speaker whose classify stage
	// is served by a shared cross-device scheduler; the per-device
	// classifier build is skipped. See Config.SharedClassify.
	SharedClassify bool
}

// Pretrain warms every shared-model cache the given population needs —
// the ASR template pack per training condition, the text classifier per
// (arch, model seed) and the image classifier per model seed — so that
// lazily constructed devices only ever hit memoized models. It mirrors
// the defaulting rules the per-device constructors apply.
func Pretrain(specs []DeviceSpec) error {
	vocab := sensitive.NewVocabulary()
	type textKey struct {
		arch classify.Arch
		seed uint64
	}
	asrDone := make(map[float64]bool)
	textDone := make(map[textKey]bool)
	imageDone := make(map[uint64]bool)
	for _, spec := range specs {
		switch spec.Kind {
		case DeviceSpeaker:
			// Run the spec through the same defaulting NewSystem applies,
			// so the warmed cache keys are exactly the ones lazy
			// construction will look up.
			cfg := Config{
				Mode:      spec.Mode,
				Arch:      spec.Arch,
				Policy:    spec.Policy,
				BufBytes:  spec.BufBytes,
				Seed:      spec.Seed,
				ModelSeed: spec.ModelSeed,
				FreqHz:    spec.FreqHz,
				NoiseAmp:  spec.NoiseAmp,
			}
			if err := cfg.fillDefaults(); err != nil {
				return fmt.Errorf("pretrain: %w", err)
			}
			if !asrDone[cfg.NoiseAmp] {
				voice := audio.DefaultVoice(cfg.Seed)
				voice.NoiseAmp = cfg.NoiseAmp
				if _, err := trainedModel(vocab, voice); err != nil {
					return fmt.Errorf("pretrain asr: %w", err)
				}
				asrDone[cfg.NoiseAmp] = true
			}
			if cfg.Mode == ModeSecureFilter || cfg.Mode == ModeHybridHE {
				k := textKey{cfg.Arch, cfg.ModelSeed}
				if !textDone[k] {
					if _, err := TrainClassifier(cfg.Arch, vocab, cfg.ModelSeed, cfg.TrainEpochs); err != nil {
						return fmt.Errorf("pretrain classifier: %w", err)
					}
					textDone[k] = true
				}
			}
		case DeviceDoorbell:
			modelSeed := spec.ModelSeed
			if modelSeed == 0 {
				modelSeed = spec.Seed // CameraConfig defaulting
			}
			if (spec.Mode == ModeSecureFilter || spec.Mode == ModeHybridHE) && !imageDone[modelSeed] {
				if _, err := TrainImageClassifier(modelSeed); err != nil {
					return fmt.Errorf("pretrain image classifier: %w", err)
				}
				imageDone[modelSeed] = true
			}
		}
	}
	return nil
}

// Device is one constructed fleet member. Exactly one of Speaker and
// Doorbell is non-nil, matching Spec.Kind.
type Device struct {
	Spec     DeviceSpec
	Speaker  *System
	Doorbell *CameraSystem

	// softAttestor signs for baseline devices, which have no TEE to
	// attest from; see BaselineAgentDigest.
	softAttestor *attest.Attestor
}

// NewDevice builds the pipeline for the spec.
func NewDevice(spec DeviceSpec) (*Device, error) {
	switch spec.Kind {
	case DeviceSpeaker:
		sys, err := NewSystem(Config{
			Mode:           spec.Mode,
			Arch:           spec.Arch,
			Policy:         spec.Policy,
			BufBytes:       spec.BufBytes,
			Seed:           spec.Seed,
			ModelSeed:      spec.ModelSeed,
			FreqHz:         spec.FreqHz,
			NoiseAmp:       spec.NoiseAmp,
			DeviceID:       spec.DeviceID,
			AttestKeySeed:  spec.AttestKeySeed,
			ModelVersion:   spec.ModelVersion,
			SharedClassify: spec.SharedClassify,
		})
		if err != nil {
			return nil, fmt.Errorf("speaker: %w", err)
		}
		d := &Device{Spec: spec, Speaker: sys}
		d.initSoftAttestor()
		return d, nil
	case DeviceDoorbell:
		sys, err := NewCameraSystem(CameraConfig{
			Mode:          spec.Mode,
			Seed:          spec.Seed,
			ModelSeed:     spec.ModelSeed,
			FreqHz:        spec.FreqHz,
			DeviceID:      spec.DeviceID,
			AttestKeySeed: spec.AttestKeySeed,
			ModelVersion:  spec.ModelVersion,
		})
		if err != nil {
			return nil, fmt.Errorf("doorbell: %w", err)
		}
		d := &Device{Spec: spec, Doorbell: sys}
		d.initSoftAttestor()
		return d, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, int(spec.Kind))
	}
}

// SetClassifyService wires the shared cross-device classify service into
// a secure speaker (no-op for doorbells and baseline devices).
func (d *Device) SetClassifyService(svc ClassifyService) {
	if d.Speaker != nil {
		d.Speaker.SetClassifyService(svc)
	}
}

func (d *Device) initSoftAttestor() {
	if d.Spec.AttestKeySeed != 0 && d.Spec.Mode == ModeBaseline {
		d.softAttestor = attest.NewAttestor(d.Spec.DeviceID, attest.KeyFromSeed(d.Spec.AttestKeySeed))
	}
}

// Attest produces the device's attestation evidence for a verifier
// challenge: secure devices sign inside their TA; baseline devices sign
// with the software agent (BaselineAgentDigest, model version 0).
func (d *Device) Attest(nonce attest.Nonce) (attest.Report, error) {
	if d.Spec.Mode == ModeBaseline {
		if d.softAttestor == nil {
			return attest.Report{}, fmt.Errorf("device %s: attestation not provisioned", d.Spec.DeviceID)
		}
		return d.softAttestor.Attest(nonce, attest.Measurement{Code: BaselineAgentDigest}), nil
	}
	if d.Speaker != nil {
		return d.Speaker.Attest(nonce)
	}
	return d.Doorbell.Attest(nonce)
}

// UpdateModel delivers a published model pack to the device; baseline
// devices hold no on-device model and return nil.
func (d *Device) UpdateModel(pack attest.Pack, tok attest.ManifestToken) error {
	if d.Spec.Mode == ModeBaseline {
		return nil
	}
	if d.Speaker != nil {
		return d.Speaker.UpdateModel(pack, tok)
	}
	return d.Doorbell.UpdateModel(pack, tok)
}

// ModelVersion returns the model-pack version the device holds (0 for
// baseline devices).
func (d *Device) ModelVersion() uint64 {
	if d.Speaker != nil {
		return d.Speaker.ModelVersion()
	}
	return d.Doorbell.ModelVersion()
}

// RotateKey redeems a verifier-issued key-rotation token: secure devices
// verify and redeem it inside their TA (sealing the new epoch next to
// their model weights); baseline devices rotate the software agent's
// signer. Returns the key epoch the device signs under after the
// rotation.
func (d *Device) RotateKey(tok attest.RotationToken) (uint64, error) {
	if d.Spec.Mode == ModeBaseline {
		if d.softAttestor == nil {
			return 0, fmt.Errorf("device %s: attestation not provisioned", d.Spec.DeviceID)
		}
		next, err := d.softAttestor.Rotated(tok)
		if err != nil {
			return 0, fmt.Errorf("device %s: %w", d.Spec.DeviceID, err)
		}
		d.softAttestor = next
		return next.Epoch(), nil
	}
	if d.Speaker != nil {
		return d.Speaker.RotateKey(tok)
	}
	return d.Doorbell.RotateKey(tok)
}

// KeyEpoch returns the attestation key epoch the device signs under.
func (d *Device) KeyEpoch() uint64 {
	if d.Spec.Mode == ModeBaseline {
		if d.softAttestor == nil {
			return 0
		}
		return d.softAttestor.Epoch()
	}
	if d.Speaker != nil {
		return d.Speaker.KeyEpoch()
	}
	return d.Doorbell.KeyEpoch()
}

// SetTrace installs the device's sampled telemetry trace context (nil
// for untraced runs and sampled-out devices — the zero-cost path).
func (d *Device) SetTrace(tc *obs.TraceContext) {
	if d.Speaker != nil {
		d.Speaker.SetTrace(tc)
		return
	}
	d.Doorbell.SetTrace(tc)
}

// Clock returns the device's virtual clock, so delivery-path wrappers
// (retry backoff, fault injectors) charge their virtual time to the
// right device.
func (d *Device) Clock() *tz.Clock {
	if d.Speaker != nil {
		return d.Speaker.Clock
	}
	return d.Doorbell.Clock
}

// SetUplink reroutes the device's cloud-bound traffic through sink.
func (d *Device) SetUplink(sink supplicant.NetSink) {
	if d.Speaker != nil {
		d.Speaker.SetUplink(sink)
		return
	}
	d.Doorbell.SetUplink(sink)
}

// CloudEndpoint returns the provider-side terminator of the device's
// traffic (nil for devices that never uplink: baseline doorbells).
func (d *Device) CloudEndpoint() cloud.Provider {
	if d.Speaker != nil {
		return d.Speaker.CloudEndpoint()
	}
	return d.Doorbell.CloudEndpoint()
}

// DeviceWorkload is the input stream for one device run; the field
// matching the device's kind is used.
type DeviceWorkload struct {
	Utterances []sensitive.Utterance
	Scenes     []peripheral.Scene
}

// DeviceResult pairs a spec with the session outcome of its kind.
type DeviceResult struct {
	Spec    DeviceSpec
	Session *SessionResult       // speakers
	Camera  *CameraSessionResult // doorbells
}

// Run processes the workload end to end. Secure speakers with
// Spec.Batch > 1 take the TA-batched path.
func (d *Device) Run(w DeviceWorkload) (*DeviceResult, error) {
	if d.Speaker != nil {
		res, err := d.Speaker.RunSessionBatched(w.Utterances, d.Spec.Batch)
		if err != nil {
			return nil, err
		}
		return &DeviceResult{Spec: d.Spec, Session: res}, nil
	}
	res, err := d.Doorbell.RunSession(w.Scenes)
	if err != nil {
		return nil, err
	}
	return &DeviceResult{Spec: d.Spec, Camera: res}, nil
}

// Latency returns the run's per-item virtual-cycle recorder.
func (r *DeviceResult) Latency() *metrics.Recorder {
	if r.Session != nil {
		return r.Session.Latency
	}
	return r.Camera.Latency
}

// CloudEvents returns how many cloud-bound payloads the device emitted
// (the number its shard must have ingested for no frame to be lost).
func (r *DeviceResult) CloudEvents() int {
	if r.Session != nil {
		n := 0
		if r.Spec.Mode == ModeBaseline {
			return len(r.Session.Utterances)
		}
		for _, u := range r.Session.Utterances {
			if u.Forwarded {
				n++
			}
		}
		return n
	}
	if r.Spec.Mode == ModeBaseline {
		return 0 // baseline doorbells never uplink in this model
	}
	return r.Camera.ForwardedFrames
}
