package core

// Cross-mode leakage golden test: one all-sensitive workload, every
// registered mode, and the provider-observable counters pinned exactly.
// The pins are the privacy contract — a change to any mode's pipeline
// that moves a single byte or token past the provider fails here, and
// hybrid-he is held to zero cleartext feature bytes by construction.

import (
	"testing"

	"repro/internal/ml/classify"
	"repro/internal/relay"
	"repro/internal/sensitive"
)

func TestCrossModeLeakageGolden(t *testing.T) {
	type golden struct {
		audioBytes int
		tokens     int
		sensTokens int
		events     int
	}
	// Pinned against the seed-10 all-sensitive workload below. The
	// secure-filter and hybrid-he rows must stay identical except for the
	// ciphertext channel: the HE split moves the first layer, not the
	// verdicts.
	want := map[Mode]golden{
		ModeBaseline:       {audioBytes: 821760, tokens: 72, sensTokens: 13, events: 10},
		ModeSecureNoFilter: {audioBytes: 0, tokens: 72, sensTokens: 13, events: 10},
		ModeSecureFilter:   {audioBytes: 0, tokens: 0, sensTokens: 0, events: 0},
		ModeHybridHE:       {audioBytes: 0, tokens: 0, sensTokens: 0, events: 0},
	}
	utts, err := sensitive.Generate(sensitive.GenConfig{N: 10, SensitiveFraction: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range utts {
		if !u.Sensitive {
			t.Fatal("workload is not all-sensitive")
		}
	}
	for _, mode := range Modes() {
		cfg := Config{Mode: mode, Policy: relay.PolicyPassThrough, Seed: 10}
		if mode == ModeSecureFilter || mode == ModeHybridHE {
			cfg.Policy = relay.PolicyBlock
			cfg.Arch = classify.ArchCNN
		}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		res, err := sys.RunSession(utts)
		if err != nil {
			t.Fatalf("%s session: %v", mode, err)
		}
		w := want[mode]
		if res.CloudAudit.AudioBytes != w.audioBytes ||
			res.CloudAudit.TokensSeen != w.tokens ||
			res.CloudAudit.SensitiveTokens != w.sensTokens ||
			res.CloudAudit.Events != w.events {
			t.Errorf("%s provider counters drifted: audio %d tokens %d sens %d events %d, want %+v",
				mode, res.CloudAudit.AudioBytes, res.CloudAudit.TokensSeen,
				res.CloudAudit.SensitiveTokens, res.CloudAudit.Events, w)
		}
		if mode != ModeHybridHE {
			if sys.HE != nil {
				t.Errorf("%s has an HE service", mode)
			}
			continue
		}
		audit := sys.HE.Audit()
		if audit.CleartextFeatureBytes != 0 {
			t.Errorf("hybrid-he exposed %d cleartext feature bytes", audit.CleartextFeatureBytes)
		}
		if audit.Evals != len(utts) {
			t.Errorf("hybrid-he evaluated %d circuits, want %d", audit.Evals, len(utts))
		}
		if audit.CiphertextBytesIn == 0 || audit.CiphertextBytesOut == 0 {
			t.Error("hybrid-he moved no ciphertext")
		}
	}
}
