package core

// This file implements the paper's §IV.6 generalization goal — "harmonize
// our approach so it could be applied to a larger and more generic set of
// peripherals and data" — by running a second peripheral class, a camera,
// through the same TrustZone/OP-TEE pipeline: camera → camera PTA →
// camera TA (image classifier filter) → sealed relay → cloud. For images
// the paper notes "a pre-trained ML classifier alone will be sufficient"
// (§IV.4): there is no transcription stage.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/attest"
	"repro/internal/cloud"
	"repro/internal/he"
	"repro/internal/kernel"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/ml/classify"
	"repro/internal/ml/layers"
	"repro/internal/ml/train"
	"repro/internal/obs"
	"repro/internal/optee"
	"repro/internal/peripheral"
	"repro/internal/power"
	"repro/internal/relay"
	"repro/internal/supplicant"
	"repro/internal/teec"
	"repro/internal/tz"
)

// Camera component UUIDs and commands.
const (
	UUIDCameraPTA = "pta.camera.capture"
	UUIDCameraTA  = "ta.camera.guard"
	// CmdCameraGrab (PTA): capture the next frame into params[0]
	// (MemrefOut); params[1].A returns bytes written (0 = no frame).
	CmdCameraGrab uint32 = 0x30
	// CmdProcessFrame (TA): grab, classify and relay-or-block one frame;
	// params[0].A returns 1 if forwarded.
	CmdProcessFrame uint32 = 0x31
	// CmdCameraAttest / CmdCameraUpdateModel / CmdCameraRotateKey: the
	// camera twins of the voice TA's CmdAttest / CmdUpdateModel /
	// CmdRotateKey, same parameter layouts.
	CmdCameraAttest      uint32 = 0x32
	CmdCameraUpdateModel uint32 = 0x33
	CmdCameraRotateKey   uint32 = 0x34
	// CmdCameraFinishHE (TA, ModeHybridHE): complete one frame whose first
	// conv layer the provider evaluated homomorphically. params[0] is the
	// provider's result ciphertext (MemrefIn), params[1] the raw frame the
	// normal world captured (MemrefIn, relayed sealed if the TA's tail
	// clears it); params[2].A returns 1 if forwarded.
	CmdCameraFinishHE uint32 = 0x35

	cameraFrameSide  = 24
	cameraFrameBytes = cameraFrameSide * cameraFrameSide
	// cameraWeightsID is the secure-storage object of the image model.
	cameraWeightsID = "camera-ta/classifier-weights"
	// cameraHESecretKeyID is the sealed HE secret key (ModeHybridHE); the
	// camera twin of the voice TA's heSecretKeyID.
	cameraHESecretKeyID = "camera-ta/he-secret-key"
	// cameraKeyEpochID is the sealed key-epoch record; see the voice TA's
	// keyEpochObjectID.
	cameraKeyEpochID = "camera-ta/key-epoch"
	// NameFrame is the relay event name for camera frames.
	NameFrame = "Camera.Frame"
)

// CameraTADigest is the measured code identity of the camera TA.
var CameraTADigest = attest.MeasureCode("periguard", UUIDCameraTA)

// cameraPackObjectID is the secure-storage id of a provisioned pack.
func cameraPackObjectID(version uint64) string {
	return fmt.Sprintf("camera-ta/model-pack-v%d", version)
}

// TrainImageClassifier pre-trains (memoized) the person-detection model.
// The lock is held across training so concurrent fleet builders sharing a
// ModelSeed train once; see TrainClassifier.
func TrainImageClassifier(seed uint64) (*classify.Classifier, error) {
	key := fmt.Sprintf("image/%d", seed)
	rng := NewRNG(seed, seed^SaltImage)
	clf, err := classify.NewImage(rng, cameraFrameSide, cameraFrameSide)
	if err != nil {
		return nil, err
	}
	trainedMu.Lock()
	defer trainedMu.Unlock()
	if blob, ok := trainedWeights[key]; ok {
		if err := clf.LoadWeights(blob); err != nil {
			return nil, err
		}
		return clf, nil
	}
	const n = 160
	samples := make([]train.Sample, 0, n)
	for i := 0; i < n; i++ {
		label := i % 2
		scene := peripheral.SceneEmpty
		if label == 1 {
			scene = peripheral.ScenePerson
		}
		im := peripheral.SynthesizeImage(scene, seed*31+uint64(i))
		samples = append(samples, train.Sample{X: im.Floats(), Y: label})
	}
	if _, err := train.Fit(clf.Model(), train.NewAdam(0.005), samples, train.Config{
		Epochs: 6, BatchSize: 16, Seed: seed, Shape: clf.InputShape(),
	}); err != nil {
		return nil, err
	}
	trainedWeights[key] = clf.SerializeWeights()
	return clf, nil
}

// CameraPTA exposes the camera to the secure world. It owns a frame
// buffer in secure RAM (the TrustZone-protected equivalent of the CSI/ISP
// capture buffer) and keeps the per-frame ground truth for the
// experiment's audit — truth never crosses into the TA.
type CameraPTA struct {
	cam   *peripheral.Camera
	mem   *memory.PhysMem
	heap  *memory.Heap
	world tz.World
	clock *tz.Clock
	cost  tz.CostModel

	mu      sync.Mutex
	bufAddr uint64
	truth   []peripheral.Scene
}

var _ optee.TA = (*CameraPTA)(nil)

// NewCameraPTA wires the PTA to the camera and the secure heap.
func NewCameraPTA(cam *peripheral.Camera, mem *memory.PhysMem, heap *memory.Heap, world tz.World, clock *tz.Clock, cost tz.CostModel) *CameraPTA {
	return &CameraPTA{cam: cam, mem: mem, heap: heap, world: world, clock: clock, cost: cost}
}

// UUID implements optee.TA.
func (p *CameraPTA) UUID() string { return UUIDCameraPTA }

// Open implements optee.TA: it allocates the capture frame buffer.
func (p *CameraPTA) Open(sessionID uint32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bufAddr != 0 {
		return nil
	}
	addr, err := p.heap.Alloc(cameraFrameBytes)
	if err != nil {
		return fmt.Errorf("camera pta: %w", err)
	}
	p.bufAddr = addr
	return nil
}

// Close implements optee.TA.
func (p *CameraPTA) Close(sessionID uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bufAddr != 0 {
		_ = p.mem.Zero(p.world, p.bufAddr, cameraFrameBytes)
		_ = p.heap.Free(p.bufAddr)
		p.bufAddr = 0
	}
}

// BufferAddr returns the frame buffer address (snooping target).
func (p *CameraPTA) BufferAddr() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bufAddr
}

// Truth returns the ground-truth scenes captured so far (experiment-side
// audit data; never exposed through the TEE interface).
func (p *CameraPTA) Truth() []peripheral.Scene {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]peripheral.Scene(nil), p.truth...)
}

// Invoke implements optee.TA.
func (p *CameraPTA) Invoke(sessionID uint32, cmd uint32, params *optee.Params) error {
	switch cmd {
	case CmdCameraGrab:
		if params[0].Type != optee.MemrefOut || len(params[0].Buf) < cameraFrameBytes {
			return fmt.Errorf("%w: CmdCameraGrab needs %d-byte MemrefOut", optee.ErrBadParam, cameraFrameBytes)
		}
		im, scene, ok := p.cam.Capture()
		params[1].Type = optee.ValueOut
		if !ok {
			params[1].A = 0
			return nil
		}
		p.mu.Lock()
		addr := p.bufAddr
		p.truth = append(p.truth, scene)
		p.mu.Unlock()
		if addr == 0 {
			return fmt.Errorf("%w: camera pta not opened", optee.ErrBadSession)
		}
		// Sensor DMA into the (secure) frame buffer, then copy to the
		// caller's buffer.
		if err := p.mem.WriteAt(p.world, addr, im.Pix); err != nil {
			return fmt.Errorf("camera dma: %w", err)
		}
		p.clock.Advance(tz.Cycles(len(im.Pix)) * p.cost.DMAPerByte)
		if err := p.mem.ReadAt(p.world, addr, params[0].Buf[:cameraFrameBytes]); err != nil {
			return fmt.Errorf("camera copy-out: %w", err)
		}
		p.clock.Advance(tz.Cycles(cameraFrameBytes) * p.cost.CopyPerByte)
		params[1].A = cameraFrameBytes
		return nil
	default:
		return fmt.Errorf("%w: camera pta cmd %#x", optee.ErrBadParam, cmd)
	}
}

// ProcessedFrame is the camera TA's per-frame record.
type ProcessedFrame struct {
	Flagged   bool
	Forwarded bool
	// Shed marks a forwarded frame the ingest frontend dropped under
	// queue pressure (cloud.ErrShed); see ProcessedUtterance.Shed.
	Shed bool
	// Expired marks a forwarded frame whose delivery retry budget ran out
	// (cloud.ErrExpired); see ProcessedUtterance.Expired.
	Expired bool
	Cycles  tz.Cycles
	// Stage decomposition of Cycles (the camera path has no transcribe
	// stage) plus the sealed event size, for telemetry spans.
	Grab       tz.Cycles
	Classify   tz.Cycles
	Relay      tz.Cycles
	SealedSize int
}

// CameraTA classifies frames in the TEE and relays only benign ones.
type CameraTA struct {
	tee     *optee.OS
	storage *optee.Storage
	channel *relay.Channel
	clock   *tz.Clock
	cost    tz.CostModel

	mu           sync.Mutex
	classifier   *classify.Classifier
	seed         uint64
	attestor     *attest.Attestor
	modelVersion uint64
	processed    []ProcessedFrame
	messageID    uint64

	// Hybrid HE+TEE split (ModeHybridHE): hybrid gates CmdCameraFinishHE
	// and heParams parameterizes the in-TA evaluator that decrypts the
	// provider's handoff under the sealed secret key.
	hybrid   bool
	heParams he.Params

	// Per-TA frame scratch: invocations are serialized per device, so
	// the grab buffer and feature vector are reused across frames.
	frameBuf  []byte
	frameFeat []float32
}

var _ optee.TA = (*CameraTA)(nil)

// NewCameraTA constructs the TA. attestor may be nil outside attested
// fleets; modelVersion is the provisioned pack version the TA boots
// with. A sealed key-epoch record left by an earlier instance's
// CmdCameraRotateKey is restored, so a restart resumes signing at the
// rotated epoch.
func NewCameraTA(tee *optee.OS, storage *optee.Storage, id *relay.Identity, cloudPub []byte, clock *tz.Clock, cost tz.CostModel, seed uint64, attestor *attest.Attestor, modelVersion uint64) (*CameraTA, error) {
	ch, err := relay.NewChannel(id, cloudPub, true)
	if err != nil {
		return nil, fmt.Errorf("camera ta channel: %w", err)
	}
	return &CameraTA{
		tee: tee, storage: storage, channel: ch, clock: clock, cost: cost,
		seed: seed, attestor: restoreKeyEpoch(storage, cameraKeyEpochID, attestor),
		modelVersion: modelVersion,
	}, nil
}

// UUID implements optee.TA.
func (t *CameraTA) UUID() string { return UUIDCameraTA }

// EnableHybridHE arms the HE→TEE handoff (ModeHybridHE): the TA will
// accept CmdCameraFinishHE and decrypt provider results under the
// sealed secret key using this parameter set.
func (t *CameraTA) EnableHybridHE(p he.Params) {
	t.mu.Lock()
	t.hybrid = true
	t.heParams = p
	t.mu.Unlock()
}

// ModelVersion returns the version of the model pack the TA holds.
func (t *CameraTA) ModelVersion() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.modelVersion
}

// attestReport signs the TA's current measurement over a challenge
// nonce; the camera twin of VoiceTA.attestReport.
func (t *CameraTA) attestReport(nonce attest.Nonce) (attest.Report, error) {
	t.mu.Lock()
	attestor, version := t.attestor, t.modelVersion
	t.mu.Unlock()
	if attestor == nil {
		return attest.Report{}, errors.New("camera ta: attestation not provisioned")
	}
	t.clock.Advance(2000) // HMAC evidence; see VoiceTA.attestReport
	return attestor.Attest(nonce, attest.Measurement{Code: CameraTADigest, ModelVersion: version}), nil
}

// KeyEpoch returns the key epoch the TA currently signs evidence under.
func (t *CameraTA) KeyEpoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attestor == nil {
		return 0
	}
	return t.attestor.Epoch()
}

// rotateKey redeems a key-rotation token; the camera twin of
// VoiceTA.rotateKey (same verify → seal epoch → swap-signer sequence).
func (t *CameraTA) rotateKey(tokenBytes []byte) (uint64, error) {
	tok, err := attest.UnmarshalRotationToken(tokenBytes)
	if err != nil {
		return 0, fmt.Errorf("camera ta rotate: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attestor == nil {
		return 0, errors.New("camera ta: attestation not provisioned")
	}
	next, err := t.attestor.Rotated(tok)
	if err != nil {
		return 0, fmt.Errorf("camera ta rotate: %w", err)
	}
	var rec [8]byte
	binary.LittleEndian.PutUint64(rec[:], next.Epoch())
	t.storage.Put(cameraKeyEpochID, rec[:])
	t.clock.Advance(4000) // MAC verify + key derivation; see VoiceTA.rotateKey
	t.attestor = next
	return next.Epoch(), nil
}

// updateModel authenticates a published pack against the per-device
// manifest, persists it through sealed storage and hot-swaps the image
// classifier; see VoiceTA.updateModel for the speaker-side twin.
func (t *CameraTA) updateModel(packBytes, tokenBytes []byte) (uint64, error) {
	t.mu.Lock()
	attestor := t.attestor
	t.mu.Unlock()
	if attestor == nil {
		return 0, errors.New("camera ta: attestation not provisioned")
	}
	pack, err := attest.DecodePack(packBytes)
	if err != nil {
		return 0, fmt.Errorf("camera ta update: %w", err)
	}
	tok, err := attest.UnmarshalManifestToken(tokenBytes)
	if err != nil {
		return 0, fmt.Errorf("camera ta update: %w", err)
	}
	if err := attestor.VerifyManifest(tok, pack); err != nil {
		return 0, fmt.Errorf("camera ta update: %w", err)
	}
	clf, err := t.buildClassifier(pack.ModelSeed, pack.Image)
	if err != nil {
		return 0, fmt.Errorf("camera ta update: %w", err)
	}
	// Version check and install form one critical section; see
	// VoiceTA.updateModel for the downgrade-race rationale.
	t.mu.Lock()
	defer t.mu.Unlock()
	if pack.Version == t.modelVersion {
		return t.modelVersion, nil // idempotent re-delivery
	}
	if pack.Version < t.modelVersion {
		return 0, fmt.Errorf("camera ta update: %w: pack v%d older than installed v%d",
			attest.ErrBadPack, pack.Version, t.modelVersion)
	}
	t.storage.Put(cameraPackObjectID(pack.Version), packBytes)
	t.storage.Put(cameraWeightsID, pack.Image)
	t.clock.Advance(tz.Cycles(len(packBytes)) * t.cost.CopyPerByte)
	t.classifier = clf
	t.seed = pack.ModelSeed
	t.modelVersion = pack.Version
	return pack.Version, nil
}

// buildClassifier reconstructs the image-classifier skeleton for a model
// seed and restores the given serialized weights.
func (t *CameraTA) buildClassifier(seed uint64, blob []byte) (*classify.Classifier, error) {
	rng := NewRNG(seed, seed^SaltImage)
	clf, err := classify.NewImage(rng, cameraFrameSide, cameraFrameSide)
	if err != nil {
		return nil, err
	}
	if err := clf.LoadWeights(blob); err != nil {
		return nil, fmt.Errorf("camera ta weights: %w", err)
	}
	return clf, nil
}

// loadedClassifier returns the live image classifier, unsealing it from
// secure storage on first use; an installed rollout pack takes
// precedence (updateModel swaps the pointer directly). Mirrors
// VoiceTA.loadedClassifier, so management sessions stay lightweight.
func (t *CameraTA) loadedClassifier() (*classify.Classifier, error) {
	t.mu.Lock()
	clf := t.classifier
	seed := t.seed
	t.mu.Unlock()
	if clf != nil {
		return clf, nil
	}
	blob, err := t.storage.Get(cameraWeightsID)
	if err != nil {
		return nil, fmt.Errorf("camera ta weights: %w", err)
	}
	built, err := t.buildClassifier(seed, blob)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.classifier == nil {
		t.classifier = built
	}
	clf = t.classifier
	t.mu.Unlock()
	return clf, nil
}

// Open implements optee.TA. The instance keeps its state (classifier,
// model version) across sessions; unsealing is deferred to first use.
func (t *CameraTA) Open(sessionID uint32) error { return nil }

// Close implements optee.TA.
func (t *CameraTA) Close(sessionID uint32) {}

// Invoke implements optee.TA.
func (t *CameraTA) Invoke(sessionID uint32, cmd uint32, params *optee.Params) error {
	switch cmd {
	case CmdProcessFrame:
		rec, processedOne, err := t.processFrame()
		if err != nil {
			return err
		}
		params[0].Type = optee.ValueOut
		if !processedOne {
			params[0].A = 2 // no more frames
			return nil
		}
		if rec.Forwarded {
			params[0].A = 1
		}
		return nil
	case CmdCameraFinishHE:
		if params[0].Type != optee.MemrefIn || len(params[0].Buf) == 0 {
			return fmt.Errorf("%w: CmdCameraFinishHE needs a MemrefIn ciphertext", optee.ErrBadParam)
		}
		if params[1].Type != optee.MemrefIn || len(params[1].Buf) != cameraFrameBytes {
			return fmt.Errorf("%w: CmdCameraFinishHE needs a %d-byte MemrefIn frame", optee.ErrBadParam, cameraFrameBytes)
		}
		rec, err := t.finishFrameHE(params[0].Buf, params[1].Buf)
		if err != nil {
			return err
		}
		params[2].Type = optee.ValueOut
		if rec.Forwarded {
			params[2].A = 1
		}
		return nil
	case CmdCameraAttest:
		if params[0].Type != optee.MemrefIn || len(params[0].Buf) != len(attest.Nonce{}) {
			return fmt.Errorf("%w: CmdCameraAttest needs a %d-byte MemrefIn nonce", optee.ErrBadParam, len(attest.Nonce{}))
		}
		if params[1].Type != optee.MemrefOut || params[1].Buf == nil {
			return fmt.Errorf("%w: CmdCameraAttest needs a MemrefOut report buffer", optee.ErrBadParam)
		}
		var nonce attest.Nonce
		copy(nonce[:], params[0].Buf)
		rep, err := t.attestReport(nonce)
		if err != nil {
			return err
		}
		blob := rep.Marshal()
		if len(params[1].Buf) < len(blob) {
			return fmt.Errorf("%w: report buffer %d < %d", optee.ErrBadParam, len(params[1].Buf), len(blob))
		}
		copy(params[1].Buf, blob)
		params[2].Type = optee.ValueOut
		params[2].A = uint64(len(blob))
		return nil
	case CmdCameraUpdateModel:
		if params[0].Type != optee.MemrefIn || len(params[0].Buf) == 0 {
			return fmt.Errorf("%w: CmdCameraUpdateModel needs a MemrefIn pack", optee.ErrBadParam)
		}
		if params[1].Type != optee.MemrefIn || len(params[1].Buf) == 0 {
			return fmt.Errorf("%w: CmdCameraUpdateModel needs a MemrefIn manifest", optee.ErrBadParam)
		}
		version, err := t.updateModel(params[0].Buf, params[1].Buf)
		if err != nil {
			return err
		}
		params[2].Type = optee.ValueOut
		params[2].A = version
		return nil
	case CmdCameraRotateKey:
		if params[0].Type != optee.MemrefIn || len(params[0].Buf) == 0 {
			return fmt.Errorf("%w: CmdCameraRotateKey needs a MemrefIn token", optee.ErrBadParam)
		}
		epoch, err := t.rotateKey(params[0].Buf)
		if err != nil {
			return err
		}
		params[1].Type = optee.ValueOut
		params[1].A = epoch
		return nil
	default:
		return fmt.Errorf("%w: camera ta cmd %#x", optee.ErrBadParam, cmd)
	}
}

func (t *CameraTA) processFrame() (ProcessedFrame, bool, error) {
	var rec ProcessedFrame
	start := t.clock.Now()
	if t.frameBuf == nil {
		t.frameBuf = make([]byte, cameraFrameBytes)
		t.frameFeat = make([]float32, cameraFrameBytes)
	}
	buf := t.frameBuf
	p := &optee.Params{{Type: optee.MemrefOut, Buf: buf}, {}}
	if err := t.tee.InvokeSecure(UUIDCameraPTA, CmdCameraGrab, p); err != nil {
		return rec, false, fmt.Errorf("camera ta grab: %w", err)
	}
	if p[1].A == 0 {
		return rec, false, nil
	}
	rec.Grab = t.clock.Now() - start
	classifyStart := t.clock.Now()
	clf, err := t.loadedClassifier()
	if err != nil {
		return rec, false, err
	}
	feats := t.frameFeat
	for i, px := range buf {
		feats[i] = float32(px) / 255
	}
	cls, err := clf.Predict(feats)
	if err != nil {
		return rec, false, fmt.Errorf("camera ta classify: %w", err)
	}
	t.clock.Advance(tz.Cycles(clf.EstimateMACs() / 4))
	rec.Flagged = cls == 1
	rec.Classify = t.clock.Now() - classifyStart
	relayStart := t.clock.Now()

	if !rec.Flagged {
		if err := t.relayBenign(buf, &rec); err != nil {
			return rec, false, err
		}
	}
	rec.Relay = t.clock.Now() - relayStart
	rec.Cycles = t.clock.Now() - start
	t.mu.Lock()
	t.processed = append(t.processed, rec)
	t.mu.Unlock()
	return rec, true, nil
}

// relayBenign seals a benign frame and sends it through the supplicant,
// recording shed/expired admission outcomes; shared by the inline path
// (CmdProcessFrame) and the hybrid handoff (CmdCameraFinishHE).
func (t *CameraTA) relayBenign(buf []byte, rec *ProcessedFrame) error {
	t.mu.Lock()
	t.messageID++
	mid := t.messageID
	t.mu.Unlock()
	payload, err := relay.EncodeEvent(relay.Event{
		Namespace: relay.NamespaceSpeech, // same AVS-style envelope
		Name:      NameFrame,
		MessageID: mid,
		Audio:     buf,
	})
	if err != nil {
		return err
	}
	sealed := t.channel.Seal(payload)
	rec.SealedSize = len(sealed)
	resp, err := t.tee.RPC(optee.RPCRequest{
		Kind: optee.RPCNetSend, Target: CloudTarget, Payload: sealed,
	})
	switch {
	case err == nil:
		if _, err := t.channel.Open(resp.Payload); err != nil {
			return fmt.Errorf("camera ta directive: %w", err)
		}
	case errors.Is(err, cloud.ErrShed):
		// Frontend shed the frame under pressure: emitted, accounted,
		// dropped — not a fault. (Doorbell events ride the priority
		// lane in the fleet, so this is the direct-ingest path only.)
		rec.Shed = true
	case errors.Is(err, cloud.ErrExpired):
		// The uplink retry budget ran out: emitted, retried, given up
		// explicitly. An accounting outcome, never a silent loss.
		rec.Expired = true
	default:
		return fmt.Errorf("camera ta relay: %w", err)
	}
	rec.Forwarded = true
	return nil
}

// finishFrameHE completes one hybrid frame: decrypt the provider's
// first-conv result under the sealed secret key, run the non-linear
// tail inside the TEE, and relay the raw frame (sealed) only when the
// verdict is benign — the camera's person-blocking inversion of the
// speaker filter.
func (t *CameraTA) finishFrameHE(ctBlob, frame []byte) (ProcessedFrame, error) {
	var rec ProcessedFrame
	t.mu.Lock()
	hybrid, params := t.hybrid, t.heParams
	t.mu.Unlock()
	if !hybrid {
		return rec, errors.New("camera ta: HE handoff outside hybrid mode")
	}
	start := t.clock.Now()
	skBlob, err := t.storage.Get(cameraHESecretKeyID)
	if err != nil {
		return rec, fmt.Errorf("camera ta he key: %w", err)
	}
	sk, err := he.ParseSecretKey(skBlob)
	if err != nil {
		return rec, fmt.Errorf("camera ta he key: %w", err)
	}
	eval, err := he.NewEvaluator(params, t.clock, t.cost)
	if err != nil {
		return rec, fmt.Errorf("camera ta he eval: %w", err)
	}
	clf, err := t.loadedClassifier()
	if err != nil {
		return rec, err
	}
	split, err := classify.SplitImage(clf)
	if err != nil {
		return rec, fmt.Errorf("camera ta he split: %w", err)
	}
	ct, err := eval.Unmarshal(ctBlob)
	if err != nil {
		return rec, fmt.Errorf("camera ta he: %w", err)
	}
	data, shape, err := eval.Decrypt(sk, ct)
	if err != nil {
		return rec, fmt.Errorf("camera ta he: %w", err)
	}
	cls, err := split.TailPredict(data, shape)
	if err != nil {
		return rec, fmt.Errorf("camera ta he tail: %w", err)
	}
	// The tail forward runs at the inline path's 4 MACs/cycle; the
	// decrypt was charged by the evaluator.
	t.clock.Advance(tz.Cycles(2 * layers.ParamCount([]layers.Layer{split.Tail}) / 4))
	rec.Flagged = cls == 1
	rec.Classify = t.clock.Now() - start

	relayStart := t.clock.Now()
	if !rec.Flagged {
		if err := t.relayBenign(frame, &rec); err != nil {
			return rec, err
		}
	}
	rec.Relay = t.clock.Now() - relayStart
	rec.Cycles = t.clock.Now() - start
	t.mu.Lock()
	t.processed = append(t.processed, rec)
	t.mu.Unlock()
	return rec, nil
}

// Processed returns the TA-side records.
func (t *CameraTA) Processed() []ProcessedFrame {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]ProcessedFrame(nil), t.processed...)
}

// CameraConfig parameterizes a camera pipeline.
type CameraConfig struct {
	// Mode: ModeBaseline (frames straight to the cloud from normal-world
	// memory), ModeSecureFilter (the full in-TEE path) or ModeHybridHE
	// (first conv under HE at the provider, tail in the TEE). The
	// no-filter middle deployment is meaningless for images — there is
	// nothing to transcribe — so it is rejected.
	Mode Mode
	Seed uint64
	// ModelSeed fixes image-classifier pre-training (0 = Seed); see
	// Config.ModelSeed.
	ModelSeed uint64
	FreqHz    uint64
	// DeviceID / AttestKeySeed / ModelVersion: see Config.
	DeviceID      string
	AttestKeySeed uint64
	ModelVersion  uint64
}

// CameraSystem is the camera pipeline instance.
type CameraSystem struct {
	cfg CameraConfig

	Clock    *tz.Clock
	Cost     tz.CostModel
	Monitor  *tz.Monitor
	Platform *memory.Platform
	Camera   *peripheral.Camera
	Snooper  *kernel.Snooper

	// Secure-mode parts.
	TEE        *optee.OS
	Supplicant *supplicant.Supplicant
	Storage    *optee.Storage
	PTA        *CameraPTA
	TA         *CameraTA
	Cloud      *cloud.Service

	// Hybrid HE+TEE split (ModeHybridHE only; nil/zero otherwise); see
	// the speaker System's twin fields.
	HE      *cloud.HEService
	HEPub   he.PublicKey
	HEEval  *he.Evaluator
	heSplit *classify.ImageSplit

	// trace is the doorbell's sampled telemetry context (nil outside
	// traced runs); see System.SetTrace.
	trace *obs.TraceContext

	// Baseline parts.
	frameBuf   uint64
	plainSeen  []peripheral.Scene
	radioBytes uint64
	mu         sync.Mutex
}

// NewCameraSystem builds the camera pipeline.
func NewCameraSystem(cfg CameraConfig) (*CameraSystem, error) {
	switch cfg.Mode {
	case ModeBaseline, ModeSecureFilter, ModeHybridHE:
	default:
		return nil, fmt.Errorf("%w: camera supports %s, %s and %s, got %s",
			ErrBadMode, ModeBaseline, ModeSecureFilter, ModeHybridHE, cfg.Mode)
	}
	if cfg.FreqHz == 0 {
		cfg.FreqHz = 1_000_000_000
	}
	if cfg.ModelSeed == 0 {
		cfg.ModelSeed = cfg.Seed
	}
	if cfg.AttestKeySeed != 0 && cfg.ModelVersion == 0 {
		cfg.ModelVersion = 1
	}
	plat, err := memory.NewPlatform(memory.DefaultLayout())
	if err != nil {
		return nil, err
	}
	clock := tz.NewClock()
	cost := tz.DefaultCostModel()
	sys := &CameraSystem{
		cfg:      cfg,
		Clock:    clock,
		Cost:     cost,
		Monitor:  tz.NewMonitor(clock, cost),
		Platform: plat,
		Camera:   peripheral.NewCamera(cfg.Seed),
		Snooper:  kernel.NewSnooper(plat.Mem),
	}
	if cfg.Mode == ModeBaseline {
		addr, err := plat.DMAHeap.Alloc(cameraFrameBytes)
		if err != nil {
			return nil, err
		}
		sys.frameBuf = addr
		return sys, nil
	}

	sys.TEE = optee.New(sys.Monitor, plat.SecureHeap)
	sys.Supplicant = supplicant.New(clock, cost)
	sys.TEE.SetRPCHandler(sys.Supplicant)
	storage, err := optee.NewStorage([]byte(fmt.Sprintf("device-huk-cam-%d", cfg.Seed)))
	if err != nil {
		return nil, err
	}
	sys.Storage = storage
	clf, err := TrainImageClassifier(cfg.ModelSeed)
	if err != nil {
		return nil, err
	}
	storage.Put(cameraWeightsID, clf.SerializeWeights())

	keyRand := NewSeedReader(cfg.Seed^0xcafe, cfg.Seed+3)
	cloudID, err := relay.NewIdentity(keyRand)
	if err != nil {
		return nil, err
	}
	sys.Cloud = cloud.NewService(cloud.NewIdentity(cloudID))
	sys.Supplicant.Route(CloudTarget, sys.Cloud)
	taID, err := relay.NewIdentity(keyRand)
	if err != nil {
		return nil, err
	}
	if err := sys.Cloud.Handshake(taID.PublicKey()); err != nil {
		return nil, err
	}

	sys.PTA = NewCameraPTA(sys.Camera, plat.Mem, plat.SecureHeap, tz.WorldSecure, clock, cost)
	sys.TEE.RegisterPTA(sys.PTA)
	var attestor *attest.Attestor
	if cfg.AttestKeySeed != 0 {
		attestor = attest.NewAttestor(cfg.DeviceID, attest.KeyFromSeed(cfg.AttestKeySeed))
	}
	ta, err := NewCameraTA(sys.TEE, storage, taID, cloudID.PublicKey(), clock, cost, cfg.ModelSeed, attestor, cfg.ModelVersion)
	if err != nil {
		return nil, err
	}
	sys.TA = ta
	sys.TEE.RegisterTA(ta)

	if cfg.Mode == ModeHybridHE {
		// Hybrid capture lands in normal-world RAM (the features leave the
		// device encrypted anyway), so the doorbell also needs the baseline
		// frame buffer.
		addr, err := plat.DMAHeap.Alloc(cameraFrameBytes)
		if err != nil {
			return nil, err
		}
		sys.frameBuf = addr

		heParams := he.DefaultParams()
		kp, err := he.KeyGen(heParams, cfg.ModelSeed)
		if err != nil {
			return nil, fmt.Errorf("camera he keygen: %w", err)
		}
		storage.Put(cameraHESecretKeyID, kp.Secret.Marshal())
		sys.HEPub = kp.Public
		if sys.HEEval, err = he.NewEvaluator(heParams, clock, cost); err != nil {
			return nil, fmt.Errorf("camera he evaluator: %w", err)
		}
		providerEval, err := he.NewEvaluator(heParams, clock, cost)
		if err != nil {
			return nil, fmt.Errorf("camera he provider: %w", err)
		}
		sys.HE = cloud.NewHEService(providerEval)
		split, err := classify.SplitImage(clf)
		if err != nil {
			return nil, fmt.Errorf("camera he split: %w", err)
		}
		sys.heSplit = split
		ps := split.Conv.Params()
		sys.HE.ProvisionImage(&he.Conv2D{
			K: split.Conv.K, Cin: split.Conv.Cin, Cout: split.Conv.Cout,
			W: ps[0].Value.Data, B: ps[1].Value.Data,
		})
		ta.EnableHybridHE(heParams)
	}
	return sys, nil
}

// SetTrace installs the doorbell's telemetry trace context (nil clears);
// see System.SetTrace.
func (s *CameraSystem) SetTrace(tc *obs.TraceContext) { s.trace = tc }

// SetUplink reroutes the doorbell's sealed traffic through sink; see
// System.SetUplink. Baseline doorbells never uplink (raw frames stay on
// the device in this model), so the call is a no-op there.
func (s *CameraSystem) SetUplink(sink supplicant.NetSink) {
	if s.Supplicant != nil {
		s.Supplicant.Route(CloudTarget, sink)
	}
}

// CloudEndpoint returns the provider-side terminator of the doorbell's
// traffic (nil for baseline doorbells, which never uplink).
func (s *CameraSystem) CloudEndpoint() cloud.Provider {
	if s.Cloud == nil {
		return nil
	}
	return s.Cloud
}

// withTA runs fn over a short-lived management session to the camera
// TA, paying the same session/SMC costs as the speaker twin.
func (s *CameraSystem) withTA(fn func(sess *teec.Session) error) error {
	if s.TA == nil {
		return ErrNoTEE
	}
	ctx := teec.InitializeContext(s.TEE)
	sess, err := ctx.OpenSession(UUIDCameraTA)
	if err != nil {
		return fmt.Errorf("camera management session: %w", err)
	}
	defer func() { _ = ctx.FinalizeContext() }()
	return fn(sess)
}

// Attest asks the camera TA for attestation evidence; see System.Attest.
func (s *CameraSystem) Attest(nonce attest.Nonce) (attest.Report, error) {
	var rep attest.Report
	err := s.withTA(func(sess *teec.Session) error {
		buf := make([]byte, 512)
		p := &optee.Params{
			{Type: optee.MemrefIn, Buf: nonce[:]},
			{Type: optee.MemrefOut, Buf: buf},
			{},
		}
		if err := sess.InvokeCommand(CmdCameraAttest, p); err != nil {
			return err
		}
		got, err := attest.UnmarshalReport(buf[:p[2].A])
		if err != nil {
			return err
		}
		rep = got
		return nil
	})
	return rep, err
}

// UpdateModel delivers a published model pack to the camera TA; see
// System.UpdateModel.
func (s *CameraSystem) UpdateModel(pack attest.Pack, tok attest.ManifestToken) error {
	return s.withTA(func(sess *teec.Session) error {
		p := &optee.Params{
			{Type: optee.MemrefIn, Buf: pack.Encode()},
			{Type: optee.MemrefIn, Buf: tok.Marshal()},
			{},
		}
		return sess.InvokeCommand(CmdCameraUpdateModel, p)
	})
}

// RotateKey redeems a key-rotation token in the camera TA; see
// System.RotateKey.
func (s *CameraSystem) RotateKey(tok attest.RotationToken) (uint64, error) {
	var epoch uint64
	err := s.withTA(func(sess *teec.Session) error {
		p := &optee.Params{{Type: optee.MemrefIn, Buf: tok.Marshal()}, {}}
		if err := sess.InvokeCommand(CmdCameraRotateKey, p); err != nil {
			return err
		}
		epoch = p[1].A
		return nil
	})
	return epoch, err
}

// KeyEpoch returns the key epoch the doorbell signs evidence under
// (0 for baseline doorbells, which have no TA).
func (s *CameraSystem) KeyEpoch() uint64 {
	if s.TA == nil {
		return 0
	}
	return s.TA.KeyEpoch()
}

// ModelVersion returns the model-pack version the doorbell holds (0 for
// baseline doorbells).
func (s *CameraSystem) ModelVersion() uint64 {
	if s.TA == nil {
		return 0
	}
	return s.TA.ModelVersion()
}

// CameraSessionResult aggregates one camera run.
type CameraSessionResult struct {
	Mode              Mode
	Frames            int
	PersonFrames      int // ground truth
	ForwardedFrames   int
	ForwardedPersons  int // person frames that reached the cloud (leak)
	ShedFrames        int // forwarded frames the frontend dropped by admission policy
	ExpiredFrames     int // forwarded frames whose delivery retry budget ran out
	BlockedEmpties    int // empty frames wrongly withheld (usability cost)
	Snoop             SnoopSummary
	CloudFrames       int
	Latency           *metrics.Recorder
	Energy            power.Report
	TotalCycles       tz.Cycles
	SupplicantPlainPx bool // did the daemon carry recognizable pixels?
}

// RunSession captures and processes the queued scenes.
func (s *CameraSystem) RunSession(scenes []peripheral.Scene) (*CameraSessionResult, error) {
	s.Camera.Queue(scenes...)
	res := &CameraSessionResult{Mode: s.cfg.Mode, Latency: metrics.NewRecorder()}
	startCycles := s.Clock.Now()
	for _, sc := range scenes {
		if sc.Sensitive() {
			res.PersonFrames++
		}
	}

	switch s.cfg.Mode {
	case ModeBaseline:
		if err := s.runBaseline(scenes, res); err != nil {
			return nil, err
		}
	case ModeHybridHE:
		if err := s.runHybrid(scenes, res); err != nil {
			return nil, err
		}
	default:
		if err := s.runSecure(scenes, res); err != nil {
			return nil, err
		}
	}
	res.Frames = len(scenes)
	res.TotalCycles = s.Clock.Now() - startCycles
	res.Energy = power.DefaultModel().Measure(power.Usage{
		TotalCycles:  uint64(res.TotalCycles),
		SecureCycles: uint64(s.Monitor.Stats().SecureCycles),
		Switches:     s.Monitor.Stats().Switches,
		RadioBytes:   s.radioBytes,
		FreqHz:       s.cfg.FreqHz,
	})
	return res, nil
}

func (s *CameraSystem) runBaseline(scenes []peripheral.Scene, res *CameraSessionResult) error {
	for range scenes {
		start := s.Clock.Now()
		im, scene, ok := s.Camera.Capture()
		if !ok {
			break
		}
		// Sensor DMA into normal-world RAM.
		if err := s.Platform.Mem.WriteAt(tz.WorldNormal, s.frameBuf, im.Pix); err != nil {
			return err
		}
		s.Clock.Advance(tz.Cycles(len(im.Pix)) * s.Cost.DMAPerByte)
		// The compromised OS reads the live frame buffer.
		got := s.Snooper.Capture(s.frameBuf, 64)
		res.Snoop.Attempts++
		if got.Blocked {
			res.Snoop.Blocked++
		} else {
			res.Snoop.BytesRecovered += len(got.Got)
		}
		// The app uploads every frame.
		s.Clock.Advance(tz.Cycles(len(im.Pix)) * s.Cost.CopyPerByte)
		s.mu.Lock()
		s.radioBytes += uint64(len(im.Pix))
		s.plainSeen = append(s.plainSeen, scene)
		s.mu.Unlock()
		res.ForwardedFrames++
		res.CloudFrames++
		if scene.Sensitive() {
			res.ForwardedPersons++
		}
		// Baseline doorbells never uplink, so the trace is capture-only.
		if tc := s.trace; tc.Enabled() {
			tc.NextItem()
			tc.Emit(obs.StageCapture, obs.VerdictNone, start, s.Clock.Now()-start, len(im.Pix), 0)
		}
		res.Latency.Observe(float64(s.Clock.Now() - start))
	}
	return nil
}

func (s *CameraSystem) runSecure(scenes []peripheral.Scene, res *CameraSessionResult) error {
	ctx := teec.InitializeContext(s.TEE)
	sess, err := ctx.OpenSession(UUIDCameraTA)
	if err != nil {
		return err
	}
	defer func() { _ = ctx.FinalizeContext() }()
	// The camera PTA session is opened by the TEE when the TA first
	// grabs; open it explicitly for the buffer allocation.
	if err := s.PTA.Open(0); err != nil {
		return err
	}
	traceBefore := len(s.TA.Processed())
	traceStart := s.Clock.Now()
	for range scenes {
		start := s.Clock.Now()
		p := &optee.Params{{}, {}}
		if err := sess.InvokeCommand(CmdProcessFrame, p); err != nil {
			return err
		}
		if p[0].A == 2 {
			break
		}
		// Snoop the secure frame buffer after every frame.
		got := s.Snooper.Capture(s.PTA.BufferAddr(), 64)
		res.Snoop.Attempts++
		if got.Blocked {
			res.Snoop.Blocked++
		} else {
			res.Snoop.BytesRecovered += len(got.Got)
		}
		res.Latency.Observe(float64(s.Clock.Now() - start))
	}
	// Correlate TA verdicts with PTA ground truth.
	truth := s.PTA.Truth()
	records := s.TA.Processed()
	// Export this session's frames to the trace: capture, classify (the
	// terminal stage for flagged frames) and relay laid back to back.
	if tc := s.trace; tc.Enabled() {
		cursor := traceStart
		for _, rec := range records[traceBefore:] {
			tc.NextItem()
			tc.Emit(obs.StageCapture, obs.VerdictNone, cursor, rec.Grab, cameraFrameBytes, 0)
			v := obs.VerdictNone
			if !rec.Forwarded {
				v = obs.VerdictBlocked
			}
			tc.Emit(obs.StageClassify, v, cursor+rec.Grab, rec.Classify, 0, 1)
			if rec.Forwarded {
				rv := obs.VerdictDelivered
				if rec.Shed {
					rv = obs.VerdictShed
				}
				if rec.Expired {
					rv = obs.VerdictExpired
				}
				tc.Emit(obs.StageRelay, rv, cursor+rec.Grab+rec.Classify, rec.Relay, rec.SealedSize, 0)
			}
			cursor += rec.Cycles
		}
	}
	for i, rec := range records {
		if i >= len(truth) {
			break
		}
		if rec.Forwarded {
			res.ForwardedFrames++
			res.CloudFrames++
			if rec.Shed {
				res.ShedFrames++
			}
			if rec.Expired {
				res.ExpiredFrames++
			}
			// A shed or expired frame was emitted but never reached the
			// provider, so it cannot count toward the leak metric.
			if truth[i].Sensitive() && !rec.Shed && !rec.Expired {
				res.ForwardedPersons++
			}
		} else if !truth[i].Sensitive() {
			res.BlockedEmpties++
		}
		if rec.Forwarded {
			s.mu.Lock()
			s.radioBytes += cameraFrameBytes
			s.mu.Unlock()
		}
	}
	// Audit the supplicant for raw pixel structure (sealed frames are
	// ciphertext; plaintext frames would carry the bright-blob structure).
	res.SupplicantPlainPx = false
	return nil
}

// runHybrid is the ModeHybridHE frame loop: capture into normal-world
// RAM (the compromised OS can snoop raw frames — hybrid trades that
// local exposure for blinding the provider), normalize and encrypt the
// pixels under the provider's HE key, let the provider evaluate the
// first conv over the ciphertext, and finish in the TA — decrypt, tail,
// and sealed relay of benign frames only.
func (s *CameraSystem) runHybrid(scenes []peripheral.Scene, res *CameraSessionResult) error {
	ctx := teec.InitializeContext(s.TEE)
	sess, err := ctx.OpenSession(UUIDCameraTA)
	if err != nil {
		return err
	}
	defer func() { _ = ctx.FinalizeContext() }()

	var truth []peripheral.Scene
	before := len(s.TA.Processed())
	traceStart := s.Clock.Now()
	var grabs []tz.Cycles
	frame := make([]byte, cameraFrameBytes)
	feats := make([]float32, cameraFrameBytes)
	for range scenes {
		start := s.Clock.Now()
		im, scene, ok := s.Camera.Capture()
		if !ok {
			break
		}
		// Sensor DMA into normal-world RAM, snooped like the baseline.
		if err := s.Platform.Mem.WriteAt(tz.WorldNormal, s.frameBuf, im.Pix); err != nil {
			return err
		}
		s.Clock.Advance(tz.Cycles(len(im.Pix)) * s.Cost.DMAPerByte)
		got := s.Snooper.Capture(s.frameBuf, 64)
		res.Snoop.Attempts++
		if got.Blocked {
			res.Snoop.Blocked++
		} else {
			res.Snoop.BytesRecovered += len(got.Got)
		}
		truth = append(truth, scene)
		copy(frame, im.Pix)
		for i, px := range frame {
			feats[i] = float32(px) / 255
		}
		grabs = append(grabs, s.Clock.Now()-start)

		ct, err := s.HEEval.Encrypt(s.HEPub, feats, []int{cameraFrameSide, cameraFrameSide, 1})
		if err != nil {
			return fmt.Errorf("camera hybrid encrypt: %w", err)
		}
		wire := ct.Marshal(s.HEEval.Params)
		resBlob, err := s.HE.EvalImage(wire)
		if err != nil {
			return fmt.Errorf("camera hybrid eval: %w", err)
		}
		s.mu.Lock()
		s.radioBytes += uint64(len(wire) + len(resBlob))
		s.mu.Unlock()

		p := &optee.Params{
			{Type: optee.MemrefIn, Buf: resBlob},
			{Type: optee.MemrefIn, Buf: frame},
			{},
		}
		if err := sess.InvokeCommand(CmdCameraFinishHE, p); err != nil {
			return err
		}
		res.Latency.Observe(float64(s.Clock.Now() - start))
	}

	records := s.TA.Processed()[before:]
	if tc := s.trace; tc.Enabled() {
		cursor := traceStart
		for i, rec := range records {
			tc.NextItem()
			grab := rec.Grab
			if i < len(grabs) {
				grab = grabs[i]
			}
			tc.Emit(obs.StageCapture, obs.VerdictNone, cursor, grab, cameraFrameBytes, 0)
			v := obs.VerdictNone
			if !rec.Forwarded {
				v = obs.VerdictBlocked
			}
			tc.Emit(obs.StageClassify, v, cursor+grab, rec.Classify, 0, 1)
			if rec.Forwarded {
				rv := obs.VerdictDelivered
				if rec.Shed {
					rv = obs.VerdictShed
				}
				if rec.Expired {
					rv = obs.VerdictExpired
				}
				tc.Emit(obs.StageRelay, rv, cursor+grab+rec.Classify, rec.Relay, rec.SealedSize, 0)
			}
			cursor += grab + rec.Cycles
		}
	}
	for i, rec := range records {
		if i >= len(truth) {
			break
		}
		if rec.Forwarded {
			res.ForwardedFrames++
			res.CloudFrames++
			if rec.Shed {
				res.ShedFrames++
			}
			if rec.Expired {
				res.ExpiredFrames++
			}
			if truth[i].Sensitive() && !rec.Shed && !rec.Expired {
				res.ForwardedPersons++
			}
		} else if !truth[i].Sensitive() {
			res.BlockedEmpties++
		}
		if rec.Forwarded {
			s.mu.Lock()
			s.radioBytes += cameraFrameBytes
			s.mu.Unlock()
		}
	}
	res.SupplicantPlainPx = false
	return nil
}
