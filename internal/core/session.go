package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/attest"
	"repro/internal/audio"
	"repro/internal/cloud"
	"repro/internal/i2s"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/optee"
	"repro/internal/power"
	"repro/internal/sensitive"
	"repro/internal/teec"
	"repro/internal/tz"
)

// ErrNoTEE is returned for TEE-only operations on baseline systems.
var ErrNoTEE = errors.New("core: operation requires a secure-mode system")

// withTA runs fn over a short-lived management session to the voice TA.
// The TA instance refcounts sessions, so a management session opened
// while a processing session is live shares the running instance (and
// the capture stream keeps going).
func (s *System) withTA(fn func(sess *teec.Session) error) error {
	if s.cfg.Mode == ModeBaseline {
		return ErrNoTEE
	}
	ctx := teec.InitializeContext(s.TEE)
	sess, err := ctx.OpenSession(UUIDVoiceTA)
	if err != nil {
		return fmt.Errorf("core management session: %w", err)
	}
	defer func() { _ = ctx.FinalizeContext() }()
	return fn(sess)
}

// Attest asks the TA for attestation evidence over the verifier's
// challenge nonce (fleet handshake, Fig. 1 extended: the provider admits
// the device's traffic only after this report verifies).
func (s *System) Attest(nonce attest.Nonce) (attest.Report, error) {
	var rep attest.Report
	err := s.withTA(func(sess *teec.Session) error {
		buf := make([]byte, 512)
		p := &optee.Params{
			{Type: optee.MemrefIn, Buf: nonce[:]},
			{Type: optee.MemrefOut, Buf: buf},
			{},
		}
		if err := sess.InvokeCommand(CmdAttest, p); err != nil {
			return err
		}
		got, err := attest.UnmarshalReport(buf[:p[2].A])
		if err != nil {
			return err
		}
		rep = got
		return nil
	})
	return rep, err
}

// UpdateModel delivers a published model pack and its per-device
// manifest token to the TA, which authenticates, seals and hot-swaps it.
func (s *System) UpdateModel(pack attest.Pack, tok attest.ManifestToken) error {
	return s.withTA(func(sess *teec.Session) error {
		p := &optee.Params{
			{Type: optee.MemrefIn, Buf: pack.Encode()},
			{Type: optee.MemrefIn, Buf: tok.Marshal()},
			{},
		}
		return sess.InvokeCommand(CmdUpdateModel, p)
	})
}

// ModelVersion returns the model-pack version the device holds (0 for
// baseline systems, which hold no on-device model).
func (s *System) ModelVersion() uint64 {
	if s.cfg.Mode == ModeBaseline {
		return 0
	}
	return s.VoiceTA.ModelVersion()
}

// RotateKey redeems a verifier-issued key-rotation token in the TA,
// which verifies it under the current attestation key, seals the new
// epoch and swaps the evidence signer. Returns the new key epoch.
func (s *System) RotateKey(tok attest.RotationToken) (uint64, error) {
	var epoch uint64
	err := s.withTA(func(sess *teec.Session) error {
		p := &optee.Params{{Type: optee.MemrefIn, Buf: tok.Marshal()}, {}}
		if err := sess.InvokeCommand(CmdRotateKey, p); err != nil {
			return err
		}
		epoch = p[1].A
		return nil
	})
	return epoch, err
}

// KeyEpoch returns the attestation key epoch the device signs evidence
// under (0 for baseline systems).
func (s *System) KeyEpoch() uint64 {
	if s.cfg.Mode == ModeBaseline {
		return 0
	}
	return s.VoiceTA.KeyEpoch()
}

// SnoopSummary aggregates the compromised-OS adversary's results.
type SnoopSummary struct {
	Attempts       int
	Blocked        int
	BytesRecovered int
}

// UtteranceOutcome pairs ground truth with what happened to one utterance.
type UtteranceOutcome struct {
	Truth      sensitive.Utterance
	Transcript []string // device transcript (secure modes)
	Flagged    bool
	Forwarded  bool
	// Shed marks an emitted event the ingest frontend dropped under
	// queue pressure (cloud.ErrShed): the device treats it as a
	// retriable network drop, not a session fault.
	Shed bool
	// Expired marks an emitted event whose uplink retry budget ran out
	// (cloud.ErrExpired): retried deterministically, given up explicitly.
	Expired  bool
	Redacted int
	Cycles   tz.Cycles
	Stages   StageCycles
}

// SessionResult aggregates one RunSession.
type SessionResult struct {
	Mode       Mode
	Utterances []UtteranceOutcome
	// ShedEvents counts emitted events the ingest frontend dropped by
	// admission policy (per-utterance detail in Utterances[i].Shed).
	ShedEvents int
	// ExpiredEvents counts emitted events whose delivery retry budget ran
	// out (per-utterance detail in Utterances[i].Expired).
	ExpiredEvents int

	// Privacy outcomes.
	CloudAudit cloud.Audit
	Snoop      SnoopSummary
	// SupplicantPlaintextTokens counts private tokens visible to the
	// (untrusted) supplicant in the payloads it forwarded — zero when the
	// relay seals correctly.
	SupplicantPlaintextTokens int

	// Performance outcomes.
	Latency      *metrics.Recorder // cycles per utterance
	MonitorStats tz.MonitorStats
	Energy       power.Report
	RadioBytes   uint64
	TotalCycles  tz.Cycles
}

// LeakageRate returns sensitive tokens seen by the cloud per utterance
// carrying sensitive content.
func (r *SessionResult) LeakageRate() float64 {
	sensCount := 0
	for _, u := range r.Utterances {
		if u.Truth.Sensitive {
			sensCount++
		}
	}
	if sensCount == 0 {
		return 0
	}
	return float64(r.CloudAudit.SensitiveTokens) / float64(sensCount)
}

// FalseBlockRate returns the fraction of benign utterances that were not
// forwarded (usability cost of the filter).
func (r *SessionResult) FalseBlockRate() float64 {
	benign, blocked := 0, 0
	for _, u := range r.Utterances {
		if !u.Truth.Sensitive {
			benign++
			if !u.Forwarded {
				blocked++
			}
		}
	}
	if benign == 0 {
		return 0
	}
	return float64(blocked) / float64(benign)
}

// RunSession synthesizes and processes each utterance end to end and
// returns the aggregated result.
func (s *System) RunSession(utterances []sensitive.Utterance) (*SessionResult, error) {
	res := &SessionResult{Mode: s.cfg.Mode, Latency: metrics.NewRecorder()}
	startCycles := s.Clock.Now()
	s.Monitor.ResetStats()

	var runOne func(i int, u sensitive.Utterance) (UtteranceOutcome, error)
	switch s.cfg.Mode {
	case ModeBaseline:
		// Hold the capture stream open across the session so the DMA
		// buffer stays live (and snoopable), mirroring a continuously
		// listening assistant.
		fd, err := s.Kernel.Open("/dev/i2s0")
		if err != nil {
			return nil, fmt.Errorf("core baseline open: %w", err)
		}
		defer func() {
			_ = s.Kernel.Close(fd)
		}()
		runOne = func(i int, u sensitive.Utterance) (UtteranceOutcome, error) {
			return s.runBaselineUtterance(fd, i, u)
		}
	case ModeHybridHE:
		// Hybrid shares the TEEC session but each utterance takes the
		// three-domain round trip: TA transcribe → normal-world encrypt →
		// provider HE eval → TA decrypt + tail.
		ctx := teec.InitializeContext(s.TEE)
		sess, err := ctx.OpenSession(UUIDVoiceTA)
		if err != nil {
			return nil, fmt.Errorf("core session: %w", err)
		}
		defer func() {
			_ = ctx.FinalizeContext()
		}()
		runOne = func(i int, u sensitive.Utterance) (UtteranceOutcome, error) {
			return s.runHybridUtterance(sess, i, u)
		}
	default:
		// Secure modes share one TEEC session across the run.
		ctx := teec.InitializeContext(s.TEE)
		sess, err := ctx.OpenSession(UUIDVoiceTA)
		if err != nil {
			return nil, fmt.Errorf("core session: %w", err)
		}
		defer func() {
			_ = ctx.FinalizeContext()
		}()
		runOne = func(i int, u sensitive.Utterance) (UtteranceOutcome, error) {
			return s.runSecureUtterance(sess, i, u)
		}
	}

	for i, u := range utterances {
		outcome, err := runOne(i, u)
		if err != nil {
			return nil, fmt.Errorf("utterance %d (%q): %w", i, u.Text(), err)
		}
		res.Utterances = append(res.Utterances, outcome)
		if outcome.Shed {
			res.ShedEvents++
		}
		if outcome.Expired {
			res.ExpiredEvents++
		}
		res.Latency.Observe(float64(outcome.Cycles))

		// The compromised OS sweeps the driver's capture buffer after
		// every utterance.
		s.sweepSnoop(res)
	}

	s.finalizeSession(res, startCycles)
	return res, nil
}

// sweepSnoop models the compromised OS reading the driver's live capture
// buffer (blocked by the TZASC in secure modes).
func (s *System) sweepSnoop(res *SessionResult) {
	addr := s.Driver.BufferAddr()
	if addr == 0 {
		return
	}
	got := s.Snooper.Capture(addr, min(64, s.cfg.BufBytes))
	res.Snoop.Attempts++
	if got.Blocked {
		res.Snoop.Blocked++
	} else {
		res.Snoop.BytesRecovered += len(got.Got)
	}
}

// finalizeSession fills the cross-cutting tail of a session result:
// virtual time, monitor stats, radio bytes, cloud/supplicant audits and
// the energy model.
func (s *System) finalizeSession(res *SessionResult, startCycles tz.Cycles) {
	res.TotalCycles = s.Clock.Now() - startCycles
	res.MonitorStats = s.Monitor.Stats()
	s.mu.Lock()
	res.RadioBytes = s.radioBytes
	s.mu.Unlock()

	switch s.cfg.Mode {
	case ModeBaseline:
		res.CloudAudit = s.CloudPlain.Audit()
	default:
		res.CloudAudit = s.CloudSealed.Audit()
		res.SupplicantPlaintextTokens = s.auditSupplicant()
	}

	res.Energy = power.DefaultModel().Measure(power.Usage{
		TotalCycles:  uint64(res.TotalCycles),
		SecureCycles: uint64(res.MonitorStats.SecureCycles),
		Switches:     res.MonitorStats.Switches,
		DMABytes:     s.DMA.Stats().Bytes,
		RadioBytes:   res.RadioBytes,
		FreqHz:       s.cfg.FreqHz,
	})
}

// emitUtteranceSpans exports one processed utterance's stage timeline to
// the device's trace context. Stage starts are laid out back to back from
// start, so the timeline is a pure function of the virtual clock. The
// terminal span carries the admission verdict: a withheld utterance ends
// at classify (blocked), a forwarded one at relay (delivered or shed).
// Only sizes, timings and verdicts are exported — never transcripts.
func (s *System) emitUtteranceSpans(start tz.Cycles, rec ProcessedUtterance, batch int) {
	tc := s.trace
	if !tc.Enabled() {
		return
	}
	// The classify span reports the occupancy of the forward pass that
	// actually served the utterance: with a shared classify service this
	// is the cross-device flush size, not the device's own queue length.
	if rec.ClassifyBatch > 0 {
		batch = rec.ClassifyBatch
	}
	tc.NextItem()
	t := start
	tc.Emit(obs.StageCapture, obs.VerdictNone, t, rec.Stages.Capture, 0, 0)
	t += rec.Stages.Capture
	tc.Emit(obs.StageTranscribe, obs.VerdictNone, t, rec.Stages.Transcribe, 0, 0)
	t += rec.Stages.Transcribe
	if s.cfg.Mode == ModeSecureFilter || s.cfg.Mode == ModeHybridHE {
		v := obs.VerdictNone
		if !rec.Forwarded {
			v = obs.VerdictBlocked
		}
		tc.Emit(obs.StageClassify, v, t, rec.Stages.Classify, 0, batch)
	}
	t += rec.Stages.Classify
	if rec.Forwarded {
		v := obs.VerdictDelivered
		if rec.Shed {
			v = obs.VerdictShed
		}
		if rec.Expired {
			v = obs.VerdictExpired
		}
		tc.Emit(obs.StageRelay, v, t, rec.Stages.Relay, rec.SealedSize, 0)
	}
}

// runBaselineUtterance: mic -> untrusted driver -> user app -> raw audio
// to the cloud, which transcribes server-side.
func (s *System) runBaselineUtterance(fd int, i int, u sensitive.Utterance) (UtteranceOutcome, error) {
	out := UtteranceOutcome{Truth: u}
	start := s.Clock.Now()

	pcm := s.utteranceAudio(i, u)
	wantBytes := len(pcm.Samples) * 2
	s.Mic.Load(pcm)

	if cap(s.baseCaptured) < wantBytes {
		s.baseCaptured = make([]byte, 0, wantBytes)
	}
	captured := s.baseCaptured[:0]
	if cap(s.baseRead) < s.cfg.BufBytes {
		s.baseRead = make([]byte, s.cfg.BufBytes)
	}
	buf := s.baseRead[:s.cfg.BufBytes]
	idle := 0
	for len(captured) < wantBytes {
		if _, err := s.Mic.PumpBytes(min(wantBytes-len(captured)+4096, 8192)); err != nil {
			// Signal exhausted; keep draining the FIFO.
			idle++
		}
		n, err := s.Kernel.Read(fd, buf[:min(len(buf), wantBytes-len(captured))])
		if err != nil {
			return out, err
		}
		if n == 0 {
			idle++
			if idle > 2000 {
				return out, fmt.Errorf("baseline capture stalled at %d/%d", len(captured), wantBytes)
			}
			continue
		}
		idle = 0
		captured = append(captured, buf[:n]...)
	}

	// The app decodes the I2S wire frames to PCM16 and ships the raw
	// audio; charge radio bytes and per-byte CPU cost. The historical
	// path decoded to float64 and re-quantized through EncodePCM16; the
	// round trip is exact for 16-bit samples, so the payload is built
	// from the decoded samples directly, into reusable scratch.
	s.baseCaptured = captured
	samples, err := i2s.DecodeFramesInto(s.baseSamples, captured, i2s.DefaultFormat())
	if err != nil {
		return out, fmt.Errorf("baseline decode: %w", err)
	}
	s.baseSamples = samples
	if cap(s.basePayload) < len(samples)*2 {
		s.basePayload = make([]byte, len(samples)*2)
	}
	payload := s.basePayload[:len(samples)*2]
	for j, v := range samples {
		u := uint16(int16(v))
		payload[2*j] = byte(u)
		payload[2*j+1] = byte(u >> 8)
	}
	s.Clock.Advance(tz.Cycles(len(payload)) * s.Cost.CopyPerByte)
	relayStart := s.Clock.Now()
	s.mu.Lock()
	s.radioBytes += uint64(len(payload))
	sink := s.uplink
	s.mu.Unlock()
	if _, err := sink.Deliver(payload); err != nil {
		// A shed or expired frame was emitted and paid for; the frontend
		// dropped it under pressure (shed) or the retry budget ran out
		// (expired). Both are accounting outcomes, not faults.
		switch {
		case errors.Is(err, cloud.ErrShed):
			out.Shed = true
		case errors.Is(err, cloud.ErrExpired):
			out.Expired = true
		default:
			return out, fmt.Errorf("baseline deliver: %w", err)
		}
	}
	out.Forwarded = true
	out.Cycles = s.Clock.Now() - start
	out.Stages.Capture = out.Cycles // single-stage path
	if tc := s.trace; tc.Enabled() {
		tc.NextItem()
		tc.Emit(obs.StageCapture, obs.VerdictNone, start, relayStart-start, len(payload), 0)
		v := obs.VerdictDelivered
		if out.Shed {
			v = obs.VerdictShed
		}
		if out.Expired {
			v = obs.VerdictExpired
		}
		tc.Emit(obs.StageRelay, v, relayStart, s.Clock.Now()-relayStart, len(payload), 0)
	}
	return out, nil
}

// runSecureUtterance: mic -> secure driver -> PTA -> TA (ASR [+filter])
// -> sealed relay -> supplicant -> cloud.
func (s *System) runSecureUtterance(sess *teec.Session, i int, u sensitive.Utterance) (UtteranceOutcome, error) {
	out := UtteranceOutcome{Truth: u}
	start := s.Clock.Now()

	pcm := s.utteranceAudio(i, u)
	wantBytes := len(pcm.Samples) * 2
	s.Mic.Load(pcm)
	// Stream the whole utterance onto the bus (the big controller FIFO
	// stands in for real-time pacing; see NewSystem).
	for {
		if _, err := s.Mic.PumpBytes(8192); err != nil {
			break
		}
	}

	before := len(s.VoiceTA.Processed())
	p := &optee.Params{{Type: optee.ValueIn, A: uint64(wantBytes)}, {}}
	if err := sess.InvokeCommand(CmdProcessUtterance, p); err != nil {
		return out, err
	}
	records := s.VoiceTA.Processed()
	if len(records) <= before {
		return out, fmt.Errorf("voice ta recorded no utterance")
	}
	rec := records[len(records)-1]
	out.Transcript = rec.Transcript
	out.Flagged = rec.Flagged
	out.Forwarded = rec.Forwarded
	out.Shed = rec.Shed
	out.Expired = rec.Expired
	out.Redacted = rec.Redacted
	out.Stages = rec.Stages
	if rec.SealedSize > 0 {
		s.mu.Lock()
		s.radioBytes += uint64(rec.SealedSize)
		s.mu.Unlock()
	}
	out.Cycles = s.Clock.Now() - start
	s.emitUtteranceSpans(start, rec, 1)
	return out, nil
}

// hybridProcessGroup runs one group of utterances through the hybrid
// HE+TEE split. The TA captures and transcribes the group, staging the
// encoded tokens (CmdTranscribeBatch); the normal world runs the
// embedding head over the staged tokens and encrypts the features under
// the provider's HE public key; the provider evaluates the classifier's
// first conv layer blind over the ciphertexts; and CmdResumeBatchHE
// hands the results back into the TA, which decrypts under the sealed
// secret key and runs the non-linear tail, policy filter and sealed
// relay exactly as secure-filter does. The provider observes ciphertext
// bytes only — never a cleartext feature.
func (s *System) hybridProcessGroup(sess *teec.Session, lo int, group []sensitive.Utterance) error {
	lens := make([]byte, 0, 4*len(group))
	for i, u := range group {
		pcm := s.utteranceAudio(lo+i, u)
		s.Mic.Load(pcm)
		var word [4]byte
		binary.LittleEndian.PutUint32(word[:], uint32(len(pcm.Samples)*2))
		lens = append(lens, word[:]...)
	}
	for {
		if _, err := s.Mic.PumpBytes(8192); err != nil {
			break
		}
	}
	p := &optee.Params{{Type: optee.MemrefIn, Buf: lens}, {}}
	if err := sess.InvokeCommand(CmdTranscribeBatch, p); err != nil {
		return fmt.Errorf("hybrid transcribe: %w", err)
	}

	tokens := s.VoiceTA.PendingTokens()
	if len(tokens) != len(group) {
		return fmt.Errorf("hybrid stage: %d token sets for %d utterances", len(tokens), len(group))
	}
	blobs := make([][]byte, len(tokens))
	feats := make([]float32, s.heSplit.SeqLen)
	for i, ids := range tokens {
		for j := range feats {
			feats[j] = 0
		}
		for j := 0; j < len(ids) && j < len(feats); j++ {
			feats[j] = float32(ids[j])
		}
		data, shape, err := s.heSplit.EmbedFeatures(feats)
		if err != nil {
			return fmt.Errorf("hybrid embed %d: %w", i, err)
		}
		ct, err := s.HEEval.Encrypt(s.HEPub, data, shape)
		if err != nil {
			return fmt.Errorf("hybrid encrypt %d: %w", i, err)
		}
		wire := ct.Marshal(s.HEEval.Params)
		res, err := s.HE.EvalText(wire)
		if err != nil {
			return fmt.Errorf("hybrid eval %d: %w", i, err)
		}
		// Ciphertext traffic rides the radio in both directions.
		s.mu.Lock()
		s.radioBytes += uint64(len(wire) + len(res))
		s.mu.Unlock()
		blobs[i] = res
	}

	p = &optee.Params{{Type: optee.MemrefIn, Buf: packLengthPrefixed(blobs)}, {}}
	if err := sess.InvokeCommand(CmdResumeBatchHE, p); err != nil {
		return fmt.Errorf("hybrid resume: %w", err)
	}
	return nil
}

// runHybridUtterance is the per-utterance RunSession arm of the hybrid
// split: one-element group through hybridProcessGroup.
func (s *System) runHybridUtterance(sess *teec.Session, i int, u sensitive.Utterance) (UtteranceOutcome, error) {
	out := UtteranceOutcome{Truth: u}
	start := s.Clock.Now()
	before := len(s.VoiceTA.Processed())
	if err := s.hybridProcessGroup(sess, i, []sensitive.Utterance{u}); err != nil {
		return out, err
	}
	records := s.VoiceTA.Processed()
	if len(records) <= before {
		return out, fmt.Errorf("voice ta recorded no utterance")
	}
	rec := records[len(records)-1]
	out.Transcript = rec.Transcript
	out.Flagged = rec.Flagged
	out.Forwarded = rec.Forwarded
	out.Shed = rec.Shed
	out.Expired = rec.Expired
	out.Redacted = rec.Redacted
	out.Stages = rec.Stages
	if rec.SealedSize > 0 {
		s.mu.Lock()
		s.radioBytes += uint64(rec.SealedSize)
		s.mu.Unlock()
	}
	out.Cycles = s.Clock.Now() - start
	s.emitUtteranceSpans(start, rec, 1)
	return out, nil
}

// RunSessionBatched is RunSession for the secure modes with TA-side
// batching: utterances are queued onto the bus in groups of `batch` and
// each group is processed by ONE CmdProcessBatch invocation, so the
// session pays one world-switch round trip per group instead of per
// utterance, and the classifier runs one batched forward pass per group.
// Baseline mode has no TA to batch into and falls back to RunSession.
func (s *System) RunSessionBatched(utterances []sensitive.Utterance, batch int) (*SessionResult, error) {
	if s.cfg.Mode == ModeBaseline || batch <= 1 {
		return s.RunSession(utterances)
	}
	if batch > MaxBatch {
		batch = MaxBatch
	}
	res := &SessionResult{Mode: s.cfg.Mode, Latency: metrics.NewRecorder()}
	startCycles := s.Clock.Now()
	s.Monitor.ResetStats()

	ctx := teec.InitializeContext(s.TEE)
	sess, err := ctx.OpenSession(UUIDVoiceTA)
	if err != nil {
		return nil, fmt.Errorf("core session: %w", err)
	}
	defer func() {
		_ = ctx.FinalizeContext()
	}()

	for lo := 0; lo < len(utterances); lo += batch {
		hi := min(lo+batch, len(utterances))
		group := utterances[lo:hi]
		groupStart := s.Clock.Now()
		before := len(s.VoiceTA.Processed())

		if s.cfg.Mode == ModeHybridHE {
			// The hybrid split stages transcripts and routes the group
			// through the HE round trip; two invocations per group instead
			// of one, but still one capture queueing.
			if err := s.hybridProcessGroup(sess, lo, group); err != nil {
				return nil, fmt.Errorf("batch at %d: %w", lo, err)
			}
		} else {
			// Queue the whole group onto the bus; the mic appends signals,
			// so the FIFO holds the utterances back to back.
			lens := make([]byte, 0, 4*len(group))
			for i, u := range group {
				pcm := s.utteranceAudio(lo+i, u)
				s.Mic.Load(pcm)
				var word [4]byte
				binary.LittleEndian.PutUint32(word[:], uint32(len(pcm.Samples)*2))
				lens = append(lens, word[:]...)
			}
			for {
				if _, err := s.Mic.PumpBytes(8192); err != nil {
					break
				}
			}
			p := &optee.Params{{Type: optee.MemrefIn, Buf: lens}, {}}
			if err := sess.InvokeCommand(CmdProcessBatch, p); err != nil {
				return nil, fmt.Errorf("batch at %d: %w", lo, err)
			}
		}
		records := s.VoiceTA.Processed()
		if len(records) != before+len(group) {
			return nil, fmt.Errorf("batch at %d: %d records for %d utterances", lo, len(records)-before, len(group))
		}
		cursor := groupStart
		for i, rec := range records[before:] {
			s.emitUtteranceSpans(cursor, rec, len(group))
			cursor += rec.Stages.Total()
			out := UtteranceOutcome{
				Truth:      group[i],
				Transcript: rec.Transcript,
				Flagged:    rec.Flagged,
				Forwarded:  rec.Forwarded,
				Shed:       rec.Shed,
				Expired:    rec.Expired,
				Redacted:   rec.Redacted,
				Cycles:     rec.Stages.Total(),
				Stages:     rec.Stages,
			}
			if rec.SealedSize > 0 {
				s.mu.Lock()
				s.radioBytes += uint64(rec.SealedSize)
				s.mu.Unlock()
			}
			res.Utterances = append(res.Utterances, out)
			if out.Shed {
				res.ShedEvents++
			}
			if out.Expired {
				res.ExpiredEvents++
			}
			res.Latency.Observe(float64(out.Cycles))
		}

		// The compromised OS sweeps the capture buffer between batches.
		s.sweepSnoop(res)
	}

	s.finalizeSession(res, startCycles)
	return res, nil
}

// utteranceAudio renders utterance i with a per-utterance voice seed so
// renditions vary across the session. The returned PCM aliases the
// system's synthesis scratch: it is valid until the next utteranceAudio
// call (the microphone copies on Load).
func (s *System) utteranceAudio(i int, u sensitive.Utterance) audio.PCM {
	v := s.Voice
	v.Seed = s.cfg.Seed*1_000_003 + uint64(i)*97 + 13
	pcm := v.SynthesizeInto(s.synthBuf, u.Words)
	s.synthBuf = pcm.Samples[:0]
	return pcm
}

// auditSupplicant counts private plaintext tokens in the payloads the
// untrusted daemon forwarded. Sealed frames contain none; this is the
// test that the supplicant learned nothing.
func (s *System) auditSupplicant() int {
	count := 0
	for _, payload := range s.Supplicant.Observed() {
		// A hostile supplicant would scan forwarded bytes for words it
		// knows. Count lexicon words appearing verbatim.
		for _, w := range s.Vocab.Words() {
			if sensitive.IsSensitiveWord(w) && containsWord(payload, w) {
				count++
			}
		}
	}
	return count
}

func containsWord(payload []byte, word string) bool {
	if len(word) == 0 || len(payload) < len(word) {
		return false
	}
	for i := 0; i+len(word) <= len(payload); i++ {
		if string(payload[i:i+len(word)]) == word {
			return true
		}
	}
	return false
}
