package core

import (
	"errors"
	"testing"

	"repro/internal/ml/classify"
	"repro/internal/relay"
	"repro/internal/sensitive"
	"repro/internal/tz"
)

// testUtterances is a small session with known sensitive content.
func testUtterances() []sensitive.Utterance {
	return []sensitive.Utterance{
		{Words: []string{"turn", "on", "the", "light"}, Sensitive: false},
		{Words: []string{"my", "password", "is", "tango", "seven"}, Sensitive: true},
		{Words: []string{"play", "some", "music"}, Sensitive: false},
		{Words: []string{"my", "account", "number", "is", "nine", "two"}, Sensitive: true},
		{Words: []string{"what", "is", "the", "weather"}, Sensitive: false},
		{Words: []string{"call", "my", "doctor", "about", "the", "diagnosis"}, Sensitive: true},
	}
}

func runMode(t *testing.T, mode Mode, policy relay.Policy) *SessionResult {
	t.Helper()
	sys, err := NewSystem(Config{Mode: mode, Policy: policy, Seed: 42})
	if err != nil {
		t.Fatalf("NewSystem(%v): %v", mode, err)
	}
	res, err := sys.RunSession(testUtterances())
	if err != nil {
		t.Fatalf("RunSession(%v): %v", mode, err)
	}
	return res
}

func TestBaselineLeaksEverything(t *testing.T) {
	res := runMode(t, ModeBaseline, relay.PolicyPassThrough)
	if res.CloudAudit.Events != len(testUtterances()) {
		t.Errorf("cloud saw %d events, want %d", res.CloudAudit.Events, len(testUtterances()))
	}
	// The provider transcribed raw audio and saw private tokens (§I leak).
	if res.CloudAudit.SensitiveTokens == 0 {
		t.Error("baseline cloud saw no sensitive tokens; the leak should exist")
	}
	// The compromised OS snooped the DMA buffer successfully.
	if res.Snoop.Attempts == 0 {
		t.Fatal("snooper made no attempts")
	}
	if res.Snoop.Blocked != 0 {
		t.Errorf("baseline snooper blocked %d/%d times; DMA buffer is normal RAM", res.Snoop.Blocked, res.Snoop.Attempts)
	}
	if res.Snoop.BytesRecovered == 0 {
		t.Error("baseline snooper recovered no bytes")
	}
	// Raw audio dominates radio traffic.
	if res.RadioBytes < 100_000 {
		t.Errorf("baseline radio bytes = %d, want raw-audio scale", res.RadioBytes)
	}
}

func TestSecureNoFilterStopsOSButNotCloud(t *testing.T) {
	res := runMode(t, ModeSecureNoFilter, relay.PolicyPassThrough)
	// TrustZone blocks every snoop attempt.
	if res.Snoop.Attempts == 0 {
		t.Fatal("snooper made no attempts")
	}
	if res.Snoop.Blocked != res.Snoop.Attempts {
		t.Errorf("snooper blocked %d/%d, want all", res.Snoop.Blocked, res.Snoop.Attempts)
	}
	if res.Snoop.BytesRecovered != 0 {
		t.Errorf("snooper recovered %d bytes from secure RAM", res.Snoop.BytesRecovered)
	}
	// But the full transcript still reaches the cloud: sensitive tokens leak.
	if res.CloudAudit.SensitiveTokens == 0 {
		t.Error("secure-nofilter cloud saw no sensitive tokens; transcripts should pass through")
	}
	// The supplicant forwarded only sealed frames: no plaintext tokens.
	if res.SupplicantPlaintextTokens != 0 {
		t.Errorf("supplicant saw %d plaintext private tokens", res.SupplicantPlaintextTokens)
	}
}

func TestSecureFilterStopsBoth(t *testing.T) {
	res := runMode(t, ModeSecureFilter, relay.PolicyBlock)
	if res.Snoop.Blocked != res.Snoop.Attempts || res.Snoop.Attempts == 0 {
		t.Errorf("snooper blocked %d/%d", res.Snoop.Blocked, res.Snoop.Attempts)
	}
	// The filter keeps private tokens from the cloud.
	nofilter := runMode(t, ModeSecureNoFilter, relay.PolicyPassThrough)
	if res.CloudAudit.SensitiveTokens >= nofilter.CloudAudit.SensitiveTokens {
		t.Errorf("filter leaked %d sensitive tokens vs %d without filter",
			res.CloudAudit.SensitiveTokens, nofilter.CloudAudit.SensitiveTokens)
	}
	if res.CloudAudit.SensitiveTokens != 0 {
		t.Logf("note: filter leaked %d sensitive tokens (ASR/classifier imperfection)", res.CloudAudit.SensitiveTokens)
	}
	if res.SupplicantPlaintextTokens != 0 {
		t.Errorf("supplicant saw %d plaintext private tokens", res.SupplicantPlaintextTokens)
	}
	// Benign traffic still flows: not everything is blocked.
	if res.FalseBlockRate() > 0.5 {
		t.Errorf("false block rate = %v, filter too aggressive", res.FalseBlockRate())
	}
	forwarded := 0
	for _, u := range res.Utterances {
		if u.Forwarded {
			forwarded++
		}
	}
	if forwarded == 0 {
		t.Error("no utterances forwarded at all")
	}
}

func TestRedactPolicyForwardsSanitizedTranscripts(t *testing.T) {
	res := runMode(t, ModeSecureFilter, relay.PolicyRedact)
	totalRedacted := 0
	for _, u := range res.Utterances {
		totalRedacted += u.Redacted
	}
	if totalRedacted == 0 {
		t.Error("redact policy redacted nothing")
	}
	// Redacted transcripts reach the cloud with placeholders, not tokens.
	if res.CloudAudit.SensitiveTokens != 0 {
		t.Errorf("cloud saw %d sensitive tokens under redaction", res.CloudAudit.SensitiveTokens)
	}
	foundPlaceholder := false
	for _, tr := range res.CloudAudit.Transcripts {
		for _, tok := range tr {
			if tok == relay.RedactedToken {
				foundPlaceholder = true
			}
		}
	}
	if !foundPlaceholder {
		t.Error("no redaction placeholder reached the cloud")
	}
}

func TestSecurityPerformanceTradeoff(t *testing.T) {
	base := runMode(t, ModeBaseline, relay.PolicyPassThrough)
	secure := runMode(t, ModeSecureFilter, relay.PolicyBlock)
	// The paper's core prediction (§III): security costs performance...
	if secure.Latency.Mean() <= base.Latency.Mean() {
		t.Errorf("secure mean latency %v not above baseline %v",
			secure.Latency.Mean(), base.Latency.Mean())
	}
	// ...and compute energy (the in-TEE ASR + classifier work the device
	// would otherwise offload to the cloud).
	secureCompute := secure.Energy.CPUmJ + secure.Energy.SecuremJ + secure.Energy.SwitchmJ
	baseCompute := base.Energy.CPUmJ + base.Energy.SecuremJ + base.Energy.SwitchmJ
	if secureCompute <= baseCompute {
		t.Errorf("secure compute energy %v mJ not above baseline %v mJ", secureCompute, baseCompute)
	}
	// On the other side of the trade-off, radio energy collapses
	// (transcript events vs raw audio).
	if secure.Energy.RadiomJ >= base.Energy.RadiomJ {
		t.Errorf("secure radio energy %v mJ not below baseline %v mJ",
			secure.Energy.RadiomJ, base.Energy.RadiomJ)
	}
	// But radio traffic shrinks dramatically (transcripts vs raw audio).
	if secure.RadioBytes >= base.RadioBytes {
		t.Errorf("secure radio %d not below baseline %d", secure.RadioBytes, base.RadioBytes)
	}
	// World switches only exist in secure mode.
	if base.MonitorStats.Switches != 0 {
		t.Errorf("baseline performed %d world switches", base.MonitorStats.Switches)
	}
	if secure.MonitorStats.Switches == 0 {
		t.Error("secure mode performed no world switches")
	}
}

func TestStageBreakdownPopulated(t *testing.T) {
	res := runMode(t, ModeSecureFilter, relay.PolicyBlock)
	var agg StageCycles
	for _, u := range res.Utterances {
		agg.Capture += u.Stages.Capture
		agg.Transcribe += u.Stages.Transcribe
		agg.Classify += u.Stages.Classify
		agg.Relay += u.Stages.Relay
	}
	if agg.Capture == 0 || agg.Transcribe == 0 || agg.Classify == 0 {
		t.Errorf("stage breakdown has zeros: %+v", agg)
	}
	// At least one utterance was forwarded, so relay cycles exist.
	if agg.Relay == 0 {
		t.Errorf("relay stage empty: %+v", agg)
	}
	if agg.Total() != agg.Capture+agg.Transcribe+agg.Classify+agg.Relay {
		t.Error("Total() inconsistent")
	}
}

func TestDeterminism(t *testing.T) {
	a := runMode(t, ModeSecureFilter, relay.PolicyBlock)
	b := runMode(t, ModeSecureFilter, relay.PolicyBlock)
	if a.CloudAudit.TokensSeen != b.CloudAudit.TokensSeen ||
		a.CloudAudit.SensitiveTokens != b.CloudAudit.SensitiveTokens {
		t.Errorf("non-deterministic cloud audit: %+v vs %+v", a.CloudAudit, b.CloudAudit)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Errorf("non-deterministic cycles: %d vs %d", a.TotalCycles, b.TotalCycles)
	}
}

func TestWorldSwitchCostSweepChangesLatency(t *testing.T) {
	latencyAt := func(switchCycles tz.Cycles) float64 {
		sys, err := NewSystem(Config{
			Mode: ModeSecureNoFilter, Seed: 42, WorldSwitchCycles: switchCycles,
		})
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		res, err := sys.RunSession(testUtterances()[:2])
		if err != nil {
			t.Fatalf("RunSession: %v", err)
		}
		return res.Latency.Mean()
	}
	cheap := latencyAt(1000)
	costly := latencyAt(100_000)
	if costly <= cheap {
		t.Errorf("100k-cycle switches (%v) not slower than 1k (%v)", costly, cheap)
	}
}

func TestBufferSizeAffectsSecureLatency(t *testing.T) {
	latencyAt := func(buf int) float64 {
		sys, err := NewSystem(Config{Mode: ModeSecureNoFilter, Seed: 42, BufBytes: buf})
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		res, err := sys.RunSession(testUtterances()[:2])
		if err != nil {
			t.Fatalf("RunSession: %v", err)
		}
		return res.Latency.Mean()
	}
	small := latencyAt(512)
	large := latencyAt(16384)
	// Bigger DMA buffers amortize per-chunk overhead.
	if large >= small {
		t.Errorf("16KiB buffers (%v cycles) not faster than 512B (%v cycles)", large, small)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); !errors.Is(err, ErrBadMode) {
		t.Errorf("zero mode = %v", err)
	}
	if _, err := NewSystem(Config{Mode: Mode(9)}); !errors.Is(err, ErrBadMode) {
		t.Errorf("bad mode = %v", err)
	}
	if _, err := NewSystem(Config{Mode: ModeBaseline, BufBytes: 1 << 22}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("huge buffer = %v", err)
	}
}

func TestModeAndPolicyStrings(t *testing.T) {
	if ModeBaseline.String() != "baseline" ||
		ModeSecureNoFilter.String() != "secure-nofilter" ||
		ModeSecureFilter.String() != "secure-filter" ||
		Mode(9).String() != "mode(9)" {
		t.Error("mode names wrong")
	}
}

func TestClassifierArchSelection(t *testing.T) {
	for _, arch := range []classify.Arch{classify.ArchCNN, classify.ArchTransformer, classify.ArchHybrid} {
		sys, err := NewSystem(Config{Mode: ModeSecureFilter, Arch: arch, Seed: 42})
		if err != nil {
			t.Fatalf("NewSystem(%v): %v", arch, err)
		}
		res, err := sys.RunSession(testUtterances()[:3])
		if err != nil {
			t.Fatalf("RunSession(%v): %v", arch, err)
		}
		if len(res.Utterances) != 3 {
			t.Errorf("%v processed %d utterances", arch, len(res.Utterances))
		}
	}
}

func TestSealedWeightsLoadedFromSecureStorage(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeSecureFilter, Seed: 42})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	// The weights object exists and is sealed (not plaintext).
	blob, ok := sys.Storage.SealedBytes(weightsObjectID)
	if !ok {
		t.Fatal("classifier weights not in secure storage")
	}
	if len(blob) == 0 {
		t.Fatal("empty sealed weights")
	}
	// Corrupt the sealed object: the TA must now fail when it unseals
	// the weights (at first classify), so the session errors out.
	if !sys.Storage.Tamper(weightsObjectID, len(blob)/2) {
		t.Fatal("tamper failed")
	}
	_, err = sys.RunSession(testUtterances()[:1])
	if err == nil {
		t.Error("session succeeded with tampered sealed weights")
	}
}

func TestLeakageRateAndFalseBlockRateBounds(t *testing.T) {
	res := runMode(t, ModeSecureFilter, relay.PolicyBlock)
	if r := res.LeakageRate(); r < 0 {
		t.Errorf("LeakageRate = %v", r)
	}
	if r := res.FalseBlockRate(); r < 0 || r > 1 {
		t.Errorf("FalseBlockRate = %v", r)
	}
	empty := &SessionResult{}
	if empty.LeakageRate() != 0 || empty.FalseBlockRate() != 0 {
		t.Error("empty result rates should be 0")
	}
}
