package core

// Device-side uplink retry. The fleet's uplink was fire-once: any
// delivery failure surfaced straight to the TA. Under a chaos plan the
// uplink drops attempts and shards crash mid-restart, so the device
// needs the classic edge strategy — bounded exponential backoff with
// deterministic jitter, spent in *virtual* cycles on the device's own
// clock, under a per-frame deadline budget. A frame that exhausts the
// budget becomes an explicit Expired outcome (cloud.ErrExpired →
// supplicant.ErrExpired), never a silent loss: the accounting identity
// is expected == ingested + shed + expired.
//
// Determinism: the backoff schedule is a pure function of the retry
// seed and the sequence of transient failures the sink reports. The
// same seed and the same failure pattern replay the same schedule
// bit-for-bit; wall-clock scheduling can change *when* a retry runs,
// never how long it charges the virtual clock.

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/supplicant"
	"repro/internal/tz"
)

// RetryConfig bounds the uplink retry loop.
type RetryConfig struct {
	// Attempts is the maximum delivery attempts per frame (default 8;
	// the first attempt counts, so Attempts=1 disables retry).
	Attempts int
	// BaseBackoff is the first retry's backoff in virtual cycles
	// (default 10_000); each further retry doubles it up to MaxBackoff
	// (default 320_000).
	BaseBackoff tz.Cycles
	MaxBackoff  tz.Cycles
	// Budget is the per-frame deadline: the total backoff a frame may
	// charge the device clock before it expires (default 4_000_000).
	Budget tz.Cycles
	// Seed feeds the deterministic jitter stream (uniform in
	// [0, backoff/2], drawn per retry).
	Seed uint64
}

func (c *RetryConfig) fillDefaults() {
	if c.Attempts <= 0 {
		c.Attempts = 8
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 10_000
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 320_000
	}
	if c.Budget == 0 {
		c.Budget = 4_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RetryStats counts what the retry layer did.
type RetryStats struct {
	// Deliveries is frames that ultimately succeeded; Recovered the
	// subset that needed at least one retry.
	Deliveries uint64
	Recovered  uint64
	// Retries is individual retry attempts across all frames.
	Retries uint64
	// Expired is frames given up on (budget or attempts exhausted).
	Expired uint64
	// BackoffCycles is the total virtual time charged for backoff waits.
	BackoffCycles tz.Cycles
}

// RetrySink wraps a device's uplink sink with the retry loop. It is the
// outermost delivery layer: the supplicant (or the baseline speaker)
// hands it a frame once, and everything it takes to land that frame —
// backoff, re-delivery, expiry classification — happens inside.
type RetrySink struct {
	sink  supplicant.NetSink
	clock *tz.Clock
	cfg   RetryConfig
	rng   *rand.Rand

	mu    sync.Mutex
	stats RetryStats
}

// NewRetrySink builds the retry layer over sink, charging backoff to the
// device clock. Zero-valued config fields take the documented defaults.
func NewRetrySink(sink supplicant.NetSink, clock *tz.Clock, cfg RetryConfig) *RetrySink {
	cfg.fillDefaults()
	return &RetrySink{
		sink:  sink,
		clock: clock,
		cfg:   cfg,
		// The stream label is offset from SaltFault so a retry layer and a
		// fault injector sharing one derived device seed draw from
		// independent streams (jitter must not correlate with injections).
		rng: NewRNG(cfg.Seed, SaltFault^0xbac0ff),
	}
}

// Deliver implements supplicant.NetSink. A frame that succeeds is never
// re-sent — an admitted frame cannot be retried into a double-count.
// Transient failures (supplicant.ErrTransient chain: injected drops,
// ErrShardCrashed) back off and retry; anything else returns unchanged.
func (r *RetrySink) Deliver(frame []byte) ([]byte, error) {
	var waited tz.Cycles
	for attempt := 1; ; attempt++ {
		reply, err := r.sink.Deliver(frame)
		if err == nil {
			r.mu.Lock()
			r.stats.Deliveries++
			if attempt > 1 {
				r.stats.Recovered++
			}
			r.mu.Unlock()
			return reply, nil
		}
		if !errors.Is(err, supplicant.ErrTransient) {
			return nil, err
		}
		if attempt >= r.cfg.Attempts {
			return nil, r.expire(attempt, err)
		}
		d := r.backoff(attempt)
		if waited+d > r.cfg.Budget {
			return nil, r.expire(attempt, err)
		}
		waited += d
		r.clock.Advance(d)
		r.mu.Lock()
		r.stats.Retries++
		r.stats.BackoffCycles += d
		r.mu.Unlock()
		if errors.Is(err, cloud.ErrShardCrashed) {
			// The owner is briefly down awaiting its supervisor restart —
			// a wall-clock condition, so give the supervisor wall time
			// (growing, bounded). The virtual charge above is what the
			// device accounts; this sleep only paces the wall-clock race.
			sleep := 100 * time.Microsecond << uint(attempt)
			if sleep > 5*time.Millisecond {
				sleep = 5 * time.Millisecond
			}
			time.Sleep(sleep)
		} else {
			runtime.Gosched()
		}
	}
}

// backoff returns retry attempt's wait: BaseBackoff doubled per attempt,
// capped at MaxBackoff, plus deterministic jitter in [0, wait/2].
func (r *RetrySink) backoff(attempt int) tz.Cycles {
	d := r.cfg.MaxBackoff
	if attempt-1 < 32 {
		if shifted := r.cfg.BaseBackoff << uint(attempt-1); shifted < d {
			d = shifted
		}
	}
	return d + tz.Cycles(r.rng.Uint64N(uint64(d)/2+1))
}

func (r *RetrySink) expire(attempts int, cause error) error {
	r.mu.Lock()
	r.stats.Expired++
	r.mu.Unlock()
	return fmt.Errorf("%w: retry budget exhausted after %d attempts: %w", cloud.ErrExpired, attempts, cause)
}

// Stats snapshots the retry counters.
func (r *RetrySink) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
