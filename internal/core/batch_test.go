package core

import (
	"testing"

	"repro/internal/sensitive"
)

// TestBatchedSessionMatchesUnbatched: the TA's batched path must produce
// the same privacy outcome as the per-utterance path while paying fewer
// world-switch round trips.
func TestBatchedSessionMatchesUnbatched(t *testing.T) {
	utts, err := sensitive.Generate(sensitive.GenConfig{N: 8, SensitiveFraction: 0.5, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeSecureFilter, Seed: 21}

	single, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	one, err := single.RunSession(utts)
	if err != nil {
		t.Fatal(err)
	}

	batched, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	many, err := batched.RunSessionBatched(utts, 4)
	if err != nil {
		t.Fatal(err)
	}

	if len(one.Utterances) != len(many.Utterances) {
		t.Fatalf("utterance counts differ: %d vs %d", len(one.Utterances), len(many.Utterances))
	}
	for i := range one.Utterances {
		u, b := one.Utterances[i], many.Utterances[i]
		if u.Flagged != b.Flagged || u.Forwarded != b.Forwarded || u.Redacted != b.Redacted {
			t.Fatalf("utterance %d outcome differs: %+v vs %+v", i, u, b)
		}
	}
	if one.CloudAudit.SensitiveTokens != many.CloudAudit.SensitiveTokens ||
		one.CloudAudit.Events != many.CloudAudit.Events {
		t.Fatalf("cloud audits differ: %+v vs %+v", one.CloudAudit, many.CloudAudit)
	}

	if many.MonitorStats.Switches >= one.MonitorStats.Switches {
		t.Fatalf("batching did not amortize world switches: %d (batched) vs %d (single)",
			many.MonitorStats.Switches, one.MonitorStats.Switches)
	}
}

// TestBatchClampsToMaxBatch: oversized batch requests are clamped, not
// rejected.
func TestBatchClampsToMaxBatch(t *testing.T) {
	utts, err := sensitive.Generate(sensitive.GenConfig{N: 3, SensitiveFraction: 0.4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{Mode: ModeSecureNoFilter, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunSessionBatched(utts, MaxBatch*10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utterances) != len(utts) {
		t.Fatalf("processed %d utterances, want %d", len(res.Utterances), len(utts))
	}
}

// TestDeriveSeedStable: per-device seed derivation is deterministic,
// non-zero and collision-free over a large fleet index range.
func TestDeriveSeedStable(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 10_000; i++ {
		s := DeriveSeed(42, SaltDeviceSeed, i)
		if s == 0 {
			t.Fatalf("zero seed at index %d", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between devices %d and %d", prev, i)
		}
		seen[s] = i
		if s != DeriveSeed(42, SaltDeviceSeed, i) {
			t.Fatalf("derivation unstable at index %d", i)
		}
	}
}
