package core

// Deterministic randomness for the whole simulation. Every random stream
// in core is a PCG derived from an explicit (seed, stream) pair — there is
// no package-level randomness anywhere in the pipeline — so a fleet of
// thousands of devices can be reproduced bit-for-bit from one root seed.
//
// Streams are labelled with salts so independent consumers (identity
// generation, classifier init, per-device seeds, workload synthesis)
// never share a PCG state even when they share the root seed.

import (
	"io"
	"math/rand/v2"
)

// Stream salts used by core and the fleet layer. Values are arbitrary but
// fixed: changing them changes every derived stream.
const (
	// SaltClassifier seeds text-classifier weight init (must match between
	// offline training and in-TA unsealing).
	SaltClassifier uint64 = 0x7a57
	// SaltImage seeds image-classifier weight init.
	SaltImage uint64 = 0xca3e
	// SaltDeviceSeed derives per-device seeds from a fleet root seed.
	SaltDeviceSeed uint64 = 0xf1ee7
	// SaltWorkload derives per-device workload seeds.
	SaltWorkload uint64 = 0x40ad
	// SaltAttestKey derives per-device attestation-key seeds (the
	// simulated hardware unique key both the device TEE and the
	// provisioning authority expand into the shared attestation key).
	SaltAttestKey uint64 = 0xa77e57
	// SaltModelRollout derives the training seed of a published model-pack
	// version from the fleet root seed and the pack version.
	SaltModelRollout uint64 = 0x70115
	// SaltChurn derives the fleet churn arrival stream (joiner arrival
	// placement, leaver selection) from the fleet root seed.
	SaltChurn uint64 = 0xc40a9
	// SaltLifecycle derives the attestation-lifecycle selection stream
	// (which devices rotate keys or are revoked mid-run).
	SaltLifecycle uint64 = 0x11f3c
	// SaltTrace derives per-device telemetry sampling seeds (internal/obs
	// decides from this seed alone whether a device's frames are traced).
	SaltTrace uint64 = 0x7ace
	// SaltFault derives the fault-plan streams (which devices a chaos plan
	// touches, their per-frame injection decisions, retry jitter) so a
	// fault run replays bit-for-bit from the root seed.
	SaltFault uint64 = 0xfa17
)

// NewRNG returns the deterministic PCG stream for the pair. It is the
// single constructor behind all randomness in core; callers outside the
// package (fleet, experiments) use it so their derived streams line up
// with the device-side ones.
func NewRNG(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, stream))
}

// NewSeedReader adapts the (seed, stream) PCG to io.Reader for key
// generation and other byte-oriented consumers.
func NewSeedReader(seed, stream uint64) io.Reader {
	return seededReader{NewRNG(seed, stream)}
}

// DeriveSeed folds an index into a root seed, giving each fleet member an
// independent but reproducible seed.
func DeriveSeed(root uint64, salt uint64, index int) uint64 {
	r := NewRNG(root^salt, uint64(index)*0x9e3779b97f4a7c15+1)
	return r.Uint64() | 1 // never zero: zero means "default seed" to callers
}
