package core

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"repro/internal/attest"
)

// TestRotateKeySealsEpochAndReattests: the voice TA redeems a rotation
// token (CmdRotateKey), seals the new epoch next to its model weights,
// and signs subsequent evidence under the new epoch key — while a
// handshake minted before the rotation still verifies inside the grace
// window.
func TestRotateKeySealsEpochAndReattests(t *testing.T) {
	r := newAttestRig(t, ModeSecureFilter)
	const id = "dev-under-test"

	// Evidence signed at epoch 0, before the rotation is issued...
	nonce := r.verifier.Challenge(id)
	inFlight, err := r.sys.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := r.verifier.Rotate(id)
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	// ...is still honored after it (the grace window).
	if err := r.verifier.Verify(inFlight); err != nil {
		t.Fatalf("in-flight handshake across a rotation: %v", err)
	}

	epoch, err := r.sys.RotateKey(tok)
	if err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	if epoch != 1 || r.sys.KeyEpoch() != 1 {
		t.Fatalf("key epoch = %d/%d, want 1", epoch, r.sys.KeyEpoch())
	}
	// The epoch record is sealed into secure storage next to the model
	// objects: present, confidential, and unsealing to the new epoch.
	sealed, ok := r.sys.Storage.SealedBytes(keyEpochObjectID)
	if !ok {
		t.Fatal("key-epoch record not persisted in secure storage")
	}
	var plain [8]byte
	binary.LittleEndian.PutUint64(plain[:], 1)
	if len(sealed) <= len(plain) {
		t.Fatalf("key-epoch record not sealed: %d bytes", len(sealed))
	}
	blob, err := r.sys.Storage.Get(keyEpochObjectID)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(blob) != 1 {
		t.Fatalf("sealed epoch = %d, want 1", binary.LittleEndian.Uint64(blob))
	}

	// Re-attestation at the new epoch verifies and closes the window.
	rep, err := r.sys.Attest(r.verifier.Challenge(id))
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeyEpoch != 1 {
		t.Fatalf("report epoch %d, want 1", rep.KeyEpoch)
	}
	if err := r.verifier.Verify(rep); err != nil {
		t.Fatalf("re-attest at new epoch: %v", err)
	}

	// A replayed (stale) token no longer redeems; the epoch stays put.
	if _, err := r.sys.RotateKey(tok); !errors.Is(err, attest.ErrBadRotation) {
		t.Fatalf("stale token: got %v, want ErrBadRotation", err)
	}
	if r.sys.KeyEpoch() != 1 {
		t.Fatalf("epoch moved to %d on a rejected token", r.sys.KeyEpoch())
	}
}

// TestRotateKeyRestoredOnRestart: a TA constructed over a storage that
// holds a sealed key-epoch record resumes signing at the rotated epoch
// — the record is not write-only provenance.
func TestRotateKeyRestoredOnRestart(t *testing.T) {
	r := newAttestRig(t, ModeSecureFilter)
	tok, err := r.verifier.Rotate("dev-under-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.sys.RotateKey(tok); err != nil {
		t.Fatal(err)
	}
	// "Restart": rebuild the TA over the same sealed storage with a
	// fresh provisioning-epoch attestor, as a reboot would.
	cfg := r.sys.VoiceTA.cfg
	cfg.Attestor = attest.NewAttestor("dev-under-test", r.key)
	restarted, err := NewVoiceTA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := restarted.KeyEpoch(); got != 1 {
		t.Fatalf("restarted TA signs at epoch %d, want the sealed epoch 1", got)
	}
	// Its evidence verifies at the rotated epoch without a new redeem.
	rep, err := restarted.attestReport(r.verifier.Challenge("dev-under-test"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.verifier.Verify(rep); err != nil {
		t.Fatalf("restarted TA evidence: %v", err)
	}
}

// TestCameraRotateKey: the camera TA twin of CmdRotateKey.
func TestCameraRotateKey(t *testing.T) {
	const keySeed = 888
	sys, err := NewCameraSystem(CameraConfig{
		Mode:          ModeSecureFilter,
		Seed:          42,
		DeviceID:      "cam-under-test",
		AttestKeySeed: keySeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := attest.KeyFromSeed(keySeed)
	v := attest.NewVerifier(1, func(id string) (attest.DeviceKey, bool) {
		return key, id == "cam-under-test"
	})
	v.AllowMeasurement(CameraTADigest, true)

	tok, err := v.Rotate("cam-under-test")
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := sys.RotateKey(tok)
	if err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	if epoch != 1 || sys.KeyEpoch() != 1 {
		t.Fatalf("key epoch = %d/%d, want 1", epoch, sys.KeyEpoch())
	}
	if _, ok := sys.Storage.SealedBytes(cameraKeyEpochID); !ok {
		t.Fatal("camera key-epoch record not persisted in secure storage")
	}
	rep, err := sys.Attest(v.Challenge("cam-under-test"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeyEpoch != 1 {
		t.Fatalf("report epoch %d, want 1", rep.KeyEpoch)
	}
	if err := v.Verify(rep); err != nil {
		t.Fatalf("verify at new epoch: %v", err)
	}
	// A forged token (wrong key) is rejected in the TA.
	forged := attest.RotationToken{DeviceID: "cam-under-test", NewEpoch: 2}
	if _, err := sys.RotateKey(forged); !errors.Is(err, attest.ErrBadRotation) {
		t.Fatalf("forged token: got %v, want ErrBadRotation", err)
	}
}

// TestRotateKeyDuringBatchedInference: a key rotation lands through a
// management session while a batched inference session is mid-run. Run
// with -race. No batch may be dropped, and the device must end signing
// at the new epoch.
func TestRotateKeyDuringBatchedInference(t *testing.T) {
	r := newAttestRig(t, ModeSecureFilter)
	tok, err := r.verifier.Rotate("dev-under-test")
	if err != nil {
		t.Fatal(err)
	}

	utts := append(testUtterances(), testUtterances()...)
	var (
		wg     sync.WaitGroup
		res    *SessionResult
		runErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, runErr = r.sys.RunSessionBatched(utts, 4)
	}()
	if _, err := r.sys.RotateKey(tok); err != nil {
		t.Errorf("concurrent RotateKey: %v", err)
	}
	wg.Wait()
	if runErr != nil {
		t.Fatalf("batched session during rotation: %v", runErr)
	}
	if len(res.Utterances) != len(utts) {
		t.Fatalf("dropped batches: %d/%d utterances processed", len(res.Utterances), len(utts))
	}
	if r.sys.KeyEpoch() != 1 {
		t.Fatalf("key epoch = %d after rotation, want 1", r.sys.KeyEpoch())
	}
}
