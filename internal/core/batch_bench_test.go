package core

// Microbenchmark for the TA batch hot path (CmdProcessBatch): one
// secure-filter speaker processing utterance batches end to end —
// synthesis, capture through the secure driver, in-TEE transcription,
// batched classification and sealed relay. b.ReportAllocs tracks the
// pooled-scratch guarantee: steady-state batches must not allocate per
// item beyond the per-utterance records themselves.

import (
	"testing"

	"repro/internal/sensitive"
)

func BenchmarkTABatch(b *testing.B) {
	utts, err := sensitive.Generate(sensitive.GenConfig{N: 8, SensitiveFraction: 0.5, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(Config{Mode: ModeSecureFilter, Seed: 23})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.RunSessionBatched(utts, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Utterances) != len(utts) {
			b.Fatalf("processed %d utterances, want %d", len(res.Utterances), len(utts))
		}
	}
	b.ReportMetric(float64(len(utts)), "utterances/op")
}
