package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/asr"
	"repro/internal/attest"
	"repro/internal/audio"
	"repro/internal/cloud"
	"repro/internal/driver"
	"repro/internal/he"
	"repro/internal/i2s"
	"repro/internal/ml/classify"
	"repro/internal/ml/layers"
	"repro/internal/optee"
	"repro/internal/relay"
	"repro/internal/sensitive"
	"repro/internal/tz"
)

// weightsObjectID is the secure-storage id of the sealed classifier.
const weightsObjectID = "voice-ta/classifier-weights"

// heSecretKeyID is the secure-storage id of the sealed HE secret key
// (ModeHybridHE): provisioned like the model pack, unsealed only
// inside the TA for the HE→TEE handoff decrypt.
const heSecretKeyID = "voice-ta/he-secret-key"

// packObjectID is the secure-storage id of a provisioned model pack.
func packObjectID(version uint64) string {
	return fmt.Sprintf("voice-ta/model-pack-v%d", version)
}

// keyEpochObjectID is the secure-storage id of the sealed key-epoch
// record, kept next to the current-weights object so a TA restart
// resumes signing at the rotated epoch.
const keyEpochObjectID = "voice-ta/key-epoch"

// VoiceTADigest is the measured code identity of the voice TA — what a
// loader hashing the TA image would report, and what the fleet verifier
// expects from secure speakers.
var VoiceTADigest = attest.MeasureCode("periguard", UUIDVoiceTA)

// DriverPTA is the pseudo trusted application bridging the TA and the
// in-TEE sound driver (paper §II: a PTA "with OS-level privileges that
// could serve as an intermediary between a TA and low-level code like
// device driver software").
type DriverPTA struct {
	drv *driver.SoundDriver

	mu      sync.Mutex
	started bool
}

// PTA commands.
const (
	// CmdPTAStart probes and starts the capture stream.
	CmdPTAStart uint32 = 0x10
	// CmdPTARead drains captured bytes into params[0] (MemrefOut); the
	// number of valid bytes returns in params[1].A (ValueOut).
	CmdPTARead uint32 = 0x11
	// CmdPTAStop stops and closes the stream.
	CmdPTAStop uint32 = 0x12
)

// NewDriverPTA wraps the secure driver instance.
func NewDriverPTA(drv *driver.SoundDriver) *DriverPTA {
	return &DriverPTA{drv: drv}
}

// UUID implements optee.TA.
func (p *DriverPTA) UUID() string { return UUIDDriverPTA }

// Open implements optee.TA.
func (p *DriverPTA) Open(sessionID uint32) error { return nil }

// Close implements optee.TA.
func (p *DriverPTA) Close(sessionID uint32) {}

// Invoke implements optee.TA.
func (p *DriverPTA) Invoke(sessionID uint32, cmd uint32, params *optee.Params) error {
	switch cmd {
	case CmdPTAStart:
		return p.start()
	case CmdPTARead:
		if params[0].Type != optee.MemrefOut || params[0].Buf == nil {
			return fmt.Errorf("%w: CmdPTARead needs MemrefOut", optee.ErrBadParam)
		}
		n, err := p.drv.ReadPCM(params[0].Buf)
		if err != nil {
			return err
		}
		params[1].Type = optee.ValueOut
		params[1].A = uint64(n)
		return nil
	case CmdPTAStop:
		return p.stop()
	default:
		return fmt.Errorf("%w: pta cmd %#x", optee.ErrBadParam, cmd)
	}
}

func (p *DriverPTA) start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return nil
	}
	if err := p.drv.Probe(); err != nil {
		return err
	}
	if err := p.drv.Open(); err != nil && !errors.Is(err, driver.ErrAlreadyOpen) {
		return err
	}
	if err := p.drv.HwParams(i2s.DefaultFormat()); err != nil {
		return err
	}
	if err := p.drv.Prepare(); err != nil {
		return err
	}
	if err := p.drv.TriggerStart(); err != nil {
		return err
	}
	p.started = true
	return nil
}

func (p *DriverPTA) stop() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		return nil
	}
	p.started = false
	if err := p.drv.TriggerStop(); err != nil {
		return err
	}
	return p.drv.Close()
}

// VoiceTA commands.
const (
	// CmdProcessUtterance captures params[0].A bytes of audio through the
	// PTA, transcribes, (optionally) classifies and filters, and relays
	// the result. Outputs: params[1] ValueOut A=forwarded(0/1) B=redacted.
	CmdProcessUtterance uint32 = 0x20
	// CmdProcessBatch processes several queued utterances in ONE TA
	// invocation, amortizing the world-switch round trip and batching the
	// classifier forward pass across the queue. params[0] is a MemrefIn of
	// little-endian uint32 utterance byte lengths; outputs: params[1]
	// ValueOut A=forwarded count, B=total redacted tokens.
	CmdProcessBatch uint32 = 0x21
	// CmdAttest produces attestation evidence: params[0] is a MemrefIn
	// challenge nonce, params[1] a MemrefOut the marshalled report is
	// written into, params[2].A (ValueOut) the report length.
	CmdAttest uint32 = 0x22
	// CmdUpdateModel installs a newer model pack: params[0] is a MemrefIn
	// encoded attest.Pack, params[1] a MemrefIn marshalled manifest token.
	// The TA verifies the manifest against its device key, seals the pack
	// into secure storage and hot-swaps the classifier without disturbing
	// in-flight batches; params[2].A (ValueOut) returns the new version.
	CmdUpdateModel uint32 = 0x23
	// CmdRotateKey redeems a verifier-issued key-rotation token:
	// params[0] is a MemrefIn marshalled attest.RotationToken. The TA
	// verifies the token under its current attestation key, derives the
	// next epoch key, seals the epoch record to secure storage (next to
	// current-weights) and swaps the signer without disturbing in-flight
	// work; params[1].A (ValueOut) returns the new key epoch.
	CmdRotateKey uint32 = 0x24
	// CmdTranscribeBatch runs the front half of CmdProcessBatch — capture
	// and in-TEE transcription for one queued group — then parks: the
	// encoded token sequences are staged for an external shared-scheduler
	// classification instead of classifying inline, so the calling thread
	// can yield while the cross-device flush forms. params[0] is a
	// MemrefIn of little-endian uint32 utterance byte lengths; params[1].A
	// (ValueOut) returns the pending count.
	CmdTranscribeBatch uint32 = 0x25
	// CmdResumeBatch completes a staged batch with verdicts from the
	// shared classifier: params[0] is a MemrefIn of 5 bytes per item
	// (flag byte + little-endian uint32 flush occupancy), params[1].A
	// (ValueIn) the virtual cycles the classification waited. The TA
	// charges the wait, applies the relay policy and forwards survivors.
	// Outputs: params[2] ValueOut A=forwarded count, B=redacted tokens.
	CmdResumeBatch uint32 = 0x26
	// CmdResumeBatchHE completes a staged batch via the HE→TEE handoff
	// (ModeHybridHE): params[0] is a MemrefIn of concatenated
	// length-prefixed ciphertext blobs (little-endian uint32 byte length
	// followed by the provider-evaluated HE layer output), one per
	// staged utterance. The TA unseals the HE secret key from secure
	// storage, decrypts each blob, runs the classifier's non-linear tail
	// inside the TEE, applies the relay policy and forwards survivors.
	// Outputs: params[1] ValueOut A=forwarded count, B=redacted tokens.
	CmdResumeBatchHE uint32 = 0x27
)

// MaxBatch bounds one CmdProcessBatch invocation; it keeps the batch's
// wire bytes comfortably inside the controller FIFO.
const MaxBatch = 8

// StageCycles decomposes one utterance's TEE processing time.
type StageCycles struct {
	Capture    tz.Cycles
	Transcribe tz.Cycles
	Classify   tz.Cycles
	Relay      tz.Cycles
}

// Total sums the stages.
func (s StageCycles) Total() tz.Cycles {
	return s.Capture + s.Transcribe + s.Classify + s.Relay
}

// ProcessedUtterance is the TA-side record of one handled utterance.
// It never leaves the secure world; experiments read it as trusted
// instrumentation.
type ProcessedUtterance struct {
	Transcript []string
	Flagged    bool
	Forwarded  bool
	// Shed marks a forwarded event the ingest frontend dropped under
	// queue pressure (the relay saw cloud.ErrShed instead of a sealed
	// directive). The event was emitted and cost-accounted; it simply
	// never reached the provider.
	Shed bool
	// Expired marks a forwarded event whose delivery retry budget ran out
	// (the relay saw cloud.ErrExpired): the uplink retried deterministically
	// and gave up explicitly. Like Shed, the event was emitted and
	// cost-accounted — it is an accounting outcome, never a silent loss.
	Expired    bool
	Redacted   int
	Stages     StageCycles
	SealedSize int
	// ClassifyBatch is the occupancy of the forward pass that classified
	// this utterance: the device's own queue length on the local path, or
	// the cross-device flush size when a shared classify service is
	// wired (0 when the filter did not run).
	ClassifyBatch int
}

// VoiceTAConfig wires the TA's dependencies.
type VoiceTAConfig struct {
	TEE        *optee.OS
	Storage    *optee.Storage
	Recognizer *asr.Session
	Arch       classify.Arch
	VocabSize  int
	Vocab      *sensitive.Vocabulary
	Policy     relay.Policy
	Filter     bool // false = secure-nofilter mode
	Identity   *relay.Identity
	CloudPub   []byte
	Clock      *tz.Clock
	Cost       tz.CostModel
	Seed       uint64
	// Attestor signs measurement reports with the device's attestation
	// key (nil outside attested fleets); ModelVersion is the provisioned
	// model-pack version the TA boots with.
	Attestor     *attest.Attestor
	ModelVersion uint64
	// Hybrid marks the HE+TEE split-inference deployment: the TA
	// accepts CmdResumeBatchHE handoffs, decrypting under the sealed
	// secret key and running the classifier tail in the TEE. HEParams
	// is the leveled-HE parameter set the fleet's key pair uses.
	Hybrid   bool
	HEParams he.Params
}

// VoiceTA is the trusted application of Fig. 1: it pulls audio from the
// PTA, transcribes it, applies the ML filter, and relays sanitized events
// through the supplicant to the cloud.
type VoiceTA struct {
	cfg     VoiceTAConfig
	channel *relay.Channel

	mu           sync.Mutex
	classifier   *classify.Classifier // nil until first classify (unsealed from storage) or updateModel
	remote       ClassifyService      // non-nil: classify via the shared cross-device scheduler
	remoteDevice string               // device id submitted with shared-classify requests
	opens        int                  // open-session refcount; capture runs while > 0
	modelVersion uint64
	modelSeed    uint64
	processed    []ProcessedUtterance
	messageID    uint64
	// Staged-batch state (CmdTranscribeBatch → CmdResumeBatch): records
	// carrying the capture/transcribe halves, their transcripts, and the
	// encoded tokens awaiting the shared classifier. At most one staged
	// batch is pending per TA.
	pendingRecs        []ProcessedUtterance
	pendingTranscripts [][]string
	pendingTokens      [][]int
}

var _ optee.TA = (*VoiceTA)(nil)

// NewVoiceTA constructs the TA (registered but not yet opened). A
// sealed key-epoch record left by an earlier instance's CmdRotateKey is
// restored here, so a TA restart resumes signing at the rotated epoch
// instead of falling back to the provisioning key.
func NewVoiceTA(cfg VoiceTAConfig) (*VoiceTA, error) {
	ch, err := relay.NewChannel(cfg.Identity, cfg.CloudPub, true)
	if err != nil {
		return nil, fmt.Errorf("voice ta channel: %w", err)
	}
	cfg.Attestor = restoreKeyEpoch(cfg.Storage, keyEpochObjectID, cfg.Attestor)
	return &VoiceTA{
		cfg:          cfg,
		channel:      ch,
		modelVersion: cfg.ModelVersion,
		modelSeed:    cfg.Seed,
	}, nil
}

// restoreKeyEpoch advances an attestor to the key epoch sealed in
// secure storage (no record, or no attestor, leaves it untouched).
func restoreKeyEpoch(storage *optee.Storage, objectID string, a *attest.Attestor) *attest.Attestor {
	if a == nil || storage == nil {
		return a
	}
	blob, err := storage.Get(objectID)
	if err != nil || len(blob) < 8 {
		return a
	}
	return a.AtEpoch(binary.LittleEndian.Uint64(blob))
}

// UUID implements optee.TA.
func (t *VoiceTA) UUID() string { return UUIDVoiceTA }

// ModelVersion returns the version of the model pack the TA holds.
func (t *VoiceTA) ModelVersion() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.modelVersion
}

// Open implements optee.TA. The TA is a single multi-session instance:
// the first session starts the capture stream through the PTA; further
// sessions (a management session attesting or updating the model while
// a processing session is live) share the running instance, and capture
// stops only when the last session closes. The refcount slot is
// reserved before the side effects, so an interleaved Close of another
// session can never observe a zero count while this one is opening.
// Classifier unsealing is deferred to first classify
// (loadedClassifier), keeping management sessions lightweight.
func (t *VoiceTA) Open(sessionID uint32) error {
	t.mu.Lock()
	t.opens++
	first := t.opens == 1
	t.mu.Unlock()
	if first {
		if err := t.cfg.TEE.InvokeSecure(UUIDDriverPTA, CmdPTAStart, nil); err != nil {
			t.mu.Lock()
			t.opens--
			t.mu.Unlock()
			return fmt.Errorf("voice ta pta start: %w", err)
		}
	}
	return nil
}

// buildClassifier reconstructs the classifier skeleton for a model seed
// and restores the given serialized weights into it.
func (t *VoiceTA) buildClassifier(seed uint64, blob []byte) (*classify.Classifier, error) {
	rng := NewRNG(seed, seed^SaltClassifier)
	clf, err := classify.NewText(t.cfg.Arch, rng, t.cfg.VocabSize, 12)
	if err != nil {
		return nil, err
	}
	if err := clf.LoadWeights(blob); err != nil {
		return nil, fmt.Errorf("voice ta weights: %w", err)
	}
	return clf, nil
}

// Close implements optee.TA: the last session stops the capture stream.
func (t *VoiceTA) Close(sessionID uint32) {
	t.mu.Lock()
	if t.opens > 0 {
		t.opens--
	}
	last := t.opens == 0
	t.mu.Unlock()
	if last {
		_ = t.cfg.TEE.InvokeSecure(UUIDDriverPTA, CmdPTAStop, nil)
	}
}

// Invoke implements optee.TA.
func (t *VoiceTA) Invoke(sessionID uint32, cmd uint32, params *optee.Params) error {
	switch cmd {
	case CmdProcessUtterance:
		if params[0].Type != optee.ValueIn {
			return fmt.Errorf("%w: CmdProcessUtterance needs ValueIn bytes", optee.ErrBadParam)
		}
		rec, err := t.processUtterance(int(params[0].A))
		if err != nil {
			return err
		}
		params[1].Type = optee.ValueOut
		if rec.Forwarded {
			params[1].A = 1
		}
		params[1].B = uint64(rec.Redacted)
		return nil
	case CmdProcessBatch:
		if params[0].Type != optee.MemrefIn || len(params[0].Buf) == 0 || len(params[0].Buf)%4 != 0 {
			return fmt.Errorf("%w: CmdProcessBatch needs MemrefIn of uint32 lengths", optee.ErrBadParam)
		}
		lengths := make([]int, len(params[0].Buf)/4)
		if len(lengths) > MaxBatch {
			return fmt.Errorf("%w: batch of %d exceeds MaxBatch %d", optee.ErrBadParam, len(lengths), MaxBatch)
		}
		for i := range lengths {
			lengths[i] = int(binary.LittleEndian.Uint32(params[0].Buf[4*i:]))
		}
		recs, err := t.processBatch(lengths)
		if err != nil {
			return err
		}
		params[1].Type = optee.ValueOut
		for _, rec := range recs {
			if rec.Forwarded {
				params[1].A++
			}
			params[1].B += uint64(rec.Redacted)
		}
		return nil
	case CmdAttest:
		if params[0].Type != optee.MemrefIn || len(params[0].Buf) != len(attest.Nonce{}) {
			return fmt.Errorf("%w: CmdAttest needs a %d-byte MemrefIn nonce", optee.ErrBadParam, len(attest.Nonce{}))
		}
		if params[1].Type != optee.MemrefOut || params[1].Buf == nil {
			return fmt.Errorf("%w: CmdAttest needs a MemrefOut report buffer", optee.ErrBadParam)
		}
		var nonce attest.Nonce
		copy(nonce[:], params[0].Buf)
		rep, err := t.attestReport(nonce)
		if err != nil {
			return err
		}
		blob := rep.Marshal()
		if len(params[1].Buf) < len(blob) {
			return fmt.Errorf("%w: report buffer %d < %d", optee.ErrBadParam, len(params[1].Buf), len(blob))
		}
		copy(params[1].Buf, blob)
		params[2].Type = optee.ValueOut
		params[2].A = uint64(len(blob))
		return nil
	case CmdUpdateModel:
		if params[0].Type != optee.MemrefIn || len(params[0].Buf) == 0 {
			return fmt.Errorf("%w: CmdUpdateModel needs a MemrefIn pack", optee.ErrBadParam)
		}
		if params[1].Type != optee.MemrefIn || len(params[1].Buf) == 0 {
			return fmt.Errorf("%w: CmdUpdateModel needs a MemrefIn manifest", optee.ErrBadParam)
		}
		version, err := t.updateModel(params[0].Buf, params[1].Buf)
		if err != nil {
			return err
		}
		params[2].Type = optee.ValueOut
		params[2].A = version
		return nil
	case CmdTranscribeBatch:
		if params[0].Type != optee.MemrefIn || len(params[0].Buf) == 0 || len(params[0].Buf)%4 != 0 {
			return fmt.Errorf("%w: CmdTranscribeBatch needs MemrefIn of uint32 lengths", optee.ErrBadParam)
		}
		lengths := make([]int, len(params[0].Buf)/4)
		if len(lengths) > MaxBatch {
			return fmt.Errorf("%w: batch of %d exceeds MaxBatch %d", optee.ErrBadParam, len(lengths), MaxBatch)
		}
		for i := range lengths {
			lengths[i] = int(binary.LittleEndian.Uint32(params[0].Buf[4*i:]))
		}
		if err := t.transcribeBatch(lengths); err != nil {
			return err
		}
		params[1].Type = optee.ValueOut
		params[1].A = uint64(len(lengths))
		return nil
	case CmdResumeBatch:
		if params[0].Type != optee.MemrefIn || len(params[0].Buf) == 0 || len(params[0].Buf)%5 != 0 {
			return fmt.Errorf("%w: CmdResumeBatch needs MemrefIn of 5-byte verdicts", optee.ErrBadParam)
		}
		if params[1].Type != optee.ValueIn {
			return fmt.Errorf("%w: CmdResumeBatch needs ValueIn wait cycles", optee.ErrBadParam)
		}
		n := len(params[0].Buf) / 5
		flags := make([]bool, n)
		occs := make([]int, n)
		for i := 0; i < n; i++ {
			off := 5 * i
			flags[i] = params[0].Buf[off] != 0
			occs[i] = int(binary.LittleEndian.Uint32(params[0].Buf[off+1:]))
		}
		recs, err := t.resumeBatch(flags, occs, tz.Cycles(params[1].A))
		if err != nil {
			return err
		}
		params[2].Type = optee.ValueOut
		for _, rec := range recs {
			if rec.Forwarded {
				params[2].A++
			}
			params[2].B += uint64(rec.Redacted)
		}
		return nil
	case CmdResumeBatchHE:
		if params[0].Type != optee.MemrefIn || len(params[0].Buf) == 0 {
			return fmt.Errorf("%w: CmdResumeBatchHE needs MemrefIn ciphertext blobs", optee.ErrBadParam)
		}
		blobs, err := splitLengthPrefixed(params[0].Buf)
		if err != nil {
			return fmt.Errorf("%w: CmdResumeBatchHE: %v", optee.ErrBadParam, err)
		}
		recs, err := t.resumeBatchHE(blobs)
		if err != nil {
			return err
		}
		params[1].Type = optee.ValueOut
		for _, rec := range recs {
			if rec.Forwarded {
				params[1].A++
			}
			params[1].B += uint64(rec.Redacted)
		}
		return nil
	case CmdRotateKey:
		if params[0].Type != optee.MemrefIn || len(params[0].Buf) == 0 {
			return fmt.Errorf("%w: CmdRotateKey needs a MemrefIn token", optee.ErrBadParam)
		}
		epoch, err := t.rotateKey(params[0].Buf)
		if err != nil {
			return err
		}
		params[1].Type = optee.ValueOut
		params[1].A = epoch
		return nil
	default:
		return fmt.Errorf("%w: ta cmd %#x", optee.ErrBadParam, cmd)
	}
}

// attestReport signs the TA's current measurement — its code digest and
// the model-pack version it holds — over the verifier's challenge. The
// attestor pointer is read under the TA lock: a concurrent CmdRotateKey
// swaps it, and a report must be signed entirely under one epoch key.
func (t *VoiceTA) attestReport(nonce attest.Nonce) (attest.Report, error) {
	t.mu.Lock()
	attestor := t.cfg.Attestor
	m := attest.Measurement{Code: VoiceTADigest, ModelVersion: t.modelVersion}
	t.mu.Unlock()
	if attestor == nil {
		return attest.Report{}, errors.New("voice ta: attestation not provisioned")
	}
	// HMAC evidence over the measurement (~1k cycles of SHA-256 on a
	// NEON-class core, rounded up for the report assembly).
	t.cfg.Clock.Advance(2000)
	return attestor.Attest(nonce, m), nil
}

// KeyEpoch returns the key epoch the TA currently signs evidence under.
func (t *VoiceTA) KeyEpoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.Attestor == nil {
		return 0
	}
	return t.cfg.Attestor.Epoch()
}

// rotateKey redeems a key-rotation token: the token must verify under
// the TA's current attestation key and advance the epoch by exactly one.
// The epoch record is sealed to secure storage next to current-weights —
// a TA restart resumes signing at the rotated epoch — and the signer is
// swapped under the TA lock, so a concurrent attestReport signs either
// wholly under the old epoch (honored by the verifier's grace window) or
// wholly under the new one; in-flight work is never disturbed.
func (t *VoiceTA) rotateKey(tokenBytes []byte) (uint64, error) {
	tok, err := attest.UnmarshalRotationToken(tokenBytes)
	if err != nil {
		return 0, fmt.Errorf("voice ta rotate: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.Attestor == nil {
		return 0, errors.New("voice ta: attestation not provisioned")
	}
	next, err := t.cfg.Attestor.Rotated(tok)
	if err != nil {
		return 0, fmt.Errorf("voice ta rotate: %w", err)
	}
	var rec [8]byte
	binary.LittleEndian.PutUint64(rec[:], next.Epoch())
	t.cfg.Storage.Put(keyEpochObjectID, rec[:])
	// MAC verification plus one HMAC key derivation; see attestReport.
	t.cfg.Clock.Advance(4000)
	t.cfg.Attestor = next
	return next.Epoch(), nil
}

// updateModel is the online-rollout sink: it authenticates a published
// model pack against the per-device manifest, persists it through sealed
// storage, and hot-swaps the live classifier. Swapping happens under the
// TA lock while in-flight batches keep the classifier pointer they read
// at classify time, so no batch is dropped or torn mid-run.
func (t *VoiceTA) updateModel(packBytes, tokenBytes []byte) (uint64, error) {
	if t.cfg.Attestor == nil {
		return 0, errors.New("voice ta: attestation not provisioned")
	}
	pack, err := attest.DecodePack(packBytes)
	if err != nil {
		return 0, fmt.Errorf("voice ta update: %w", err)
	}
	tok, err := attest.UnmarshalManifestToken(tokenBytes)
	if err != nil {
		return 0, fmt.Errorf("voice ta update: %w", err)
	}
	if err := t.cfg.Attestor.VerifyManifest(tok, pack); err != nil {
		return 0, fmt.Errorf("voice ta update: %w", err)
	}
	// With a shared classify service wired, the device never runs the
	// pack's weights itself — the scheduler's per-version classifier
	// does — so the per-device rebuild is skipped. The pack is still
	// verified, sealed, and version-advanced below.
	t.mu.Lock()
	shared := t.remote != nil
	t.mu.Unlock()
	var clf *classify.Classifier
	if t.cfg.Filter && !shared {
		if clf, err = t.buildClassifier(pack.ModelSeed, pack.Text); err != nil {
			return 0, fmt.Errorf("voice ta update: %w", err)
		}
	}
	// Version check and install form one critical section, so two
	// concurrent updates cannot interleave into a downgrade: the loser
	// of the race re-checks against the winner's installed version.
	t.mu.Lock()
	defer t.mu.Unlock()
	if pack.Version == t.modelVersion {
		return t.modelVersion, nil // idempotent re-delivery
	}
	if pack.Version < t.modelVersion {
		return 0, fmt.Errorf("voice ta update: %w: pack v%d older than installed v%d",
			attest.ErrBadPack, pack.Version, t.modelVersion)
	}
	// Persist through sealed storage: the versioned pack for provenance,
	// and the current-weights object the next unseal picks up.
	t.cfg.Storage.Put(packObjectID(pack.Version), packBytes)
	if t.cfg.Filter {
		t.cfg.Storage.Put(weightsObjectID, pack.Text)
		if clf != nil {
			t.classifier = clf
		}
	}
	// Charge the copy+seal of the pack through the TEE.
	t.cfg.Clock.Advance(tz.Cycles(len(packBytes)) * t.cfg.Cost.CopyPerByte)
	t.modelVersion = pack.Version
	t.modelSeed = pack.ModelSeed
	return pack.Version, nil
}

// taScratch is the reusable buffer set for one in-flight TA invocation:
// capture accumulation, the PTA read chunk, and the decode pipeline's
// sample buffers. Pooled so the batched path (CmdProcessBatch) processes
// every queued utterance without per-item heap allocation, whichever TA
// instance (device) is running — the pool is package-level because fleet
// devices process in bounded worker pools, so a handful of scratch sets
// serves thousands of devices.
type taScratch struct {
	pcmBytes []byte
	chunk    []byte
	samples  []int32
	floats   []float64
}

var taScratchPool = sync.Pool{
	New: func() any { return &taScratch{chunk: make([]byte, 4096)} },
}

// captureStage pulls wantBytes of wire audio through the PTA into
// TA-private buffers (Fig. 1 step 4). The returned slice belongs to the
// scratch set and is valid until the scratch is released.
func (t *VoiceTA) captureStage(sc *taScratch, wantBytes int) ([]byte, error) {
	if cap(sc.pcmBytes) < wantBytes {
		sc.pcmBytes = make([]byte, 0, wantBytes)
	}
	pcmBytes := sc.pcmBytes[:0]
	idle := 0
	for len(pcmBytes) < wantBytes {
		p := &optee.Params{
			{Type: optee.MemrefOut, Buf: sc.chunk[:min(len(sc.chunk), wantBytes-len(pcmBytes))]},
			{},
		}
		if err := t.cfg.TEE.InvokeSecure(UUIDDriverPTA, CmdPTARead, p); err != nil {
			return nil, fmt.Errorf("voice ta pta read: %w", err)
		}
		n := int(p[1].A)
		if n == 0 {
			idle++
			if idle > 1000 {
				return nil, fmt.Errorf("voice ta: capture stalled at %d/%d bytes", len(pcmBytes), wantBytes)
			}
			continue
		}
		idle = 0
		pcmBytes = append(pcmBytes, p[0].Buf[:n]...)
	}
	sc.pcmBytes = pcmBytes
	return pcmBytes, nil
}

// transcribeStage decodes the wire bytes and runs the in-TEE recognizer
// (Fig. 1 step 5). The recognizer's arithmetic is charged as the MFCC
// front end (FFT + filterbank + DCT per 10 ms hop, ~6k cycles/frame on a
// NEON-class core) plus template matching.
func (t *VoiceTA) transcribeStage(sc *taScratch, pcmBytes []byte) ([]string, error) {
	samples, err := i2s.DecodeFramesInto(sc.samples, pcmBytes, i2s.DefaultFormat())
	if err != nil {
		return nil, fmt.Errorf("voice ta decode: %w", err)
	}
	sc.samples = samples
	if cap(sc.floats) < len(samples) {
		sc.floats = make([]float64, len(samples))
	}
	floats := sc.floats[:len(samples)]
	for i, s := range samples {
		// int16 truncation then the FromInt16 scaling of the historical
		// decode path, fused into one pass over pooled scratch.
		floats[i] = float64(int16(s)) / 32768
	}
	pcm := audio.PCM{Rate: 16000, Samples: floats}
	words, err := t.cfg.Recognizer.TranscribeWords(pcm)
	if err != nil {
		return nil, fmt.Errorf("voice ta asr: %w", err)
	}
	frames := len(pcm.Samples) / 160
	t.cfg.Clock.Advance(tz.Cycles(frames)*6000 + tz.Cycles(t.cfg.Recognizer.MemoryBytes()/8))
	return words, nil
}

// loadedClassifier returns the live classifier, unsealing it from
// secure storage on first use (an installed rollout pack takes
// precedence: updateModel swaps the pointer directly).
func (t *VoiceTA) loadedClassifier() (*classify.Classifier, error) {
	t.mu.Lock()
	clf := t.classifier
	seed := t.modelSeed
	t.mu.Unlock()
	if clf != nil {
		return clf, nil
	}
	if !t.cfg.Filter {
		return nil, errors.New("voice ta: classifier disabled (no-filter mode)")
	}
	blob, err := t.cfg.Storage.Get(weightsObjectID)
	if err != nil {
		return nil, fmt.Errorf("voice ta weights: %w", err)
	}
	built, err := t.buildClassifier(seed, blob)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.classifier == nil {
		t.classifier = built
	}
	clf = t.classifier
	t.mu.Unlock()
	return clf, nil
}

// classifyStage runs the ML filter over a batch of transcripts and
// reports the occupancy of the forward pass that served it. On the local
// path that is one pass over the device's own queue, charged at 4
// MACs/cycle (NEON-class SIMD) per sample; with a shared classify
// service wired, the encoded tokens ride a cross-device batch and the
// device is charged the scheduler's queue wait plus its share of the
// shared pass instead.
func (t *VoiceTA) classifyStage(transcripts [][]string) ([]bool, int, error) {
	t.mu.Lock()
	remote, device, version := t.remote, t.remoteDevice, t.modelVersion
	t.mu.Unlock()
	if remote != nil {
		tokens := make([][]int, len(transcripts))
		for i, words := range transcripts {
			tokens[i] = t.cfg.Vocab.Encode(words)
		}
		resp, err := remote.ClassifyBatch(ClassifyRequest{
			DeviceID:     device,
			ModelVersion: version,
			Tokens:       tokens,
			Now:          t.cfg.Clock.Now(),
		})
		if err != nil {
			return nil, 0, fmt.Errorf("voice ta classify (shared): %w", err)
		}
		if len(resp.Flagged) != len(transcripts) {
			return nil, 0, fmt.Errorf("voice ta classify (shared): %d flags for %d transcripts",
				len(resp.Flagged), len(transcripts))
		}
		t.cfg.Clock.Advance(resp.Wait)
		return resp.Flagged, resp.Occupancy, nil
	}
	clf, err := t.loadedClassifier()
	if err != nil {
		return nil, 0, err
	}
	batch := make([][]float32, len(transcripts))
	for i, words := range transcripts {
		batch[i] = clf.TokensToFeatures(t.cfg.Vocab.Encode(words))
	}
	classes, err := clf.PredictBatch(batch)
	if err != nil {
		return nil, 0, fmt.Errorf("voice ta classify: %w", err)
	}
	t.cfg.Clock.Advance(tz.Cycles(clf.EstimateMACs() * len(batch) / 4))
	flagged := make([]bool, len(classes))
	for i, cls := range classes {
		flagged[i] = cls == 1
	}
	return flagged, len(batch), nil
}

// relayStage applies the filter policy and, when forwarding, seals the
// event and relays it through the supplicant, verifying the cloud's
// sealed directive (Fig. 1 steps 6–7).
func (t *VoiceTA) relayStage(words []string, flagged bool, rec *ProcessedUtterance) error {
	policy := t.cfg.Policy
	if !t.cfg.Filter {
		policy = relay.PolicyPassThrough
	}
	result, err := relay.ApplyPolicy(policy, flagged, words)
	if err != nil {
		return err
	}
	rec.Forwarded = result.Forward
	rec.Redacted = result.Redacted
	if !result.Forward {
		return nil
	}
	t.mu.Lock()
	t.messageID++
	mid := t.messageID
	t.mu.Unlock()
	payload, err := relay.EncodeEvent(relay.Event{
		Namespace:  relay.NamespaceSpeech,
		Name:       relay.NameTranscript,
		MessageID:  mid,
		Transcript: result.Tokens,
		Redacted:   result.Redacted,
	})
	if err != nil {
		return err
	}
	sealed := t.channel.Seal(payload)
	rec.SealedSize = len(sealed)
	resp, err := t.cfg.TEE.RPC(optee.RPCRequest{
		Kind:    optee.RPCNetSend,
		Target:  CloudTarget,
		Payload: sealed,
	})
	if err != nil {
		// The frontend shed the frame under queue pressure: a retriable
		// network drop, not a session fault. There is no directive to
		// verify; the TA records the shed and moves on.
		if errors.Is(err, cloud.ErrShed) {
			rec.Shed = true
			return nil
		}
		// The retry layer exhausted its budget: the frame expired. Same
		// contract as a shed — emitted, paid for, explicitly not delivered.
		if errors.Is(err, cloud.ErrExpired) {
			rec.Expired = true
			return nil
		}
		return fmt.Errorf("voice ta relay: %w", err)
	}
	if _, err := t.channel.Open(resp.Payload); err != nil {
		return fmt.Errorf("voice ta directive: %w", err)
	}
	return nil
}

// processUtterance is the Fig. 1 steps 4–7 inside the secure world.
func (t *VoiceTA) processUtterance(wantBytes int) (ProcessedUtterance, error) {
	var rec ProcessedUtterance
	clock := t.cfg.Clock
	sc := taScratchPool.Get().(*taScratch)
	defer taScratchPool.Put(sc)

	start := clock.Now()
	pcmBytes, err := t.captureStage(sc, wantBytes)
	if err != nil {
		return rec, err
	}
	rec.Stages.Capture = clock.Now() - start

	start = clock.Now()
	words, err := t.transcribeStage(sc, pcmBytes)
	if err != nil {
		return rec, err
	}
	rec.Transcript = words
	rec.Stages.Transcribe = clock.Now() - start

	start = clock.Now()
	flagged := false
	if t.cfg.Filter {
		flags, occupancy, err := t.classifyStage([][]string{words})
		if err != nil {
			return rec, err
		}
		flagged = flags[0]
		rec.ClassifyBatch = occupancy
	}
	rec.Flagged = flagged
	rec.Stages.Classify = clock.Now() - start

	start = clock.Now()
	if err := t.relayStage(words, flagged, &rec); err != nil {
		return rec, err
	}
	rec.Stages.Relay = clock.Now() - start

	t.mu.Lock()
	t.processed = append(t.processed, rec)
	t.mu.Unlock()
	return rec, nil
}

// processBatch drains a queue of utterances in one invocation: capture
// and transcribe each, classify them all in one batched forward pass,
// then relay the survivors. The caller paid one world-switch round trip
// for the whole batch instead of one per utterance.
func (t *VoiceTA) processBatch(lengths []int) ([]ProcessedUtterance, error) {
	clock := t.cfg.Clock
	recs := make([]ProcessedUtterance, len(lengths))
	transcripts := make([][]string, len(lengths))
	// One pooled scratch set serves the whole batch: capture and decode
	// buffers are recycled item to item, so batched classification does
	// not allocate per utterance.
	sc := taScratchPool.Get().(*taScratch)
	defer taScratchPool.Put(sc)

	for i, wantBytes := range lengths {
		start := clock.Now()
		pcmBytes, err := t.captureStage(sc, wantBytes)
		if err != nil {
			return nil, fmt.Errorf("batch utterance %d: %w", i, err)
		}
		recs[i].Stages.Capture = clock.Now() - start

		start = clock.Now()
		words, err := t.transcribeStage(sc, pcmBytes)
		if err != nil {
			return nil, fmt.Errorf("batch utterance %d: %w", i, err)
		}
		transcripts[i] = words
		recs[i].Transcript = words
		recs[i].Stages.Transcribe = clock.Now() - start
	}

	if t.cfg.Filter {
		start := clock.Now()
		flags, occupancy, err := t.classifyStage(transcripts)
		if err != nil {
			return nil, err
		}
		spent := clock.Now() - start
		for i := range recs {
			recs[i].Flagged = flags[i]
			recs[i].ClassifyBatch = occupancy
			// The batched forward pass is shared work; attribute it evenly.
			recs[i].Stages.Classify = spent / tz.Cycles(len(recs))
		}
	}

	for i := range recs {
		start := clock.Now()
		if err := t.relayStage(transcripts[i], recs[i].Flagged, &recs[i]); err != nil {
			return nil, fmt.Errorf("batch utterance %d: %w", i, err)
		}
		recs[i].Stages.Relay = clock.Now() - start
	}

	t.mu.Lock()
	t.processed = append(t.processed, recs...)
	t.mu.Unlock()
	return recs, nil
}

// transcribeBatch is the front half of processBatch: capture and
// transcribe each queued utterance and stage the encoded tokens for an
// external classification, leaving the invocation parked instead of
// running the filter inline. The split is what lets an event-driven
// caller release its executor while a cross-device flush forms.
func (t *VoiceTA) transcribeBatch(lengths []int) error {
	if !t.cfg.Filter {
		return errors.New("voice ta: staged transcribe requires the filter")
	}
	t.mu.Lock()
	busy := len(t.pendingRecs) > 0
	t.mu.Unlock()
	if busy {
		return errors.New("voice ta: staged batch already pending")
	}
	clock := t.cfg.Clock
	recs := make([]ProcessedUtterance, len(lengths))
	transcripts := make([][]string, len(lengths))
	tokens := make([][]int, len(lengths))
	sc := taScratchPool.Get().(*taScratch)
	defer taScratchPool.Put(sc)

	for i, wantBytes := range lengths {
		start := clock.Now()
		pcmBytes, err := t.captureStage(sc, wantBytes)
		if err != nil {
			return fmt.Errorf("staged utterance %d: %w", i, err)
		}
		recs[i].Stages.Capture = clock.Now() - start

		start = clock.Now()
		words, err := t.transcribeStage(sc, pcmBytes)
		if err != nil {
			return fmt.Errorf("staged utterance %d: %w", i, err)
		}
		transcripts[i] = words
		recs[i].Transcript = words
		recs[i].Stages.Transcribe = clock.Now() - start
		tokens[i] = t.cfg.Vocab.Encode(words)
	}

	t.mu.Lock()
	t.pendingRecs = recs
	t.pendingTranscripts = transcripts
	t.pendingTokens = tokens
	t.mu.Unlock()
	return nil
}

// resumeBatch is the back half of processBatch for a staged group: the
// caller brings the per-item verdicts and flush occupancies the shared
// classifier computed plus the virtual cycles the classification waited
// (the shared passes overlapped — the wait is when the last one
// returned). The TA charges the wait, attributes it evenly like the
// inline batched pass, relays survivors, and clears the staged state.
func (t *VoiceTA) resumeBatch(flags []bool, occs []int, wait tz.Cycles) ([]ProcessedUtterance, error) {
	t.mu.Lock()
	recs := t.pendingRecs
	transcripts := t.pendingTranscripts
	t.pendingRecs, t.pendingTranscripts, t.pendingTokens = nil, nil, nil
	t.mu.Unlock()
	if len(recs) == 0 {
		return nil, errors.New("voice ta: no staged batch pending")
	}
	if len(flags) != len(recs) || len(occs) != len(recs) {
		return nil, fmt.Errorf("voice ta resume: %d flags / %d occupancies for %d pending",
			len(flags), len(occs), len(recs))
	}
	clock := t.cfg.Clock
	clock.Advance(wait)
	for i := range recs {
		recs[i].Flagged = flags[i]
		recs[i].ClassifyBatch = occs[i]
		// The shared classification is batch-level work; attribute it
		// evenly, mirroring the inline batched pass.
		recs[i].Stages.Classify = wait / tz.Cycles(len(recs))
	}

	for i := range recs {
		start := clock.Now()
		if err := t.relayStage(transcripts[i], recs[i].Flagged, &recs[i]); err != nil {
			return nil, fmt.Errorf("staged utterance %d: %w", i, err)
		}
		recs[i].Stages.Relay = clock.Now() - start
	}

	t.mu.Lock()
	t.processed = append(t.processed, recs...)
	t.mu.Unlock()
	return recs, nil
}

// packLengthPrefixed concatenates blobs as little-endian uint32 byte
// lengths followed by the bytes — the MemrefIn wire form of the HE
// handoff commands.
func packLengthPrefixed(blobs [][]byte) []byte {
	size := 0
	for _, b := range blobs {
		size += 4 + len(b)
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	for _, b := range blobs {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
		out = append(out, hdr[:]...)
		out = append(out, b...)
	}
	return out
}

// splitLengthPrefixed is the inverse of packLengthPrefixed.
func splitLengthPrefixed(buf []byte) ([][]byte, error) {
	var out [][]byte
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, fmt.Errorf("truncated length prefix (%d bytes)", len(buf))
		}
		n := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if n <= 0 || n > len(buf) {
			return nil, fmt.Errorf("blob length %d of %d remaining", n, len(buf))
		}
		out = append(out, buf[:n])
		buf = buf[n:]
	}
	if len(out) == 0 {
		return nil, errors.New("no blobs")
	}
	return out, nil
}

// heDecryptState unseals the HE secret key and builds the in-TA
// evaluator. Both are cheap value types; the seal read is the
// expensive part and happens per handoff, mirroring how the weights
// object is the unit of sealed-storage traffic.
func (t *VoiceTA) heDecryptState() (he.SecretKey, *he.Evaluator, error) {
	if !t.cfg.Hybrid {
		return he.SecretKey{}, nil, errors.New("voice ta: HE handoff outside hybrid mode")
	}
	blob, err := t.cfg.Storage.Get(heSecretKeyID)
	if err != nil {
		return he.SecretKey{}, nil, fmt.Errorf("voice ta he key: %w", err)
	}
	sk, err := he.ParseSecretKey(blob)
	if err != nil {
		return he.SecretKey{}, nil, fmt.Errorf("voice ta he key: %w", err)
	}
	eval, err := he.NewEvaluator(t.cfg.HEParams, t.cfg.Clock, t.cfg.Cost)
	if err != nil {
		return he.SecretKey{}, nil, fmt.Errorf("voice ta he eval: %w", err)
	}
	return sk, eval, nil
}

// resumeBatchHE is the HE→TEE handoff: the back half of a staged batch
// where the classifier's first linear layer already ran homomorphically
// at the provider. The TA decrypts each provider-evaluated ciphertext
// under the sealed secret key, runs the non-linear tail (ReLU → pool →
// dense → argmax) inside the TEE, then relays survivors through the
// same policy/seal path as every other mode.
func (t *VoiceTA) resumeBatchHE(blobs [][]byte) ([]ProcessedUtterance, error) {
	t.mu.Lock()
	recs := t.pendingRecs
	transcripts := t.pendingTranscripts
	t.pendingRecs, t.pendingTranscripts, t.pendingTokens = nil, nil, nil
	t.mu.Unlock()
	if len(recs) == 0 {
		return nil, errors.New("voice ta: no staged batch pending")
	}
	if len(blobs) != len(recs) {
		return nil, fmt.Errorf("voice ta he resume: %d ciphertexts for %d pending", len(blobs), len(recs))
	}
	sk, eval, err := t.heDecryptState()
	if err != nil {
		return nil, err
	}
	clf, err := t.loadedClassifier()
	if err != nil {
		return nil, err
	}
	split, err := classify.SplitText(clf)
	if err != nil {
		return nil, fmt.Errorf("voice ta he split: %w", err)
	}
	clock := t.cfg.Clock
	tailMACs := 2 * layers.ParamCount([]layers.Layer{split.Tail})
	for i := range recs {
		start := clock.Now()
		ct, err := eval.Unmarshal(blobs[i])
		if err != nil {
			return nil, fmt.Errorf("staged utterance %d: %w", i, err)
		}
		data, shape, err := eval.Decrypt(sk, ct)
		if err != nil {
			return nil, fmt.Errorf("staged utterance %d: %w", i, err)
		}
		cls, err := split.TailPredict(data, shape)
		if err != nil {
			return nil, fmt.Errorf("staged utterance %d: %w", i, err)
		}
		// The tail forward runs at the same 4 MACs/cycle as the inline
		// classify path; the decrypt was charged by the evaluator.
		clock.Advance(tz.Cycles(tailMACs / 4))
		recs[i].Flagged = cls == 1
		recs[i].ClassifyBatch = len(recs)
		recs[i].Stages.Classify = clock.Now() - start
	}

	for i := range recs {
		start := clock.Now()
		if err := t.relayStage(transcripts[i], recs[i].Flagged, &recs[i]); err != nil {
			return nil, fmt.Errorf("staged utterance %d: %w", i, err)
		}
		recs[i].Stages.Relay = clock.Now() - start
	}

	t.mu.Lock()
	t.processed = append(t.processed, recs...)
	t.mu.Unlock()
	return recs, nil
}

// PendingTokens returns copies of the encoded token sequences staged by
// CmdTranscribeBatch and awaiting classification (empty when nothing is
// pending). Token IDs are exactly what classifyStage submits to a shared
// classify service — vocabulary-clamped in the TA, never transcript
// words — so handing them to the scheduler keeps the trust boundary.
func (t *VoiceTA) PendingTokens() [][]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([][]int, len(t.pendingTokens))
	for i, seq := range t.pendingTokens {
		out[i] = append([]int(nil), seq...)
	}
	return out
}

// Processed returns the TA's per-utterance records (trusted-side
// instrumentation for the experiments).
func (t *VoiceTA) Processed() []ProcessedUtterance {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]ProcessedUtterance(nil), t.processed...)
}

// ResetProcessed clears the records between runs.
func (t *VoiceTA) ResetProcessed() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.processed = nil
}
