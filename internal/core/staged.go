package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/optee"
	"repro/internal/sensitive"
	"repro/internal/teec"
	"repro/internal/tz"
)

// ErrNoStagedMode is returned when a staged session is requested on a
// system whose mode cannot classify externally.
var ErrNoStagedMode = errors.New("core: staged sessions require secure-filter mode")

// PendingGroup is one captured-and-transcribed utterance group parked
// between CaptureGroup and ResumeGroup: the encoded token sequences
// awaiting the shared classifier, plus the submit-time metadata a
// scheduler request needs. Tokens are vocabulary-clamped IDs — the same
// material classifyStage ships to a shared classify service.
type PendingGroup struct {
	Tokens  [][]int
	Version uint64
	Now     tz.Cycles

	groupStart tz.Cycles
	lo         int
	truths     []sensitive.Utterance
}

// Size returns the number of utterances in the group.
func (pg *PendingGroup) Size() int { return len(pg.truths) }

// StagedSession is RunSessionBatched sliced into resumable stages so an
// event-driven caller can park between transcription and classification:
//
//	st, _ := sys.BeginStagedSession(utterances, batch)
//	for pg, _ := st.CaptureGroup(); pg != nil; pg, _ = st.CaptureGroup() {
//	    // submit pg.Tokens to the shared scheduler, park, collect
//	    // per-item flags/occupancies and the classification wait ...
//	    st.ResumeGroup(pg, flags, occs, wait)
//	}
//	res, _ := st.Finish()
//
// The per-group bookkeeping (span emission, outcome assembly, radio
// bytes, snoop sweeps, latency observations) is identical to
// RunSessionBatched, so a staged run's audits are bit-identical to the
// synchronous path for the same verdicts.
type StagedSession struct {
	s          *System
	ctx        *teec.Context
	sess       *teec.Session
	res        *SessionResult
	utterances []sensitive.Utterance
	batch      int
	start      tz.Cycles
	lo         int
	pending    bool
	finished   bool
}

// BeginStagedSession opens the TEEC session and prepares the staged run.
// Only secure-filter systems can classify externally; batch is clamped
// to MaxBatch and raised to 1.
func (s *System) BeginStagedSession(utterances []sensitive.Utterance, batch int) (*StagedSession, error) {
	if s.cfg.Mode != ModeSecureFilter {
		return nil, ErrNoStagedMode
	}
	if batch < 1 {
		batch = 1
	}
	if batch > MaxBatch {
		batch = MaxBatch
	}
	st := &StagedSession{
		s:          s,
		res:        &SessionResult{Mode: s.cfg.Mode, Latency: metrics.NewRecorder()},
		utterances: utterances,
		batch:      batch,
		start:      s.Clock.Now(),
	}
	s.Monitor.ResetStats()
	st.ctx = teec.InitializeContext(s.TEE)
	sess, err := st.ctx.OpenSession(UUIDVoiceTA)
	if err != nil {
		return nil, fmt.Errorf("core staged session: %w", err)
	}
	st.sess = sess
	return st, nil
}

// CaptureGroup queues the next utterance group onto the bus, runs the
// TA's capture+transcribe half (CmdTranscribeBatch) and returns the
// parked group. Returns (nil, nil) when every utterance has been
// captured; the caller must ResumeGroup the previous group first.
func (st *StagedSession) CaptureGroup() (*PendingGroup, error) {
	if st.finished {
		return nil, errors.New("core staged session: already finished")
	}
	if st.pending {
		return nil, errors.New("core staged session: previous group not resumed")
	}
	if st.lo >= len(st.utterances) {
		return nil, nil
	}
	s := st.s
	hi := min(st.lo+st.batch, len(st.utterances))
	group := st.utterances[st.lo:hi]
	groupStart := s.Clock.Now()

	// Queue the whole group onto the bus; the mic appends signals, so
	// the FIFO holds the utterances back to back.
	lens := make([]byte, 0, 4*len(group))
	for i, u := range group {
		pcm := s.utteranceAudio(st.lo+i, u)
		s.Mic.Load(pcm)
		var word [4]byte
		binary.LittleEndian.PutUint32(word[:], uint32(len(pcm.Samples)*2))
		lens = append(lens, word[:]...)
	}
	for {
		if _, err := s.Mic.PumpBytes(8192); err != nil {
			break
		}
	}

	p := &optee.Params{{Type: optee.MemrefIn, Buf: lens}, {}}
	if err := st.sess.InvokeCommand(CmdTranscribeBatch, p); err != nil {
		return nil, fmt.Errorf("staged capture at %d: %w", st.lo, err)
	}
	pg := &PendingGroup{
		Tokens:     s.VoiceTA.PendingTokens(),
		Version:    s.VoiceTA.ModelVersion(),
		Now:        s.Clock.Now(),
		groupStart: groupStart,
		lo:         st.lo,
		truths:     group,
	}
	if len(pg.Tokens) != len(group) {
		return nil, fmt.Errorf("staged capture at %d: %d token sequences for %d utterances",
			st.lo, len(pg.Tokens), len(group))
	}
	st.lo = hi
	st.pending = true
	return pg, nil
}

// ResumeGroup completes a parked group with the shared classifier's
// verdicts: per-item flags and flush occupancies plus the virtual cycles
// the classification waited (when the last overlapping flush returned).
// The TA relays survivors; the session then performs the exact per-group
// bookkeeping of RunSessionBatched.
func (st *StagedSession) ResumeGroup(pg *PendingGroup, flags []bool, occs []int, wait tz.Cycles) error {
	if st.finished {
		return errors.New("core staged session: already finished")
	}
	if !st.pending {
		return errors.New("core staged session: no group pending")
	}
	n := len(pg.truths)
	if len(flags) != n || len(occs) != n {
		return fmt.Errorf("staged resume at %d: %d flags / %d occupancies for %d utterances",
			pg.lo, len(flags), len(occs), n)
	}
	s := st.s
	res := st.res

	buf := make([]byte, 5*n)
	for i := 0; i < n; i++ {
		if flags[i] {
			buf[5*i] = 1
		}
		binary.LittleEndian.PutUint32(buf[5*i+1:], uint32(occs[i]))
	}
	before := len(s.VoiceTA.Processed())
	p := &optee.Params{
		{Type: optee.MemrefIn, Buf: buf},
		{Type: optee.ValueIn, A: uint64(wait)},
		{},
	}
	if err := st.sess.InvokeCommand(CmdResumeBatch, p); err != nil {
		return fmt.Errorf("staged resume at %d: %w", pg.lo, err)
	}
	records := s.VoiceTA.Processed()
	if len(records) != before+n {
		return fmt.Errorf("staged resume at %d: %d records for %d utterances", pg.lo, len(records)-before, n)
	}
	cursor := pg.groupStart
	for i, rec := range records[before:] {
		s.emitUtteranceSpans(cursor, rec, n)
		cursor += rec.Stages.Total()
		out := UtteranceOutcome{
			Truth:      pg.truths[i],
			Transcript: rec.Transcript,
			Flagged:    rec.Flagged,
			Forwarded:  rec.Forwarded,
			Shed:       rec.Shed,
			Expired:    rec.Expired,
			Redacted:   rec.Redacted,
			Cycles:     rec.Stages.Total(),
			Stages:     rec.Stages,
		}
		if rec.SealedSize > 0 {
			s.mu.Lock()
			s.radioBytes += uint64(rec.SealedSize)
			s.mu.Unlock()
		}
		res.Utterances = append(res.Utterances, out)
		if out.Shed {
			res.ShedEvents++
		}
		if out.Expired {
			res.ExpiredEvents++
		}
		res.Latency.Observe(float64(out.Cycles))
	}

	// The compromised OS sweeps the capture buffer between batches.
	s.sweepSnoop(res)
	st.pending = false
	return nil
}

// Finish finalizes the session result and closes the TEEC session. The
// session is unusable afterwards.
func (st *StagedSession) Finish() (*SessionResult, error) {
	if st.finished {
		return nil, errors.New("core staged session: already finished")
	}
	if st.pending {
		return nil, errors.New("core staged session: group still pending")
	}
	if st.lo < len(st.utterances) {
		return nil, fmt.Errorf("core staged session: %d of %d utterances captured",
			st.lo, len(st.utterances))
	}
	st.finished = true
	st.s.finalizeSession(st.res, st.start)
	err := st.ctx.FinalizeContext()
	return st.res, err
}

// Abort tears the session down without finalizing (error paths). Safe to
// call after Finish, where it is a no-op.
func (st *StagedSession) Abort() {
	if st.finished {
		return
	}
	st.finished = true
	_ = st.ctx.FinalizeContext()
}
