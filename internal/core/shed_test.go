package core

import (
	"fmt"
	"testing"

	"repro/internal/cloud"
	"repro/internal/sensitive"
)

// shedSink models an ingest frontend refusing every delivery under
// admission pressure.
type shedSink struct{ n int }

func (s *shedSink) Deliver([]byte) ([]byte, error) {
	s.n++
	return nil, fmt.Errorf("frontend: %w", cloud.ErrShed)
}

// TestSessionToleratesShedDelivery: a frontend shedding every frame is
// an admission outcome, not a session fault — the run completes, each
// emitted event is marked Shed (still Forwarded: it was emitted and
// paid for), and the session aggregates the count.
func TestSessionToleratesShedDelivery(t *testing.T) {
	for _, mode := range []Mode{ModeBaseline, ModeSecureNoFilter} {
		t.Run(mode.String(), func(t *testing.T) {
			sys, err := NewSystem(Config{Mode: mode, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			sink := &shedSink{}
			sys.SetUplink(sink)
			utts, err := sensitive.Generate(sensitive.GenConfig{N: 2, SensitiveFraction: 0.5, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.RunSession(utts)
			if err != nil {
				t.Fatalf("shed deliveries failed the session: %v", err)
			}
			if sink.n != len(utts) {
				t.Fatalf("sink saw %d deliveries, want %d", sink.n, len(utts))
			}
			if res.ShedEvents != len(utts) {
				t.Fatalf("ShedEvents = %d, want %d", res.ShedEvents, len(utts))
			}
			for i, u := range res.Utterances {
				if !u.Forwarded || !u.Shed {
					t.Fatalf("utterance %d: Forwarded=%v Shed=%v, want true/true", i, u.Forwarded, u.Shed)
				}
			}
			// On the secure path the shed travels through the RPC daemon,
			// which must classify it as Shed, not a transport error.
			if mode != ModeBaseline {
				if st := sys.Supplicant.Stats(); st.Shed != uint64(len(utts)) || st.Errors != 0 {
					t.Fatalf("supplicant stats = %+v, want Shed=%d Errors=0", st, len(utts))
				}
			}
		})
	}
}
