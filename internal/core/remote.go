package core

import "repro/internal/tz"

// ClassifyService is the hook a shared cross-device inference scheduler
// implements (see internal/sched). When a VoiceTA has a service wired,
// its classify stage ships encoded token IDs to the shared enclave
// instead of running the sealed per-device classifier, and charges the
// returned virtual wait (queue time plus the device's share of the
// batched forward pass) to its own clock. The interface lives in core so
// the dependency points outward: core never imports the scheduler.
//
// Equivalence contract: the service must produce, for every item, the
// same flag the device's own classifier would — predictions are
// per-sample, so batching across devices is latency machinery only and
// per-device transcripts and audit counters stay bit-identical to the
// unbatched path.
type ClassifyService interface {
	ClassifyBatch(req ClassifyRequest) (ClassifyResponse, error)
}

// ClassifyRequest carries one device's pending utterances to the shared
// classifier. Only encoded token IDs and queue metadata cross the
// boundary — never transcript words or raw audio.
type ClassifyRequest struct {
	DeviceID     string
	ModelVersion uint64    // routes the request to the right per-version queue
	Tokens       [][]int   // vocabulary-encoded token sequences, one per utterance
	Now          tz.Cycles // device virtual clock at submit
}

// ClassifyResponse returns per-item verdicts, the virtual cycles to
// charge the device's classify stage, and the occupancy of the shared
// batch the request rode in (exported on the classify trace span).
type ClassifyResponse struct {
	Flagged   []bool
	Wait      tz.Cycles
	Occupancy int
}

// SetClassifyService wires (or clears, with nil) the shared classify
// service. Call before the session runs; the model version submitted
// with each request is read at classify time, so a mid-run rollout
// moves the device to the new version's queue.
func (t *VoiceTA) SetClassifyService(deviceID string, svc ClassifyService) {
	t.mu.Lock()
	t.remote = svc
	t.remoteDevice = deviceID
	t.mu.Unlock()
}

// SetClassifyService wires the shared classify service into the voice TA
// (no-op for systems without one, e.g. baseline mode).
func (s *System) SetClassifyService(svc ClassifyService) {
	if s.VoiceTA != nil {
		s.VoiceTA.SetClassifyService(s.cfg.DeviceID, svc)
	}
}
