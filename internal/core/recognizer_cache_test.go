package core

// Regression coverage for the recognizer model cache. The historical key
// was (rate, noiseAmp) only, although templates are trained on
// vocab.Words(): two configurations sharing acoustic conditions but
// speaking different vocabularies silently shared one recognizer. The
// key now includes a vocabulary digest.

import (
	"testing"

	"repro/internal/audio"
	"repro/internal/sensitive"
)

func TestTrainedModelKeyedByVocabulary(t *testing.T) {
	voice := audio.DefaultVoice(9)
	voice.NoiseAmp = 0.01

	vocabA := sensitive.NewVocabularyFromWords([]string{"alpha", "bravo"})
	vocabB := sensitive.NewVocabularyFromWords([]string{"charlie", "delta", "echo"})

	a1, err := trainedModel(vocabA, voice)
	if err != nil {
		t.Fatalf("trainedModel(A): %v", err)
	}
	b, err := trainedModel(vocabB, voice)
	if err != nil {
		t.Fatalf("trainedModel(B): %v", err)
	}
	if a1 == b {
		t.Fatal("different vocabularies share one recognizer model (cache key ignores vocabulary)")
	}
	if got, want := len(a1.Vocabulary()), 2; got != want {
		t.Fatalf("model A has %d words, want %d", got, want)
	}
	if got, want := len(b.Vocabulary()), 3; got != want {
		t.Fatalf("model B has %d words, want %d — vocabularies leaked across cache entries", got, want)
	}

	// Same conditions and vocabulary must still share one trained model.
	a2, err := trainedModel(vocabA, voice)
	if err != nil {
		t.Fatalf("trainedModel(A) again: %v", err)
	}
	if a1 != a2 {
		t.Fatal("identical training conditions did not hit the cache")
	}

	// A different voice seed must not fork the cache: pre-training pins
	// its own seed, so only rate/noise/vocabulary matter.
	voice2 := voice
	voice2.Seed = 777
	a3, err := trainedModel(vocabA, voice2)
	if err != nil {
		t.Fatalf("trainedModel(A, other seed): %v", err)
	}
	if a1 != a3 {
		t.Fatal("runtime voice seed leaked into the recognizer cache key")
	}
}

func TestVocabDigestDistinguishesWordLists(t *testing.T) {
	a := vocabDigest([]string{"ab", "c"})
	b := vocabDigest([]string{"a", "bc"})
	if a == b {
		t.Fatal("digest collides on shifted word boundaries")
	}
	if vocabDigest([]string{"x", "y"}) != vocabDigest([]string{"x", "y"}) {
		t.Fatal("digest is not deterministic")
	}
}
