package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cloud"
	"repro/internal/supplicant"
	"repro/internal/tz"
)

// flakySink fails the first `failures` deliveries with err, then
// succeeds, counting every call.
type flakySink struct {
	failures int
	err      error
	calls    int
}

func (f *flakySink) Deliver(frame []byte) ([]byte, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, f.err
	}
	return []byte("ok"), nil
}

var errTransientTest = fmt.Errorf("test: flaky (%w)", supplicant.ErrTransient)

// TestRetryScheduleProperties is the retry property test: across seeded
// randomized trials, the backoff schedule is a pure function of (seed,
// failure pattern) — two sinks with the same seed charge their clocks
// identically — the total charge never exceeds the budget, and a frame
// that succeeds at attempt k is delivered exactly k times (an admitted
// frame is never re-sent).
func TestRetryScheduleProperties(t *testing.T) {
	trials := NewRNG(DeriveSeed(7, SaltFault, 0), SaltFault)
	for trial := 0; trial < 8; trial++ {
		cfg := RetryConfig{
			Attempts:    2 + trials.IntN(8),
			BaseBackoff: tz.Cycles(1_000 + trials.Uint64N(20_000)),
			Seed:        trials.Uint64() | 1,
		}
		failures := trials.IntN(cfg.Attempts) // succeed within the bound
		run := func() (*flakySink, tz.Cycles, RetryStats, error) {
			sink := &flakySink{failures: failures, err: errTransientTest}
			clock := tz.NewClock()
			r := NewRetrySink(sink, clock, cfg)
			_, err := r.Deliver([]byte("frame"))
			return sink, clock.Now(), r.Stats(), err
		}
		sinkA, chargedA, statsA, errA := run()
		sinkB, chargedB, statsB, errB := run()
		if errA != nil || errB != nil {
			t.Fatalf("trial %d: deliver failed: %v / %v", trial, errA, errB)
		}
		if chargedA != chargedB {
			t.Fatalf("trial %d: same seed charged %d vs %d cycles", trial, chargedA, chargedB)
		}
		if statsA != statsB {
			t.Fatalf("trial %d: stats diverged: %+v vs %+v", trial, statsA, statsB)
		}
		if sinkA.calls != failures+1 || sinkB.calls != failures+1 {
			t.Fatalf("trial %d: %d/%d deliveries for %d failures — an admitted frame was re-sent",
				trial, sinkA.calls, sinkB.calls, failures)
		}
		if chargedA > statsA.BackoffCycles || statsA.BackoffCycles > 4_000_000 {
			t.Fatalf("trial %d: charged %d, recorded %d, budget 4_000_000",
				trial, chargedA, statsA.BackoffCycles)
		}
		if statsA.Retries != uint64(failures) {
			t.Fatalf("trial %d: %d retries for %d failures", trial, statsA.Retries, failures)
		}
		if failures > 0 && statsA.Recovered != 1 {
			t.Fatalf("trial %d: recovery not counted: %+v", trial, statsA)
		}
	}
}

// TestRetryExhaustionExpires asserts the give-up path: a sink that never
// stops failing transiently yields an explicit expiry — the error chains
// through cloud.ErrExpired to supplicant.ErrExpired, the attempt bound
// is respected, and the virtual charge stays within the budget.
func TestRetryExhaustionExpires(t *testing.T) {
	sink := &flakySink{failures: 1 << 30, err: errTransientTest}
	clock := tz.NewClock()
	r := NewRetrySink(sink, clock, RetryConfig{Attempts: 5, Seed: 42})
	_, err := r.Deliver([]byte("frame"))
	if !errors.Is(err, cloud.ErrExpired) || !errors.Is(err, supplicant.ErrExpired) {
		t.Fatalf("exhaustion error does not classify as expired: %v", err)
	}
	if sink.calls != 5 {
		t.Fatalf("%d deliveries, want the attempt bound 5", sink.calls)
	}
	if st := r.Stats(); st.Expired != 1 || st.Deliveries != 0 {
		t.Fatalf("exhaustion stats: %+v", st)
	}
	if clock.Now() > 4_000_000 {
		t.Fatalf("charged %d cycles, budget 4_000_000", clock.Now())
	}
}

// TestRetryBudgetBeatsAttempts: a tight budget expires the frame before
// the attempt bound is reached, and the clock never charges past it.
func TestRetryBudgetBeatsAttempts(t *testing.T) {
	sink := &flakySink{failures: 1 << 30, err: errTransientTest}
	clock := tz.NewClock()
	r := NewRetrySink(sink, clock, RetryConfig{
		Attempts: 64, BaseBackoff: 1_000, MaxBackoff: 1_000_000, Budget: 10_000, Seed: 3,
	})
	_, err := r.Deliver([]byte("frame"))
	if !errors.Is(err, cloud.ErrExpired) {
		t.Fatalf("budget exhaustion did not expire: %v", err)
	}
	if clock.Now() > 10_000 {
		t.Fatalf("charged %d cycles past the 10_000 budget", clock.Now())
	}
	if sink.calls >= 64 {
		t.Fatalf("%d deliveries — the budget should give up long before the attempt bound", sink.calls)
	}
}

// TestRetryPassesNonTransient: anything outside the transient chain
// returns unchanged on the first attempt, with no backoff charged.
func TestRetryPassesNonTransient(t *testing.T) {
	permanent := errors.New("test: permanent rejection")
	sink := &flakySink{failures: 1 << 30, err: permanent}
	clock := tz.NewClock()
	r := NewRetrySink(sink, clock, RetryConfig{})
	_, err := r.Deliver([]byte("frame"))
	if !errors.Is(err, permanent) || errors.Is(err, cloud.ErrExpired) {
		t.Fatalf("non-transient error mangled: %v", err)
	}
	if sink.calls != 1 || clock.Now() != 0 {
		t.Fatalf("non-transient path retried: %d calls, %d cycles", sink.calls, clock.Now())
	}
}
