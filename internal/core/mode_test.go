package core

import (
	"errors"
	"strings"
	"testing"
)

// TestModeStringParseRoundTrip: every registered mode survives
// String → ParseMode exactly, and names are unique. Exhaustive over the
// registry so adding a mode without wiring both directions fails here.
func TestModeStringParseRoundTrip(t *testing.T) {
	seen := map[string]Mode{}
	for _, m := range Modes() {
		name := m.String()
		if strings.HasPrefix(name, "mode(") {
			t.Fatalf("registered mode %d has no name", int(m))
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("modes %d and %d share the name %q", int(prev), int(m), name)
		}
		seen[name] = m
		got, err := ParseMode(name)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", name, err)
		}
		if got != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", name, got, m)
		}
	}
	if len(seen) != len(Modes()) {
		t.Fatalf("registry has %d modes, %d names", len(Modes()), len(seen))
	}
}

// TestParseModeUnknown: an unknown name is ErrBadMode and the error
// lists every registered mode so the operator can fix the spelling.
func TestParseModeUnknown(t *testing.T) {
	_, err := ParseMode("enclave-only")
	if !errors.Is(err, ErrBadMode) {
		t.Fatalf("unknown mode = %v, want ErrBadMode", err)
	}
	for _, m := range Modes() {
		if !strings.Contains(err.Error(), m.String()) {
			t.Fatalf("error %q does not list %s", err, m)
		}
	}
}

// TestErrBadModeNamesMode: bad-mode errors print the mode's name, not
// its bare integer — "secure-nofilter", never "2".
func TestErrBadModeNamesMode(t *testing.T) {
	_, err := NewCameraSystem(CameraConfig{Mode: ModeSecureNoFilter, Seed: 1})
	if !errors.Is(err, ErrBadMode) {
		t.Fatalf("no-filter camera = %v, want ErrBadMode", err)
	}
	if !strings.Contains(err.Error(), ModeSecureNoFilter.String()) {
		t.Fatalf("camera error %q does not name the rejected mode", err)
	}
	_, err = NewSystem(Config{Mode: Mode(9)})
	if !errors.Is(err, ErrBadMode) {
		t.Fatalf("unregistered mode = %v, want ErrBadMode", err)
	}
	if !strings.Contains(err.Error(), Mode(9).String()) {
		t.Fatalf("config error %q does not render the mode via String", err)
	}
}
