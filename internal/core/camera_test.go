package core

import (
	"errors"
	"testing"

	"repro/internal/peripheral"
)

func daySenes() []peripheral.Scene {
	return []peripheral.Scene{
		peripheral.SceneEmpty, peripheral.ScenePerson, peripheral.SceneEmpty,
		peripheral.ScenePerson, peripheral.ScenePerson, peripheral.SceneEmpty,
		peripheral.SceneEmpty, peripheral.ScenePerson,
	}
}

func runCamera(t *testing.T, mode Mode) *CameraSessionResult {
	t.Helper()
	sys, err := NewCameraSystem(CameraConfig{Mode: mode, Seed: 11})
	if err != nil {
		t.Fatalf("NewCameraSystem(%v): %v", mode, err)
	}
	res, err := sys.RunSession(daySenes())
	if err != nil {
		t.Fatalf("RunSession(%v): %v", mode, err)
	}
	return res
}

func TestCameraBaselineLeaksPersonFrames(t *testing.T) {
	res := runCamera(t, ModeBaseline)
	if res.Frames != 8 || res.PersonFrames != 4 {
		t.Fatalf("workload wrong: %+v", res)
	}
	// Every frame, person or not, reaches the cloud.
	if res.ForwardedFrames != 8 || res.ForwardedPersons != 4 {
		t.Errorf("baseline forwarded %d (%d persons), want 8 (4)", res.ForwardedFrames, res.ForwardedPersons)
	}
	// The OS snoops the frame buffer freely.
	if res.Snoop.Blocked != 0 || res.Snoop.BytesRecovered == 0 {
		t.Errorf("baseline snoop = %+v", res.Snoop)
	}
}

func TestCameraSecureFilterBlocksPersonFrames(t *testing.T) {
	res := runCamera(t, ModeSecureFilter)
	if res.ForwardedPersons != 0 {
		t.Errorf("secure pipeline leaked %d person frames", res.ForwardedPersons)
	}
	// Benign frames still flow.
	if res.ForwardedFrames == 0 {
		t.Error("no frames forwarded at all")
	}
	if res.BlockedEmpties > 1 {
		t.Errorf("%d empty frames wrongly blocked", res.BlockedEmpties)
	}
	// Snooping defeated.
	if res.Snoop.Blocked != res.Snoop.Attempts || res.Snoop.Attempts == 0 {
		t.Errorf("secure snoop = %+v", res.Snoop)
	}
	// The cloud received exactly the forwarded frames.
	if res.CloudFrames != res.ForwardedFrames {
		t.Errorf("cloud frames %d vs forwarded %d", res.CloudFrames, res.ForwardedFrames)
	}
}

func TestCameraSecureCostsMore(t *testing.T) {
	base := runCamera(t, ModeBaseline)
	secure := runCamera(t, ModeSecureFilter)
	if secure.Latency.Mean() <= base.Latency.Mean() {
		t.Errorf("secure latency %v not above baseline %v", secure.Latency.Mean(), base.Latency.Mean())
	}
	// And, as with audio, radio traffic shrinks (blocked frames never fly).
	if secure.Energy.RadiomJ >= base.Energy.RadiomJ {
		t.Errorf("secure radio energy %v not below baseline %v", secure.Energy.RadiomJ, base.Energy.RadiomJ)
	}
}

func TestCameraCloudSeesOnlyCiphertext(t *testing.T) {
	sys, err := NewCameraSystem(CameraConfig{Mode: ModeSecureFilter, Seed: 11})
	if err != nil {
		t.Fatalf("NewCameraSystem: %v", err)
	}
	if _, err := sys.RunSession(daySenes()); err != nil {
		t.Fatalf("RunSession: %v", err)
	}
	// The supplicant carried only sealed frames: no payload should carry
	// the camera's image structure (a long run of identical base-gradient
	// rows would betray plaintext).
	for _, payload := range sys.Supplicant.Observed() {
		if len(payload) < 16 {
			continue
		}
		runs := 0
		for i := 1; i < len(payload); i++ {
			if payload[i] == payload[i-1] {
				runs++
			}
		}
		// Ciphertext has ~len/256 coincidental repeats; plaintext frames
		// have long gradient runs.
		if float64(runs) > float64(len(payload))/16 {
			t.Fatalf("supplicant payload looks like plaintext pixels (%d runs in %d bytes)", runs, len(payload))
		}
	}
	// The legitimate cloud endpoint, as TLS peer, does decrypt frames.
	audit := sys.Cloud.Audit()
	if audit.Events == 0 {
		t.Error("cloud received no events")
	}
}

func TestCameraRejectsNoFilterMode(t *testing.T) {
	if _, err := NewCameraSystem(CameraConfig{Mode: ModeSecureNoFilter, Seed: 1}); !errors.Is(err, ErrBadMode) {
		t.Errorf("no-filter camera = %v, want ErrBadMode", err)
	}
	if _, err := NewCameraSystem(CameraConfig{Seed: 1}); !errors.Is(err, ErrBadMode) {
		t.Errorf("zero mode camera = %v, want ErrBadMode", err)
	}
}

func TestCameraDeterminism(t *testing.T) {
	a := runCamera(t, ModeSecureFilter)
	b := runCamera(t, ModeSecureFilter)
	if a.ForwardedFrames != b.ForwardedFrames || a.TotalCycles != b.TotalCycles {
		t.Errorf("non-deterministic camera run: %d/%d vs %d/%d cycles %d vs %d",
			a.ForwardedFrames, a.ForwardedPersons, b.ForwardedFrames, b.ForwardedPersons,
			a.TotalCycles, b.TotalCycles)
	}
}
