package core

// Adversarial and failure-injection tests: the paper's design claims must
// survive an actively hostile normal world, not just a passive one.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/optee"
	"repro/internal/relay"
	"repro/internal/sensitive"
)

func TestHostileSupplicantReplayRejected(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeSecureFilter, Seed: 42})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if _, err := sys.RunSession(testUtterances()[:3]); err != nil {
		t.Fatalf("RunSession: %v", err)
	}
	frames := sys.Supplicant.Observed()
	if len(frames) == 0 {
		t.Fatal("supplicant observed no frames")
	}
	// A hostile daemon replays every frame it ever forwarded. The cloud's
	// channel tracks sequence numbers; all replays must bounce.
	for i, frame := range frames {
		if _, err := sys.CloudSealed.Deliver(frame); !errors.Is(err, relay.ErrReplay) {
			t.Errorf("replayed frame %d accepted: %v", i, err)
		}
	}
	// And the replays must not have re-recorded events.
	audit := sys.CloudSealed.Audit()
	if audit.Events != len(frames) {
		t.Errorf("cloud recorded %d events for %d legitimate frames", audit.Events, len(frames))
	}
}

func TestHostileSupplicantCannotForgeEvents(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeSecureFilter, Seed: 42})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if _, err := sys.RunSession(testUtterances()[:1]); err != nil {
		t.Fatalf("RunSession: %v", err)
	}
	// The daemon fabricates a plausible-looking frame (fresh sequence
	// number, bogus ciphertext): authentication must reject it.
	forged := make([]byte, 96)
	forged[7] = 0xff // sequence number far ahead
	if _, err := sys.CloudSealed.Deliver(forged); !errors.Is(err, relay.ErrBadFrame) {
		t.Errorf("forged frame = %v, want ErrBadFrame", err)
	}
}

// failingSink breaks the network after n deliveries.
type failingSink struct {
	inner interface {
		Deliver([]byte) ([]byte, error)
	}
	remaining int
}

func (f *failingSink) Deliver(p []byte) ([]byte, error) {
	if f.remaining <= 0 {
		return nil, errors.New("connection reset by peer")
	}
	f.remaining--
	return f.inner.Deliver(p)
}

func TestNetworkFailureSurfacesFromSession(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeSecureNoFilter, Seed: 42})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	// Let one utterance through, then kill the network.
	sys.Supplicant.Route(CloudTarget, &failingSink{inner: sys.CloudSealed, remaining: 1})
	_, err = sys.RunSession(testUtterances()[:3])
	if err == nil {
		t.Fatal("session succeeded with a dead network")
	}
	if !strings.Contains(err.Error(), "connection reset") {
		t.Errorf("error lost the cause: %v", err)
	}
}

// garbageSink replies with bytes that are not a sealed directive.
type garbageSink struct{}

func (garbageSink) Deliver(p []byte) ([]byte, error) {
	return []byte("HTTP/1.1 200 OK\r\n\r\nnot a directive"), nil
}

func TestTamperedDirectiveDetectedByTA(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeSecureNoFilter, Seed: 42})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	// A man-in-the-middle (or hostile daemon) substitutes the cloud's
	// reply; the TA must refuse it rather than trust unauthenticated
	// directives.
	sys.Supplicant.Route(CloudTarget, garbageSink{})
	_, err = sys.RunSession(testUtterances()[:1])
	if err == nil {
		t.Fatal("session accepted a tampered directive")
	}
	if !errors.Is(err, relay.ErrBadFrame) {
		t.Errorf("tampered directive error = %v, want ErrBadFrame", err)
	}
}

func TestMissingSupplicantFailsCleanly(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeSecureNoFilter, Seed: 42})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sys.TEE.SetRPCHandler(nil)
	_, err = sys.RunSession(testUtterances()[:1])
	if !errors.Is(err, optee.ErrNoRPCHandler) {
		t.Errorf("session without supplicant = %v, want ErrNoRPCHandler", err)
	}
}

func TestBlockedUtterancesNeverTouchTheNetwork(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeSecureFilter, Policy: relay.PolicyBlock, Seed: 42})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	// All-sensitive workload: with block policy, nothing should be
	// relayed, so a dead network must not even be noticed.
	sys.Supplicant.Route(CloudTarget, &failingSink{inner: sys.CloudSealed, remaining: 0})
	utts := []sensitive.Utterance{
		{Words: []string{"my", "password", "is", "tango", "seven"}, Sensitive: true},
		{Words: []string{"my", "account", "number", "is", "nine", "two"}, Sensitive: true},
	}
	res, err := sys.RunSession(utts)
	if err != nil {
		t.Fatalf("RunSession: %v", err)
	}
	for i, u := range res.Utterances {
		if u.Forwarded {
			t.Errorf("utterance %d forwarded despite block policy", i)
		}
	}
	if st := sys.Supplicant.Stats(); st.NetSends != 0 {
		t.Errorf("supplicant sent %d frames for blocked content", st.NetSends)
	}
}

func TestSupplicantObservationsAreCiphertext(t *testing.T) {
	sys, err := NewSystem(Config{Mode: ModeSecureNoFilter, Seed: 42})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if _, err := sys.RunSession(testUtterances()[:4]); err != nil {
		t.Fatalf("RunSession: %v", err)
	}
	// Even in no-filter mode (full transcripts relayed), the daemon sees
	// only sealed bytes: no utterance word may appear verbatim.
	words := append(sys.Vocab.Words(), "transcript", "Recognize")
	for _, payload := range sys.Supplicant.Observed() {
		text := string(payload)
		for _, w := range words {
			if len(w) >= 4 && strings.Contains(text, w) {
				t.Fatalf("supplicant payload contains plaintext %q", w)
			}
		}
	}
}
