package relay

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
)

type seededReader struct{ rng *rand.Rand }

func (s seededReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(s.rng.Uint64())
	}
	return len(p), nil
}

func channelPair(t *testing.T) (client, server *Channel) {
	t.Helper()
	rng := seededReader{rand.New(rand.NewPCG(1, 2))}
	a, err := NewIdentity(rng)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	b, err := NewIdentity(rng)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	client, err = NewChannel(a, b.PublicKey(), true)
	if err != nil {
		t.Fatalf("NewChannel client: %v", err)
	}
	server, err = NewChannel(b, a.PublicKey(), false)
	if err != nil {
		t.Fatalf("NewChannel server: %v", err)
	}
	return client, server
}

func TestChannelRoundTripBothDirections(t *testing.T) {
	client, server := channelPair(t)
	msg := []byte("the user said: weather please")
	frame := client.Seal(msg)
	got, err := server.Open(frame)
	if err != nil {
		t.Fatalf("server Open: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("server read %q", got)
	}
	reply := []byte("directive: speak")
	back, err := client.Open(server.Seal(reply))
	if err != nil {
		t.Fatalf("client Open: %v", err)
	}
	if !bytes.Equal(back, reply) {
		t.Errorf("client read %q", back)
	}
}

func TestChannelConfidentiality(t *testing.T) {
	client, _ := channelPair(t)
	secret := []byte("password tango seven")
	frame := client.Seal(secret)
	if bytes.Contains(frame, secret) {
		t.Error("sealed frame contains plaintext")
	}
	// Even the word alone must not appear.
	if bytes.Contains(frame, []byte("password")) {
		t.Error("sealed frame leaks tokens")
	}
}

func TestChannelTamperDetected(t *testing.T) {
	client, server := channelPair(t)
	frame := client.Seal([]byte("hello"))
	frame[len(frame)-1] ^= 1
	if _, err := server.Open(frame); !errors.Is(err, ErrBadFrame) {
		t.Errorf("tampered Open = %v, want ErrBadFrame", err)
	}
}

func TestChannelReplayRejected(t *testing.T) {
	client, server := channelPair(t)
	frame := client.Seal([]byte("once"))
	if _, err := server.Open(frame); err != nil {
		t.Fatalf("first Open: %v", err)
	}
	if _, err := server.Open(frame); !errors.Is(err, ErrReplay) {
		t.Errorf("replayed Open = %v, want ErrReplay", err)
	}
}

func TestChannelShortFrame(t *testing.T) {
	_, server := channelPair(t)
	if _, err := server.Open([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short Open = %v", err)
	}
}

func TestChannelWrongKeyFails(t *testing.T) {
	client, _ := channelPair(t)
	rng := seededReader{rand.New(rand.NewPCG(9, 9))}
	mallory, err := NewIdentity(rng)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	other, err := NewIdentity(rng)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	wrong, err := NewChannel(mallory, other.PublicKey(), false)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	if _, err := wrong.Open(client.Seal([]byte("x"))); !errors.Is(err, ErrBadFrame) {
		t.Errorf("wrong-key Open = %v", err)
	}
}

func TestNewChannelBadPeerKey(t *testing.T) {
	rng := seededReader{rand.New(rand.NewPCG(3, 3))}
	id, err := NewIdentity(rng)
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	if _, err := NewChannel(id, []byte{1, 2, 3}, true); err == nil {
		t.Error("bad peer key accepted")
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	e := Event{
		Namespace:  NamespaceSpeech,
		Name:       NameTranscript,
		MessageID:  7,
		Transcript: []string{"turn", "on", "light"},
		Redacted:   1,
	}
	data, err := EncodeEvent(e)
	if err != nil {
		t.Fatalf("EncodeEvent: %v", err)
	}
	got, err := DecodeEvent(data)
	if err != nil {
		t.Fatalf("DecodeEvent: %v", err)
	}
	if got.Name != e.Name || len(got.Transcript) != 3 || got.Transcript[1] != "on" || got.Redacted != 1 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeEvent([]byte("{not json")); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad DecodeEvent = %v", err)
	}
}

func TestApplyPolicyPassThrough(t *testing.T) {
	tokens := []string{"my", "password", "is", "tango"}
	res, err := ApplyPolicy(PolicyPassThrough, true, tokens)
	if err != nil {
		t.Fatalf("ApplyPolicy: %v", err)
	}
	if !res.Forward || len(res.Tokens) != 4 || res.Redacted != 0 {
		t.Errorf("pass-through = %+v", res)
	}
}

func TestApplyPolicyBlock(t *testing.T) {
	res, err := ApplyPolicy(PolicyBlock, true, []string{"password"})
	if err != nil {
		t.Fatalf("ApplyPolicy: %v", err)
	}
	if res.Forward {
		t.Error("flagged utterance forwarded under block policy")
	}
	res, err = ApplyPolicy(PolicyBlock, false, []string{"weather"})
	if err != nil {
		t.Fatalf("ApplyPolicy: %v", err)
	}
	if !res.Forward {
		t.Error("benign utterance blocked")
	}
}

func TestApplyPolicyRedact(t *testing.T) {
	tokens := []string{"my", "password", "is", "tango", "account", "too"}
	res, err := ApplyPolicy(PolicyRedact, true, tokens)
	if err != nil {
		t.Fatalf("ApplyPolicy: %v", err)
	}
	if !res.Forward || res.Redacted != 2 {
		t.Errorf("redact = %+v", res)
	}
	if res.Tokens[1] != RedactedToken || res.Tokens[4] != RedactedToken {
		t.Errorf("tokens = %v", res.Tokens)
	}
	if res.Tokens[0] != "my" || res.Tokens[3] != "tango" {
		t.Error("non-sensitive tokens modified")
	}
	// Flagged but no lexicon hit: fail closed.
	res, err = ApplyPolicy(PolicyRedact, true, []string{"mumble", "mumble"})
	if err != nil {
		t.Fatalf("ApplyPolicy: %v", err)
	}
	if res.Forward {
		t.Error("lexicon-miss redact did not fail closed")
	}
	// Unflagged passes untouched.
	res, err = ApplyPolicy(PolicyRedact, false, tokens)
	if err != nil {
		t.Fatalf("ApplyPolicy: %v", err)
	}
	if !res.Forward || res.Redacted != 0 {
		t.Errorf("unflagged redact = %+v", res)
	}
}

func TestApplyPolicyUnknown(t *testing.T) {
	if _, err := ApplyPolicy(Policy(9), true, nil); !errors.Is(err, ErrBadPolicy) {
		t.Errorf("unknown policy = %v", err)
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyPassThrough.String() != "pass-through" ||
		PolicyRedact.String() != "redact" ||
		PolicyBlock.String() != "block" ||
		Policy(9).String() != "policy(9)" {
		t.Error("policy names wrong")
	}
}

func TestSequenceNumbersIncrease(t *testing.T) {
	client, server := channelPair(t)
	for i := 0; i < 5; i++ {
		if _, err := server.Open(client.Seal([]byte{byte(i)})); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}
