package relay

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sensitive"
)

// Property: any payload seals and opens unchanged, in both directions,
// in any interleaving of directions.
func TestChannelRoundTripProperty(t *testing.T) {
	client, server := channelPair(t)
	prop := func(payload []byte, clientSends bool) bool {
		var from, to *Channel
		if clientSends {
			from, to = client, server
		} else {
			from, to = server, client
		}
		got, err := to.Open(from.Seal(payload))
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single byte of a sealed frame makes it
// unopenable.
func TestChannelTamperProperty(t *testing.T) {
	client, server := channelPair(t)
	prop := func(payload []byte, flipAt uint16) bool {
		frame := client.Seal(payload)
		idx := int(flipAt) % len(frame)
		frame[idx] ^= 0x01
		_, err := server.Open(frame)
		if idx < 8 {
			// Flipping the sequence prefix either breaks auth (AAD) or
			// trips replay protection; both are rejections.
			return err != nil
		}
		return err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the filter never forwards a lexicon token under the redact
// policy when the utterance is flagged.
func TestRedactNeverForwardsLexiconProperty(t *testing.T) {
	words := []string{"password", "account", "light", "music", "doctor", "the", "my", "code"}
	prop := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		tokens := make([]string, 0, len(picks))
		for _, p := range picks {
			tokens = append(tokens, words[int(p)%len(words)])
		}
		res, err := ApplyPolicy(PolicyRedact, true, tokens)
		if err != nil {
			return false
		}
		if !res.Forward {
			return true // fail-closed is always acceptable
		}
		for _, tok := range res.Tokens {
			if sensitive.IsSensitiveWord(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
