// Package relay implements the TA-side relay module of the paper's design
// (§II, §IV.5): "a TLS endpoint which implements an API, e.g., Amazon Alexa
// voice service, used to communicate with the cloud service provider."
//
// The channel is an X25519 + AES-256-GCM authenticated-encryption session
// (the stdlib primitives under TLS 1.3), established end to end between
// the TA and the cloud. The untrusted tee-supplicant only ever carries
// sealed frames — that is the property that keeps the normal world out of
// the loop even though it provides the network service.
package relay

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/sensitive"
)

// Errors returned by the package.
var (
	// ErrBadFrame is returned for undecryptable or malformed frames.
	ErrBadFrame = errors.New("relay: bad frame")
	// ErrReplay is returned when a frame's sequence number regresses.
	ErrReplay = errors.New("relay: replayed frame")
	// ErrBadPolicy is returned for unknown filtering policies.
	ErrBadPolicy = errors.New("relay: unknown policy")
)

// Identity is one endpoint's X25519 key pair.
type Identity struct {
	priv *ecdh.PrivateKey
}

// NewIdentity generates a key pair from the given entropy source.
func NewIdentity(rand io.Reader) (*Identity, error) {
	priv, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("relay identity: %w", err)
	}
	return &Identity{priv: priv}, nil
}

// PublicKey returns the endpoint's public key bytes.
func (i *Identity) PublicKey() []byte { return i.priv.PublicKey().Bytes() }

// Channel is one directional pair of AEAD states derived from an ECDH
// handshake. The client (TA) seals with the client-to-server key; the
// server (cloud) seals with the server-to-client key.
type Channel struct {
	send cipher.AEAD
	recv cipher.AEAD

	mu       sync.Mutex
	sendSeq  uint64
	recvSeen uint64
}

// NewChannel derives a channel from the local identity and the peer's
// public key. Both sides compute identical traffic keys; isClient selects
// which direction this endpoint seals.
func NewChannel(local *Identity, remotePub []byte, isClient bool) (*Channel, error) {
	pub, err := ecdh.X25519().NewPublicKey(remotePub)
	if err != nil {
		return nil, fmt.Errorf("relay peer key: %w", err)
	}
	shared, err := local.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("relay ecdh: %w", err)
	}
	c2s := deriveAEAD(shared, "client-to-server")
	s2c := deriveAEAD(shared, "server-to-client")
	ch := &Channel{}
	if isClient {
		ch.send, ch.recv = c2s, s2c
	} else {
		ch.send, ch.recv = s2c, c2s
	}
	return ch, nil
}

func deriveAEAD(shared []byte, label string) cipher.AEAD {
	key := sha256.Sum256(append(shared, []byte("relay-v1:"+label)...))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		// AES-256 with a 32-byte key cannot fail; treat as programmer error.
		panic(fmt.Sprintf("relay: aes: %v", err))
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		panic(fmt.Sprintf("relay: gcm: %v", err))
	}
	return aead
}

// Seal encrypts one payload into a frame: seq(8) || ciphertext.
func (c *Channel) Seal(plaintext []byte) []byte {
	c.mu.Lock()
	c.sendSeq++
	seq := c.sendSeq
	c.mu.Unlock()
	nonce := make([]byte, 12)
	binary.BigEndian.PutUint64(nonce[4:], seq)
	frame := make([]byte, 8, 8+len(plaintext)+16)
	binary.BigEndian.PutUint64(frame, seq)
	return c.send.Seal(frame, nonce, plaintext, frame[:8])
}

// Open authenticates and decrypts a frame, enforcing strictly increasing
// sequence numbers (replay protection).
func (c *Channel) Open(frame []byte) ([]byte, error) {
	if len(frame) < 8+16 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(frame))
	}
	seq := binary.BigEndian.Uint64(frame[:8])
	c.mu.Lock()
	if seq <= c.recvSeen {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: seq %d after %d", ErrReplay, seq, c.recvSeen)
	}
	c.mu.Unlock()
	nonce := make([]byte, 12)
	binary.BigEndian.PutUint64(nonce[4:], seq)
	plain, err := c.recv.Open(nil, nonce, frame[8:], frame[:8])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	c.mu.Lock()
	if seq > c.recvSeen {
		c.recvSeen = seq
	}
	c.mu.Unlock()
	return plain, nil
}

// Event is one AVS-style message to the cloud service.
type Event struct {
	Namespace  string   `json:"namespace"`
	Name       string   `json:"name"`
	MessageID  uint64   `json:"messageId"`
	Transcript []string `json:"transcript,omitempty"`
	Audio      []byte   `json:"audio,omitempty"`
	Redacted   int      `json:"redacted,omitempty"`
}

// Recognize event names used by the pipeline.
const (
	NamespaceSpeech  = "SpeechRecognizer"
	NameTranscript   = "Recognize.Transcript"
	NameAudio        = "Recognize.Audio"
	NamespaceSystem  = "System"
	NameAckDirective = "Directive.Ack"
)

// EncodeEvent marshals an event to its wire form.
func EncodeEvent(e Event) ([]byte, error) {
	out, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("relay event: %w", err)
	}
	return out, nil
}

// DecodeEvent unmarshals an event.
func DecodeEvent(data []byte) (Event, error) {
	var e Event
	if err := json.Unmarshal(data, &e); err != nil {
		return Event{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return e, nil
}

// Policy selects what the relay does with utterances the classifier flags.
type Policy int

const (
	// PolicyPassThrough forwards everything (the insecure baseline).
	PolicyPassThrough Policy = iota + 1
	// PolicyRedact replaces private tokens and forwards the rest.
	PolicyRedact
	// PolicyBlock drops flagged utterances entirely.
	PolicyBlock
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyPassThrough:
		return "pass-through"
	case PolicyRedact:
		return "redact"
	case PolicyBlock:
		return "block"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// RedactedToken is the placeholder substituted for private tokens.
const RedactedToken = "[redacted]"

// FilterResult reports what the policy did to one utterance.
type FilterResult struct {
	Forward  bool
	Tokens   []string
	Redacted int
}

// ApplyPolicy filters a transcript the classifier labelled with flagged.
// Redaction removes lexicon tokens; if the classifier flags an utterance
// in which no lexicon token is found (a generalization catch), redaction
// falls back to blocking — fail closed.
func ApplyPolicy(p Policy, flagged bool, tokens []string) (FilterResult, error) {
	switch p {
	case PolicyPassThrough:
		return FilterResult{Forward: true, Tokens: tokens}, nil
	case PolicyBlock:
		if flagged {
			return FilterResult{Forward: false}, nil
		}
		return FilterResult{Forward: true, Tokens: tokens}, nil
	case PolicyRedact:
		if !flagged {
			return FilterResult{Forward: true, Tokens: tokens}, nil
		}
		out := make([]string, len(tokens))
		redacted := 0
		for i, tok := range tokens {
			if sensitive.IsSensitiveWord(tok) {
				out[i] = RedactedToken
				redacted++
			} else {
				out[i] = tok
			}
		}
		if redacted == 0 {
			// Classifier caught something the lexicon missed: fail closed.
			return FilterResult{Forward: false}, nil
		}
		return FilterResult{Forward: true, Tokens: out, Redacted: redacted}, nil
	default:
		return FilterResult{}, fmt.Errorf("%w: %d", ErrBadPolicy, int(p))
	}
}
