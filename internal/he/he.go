// Package he is a deterministic simulation of leveled homomorphic
// encryption, the cryptographic half of the hybrid HE+TEE split-
// inference mode. It models the three properties the system design
// actually depends on — ciphertext expansion, per-operation cost, and
// a finite noise budget — without implementing lattice cryptography:
//
//   - Ciphertexts are opaque objects Expansion× larger than their
//     plaintexts; their wire encoding carries key-stream-masked slot
//     blocks, so raw feature bytes never appear in provider-visible
//     traffic and byte counters measure honest ciphertext sizes.
//   - Every operation charges calibrated per-slot virtual cycles to
//     the device clock (tz.CostModel's HE*PerSlot fields), so hybrid
//     mode pays the real relative cost of encrypted linear algebra.
//   - Each ciphertext tracks a multiplicative level and a noise
//     budget. A multiply+rescale consumes one level and a fixed noise
//     slice; exceeding Params.MaxDepth or exhausting the budget is a
//     hard typed error (ErrNoiseBudget) — never a silently wrong
//     result, exactly like a real leveled scheme past its parameters.
//
// The evaluator supports the linear operations (conv, matmul, bias
// add) needed for the first layer(s) of the speaker and camera
// classifiers; the non-linear tail (ReLU, pooling, argmax) runs
// inside the TA after the HE→TEE handoff decrypts under the sealed
// secret key. Arithmetic mirrors internal/ml/layers' accumulation
// order exactly, so an encrypted layer is bit-identical to its
// cleartext counterpart.
package he

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/tz"
)

// Typed errors. Callers gate on these with errors.Is.
var (
	// ErrNoiseBudget is returned when an operation would exceed the
	// parameter set's multiplicative depth or exhaust the ciphertext's
	// noise budget. A leveled scheme past its parameters decrypts to
	// garbage; the simulation refuses instead.
	ErrNoiseBudget = errors.New("he: noise budget exhausted")
	// ErrKeyMismatch is returned when a ciphertext was produced under a
	// different key than the operation supplies.
	ErrKeyMismatch = errors.New("he: key mismatch")
	// ErrShape is returned when a ciphertext's shape does not fit the
	// requested operation.
	ErrShape = errors.New("he: shape mismatch")
	// ErrCorrupt is returned for undecodable ciphertext bytes.
	ErrCorrupt = errors.New("he: corrupt ciphertext")
)

// Params is a leveled-HE parameter set.
type Params struct {
	// MaxDepth is the multiplicative depth the parameters support; an
	// operation that would take a ciphertext past it fails with
	// ErrNoiseBudget.
	MaxDepth int
	// Expansion is the ciphertext expansion factor: bytes on the wire
	// per plaintext slot byte.
	Expansion int
	// FreshNoise is the noise budget of a fresh encryption; MulNoise,
	// RescaleNoise and AddNoise are the per-operation decrements.
	FreshNoise   int
	MulNoise     int
	RescaleNoise int
	AddNoise     int
}

// DefaultParams returns the parameter set the hybrid mode ships with:
// depth 2 (one encrypted linear layer plus headroom), 32× expansion,
// and a noise budget sized so the supported depth always succeeds and
// depth+1 always fails.
func DefaultParams() Params {
	return Params{
		MaxDepth:     2,
		Expansion:    32,
		FreshNoise:   60,
		MulNoise:     18,
		RescaleNoise: 4,
		AddNoise:     1,
	}
}

func (p Params) validate() error {
	if p.MaxDepth < 1 || p.Expansion < 2 || p.FreshNoise <= 0 ||
		p.MulNoise <= 0 || p.RescaleNoise < 0 || p.AddNoise < 0 {
		return fmt.Errorf("he: invalid params %+v", p)
	}
	return nil
}

// PublicKey encrypts; it is provisioned to devices in the clear (it is
// the provider's key).
type PublicKey struct {
	ID     uint64
	Params Params
}

// SecretKey decrypts; it travels only sealed (TA secure storage).
type SecretKey struct {
	ID     uint64
	Params Params
}

// KeyPair is one provider HE key pair.
type KeyPair struct {
	Public PublicKey
	Secret SecretKey
}

// KeyGen derives a key pair deterministically from a seed. The key ID
// binds ciphertexts to the pair.
func KeyGen(p Params, seed uint64) (KeyPair, error) {
	if err := p.validate(); err != nil {
		return KeyPair{}, err
	}
	id := splitmix64(seed ^ 0x48452d4b45590a0d) // "HE-KEY"
	if id == 0 {
		id = 1
	}
	return KeyPair{
		Public: PublicKey{ID: id, Params: p},
		Secret: SecretKey{ID: id, Params: p},
	}, nil
}

// secretKeyMagic guards sealed secret-key blobs.
const secretKeyMagic = 0x48454b31 // "HEK1"

// Marshal encodes the secret key for sealing into TA secure storage.
func (sk SecretKey) Marshal() []byte {
	buf := make([]byte, 4+8+6*4)
	binary.LittleEndian.PutUint32(buf[0:], secretKeyMagic)
	binary.LittleEndian.PutUint64(buf[4:], sk.ID)
	p := sk.Params
	for i, v := range []int{p.MaxDepth, p.Expansion, p.FreshNoise, p.MulNoise, p.RescaleNoise, p.AddNoise} {
		binary.LittleEndian.PutUint32(buf[12+4*i:], uint32(v))
	}
	return buf
}

// ParseSecretKey decodes a sealed secret-key blob.
func ParseSecretKey(b []byte) (SecretKey, error) {
	if len(b) != 4+8+6*4 || binary.LittleEndian.Uint32(b) != secretKeyMagic {
		return SecretKey{}, fmt.Errorf("%w: secret key blob", ErrCorrupt)
	}
	var vals [6]int
	for i := range vals {
		vals[i] = int(binary.LittleEndian.Uint32(b[12+4*i:]))
	}
	sk := SecretKey{
		ID: binary.LittleEndian.Uint64(b[4:]),
		Params: Params{
			MaxDepth: vals[0], Expansion: vals[1], FreshNoise: vals[2],
			MulNoise: vals[3], RescaleNoise: vals[4], AddNoise: vals[5],
		},
	}
	if err := sk.Params.validate(); err != nil {
		return SecretKey{}, fmt.Errorf("%w: secret key params", ErrCorrupt)
	}
	return sk, nil
}

// Ciphertext is one encrypted tensor. The plaintext slots are private
// to the package — provider-side code holds ciphertexts and wire bytes
// only, and the audit trail counts what it observed.
type Ciphertext struct {
	keyID uint64
	shape []int
	level int
	noise int
	data  []float32
}

// Shape returns a copy of the encrypted tensor's shape.
func (c *Ciphertext) Shape() []int { return append([]int(nil), c.shape...) }

// Slots returns the packed plaintext slot count.
func (c *Ciphertext) Slots() int { return len(c.data) }

// Level returns the multiplicative depth consumed so far.
func (c *Ciphertext) Level() int { return c.level }

// NoiseBudget returns the remaining noise budget.
func (c *Ciphertext) NoiseBudget() int { return c.noise }

// Evaluator performs HE operations, charging per-slot virtual cycles
// to Clock (a nil Clock runs uncharged — unit tests). One evaluator is
// bound to one parameter set.
type Evaluator struct {
	Params Params
	Clock  *tz.Clock
	Cost   tz.CostModel
}

// NewEvaluator returns an evaluator over p charging clk.
func NewEvaluator(p Params, clk *tz.Clock, cost tz.CostModel) (*Evaluator, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &Evaluator{Params: p, Clock: clk, Cost: cost}, nil
}

func (e *Evaluator) charge(slots int, per tz.Cycles) {
	if e.Clock != nil && slots > 0 {
		e.Clock.Advance(tz.Cycles(slots) * per)
	}
}

func numel(shape []int) (int, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return 0, fmt.Errorf("%w: dimension %d", ErrShape, d)
		}
		n *= d
	}
	return n, nil
}

// Encrypt packs data (with the given shape) into a fresh ciphertext
// under pk. Runs in the device's normal world; cost is per slot.
func (e *Evaluator) Encrypt(pk PublicKey, data []float32, shape []int) (*Ciphertext, error) {
	if pk.Params != e.Params {
		return nil, fmt.Errorf("%w: public key params differ from evaluator params", ErrKeyMismatch)
	}
	n, err := numel(shape)
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d values for shape %v", ErrShape, len(data), shape)
	}
	e.charge(n, e.Cost.HEEncryptPerSlot)
	return &Ciphertext{
		keyID: pk.ID,
		shape: append([]int(nil), shape...),
		level: 0,
		noise: e.Params.FreshNoise,
		data:  append([]float32(nil), data...),
	}, nil
}

// Decrypt opens ct under sk, returning the plaintext slots and shape.
// Runs inside the TA after the HE→TEE handoff; cost is per slot.
func (e *Evaluator) Decrypt(sk SecretKey, ct *Ciphertext) ([]float32, []int, error) {
	if sk.ID != ct.keyID {
		return nil, nil, fmt.Errorf("%w: ciphertext key %#x, secret key %#x", ErrKeyMismatch, ct.keyID, sk.ID)
	}
	if ct.noise <= 0 {
		return nil, nil, fmt.Errorf("%w: decrypt with empty budget", ErrNoiseBudget)
	}
	e.charge(len(ct.data), e.Cost.HEDecryptPerSlot)
	return append([]float32(nil), ct.data...), ct.Shape(), nil
}

// spend models one linear layer's noise cost: a multiply+rescale pair
// (one level) plus a bias addition. It fails *before* computing when
// the parameters cannot support the depth — the typed-error guarantee.
func (e *Evaluator) spend(ct *Ciphertext) (level, noise int, err error) {
	if ct.level+1 > e.Params.MaxDepth {
		return 0, 0, fmt.Errorf("%w: depth %d exceeds max depth %d",
			ErrNoiseBudget, ct.level+1, e.Params.MaxDepth)
	}
	noise = ct.noise - e.Params.MulNoise - e.Params.RescaleNoise - e.Params.AddNoise
	if noise <= 0 {
		return 0, 0, fmt.Errorf("%w: %d noise left, multiply needs %d",
			ErrNoiseBudget, ct.noise, e.Params.MulNoise+e.Params.RescaleNoise+e.Params.AddNoise)
	}
	return ct.level + 1, noise, nil
}

// Conv1D is a 1-D convolution over an encrypted [L, Cin] tensor with
// cleartext weights (the provider's model half). W is laid out
// [K, Cin, Cout] and B [Cout], matching internal/ml/layers.Conv1D.
type Conv1D struct {
	K, Cin, Cout int
	W, B         []float32
}

// Conv1D evaluates op over ct homomorphically: output [L-K+1, Cout],
// one multiplicative level consumed.
func (e *Evaluator) Conv1D(op *Conv1D, ct *Ciphertext) (*Ciphertext, error) {
	if len(ct.shape) != 2 || ct.shape[1] != op.Cin || ct.shape[0] < op.K {
		return nil, fmt.Errorf("%w: conv1d(k=%d,cin=%d) over %v", ErrShape, op.K, op.Cin, ct.shape)
	}
	if len(op.W) != op.K*op.Cin*op.Cout || len(op.B) != op.Cout {
		return nil, fmt.Errorf("%w: conv1d weights %d bias %d", ErrShape, len(op.W), len(op.B))
	}
	level, noise, err := e.spend(ct)
	if err != nil {
		return nil, err
	}
	L, Cin, Cout, K := ct.shape[0], op.Cin, op.Cout, op.K
	Lout := L - K + 1
	out := make([]float32, Lout*Cout)
	xd, wd, bd := ct.data, op.W, op.B
	// Accumulation order mirrors layers.Conv1D.Forward (batch index 0)
	// so the encrypted layer is bit-identical to the cleartext one.
	for t := 0; t < Lout; t++ {
		for co := 0; co < Cout; co++ {
			acc := bd[co]
			for k := 0; k < K; k++ {
				xrow := xd[(t+k)*Cin:]
				wrow := wd[k*Cin*Cout+co:]
				for ci := 0; ci < Cin; ci++ {
					acc += xrow[ci] * wrow[ci*Cout]
				}
			}
			out[t*Cout+co] = acc
		}
	}
	e.chargeLinear(Lout*Cout, K*Cin)
	return &Ciphertext{keyID: ct.keyID, shape: []int{Lout, Cout}, level: level, noise: noise, data: out}, nil
}

// Conv2D is a 2-D convolution over an encrypted [H, W, Cin] tensor
// with cleartext weights. W is laid out [K, K, Cin, Cout] and B
// [Cout], matching internal/ml/layers.Conv2D.
type Conv2D struct {
	K, Cin, Cout int
	W, B         []float32
}

// Conv2D evaluates op over ct homomorphically: output
// [H-K+1, W-K+1, Cout], one multiplicative level consumed.
func (e *Evaluator) Conv2D(op *Conv2D, ct *Ciphertext) (*Ciphertext, error) {
	if len(ct.shape) != 3 || ct.shape[2] != op.Cin || ct.shape[0] < op.K || ct.shape[1] < op.K {
		return nil, fmt.Errorf("%w: conv2d(k=%d,cin=%d) over %v", ErrShape, op.K, op.Cin, ct.shape)
	}
	if len(op.W) != op.K*op.K*op.Cin*op.Cout || len(op.B) != op.Cout {
		return nil, fmt.Errorf("%w: conv2d weights %d bias %d", ErrShape, len(op.W), len(op.B))
	}
	level, noise, err := e.spend(ct)
	if err != nil {
		return nil, err
	}
	H, W, Cin, Cout, K := ct.shape[0], ct.shape[1], op.Cin, op.Cout, op.K
	Hout, Wout := H-K+1, W-K+1
	out := make([]float32, Hout*Wout*Cout)
	xd, wd, bd := ct.data, op.W, op.B
	// Accumulation order mirrors layers.Conv2D.Forward (batch index 0).
	for i := 0; i < Hout; i++ {
		for j := 0; j < Wout; j++ {
			for co := 0; co < Cout; co++ {
				acc := bd[co]
				for ki := 0; ki < K; ki++ {
					for kj := 0; kj < K; kj++ {
						xrow := xd[((i+ki)*W+j+kj)*Cin:]
						wrow := wd[(ki*K+kj)*Cin*Cout+co:]
						for ci := 0; ci < Cin; ci++ {
							acc += xrow[ci] * wrow[ci*Cout]
						}
					}
				}
				out[(i*Wout+j)*Cout+co] = acc
			}
		}
	}
	e.chargeLinear(Hout*Wout*Cout, K*K*Cin)
	return &Ciphertext{keyID: ct.keyID, shape: []int{Hout, Wout, Cout}, level: level, noise: noise, data: out}, nil
}

// Dense is a fully connected layer over an encrypted [In] vector with
// cleartext weights. W is laid out [In, Out] and B [Out].
type Dense struct {
	In, Out int
	W, B    []float32
}

// Dense evaluates op over ct homomorphically: output [Out], one
// multiplicative level consumed.
func (e *Evaluator) Dense(op *Dense, ct *Ciphertext) (*Ciphertext, error) {
	n, err := numel(ct.shape)
	if err != nil || n != op.In {
		return nil, fmt.Errorf("%w: dense(in=%d) over %v", ErrShape, op.In, ct.shape)
	}
	if len(op.W) != op.In*op.Out || len(op.B) != op.Out {
		return nil, fmt.Errorf("%w: dense weights %d bias %d", ErrShape, len(op.W), len(op.B))
	}
	level, noise, err := e.spend(ct)
	if err != nil {
		return nil, err
	}
	out := make([]float32, op.Out)
	for o := 0; o < op.Out; o++ {
		acc := op.B[o]
		for i := 0; i < op.In; i++ {
			acc += ct.data[i] * op.W[i*op.Out+o]
		}
		out[o] = acc
	}
	e.chargeLinear(op.Out, op.In)
	return &Ciphertext{keyID: ct.keyID, shape: []int{op.Out}, level: level, noise: noise, data: out}, nil
}

// chargeLinear charges one linear layer: macs multiplies+adds per
// output slot, then one rescale per output slot.
func (e *Evaluator) chargeLinear(outSlots, macsPerSlot int) {
	e.charge(outSlots*macsPerSlot, e.Cost.HEMulPerSlot)
	e.charge(outSlots*macsPerSlot, e.Cost.HEAddPerSlot)
	e.charge(outSlots, e.Cost.HERescalePerSlot)
}

// ciphertextMagic guards wire blobs.
const ciphertextMagic = 0x48454331 // "HEC1"

// Size returns the marshaled wire size in bytes: header plus
// Expansion bytes per plaintext slot byte — the honest ciphertext
// byte count provider-side audits record.
func (c *Ciphertext) Size(p Params) int {
	return 4 + 8 + 4 + 4 + 4 + 4*len(c.shape) + 4 + len(c.data)*4*p.Expansion
}

// Marshal encodes the ciphertext for the wire. Slot blocks are masked
// with a key-stream derived from the key ID, then padded to the
// expansion factor with deterministic filler: the encoding is
// reproducible, Expansion× the plaintext size, and never contains the
// raw feature bytes.
func (c *Ciphertext) Marshal(p Params) []byte {
	buf := make([]byte, 0, c.Size(p))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], ciphertextMagic)
	buf = append(buf, hdr[:4]...)
	binary.LittleEndian.PutUint64(hdr[:], c.keyID)
	buf = append(buf, hdr[:]...)
	binary.LittleEndian.PutUint32(hdr[:4], uint32(c.level))
	buf = append(buf, hdr[:4]...)
	binary.LittleEndian.PutUint32(hdr[:4], uint32(c.noise))
	buf = append(buf, hdr[:4]...)
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(c.shape)))
	buf = append(buf, hdr[:4]...)
	for _, d := range c.shape {
		binary.LittleEndian.PutUint32(hdr[:4], uint32(d))
		buf = append(buf, hdr[:4]...)
	}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(c.data)))
	buf = append(buf, hdr[:4]...)
	block := make([]byte, 4*p.Expansion)
	for i, v := range c.data {
		ks := keystream(c.keyID, uint64(i), p.Expansion)
		binary.LittleEndian.PutUint32(block[:4], math.Float32bits(v)^binary.LittleEndian.Uint32(ks[:4]))
		copy(block[4:], ks[4:])
		buf = append(buf, block...)
	}
	return buf
}

// Unmarshal decodes wire bytes produced by Marshal under the
// evaluator's parameter set.
func (e *Evaluator) Unmarshal(b []byte) (*Ciphertext, error) {
	if len(b) < 4+8+4+4+4 || binary.LittleEndian.Uint32(b) != ciphertextMagic {
		return nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	off := 4
	keyID := binary.LittleEndian.Uint64(b[off:])
	off += 8
	level := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	noise := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	ndims := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if ndims < 1 || ndims > 8 || len(b) < off+4*ndims+4 {
		return nil, fmt.Errorf("%w: %d dims", ErrCorrupt, ndims)
	}
	shape := make([]int, ndims)
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	n, err := numel(shape)
	if err != nil {
		return nil, fmt.Errorf("%w: shape %v", ErrCorrupt, shape)
	}
	slots := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if slots != n || len(b) != off+slots*4*e.Params.Expansion {
		return nil, fmt.Errorf("%w: %d slots, %d bytes", ErrCorrupt, slots, len(b))
	}
	data := make([]float32, slots)
	for i := range data {
		ks := keystream(keyID, uint64(i), e.Params.Expansion)
		bits := binary.LittleEndian.Uint32(b[off:]) ^ binary.LittleEndian.Uint32(ks[:4])
		data[i] = math.Float32frombits(bits)
		off += 4 * e.Params.Expansion
	}
	return &Ciphertext{keyID: keyID, shape: shape, level: level, noise: noise, data: data}, nil
}

// keystream derives one slot's Expansion×4-byte mask block from the
// key ID and slot index via splitmix64.
func keystream(keyID, slot uint64, expansion int) []byte {
	out := make([]byte, 4*expansion)
	x := splitmix64(keyID ^ (slot+1)*0x9e3779b97f4a7c15)
	for i := 0; i < len(out); i += 8 {
		x = splitmix64(x)
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], x)
		copy(out[i:], w[:])
	}
	return out
}

// splitmix64 is the standard 64-bit mixer (public-domain constants).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
