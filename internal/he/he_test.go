package he

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ml/layers"
	"repro/internal/ml/tensor"
	"repro/internal/tz"
)

func testEvaluator(t *testing.T, p Params) *Evaluator {
	t.Helper()
	ev, err := NewEvaluator(p, nil, tz.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func randomVec(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

// TestNoiseBudgetOverDepth is the noise-budget property test: across a
// sweep of parameter sets, evaluating up to MaxDepth linear layers
// succeeds, and the first operation past the supported depth — or past
// the noise budget, whichever binds first — always fails with the
// typed ErrNoiseBudget, never a silently wrong result.
func TestNoiseBudgetOverDepth(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for _, maxDepth := range []int{1, 2, 3, 5} {
		for _, fresh := range []int{200, 60, 24} {
			p := DefaultParams()
			p.MaxDepth = maxDepth
			p.FreshNoise = fresh
			ev := testEvaluator(t, p)
			kp, err := KeyGen(p, 42)
			if err != nil {
				t.Fatal(err)
			}
			op := &Dense{In: 8, Out: 8, W: randomVec(rng, 64), B: randomVec(rng, 8)}
			ct, err := ev.Encrypt(kp.Public, randomVec(rng, 8), []int{8})
			if err != nil {
				t.Fatal(err)
			}
			perOp := p.MulNoise + p.RescaleNoise + p.AddNoise
			// The budget supports floor((fresh-1)/perOp) multiplies; the
			// depth cap binds at maxDepth. Whichever is smaller, every op
			// up to it succeeds and the next one fails typed.
			byNoise := (fresh - 1) / perOp
			supported := maxDepth
			if byNoise < supported {
				supported = byNoise
			}
			for d := 0; d < supported; d++ {
				next, err := ev.Dense(op, ct)
				if err != nil {
					t.Fatalf("depth=%d fresh=%d: op %d failed early: %v", maxDepth, fresh, d+1, err)
				}
				if next.Level() != d+1 || next.NoiseBudget() >= ct.NoiseBudget() {
					t.Fatalf("op %d: level %d noise %d (from %d)", d+1, next.Level(), next.NoiseBudget(), ct.NoiseBudget())
				}
				ct = next
			}
			if _, err := ev.Dense(op, ct); !errors.Is(err, ErrNoiseBudget) {
				t.Fatalf("depth=%d fresh=%d: over-depth op returned %v, want ErrNoiseBudget", maxDepth, fresh, err)
			}
		}
	}
}

// TestConvParityWithLayers: the encrypted conv layers are bit-identical
// to internal/ml/layers' cleartext forward passes.
func TestConvParityWithLayers(t *testing.T) {
	p := DefaultParams()
	ev := testEvaluator(t, p)
	kp, err := KeyGen(p, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 5))

	t.Run("conv1d", func(t *testing.T) {
		const L, Cin, Cout, K = 12, 16, 32, 3
		ref := layers.NewConv1D(rand.New(rand.NewPCG(1, 2)), K, Cin, Cout)
		w, b := ref.Params()[0].Value, ref.Params()[1].Value
		x := tensor.New(1, L, Cin)
		copy(x.Data, randomVec(rng, L*Cin))
		want, err := ref.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := ev.Encrypt(kp.Public, x.Data, []int{L, Cin})
		if err != nil {
			t.Fatal(err)
		}
		out, err := ev.Conv1D(&Conv1D{K: K, Cin: Cin, Cout: Cout, W: w.Data, B: b.Data}, ct)
		if err != nil {
			t.Fatal(err)
		}
		got, shape, err := ev.Decrypt(kp.Secret, out)
		if err != nil {
			t.Fatal(err)
		}
		if shape[0] != L-K+1 || shape[1] != Cout {
			t.Fatalf("shape %v", shape)
		}
		for i := range got {
			if got[i] != want.Data[i] {
				t.Fatalf("slot %d: %v != %v", i, got[i], want.Data[i])
			}
		}
	})

	t.Run("conv2d", func(t *testing.T) {
		const H, W, Cin, Cout, K = 10, 10, 1, 4, 3
		ref := layers.NewConv2D(rand.New(rand.NewPCG(4, 6)), K, Cin, Cout)
		w, b := ref.Params()[0].Value, ref.Params()[1].Value
		x := tensor.New(1, H, W, Cin)
		copy(x.Data, randomVec(rng, H*W*Cin))
		want, err := ref.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := ev.Encrypt(kp.Public, x.Data, []int{H, W, Cin})
		if err != nil {
			t.Fatal(err)
		}
		out, err := ev.Conv2D(&Conv2D{K: K, Cin: Cin, Cout: Cout, W: w.Data, B: b.Data}, ct)
		if err != nil {
			t.Fatal(err)
		}
		got, shape, err := ev.Decrypt(kp.Secret, out)
		if err != nil {
			t.Fatal(err)
		}
		if shape[0] != H-K+1 || shape[1] != W-K+1 || shape[2] != Cout {
			t.Fatalf("shape %v", shape)
		}
		for i := range got {
			if got[i] != want.Data[i] {
				t.Fatalf("slot %d: %v != %v", i, got[i], want.Data[i])
			}
		}
	})
}

// TestMarshalRoundTripAndExpansion: the wire form round-trips exactly,
// is Expansion× the plaintext size plus a fixed header, and never
// contains the raw feature bytes it encrypts.
func TestMarshalRoundTripAndExpansion(t *testing.T) {
	p := DefaultParams()
	ev := testEvaluator(t, p)
	kp, err := KeyGen(p, 1234)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 13))
	data := randomVec(rng, 24)
	ct, err := ev.Encrypt(kp.Public, data, []int{6, 4})
	if err != nil {
		t.Fatal(err)
	}
	wire := ct.Marshal(p)
	if len(wire) != ct.Size(p) {
		t.Fatalf("wire %d bytes, Size says %d", len(wire), ct.Size(p))
	}
	if payload := len(data) * 4 * p.Expansion; len(wire) < payload {
		t.Fatalf("wire %d bytes < expansion payload %d", len(wire), payload)
	}
	// The raw little-endian feature bytes must not appear in the wire.
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	if bytes.Contains(wire, raw[:8]) {
		t.Fatal("wire bytes contain raw feature bytes")
	}
	back, err := ev.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	got, shape, err := ev.Decrypt(kp.Secret, back)
	if err != nil {
		t.Fatal(err)
	}
	if shape[0] != 6 || shape[1] != 4 {
		t.Fatalf("shape %v", shape)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("slot %d: %v != %v", i, got[i], data[i])
		}
	}
	if _, err := ev.Unmarshal(wire[:len(wire)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated wire returned %v, want ErrCorrupt", err)
	}
}

// TestKeyMismatchAndSecretKeySeal: decrypting under the wrong key is a
// typed error, and the secret key survives the seal round trip.
func TestKeyMismatchAndSecretKeySeal(t *testing.T) {
	p := DefaultParams()
	ev := testEvaluator(t, p)
	kpA, _ := KeyGen(p, 1)
	kpB, _ := KeyGen(p, 2)
	ct, err := ev.Encrypt(kpA.Public, []float32{1, 2, 3}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ev.Decrypt(kpB.Secret, ct); !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("wrong-key decrypt returned %v, want ErrKeyMismatch", err)
	}
	sk, err := ParseSecretKey(kpA.Secret.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if sk != kpA.Secret {
		t.Fatalf("sealed round trip %+v != %+v", sk, kpA.Secret)
	}
	if _, err := ParseSecretKey([]byte("junk")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("junk blob returned %v, want ErrCorrupt", err)
	}
}

// TestCostCharging: evaluator operations advance the device clock by
// the per-slot model, and a nil clock runs uncharged.
func TestCostCharging(t *testing.T) {
	p := DefaultParams()
	clk := tz.NewClock()
	cost := tz.DefaultCostModel()
	ev, err := NewEvaluator(p, clk, cost)
	if err != nil {
		t.Fatal(err)
	}
	kp, _ := KeyGen(p, 5)
	ct, err := ev.Encrypt(kp.Public, []float32{1, 2, 3, 4}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * cost.HEEncryptPerSlot; clk.Now() != want {
		t.Fatalf("encrypt charged %d, want %d", clk.Now(), want)
	}
	before := clk.Now()
	op := &Dense{In: 4, Out: 2, W: make([]float32, 8), B: make([]float32, 2)}
	if _, err := ev.Dense(op, ct); err != nil {
		t.Fatal(err)
	}
	macs := tz.Cycles(2 * 4)
	want := before + macs*cost.HEMulPerSlot + macs*cost.HEAddPerSlot + 2*cost.HERescalePerSlot
	if clk.Now() != want {
		t.Fatalf("dense charged to %d, want %d", clk.Now(), want)
	}
	if _, _, err := ev.Decrypt(kp.Secret, ct); err != nil {
		t.Fatal(err)
	}
	if want := want + 4*cost.HEDecryptPerSlot; clk.Now() != want {
		t.Fatalf("decrypt charged to %d, want %d", clk.Now(), want)
	}
}
