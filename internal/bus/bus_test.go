package bus

import (
	"errors"
	"testing"

	"repro/internal/memory"
	"repro/internal/tz"
)

// regDevice is a tiny device with four scratch registers.
type regDevice struct {
	name string
	regs [4]uint32
}

func (d *regDevice) Name() string { return d.name }

func (d *regDevice) ReadReg(off uint32) (uint32, error) {
	i := off / 4
	if off%4 != 0 || i >= uint32(len(d.regs)) {
		return 0, ErrBadRegister
	}
	return d.regs[i], nil
}

func (d *regDevice) WriteReg(off uint32, val uint32) error {
	i := off / 4
	if off%4 != 0 || i >= uint32(len(d.regs)) {
		return ErrBadRegister
	}
	d.regs[i] = val
	return nil
}

func newTestBus(t *testing.T) (*Bus, *tz.Clock) {
	t.Helper()
	clock := tz.NewClock()
	return New(clock, tz.DefaultCostModel()), clock
}

func TestBusMapAndAccess(t *testing.T) {
	b, clock := newTestBus(t)
	dev := &regDevice{name: "scratch"}
	if err := b.Map(0x9000_0000, 0x100, false, dev); err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := b.Write32(tz.WorldNormal, 0x9000_0004, 0xabcd); err != nil {
		t.Fatalf("Write32: %v", err)
	}
	v, err := b.Read32(tz.WorldNormal, 0x9000_0004)
	if err != nil {
		t.Fatalf("Read32: %v", err)
	}
	if v != 0xabcd {
		t.Errorf("Read32 = %#x, want 0xabcd", v)
	}
	if clock.Now() == 0 {
		t.Error("MMIO accesses did not advance the clock")
	}
}

func TestBusNoDevice(t *testing.T) {
	b, _ := newTestBus(t)
	if _, err := b.Read32(tz.WorldNormal, 0x1234); !errors.Is(err, ErrNoDevice) {
		t.Errorf("Read32 = %v, want ErrNoDevice", err)
	}
	if err := b.Write32(tz.WorldNormal, 0x1234, 1); !errors.Is(err, ErrNoDevice) {
		t.Errorf("Write32 = %v, want ErrNoDevice", err)
	}
}

func TestBusMapConflict(t *testing.T) {
	b, _ := newTestBus(t)
	if err := b.Map(0x1000, 0x100, false, &regDevice{name: "a"}); err != nil {
		t.Fatalf("Map a: %v", err)
	}
	if err := b.Map(0x1080, 0x100, false, &regDevice{name: "b"}); !errors.Is(err, ErrMapConflict) {
		t.Errorf("overlapping Map = %v, want ErrMapConflict", err)
	}
	if err := b.Map(0x1100, 0, false, &regDevice{name: "c"}); !errors.Is(err, ErrMapConflict) {
		t.Errorf("zero-size Map = %v, want ErrMapConflict", err)
	}
}

func TestBusSecureDeviceProtection(t *testing.T) {
	b, _ := newTestBus(t)
	dev := &regDevice{name: "i2s"}
	if err := b.Map(0x2000, 0x100, true, dev); err != nil {
		t.Fatalf("Map: %v", err)
	}
	if _, err := b.Read32(tz.WorldNormal, 0x2000); !errors.Is(err, ErrSecureDevice) {
		t.Errorf("normal read of secure device = %v, want ErrSecureDevice", err)
	}
	if _, err := b.Read32(tz.WorldSecure, 0x2000); err != nil {
		t.Errorf("secure read of secure device failed: %v", err)
	}
	// Flip protection off: normal world may now access it.
	if err := b.SetSecure(0x2000, false); err != nil {
		t.Fatalf("SetSecure: %v", err)
	}
	if _, err := b.Read32(tz.WorldNormal, 0x2000); err != nil {
		t.Errorf("read after unprotect failed: %v", err)
	}
	if err := b.SetSecure(0xffff, true); !errors.Is(err, ErrNoDevice) {
		t.Errorf("SetSecure on unmapped = %v, want ErrNoDevice", err)
	}
}

func TestBusBadRegisterWrapped(t *testing.T) {
	b, _ := newTestBus(t)
	if err := b.Map(0x3000, 0x100, false, &regDevice{name: "d"}); err != nil {
		t.Fatalf("Map: %v", err)
	}
	if _, err := b.Read32(tz.WorldNormal, 0x3000+0x40); !errors.Is(err, ErrBadRegister) {
		t.Errorf("bad register read = %v, want ErrBadRegister", err)
	}
}

func TestBusDevices(t *testing.T) {
	b, _ := newTestBus(t)
	_ = b.Map(0x5000, 0x10, false, &regDevice{name: "later"})
	_ = b.Map(0x4000, 0x10, false, &regDevice{name: "earlier"})
	got := b.Devices()
	if len(got) != 2 || got[0] != "earlier" || got[1] != "later" {
		t.Errorf("Devices() = %v, want [earlier later]", got)
	}
}

// sliceFIFO implements FIFOSource over a byte slice.
type sliceFIFO struct{ data []byte }

func (s *sliceFIFO) PopBytes(n int) []byte {
	if n > len(s.data) {
		n = len(s.data)
	}
	out := s.data[:n]
	s.data = s.data[n:]
	return out
}

func (s *sliceFIFO) BytesAvailable() int { return len(s.data) }

func dmaFixture(t *testing.T) (*DMA, *memory.Platform, *tz.Clock) {
	t.Helper()
	p, err := memory.NewPlatform(memory.DefaultLayout())
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	clock := tz.NewClock()
	return NewDMA(clock, tz.DefaultCostModel(), p.Mem), p, clock
}

func TestDMAFromDevice(t *testing.T) {
	d, p, clock := dmaFixture(t)
	src := &sliceFIFO{data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	dst := p.Layout.DRAMBase + 0x1000
	n, err := d.FromDevice(tz.WorldNormal, src, dst, 8)
	if err != nil {
		t.Fatalf("FromDevice: %v", err)
	}
	if n != 8 {
		t.Errorf("transferred %d, want 8", n)
	}
	got := make([]byte, 8)
	if err := p.Mem.ReadAt(tz.WorldNormal, dst, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	for i, v := range got {
		if v != byte(i+1) {
			t.Errorf("byte %d = %d, want %d", i, v, i+1)
		}
	}
	if clock.Now() == 0 {
		t.Error("DMA did not advance the clock")
	}
	if st := d.Stats(); st.Transfers != 1 || st.Bytes != 8 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestDMAPartialAndEmpty(t *testing.T) {
	d, p, _ := dmaFixture(t)
	src := &sliceFIFO{data: []byte{9, 9}}
	dst := p.Layout.DRAMBase + 0x2000
	n, err := d.FromDevice(tz.WorldNormal, src, dst, 16)
	if err != nil || n != 2 {
		t.Errorf("partial FromDevice = (%d,%v), want (2,nil)", n, err)
	}
	n, err = d.FromDevice(tz.WorldNormal, src, dst, 16)
	if err != nil || n != 0 {
		t.Errorf("empty FromDevice = (%d,%v), want (0,nil)", n, err)
	}
	n, err = d.FromDevice(tz.WorldNormal, src, dst, 0)
	if err != nil || n != 0 {
		t.Errorf("zero-length FromDevice = (%d,%v), want (0,nil)", n, err)
	}
}

func TestDMANormalWorldCannotTargetSecureRAM(t *testing.T) {
	d, p, _ := dmaFixture(t)
	src := &sliceFIFO{data: make([]byte, 64)}
	dst := p.Layout.SecureBase + 0x100
	if _, err := d.FromDevice(tz.WorldNormal, src, dst, 64); !errors.Is(err, tz.ErrSecurityViolation) {
		t.Errorf("normal-world DMA into secure RAM = %v, want violation", err)
	}
	if st := d.Stats(); st.Faults != 1 {
		t.Errorf("Faults = %d, want 1", st.Faults)
	}
	// The same transfer programmed by the secure world succeeds.
	src2 := &sliceFIFO{data: make([]byte, 64)}
	if _, err := d.FromDevice(tz.WorldSecure, src2, dst, 64); err != nil {
		t.Errorf("secure-world DMA into secure RAM failed: %v", err)
	}
}

func TestDMAToDevice(t *testing.T) {
	d, p, _ := dmaFixture(t)
	src := p.Layout.DRAMBase + 0x3000
	if err := p.Mem.WriteAt(tz.WorldNormal, src, []byte{5, 6, 7}); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	var sunk []byte
	n, err := d.ToDevice(tz.WorldNormal, src, func(b []byte) int {
		sunk = append(sunk, b...)
		return len(b)
	}, 3)
	if err != nil || n != 3 {
		t.Fatalf("ToDevice = (%d,%v), want (3,nil)", n, err)
	}
	if len(sunk) != 3 || sunk[0] != 5 {
		t.Errorf("sunk = %v", sunk)
	}
	// Reading playback data from secure RAM as normal world must fault.
	if _, err := d.ToDevice(tz.WorldNormal, p.Layout.SecureBase, func(b []byte) int { return len(b) }, 4); !errors.Is(err, tz.ErrSecurityViolation) {
		t.Errorf("ToDevice from secure RAM = %v, want violation", err)
	}
}
