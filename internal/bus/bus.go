// Package bus models the SoC peripheral interconnect: memory-mapped device
// registers and a DMA engine that moves data between device FIFOs and
// physical RAM. Every transaction carries the initiating TrustZone world,
// so register files and DMA destinations can be protected exactly like RAM.
package bus

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/memory"
	"repro/internal/tz"
)

// Errors returned by the bus.
var (
	// ErrNoDevice is returned when no device is mapped at the address.
	ErrNoDevice = errors.New("bus: no device at address")
	// ErrMapConflict is returned when two mappings overlap.
	ErrMapConflict = errors.New("bus: mapping overlaps existing device")
	// ErrBadRegister is returned by devices for unknown register offsets.
	ErrBadRegister = errors.New("bus: unknown register offset")
	// ErrSecureDevice is returned for normal-world access to a device whose
	// MMIO window was marked secure (TrustZone peripheral protection).
	ErrSecureDevice = errors.New("bus: normal-world access to secure device")
)

// Device is a memory-mapped peripheral's register interface.
type Device interface {
	// Name identifies the device in diagnostics.
	Name() string
	// ReadReg reads the 32-bit register at byte offset off.
	ReadReg(off uint32) (uint32, error)
	// WriteReg writes the 32-bit register at byte offset off.
	WriteReg(off uint32, val uint32) error
}

// mapping binds a device to an address window.
type mapping struct {
	base   uint64
	size   uint64
	secure bool
	dev    Device
}

// Bus routes MMIO transactions to mapped devices with cost accounting.
type Bus struct {
	clock *tz.Clock
	cost  tz.CostModel

	mu   sync.RWMutex
	maps []mapping // sorted by base
}

// New creates an empty bus.
func New(clock *tz.Clock, cost tz.CostModel) *Bus {
	return &Bus{clock: clock, cost: cost}
}

// Map attaches dev at [base, base+size). If secure is true, only the secure
// world may touch the window — this models TrustZone-aware peripheral
// protection (the TZPC), which the paper's design uses to keep the I2S
// controller reachable only from the in-TEE driver.
func (b *Bus) Map(base, size uint64, secure bool, dev Device) error {
	if size == 0 || base+size < base {
		return fmt.Errorf("%w: bad window [%#x,+%d)", ErrMapConflict, base, size)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.maps {
		if base < m.base+m.size && m.base < base+size {
			return fmt.Errorf("%w: %q at [%#x,+%d)", ErrMapConflict, m.dev.Name(), m.base, m.size)
		}
	}
	b.maps = append(b.maps, mapping{base: base, size: size, secure: secure, dev: dev})
	sort.Slice(b.maps, func(i, j int) bool { return b.maps[i].base < b.maps[j].base })
	return nil
}

// SetSecure flips the TZPC protection bit of the device window containing
// addr. Returns ErrNoDevice if nothing is mapped there.
func (b *Bus) SetSecure(addr uint64, secure bool) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.maps {
		m := &b.maps[i]
		if addr >= m.base && addr < m.base+m.size {
			m.secure = secure
			return nil
		}
	}
	return fmt.Errorf("%w: %#x", ErrNoDevice, addr)
}

func (b *Bus) find(w tz.World, addr uint64) (mapping, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, m := range b.maps {
		if addr >= m.base && addr < m.base+m.size {
			if m.secure && w != tz.WorldSecure {
				return mapping{}, fmt.Errorf("%w: %q at %#x", ErrSecureDevice, m.dev.Name(), addr)
			}
			return m, nil
		}
	}
	return mapping{}, fmt.Errorf("%w: %#x", ErrNoDevice, addr)
}

// Read32 performs an MMIO read on behalf of world w.
func (b *Bus) Read32(w tz.World, addr uint64) (uint32, error) {
	m, err := b.find(w, addr)
	if err != nil {
		return 0, err
	}
	b.clock.Advance(b.cost.RegAccess)
	v, err := m.dev.ReadReg(uint32(addr - m.base))
	if err != nil {
		return 0, fmt.Errorf("%s: %w", m.dev.Name(), err)
	}
	return v, nil
}

// Write32 performs an MMIO write on behalf of world w.
func (b *Bus) Write32(w tz.World, addr uint64, val uint32) error {
	m, err := b.find(w, addr)
	if err != nil {
		return err
	}
	b.clock.Advance(b.cost.RegAccess)
	if err := m.dev.WriteReg(uint32(addr-m.base), val); err != nil {
		return fmt.Errorf("%s: %w", m.dev.Name(), err)
	}
	return nil
}

// Devices returns the names of all mapped devices in address order.
func (b *Bus) Devices() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.maps))
	for _, m := range b.maps {
		names = append(names, m.dev.Name())
	}
	return names
}

// FIFOSource is a device-side byte producer a DMA channel can drain
// (e.g. the I2S controller's receive FIFO).
type FIFOSource interface {
	// PopBytes removes up to n bytes from the FIFO.
	PopBytes(n int) []byte
	// BytesAvailable reports how many bytes can currently be popped.
	BytesAvailable() int
}

// DMAStats summarizes engine activity.
type DMAStats struct {
	Transfers uint64
	Bytes     uint64
	Faults    uint64 // transfers rejected by the TZASC
}

// DMA is a single-channel DMA engine that drains a device FIFO into RAM.
// Transfers carry the configuring world's identity: a DMA programmed by the
// normal world cannot write into the secure carve-out, which is the property
// the paper's secure-driver design relies on (I/O buffers allocated from
// TZASC-carved secure RAM).
type DMA struct {
	clock *tz.Clock
	cost  tz.CostModel
	mem   *memory.PhysMem

	mu    sync.Mutex
	stats DMAStats
}

// NewDMA creates a DMA engine writing through mem.
func NewDMA(clock *tz.Clock, cost tz.CostModel, mem *memory.PhysMem) *DMA {
	return &DMA{clock: clock, cost: cost, mem: mem}
}

// FromDevice drains up to n bytes from src into RAM at dst on behalf of
// world w. It returns the number of bytes actually transferred.
func (d *DMA) FromDevice(w tz.World, src FIFOSource, dst uint64, n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	data := src.PopBytes(n)
	if len(data) == 0 {
		return 0, nil
	}
	if err := d.mem.WriteAt(w, dst, data); err != nil {
		d.mu.Lock()
		d.stats.Faults++
		d.mu.Unlock()
		return 0, fmt.Errorf("dma write: %w", err)
	}
	d.clock.Advance(tz.Cycles(len(data)) * d.cost.DMAPerByte)
	d.mu.Lock()
	d.stats.Transfers++
	d.stats.Bytes += uint64(len(data))
	d.mu.Unlock()
	return len(data), nil
}

// ToDevice would feed a playback FIFO; provided for API symmetry with real
// sound DMA controllers, used by the driver's (unported) playback path.
func (d *DMA) ToDevice(w tz.World, src uint64, sink func([]byte) int, n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	buf := make([]byte, n)
	if err := d.mem.ReadAt(w, src, buf); err != nil {
		d.mu.Lock()
		d.stats.Faults++
		d.mu.Unlock()
		return 0, fmt.Errorf("dma read: %w", err)
	}
	written := sink(buf)
	d.clock.Advance(tz.Cycles(written) * d.cost.DMAPerByte)
	d.mu.Lock()
	d.stats.Transfers++
	d.stats.Bytes += uint64(written)
	d.mu.Unlock()
	return written, nil
}

// Stats returns a snapshot of DMA activity.
func (d *DMA) Stats() DMAStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
