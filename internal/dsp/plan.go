package dsp

// Precomputed transform plans for the MFCC hot path. The per-utterance
// cost of the TEE recognizer is dominated by the frame loop (FFT +
// filterbank + DCT every 10 ms hop), so everything derivable from the
// configuration alone — twiddle factors, bit-reversal permutation, mel
// filter spans, DCT cosines — is computed once and reused.
//
// Every plan reproduces the corresponding naive routine bit for bit:
// the twiddle tables are filled with the same incremental w *= wl
// recurrence FFT uses, and the cosine/filter tables evaluate the same
// expressions on the same arguments, so planned and unplanned paths
// produce identical float64 results (the golden-equivalence tests in
// dsp_test.go hold them to exact equality).

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFTPlan caches the bit-reversal permutation and per-stage twiddle
// factors for a fixed power-of-two length, making repeated transforms
// allocation-free.
type FFTPlan struct {
	n        int
	rev      []int        // rev[i] = bit-reversed index of i
	twiddle  []complex128 // per-stage tables, concatenated
	stageOff []int        // offset of each stage's table in twiddle
}

// NewFFTPlan builds a plan for length n (a power of two).
func NewFFTPlan(n int) (*FFTPlan, error) {
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrNotPowerOfTwo, n)
	}
	p := &FFTPlan{n: n, rev: make([]int, n)}
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		p.rev[i] = j
	}
	// Fill each stage's twiddles with the same running product the naive
	// FFT accumulates, so planned butterflies see identical values.
	for length := 2; length <= n; length <<= 1 {
		p.stageOff = append(p.stageOff, len(p.twiddle))
		wl := cmplx.Rect(1, -2*math.Pi/float64(length))
		w := complex(1, 0)
		for j := 0; j < length/2; j++ {
			p.twiddle = append(p.twiddle, w)
			w *= wl
		}
	}
	return p, nil
}

// Size returns the planned transform length.
func (p *FFTPlan) Size() int { return p.n }

// Transform computes the in-place FFT of x, which must have the planned
// length. It performs no heap allocations.
func (p *FFTPlan) Transform(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("%w: plan for %d given %d", ErrNotPowerOfTwo, p.n, len(x))
	}
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	stage := 0
	for length := 2; length <= p.n; length <<= 1 {
		tw := p.twiddle[p.stageOff[stage]:]
		half := length / 2
		for i := 0; i < p.n; i += length {
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * tw[j]
				x[i+j] = u + v
				x[i+j+half] = u - v
			}
		}
		stage++
	}
	return nil
}

// melPlan is the flattened filterbank: every filter's non-zero span
// stored contiguously in one weight slice, applied with stride indexing
// instead of scanning all bins of a per-filter row.
type melPlan struct {
	lo  []int     // first spectrum bin of filter m's span
	off []int     // w[off[m]:off[m+1]] are filter m's weights
	w   []float64 // all spans, concatenated
}

// newMelPlan flattens the banks produced by MelFilterbank. Trimming
// leading/trailing zero weights only removes +0.0 additions, so applying
// the plan matches the full scan bit for bit.
func newMelPlan(banks [][]float64) *melPlan {
	p := &melPlan{
		lo:  make([]int, len(banks)),
		off: make([]int, len(banks)+1),
	}
	for m, bank := range banks {
		lo, hi := 0, len(bank)
		for lo < hi && bank[lo] == 0 {
			lo++
		}
		for hi > lo && bank[hi-1] == 0 {
			hi--
		}
		p.lo[m] = lo
		p.w = append(p.w, bank[lo:hi]...)
		p.off[m+1] = len(p.w)
	}
	return p
}

// apply fills energies[m] with log(filter_m · ps + 1e-10) for every
// filter, allocation-free.
func (p *melPlan) apply(ps, energies []float64) {
	for m := range p.lo {
		w := p.w[p.off[m]:p.off[m+1]]
		bins := ps[p.lo[m]:]
		var sum float64
		for i, wt := range w {
			sum += wt * bins[i]
		}
		energies[m] = math.Log(sum + 1e-10)
	}
}

// dctPlan caches the DCT-II cosine table and scale factors used by the
// MFCC output stage.
type dctPlan struct {
	n, coeffs int
	cos       []float64 // cos[k*n+i] = cos(pi*k*(i+0.5)/n)
	scale     []float64 // per-coefficient orthonormal scale
}

// newDCTPlan builds the table for n-point inputs and numCoeffs outputs.
func newDCTPlan(n, numCoeffs int) *dctPlan {
	if numCoeffs > n {
		numCoeffs = n
	}
	p := &dctPlan{
		n:      n,
		coeffs: numCoeffs,
		cos:    make([]float64, numCoeffs*n),
		scale:  make([]float64, numCoeffs),
	}
	for k := 0; k < numCoeffs; k++ {
		for i := 0; i < n; i++ {
			p.cos[k*n+i] = math.Cos(math.Pi * float64(k) * (float64(i) + 0.5) / float64(n))
		}
		if k == 0 {
			p.scale[k] = math.Sqrt(1 / float64(n))
		} else {
			p.scale[k] = math.Sqrt(2 / float64(n))
		}
	}
	return p
}

// apply writes the planned DCT of x into out (len p.coeffs).
func (p *dctPlan) apply(x, out []float64) {
	for k := 0; k < p.coeffs; k++ {
		row := p.cos[k*p.n : (k+1)*p.n]
		var sum float64
		for i, v := range x {
			sum += v * row[i]
		}
		out[k] = sum * p.scale[k]
	}
}
