package dsp

// Golden-equivalence and allocation guarantees for the planned MFCC hot
// path. naiveFrame/naiveSignal are the pre-refactor Extractor pipeline
// kept verbatim (window → zero-padded complex FFT → one-sided power
// spectrum → full-scan mel filterbank → cosine-sum DCT); the optimized
// Extractor must reproduce them bit for bit, because recognizer
// transcripts — and with them the fleet privacy audit — depend on exact
// feature values.

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/audio"
)

// naiveFrame is the historical Extractor.Frame implementation.
func naiveFrame(cfg MFCCConfig, window []float64, banks [][]float64, frame []float64) ([]float64, error) {
	windowed := ApplyWindow(frame, window)
	ps, err := PowerSpectrum(windowed, cfg.FFTSize)
	if err != nil {
		return nil, err
	}
	energies := make([]float64, len(banks))
	for i, bank := range banks {
		var sum float64
		for k, w := range bank {
			if w != 0 {
				sum += w * ps[k]
			}
		}
		energies[i] = math.Log(sum + 1e-10)
	}
	return DCT2(energies, cfg.NumCoeffs), nil
}

func naiveSignal(cfg MFCCConfig, window []float64, banks [][]float64, samples []float64) ([][]float64, error) {
	if len(samples) < cfg.FrameLen {
		return nil, nil
	}
	var out [][]float64
	for i := 0; i+cfg.FrameLen <= len(samples); i += cfg.Hop {
		v, err := naiveFrame(cfg, window, banks, samples[i:i+cfg.FrameLen])
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func referenceSetup(t *testing.T, cfg MFCCConfig) ([]float64, [][]float64) {
	t.Helper()
	banks, err := MelFilterbank(cfg.NumFilters, cfg.FFTSize, cfg.SampleRate, cfg.FMin, cfg.FMax)
	if err != nil {
		t.Fatalf("MelFilterbank: %v", err)
	}
	return Hann(cfg.FrameLen), banks
}

func TestExtractorFrameMatchesNaiveBitExact(t *testing.T) {
	cfg := DefaultMFCCConfig(16000)
	window, banks := referenceSetup(t, cfg)
	ex, err := NewExtractor(cfg)
	if err != nil {
		t.Fatalf("NewExtractor: %v", err)
	}
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 20; trial++ {
		frame := make([]float64, cfg.FrameLen)
		for i := range frame {
			frame[i] = rng.Float64()*2 - 1
		}
		want, err := naiveFrame(cfg, window, banks, frame)
		if err != nil {
			t.Fatalf("naiveFrame: %v", err)
		}
		got, err := ex.Frame(frame)
		if err != nil {
			t.Fatalf("Frame: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("got %d coeffs, want %d", len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("trial %d coeff %d: optimized %v != naive %v (not bit-identical)",
					trial, i, got[i], want[i])
			}
		}
	}
}

func TestExtractorSignalMatchesNaiveBitExact(t *testing.T) {
	cfg := DefaultMFCCConfig(16000)
	window, banks := referenceSetup(t, cfg)
	ex, err := NewExtractor(cfg)
	if err != nil {
		t.Fatalf("NewExtractor: %v", err)
	}
	v := audio.DefaultVoice(21)
	for _, word := range []string{"password", "weather", "music"} {
		pcm := v.SynthesizeWord(word)
		want, err := naiveSignal(cfg, window, banks, pcm.Samples)
		if err != nil {
			t.Fatalf("naiveSignal: %v", err)
		}
		got, err := ex.Signal(pcm.Samples)
		if err != nil {
			t.Fatalf("Signal: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d frames, want %d", word, len(got), len(want))
		}
		for f := range want {
			for i := range want[f] {
				if math.Float64bits(want[f][i]) != math.Float64bits(got[f][i]) {
					t.Fatalf("%s frame %d coeff %d: optimized %v != naive %v",
						word, f, i, got[f][i], want[f][i])
				}
			}
		}
	}
}

func TestFFTPlanMatchesFFTBitExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for _, n := range []int{2, 8, 64, 512} {
		plan, err := NewFFTPlan(n)
		if err != nil {
			t.Fatalf("NewFFTPlan(%d): %v", n, err)
		}
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		b := make([]complex128, n)
		copy(b, a)
		if err := FFT(a); err != nil {
			t.Fatalf("FFT: %v", err)
		}
		if err := plan.Transform(b); err != nil {
			t.Fatalf("Transform: %v", err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d bin %d: plan %v != fft %v", n, i, b[i], a[i])
			}
		}
	}
	if _, err := NewFFTPlan(100); err == nil {
		t.Error("NewFFTPlan accepted non-power-of-two length")
	}
	plan, _ := NewFFTPlan(8)
	if err := plan.Transform(make([]complex128, 4)); err == nil {
		t.Error("Transform accepted mismatched length")
	}
}

// TestExtractorFrameZeroAllocs is the steady-state allocation guarantee
// the TEE hot path depends on: after warm-up, Frame must not touch the
// heap at all.
func TestExtractorFrameZeroAllocs(t *testing.T) {
	cfg := DefaultMFCCConfig(16000)
	ex, err := NewExtractor(cfg)
	if err != nil {
		t.Fatalf("NewExtractor: %v", err)
	}
	frame := make([]float64, cfg.FrameLen)
	for i := range frame {
		frame[i] = math.Sin(float64(i) / 7)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ex.Frame(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Extractor.Frame allocates %v times per call, want 0", allocs)
	}
}

func TestExtractorSignalZeroAllocsSteadyState(t *testing.T) {
	cfg := DefaultMFCCConfig(16000)
	ex, err := NewExtractor(cfg)
	if err != nil {
		t.Fatalf("NewExtractor: %v", err)
	}
	samples := make([]float64, 4*cfg.FrameLen)
	for i := range samples {
		samples[i] = math.Cos(float64(i) / 11)
	}
	// First call grows the per-signal scratch; steady state follows.
	if _, err := ex.Signal(samples); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ex.Signal(samples); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Extractor.Signal allocates %v times per call in steady state, want 0", allocs)
	}
}

func BenchmarkExtractorFrame(b *testing.B) {
	cfg := DefaultMFCCConfig(16000)
	ex, err := NewExtractor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	frame := make([]float64, cfg.FrameLen)
	for i := range frame {
		frame[i] = math.Sin(float64(i) / 5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Frame(frame); err != nil {
			b.Fatal(err)
		}
	}
}
