package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/audio"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			out[k] += x[t] * cmplx.Rect(1, ang)
		}
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		want := naiveDFT(x)
		got := make([]complex128, n)
		copy(got, x)
		if err := FFT(got); err != nil {
			t.Fatalf("FFT(%d): %v", n, err)
		}
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-7*float64(n) {
				t.Fatalf("n=%d bin %d: fft %v, dft %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		if err := FFT(make([]complex128, n)); !errors.Is(err, ErrNotPowerOfTwo) {
			t.Errorf("FFT(%d) = %v, want ErrNotPowerOfTwo", n, err)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
	}
	orig := make([]complex128, len(x))
	copy(orig, x)
	if err := FFT(x); err != nil {
		t.Fatalf("FFT: %v", err)
	}
	if err := IFFT(x); err != nil {
		t.Fatalf("IFFT: %v", err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip bin %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	x := make([]complex128, 256)
	var timeEnergy float64
	for i := range x {
		v := rng.Float64()*2 - 1
		x[i] = complex(v, 0)
		timeEnergy += v * v
	}
	if err := FFT(x); err != nil {
		t.Fatalf("FFT: %v", err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(len(x))
	if math.Abs(timeEnergy-freqEnergy) > 1e-8*timeEnergy {
		t.Errorf("Parseval violated: time %v vs freq %v", timeEnergy, freqEnergy)
	}
}

func TestPowerSpectrumSinePeak(t *testing.T) {
	const rate = 16000
	const fftSize = 512
	// Choose a frequency exactly on a bin: bin 32 -> 1000 Hz.
	freq := float64(rate) * 32 / fftSize
	tone := audio.Sine(rate, freq, 1.0, time.Second)
	ps, err := PowerSpectrum(tone.Samples[:fftSize], fftSize)
	if err != nil {
		t.Fatalf("PowerSpectrum: %v", err)
	}
	peak := 0
	for i := range ps {
		if ps[i] > ps[peak] {
			peak = i
		}
	}
	if peak != 32 {
		t.Errorf("peak at bin %d, want 32 (%g Hz)", peak, freq)
	}
}

func TestPowerSpectrumBadSize(t *testing.T) {
	if _, err := PowerSpectrum(make([]float64, 10), 100); !errors.Is(err, ErrNotPowerOfTwo) {
		t.Errorf("PowerSpectrum bad size = %v", err)
	}
}

func TestHannWindow(t *testing.T) {
	w := Hann(64)
	if w[0] > 1e-12 || w[63] > 1e-12 {
		t.Error("Hann endpoints should be ~0")
	}
	mid := w[31]
	if mid < 0.9 {
		t.Errorf("Hann midpoint = %v, want near 1", mid)
	}
	if one := Hann(1); one[0] != 1 {
		t.Error("Hann(1) should be [1]")
	}
}

func TestMelScaleRoundTrip(t *testing.T) {
	for _, hz := range []float64{60, 440, 1000, 4000, 8000} {
		back := MelToHz(HzToMel(hz))
		if math.Abs(back-hz) > 1e-6*hz {
			t.Errorf("mel round trip %g -> %g", hz, back)
		}
	}
	if HzToMel(1000) <= HzToMel(500) {
		t.Error("mel scale must be monotonic")
	}
}

func TestMelFilterbankShape(t *testing.T) {
	banks, err := MelFilterbank(26, 512, 16000, 60, 8000)
	if err != nil {
		t.Fatalf("MelFilterbank: %v", err)
	}
	if len(banks) != 26 {
		t.Fatalf("got %d banks, want 26", len(banks))
	}
	for i, b := range banks {
		if len(b) != 257 {
			t.Fatalf("bank %d has %d bins, want 257", i, len(b))
		}
		var sum float64
		for _, v := range b {
			if v < 0 || v > 1 {
				t.Fatalf("bank %d weight %v out of [0,1]", i, v)
			}
			sum += v
		}
		if sum == 0 {
			t.Errorf("bank %d is all-zero", i)
		}
	}
}

func TestMelFilterbankBadConfig(t *testing.T) {
	if _, err := MelFilterbank(0, 512, 16000, 60, 8000); !errors.Is(err, ErrBadConfig) {
		t.Error("zero filters accepted")
	}
	if _, err := MelFilterbank(26, 512, 16000, 8000, 60); !errors.Is(err, ErrBadConfig) {
		t.Error("inverted band accepted")
	}
	if _, err := MelFilterbank(26, 512, 16000, 60, 9000); !errors.Is(err, ErrBadConfig) {
		t.Error("band beyond Nyquist accepted")
	}
}

func TestDCT2Energy(t *testing.T) {
	// DCT of a constant signal concentrates in coefficient 0.
	x := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	c := DCT2(x, 8)
	if math.Abs(c[0]-math.Sqrt(8)) > 1e-9 {
		t.Errorf("c0 = %v, want sqrt(8)", c[0])
	}
	for i := 1; i < len(c); i++ {
		if math.Abs(c[i]) > 1e-9 {
			t.Errorf("c%d = %v, want 0", i, c[i])
		}
	}
	// Requesting more coeffs than inputs clamps.
	if got := DCT2([]float64{1, 2}, 10); len(got) != 2 {
		t.Errorf("clamped DCT len = %d, want 2", len(got))
	}
}

func TestMFCCConfigValidate(t *testing.T) {
	good := DefaultMFCCConfig(16000)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.FFTSize = 100
	if err := bad.Validate(); !errors.Is(err, ErrBadConfig) && !errors.Is(err, ErrNotPowerOfTwo) {
		t.Errorf("non-pow2 fft accepted: %v", err)
	}
	bad = good
	bad.FFTSize = 128 // < FrameLen (400)
	if err := bad.Validate(); err == nil {
		t.Error("fft < frame accepted")
	}
	bad = good
	bad.NumCoeffs = 99
	if err := bad.Validate(); err == nil {
		t.Error("coeffs > filters accepted")
	}
}

func TestExtractorDistinguishesWords(t *testing.T) {
	v := audio.DefaultVoice(11)
	v.NoiseAmp = 0
	ex, err := NewExtractor(DefaultMFCCConfig(v.Rate))
	if err != nil {
		t.Fatalf("NewExtractor: %v", err)
	}
	mfccOf := func(word string) []float64 {
		p := v.SynthesizeWord(word)
		frames, err := ex.Signal(p.Samples)
		if err != nil {
			t.Fatalf("Signal(%s): %v", word, err)
		}
		return MeanVector(frames)
	}
	a1 := mfccOf("password")
	b := mfccOf("weather")
	// A second rendering of the same word with a different seed.
	v2 := v
	v2.Seed = 999
	ex2, _ := NewExtractor(DefaultMFCCConfig(v2.Rate))
	p2 := v2.SynthesizeWord("password")
	frames2, _ := ex2.Signal(p2.Samples)
	a2 := MeanVector(frames2)

	dSame := EuclideanDistance(a1, a2)
	dDiff := EuclideanDistance(a1, b)
	if dSame >= dDiff {
		t.Errorf("same-word distance %v not below cross-word distance %v", dSame, dDiff)
	}
}

func TestExtractorShortSignal(t *testing.T) {
	ex, err := NewExtractor(DefaultMFCCConfig(16000))
	if err != nil {
		t.Fatalf("NewExtractor: %v", err)
	}
	frames, err := ex.Signal(make([]float64, 10))
	if err != nil || frames != nil {
		t.Errorf("short signal = (%v,%v), want (nil,nil)", frames, err)
	}
}

func TestMeanVector(t *testing.T) {
	got := MeanVector([][]float64{{1, 2}, {3, 4}})
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("MeanVector = %v, want [2 3]", got)
	}
	if MeanVector(nil) != nil {
		t.Error("MeanVector(nil) should be nil")
	}
}

func TestEuclideanDistance(t *testing.T) {
	if d := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Errorf("distance = %v, want 5", d)
	}
	if d := EuclideanDistance([]float64{1}, []float64{1}); d != 0 {
		t.Errorf("distance = %v, want 0", d)
	}
}
