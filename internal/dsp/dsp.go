// Package dsp implements the signal-processing front end shared by the
// speech recognizer and the acoustic experiments: radix-2 FFT, window
// functions, mel filterbanks and MFCC extraction.
//
// MFCCs are the standard compact acoustic features used by small speech
// models — exactly the kind of front end a TEE-resident recognizer needs,
// since the paper's §V constrains in-TEE models to small memory footprints.
package dsp

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// Errors returned by the package.
var (
	// ErrNotPowerOfTwo is returned by FFT for unsupported lengths.
	ErrNotPowerOfTwo = errors.New("dsp: length is not a power of two")
	// ErrBadConfig is returned for invalid MFCC configurations.
	ErrBadConfig = errors.New("dsp: invalid configuration")
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("%w: %d", ErrNotPowerOfTwo, n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT of x in place.
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
	return nil
}

// Hann returns the n-point Hann window.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// ApplyWindow multiplies frame by window element-wise into a new slice.
func ApplyWindow(frame, window []float64) []float64 {
	n := len(frame)
	if len(window) < n {
		n = len(window)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = frame[i] * window[i]
	}
	return out
}

// PowerSpectrum returns the one-sided power spectrum of a real frame,
// zero-padding to fftSize. Output has fftSize/2+1 bins.
func PowerSpectrum(frame []float64, fftSize int) ([]float64, error) {
	if fftSize == 0 || fftSize&(fftSize-1) != 0 {
		return nil, fmt.Errorf("%w: fft size %d", ErrNotPowerOfTwo, fftSize)
	}
	x := make([]complex128, fftSize)
	n := len(frame)
	if n > fftSize {
		n = fftSize
	}
	for i := 0; i < n; i++ {
		x[i] = complex(frame[i], 0)
	}
	if err := FFT(x); err != nil {
		return nil, err
	}
	out := make([]float64, fftSize/2+1)
	for i := range out {
		re, im := real(x[i]), imag(x[i])
		out[i] = (re*re + im*im) / float64(fftSize)
	}
	return out, nil
}

// HzToMel converts frequency to the mel scale (HTK formula).
func HzToMel(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }

// MelToHz converts mel back to frequency.
func MelToHz(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

// MelFilterbank builds numFilters triangular filters over an fftSize/2+1
// bin power spectrum for the given sample rate, spanning [fMin, fMax] Hz.
func MelFilterbank(numFilters, fftSize, sampleRate int, fMin, fMax float64) ([][]float64, error) {
	if numFilters <= 0 || fftSize <= 0 || sampleRate <= 0 {
		return nil, fmt.Errorf("%w: filters=%d fft=%d rate=%d", ErrBadConfig, numFilters, fftSize, sampleRate)
	}
	if fMax <= fMin || fMax > float64(sampleRate)/2 {
		return nil, fmt.Errorf("%w: band [%g,%g] with rate %d", ErrBadConfig, fMin, fMax, sampleRate)
	}
	nBins := fftSize/2 + 1
	melMin, melMax := HzToMel(fMin), HzToMel(fMax)
	// numFilters+2 equally spaced mel points.
	points := make([]int, numFilters+2)
	for i := range points {
		mel := melMin + (melMax-melMin)*float64(i)/float64(numFilters+1)
		hz := MelToHz(mel)
		points[i] = int(math.Floor((float64(fftSize) + 1) * hz / float64(sampleRate)))
		if points[i] >= nBins {
			points[i] = nBins - 1
		}
	}
	banks := make([][]float64, numFilters)
	for m := 1; m <= numFilters; m++ {
		f := make([]float64, nBins)
		lo, mid, hi := points[m-1], points[m], points[m+1]
		for k := lo; k < mid; k++ {
			if mid > lo {
				f[k] = float64(k-lo) / float64(mid-lo)
			}
		}
		for k := mid; k < hi; k++ {
			if hi > mid {
				f[k] = float64(hi-k) / float64(hi-mid)
			}
		}
		banks[m-1] = f
	}
	return banks, nil
}

// DCT2 computes the orthonormal DCT-II of x, keeping numCoeffs outputs.
func DCT2(x []float64, numCoeffs int) []float64 {
	n := len(x)
	if numCoeffs > n {
		numCoeffs = n
	}
	out := make([]float64, numCoeffs)
	for k := 0; k < numCoeffs; k++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += x[i] * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/float64(n))
		}
		scale := math.Sqrt(2 / float64(n))
		if k == 0 {
			scale = math.Sqrt(1 / float64(n))
		}
		out[k] = sum * scale
	}
	return out
}

// MFCCConfig configures MFCC extraction.
type MFCCConfig struct {
	SampleRate int
	FrameLen   int // samples per frame
	Hop        int // samples between frame starts
	FFTSize    int // power of two >= FrameLen
	NumFilters int
	NumCoeffs  int
	FMin, FMax float64
}

// DefaultMFCCConfig returns the extraction setup used by the recognizer:
// 25 ms frames, 10 ms hop, 26 mel filters, 13 coefficients at 16 kHz.
func DefaultMFCCConfig(rate int) MFCCConfig {
	return MFCCConfig{
		SampleRate: rate,
		FrameLen:   rate / 40,  // 25 ms
		Hop:        rate / 100, // 10 ms
		FFTSize:    512,
		NumFilters: 26,
		NumCoeffs:  13,
		FMin:       60,
		FMax:       float64(rate) / 2,
	}
}

// Validate checks the configuration.
func (c MFCCConfig) Validate() error {
	if c.SampleRate <= 0 || c.FrameLen <= 0 || c.Hop <= 0 {
		return fmt.Errorf("%w: rate/frame/hop", ErrBadConfig)
	}
	if c.FFTSize < c.FrameLen {
		return fmt.Errorf("%w: fft size %d < frame %d", ErrBadConfig, c.FFTSize, c.FrameLen)
	}
	if c.FFTSize&(c.FFTSize-1) != 0 {
		return fmt.Errorf("%w: fft size %d not power of two", ErrBadConfig, c.FFTSize)
	}
	if c.NumFilters <= 0 || c.NumCoeffs <= 0 || c.NumCoeffs > c.NumFilters {
		return fmt.Errorf("%w: filters=%d coeffs=%d", ErrBadConfig, c.NumFilters, c.NumCoeffs)
	}
	return nil
}

// Extractor computes MFCC vectors from PCM frames. It precomputes the
// window and filterbank once.
type Extractor struct {
	cfg    MFCCConfig
	window []float64
	banks  [][]float64
}

// NewExtractor builds an extractor for the configuration.
func NewExtractor(cfg MFCCConfig) (*Extractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	banks, err := MelFilterbank(cfg.NumFilters, cfg.FFTSize, cfg.SampleRate, cfg.FMin, cfg.FMax)
	if err != nil {
		return nil, err
	}
	return &Extractor{
		cfg:    cfg,
		window: Hann(cfg.FrameLen),
		banks:  banks,
	}, nil
}

// Config returns the extractor's configuration.
func (e *Extractor) Config() MFCCConfig { return e.cfg }

// Frame computes the MFCC vector of a single frame of FrameLen samples.
func (e *Extractor) Frame(frame []float64) ([]float64, error) {
	windowed := ApplyWindow(frame, e.window)
	ps, err := PowerSpectrum(windowed, e.cfg.FFTSize)
	if err != nil {
		return nil, err
	}
	energies := make([]float64, len(e.banks))
	for i, bank := range e.banks {
		var sum float64
		for k, w := range bank {
			if w != 0 {
				sum += w * ps[k]
			}
		}
		energies[i] = math.Log(sum + 1e-10)
	}
	return DCT2(energies, e.cfg.NumCoeffs), nil
}

// Signal computes MFCC vectors for every frame of the sample stream.
func (e *Extractor) Signal(samples []float64) ([][]float64, error) {
	if len(samples) < e.cfg.FrameLen {
		return nil, nil
	}
	var out [][]float64
	for i := 0; i+e.cfg.FrameLen <= len(samples); i += e.cfg.Hop {
		v, err := e.Frame(samples[i : i+e.cfg.FrameLen])
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// MeanVector averages a sequence of equal-length vectors (e.g. the MFCC
// frames of one word) into a single template vector.
func MeanVector(vectors [][]float64) []float64 {
	if len(vectors) == 0 {
		return nil
	}
	out := make([]float64, len(vectors[0]))
	for _, v := range vectors {
		for i := range out {
			out[i] += v[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(vectors))
	}
	return out
}

// EuclideanDistance returns the L2 distance between equal-length vectors.
func EuclideanDistance(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
