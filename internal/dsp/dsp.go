// Package dsp implements the signal-processing front end shared by the
// speech recognizer and the acoustic experiments: radix-2 FFT, window
// functions, mel filterbanks and MFCC extraction.
//
// MFCCs are the standard compact acoustic features used by small speech
// models — exactly the kind of front end a TEE-resident recognizer needs,
// since the paper's §V constrains in-TEE models to small memory footprints.
package dsp

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// Errors returned by the package.
var (
	// ErrNotPowerOfTwo is returned by FFT for unsupported lengths.
	ErrNotPowerOfTwo = errors.New("dsp: length is not a power of two")
	// ErrBadConfig is returned for invalid MFCC configurations.
	ErrBadConfig = errors.New("dsp: invalid configuration")
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("%w: %d", ErrNotPowerOfTwo, n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT of x in place.
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
	return nil
}

// Hann returns the n-point Hann window.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// ApplyWindow multiplies frame by window element-wise into a new slice.
func ApplyWindow(frame, window []float64) []float64 {
	n := len(frame)
	if len(window) < n {
		n = len(window)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = frame[i] * window[i]
	}
	return out
}

// PowerSpectrum returns the one-sided power spectrum of a real frame,
// zero-padding to fftSize. Output has fftSize/2+1 bins.
func PowerSpectrum(frame []float64, fftSize int) ([]float64, error) {
	if fftSize == 0 || fftSize&(fftSize-1) != 0 {
		return nil, fmt.Errorf("%w: fft size %d", ErrNotPowerOfTwo, fftSize)
	}
	x := make([]complex128, fftSize)
	n := len(frame)
	if n > fftSize {
		n = fftSize
	}
	for i := 0; i < n; i++ {
		x[i] = complex(frame[i], 0)
	}
	if err := FFT(x); err != nil {
		return nil, err
	}
	out := make([]float64, fftSize/2+1)
	for i := range out {
		re, im := real(x[i]), imag(x[i])
		out[i] = (re*re + im*im) / float64(fftSize)
	}
	return out, nil
}

// HzToMel converts frequency to the mel scale (HTK formula).
func HzToMel(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }

// MelToHz converts mel back to frequency.
func MelToHz(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

// MelFilterbank builds numFilters triangular filters over an fftSize/2+1
// bin power spectrum for the given sample rate, spanning [fMin, fMax] Hz.
func MelFilterbank(numFilters, fftSize, sampleRate int, fMin, fMax float64) ([][]float64, error) {
	if numFilters <= 0 || fftSize <= 0 || sampleRate <= 0 {
		return nil, fmt.Errorf("%w: filters=%d fft=%d rate=%d", ErrBadConfig, numFilters, fftSize, sampleRate)
	}
	if fMax <= fMin || fMax > float64(sampleRate)/2 {
		return nil, fmt.Errorf("%w: band [%g,%g] with rate %d", ErrBadConfig, fMin, fMax, sampleRate)
	}
	nBins := fftSize/2 + 1
	melMin, melMax := HzToMel(fMin), HzToMel(fMax)
	// numFilters+2 equally spaced mel points.
	points := make([]int, numFilters+2)
	for i := range points {
		mel := melMin + (melMax-melMin)*float64(i)/float64(numFilters+1)
		hz := MelToHz(mel)
		points[i] = int(math.Floor((float64(fftSize) + 1) * hz / float64(sampleRate)))
		if points[i] >= nBins {
			points[i] = nBins - 1
		}
	}
	banks := make([][]float64, numFilters)
	for m := 1; m <= numFilters; m++ {
		f := make([]float64, nBins)
		lo, mid, hi := points[m-1], points[m], points[m+1]
		for k := lo; k < mid; k++ {
			if mid > lo {
				f[k] = float64(k-lo) / float64(mid-lo)
			}
		}
		for k := mid; k < hi; k++ {
			if hi > mid {
				f[k] = float64(hi-k) / float64(hi-mid)
			}
		}
		banks[m-1] = f
	}
	return banks, nil
}

// DCT2 computes the orthonormal DCT-II of x, keeping numCoeffs outputs.
func DCT2(x []float64, numCoeffs int) []float64 {
	n := len(x)
	if numCoeffs > n {
		numCoeffs = n
	}
	out := make([]float64, numCoeffs)
	for k := 0; k < numCoeffs; k++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += x[i] * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/float64(n))
		}
		scale := math.Sqrt(2 / float64(n))
		if k == 0 {
			scale = math.Sqrt(1 / float64(n))
		}
		out[k] = sum * scale
	}
	return out
}

// MFCCConfig configures MFCC extraction.
type MFCCConfig struct {
	SampleRate int
	FrameLen   int // samples per frame
	Hop        int // samples between frame starts
	FFTSize    int // power of two >= FrameLen
	NumFilters int
	NumCoeffs  int
	FMin, FMax float64
}

// DefaultMFCCConfig returns the extraction setup used by the recognizer:
// 25 ms frames, 10 ms hop, 26 mel filters, 13 coefficients at 16 kHz.
func DefaultMFCCConfig(rate int) MFCCConfig {
	return MFCCConfig{
		SampleRate: rate,
		FrameLen:   rate / 40,  // 25 ms
		Hop:        rate / 100, // 10 ms
		FFTSize:    512,
		NumFilters: 26,
		NumCoeffs:  13,
		FMin:       60,
		FMax:       float64(rate) / 2,
	}
}

// Validate checks the configuration.
func (c MFCCConfig) Validate() error {
	if c.SampleRate <= 0 || c.FrameLen <= 0 || c.Hop <= 0 {
		return fmt.Errorf("%w: rate/frame/hop", ErrBadConfig)
	}
	if c.FFTSize < c.FrameLen {
		return fmt.Errorf("%w: fft size %d < frame %d", ErrBadConfig, c.FFTSize, c.FrameLen)
	}
	if c.FFTSize&(c.FFTSize-1) != 0 {
		return fmt.Errorf("%w: fft size %d not power of two", ErrBadConfig, c.FFTSize)
	}
	if c.NumFilters <= 0 || c.NumCoeffs <= 0 || c.NumCoeffs > c.NumFilters {
		return fmt.Errorf("%w: filters=%d coeffs=%d", ErrBadConfig, c.NumFilters, c.NumCoeffs)
	}
	return nil
}

// Extractor computes MFCC vectors from PCM frames. It precomputes the
// window, the FFT plan, the flattened mel filterbank and the DCT cosine
// table once, and owns scratch buffers sized for the configuration, so
// Frame and Signal perform zero heap allocations in steady state.
//
// The scratch makes an Extractor single-goroutine state: share the
// configuration, not the instance. Slices returned by Frame and Signal
// alias the scratch and are only valid until the next Frame/Signal call;
// callers that retain vectors must copy them.
type Extractor struct {
	cfg    MFCCConfig
	window []float64
	fft    *FFTPlan
	mel    *melPlan
	dct    *dctPlan

	// Per-instance scratch (steady-state zero-allocation hot path).
	buf      []complex128 // FFT working buffer, FFTSize
	ps       []float64    // one-sided power spectrum, FFTSize/2+1
	energies []float64    // log mel energies, NumFilters
	out      []float64    // Frame result, NumCoeffs
	feats    []float64    // flat per-signal MFCC storage (grown on demand)
	frames   [][]float64  // Signal result headers into feats
}

// extractorPlans bundles the immutable precomputed state for one MFCC
// configuration: window, FFT plan, flattened filterbank and DCT table.
// Plans carry no mutable state, so one set is shared by every extractor
// with the same configuration (a fleet creates thousands).
type extractorPlans struct {
	window []float64
	fft    *FFTPlan
	mel    *melPlan
	dct    *dctPlan
}

var planCache sync.Map // MFCCConfig -> *extractorPlans

func plansFor(cfg MFCCConfig) (*extractorPlans, error) {
	if p, ok := planCache.Load(cfg); ok {
		return p.(*extractorPlans), nil
	}
	banks, err := MelFilterbank(cfg.NumFilters, cfg.FFTSize, cfg.SampleRate, cfg.FMin, cfg.FMax)
	if err != nil {
		return nil, err
	}
	fft, err := NewFFTPlan(cfg.FFTSize)
	if err != nil {
		return nil, err
	}
	plans := &extractorPlans{
		window: Hann(cfg.FrameLen),
		fft:    fft,
		mel:    newMelPlan(banks),
		dct:    newDCTPlan(cfg.NumFilters, cfg.NumCoeffs),
	}
	p, _ := planCache.LoadOrStore(cfg, plans)
	return p.(*extractorPlans), nil
}

// NewExtractor builds an extractor for the configuration.
func NewExtractor(cfg MFCCConfig) (*Extractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plans, err := plansFor(cfg)
	if err != nil {
		return nil, err
	}
	return &Extractor{
		cfg:      cfg,
		window:   plans.window,
		fft:      plans.fft,
		mel:      plans.mel,
		dct:      plans.dct,
		buf:      make([]complex128, cfg.FFTSize),
		ps:       make([]float64, cfg.FFTSize/2+1),
		energies: make([]float64, cfg.NumFilters),
		out:      make([]float64, min(cfg.NumCoeffs, cfg.NumFilters)),
	}, nil
}

// Config returns the extractor's configuration.
func (e *Extractor) Config() MFCCConfig { return e.cfg }

// Frame computes the MFCC vector of a single frame of FrameLen samples.
// The returned slice aliases the extractor's scratch: it is valid until
// the next Frame or Signal call.
func (e *Extractor) Frame(frame []float64) ([]float64, error) {
	if err := e.frameInto(e.out, frame); err != nil {
		return nil, err
	}
	return e.out, nil
}

// frameInto runs window → FFT → power spectrum → mel filterbank → DCT
// into dst without allocating.
func (e *Extractor) frameInto(dst, frame []float64) error {
	n := len(frame)
	if len(e.window) < n {
		n = len(e.window)
	}
	if n > e.cfg.FFTSize {
		n = e.cfg.FFTSize
	}
	for i := 0; i < n; i++ {
		e.buf[i] = complex(frame[i]*e.window[i], 0)
	}
	for i := n; i < len(e.buf); i++ {
		e.buf[i] = 0
	}
	if err := e.fft.Transform(e.buf); err != nil {
		return err
	}
	inv := float64(e.cfg.FFTSize)
	for i := range e.ps {
		re, im := real(e.buf[i]), imag(e.buf[i])
		e.ps[i] = (re*re + im*im) / inv
	}
	e.mel.apply(e.ps, e.energies)
	e.dct.apply(e.energies, dst)
	return nil
}

// Signal computes MFCC vectors for every frame of the sample stream.
// The returned vectors alias the extractor's scratch: they are valid
// until the next Frame or Signal call.
func (e *Extractor) Signal(samples []float64) ([][]float64, error) {
	if len(samples) < e.cfg.FrameLen {
		return nil, nil
	}
	nFrames := (len(samples)-e.cfg.FrameLen)/e.cfg.Hop + 1
	nc := len(e.out)
	if cap(e.feats) < nFrames*nc {
		e.feats = make([]float64, nFrames*nc)
		e.frames = make([][]float64, nFrames)
	}
	e.feats = e.feats[:nFrames*nc]
	e.frames = e.frames[:nFrames]
	for f := 0; f < nFrames; f++ {
		i := f * e.cfg.Hop
		dst := e.feats[f*nc : (f+1)*nc]
		if err := e.frameInto(dst, samples[i:i+e.cfg.FrameLen]); err != nil {
			return nil, err
		}
		e.frames[f] = dst
	}
	return e.frames, nil
}

// MeanVector averages a sequence of equal-length vectors (e.g. the MFCC
// frames of one word) into a single template vector.
func MeanVector(vectors [][]float64) []float64 {
	if len(vectors) == 0 {
		return nil
	}
	out := make([]float64, len(vectors[0]))
	for _, v := range vectors {
		for i := range out {
			out[i] += v[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(vectors))
	}
	return out
}

// EuclideanDistance returns the L2 distance between equal-length vectors.
func EuclideanDistance(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
