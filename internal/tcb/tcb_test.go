package tcb

import (
	"errors"
	"strings"
	"testing"
)

// testTable builds a small driver-like inventory:
//
//	probe -> clk_enable -> pll_config
//	pcm_read -> dma_start
//	usb_probe -> usb_parse (unused by capture)
func testTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable()
	add := func(name, module string, loc int, callees ...string) {
		t.Helper()
		if err := tbl.Add(FuncMeta{Name: name, Module: module, LoC: loc, Bytes: loc * 14}, callees...); err != nil {
			t.Fatalf("Add(%s): %v", name, err)
		}
	}
	add("probe", "core", 40, "clk_enable")
	add("clk_enable", "clock", 20, "pll_config")
	add("pll_config", "clock", 30)
	add("pcm_read", "pcm", 50, "dma_start")
	add("dma_start", "dma", 25)
	add("usb_probe", "usb-audio", 80, "usb_parse")
	add("usb_parse", "usb-audio", 60)
	if err := tbl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return tbl
}

func TestTableAddDuplicate(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Add(FuncMeta{Name: "f"}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := tbl.Add(FuncMeta{Name: "f"}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate Add = %v, want ErrDuplicate", err)
	}
}

func TestTableValidateMissingCallee(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Add(FuncMeta{Name: "f"}, "ghost")
	if err := tbl.Validate(); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("Validate = %v, want ErrUnknownFunction", err)
	}
}

func TestClosure(t *testing.T) {
	tbl := testTable(t)
	set, err := tbl.Closure([]string{"probe"})
	if err != nil {
		t.Fatalf("Closure: %v", err)
	}
	for _, fn := range []string{"probe", "clk_enable", "pll_config"} {
		if !set[fn] {
			t.Errorf("closure missing %s", fn)
		}
	}
	if set["usb_probe"] || set["pcm_read"] {
		t.Error("closure leaked unreachable functions")
	}
	if _, err := tbl.Closure([]string{"ghost"}); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("Closure ghost root = %v", err)
	}
}

func TestFullImage(t *testing.T) {
	tbl := testTable(t)
	img := tbl.FullImage()
	if len(img.Funcs) != 7 {
		t.Errorf("full image has %d funcs, want 7", len(img.Funcs))
	}
	if img.TotalLoC != 40+20+30+50+25+80+60 {
		t.Errorf("TotalLoC = %d", img.TotalLoC)
	}
	if img.TotalBytes != img.TotalLoC*14 {
		t.Errorf("TotalBytes = %d", img.TotalBytes)
	}
}

func TestBuildImageExact(t *testing.T) {
	tbl := testTable(t)
	traced := map[string]bool{
		"probe": true, "clk_enable": true, "pll_config": true,
		"pcm_read": true, "dma_start": true,
	}
	img, err := tbl.BuildImage("capture-min", traced, Exact)
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	if len(img.Funcs) != 5 {
		t.Errorf("image has %d funcs, want 5", len(img.Funcs))
	}
	if img.Contains("usb_probe") {
		t.Error("image contains excluded usb_probe")
	}
}

func TestBuildImageExactMissingCallee(t *testing.T) {
	tbl := testTable(t)
	traced := map[string]bool{"probe": true} // clk_enable missing
	if _, err := tbl.BuildImage("bad", traced, Exact); !errors.Is(err, ErrMissingCallee) {
		t.Errorf("BuildImage = %v, want ErrMissingCallee", err)
	}
}

func TestBuildImageStaticClosureCompletes(t *testing.T) {
	tbl := testTable(t)
	traced := map[string]bool{"probe": true, "pcm_read": true}
	img, err := tbl.BuildImage("closure", traced, StaticClosure)
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	for _, fn := range []string{"probe", "clk_enable", "pll_config", "pcm_read", "dma_start"} {
		if !img.Contains(fn) {
			t.Errorf("closure image missing %s", fn)
		}
	}
	if img.Contains("usb_probe") {
		t.Error("closure image contains unreachable usb_probe")
	}
}

func TestBuildImageUnknownTraced(t *testing.T) {
	tbl := testTable(t)
	if _, err := tbl.BuildImage("x", map[string]bool{"ghost": true}, Exact); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("BuildImage unknown = %v", err)
	}
}

func TestCompareReduction(t *testing.T) {
	tbl := testTable(t)
	full := tbl.FullImage()
	traced := map[string]bool{
		"probe": true, "clk_enable": true, "pll_config": true,
		"pcm_read": true, "dma_start": true,
	}
	min, err := tbl.BuildImage("min", traced, Exact)
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	r := Compare(full, min)
	if r.FullFuncs != 7 || r.MinFuncs != 5 {
		t.Errorf("func counts = %d/%d", r.FullFuncs, r.MinFuncs)
	}
	wantLoCCut := 100 * float64(140) / float64(305)
	if diff := r.LoCCutPct - wantLoCCut; diff < -0.01 || diff > 0.01 {
		t.Errorf("LoCCutPct = %v, want %v", r.LoCCutPct, wantLoCCut)
	}
	if r.BytesCutPct <= 0 || r.FuncCutPct <= 0 {
		t.Error("cut percentages should be positive")
	}
}

func TestExcludeDirectives(t *testing.T) {
	tbl := testTable(t)
	traced := map[string]bool{
		"probe": true, "clk_enable": true, "pll_config": true,
		"pcm_read": true, "dma_start": true,
	}
	img, err := tbl.BuildImage("min", traced, Exact)
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	dirs := tbl.ExcludeDirectives(img)
	if len(dirs) != 2 {
		t.Fatalf("directives = %v, want 2 entries", dirs)
	}
	joined := strings.Join(dirs, " ")
	if !strings.Contains(joined, "-DCONFIG_EXCLUDE_USB_PROBE") ||
		!strings.Contains(joined, "-DCONFIG_EXCLUDE_USB_PARSE") {
		t.Errorf("directives = %v", dirs)
	}
}

func TestBreakdown(t *testing.T) {
	tbl := testTable(t)
	full := tbl.FullImage()
	bd := Breakdown(full)
	byModule := make(map[string]ModuleLoC)
	for _, m := range bd {
		byModule[m.Module] = m
	}
	if byModule["clock"].Funcs != 2 || byModule["clock"].LoC != 50 {
		t.Errorf("clock breakdown = %+v", byModule["clock"])
	}
	if byModule["usb-audio"].LoC != 140 {
		t.Errorf("usb breakdown = %+v", byModule["usb-audio"])
	}
	// Sorted by module name.
	for i := 1; i < len(bd); i++ {
		if bd[i-1].Module >= bd[i].Module {
			t.Error("breakdown not sorted")
		}
	}
}

func TestModulesAndFunctions(t *testing.T) {
	tbl := testTable(t)
	mods := tbl.Modules()
	if len(mods) != 5 {
		t.Errorf("Modules = %v", mods)
	}
	fns := tbl.Functions()
	if len(fns) != 7 || fns[0] != "probe" {
		t.Errorf("Functions = %v", fns)
	}
	if tbl.Len() != 7 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if _, ok := tbl.Meta("probe"); !ok {
		t.Error("Meta(probe) missing")
	}
	if callees := tbl.Callees("probe"); len(callees) != 1 || callees[0] != "clk_enable" {
		t.Errorf("Callees(probe) = %v", callees)
	}
}

func TestToUpperSnake(t *testing.T) {
	tests := []struct{ in, want string }{
		{"pcm_read", "PCM_READ"},
		{"usbProbe", "USBPROBE"},
		{"a-b.c", "A_B_C"},
	}
	for _, tt := range tests {
		if got := toUpperSnake(tt.in); got != tt.want {
			t.Errorf("toUpperSnake(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
