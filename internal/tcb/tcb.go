// Package tcb models the paper's TCB-minimization step (§IV.2): given the
// full driver function inventory and the minimal set identified by tracing,
// build the reduced "OP-TEE image" that would result from conditionally
// compiling out every unneeded function, and quantify the reduction.
//
// Two build policies are provided, reflecting the engineering trade-off the
// paper's approach implies:
//
//   - Exact: include exactly the traced functions. Smallest image, but an
//     untraced path (e.g. an error handler) would be missing.
//   - StaticClosure: include the traced functions plus everything reachable
//     from them in the static call graph. Safe superset.
package tcb

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by the package.
var (
	// ErrUnknownFunction is returned when a set references an unregistered
	// function.
	ErrUnknownFunction = errors.New("tcb: unknown function")
	// ErrMissingCallee is returned by Exact builds whose call graph escapes
	// the included set.
	ErrMissingCallee = errors.New("tcb: image missing statically required callee")
	// ErrDuplicate is returned when registering the same function twice.
	ErrDuplicate = errors.New("tcb: duplicate function")
)

// FuncMeta describes one driver function for size accounting.
type FuncMeta struct {
	Name   string
	Module string // driver sub-module, e.g. "clock", "pcm", "usb-audio"
	LoC    int    // source lines
	Bytes  int    // compiled size
}

// Table is the full function inventory plus the static call graph.
type Table struct {
	funcs map[string]FuncMeta
	graph map[string][]string
	order []string // registration order, for stable output
}

// NewTable creates an empty inventory.
func NewTable() *Table {
	return &Table{
		funcs: make(map[string]FuncMeta),
		graph: make(map[string][]string),
	}
}

// Add registers a function and its static callees. Callees may be
// registered later; Validate resolves forward references.
func (t *Table) Add(m FuncMeta, callees ...string) error {
	if _, ok := t.funcs[m.Name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, m.Name)
	}
	t.funcs[m.Name] = m
	t.graph[m.Name] = append([]string(nil), callees...)
	t.order = append(t.order, m.Name)
	return nil
}

// MustAdd is Add for static table construction; it panics on programmer
// error (duplicate registration), which is a startup-time bug, not a
// runtime condition.
func (t *Table) MustAdd(m FuncMeta, callees ...string) {
	if err := t.Add(m, callees...); err != nil {
		panic(err)
	}
}

// Validate checks that every call-graph edge targets a registered function.
func (t *Table) Validate() error {
	for fn, callees := range t.graph {
		for _, c := range callees {
			if _, ok := t.funcs[c]; !ok {
				return fmt.Errorf("%w: %s called by %s", ErrUnknownFunction, c, fn)
			}
		}
	}
	return nil
}

// Len returns the number of registered functions.
func (t *Table) Len() int { return len(t.funcs) }

// Meta returns a function's metadata.
func (t *Table) Meta(name string) (FuncMeta, bool) {
	m, ok := t.funcs[name]
	return m, ok
}

// Callees returns a copy of a function's static callees.
func (t *Table) Callees(name string) []string {
	return append([]string(nil), t.graph[name]...)
}

// Functions returns all function names in registration order.
func (t *Table) Functions() []string {
	return append([]string(nil), t.order...)
}

// Modules returns the distinct module names, sorted.
func (t *Table) Modules() []string {
	set := make(map[string]bool)
	for _, m := range t.funcs {
		set[m.Module] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Closure returns the set of functions reachable from roots through the
// static call graph (including the roots).
func (t *Table) Closure(roots []string) (map[string]bool, error) {
	out := make(map[string]bool)
	stack := make([]string, 0, len(roots))
	for _, r := range roots {
		if _, ok := t.funcs[r]; !ok {
			return nil, fmt.Errorf("%w: root %s", ErrUnknownFunction, r)
		}
		stack = append(stack, r)
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[fn] {
			continue
		}
		out[fn] = true
		stack = append(stack, t.graph[fn]...)
	}
	return out, nil
}

// Policy selects how an image is assembled from a traced set.
type Policy int

const (
	// Exact includes exactly the traced functions.
	Exact Policy = iota + 1
	// StaticClosure includes the traced functions plus static reachability.
	StaticClosure
)

// Image is a (possibly reduced) driver build destined for the OP-TEE image.
type Image struct {
	Name       string
	Policy     Policy
	Funcs      []FuncMeta // sorted by name
	TotalLoC   int
	TotalBytes int
}

// Contains reports whether the image includes the named function.
func (img Image) Contains(name string) bool {
	for _, f := range img.Funcs {
		if f.Name == name {
			return true
		}
	}
	return false
}

// FullImage returns the image containing every registered function — the
// "port the whole driver" baseline the paper argues against.
func (t *Table) FullImage() Image {
	include := make(map[string]bool, len(t.funcs))
	for n := range t.funcs {
		include[n] = true
	}
	img, _ := t.assemble("full", Exact, include) // full set is trivially closed
	return img
}

// BuildImage assembles an image from the traced minimal set under policy.
// Under Exact, a statically-required callee outside the set is an error
// (the conditional compilation would produce an undefined reference).
func (t *Table) BuildImage(name string, traced map[string]bool, p Policy) (Image, error) {
	for fn := range traced {
		if _, ok := t.funcs[fn]; !ok {
			return Image{}, fmt.Errorf("%w: traced %s", ErrUnknownFunction, fn)
		}
	}
	include := traced
	if p == StaticClosure {
		roots := make([]string, 0, len(traced))
		for fn := range traced {
			roots = append(roots, fn)
		}
		closed, err := t.Closure(roots)
		if err != nil {
			return Image{}, err
		}
		include = closed
	} else {
		for fn := range traced {
			for _, callee := range t.graph[fn] {
				if !traced[callee] {
					return Image{}, fmt.Errorf("%w: %s -> %s", ErrMissingCallee, fn, callee)
				}
			}
		}
	}
	return t.assemble(name, p, include)
}

func (t *Table) assemble(name string, p Policy, include map[string]bool) (Image, error) {
	img := Image{Name: name, Policy: p}
	for fn := range include {
		m, ok := t.funcs[fn]
		if !ok {
			return Image{}, fmt.Errorf("%w: %s", ErrUnknownFunction, fn)
		}
		img.Funcs = append(img.Funcs, m)
		img.TotalLoC += m.LoC
		img.TotalBytes += m.Bytes
	}
	sort.Slice(img.Funcs, func(i, j int) bool { return img.Funcs[i].Name < img.Funcs[j].Name })
	return img, nil
}

// ExcludeDirectives returns the conditional-compilation flags that strip
// every function outside the image, modelling the paper's "conditional
// compiler directives to selectively exclude driver functions".
func (t *Table) ExcludeDirectives(img Image) []string {
	inImage := make(map[string]bool, len(img.Funcs))
	for _, f := range img.Funcs {
		inImage[f.Name] = true
	}
	var out []string
	for _, fn := range t.order {
		if !inImage[fn] {
			out = append(out, "-DCONFIG_EXCLUDE_"+toUpperSnake(fn))
		}
	}
	return out
}

func toUpperSnake(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
			out = append(out, c-'a'+'A')
		case c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Reduction quantifies full-vs-minimal image shrinkage.
type Reduction struct {
	FullFuncs, MinFuncs   int
	FullLoC, MinLoC       int
	FullBytes, MinBytes   int
	FuncCutPct, LoCCutPct float64
	BytesCutPct           float64
}

// Compare computes the reduction from full to min.
func Compare(full, min Image) Reduction {
	r := Reduction{
		FullFuncs: len(full.Funcs), MinFuncs: len(min.Funcs),
		FullLoC: full.TotalLoC, MinLoC: min.TotalLoC,
		FullBytes: full.TotalBytes, MinBytes: min.TotalBytes,
	}
	if r.FullFuncs > 0 {
		r.FuncCutPct = 100 * float64(r.FullFuncs-r.MinFuncs) / float64(r.FullFuncs)
	}
	if r.FullLoC > 0 {
		r.LoCCutPct = 100 * float64(r.FullLoC-r.MinLoC) / float64(r.FullLoC)
	}
	if r.FullBytes > 0 {
		r.BytesCutPct = 100 * float64(r.FullBytes-r.MinBytes) / float64(r.FullBytes)
	}
	return r
}

// ModuleBreakdown sums LoC per module for an image, sorted by module name.
type ModuleLoC struct {
	Module string
	Funcs  int
	LoC    int
}

// Breakdown returns per-module totals for the image.
func Breakdown(img Image) []ModuleLoC {
	agg := make(map[string]*ModuleLoC)
	for _, f := range img.Funcs {
		m, ok := agg[f.Module]
		if !ok {
			m = &ModuleLoC{Module: f.Module}
			agg[f.Module] = m
		}
		m.Funcs++
		m.LoC += f.LoC
	}
	out := make([]ModuleLoC, 0, len(agg))
	for _, m := range agg {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Module < out[j].Module })
	return out
}
