package attest

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// Pack is one published model-pack version: the provider-trained
// classifier weights a device unseals into its TA. Payloads are opaque
// here — Text carries the speaker text-classifier weights, Image the
// doorbell person-detector weights — and the pack is addressed by the
// digest of its canonical encoding, which the per-device ManifestToken
// authenticates.
type Pack struct {
	// Version is the monotonically increasing pack version.
	Version uint64
	// ModelSeed is the training seed the weights were produced with;
	// devices rebuild their classifier skeleton from it before loading.
	ModelSeed uint64
	// Text and Image are the serialized classifier weights per device
	// class (either may be empty for a single-class fleet).
	Text  []byte
	Image []byte
}

// Encode renders the canonical wire form:
// version(8) | seed(8) | lenText(4) | text | lenImage(4) | image.
func (p Pack) Encode() []byte {
	out := make([]byte, 0, 8+8+4+len(p.Text)+4+len(p.Image))
	out = binary.LittleEndian.AppendUint64(out, p.Version)
	out = binary.LittleEndian.AppendUint64(out, p.ModelSeed)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Text)))
	out = append(out, p.Text...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Image)))
	out = append(out, p.Image...)
	return out
}

// DecodePack parses an Encode-d pack.
func DecodePack(b []byte) (Pack, error) {
	var p Pack
	if len(b) < 8+8+4 {
		return p, fmt.Errorf("%w: %d bytes", ErrBadPack, len(b))
	}
	p.Version = binary.LittleEndian.Uint64(b[:8])
	p.ModelSeed = binary.LittleEndian.Uint64(b[8:16])
	rest := b[16:]
	take := func() ([]byte, error) {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated payload", ErrBadPack)
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) < n {
			return nil, fmt.Errorf("%w: truncated payload", ErrBadPack)
		}
		out := rest[:n:n]
		rest = rest[n:]
		return out, nil
	}
	var err error
	if p.Text, err = take(); err != nil {
		return p, err
	}
	if p.Image, err = take(); err != nil {
		return p, err
	}
	if len(rest) != 0 {
		return p, fmt.Errorf("%w: %d trailing bytes", ErrBadPack, len(rest))
	}
	return p, nil
}

// Digest hashes the canonical encoding; this is the identity the
// manifest authenticates.
func (p Pack) Digest() Digest {
	return Digest(sha256.Sum256(p.Encode()))
}

// ManifestToken authorizes one pack version for one device; see
// Verifier.Manifest and Attestor.VerifyManifest.
type ManifestToken struct {
	DeviceID string
	Version  uint64
	Digest   Digest
	MAC      [32]byte
}

// Marshal serializes the token for transport through a TEE memref
// parameter: version(8) | digest(32) | idlen(2) | id | mac(32).
func (t ManifestToken) Marshal() []byte {
	out := make([]byte, 0, 8+32+2+len(t.DeviceID)+32)
	out = binary.LittleEndian.AppendUint64(out, t.Version)
	out = append(out, t.Digest[:]...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(t.DeviceID)))
	out = append(out, t.DeviceID...)
	out = append(out, t.MAC[:]...)
	return out
}

// UnmarshalManifestToken parses a Marshal-ed token.
func UnmarshalManifestToken(b []byte) (ManifestToken, error) {
	var t ManifestToken
	const fixed = 8 + 32 + 2
	if len(b) < fixed+32 {
		return t, fmt.Errorf("%w: %d bytes", ErrBadManifest, len(b))
	}
	t.Version = binary.LittleEndian.Uint64(b[:8])
	copy(t.Digest[:], b[8:40])
	idLen := int(binary.LittleEndian.Uint16(b[40:42]))
	if len(b) != fixed+idLen+32 {
		return t, fmt.Errorf("%w: length mismatch", ErrBadManifest)
	}
	t.DeviceID = string(b[fixed : fixed+idLen])
	copy(t.MAC[:], b[fixed+idLen:])
	return t, nil
}

// Rollout is the provider's staged model-distribution service. The
// fleet starts on a base pack; Publish stages a newer pack behind a
// canary quota: the first `canary` devices to ask for a target are
// granted the new version, everyone else keeps the base until every
// canary device has reported success, at which point the rollout opens
// to the full fleet (AwaitFull unblocks). Grant order is admission
// order, which makes the canary cohort the earliest-served devices.
// The caller decides who participates in staging: the fleet routes only
// classifier-exercising (secure-filter) devices through Target, so a
// canary success always means the new model actually ran.
type Rollout struct {
	mu   sync.Mutex
	cond *sync.Cond

	packs       map[uint64]Pack
	base        uint64
	latest      uint64
	canary      int
	granted     map[string]uint64 // device -> granted latest version
	succOK      map[string]bool   // canary devices that completed on latest
	full        bool
	aborted     bool
	abortReason string
}

// NewRollout creates the service with the fleet's base (already
// provisioned at build time) pack; with nothing published it hands the
// base pack to everyone.
func NewRollout(base Pack) *Rollout {
	r := &Rollout{
		packs:   map[uint64]Pack{base.Version: base},
		base:    base.Version,
		latest:  base.Version,
		full:    true,
		granted: make(map[string]uint64),
		succOK:  make(map[string]bool),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Publish stages pack p behind a canary quota (floored at 1). A quota
// of 0 or less opens the rollout to the full fleet immediately.
func (r *Rollout) Publish(p Pack, canary int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p.Version <= r.latest {
		return fmt.Errorf("%w: version %d not newer than %d", ErrBadPack, p.Version, r.latest)
	}
	r.packs[p.Version] = p
	r.latest = p.Version
	r.canary = canary
	r.full = canary <= 0
	r.granted = make(map[string]uint64)
	r.succOK = make(map[string]bool)
	if r.full {
		r.cond.Broadcast()
	}
	return nil
}

// LatestVersion returns the newest published version.
func (r *Rollout) LatestVersion() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.latest
}

// Target returns the pack the device should be running right now: the
// latest pack once the rollout is full (so a device joining mid-rollout
// gets the newest version), the latest pack if the device holds (or is
// granted) a canary slot, the base pack otherwise.
func (r *Rollout) Target(deviceID string) Pack {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return r.packs[r.latest]
	}
	if _, ok := r.granted[deviceID]; ok {
		return r.packs[r.latest]
	}
	if len(r.granted) < r.canary {
		r.granted[deviceID] = r.latest
		return r.packs[r.latest]
	}
	return r.packs[r.base]
}

// ReportSuccess records that the device completed its workload on the
// version it was granted. When every canary slot has reported, the
// rollout opens to the full fleet.
func (r *Rollout) ReportSuccess(deviceID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return
	}
	if _, ok := r.granted[deviceID]; !ok {
		return
	}
	r.succOK[deviceID] = true
	if len(r.succOK) >= r.canary {
		r.full = true
		r.cond.Broadcast()
	}
}

// Full reports whether the rollout is open to the whole fleet.
func (r *Rollout) Full() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.full
}

// AwaitFull blocks until the rollout opens to the full fleet (returning
// true) or is aborted (false). Devices that finished their workload on
// the base pack wait here for the canary verdict before converging.
func (r *Rollout) AwaitFull() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for !r.full && !r.aborted {
		r.cond.Wait()
	}
	return r.full
}

// Abort wakes all waiters without opening the rollout (a canary device
// failed, or the run is shutting down). The reason is recorded so every
// device held on the base pack can be attributed to it — an aborted
// rollout must leave a structured trail, not a silently stale fleet.
// The first reason wins; Abort after the rollout opened is a no-op for
// waiters (AwaitFull already returned true) but still records the
// reason.
func (r *Rollout) Abort(reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reason == "" {
		reason = "aborted"
	}
	if !r.aborted {
		r.aborted = true
		r.abortReason = reason
	}
	r.cond.Broadcast()
}

// Aborted reports whether the rollout was aborted, and why.
func (r *Rollout) Aborted() (bool, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aborted, r.abortReason
}
