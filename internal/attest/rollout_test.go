package attest

import (
	"errors"
	"sync"
	"testing"
)

func TestPackEncodeDecodeDigest(t *testing.T) {
	p := Pack{Version: 2, ModelSeed: 999, Text: []byte("text-weights"), Image: []byte("image-weights")}
	got, err := DecodePack(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != p.Version || got.ModelSeed != p.ModelSeed ||
		string(got.Text) != string(p.Text) || string(got.Image) != string(p.Image) {
		t.Fatalf("round trip: got %+v, want %+v", got, p)
	}
	if got.Digest() != p.Digest() {
		t.Fatal("digest changed across round trip")
	}
	tampered := p
	tampered.Text = []byte("text-weightX")
	if tampered.Digest() == p.Digest() {
		t.Fatal("tampered payload kept its digest")
	}
	if _, err := DecodePack(p.Encode()[:5]); !errors.Is(err, ErrBadPack) {
		t.Fatalf("truncated: got %v, want ErrBadPack", err)
	}
}

func TestManifestAuthorizesExactPayload(t *testing.T) {
	key := KeyFromSeed(55)
	keys := map[string]DeviceKey{"d0": key}
	v := NewVerifier(1, func(id string) (DeviceKey, bool) { k, ok := keys[id]; return k, ok })
	a := NewAttestor("d0", key)
	p := Pack{Version: 2, ModelSeed: 7, Text: []byte("weights")}

	tok, err := v.Manifest("d0", p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.VerifyManifest(tok, p); err != nil {
		t.Fatalf("legit manifest: %v", err)
	}
	// Token survives serialization.
	tok2, err := UnmarshalManifestToken(tok.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.VerifyManifest(tok2, p); err != nil {
		t.Fatalf("marshalled manifest: %v", err)
	}
	// Tampered payload under a valid token is rejected.
	bad := p
	bad.Text = []byte("weightX")
	if err := a.VerifyManifest(tok, bad); !errors.Is(err, ErrBadPack) {
		t.Fatalf("tampered pack: got %v, want ErrBadPack", err)
	}
	// A token MACed with the wrong key is rejected.
	forged := tok
	forged.MAC[0] ^= 0xff
	if err := a.VerifyManifest(forged, p); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("forged token: got %v, want ErrBadManifest", err)
	}
	// A token minted for another device is rejected.
	other := tok
	other.DeviceID = "d1"
	if err := a.VerifyManifest(other, p); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("wrong device: got %v, want ErrBadManifest", err)
	}
}

func TestRolloutStaging(t *testing.T) {
	base := Pack{Version: 1, ModelSeed: 10}
	next := Pack{Version: 2, ModelSeed: 20}
	r := NewRollout(base)
	if got := r.Target("a"); got.Version != 1 {
		t.Fatalf("pre-publish target v%d, want v1", got.Version)
	}
	if err := r.Publish(next, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(Pack{Version: 2}, 1); !errors.Is(err, ErrBadPack) {
		t.Fatalf("republish same version: got %v, want ErrBadPack", err)
	}

	// First two askers take the canary slots; the third holds at base.
	if got := r.Target("a"); got.Version != 2 {
		t.Fatalf("canary a got v%d", got.Version)
	}
	if got := r.Target("b"); got.Version != 2 {
		t.Fatalf("canary b got v%d", got.Version)
	}
	if got := r.Target("c"); got.Version != 1 {
		t.Fatalf("non-canary c got v%d, want v1", got.Version)
	}
	// Canary slots are sticky.
	if got := r.Target("a"); got.Version != 2 {
		t.Fatalf("repeat canary a got v%d", got.Version)
	}

	r.ReportSuccess("c") // non-canary success is a no-op
	if r.Full() {
		t.Fatal("rollout opened on a non-canary report")
	}
	r.ReportSuccess("a")
	if r.Full() {
		t.Fatal("rollout opened after 1/2 canary reports")
	}
	r.ReportSuccess("b")
	if !r.Full() {
		t.Fatal("rollout did not open after all canary reports")
	}
	// A device joining mid-rollout (after the canary verdict) gets the
	// newest version immediately.
	if got := r.Target("late-joiner"); got.Version != 2 {
		t.Fatalf("late joiner got v%d, want v2", got.Version)
	}
	if !r.AwaitFull() {
		t.Fatal("AwaitFull returned false on a full rollout")
	}
}

func TestRolloutAwaitAndAbort(t *testing.T) {
	r := NewRollout(Pack{Version: 1})
	if err := r.Publish(Pack{Version: 2}, 1); err != nil {
		t.Fatal(err)
	}
	_ = r.Target("canary")
	_ = r.Target("waiter")

	var wg sync.WaitGroup
	results := make([]bool, 2)
	wg.Add(1)
	go func() { defer wg.Done(); results[0] = r.AwaitFull() }()
	r.ReportSuccess("canary")
	wg.Wait()
	if !results[0] {
		t.Fatal("waiter woke without full rollout")
	}

	// Abort wakes waiters without opening the rollout.
	r2 := NewRollout(Pack{Version: 1})
	if err := r2.Publish(Pack{Version: 2}, 1); err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() { defer wg.Done(); results[1] = r2.AwaitFull() }()
	r2.Abort("canary failed")
	wg.Wait()
	if results[1] {
		t.Fatal("aborted waiter reported full rollout")
	}
	if aborted, reason := r2.Aborted(); !aborted || reason != "canary failed" {
		t.Fatalf("abort record = %v %q, want true %q", aborted, reason, "canary failed")
	}
	// The first reason wins.
	r2.Abort("second opinion")
	if _, reason := r2.Aborted(); reason != "canary failed" {
		t.Fatalf("abort reason overwritten: %q", reason)
	}
}
