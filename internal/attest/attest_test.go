package attest

import (
	"errors"
	"testing"
)

func testRegistry(t *testing.T) (map[string]DeviceKey, func(string) (DeviceKey, bool)) {
	t.Helper()
	keys := map[string]DeviceKey{
		"device-00000": KeyFromSeed(101),
		"device-00001": KeyFromSeed(102),
	}
	return keys, func(id string) (DeviceKey, bool) {
		k, ok := keys[id]
		return k, ok
	}
}

func TestAttestRoundTrip(t *testing.T) {
	keys, lookup := testRegistry(t)
	v := NewVerifier(7, lookup)
	m := Measurement{Code: MeasureCode("ta.voice.guard"), ModelVersion: 1}
	v.AllowMeasurement(m.Code, true)

	a := NewAttestor("device-00000", keys["device-00000"])
	nonce := v.Challenge("device-00000")
	rep := a.Attest(nonce, m)
	if err := v.Verify(rep); err != nil {
		t.Fatalf("verify: %v", err)
	}
	got, ok := v.Attested("device-00000")
	if !ok || got != m {
		t.Fatalf("attested = %+v, %v; want %+v", got, ok, m)
	}
	if err := v.Admit("device-00000"); err != nil {
		t.Fatalf("admit: %v", err)
	}
}

// TestReleaseRevokesAdmission: a device that releases its session (fleet
// churn: clean leave) is rejected at ingest until it re-attests.
func TestReleaseRevokesAdmission(t *testing.T) {
	keys, lookup := testRegistry(t)
	v := NewVerifier(7, lookup)
	m := Measurement{Code: MeasureCode("ta.voice.guard"), ModelVersion: 1}
	v.AllowMeasurement(m.Code, true)
	a := NewAttestor("device-00000", keys["device-00000"])

	if err := v.Verify(a.Attest(v.Challenge("device-00000"), m)); err != nil {
		t.Fatalf("verify: %v", err)
	}
	v.Release("device-00000")
	if err := v.Admit("device-00000"); !errors.Is(err, ErrUnattested) {
		t.Fatalf("released device admitted: %v", err)
	}
	if _, ok := v.Attested("device-00000"); ok {
		t.Fatal("released device still attested")
	}
	v.Release("device-00000") // idempotent
	// A fresh handshake restores admission.
	if err := v.Verify(a.Attest(v.Challenge("device-00000"), m)); err != nil {
		t.Fatalf("re-attest: %v", err)
	}
	if err := v.Admit("device-00000"); err != nil {
		t.Fatalf("re-admit: %v", err)
	}
}

func TestReplayRejected(t *testing.T) {
	keys, lookup := testRegistry(t)
	v := NewVerifier(7, lookup)
	code := MeasureCode("ta.voice.guard")
	v.AllowMeasurement(code, true)
	a := NewAttestor("device-00000", keys["device-00000"])

	nonce := v.Challenge("device-00000")
	rep := a.Attest(nonce, Measurement{Code: code, ModelVersion: 1})
	if err := v.Verify(rep); err != nil {
		t.Fatalf("first verify: %v", err)
	}
	// Replaying the identical (valid) report must fail: the nonce was
	// consumed.
	if err := v.Verify(rep); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay: got %v, want ErrReplay", err)
	}
	// A fresh challenge invalidates evidence minted for the old nonce.
	_ = v.Challenge("device-00000")
	if err := v.Verify(rep); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale nonce: got %v, want ErrReplay", err)
	}
}

func TestForgedReportRejected(t *testing.T) {
	keys, lookup := testRegistry(t)
	v := NewVerifier(7, lookup)
	code := MeasureCode("ta.voice.guard")
	v.AllowMeasurement(code, true)

	// Wrong key (device-00001's key signing for device-00000).
	imposter := NewAttestor("device-00000", keys["device-00001"])
	nonce := v.Challenge("device-00000")
	if err := v.Verify(imposter.Attest(nonce, Measurement{Code: code, ModelVersion: 1})); !errors.Is(err, ErrBadReport) {
		t.Fatalf("forged key: got %v, want ErrBadReport", err)
	}
	// Nonce was consumed by the failed attempt — no offline retry.
	legit := NewAttestor("device-00000", keys["device-00000"])
	if err := v.Verify(legit.Attest(nonce, Measurement{Code: code, ModelVersion: 1})); !errors.Is(err, ErrReplay) {
		t.Fatalf("burned nonce: got %v, want ErrReplay", err)
	}
	// Tampered measurement under a valid report breaks the MAC.
	nonce = v.Challenge("device-00000")
	rep := legit.Attest(nonce, Measurement{Code: code, ModelVersion: 1})
	rep.ModelVersion = 99
	if err := v.Verify(rep); !errors.Is(err, ErrBadReport) {
		t.Fatalf("tampered version: got %v, want ErrBadReport", err)
	}
}

func TestMeasurementPolicy(t *testing.T) {
	keys, lookup := testRegistry(t)
	v := NewVerifier(7, lookup)
	v.AllowMeasurement(MeasureCode("ta.voice.guard"), true)

	a := NewAttestor("device-00000", keys["device-00000"])
	nonce := v.Challenge("device-00000")
	rogue := a.Attest(nonce, Measurement{Code: MeasureCode("ta.evil"), ModelVersion: 1})
	if err := v.Verify(rogue); !errors.Is(err, ErrMeasurement) {
		t.Fatalf("unknown digest: got %v, want ErrMeasurement", err)
	}
	if err := v.Admit("device-00000"); !errors.Is(err, ErrUnattested) {
		t.Fatalf("admit after rejected report: got %v, want ErrUnattested", err)
	}
}

func TestStaleModelAdmission(t *testing.T) {
	keys, lookup := testRegistry(t)
	v := NewVerifier(7, lookup)
	code := MeasureCode("ta.voice.guard")
	baseline := MeasureCode("normal-world/baseline")
	v.AllowMeasurement(code, true)
	v.AllowMeasurement(baseline, false)

	a0 := NewAttestor("device-00000", keys["device-00000"])
	if err := v.Verify(a0.Attest(v.Challenge("device-00000"), Measurement{Code: code, ModelVersion: 1})); err != nil {
		t.Fatal(err)
	}
	a1 := NewAttestor("device-00001", keys["device-00001"])
	if err := v.Verify(a1.Attest(v.Challenge("device-00001"), Measurement{Code: baseline})); err != nil {
		t.Fatal(err)
	}

	v.SetMinVersion(2)
	if err := v.Admit("device-00000"); !errors.Is(err, ErrStaleModel) {
		t.Fatalf("stale device: got %v, want ErrStaleModel", err)
	}
	// Unversioned (baseline) digests are exempt from the version policy.
	if err := v.Admit("device-00001"); err != nil {
		t.Fatalf("baseline device: %v", err)
	}

	// Re-attesting at the minimum restores admission.
	if err := v.Verify(a0.Attest(v.Challenge("device-00000"), Measurement{Code: code, ModelVersion: 2})); err != nil {
		t.Fatal(err)
	}
	if err := v.Admit("device-00000"); err != nil {
		t.Fatalf("updated device: %v", err)
	}
	counts := v.VersionCounts()
	if counts[2] != 1 || len(counts) != 1 {
		t.Fatalf("version counts = %v, want map[2:1]", counts)
	}
}

func TestReportMarshalRoundTrip(t *testing.T) {
	keys, _ := testRegistry(t)
	a := NewAttestor("device-00000", keys["device-00000"])
	rep := a.Attest(Nonce{1, 2, 3}, Measurement{Code: MeasureCode("x"), ModelVersion: 42})
	got, err := UnmarshalReport(rep.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != rep {
		t.Fatalf("round trip: got %+v, want %+v", got, rep)
	}
	if _, err := UnmarshalReport(rep.Marshal()[:10]); !errors.Is(err, ErrBadReport) {
		t.Fatalf("truncated: got %v, want ErrBadReport", err)
	}
}
