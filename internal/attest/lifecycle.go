package attest

// Attestation lifecycle: key rotation and revocation.
//
// Enrollment is no longer forever. The verifier (the provisioning
// authority) can advance a device's attestation key one *epoch* at a
// time: Rotate mints a RotationToken MACed under the device's current
// epoch key, the device redeems it inside its TEE (CmdRotateKey), and
// from then on evidence is signed under KeyForEpoch(base, epoch+1). The
// old epoch stays honored for one grace window — until the device's
// first successful verification at the new epoch — so a handshake in
// flight when the rotation was issued never fails. A leaked epoch key is
// therefore only useful until the next rotation; the enrollment key
// itself (the HUK-derived epoch-0 key) never travels.
//
// Revocation is the stronger hammer: Revoke puts a device on the
// verifier's revocation list, which the per-frame admission gate checks
// first — a revoked device's frames are *rejected* (ErrRevoked through
// cloud.ErrRejected, counted in ShardStats.Rejected), never merely shed,
// and the device cannot re-attest or rotate until Reinstate lifts the
// entry and a fresh handshake restores admission.

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// RotationToken authorizes one key-epoch advance for one device. It is
// MACed under the device's *current* epoch key (only the provisioning
// authority — which tracks the device's epoch — can mint one), and names
// the epoch the device must advance to.
type RotationToken struct {
	DeviceID string
	NewEpoch uint64
	MAC      [32]byte
}

// rotationMAC binds (device, new epoch) under the current-epoch key.
func rotationMAC(current DeviceKey, deviceID string, newEpoch uint64) []byte {
	h := hmac.New(sha256.New, current[:])
	h.Write([]byte("periguard-rotate-v1"))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], newEpoch)
	h.Write(buf[:])
	h.Write([]byte(deviceID))
	return h.Sum(nil)
}

// Marshal serializes the token for transport through a TEE memref
// parameter: epoch(8) | idlen(2) | id | mac(32).
func (t RotationToken) Marshal() []byte {
	out := make([]byte, 0, 8+2+len(t.DeviceID)+32)
	out = binary.LittleEndian.AppendUint64(out, t.NewEpoch)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(t.DeviceID)))
	out = append(out, t.DeviceID...)
	out = append(out, t.MAC[:]...)
	return out
}

// UnmarshalRotationToken parses a Marshal-ed token.
func UnmarshalRotationToken(b []byte) (RotationToken, error) {
	var t RotationToken
	const fixed = 8 + 2
	if len(b) < fixed+32 {
		return t, fmt.Errorf("%w: %d bytes", ErrBadRotation, len(b))
	}
	t.NewEpoch = binary.LittleEndian.Uint64(b[:8])
	idLen := int(binary.LittleEndian.Uint16(b[8:10]))
	if len(b) != fixed+idLen+32 {
		return t, fmt.Errorf("%w: length mismatch", ErrBadRotation)
	}
	t.DeviceID = string(b[fixed : fixed+idLen])
	copy(t.MAC[:], b[fixed+idLen:])
	return t, nil
}
