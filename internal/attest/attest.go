// Package attest implements remote attestation and authenticated model
// provisioning for the device fleet — the two pieces of glue the
// edge-to-cloud confidential-computing literature places between device
// enclaves and cloud services: before a provider ingests a single event
// from a device, the device proves *what code it runs* and *which model
// pack it holds*; and when the provider publishes a new model version,
// devices accept it only after checking it against a manifest
// authenticated with their own device key.
//
// The trust model mirrors symmetric-key TrustZone attestation: each
// device owns a unique attestation key derived from its hardware unique
// key (here: a seed derived from the fleet root seed, see
// core.DeriveSeed), and the provisioning authority — which enrolled the
// device — knows the same key. Evidence is an HMAC-SHA256 over a
// verifier-issued challenge nonce, the TA code digest and the model-pack
// version, so a report cannot be replayed (nonces are single-use), forged
// (MAC), or issued for tampered code (digest policy). The Verifier doubles
// as the ingest-tier admission gate: shards consult it on every frame and
// reject traffic from devices that never attested or attested with a
// model older than the fleet's minimum version.
//
// Model rollout rides on the same keys: a Pack is a versioned, digest-
// addressed bundle of classifier weights, and a ManifestToken is the
// verifier's per-device MAC over (version, digest). A device accepts a
// pack only if the token verifies under its own key and the pack's
// recomputed digest matches — a tampered payload or a forged manifest is
// rejected inside the TEE before anything touches sealed storage. Rollout
// staging (canary cohort, then the full fleet) lives in Rollout.
package attest

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by the package.
var (
	// ErrBadReport is returned for malformed or wrongly-MACed reports.
	ErrBadReport = errors.New("attest: bad report")
	// ErrReplay is returned when a report reuses a consumed nonce.
	ErrReplay = errors.New("attest: replayed nonce")
	// ErrUnknownDevice is returned when no key is enrolled for a device.
	ErrUnknownDevice = errors.New("attest: unknown device")
	// ErrMeasurement is returned when the reported code digest is not in
	// the verifier's allowed set.
	ErrMeasurement = errors.New("attest: measurement rejected")
	// ErrUnattested is returned by the admission gate for devices that
	// never produced a valid report.
	ErrUnattested = errors.New("attest: device not attested")
	// ErrStaleModel is returned by the admission gate for devices attested
	// with a model pack older than the fleet minimum.
	ErrStaleModel = errors.New("attest: stale model version")
	// ErrBadManifest is returned when a manifest token fails to verify.
	ErrBadManifest = errors.New("attest: bad manifest")
	// ErrBadPack is returned for undecodable or digest-mismatched packs.
	ErrBadPack = errors.New("attest: bad model pack")
	// ErrRevoked is returned by the admission gate (and by Verify) for
	// devices on the revocation list: a revoked identity may not ingest,
	// attest or rotate until it is reinstated.
	ErrRevoked = errors.New("attest: device revoked")
	// ErrKeyEpoch is returned when a report is signed under a key epoch
	// the verifier no longer (or does not yet) accept.
	ErrKeyEpoch = errors.New("attest: key epoch rejected")
	// ErrBadRotation is returned for rotation tokens that fail to verify
	// or do not advance the device's key epoch by exactly one.
	ErrBadRotation = errors.New("attest: bad rotation token")
)

// DeviceKey is a device's symmetric attestation key, shared between the
// device's TEE and the provisioning authority that enrolled it.
type DeviceKey [32]byte

// KeyFromSeed expands a derived seed (core.DeriveSeed output) into a
// DeviceKey — the device's epoch-0 enrollment key. Both the device and
// the verifier derive the same key from the same enrollment seed.
func KeyFromSeed(seed uint64) DeviceKey {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	return DeviceKey(sha256.Sum256(append([]byte("periguard-attest-key-v1:"), buf[:]...)))
}

// KeyForEpoch derives the attestation key for a key epoch from the
// enrollment (epoch-0) key. Rotation advances a device one epoch at a
// time: a leaked epoch key signs only until the next rotation, while the
// enrollment key itself never travels — it lives with the device's
// hardware unique key and the provisioning authority that enrolled it.
func KeyForEpoch(base DeviceKey, epoch uint64) DeviceKey {
	if epoch == 0 {
		return base
	}
	h := hmac.New(sha256.New, base[:])
	h.Write([]byte("periguard-key-epoch-v1"))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], epoch)
	h.Write(buf[:])
	var out DeviceKey
	copy(out[:], h.Sum(nil))
	return out
}

// Digest identifies a measured code image (a TA binary).
type Digest [32]byte

// MeasureCode produces the deterministic code digest for a component —
// the simulation's stand-in for hashing the TA image at load time.
func MeasureCode(parts ...string) Digest {
	h := sha256.New()
	h.Write([]byte("periguard-code-v1"))
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// Nonce is a single-use verifier challenge.
type Nonce [16]byte

// Measurement is what a device claims about itself: the code identity of
// its TA and the version of the model pack it currently holds.
type Measurement struct {
	Code         Digest
	ModelVersion uint64
}

// Report is one piece of attestation evidence: a measurement bound to a
// challenge nonce and a device identity under the device key. KeyEpoch
// names the key epoch the MAC was produced under, so the verifier knows
// which derived key to check — and can keep honoring the previous epoch
// for the grace window a rotation opens.
type Report struct {
	DeviceID string
	Nonce    Nonce
	Measurement
	KeyEpoch uint64
	MAC      [32]byte
}

// reportMAC computes the evidence MAC.
func reportMAC(key DeviceKey, deviceID string, nonce Nonce, m Measurement, epoch uint64) [32]byte {
	h := hmac.New(sha256.New, key[:])
	h.Write([]byte("periguard-report-v2"))
	h.Write(nonce[:])
	h.Write(m.Code[:])
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], m.ModelVersion)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], epoch)
	h.Write(buf[:])
	h.Write([]byte(deviceID))
	var mac [32]byte
	copy(mac[:], h.Sum(nil))
	return mac
}

// Marshal serializes the report for transport through a TEE memref
// parameter: nonce(16) | code(32) | version(8) | epoch(8) | idlen(2) |
// id | mac(32).
func (r Report) Marshal() []byte {
	out := make([]byte, 0, 16+32+8+8+2+len(r.DeviceID)+32)
	out = append(out, r.Nonce[:]...)
	out = append(out, r.Code[:]...)
	out = binary.LittleEndian.AppendUint64(out, r.ModelVersion)
	out = binary.LittleEndian.AppendUint64(out, r.KeyEpoch)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(r.DeviceID)))
	out = append(out, r.DeviceID...)
	out = append(out, r.MAC[:]...)
	return out
}

// UnmarshalReport parses a Marshal-ed report.
func UnmarshalReport(b []byte) (Report, error) {
	var r Report
	const fixed = 16 + 32 + 8 + 8 + 2
	if len(b) < fixed+32 {
		return r, fmt.Errorf("%w: %d bytes", ErrBadReport, len(b))
	}
	copy(r.Nonce[:], b[:16])
	copy(r.Code[:], b[16:48])
	r.ModelVersion = binary.LittleEndian.Uint64(b[48:56])
	r.KeyEpoch = binary.LittleEndian.Uint64(b[56:64])
	idLen := int(binary.LittleEndian.Uint16(b[64:66]))
	if len(b) != fixed+idLen+32 {
		return r, fmt.Errorf("%w: length mismatch", ErrBadReport)
	}
	r.DeviceID = string(b[fixed : fixed+idLen])
	copy(r.MAC[:], b[fixed+idLen:])
	return r, nil
}

// Attestor is the device-side signer. It lives with the device key —
// inside the TEE for secure devices, in the device agent for the
// baseline deployments that have no TEE to measure (their "software
// attestation" is exactly as trustworthy as the normal world, which the
// verifier's digest policy makes explicit).
type Attestor struct {
	deviceID string
	base     DeviceKey // epoch-0 enrollment key (stands in for the HUK)
	epoch    uint64
	key      DeviceKey // KeyForEpoch(base, epoch)
}

// NewAttestor binds a device identity to its enrollment key (epoch 0).
func NewAttestor(deviceID string, key DeviceKey) *Attestor {
	return &Attestor{deviceID: deviceID, base: key, key: key}
}

// NewAttestorAtEpoch binds a device identity to its enrollment key with
// the key already rotated to the given epoch (a device restoring a
// sealed epoch record at boot).
func NewAttestorAtEpoch(deviceID string, base DeviceKey, epoch uint64) *Attestor {
	return &Attestor{deviceID: deviceID, base: base, epoch: epoch, key: KeyForEpoch(base, epoch)}
}

// DeviceID returns the bound identity.
func (a *Attestor) DeviceID() string { return a.deviceID }

// Epoch returns the key epoch the attestor currently signs under.
func (a *Attestor) Epoch() uint64 { return a.epoch }

// AtEpoch returns the attestor advanced (or rewound) to the given
// epoch's key — how a TA restores a sealed key-epoch record at boot.
func (a *Attestor) AtEpoch(epoch uint64) *Attestor {
	if epoch == a.epoch {
		return a
	}
	return NewAttestorAtEpoch(a.deviceID, a.base, epoch)
}

// Attest signs the measurement over the challenge nonce with the current
// epoch key.
func (a *Attestor) Attest(nonce Nonce, m Measurement) Report {
	return Report{
		DeviceID:    a.deviceID,
		Nonce:       nonce,
		Measurement: m,
		KeyEpoch:    a.epoch,
		MAC:         reportMAC(a.key, a.deviceID, nonce, m, a.epoch),
	}
}

// Rotated redeems a rotation token: the token must MAC-verify under the
// attestor's *current* key and advance the epoch by exactly one. The
// attestor is immutable; the caller (a TA, under its own lock) swaps in
// the returned successor so concurrent report signing never observes a
// half-rotated key.
func (a *Attestor) Rotated(tok RotationToken) (*Attestor, error) {
	if tok.DeviceID != a.deviceID {
		return nil, fmt.Errorf("%w: token for %q, device is %q", ErrBadRotation, tok.DeviceID, a.deviceID)
	}
	if tok.NewEpoch != a.epoch+1 {
		return nil, fmt.Errorf("%w: token epoch %d, device at %d", ErrBadRotation, tok.NewEpoch, a.epoch)
	}
	if !hmac.Equal(tok.MAC[:], rotationMAC(a.key, a.deviceID, tok.NewEpoch)) {
		return nil, fmt.Errorf("%w: bad MAC", ErrBadRotation)
	}
	return NewAttestorAtEpoch(a.deviceID, a.base, tok.NewEpoch), nil
}

// VerifyManifest checks a rollout manifest token against the device key
// and a candidate pack: the token must MAC-verify for this device, name
// the pack's version, and carry the digest the pack's payload actually
// hashes to. A pack tampered in transit (or a manifest forged without
// the key) fails here, before anything is persisted.
func (a *Attestor) VerifyManifest(tok ManifestToken, p Pack) error {
	if tok.DeviceID != a.deviceID {
		return fmt.Errorf("%w: token for %q, device is %q", ErrBadManifest, tok.DeviceID, a.deviceID)
	}
	if !hmac.Equal(tok.MAC[:], manifestMAC(a.key, tok.DeviceID, tok.Version, tok.Digest)) {
		return fmt.Errorf("%w: bad MAC", ErrBadManifest)
	}
	if tok.Version != p.Version {
		return fmt.Errorf("%w: token version %d, pack version %d", ErrBadManifest, tok.Version, p.Version)
	}
	if got := p.Digest(); got != tok.Digest {
		return fmt.Errorf("%w: payload digest mismatch", ErrBadPack)
	}
	return nil
}
