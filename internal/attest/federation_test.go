package attest

import (
	"errors"
	"testing"
)

func testFederation(t *testing.T) (map[string]DeviceKey, *Federation) {
	t.Helper()
	keys, lookup := testRegistry(t)
	code := MeasureCode("ta.voice.guard")
	fed := NewFederation(nil)
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		v := NewVerifier(7, lookup)
		v.AllowMeasurement(code, true)
		fed.AddTenant(tenant, v)
	}
	return keys, fed
}

// TestFederationRoutesByTenant: a device attested with its tenant's
// verifier is admitted under that tenant label only — another tenant's
// verifier has never seen it.
func TestFederationRoutesByTenant(t *testing.T) {
	keys, fed := testFederation(t)
	code := MeasureCode("ta.voice.guard")
	m := Measurement{Code: code, ModelVersion: 1}
	a := NewAttestor("device-00000", keys["device-00000"])
	va := fed.Tenant("tenant-a")
	if err := va.Verify(a.Attest(va.Challenge("device-00000"), m)); err != nil {
		t.Fatal(err)
	}

	if err := fed.AdmitTenant("device-00000", "tenant-a"); err != nil {
		t.Fatalf("own tenant: %v", err)
	}
	if err := fed.AdmitTenant("device-00000", "tenant-b"); !errors.Is(err, ErrUnattested) {
		t.Fatalf("foreign tenant: got %v, want ErrUnattested", err)
	}
	// Unlabelled or unclaimed traffic falls back to admit-nothing.
	if err := fed.Admit("device-00000"); !errors.Is(err, ErrUnattested) {
		t.Fatalf("unlabelled: got %v, want ErrUnattested", err)
	}
	if err := fed.AdmitTenant("device-00000", "tenant-zz"); !errors.Is(err, ErrUnattested) {
		t.Fatalf("unclaimed tenant: got %v, want ErrUnattested", err)
	}
	if got := fed.Tenants(); len(got) != 2 || got[0] != "tenant-a" || got[1] != "tenant-b" {
		t.Fatalf("tenants: %v", got)
	}
}

// TestFederationPoliciesIndependent: one tenant's revocation list and
// minimum-version floor never leak into another tenant's admission.
func TestFederationPoliciesIndependent(t *testing.T) {
	keys, fed := testFederation(t)
	code := MeasureCode("ta.voice.guard")
	m := Measurement{Code: code, ModelVersion: 1}
	va, vb := fed.Tenant("tenant-a"), fed.Tenant("tenant-b")

	a := NewAttestor("device-00000", keys["device-00000"])
	b := NewAttestor("device-00001", keys["device-00001"])
	if err := va.Verify(a.Attest(va.Challenge("device-00000"), m)); err != nil {
		t.Fatal(err)
	}
	if err := vb.Verify(b.Attest(vb.Challenge("device-00001"), m)); err != nil {
		t.Fatal(err)
	}

	// Tenant A revokes its device: only tenant A's admission changes.
	va.Revoke("device-00000", "compromised")
	if err := fed.AdmitTenant("device-00000", "tenant-a"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked in own tenant: got %v, want ErrRevoked", err)
	}
	if err := fed.AdmitTenant("device-00001", "tenant-b"); err != nil {
		t.Fatalf("tenant B unaffected by A's revocation: %v", err)
	}

	// Tenant B raises its model-version floor: tenant A's devices keep
	// their own floor.
	vb.SetMinVersion(2)
	if err := fed.AdmitTenant("device-00001", "tenant-b"); !errors.Is(err, ErrStaleModel) {
		t.Fatalf("stale under B's floor: got %v, want ErrStaleModel", err)
	}
	va.Reinstate("device-00000")
	if err := va.Verify(a.Attest(va.Challenge("device-00000"), m)); err != nil {
		t.Fatal(err)
	}
	if err := fed.AdmitTenant("device-00000", "tenant-a"); err != nil {
		t.Fatalf("tenant A floor must be its own: %v", err)
	}

	// Key epochs are tenant-owned too: A rotates its device, B's epoch
	// expectations are untouched.
	if _, err := va.Rotate("device-00000"); err != nil {
		t.Fatal(err)
	}
	if got := va.KeyEpoch("device-00000"); got != 1 {
		t.Fatalf("tenant A epoch %d, want 1", got)
	}
	if got := vb.KeyEpoch("device-00000"); got != 0 {
		t.Fatalf("tenant B epoch %d, want 0", got)
	}

	if n := fed.AttestedCount(); n != 2 {
		t.Fatalf("attested count %d, want 2", n)
	}
	by := fed.AttestedByTenant()
	if by["tenant-a"] != 1 || by["tenant-b"] != 1 {
		t.Fatalf("attested by tenant: %v", by)
	}
}
