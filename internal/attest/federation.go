package attest

// Per-tenant verifier federation. A multi-tenant provider cannot run one
// trust root for everyone: tenants enroll their own devices, accept
// different TA builds, raise their model-version floor on their own
// schedule and revoke their own compromised devices. Federation is the
// routing layer that gives each tenant its own Verifier — digest policy,
// minimum version, key epochs and revocation list all tenant-owned —
// while presenting the ingest tier with a single admission gate keyed by
// the tenant label the frontend already reads from the connection
// (cloud.FrameMeta.Tenant; sealed frame content never drives routing).
//
// Frames with no tenant label (or a label no verifier claims) fall back
// to the fallback verifier. The fleet wires an empty verifier there, so
// an unlabelled or mislabelled client is rejected as unattested rather
// than silently admitted under someone else's policy.

import (
	"sort"
	"sync"
)

// Federation routes attestation and admission by tenant. It implements
// cloud.AdmissionGate (Admit, via the fallback) and the tenant-aware
// extension cloud.TenantAdmissionGate (AdmitTenant).
type Federation struct {
	mu       sync.RWMutex
	tenants  map[string]*Verifier
	fallback *Verifier
}

// NewFederation creates a federation with the given fallback verifier
// for unlabelled or unclaimed tenants (nil installs an empty verifier
// that admits nothing).
func NewFederation(fallback *Verifier) *Federation {
	if fallback == nil {
		fallback = NewVerifier(0, func(string) (DeviceKey, bool) { return DeviceKey{}, false })
	}
	return &Federation{tenants: make(map[string]*Verifier), fallback: fallback}
}

// AddTenant installs (or replaces) a tenant's verifier.
func (f *Federation) AddTenant(tenant string, v *Verifier) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tenants[tenant] = v
}

// Tenant returns the verifier owning the tenant label, falling back for
// labels no tenant claims.
func (f *Federation) Tenant(tenant string) *Verifier {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if v, ok := f.tenants[tenant]; ok {
		return v
	}
	return f.fallback
}

// Tenants returns the claimed tenant labels in sorted order.
func (f *Federation) Tenants() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.tenants))
	for t := range f.tenants {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Admit implements cloud.AdmissionGate for frames that carry no tenant
// metadata: only the fallback verifier's state applies.
func (f *Federation) Admit(deviceID string) error {
	return f.Tenant("").Admit(deviceID)
}

// AdmitTenant implements cloud.TenantAdmissionGate: the frame is judged
// by its tenant's verifier alone — one tenant's revocations, minimum
// version or digest policy never leak into another's admission.
func (f *Federation) AdmitTenant(deviceID, tenant string) error {
	return f.Tenant(tenant).Admit(deviceID)
}

// AttestedCount sums attested devices across every tenant verifier and
// the fallback.
func (f *Federation) AttestedCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := f.fallback.AttestedCount()
	for _, v := range f.tenants {
		n += v.AttestedCount()
	}
	return n
}

// AttestedByTenant tallies attested devices per tenant label.
func (f *Federation) AttestedByTenant() map[string]int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]int, len(f.tenants))
	for t, v := range f.tenants {
		out[t] = v.AttestedCount()
	}
	return out
}
