package attest

import (
	"errors"
	"sync"
	"testing"
)

// TestKeyRotationGraceWindow: after Rotate the verifier expects the new
// epoch but honors the old one until the device's first successful
// verification at the new epoch — an in-flight handshake never fails —
// after which the old epoch key is dead.
func TestKeyRotationGraceWindow(t *testing.T) {
	keys, lookup := testRegistry(t)
	v := NewVerifier(7, lookup)
	code := MeasureCode("ta.voice.guard")
	v.AllowMeasurement(code, true)
	m := Measurement{Code: code, ModelVersion: 1}
	old := NewAttestor("device-00000", keys["device-00000"])

	tok, err := v.Rotate("device-00000")
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if tok.NewEpoch != 1 || v.KeyEpoch("device-00000") != 1 {
		t.Fatalf("epoch after rotate: token %d, verifier %d", tok.NewEpoch, v.KeyEpoch("device-00000"))
	}
	// The handshake in flight at the old epoch still verifies (grace).
	if err := v.Verify(old.Attest(v.Challenge("device-00000"), m)); err != nil {
		t.Fatalf("old-epoch report in grace window: %v", err)
	}
	if err := v.Admit("device-00000"); err != nil {
		t.Fatalf("admit during grace: %v", err)
	}

	// The device redeems the token and re-attests at the new epoch.
	rotated, err := old.Rotated(tok)
	if err != nil {
		t.Fatalf("redeem: %v", err)
	}
	if rotated.Epoch() != 1 {
		t.Fatalf("rotated epoch %d, want 1", rotated.Epoch())
	}
	if err := v.Verify(rotated.Attest(v.Challenge("device-00000"), m)); err != nil {
		t.Fatalf("new-epoch report: %v", err)
	}

	// The grace window is closed: old-epoch evidence is dead.
	if err := v.Verify(old.Attest(v.Challenge("device-00000"), m)); !errors.Is(err, ErrKeyEpoch) {
		t.Fatalf("old-epoch report after grace closed: got %v, want ErrKeyEpoch", err)
	}

	// Rotations chain: the next epoch's token verifies only under the
	// current (epoch-1) key.
	tok2, err := v.Rotate("device-00000")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.Rotated(tok2); !errors.Is(err, ErrBadRotation) {
		t.Fatalf("epoch-0 attestor redeeming epoch-2 token: got %v, want ErrBadRotation", err)
	}
	rotated2, err := rotated.Rotated(tok2)
	if err != nil {
		t.Fatalf("chained redeem: %v", err)
	}
	if rotated2.Epoch() != 2 {
		t.Fatalf("chained epoch %d, want 2", rotated2.Epoch())
	}
}

// TestRotateRetryReusesOutstandingToken: while a rotation is
// unredeemed (grace window open), a retried Rotate re-mints the same
// token instead of advancing the epoch again — a retried campaign can
// neither wedge the device past what it can redeem nor kill the grace
// window its in-flight evidence relies on.
func TestRotateRetryReusesOutstandingToken(t *testing.T) {
	keys, lookup := testRegistry(t)
	v := NewVerifier(7, lookup)
	code := MeasureCode("ta.voice.guard")
	v.AllowMeasurement(code, true)
	m := Measurement{Code: code, ModelVersion: 1}
	a := NewAttestor("device-00000", keys["device-00000"])

	tok1, err := v.Rotate("device-00000")
	if err != nil {
		t.Fatal(err)
	}
	tok2, err := v.Rotate("device-00000")
	if err != nil {
		t.Fatal(err)
	}
	if tok2 != tok1 {
		t.Fatalf("retried rotate minted a different token: %+v vs %+v", tok2, tok1)
	}
	if v.KeyEpoch("device-00000") != 1 {
		t.Fatalf("epoch advanced to %d across a retry", v.KeyEpoch("device-00000"))
	}
	// In-flight old-epoch evidence still verifies after the retry.
	if err := v.Verify(a.Attest(v.Challenge("device-00000"), m)); err != nil {
		t.Fatalf("grace window lost to a retried rotate: %v", err)
	}
	// The retried token redeems, and once the device verifies at the new
	// epoch a further Rotate advances again.
	rotated, err := a.Rotated(tok2)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(rotated.Attest(v.Challenge("device-00000"), m)); err != nil {
		t.Fatal(err)
	}
	tok3, err := v.Rotate("device-00000")
	if err != nil {
		t.Fatal(err)
	}
	if tok3.NewEpoch != 2 {
		t.Fatalf("post-redeem rotate minted epoch %d, want 2", tok3.NewEpoch)
	}
}

// TestRotationTokenForgery: a token MACed under the wrong key, replayed
// for the wrong device, or skipping an epoch is rejected.
func TestRotationTokenForgery(t *testing.T) {
	keys, lookup := testRegistry(t)
	v := NewVerifier(7, lookup)
	a := NewAttestor("device-00000", keys["device-00000"])

	// Forged MAC (another device's key).
	forged := RotationToken{DeviceID: "device-00000", NewEpoch: 1}
	copy(forged.MAC[:], rotationMAC(keys["device-00001"], "device-00000", 1))
	if _, err := a.Rotated(forged); !errors.Is(err, ErrBadRotation) {
		t.Fatalf("forged MAC: got %v, want ErrBadRotation", err)
	}

	tok, err := v.Rotate("device-00000")
	if err != nil {
		t.Fatal(err)
	}
	// Wrong device.
	other := NewAttestor("device-00001", keys["device-00001"])
	if _, err := other.Rotated(tok); !errors.Is(err, ErrBadRotation) {
		t.Fatalf("cross-device token: got %v, want ErrBadRotation", err)
	}
	// Replay after redeeming: the attestor has advanced, the token names
	// a stale epoch.
	rotated, err := a.Rotated(tok)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rotated.Rotated(tok); !errors.Is(err, ErrBadRotation) {
		t.Fatalf("token replay: got %v, want ErrBadRotation", err)
	}
	// Unknown device at the authority.
	if _, err := v.Rotate("device-99999"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("unknown device: got %v, want ErrUnknownDevice", err)
	}
}

func TestRotationTokenMarshalRoundTrip(t *testing.T) {
	tok := RotationToken{DeviceID: "device-00000", NewEpoch: 3}
	copy(tok.MAC[:], rotationMAC(KeyFromSeed(1), "device-00000", 3))
	got, err := UnmarshalRotationToken(tok.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != tok {
		t.Fatalf("round trip: got %+v, want %+v", got, tok)
	}
	if _, err := UnmarshalRotationToken(tok.Marshal()[:5]); !errors.Is(err, ErrBadRotation) {
		t.Fatalf("truncated: got %v, want ErrBadRotation", err)
	}
}

// TestRevocationLifecycle: revocation kills admission immediately and
// blocks re-attestation and rotation until Reinstate; a reinstated
// device stays unadmitted until a fresh handshake.
func TestRevocationLifecycle(t *testing.T) {
	keys, lookup := testRegistry(t)
	v := NewVerifier(7, lookup)
	code := MeasureCode("ta.voice.guard")
	v.AllowMeasurement(code, true)
	m := Measurement{Code: code, ModelVersion: 1}
	a := NewAttestor("device-00000", keys["device-00000"])

	if err := v.Verify(a.Attest(v.Challenge("device-00000"), m)); err != nil {
		t.Fatal(err)
	}
	v.Revoke("device-00000", "exfiltrated key suspected")

	if err := v.Admit("device-00000"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("admit after revoke: got %v, want ErrRevoked", err)
	}
	if err := v.Verify(a.Attest(v.Challenge("device-00000"), m)); !errors.Is(err, ErrRevoked) {
		t.Fatalf("re-attest while revoked: got %v, want ErrRevoked", err)
	}
	if _, err := v.Rotate("device-00000"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("rotate while revoked: got %v, want ErrRevoked", err)
	}
	if reason, ok := v.Revoked("device-00000"); !ok || reason != "exfiltrated key suspected" {
		t.Fatalf("revocation entry: %q, %v", reason, ok)
	}
	if v.RevokedCount() != 1 {
		t.Fatalf("revoked count %d", v.RevokedCount())
	}

	// Reinstate lifts the entry but does not re-admit: the device must
	// produce fresh evidence first (the re-admit drill).
	v.Reinstate("device-00000")
	if err := v.Admit("device-00000"); !errors.Is(err, ErrUnattested) {
		t.Fatalf("admit after reinstate, before re-attest: got %v, want ErrUnattested", err)
	}
	if err := v.Verify(a.Attest(v.Challenge("device-00000"), m)); err != nil {
		t.Fatalf("re-attest after reinstate: %v", err)
	}
	if err := v.Admit("device-00000"); err != nil {
		t.Fatalf("re-admit: %v", err)
	}
}

// TestAdmissionLifecycleRace hammers the per-frame admission path while
// Release, Revoke, Reinstate, Rotate and re-attestation run concurrently
// — the -race coverage the sequential TestReleaseRevokesAdmission never
// had. The assertion is freedom from data races plus a consistent final
// state once the writers settle.
func TestAdmissionLifecycleRace(t *testing.T) {
	keys, lookup := testRegistry(t)
	v := NewVerifier(7, lookup)
	code := MeasureCode("ta.voice.guard")
	v.AllowMeasurement(code, true)
	m := Measurement{Code: code, ModelVersion: 1}
	const id = "device-00000"
	a := NewAttestor(id, keys[id])
	if err := v.Verify(a.Attest(v.Challenge(id), m)); err != nil {
		t.Fatal(err)
	}

	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	// Readers: the per-frame ingest path.
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := v.Admit(id)
				if err != nil && !errors.Is(err, ErrUnattested) && !errors.Is(err, ErrRevoked) &&
					!errors.Is(err, ErrStaleModel) {
					t.Errorf("admit: unexpected %v", err)
					return
				}
				_, _ = v.Attested(id)
				_ = v.EpochCounts()
				_, _ = v.Revoked(id)
			}
		}()
	}
	// Writers: the lifecycle control plane.
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			cur := a
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					v.Release(id)
				case 1:
					v.Revoke(id, "race drill")
					v.Reinstate(id)
				case 2:
					// Rotation may race another writer's rotation; only a
					// token that still matches the attestor's epoch redeems.
					if tok, err := v.Rotate(id); err == nil {
						if next, err := cur.Rotated(tok); err == nil {
							cur = next
						}
					}
				case 3:
					// Re-attest; rejection is fine (epoch may have moved).
					_ = v.Verify(cur.Attest(v.Challenge(id), m))
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	// Settle: a final handshake at the verifier's current epoch must
	// restore admission regardless of how the race interleaved.
	v.Reinstate(id)
	epoch := v.KeyEpoch(id)
	fresh := NewAttestorAtEpoch(id, keys[id], epoch)
	if err := v.Verify(fresh.Attest(v.Challenge(id), m)); err != nil {
		t.Fatalf("settling handshake at epoch %d: %v", epoch, err)
	}
	if err := v.Admit(id); err != nil {
		t.Fatalf("settling admit: %v", err)
	}
}
