package attest

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// Verifier is the cloud-side attestation service and ingest admission
// gate. It issues single-use challenge nonces, verifies device reports
// against an enrolled-key registry and a code-digest policy, and answers
// per-frame admission queries for the shard tier (cloud.AdmissionGate):
// a device is admitted only while its latest verified measurement exists
// and meets the fleet's minimum model version.
type Verifier struct {
	lookup func(deviceID string) (DeviceKey, bool)

	// mu is an RWMutex because Admit sits on the per-frame ingest path
	// of every shard: admission queries take the read lock so the
	// sharded frontend never serializes on the verifier.
	mu         sync.RWMutex
	seed       uint64
	nonceCtr   uint64
	issued     map[string]Nonce // outstanding challenge per device
	allowed    map[Digest]bool  // digest -> versioned (subject to min-version policy)
	attested   map[string]Measurement
	minVersion uint64
}

// NewVerifier creates a verifier over an enrollment registry. The seed
// makes the challenge stream deterministic for a reproducible fleet run;
// lookup returns the key enrolled for a device ID.
func NewVerifier(seed uint64, lookup func(deviceID string) (DeviceKey, bool)) *Verifier {
	return &Verifier{
		lookup:   lookup,
		seed:     seed,
		issued:   make(map[string]Nonce),
		allowed:  make(map[Digest]bool),
		attested: make(map[string]Measurement),
	}
}

// AllowMeasurement adds a code digest to the acceptance policy.
// versioned marks digests whose devices carry the provisioned model pack
// and are therefore subject to the minimum-version admission policy;
// unversioned digests (the baseline normal-world agent, which holds no
// model) are admitted on attestation alone.
func (v *Verifier) AllowMeasurement(d Digest, versioned bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.allowed[d] = versioned
}

// Challenge issues a fresh single-use nonce for the device. A new
// challenge supersedes any outstanding one.
func (v *Verifier) Challenge(deviceID string) Nonce {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.nonceCtr++
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], v.seed)
	binary.LittleEndian.PutUint64(buf[8:], v.nonceCtr)
	sum := sha256.Sum256(append(buf[:], deviceID...))
	var n Nonce
	copy(n[:], sum[:])
	v.issued[deviceID] = n
	return n
}

// Verify checks one report: the nonce must be the device's outstanding
// challenge (consumed on success *and* on MAC failure, so evidence cannot
// be retried offline), the MAC must verify under the enrolled key, and
// the code digest must be in the allowed set. On success the measurement
// becomes the device's current attested state.
func (v *Verifier) Verify(r Report) error {
	key, ok := v.lookup(r.DeviceID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, r.DeviceID)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	nonce, ok := v.issued[r.DeviceID]
	if !ok || nonce != r.Nonce {
		return fmt.Errorf("%w: %q", ErrReplay, r.DeviceID)
	}
	delete(v.issued, r.DeviceID) // single use
	want := reportMAC(key, r.DeviceID, r.Nonce, r.Measurement)
	if !hmac.Equal(want[:], r.MAC[:]) {
		return fmt.Errorf("%w: %q MAC", ErrBadReport, r.DeviceID)
	}
	if _, ok := v.allowed[r.Code]; !ok {
		return fmt.Errorf("%w: %q", ErrMeasurement, r.DeviceID)
	}
	v.attested[r.DeviceID] = r.Measurement
	return nil
}

// SetMinVersion raises the fleet's minimum admitted model version for
// versioned (model-bearing) devices; devices attested below it are
// rejected at ingest until they update and re-attest.
func (v *Verifier) SetMinVersion(min uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.minVersion = min
}

// Admit implements the ingest admission gate (cloud.AdmissionGate): one
// cheap policy check per frame.
func (v *Verifier) Admit(deviceID string) error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	m, ok := v.attested[deviceID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnattested, deviceID)
	}
	if v.allowed[m.Code] && m.ModelVersion < v.minVersion {
		return fmt.Errorf("%w: %q at v%d, fleet minimum v%d",
			ErrStaleModel, deviceID, m.ModelVersion, v.minVersion)
	}
	return nil
}

// Release forgets a device's attested state and any outstanding
// challenge: a device leaving the fleet releases its session, after
// which its frames are rejected at ingest (ErrUnattested) until it
// re-attests. Releasing an unknown device is a no-op.
func (v *Verifier) Release(deviceID string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.attested, deviceID)
	delete(v.issued, deviceID)
}

// Attested returns the device's current verified measurement.
func (v *Verifier) Attested(deviceID string) (Measurement, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	m, ok := v.attested[deviceID]
	return m, ok
}

// AttestedCount returns how many devices hold a verified measurement.
func (v *Verifier) AttestedCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.attested)
}

// VersionCounts tallies attested model-bearing devices per model
// version (unversioned digests — baseline agents — are excluded). This
// is the fleet-convergence signal the rollout experiment reads.
func (v *Verifier) VersionCounts() map[uint64]int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[uint64]int)
	for _, m := range v.attested {
		if v.allowed[m.Code] {
			out[m.ModelVersion]++
		}
	}
	return out
}

// Manifest signs a per-device rollout manifest for the pack: the MAC
// binds (device, version, payload digest) under the device's enrolled
// key, so only the provisioning authority can authorize a pack for a
// device, and only for exactly this payload.
func (v *Verifier) Manifest(deviceID string, p Pack) (ManifestToken, error) {
	return v.ManifestForDigest(deviceID, p.Version, p.Digest())
}

// ManifestForDigest is Manifest for an already-computed pack digest:
// packs are immutable once published, so fleet-scale provisioning
// hashes each pack once and signs per device from the cached digest.
func (v *Verifier) ManifestForDigest(deviceID string, version uint64, d Digest) (ManifestToken, error) {
	key, ok := v.lookup(deviceID)
	if !ok {
		return ManifestToken{}, fmt.Errorf("%w: %q", ErrUnknownDevice, deviceID)
	}
	return ManifestToken{
		DeviceID: deviceID,
		Version:  version,
		Digest:   d,
		MAC:      macArray(manifestMAC(key, deviceID, version, d)),
	}, nil
}

func macArray(b []byte) [32]byte {
	var out [32]byte
	copy(out[:], b)
	return out
}

func manifestMAC(key DeviceKey, deviceID string, version uint64, digest Digest) []byte {
	h := hmac.New(sha256.New, key[:])
	h.Write([]byte("periguard-manifest-v1"))
	var ver [8]byte
	binary.LittleEndian.PutUint64(ver[:], version)
	h.Write(ver[:])
	h.Write(digest[:])
	h.Write([]byte(deviceID))
	return h.Sum(nil)
}
