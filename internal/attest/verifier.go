package attest

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// Verifier is the cloud-side attestation service and ingest admission
// gate. It issues single-use challenge nonces, verifies device reports
// against an enrolled-key registry and a code-digest policy, and answers
// per-frame admission queries for the shard tier (cloud.AdmissionGate):
// a device is admitted only while its latest verified measurement exists
// and meets the fleet's minimum model version.
type Verifier struct {
	lookup func(deviceID string) (DeviceKey, bool)

	// mu is an RWMutex because Admit sits on the per-frame ingest path
	// of every shard: admission queries take the read lock so the
	// sharded frontend never serializes on the verifier.
	mu         sync.RWMutex
	seed       uint64
	nonceCtr   uint64
	issued     map[string]Nonce // outstanding challenge per device
	allowed    map[Digest]bool  // digest -> versioned (subject to min-version policy)
	attested   map[string]Measurement
	minVersion uint64
	// Lifecycle state: the key epoch each device is expected to sign
	// under (absent = 0), the epoch its last successful verification
	// actually used (the rotation-progress signal), the previous epoch
	// still honored while a rotation's grace window is open, and the
	// revocation list.
	epochs   map[string]uint64
	verified map[string]uint64
	grace    map[string]uint64
	revoked  map[string]string // deviceID -> reason
}

// NewVerifier creates a verifier over an enrollment registry. The seed
// makes the challenge stream deterministic for a reproducible fleet run;
// lookup returns the key enrolled for a device ID.
func NewVerifier(seed uint64, lookup func(deviceID string) (DeviceKey, bool)) *Verifier {
	return &Verifier{
		lookup:   lookup,
		seed:     seed,
		issued:   make(map[string]Nonce),
		allowed:  make(map[Digest]bool),
		attested: make(map[string]Measurement),
		epochs:   make(map[string]uint64),
		verified: make(map[string]uint64),
		grace:    make(map[string]uint64),
		revoked:  make(map[string]string),
	}
}

// AllowMeasurement adds a code digest to the acceptance policy.
// versioned marks digests whose devices carry the provisioned model pack
// and are therefore subject to the minimum-version admission policy;
// unversioned digests (the baseline normal-world agent, which holds no
// model) are admitted on attestation alone.
func (v *Verifier) AllowMeasurement(d Digest, versioned bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.allowed[d] = versioned
}

// Challenge issues a fresh single-use nonce for the device. A new
// challenge supersedes any outstanding one.
func (v *Verifier) Challenge(deviceID string) Nonce {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.nonceCtr++
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], v.seed)
	binary.LittleEndian.PutUint64(buf[8:], v.nonceCtr)
	sum := sha256.Sum256(append(buf[:], deviceID...))
	var n Nonce
	copy(n[:], sum[:])
	v.issued[deviceID] = n
	return n
}

// Verify checks one report: the device must not be revoked, the nonce
// must be the device's outstanding challenge (consumed on success *and*
// on MAC failure, so evidence cannot be retried offline), the report's
// key epoch must be the device's current epoch — or the previous one
// while a rotation's grace window is open — the MAC must verify under
// that epoch's key, and the code digest must be in the allowed set. On
// success the measurement becomes the device's current attested state;
// a success at the current epoch closes the grace window.
func (v *Verifier) Verify(r Report) error {
	base, ok := v.lookup(r.DeviceID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, r.DeviceID)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if reason, ok := v.revoked[r.DeviceID]; ok {
		return fmt.Errorf("%w: %q (%s)", ErrRevoked, r.DeviceID, reason)
	}
	nonce, ok := v.issued[r.DeviceID]
	if !ok || nonce != r.Nonce {
		return fmt.Errorf("%w: %q", ErrReplay, r.DeviceID)
	}
	delete(v.issued, r.DeviceID) // single use
	expected := v.epochs[r.DeviceID]
	graced, inGrace := v.grace[r.DeviceID]
	if r.KeyEpoch != expected && !(inGrace && r.KeyEpoch == graced) {
		return fmt.Errorf("%w: %q signed at epoch %d, verifier expects %d",
			ErrKeyEpoch, r.DeviceID, r.KeyEpoch, expected)
	}
	want := reportMAC(KeyForEpoch(base, r.KeyEpoch), r.DeviceID, r.Nonce, r.Measurement, r.KeyEpoch)
	if !hmac.Equal(want[:], r.MAC[:]) {
		return fmt.Errorf("%w: %q MAC", ErrBadReport, r.DeviceID)
	}
	if _, ok := v.allowed[r.Code]; !ok {
		return fmt.Errorf("%w: %q", ErrMeasurement, r.DeviceID)
	}
	if r.KeyEpoch == expected {
		// The device has caught up with the rotation: the grace window
		// closes and the old epoch key is dead.
		delete(v.grace, r.DeviceID)
	}
	v.attested[r.DeviceID] = r.Measurement
	v.verified[r.DeviceID] = r.KeyEpoch
	return nil
}

// Rotate advances the device's key epoch and mints the rotation token
// the device redeems in its TEE (core.CmdRotateKey). The token is MACed
// under the device's current epoch key; from this call on the verifier
// expects evidence at the new epoch, while honoring the old epoch for
// one grace window — until the device's first successful verification at
// the new epoch — so a handshake in flight when the rotation was issued
// never fails. The device's admitted (attested) state is untouched:
// rotation is a control-plane event, its frames keep flowing.
func (v *Verifier) Rotate(deviceID string) (RotationToken, error) {
	base, ok := v.lookup(deviceID)
	if !ok {
		return RotationToken{}, fmt.Errorf("%w: %q", ErrUnknownDevice, deviceID)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if reason, ok := v.revoked[deviceID]; ok {
		return RotationToken{}, fmt.Errorf("%w: %q (%s)", ErrRevoked, deviceID, reason)
	}
	cur := v.epochs[deviceID]
	if g, open := v.grace[deviceID]; open {
		// The previous rotation is still outstanding (the device has not
		// verified at the current epoch yet): re-mint the same token
		// instead of advancing again. A retried rotation campaign must
		// not widen the epoch gap past what the device can redeem, nor
		// close the grace window its in-flight evidence relies on.
		tok := RotationToken{DeviceID: deviceID, NewEpoch: cur}
		copy(tok.MAC[:], rotationMAC(KeyForEpoch(base, g), deviceID, cur))
		return tok, nil
	}
	tok := RotationToken{DeviceID: deviceID, NewEpoch: cur + 1}
	copy(tok.MAC[:], rotationMAC(KeyForEpoch(base, cur), deviceID, tok.NewEpoch))
	v.epochs[deviceID] = tok.NewEpoch
	v.grace[deviceID] = cur
	return tok, nil
}

// KeyEpoch returns the key epoch the verifier currently expects the
// device to sign under.
func (v *Verifier) KeyEpoch(deviceID string) uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.epochs[deviceID]
}

// EpochCounts tallies attested devices per the key epoch their last
// successful verification actually used — the rotation-progress signal:
// a device still signing at the old epoch under the grace window counts
// at the old epoch, not at the one the verifier already expects.
func (v *Verifier) EpochCounts() map[uint64]int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[uint64]int)
	for id := range v.attested {
		out[v.verified[id]]++
	}
	return out
}

// Revoke puts the device on the revocation list: its attested state and
// any outstanding challenge are dropped immediately, and from the next
// frame on the admission gate rejects it with ErrRevoked — a rejection,
// not a shed, so the counter that moves is ShardStats.Rejected. A
// revoked device cannot re-attest or rotate until Reinstate.
func (v *Verifier) Revoke(deviceID, reason string) {
	if reason == "" {
		reason = "revoked"
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.revoked[deviceID] = reason
	delete(v.attested, deviceID)
	delete(v.verified, deviceID)
	delete(v.issued, deviceID)
}

// Reinstate lifts a revocation. The device stays unadmitted until a
// fresh challenge/verify handshake restores its attested state — the
// re-admit half of the compromised-device drill.
func (v *Verifier) Reinstate(deviceID string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.revoked, deviceID)
}

// Revoked reports whether the device is on the revocation list, and why.
func (v *Verifier) Revoked(deviceID string) (string, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	reason, ok := v.revoked[deviceID]
	return reason, ok
}

// RevokedCount returns the size of the revocation list.
func (v *Verifier) RevokedCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.revoked)
}

// SetMinVersion raises the fleet's minimum admitted model version for
// versioned (model-bearing) devices; devices attested below it are
// rejected at ingest until they update and re-attest.
func (v *Verifier) SetMinVersion(min uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.minVersion = min
}

// Admit implements the ingest admission gate (cloud.AdmissionGate): one
// cheap policy check per frame, read-lock only, so the sharded frontend
// never serializes on the verifier. The revocation list is consulted
// first: a revoked device is rejected even if its attested state were
// somehow still present.
func (v *Verifier) Admit(deviceID string) error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if reason, ok := v.revoked[deviceID]; ok {
		return fmt.Errorf("%w: %q (%s)", ErrRevoked, deviceID, reason)
	}
	m, ok := v.attested[deviceID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnattested, deviceID)
	}
	if v.allowed[m.Code] && m.ModelVersion < v.minVersion {
		return fmt.Errorf("%w: %q at v%d, fleet minimum v%d",
			ErrStaleModel, deviceID, m.ModelVersion, v.minVersion)
	}
	return nil
}

// Release forgets a device's attested state and any outstanding
// challenge: a device leaving the fleet releases its session, after
// which its frames are rejected at ingest (ErrUnattested) until it
// re-attests. Releasing an unknown device is a no-op.
func (v *Verifier) Release(deviceID string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.attested, deviceID)
	delete(v.verified, deviceID)
	delete(v.issued, deviceID)
}

// Attested returns the device's current verified measurement.
func (v *Verifier) Attested(deviceID string) (Measurement, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	m, ok := v.attested[deviceID]
	return m, ok
}

// AttestedCount returns how many devices hold a verified measurement.
func (v *Verifier) AttestedCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.attested)
}

// VersionCounts tallies attested model-bearing devices per model
// version (unversioned digests — baseline agents — are excluded). This
// is the fleet-convergence signal the rollout experiment reads.
func (v *Verifier) VersionCounts() map[uint64]int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[uint64]int)
	for _, m := range v.attested {
		if v.allowed[m.Code] {
			out[m.ModelVersion]++
		}
	}
	return out
}

// Manifest signs a per-device rollout manifest for the pack: the MAC
// binds (device, version, payload digest) under the device's enrolled
// key, so only the provisioning authority can authorize a pack for a
// device, and only for exactly this payload.
func (v *Verifier) Manifest(deviceID string, p Pack) (ManifestToken, error) {
	return v.ManifestForDigest(deviceID, p.Version, p.Digest())
}

// ManifestForDigest is Manifest for an already-computed pack digest:
// packs are immutable once published, so fleet-scale provisioning
// hashes each pack once and signs per device from the cached digest.
// The token is MACed under the device's current-epoch key — a device
// that has redeemed a rotation verifies manifests under the same epoch.
func (v *Verifier) ManifestForDigest(deviceID string, version uint64, d Digest) (ManifestToken, error) {
	base, ok := v.lookup(deviceID)
	if !ok {
		return ManifestToken{}, fmt.Errorf("%w: %q", ErrUnknownDevice, deviceID)
	}
	v.mu.RLock()
	key := KeyForEpoch(base, v.epochs[deviceID])
	v.mu.RUnlock()
	return ManifestToken{
		DeviceID: deviceID,
		Version:  version,
		Digest:   d,
		MAC:      macArray(manifestMAC(key, deviceID, version, d)),
	}, nil
}

func macArray(b []byte) [32]byte {
	var out [32]byte
	copy(out[:], b)
	return out
}

func manifestMAC(key DeviceKey, deviceID string, version uint64, digest Digest) []byte {
	h := hmac.New(sha256.New, key[:])
	h.Write([]byte("periguard-manifest-v1"))
	var ver [8]byte
	binary.LittleEndian.PutUint64(ver[:], version)
	h.Write(ver[:])
	h.Write(digest[:])
	h.Write([]byte(deviceID))
	return h.Sum(nil)
}
