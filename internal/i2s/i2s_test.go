package i2s

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestFormatValidate(t *testing.T) {
	tests := []struct {
		name    string
		f       Format
		wantErr bool
	}{
		{"default", DefaultFormat(), false},
		{"stereo 24-bit", Format{48000, 24, 2}, false},
		{"32-bit", Format{96000, 32, 2}, false},
		{"bad bits", Format{16000, 12, 1}, true},
		{"bad channels", Format{16000, 16, 3}, true},
		{"zero channels", Format{16000, 16, 0}, true},
		{"rate too low", Format{4000, 16, 1}, true},
		{"rate too high", Format{400000, 16, 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.f.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadFormat) {
				t.Errorf("error %v should wrap ErrBadFormat", err)
			}
		})
	}
}

func TestFormatDerived(t *testing.T) {
	f := Format{SampleRate: 16000, BitsPerSample: 16, Channels: 2}
	if f.BytesPerWord() != 2 {
		t.Errorf("BytesPerWord = %d, want 2", f.BytesPerWord())
	}
	if f.FrameBytes() != 4 {
		t.Errorf("FrameBytes = %d, want 4", f.FrameBytes())
	}
	if f.BitClockHz() != 16000*16*2 {
		t.Errorf("BitClockHz = %d", f.BitClockHz())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	formats := []Format{
		{16000, 16, 1},
		{16000, 16, 2},
		{48000, 24, 2},
		{48000, 32, 2},
	}
	samples := []int32{0, 1, -1, 12345, -12345, 32767, -32768}
	for _, f := range formats {
		in := samples
		if f.Channels == 2 && len(in)%2 == 1 {
			in = in[:len(in)-1]
		}
		wire, err := EncodeFrames(in, f)
		if err != nil {
			t.Fatalf("%+v Encode: %v", f, err)
		}
		if len(wire) != len(in)*f.BytesPerWord() {
			t.Errorf("%+v wire length %d, want %d", f, len(wire), len(in)*f.BytesPerWord())
		}
		out, err := DecodeFrames(wire, f)
		if err != nil {
			t.Fatalf("%+v Decode: %v", f, err)
		}
		if len(out) != len(in) {
			t.Fatalf("%+v decoded %d samples, want %d", f, len(out), len(in))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Errorf("%+v sample %d = %d, want %d", f, i, out[i], in[i])
			}
		}
	}
}

// Property: encode/decode is the identity for any int16 sample sequence in
// the default 16-bit format.
func TestEncodeDecodeProperty(t *testing.T) {
	f := DefaultFormat()
	prop := func(samples []int16) bool {
		in := make([]int32, len(samples))
		for i, s := range samples {
			in[i] = int32(s)
		}
		wire, err := EncodeFrames(in, f)
		if err != nil {
			return false
		}
		out, err := DecodeFrames(wire, f)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeOddStereo(t *testing.T) {
	f := Format{16000, 16, 2}
	if _, err := EncodeFrames([]int32{1, 2, 3}, f); !errors.Is(err, ErrBadFormat) {
		t.Errorf("odd stereo encode = %v, want ErrBadFormat", err)
	}
}

func TestDecodeShortFrame(t *testing.T) {
	f := Format{16000, 24, 1}
	if _, err := DecodeFrames([]byte{1, 2, 3, 4}, f); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short decode = %v, want ErrShortFrame", err)
	}
}

func TestFIFOPushPop(t *testing.T) {
	q := newFIFO(8)
	if over := q.push([]byte{1, 2, 3}); over != 0 {
		t.Errorf("push overran %d", over)
	}
	if got := q.pop(2); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("pop = %v", got)
	}
	if over := q.push([]byte{4, 5, 6, 7, 8, 9, 10}); over != 0 {
		t.Errorf("wrap push overran %d", over)
	}
	got := q.pop(10)
	want := []byte{3, 4, 5, 6, 7, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("pop = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pop[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFIFOOverrun(t *testing.T) {
	q := newFIFO(4)
	if over := q.push([]byte{1, 2, 3, 4, 5, 6}); over != 2 {
		t.Errorf("push overrun = %d, want 2", over)
	}
	if q.len() != 4 {
		t.Errorf("len = %d, want 4", q.len())
	}
}

// Property: FIFO preserves order and never exceeds capacity.
func TestFIFOOrderProperty(t *testing.T) {
	prop := func(chunks [][]byte) bool {
		const capacity = 64
		q := newFIFO(capacity)
		var expect []byte
		for _, ch := range chunks {
			over := q.push(ch)
			kept := len(ch) - over
			expect = append(expect, ch[:kept]...)
			if q.len() > capacity {
				return false
			}
			if len(expect) > 16 {
				got := q.pop(16)
				for i := range got {
					if got[i] != expect[i] {
						return false
					}
				}
				expect = expect[len(got):]
			}
		}
		got := q.pop(q.len())
		if len(got) != len(expect) {
			return false
		}
		for i := range got {
			if got[i] != expect[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestControllerDisabledRejectsData(t *testing.T) {
	c := NewController("i2s0", 64)
	if err := c.PushWire([]byte{1, 2}); !errors.Is(err, ErrControllerOff) {
		t.Errorf("PushWire on disabled = %v, want ErrControllerOff", err)
	}
}

func TestControllerDataPath(t *testing.T) {
	c := NewController("i2s0", 256)
	if err := c.WriteReg(RegCtrl, CtrlRXEnable); err != nil {
		t.Fatalf("WriteReg ctrl: %v", err)
	}
	wire, err := EncodeFrames([]int32{100, -200, 300}, DefaultFormat())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := c.PushWire(wire); err != nil {
		t.Fatalf("PushWire: %v", err)
	}
	if got := c.BytesAvailable(); got != len(wire) {
		t.Errorf("BytesAvailable = %d, want %d", got, len(wire))
	}
	out := c.PopBytes(len(wire))
	samples, err := DecodeFrames(out, DefaultFormat())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(samples) != 3 || samples[0] != 100 || samples[1] != -200 || samples[2] != 300 {
		t.Errorf("samples = %v", samples)
	}
	st := c.Stats()
	if st.BytesIn != uint64(len(wire)) || st.FramesIn != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestControllerOverrunAccounting(t *testing.T) {
	c := NewController("i2s0", 8)
	_ = c.WriteReg(RegCtrl, CtrlRXEnable)
	if err := c.PushWire(make([]byte, 20)); err != nil {
		t.Fatalf("PushWire: %v", err)
	}
	st := c.Stats()
	if st.BytesDropped != 12 || st.Overruns != 1 {
		t.Errorf("stats = %+v, want 12 dropped / 1 overrun", st)
	}
	status, err := c.ReadReg(RegStatus)
	if err != nil {
		t.Fatalf("ReadReg: %v", err)
	}
	if status&StatusOverrun == 0 {
		t.Error("overrun bit not set in status")
	}
}

func TestControllerIRQWatermark(t *testing.T) {
	c := NewController("i2s0", 64)
	fired := 0
	c.SetIRQHandler(func() { fired++ })
	_ = c.WriteReg(RegCtrl, CtrlRXEnable|CtrlIRQEnable)
	if err := c.WriteReg(RegWatermark, 16); err != nil {
		t.Fatalf("watermark: %v", err)
	}
	if err := c.PushWire(make([]byte, 8)); err != nil {
		t.Fatalf("PushWire: %v", err)
	}
	if fired != 0 {
		t.Errorf("IRQ fired below watermark")
	}
	if err := c.PushWire(make([]byte, 8)); err != nil {
		t.Fatalf("PushWire: %v", err)
	}
	if fired != 1 {
		t.Errorf("IRQ fired %d times, want 1", fired)
	}
	if st := c.Stats(); st.IRQs != 1 {
		t.Errorf("IRQs = %d, want 1", st.IRQs)
	}
}

func TestControllerIRQDisabled(t *testing.T) {
	c := NewController("i2s0", 32)
	fired := 0
	c.SetIRQHandler(func() { fired++ })
	_ = c.WriteReg(RegCtrl, CtrlRXEnable) // no IRQ enable bit
	_ = c.WriteReg(RegWatermark, 4)
	_ = c.PushWire(make([]byte, 16))
	if fired != 0 {
		t.Error("IRQ fired while disabled")
	}
}

func TestControllerRegisterFile(t *testing.T) {
	c := NewController("i2s0", 128)
	f := Format{SampleRate: 48000, BitsPerSample: 24, Channels: 2}
	if err := c.WriteReg(RegClkCfg, encodeClkCfg(f)); err != nil {
		t.Fatalf("clkcfg write: %v", err)
	}
	if got := c.Format(); got != f {
		t.Errorf("Format = %+v, want %+v", got, f)
	}
	v, err := c.ReadReg(RegClkCfg)
	if err != nil {
		t.Fatalf("clkcfg read: %v", err)
	}
	if decodeClkCfg(v) != f {
		t.Errorf("clkcfg round trip = %+v", decodeClkCfg(v))
	}
	if err := c.WriteReg(RegClkCfg, encodeClkCfg(Format{16000, 12, 1})); err == nil {
		t.Error("invalid clkcfg accepted")
	}
	if err := c.WriteReg(RegWatermark, 4096); err == nil {
		t.Error("oversized watermark accepted")
	}
	if _, err := c.ReadReg(0xfc); err == nil {
		t.Error("unknown register read accepted")
	}
	if err := c.WriteReg(0xfc, 0); err == nil {
		t.Error("unknown register write accepted")
	}
}

func TestControllerFIFODataRegister(t *testing.T) {
	c := NewController("i2s0", 64)
	_ = c.WriteReg(RegCtrl, CtrlRXEnable)
	wire, _ := EncodeFrames([]int32{0x1234}, Format{16000, 32, 1})
	_ = c.PushWire(wire)
	v, err := c.ReadReg(RegFIFOData)
	if err != nil {
		t.Fatalf("fifo data read: %v", err)
	}
	if v != 0x1234 {
		t.Errorf("FIFO data = %#x, want 0x1234", v)
	}
	lvl, _ := c.ReadReg(RegFIFOLevel)
	if lvl != 0 {
		t.Errorf("FIFO level = %d after drain, want 0", lvl)
	}
}

func TestControllerReset(t *testing.T) {
	c := NewController("i2s0", 64)
	_ = c.WriteReg(RegCtrl, CtrlRXEnable)
	_ = c.PushWire(make([]byte, 16))
	c.Reset()
	if c.Enabled() {
		t.Error("controller enabled after reset")
	}
	if c.BytesAvailable() != 0 {
		t.Error("FIFO not cleared by reset")
	}
	if st := c.Stats(); st.BytesIn != 0 {
		t.Error("stats not cleared by reset")
	}
}

func TestSetFormat(t *testing.T) {
	c := NewController("i2s0", 64)
	if err := c.SetFormat(Format{44100, 16, 2}); err != nil {
		t.Fatalf("SetFormat: %v", err)
	}
	if err := c.SetFormat(Format{44100, 20, 2}); err == nil {
		t.Error("invalid SetFormat accepted")
	}
}
