// Package i2s models the Inter-IC Sound (I2S) serial bus [Philips I2S bus
// specification]: the three-wire link (SCK bit clock, WS word select, SD
// serial data), the frame layout used by digital microphones, and a
// receive-side controller with a sample FIFO that a DMA engine or a
// programmed-I/O driver drains.
//
// The paper's proof of concept targets I2S microphones because the protocol
// is lightweight; this package reproduces the protocol faithfully enough
// that the driver above it performs the same work a real capture driver
// does: clock configuration, frame decoding, FIFO watermark handling and
// overrun accounting.
package i2s

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the package.
var (
	// ErrBadFormat is returned for unsupported stream formats.
	ErrBadFormat = errors.New("i2s: unsupported format")
	// ErrShortFrame is returned when decoding truncated wire data.
	ErrShortFrame = errors.New("i2s: short frame")
	// ErrControllerOff is returned when pushing into a disabled controller.
	ErrControllerOff = errors.New("i2s: controller disabled")
)

// Format describes an I2S stream.
type Format struct {
	// SampleRate in Hz (e.g. 16000).
	SampleRate int
	// BitsPerSample is the word length: 16, 24 or 32.
	BitsPerSample int
	// Channels is 1 (left only, as with a single PDM/I2S mic) or 2.
	Channels int
}

// Validate checks the format against what the controller supports.
func (f Format) Validate() error {
	switch f.BitsPerSample {
	case 16, 24, 32:
	default:
		return fmt.Errorf("%w: %d bits per sample", ErrBadFormat, f.BitsPerSample)
	}
	if f.Channels != 1 && f.Channels != 2 {
		return fmt.Errorf("%w: %d channels", ErrBadFormat, f.Channels)
	}
	if f.SampleRate < 8000 || f.SampleRate > 192000 {
		return fmt.Errorf("%w: sample rate %d", ErrBadFormat, f.SampleRate)
	}
	return nil
}

// BytesPerWord returns the on-wire size of one sample word.
func (f Format) BytesPerWord() int { return f.BitsPerSample / 8 }

// FrameBytes returns the on-wire size of one frame (all channels).
func (f Format) FrameBytes() int { return f.BytesPerWord() * f.Channels }

// BitClockHz returns the SCK frequency for the format: the I2S bit clock
// runs at SampleRate * BitsPerSample * 2 (WS alternates per channel slot,
// stereo framing even for mono data per the Philips specification).
func (f Format) BitClockHz() int { return f.SampleRate * f.BitsPerSample * 2 }

// DefaultFormat is the capture format used across the experiments:
// 16 kHz mono 16-bit, the standard far-field voice capture configuration.
func DefaultFormat() Format {
	return Format{SampleRate: 16000, BitsPerSample: 16, Channels: 1}
}

// EncodeFrames serializes samples into I2S wire bytes. Samples are signed
// and carried MSB-first, left-justified in the word slot with the 1-bit WS
// delay already normalized away (we model the byte-level payload a
// controller's shift register delivers after alignment). For stereo
// formats, samples must interleave L,R,L,R...
func EncodeFrames(samples []int32, f Format) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if len(samples)%f.Channels != 0 {
		return nil, fmt.Errorf("%w: %d samples not a multiple of %d channels",
			ErrBadFormat, len(samples), f.Channels)
	}
	bpw := f.BytesPerWord()
	return encodeFramesInto(make([]byte, len(samples)*bpw), samples, f), nil
}

// EncodeFramesInto is EncodeFrames into dst's capacity, reusing it when
// large enough so steady-state encode loops do not allocate.
func EncodeFramesInto(dst []byte, samples []int32, f Format) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if len(samples)%f.Channels != 0 {
		return nil, fmt.Errorf("%w: %d samples not a multiple of %d channels",
			ErrBadFormat, len(samples), f.Channels)
	}
	n := len(samples) * f.BytesPerWord()
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	return encodeFramesInto(dst[:n], samples, f), nil
}

// encodeFramesInto writes the wire encoding of samples into out, which
// must be len(samples)*BytesPerWord() long. The 16-bit layout gets a
// direct two-byte store; other widths take the generic MSB-first loop.
func encodeFramesInto(out []byte, samples []int32, f Format) []byte {
	bpw := f.BytesPerWord()
	if bpw == 2 && f.BitsPerSample == 16 {
		for i, s := range samples {
			u := uint32(s) << 16
			out[2*i] = byte(u >> 24)
			out[2*i+1] = byte(u >> 16)
		}
		return out
	}
	shift := 32 - uint(f.BitsPerSample)
	for i, s := range samples {
		u := uint32(s) << shift // left-justify in 32-bit slot
		for b := 0; b < bpw; b++ {
			out[i*bpw+b] = byte(u >> (24 - 8*uint(b))) // MSB first
		}
	}
	return out
}

// DecodeFrames parses wire bytes back into signed samples.
func DecodeFrames(wire []byte, f Format) ([]int32, error) {
	return DecodeFramesInto(nil, wire, f)
}

// DecodeFramesInto is DecodeFrames appending into dst[:0], reusing its
// capacity so steady-state decode loops do not allocate.
func DecodeFramesInto(dst []int32, wire []byte, f Format) ([]int32, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	bpw := f.BytesPerWord()
	if len(wire)%bpw != 0 {
		return nil, fmt.Errorf("%w: %d bytes with %d-byte words", ErrShortFrame, len(wire), bpw)
	}
	n := len(wire) / bpw
	if cap(dst) < n {
		dst = make([]int32, 0, n)
	}
	out := dst[:n]
	if bpw == 2 && f.BitsPerSample == 16 {
		for i := range out {
			u := uint32(wire[2*i])<<24 | uint32(wire[2*i+1])<<16
			out[i] = int32(u) >> 16
		}
		return out, nil
	}
	shift := 32 - uint(f.BitsPerSample)
	for i := range out {
		var u uint32
		for b := 0; b < bpw; b++ {
			u |= uint32(wire[i*bpw+b]) << (24 - 8*uint(b))
		}
		// Arithmetic shift right to sign-extend from the left-justified slot.
		out[i] = int32(u) >> shift
	}
	return out, nil
}

// fifo is a bounded byte ring buffer. The backing storage grows on
// demand up to the configured capacity, so a controller configured with
// a generous FIFO (the simulator uses 1 MiB to stand in for real-time
// pacing) only pays for the bytes actually buffered.
type fifo struct {
	buf      []byte
	start    int
	n        int
	capacity int
}

func newFIFO(capacity int) *fifo { return &fifo{capacity: capacity} }

// grow re-linearizes the ring into a larger backing slice.
func (q *fifo) grow(need int) {
	size := len(q.buf) * 2
	if size == 0 {
		size = 256
	}
	for size < need {
		size *= 2
	}
	if size > q.capacity {
		size = q.capacity
	}
	nb := make([]byte, size)
	if q.n > 0 {
		end := q.start + q.n
		if end <= len(q.buf) {
			copy(nb, q.buf[q.start:end])
		} else {
			first := copy(nb, q.buf[q.start:])
			copy(nb[first:], q.buf[:end-len(q.buf)])
		}
	}
	q.buf = nb
	q.start = 0
}

// push appends b, returning the number of bytes that did NOT fit (overrun).
func (q *fifo) push(b []byte) int {
	space := q.capacity - q.n
	take := len(b)
	if take > space {
		take = space
	}
	if take == 0 {
		return len(b)
	}
	if q.n+take > len(q.buf) {
		q.grow(q.n + take)
	}
	head := (q.start + q.n) % len(q.buf)
	first := copy(q.buf[head:], b[:take])
	copy(q.buf, b[first:take])
	q.n += take
	return len(b) - take
}

// pop removes up to n bytes.
func (q *fifo) pop(n int) []byte {
	if n > q.n {
		n = q.n
	}
	out := make([]byte, n)
	if n == 0 {
		return out
	}
	first := copy(out, q.buf[q.start:])
	copy(out[first:], q.buf[:n-first])
	q.start = (q.start + n) % len(q.buf)
	q.n -= n
	return out
}

func (q *fifo) len() int { return q.n }

func (q *fifo) cap() int { return q.capacity }

// Register offsets of the controller's MMIO window.
const (
	RegCtrl      = 0x00 // control: bit0 RX enable, bit1 IRQ enable
	RegStatus    = 0x04 // status: bits see Status* masks
	RegFIFOData  = 0x08 // pops one 32-bit word from the RX FIFO
	RegFIFOLevel = 0x0c // bytes currently in the FIFO
	RegClkCfg    = 0x10 // write: encoded format; read: last value
	RegWatermark = 0x14 // IRQ threshold in bytes
	RegOverruns  = 0x18 // overrun event count (read clears on real HW; we keep)
	RegAux       = 0x1c // auxiliary block register (gain/spdif/hdmi scratch)
	RegSize      = 0x20
)

// Control register bits.
const (
	CtrlRXEnable  = 1 << 0
	CtrlIRQEnable = 1 << 1
)

// Status register bits.
const (
	StatusRXActive   = 1 << 0
	StatusFIFONotEmp = 1 << 1
	StatusOverrun    = 1 << 2
)

// ControllerStats snapshots controller activity.
type ControllerStats struct {
	FramesIn     uint64
	BytesIn      uint64
	BytesDropped uint64 // lost to FIFO overrun
	Overruns     uint64 // overrun events
	IRQs         uint64
}

// Controller is the SoC-side I2S receive controller. It implements
// bus.Device (register file) and bus.FIFOSource (DMA drain).
//
// Data path: a transmitter (the microphone) pushes wire bytes with
// PushWire; bytes land in the RX FIFO; the driver drains them either via
// DMA (PopBytes) or programmed I/O (RegFIFOData reads). When the FIFO
// level crosses the watermark and IRQs are enabled, the IRQ callback fires.
type Controller struct {
	name string

	mu        sync.Mutex
	ctrl      uint32
	aux       uint32
	clkCfg    uint32
	watermark int
	format    Format
	rx        *fifo
	stats     ControllerStats
	irq       func() // called with mu held released
}

// NewController creates a controller with the given FIFO capacity in bytes.
// Real controllers have small FIFOs (tens to hundreds of bytes); the DMA
// buffer, not the FIFO, provides bulk buffering.
func NewController(name string, fifoBytes int) *Controller {
	if fifoBytes <= 0 {
		fifoBytes = 256
	}
	return &Controller{
		name:      name,
		rx:        newFIFO(fifoBytes),
		watermark: fifoBytes / 2,
		format:    DefaultFormat(),
	}
}

// Name implements bus.Device.
func (c *Controller) Name() string { return c.name }

// SetIRQHandler installs the interrupt callback (watermark crossing).
func (c *Controller) SetIRQHandler(h func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.irq = h
}

// SetFormat configures the stream format (driver "hw_params" stage).
func (c *Controller) SetFormat(f Format) error {
	if err := f.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.format = f
	c.clkCfg = encodeClkCfg(f)
	return nil
}

// Format returns the configured stream format.
func (c *Controller) Format() Format {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.format
}

func encodeClkCfg(f Format) uint32 {
	return uint32(f.SampleRate/25)&0xffff | uint32(f.BitsPerSample)<<16 | uint32(f.Channels)<<24
}

func decodeClkCfg(v uint32) Format {
	return Format{
		SampleRate:    int(v&0xffff) * 25,
		BitsPerSample: int(v >> 16 & 0xff),
		Channels:      int(v >> 24 & 0xff),
	}
}

// ReadReg implements bus.Device.
func (c *Controller) ReadReg(off uint32) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch off {
	case RegCtrl:
		return c.ctrl, nil
	case RegStatus:
		var s uint32
		if c.ctrl&CtrlRXEnable != 0 {
			s |= StatusRXActive
		}
		if c.rx.len() > 0 {
			s |= StatusFIFONotEmp
		}
		if c.stats.Overruns > 0 {
			s |= StatusOverrun
		}
		return s, nil
	case RegFIFOData:
		b := c.rx.pop(4)
		var v uint32
		for i, x := range b {
			v |= uint32(x) << (24 - 8*uint(i))
		}
		return v, nil
	case RegFIFOLevel:
		return uint32(c.rx.len()), nil
	case RegClkCfg:
		return c.clkCfg, nil
	case RegWatermark:
		return uint32(c.watermark), nil
	case RegOverruns:
		return uint32(c.stats.Overruns), nil
	case RegAux:
		return c.aux, nil
	default:
		return 0, fmt.Errorf("i2s %s: read off %#x: unknown register", c.name, off)
	}
}

// WriteReg implements bus.Device.
func (c *Controller) WriteReg(off uint32, val uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch off {
	case RegCtrl:
		c.ctrl = val & (CtrlRXEnable | CtrlIRQEnable)
		return nil
	case RegClkCfg:
		f := decodeClkCfg(val)
		if err := f.Validate(); err != nil {
			return err
		}
		c.clkCfg = val
		c.format = f
		return nil
	case RegWatermark:
		if int(val) > c.rx.cap() {
			return fmt.Errorf("i2s %s: watermark %d beyond fifo %d", c.name, val, c.rx.cap())
		}
		c.watermark = int(val)
		return nil
	case RegAux:
		c.aux = val
		return nil
	default:
		return fmt.Errorf("i2s %s: write off %#x: unknown register", c.name, off)
	}
}

// Enabled reports whether RX is enabled.
func (c *Controller) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrl&CtrlRXEnable != 0
}

// PushWire is the transmitter-side entry: the microphone shifts wire bytes
// into the controller. Overrunning bytes are dropped and counted, exactly
// as a real controller loses samples when the CPU/DMA falls behind.
func (c *Controller) PushWire(wire []byte) error {
	c.mu.Lock()
	if c.ctrl&CtrlRXEnable == 0 {
		c.mu.Unlock()
		return ErrControllerOff
	}
	dropped := c.rx.push(wire)
	c.stats.FramesIn += uint64(len(wire) / c.format.FrameBytes())
	c.stats.BytesIn += uint64(len(wire) - dropped)
	if dropped > 0 {
		c.stats.BytesDropped += uint64(dropped)
		c.stats.Overruns++
	}
	fireIRQ := c.ctrl&CtrlIRQEnable != 0 && c.rx.len() >= c.watermark && c.irq != nil
	irq := c.irq
	if fireIRQ {
		c.stats.IRQs++
	}
	c.mu.Unlock()
	if fireIRQ {
		irq()
	}
	return nil
}

// PopBytes implements bus.FIFOSource for DMA drains.
func (c *Controller) PopBytes(n int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rx.pop(n)
}

// BytesAvailable implements bus.FIFOSource.
func (c *Controller) BytesAvailable() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rx.len()
}

// Stats returns a snapshot of controller activity.
func (c *Controller) Stats() ControllerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset disables the controller and clears FIFO and counters.
func (c *Controller) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctrl = 0
	c.rx = newFIFO(c.rx.cap())
	c.stats = ControllerStats{}
}
