// Package kernel is a miniature Linux-like kernel for the normal world:
// a character-device registry with cost-accounted system calls, an
// interrupt layer, a dmesg ring, and — because the paper's threat model
// (§I) includes "privileged software like the operating system can be
// compromised" — a Snooper that lets a hostile kernel read any normal-world
// memory it likes. The TrustZone address space controller, not kernel good
// manners, is what stops the snooper at the secure carve-out boundary.
package kernel

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/memory"
	"repro/internal/tz"
)

// Errors returned by the kernel.
var (
	// ErrNoSuchDevice is returned when opening an unregistered device node.
	ErrNoSuchDevice = errors.New("kernel: no such device")
	// ErrBadFD is returned for operations on closed or invalid descriptors.
	ErrBadFD = errors.New("kernel: bad file descriptor")
	// ErrNoIRQHandler is returned when raising an unclaimed IRQ line.
	ErrNoIRQHandler = errors.New("kernel: no handler for irq")
)

// CharDevice is the miniature character-device operations vector
// (file_operations in Linux terms).
type CharDevice interface {
	// DevOpen prepares the device for a new descriptor.
	DevOpen() error
	// DevRead fills buf and returns the number of bytes read.
	DevRead(buf []byte) (int, error)
	// DevIoctl performs a device-specific control operation.
	DevIoctl(cmd uint32, arg uint64) (uint64, error)
	// DevClose releases the descriptor.
	DevClose() error
}

// SyscallStats counts cost-accounted kernel entries.
type SyscallStats struct {
	Opens  uint64
	Reads  uint64
	Ioctls uint64
	Closes uint64
	IRQs   uint64
}

// Kernel is the normal-world OS instance.
type Kernel struct {
	clock *tz.Clock
	cost  tz.CostModel
	mem   *memory.PhysMem

	mu      sync.Mutex
	devices map[string]CharDevice
	irqs    map[int]func()
	files   map[int]*file
	nextFD  int
	dmesg   []string
	stats   SyscallStats
}

type file struct {
	path string
	dev  CharDevice
}

// New creates a kernel. mem may be nil if no snooping is needed.
func New(clock *tz.Clock, cost tz.CostModel, mem *memory.PhysMem) *Kernel {
	return &Kernel{
		clock:   clock,
		cost:    cost,
		mem:     mem,
		devices: make(map[string]CharDevice),
		irqs:    make(map[int]func()),
		files:   make(map[int]*file),
		nextFD:  3, // 0..2 reserved, as tradition demands
	}
}

// RegisterDevice binds a device node path (e.g. "/dev/i2s0") to a driver.
func (k *Kernel) RegisterDevice(path string, dev CharDevice) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.devices[path] = dev
	k.logfLocked("registered device %s", path)
}

// UnregisterDevice removes a device node.
func (k *Kernel) UnregisterDevice(path string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.devices, path)
	k.logfLocked("unregistered device %s", path)
}

// Devices lists registered device node paths (unordered).
func (k *Kernel) Devices() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]string, 0, len(k.devices))
	for p := range k.devices {
		out = append(out, p)
	}
	return out
}

// Open performs the open(2) syscall and returns a descriptor.
func (k *Kernel) Open(path string) (int, error) {
	k.clock.Advance(k.cost.Syscall)
	k.mu.Lock()
	dev, ok := k.devices[path]
	if !ok {
		k.mu.Unlock()
		return -1, fmt.Errorf("%w: %s", ErrNoSuchDevice, path)
	}
	k.stats.Opens++
	k.mu.Unlock()
	if err := dev.DevOpen(); err != nil {
		return -1, fmt.Errorf("open %s: %w", path, err)
	}
	k.mu.Lock()
	fd := k.nextFD
	k.nextFD++
	k.files[fd] = &file{path: path, dev: dev}
	k.mu.Unlock()
	return fd, nil
}

func (k *Kernel) lookup(fd int) (*file, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	f, ok := k.files[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return f, nil
}

// Read performs the read(2) syscall.
func (k *Kernel) Read(fd int, buf []byte) (int, error) {
	k.clock.Advance(k.cost.Syscall)
	f, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	k.mu.Lock()
	k.stats.Reads++
	k.mu.Unlock()
	n, err := f.dev.DevRead(buf)
	if err != nil {
		return n, fmt.Errorf("read %s: %w", f.path, err)
	}
	// Copy-to-user cost.
	k.clock.Advance(tz.Cycles(n) * k.cost.CopyPerByte)
	return n, nil
}

// Ioctl performs the ioctl(2) syscall.
func (k *Kernel) Ioctl(fd int, cmd uint32, arg uint64) (uint64, error) {
	k.clock.Advance(k.cost.Syscall)
	f, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	k.mu.Lock()
	k.stats.Ioctls++
	k.mu.Unlock()
	res, err := f.dev.DevIoctl(cmd, arg)
	if err != nil {
		return res, fmt.Errorf("ioctl %s: %w", f.path, err)
	}
	return res, nil
}

// Close performs the close(2) syscall.
func (k *Kernel) Close(fd int) error {
	k.clock.Advance(k.cost.Syscall)
	k.mu.Lock()
	f, ok := k.files[fd]
	if ok {
		delete(k.files, fd)
		k.stats.Closes++
	}
	k.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	if err := f.dev.DevClose(); err != nil {
		return fmt.Errorf("close %s: %w", f.path, err)
	}
	return nil
}

// RegisterIRQ claims an interrupt line.
func (k *Kernel) RegisterIRQ(line int, handler func()) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.irqs[line] = handler
}

// RaiseIRQ delivers an interrupt to its registered handler, charging
// interrupt-entry cost.
func (k *Kernel) RaiseIRQ(line int) error {
	k.clock.Advance(k.cost.InterruptEntry)
	k.mu.Lock()
	h, ok := k.irqs[line]
	if ok {
		k.stats.IRQs++
	}
	k.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoIRQHandler, line)
	}
	h()
	return nil
}

// Logf appends a formatted line to the dmesg ring.
func (k *Kernel) Logf(format string, args ...any) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.logfLocked(format, args...)
}

func (k *Kernel) logfLocked(format string, args ...any) {
	const ringMax = 1024
	k.dmesg = append(k.dmesg, fmt.Sprintf("[%12d] ", uint64(k.clock.Now()))+fmt.Sprintf(format, args...))
	if len(k.dmesg) > ringMax {
		k.dmesg = k.dmesg[len(k.dmesg)-ringMax:]
	}
}

// Dmesg returns a copy of the kernel log.
func (k *Kernel) Dmesg() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]string(nil), k.dmesg...)
}

// Stats returns a snapshot of syscall counters.
func (k *Kernel) Stats() SyscallStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.stats
}

// SnoopResult reports one buffer-snooping attempt by a compromised kernel.
type SnoopResult struct {
	Addr    uint64
	Want    int
	Got     []byte
	Blocked bool // true when the TZASC rejected the read
}

// Snooper models the paper's compromised-OS adversary: privileged code
// that reads arbitrary physical memory through the kernel's linear map.
// Its reads carry the normal-world identity, so the TZASC — and nothing
// else — decides what it can see.
type Snooper struct {
	mem *memory.PhysMem
}

// NewSnooper creates the adversary over the platform memory.
func NewSnooper(mem *memory.PhysMem) *Snooper {
	return &Snooper{mem: mem}
}

// Capture attempts to read n bytes at addr.
func (s *Snooper) Capture(addr uint64, n int) SnoopResult {
	buf := make([]byte, n)
	err := s.mem.ReadAt(tz.WorldNormal, addr, buf)
	if err != nil {
		return SnoopResult{Addr: addr, Want: n, Blocked: true}
	}
	return SnoopResult{Addr: addr, Want: n, Got: buf}
}

// CaptureAll sweeps a list of candidate buffers (e.g. every DMA buffer the
// kernel ever configured) and returns the per-buffer outcomes.
func (s *Snooper) CaptureAll(bufs []struct {
	Addr uint64
	Size int
}) []SnoopResult {
	out := make([]SnoopResult, 0, len(bufs))
	for _, b := range bufs {
		out = append(out, s.Capture(b.Addr, b.Size))
	}
	return out
}
