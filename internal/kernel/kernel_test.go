package kernel

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/memory"
	"repro/internal/tz"
)

// fakeDev is a scripted char device.
type fakeDev struct {
	opened  int
	closed  int
	reads   int
	payload []byte
	openErr error
}

func (f *fakeDev) DevOpen() error {
	if f.openErr != nil {
		return f.openErr
	}
	f.opened++
	return nil
}

func (f *fakeDev) DevRead(buf []byte) (int, error) {
	f.reads++
	return copy(buf, f.payload), nil
}

func (f *fakeDev) DevIoctl(cmd uint32, arg uint64) (uint64, error) {
	return uint64(cmd) + arg, nil
}

func (f *fakeDev) DevClose() error {
	f.closed++
	return nil
}

func newKernel(t *testing.T) (*Kernel, *tz.Clock) {
	t.Helper()
	clock := tz.NewClock()
	return New(clock, tz.DefaultCostModel(), nil), clock
}

func TestOpenReadClose(t *testing.T) {
	k, clock := newKernel(t)
	dev := &fakeDev{payload: []byte("pcm")}
	k.RegisterDevice("/dev/i2s0", dev)

	fd, err := k.Open("/dev/i2s0")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	buf := make([]byte, 8)
	n, err := k.Read(fd, buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if n != 3 || string(buf[:n]) != "pcm" {
		t.Errorf("Read = %d %q", n, buf[:n])
	}
	res, err := k.Ioctl(fd, 10, 32)
	if err != nil || res != 42 {
		t.Errorf("Ioctl = (%d,%v), want (42,nil)", res, err)
	}
	if err := k.Close(fd); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if dev.opened != 1 || dev.closed != 1 || dev.reads != 1 {
		t.Errorf("device saw open=%d close=%d reads=%d", dev.opened, dev.closed, dev.reads)
	}
	st := k.Stats()
	if st.Opens != 1 || st.Reads != 1 || st.Ioctls != 1 || st.Closes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if clock.Now() == 0 {
		t.Error("syscalls did not advance the clock")
	}
}

func TestOpenErrors(t *testing.T) {
	k, _ := newKernel(t)
	if _, err := k.Open("/dev/nope"); !errors.Is(err, ErrNoSuchDevice) {
		t.Errorf("Open missing = %v", err)
	}
	boom := errors.New("hw fault")
	k.RegisterDevice("/dev/bad", &fakeDev{openErr: boom})
	if _, err := k.Open("/dev/bad"); !errors.Is(err, boom) {
		t.Errorf("Open error = %v, want wrapped hw fault", err)
	}
}

func TestBadFD(t *testing.T) {
	k, _ := newKernel(t)
	if _, err := k.Read(99, make([]byte, 4)); !errors.Is(err, ErrBadFD) {
		t.Errorf("Read bad fd = %v", err)
	}
	if _, err := k.Ioctl(99, 1, 2); !errors.Is(err, ErrBadFD) {
		t.Errorf("Ioctl bad fd = %v", err)
	}
	if err := k.Close(99); !errors.Is(err, ErrBadFD) {
		t.Errorf("Close bad fd = %v", err)
	}
}

func TestCloseInvalidatesFD(t *testing.T) {
	k, _ := newKernel(t)
	k.RegisterDevice("/dev/d", &fakeDev{})
	fd, err := k.Open("/dev/d")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := k.Close(fd); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := k.Read(fd, nil); !errors.Is(err, ErrBadFD) {
		t.Errorf("Read after close = %v", err)
	}
}

func TestUnregisterDevice(t *testing.T) {
	k, _ := newKernel(t)
	k.RegisterDevice("/dev/x", &fakeDev{})
	if len(k.Devices()) != 1 {
		t.Fatal("device not registered")
	}
	k.UnregisterDevice("/dev/x")
	if len(k.Devices()) != 0 {
		t.Fatal("device not unregistered")
	}
	if _, err := k.Open("/dev/x"); !errors.Is(err, ErrNoSuchDevice) {
		t.Errorf("Open after unregister = %v", err)
	}
}

func TestIRQDispatch(t *testing.T) {
	k, clock := newKernel(t)
	fired := 0
	k.RegisterIRQ(42, func() { fired++ })
	before := clock.Now()
	if err := k.RaiseIRQ(42); err != nil {
		t.Fatalf("RaiseIRQ: %v", err)
	}
	if fired != 1 {
		t.Errorf("handler fired %d times", fired)
	}
	if clock.Now() == before {
		t.Error("IRQ did not advance the clock")
	}
	if err := k.RaiseIRQ(7); !errors.Is(err, ErrNoIRQHandler) {
		t.Errorf("unclaimed IRQ = %v", err)
	}
	if st := k.Stats(); st.IRQs != 1 {
		t.Errorf("IRQs = %d", st.IRQs)
	}
}

func TestDmesg(t *testing.T) {
	k, _ := newKernel(t)
	k.Logf("probing %s", "i2s0")
	k.RegisterDevice("/dev/i2s0", &fakeDev{})
	log := k.Dmesg()
	if len(log) != 2 {
		t.Fatalf("dmesg has %d lines", len(log))
	}
	if !strings.Contains(log[0], "probing i2s0") {
		t.Errorf("dmesg[0] = %q", log[0])
	}
	if !strings.Contains(log[1], "registered device /dev/i2s0") {
		t.Errorf("dmesg[1] = %q", log[1])
	}
}

func TestSnooperReadsNormalBlockedOnSecure(t *testing.T) {
	p, err := memory.NewPlatform(memory.DefaultLayout())
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	// Plant "audio" in normal DRAM and in the secure carve-out.
	normalAddr := p.Layout.DRAMBase + 0x5000
	secureAddr := p.Layout.SecureBase + 0x5000
	secret := []byte("the user said: password tuesday")
	if err := p.Mem.WriteAt(tz.WorldNormal, normalAddr, secret); err != nil {
		t.Fatalf("WriteAt normal: %v", err)
	}
	if err := p.Mem.WriteAt(tz.WorldSecure, secureAddr, secret); err != nil {
		t.Fatalf("WriteAt secure: %v", err)
	}

	s := NewSnooper(p.Mem)
	got := s.Capture(normalAddr, len(secret))
	if got.Blocked {
		t.Fatal("snooper blocked on normal DRAM")
	}
	if string(got.Got) != string(secret) {
		t.Errorf("snooper read %q", got.Got)
	}
	blocked := s.Capture(secureAddr, len(secret))
	if !blocked.Blocked {
		t.Fatal("snooper NOT blocked on secure carve-out")
	}
	if len(blocked.Got) != 0 {
		t.Error("blocked capture returned data")
	}
}

func TestSnooperCaptureAll(t *testing.T) {
	p, err := memory.NewPlatform(memory.DefaultLayout())
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	s := NewSnooper(p.Mem)
	results := s.CaptureAll([]struct {
		Addr uint64
		Size int
	}{
		{p.Layout.DRAMBase, 16},
		{p.Layout.SecureBase, 16},
	})
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Blocked || !results[1].Blocked {
		t.Errorf("blocked flags = %v,%v, want false,true", results[0].Blocked, results[1].Blocked)
	}
}
