package audio

// Golden-equivalence tests for the fused synthesizer: the optimized
// render path must reproduce the historical (allocate-and-concatenate)
// implementation to within the oscillator resync tolerance (~1e-14
// absolute; we assert 1e-12), because downstream transcripts — and with
// them the fleet's privacy audit counters — depend on the sample
// values. naiveSynthesize* below is the pre-optimization implementation
// kept verbatim as the reference. Everything around the sine oscillator
// (noise streams, envelope, gaps, clamping) is exactly reproduced, so
// the only divergence is the bounded rotation-recurrence drift.

import (
	"math"
	"math/rand/v2"
	"testing"
)

func naiveSynthesizeWord(v Voice, word string) PCM {
	f := WordFormants(word)
	rng := rand.New(rand.NewPCG(v.Seed, fnvMix(word, v.Seed)))
	p := NewPCM(v.Rate, v.WordDur)
	n := len(p.Samples)
	if n == 0 {
		return p
	}
	detune := 1 + (rng.Float64()-0.5)*0.03
	amps := [3]float64{0.5, 0.3, 0.2}
	phases := [3]float64{rng.Float64() * 2 * math.Pi, rng.Float64() * 2 * math.Pi, rng.Float64() * 2 * math.Pi}
	for i := 0; i < n; i++ {
		t := float64(i) / float64(v.Rate)
		var s float64
		for k := 0; k < 3; k++ {
			s += amps[k] * math.Sin(2*math.Pi*f[k]*detune*t+phases[k])
		}
		env := 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		p.Samples[i] = s * env * 0.6
	}
	if v.NoiseAmp > 0 {
		noise := WhiteNoise(v.Rate, v.NoiseAmp, v.WordDur, rng.Uint64())
		p = MixInto(p, noise, 0)
	}
	return p.Clamp()
}

func naiveSynthesize(v Voice, words []string) PCM {
	out := Silence(v.Rate, v.GapDur)
	for i, w := range words {
		if i > 0 {
			out.Append(Silence(v.Rate, v.GapDur))
		}
		out.Append(naiveSynthesizeWord(v, w))
	}
	out.Append(Silence(v.Rate, v.GapDur))
	if v.NoiseAmp > 0 {
		noise := WhiteNoise(v.Rate, v.NoiseAmp/2, out.Duration(), v.Seed^0xabcdef)
		out = MixInto(out, noise, 0)
	}
	return out
}

func samplesEqual(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d samples, want %d", label, len(got), len(want))
	}
	const tol = 1e-12
	for i := range want {
		if d := math.Abs(want[i] - got[i]); d > tol {
			t.Fatalf("%s: sample %d = %v, want %v (|diff| %g > %g)", label, i, got[i], want[i], d, tol)
		}
	}
}

func TestSynthesizeWordMatchesNaive(t *testing.T) {
	for _, noise := range []float64{0, 0.01, 0.3} {
		for seed := uint64(1); seed < 6; seed++ {
			v := DefaultVoice(seed)
			v.NoiseAmp = noise
			for _, w := range []string{"password", "weather", "on"} {
				want := naiveSynthesizeWord(v, w)
				got := v.SynthesizeWord(w)
				samplesEqual(t, w, want.Samples, got.Samples)
			}
		}
	}
}

func TestSynthesizeMatchesNaive(t *testing.T) {
	utterances := [][]string{
		nil,
		{"on"},
		{"my", "password", "is", "tango", "seven"},
		{"turn", "on", "the", "light"},
	}
	for _, noise := range []float64{0, 0.01, 0.2} {
		for seed := uint64(1); seed < 8; seed += 3 {
			v := DefaultVoice(seed)
			v.NoiseAmp = noise
			for _, words := range utterances {
				want := naiveSynthesize(v, words)
				got := v.Synthesize(words)
				samplesEqual(t, "utterance", want.Samples, got.Samples)
			}
		}
	}
}

func BenchmarkSynthesizeUtterance(b *testing.B) {
	v := DefaultVoice(1)
	words := []string{"my", "password", "is", "tango", "seven"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Seed = 1_000_003 + uint64(i)*97 + 13
		_ = v.Synthesize(words)
	}
}
