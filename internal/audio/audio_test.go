package audio

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewPCMDuration(t *testing.T) {
	p := NewPCM(16000, 250*time.Millisecond)
	if len(p.Samples) != 4000 {
		t.Errorf("len = %d, want 4000", len(p.Samples))
	}
	if d := p.Duration(); d != 250*time.Millisecond {
		t.Errorf("Duration = %v, want 250ms", d)
	}
	if (PCM{}).Duration() != 0 {
		t.Error("empty PCM duration should be 0")
	}
}

func TestSineProperties(t *testing.T) {
	p := Sine(16000, 440, 0.5, 100*time.Millisecond)
	if peak := p.Peak(); peak > 0.5001 || peak < 0.45 {
		t.Errorf("Peak = %v, want ~0.5", peak)
	}
	// RMS of a sine is amp/sqrt(2).
	want := 0.5 / math.Sqrt2
	if rms := p.RMS(); math.Abs(rms-want) > 0.01 {
		t.Errorf("RMS = %v, want ~%v", rms, want)
	}
}

func TestSilence(t *testing.T) {
	p := Silence(16000, 10*time.Millisecond)
	if p.RMS() != 0 || p.Peak() != 0 {
		t.Error("silence is not silent")
	}
}

func TestWhiteNoiseDeterminism(t *testing.T) {
	a := WhiteNoise(16000, 0.1, 50*time.Millisecond, 42)
	b := WhiteNoise(16000, 0.1, 50*time.Millisecond, 42)
	c := WhiteNoise(16000, 0.1, 50*time.Millisecond, 43)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed produced different noise")
		}
	}
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
	if peak := a.Peak(); peak > 0.1 {
		t.Errorf("noise peak %v beyond amplitude", peak)
	}
}

func TestGainAndClamp(t *testing.T) {
	p := Sine(16000, 100, 0.8, 10*time.Millisecond).Gain(2)
	if p.Peak() <= 1 {
		t.Error("gain did not amplify")
	}
	p.Clamp()
	if p.Peak() > 1 {
		t.Errorf("Clamp left peak %v", p.Peak())
	}
}

func TestAppendRateMismatch(t *testing.T) {
	p := Sine(16000, 100, 0.5, 10*time.Millisecond)
	n := len(p.Samples)
	p.Append(Sine(8000, 100, 0.5, 10*time.Millisecond))
	if len(p.Samples) != n {
		t.Error("Append with mismatched rate should be a no-op")
	}
	p.Append(Sine(16000, 100, 0.5, 10*time.Millisecond))
	if len(p.Samples) != 2*n {
		t.Error("Append with matching rate failed")
	}
}

func TestInt16RoundTrip(t *testing.T) {
	prop := func(raw []int16) bool {
		p := FromInt16(16000, raw)
		back := p.ToInt16()
		if len(back) != len(raw) {
			return false
		}
		for i := range raw {
			// Quantization round trip is exact except at the asymmetric
			// extreme -32768 which re-quantizes within 1 LSB.
			if d := int(back[i]) - int(raw[i]); d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFrames(t *testing.T) {
	p := PCM{Rate: 16000, Samples: make([]float64, 100)}
	frames := p.Frames(40, 20)
	if len(frames) != 4 {
		t.Errorf("frames = %d, want 4", len(frames))
	}
	for _, f := range frames {
		if len(f) != 40 {
			t.Errorf("frame len = %d, want 40", len(f))
		}
	}
	if p.Frames(200, 20) != nil {
		t.Error("too-short signal should produce no frames")
	}
	if p.Frames(0, 20) != nil || p.Frames(40, 0) != nil {
		t.Error("degenerate params should produce no frames")
	}
}

func TestWordFormantsStableAndDistinct(t *testing.T) {
	a1 := WordFormants("password")
	a2 := WordFormants("password")
	a3 := WordFormants("PASSWORD") // case-insensitive
	b := WordFormants("weather")
	if a1 != a2 || a1 != a3 {
		t.Error("formants not stable")
	}
	if a1 == b {
		t.Error("distinct words share formants")
	}
	for _, f := range []Formants{a1, b} {
		if f[0] < 300 || f[0] >= 800 || f[1] < 900 || f[1] >= 1800 || f[2] < 2000 || f[2] >= 3400 {
			t.Errorf("formants out of band: %v", f)
		}
	}
}

func TestSynthesizeWordDeterministic(t *testing.T) {
	v := DefaultVoice(7)
	a := v.SynthesizeWord("music")
	b := v.SynthesizeWord("music")
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("lengths differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same voice+word produced different audio")
		}
	}
	v2 := DefaultVoice(8)
	c := v2.SynthesizeWord("music")
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical word audio")
	}
}

func TestSynthesizeWordHasEnergy(t *testing.T) {
	v := DefaultVoice(1)
	p := v.SynthesizeWord("light")
	if p.RMS() < 0.05 {
		t.Errorf("word RMS %v too low", p.RMS())
	}
	if p.Peak() > 1 {
		t.Errorf("word peak %v exceeds full scale", p.Peak())
	}
}

func TestSynthesizeUtteranceStructure(t *testing.T) {
	v := DefaultVoice(3)
	v.NoiseAmp = 0 // so gaps are true silence
	words := []string{"turn", "on", "light"}
	p := v.Synthesize(words)
	wantDur := time.Duration(len(words))*v.WordDur + time.Duration(len(words)+1)*v.GapDur
	if d := p.Duration(); d < wantDur-10*time.Millisecond || d > wantDur+10*time.Millisecond {
		t.Errorf("utterance duration %v, want ~%v", d, wantDur)
	}
	// Leading gap must be silent, first word region must not be.
	gapN := int(float64(v.Rate) * v.GapDur.Seconds())
	lead := PCM{Rate: v.Rate, Samples: p.Samples[:gapN]}
	if lead.RMS() > 1e-9 {
		t.Errorf("leading gap not silent: RMS %v", lead.RMS())
	}
	word := PCM{Rate: v.Rate, Samples: p.Samples[gapN : gapN+1000]}
	if word.RMS() < 0.01 {
		t.Errorf("first word region silent: RMS %v", word.RMS())
	}
}

func TestMixIntoOffsets(t *testing.T) {
	dst := Silence(16000, 10*time.Millisecond)
	src := Sine(16000, 100, 0.5, 1*time.Millisecond)
	out := MixInto(dst, src, -5) // partially before start: must not panic
	out = MixInto(out, src, len(out.Samples)-3)
	_ = out
}

func TestWAVRoundTrip(t *testing.T) {
	v := DefaultVoice(5)
	p := v.SynthesizeWord("hello")
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, p); err != nil {
		t.Fatalf("EncodeWAV: %v", err)
	}
	got, err := DecodeWAV(&buf)
	if err != nil {
		t.Fatalf("DecodeWAV: %v", err)
	}
	if got.Rate != p.Rate {
		t.Errorf("rate = %d, want %d", got.Rate, p.Rate)
	}
	if len(got.Samples) != len(p.Samples) {
		t.Fatalf("samples = %d, want %d", len(got.Samples), len(p.Samples))
	}
	// Quantization error bounded by 1 LSB.
	for i := range got.Samples {
		if math.Abs(got.Samples[i]-p.Samples[i]) > 1.0/32768+1e-9 {
			t.Fatalf("sample %d differs beyond quantization: %v vs %v", i, got.Samples[i], p.Samples[i])
		}
	}
}

func TestDecodeWAVErrors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadWAV},
		{"bad magic", []byte("NOTARIFFWAVE"), ErrBadWAV},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeWAV(bytes.NewReader(tt.data)); !errors.Is(err, tt.want) {
				t.Errorf("DecodeWAV = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDecodeWAVUnsupported(t *testing.T) {
	// Build a stereo WAV header by hand.
	var buf bytes.Buffer
	p := Sine(8000, 100, 0.1, 5*time.Millisecond)
	if err := EncodeWAV(&buf, p); err != nil {
		t.Fatalf("EncodeWAV: %v", err)
	}
	data := buf.Bytes()
	data[22] = 2 // channels = 2
	if _, err := DecodeWAV(bytes.NewReader(data)); !errors.Is(err, ErrUnsupportedWAV) {
		t.Errorf("stereo decode = %v, want ErrUnsupportedWAV", err)
	}
}

func TestDecodeWAVSkipsUnknownChunks(t *testing.T) {
	var buf bytes.Buffer
	p := Sine(8000, 100, 0.1, 5*time.Millisecond)
	if err := EncodeWAV(&buf, p); err != nil {
		t.Fatalf("EncodeWAV: %v", err)
	}
	raw := buf.Bytes()
	// Splice a LIST chunk between fmt and data (offset 36).
	list := append([]byte("LIST"), 0x04, 0, 0, 0, 'I', 'N', 'F', 'O')
	spliced := append(append(append([]byte{}, raw[:36]...), list...), raw[36:]...)
	got, err := DecodeWAV(bytes.NewReader(spliced))
	if err != nil {
		t.Fatalf("DecodeWAV with LIST chunk: %v", err)
	}
	if len(got.Samples) != len(p.Samples) {
		t.Errorf("samples = %d, want %d", len(got.Samples), len(p.Samples))
	}
}
