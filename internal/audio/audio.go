// Package audio provides PCM buffers, deterministic signal generators, a
// WAV codec, and a synthetic speech synthesizer.
//
// The synthesizer stands in for the human speech the paper's microphone
// captures: every vocabulary word maps to a stable formant signature
// (three resonant frequencies derived from the word), so a word is
// acoustically recognizable by the MFCC front end exactly the way real
// words are — while remaining fully deterministic and generatable offline.
package audio

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"strings"
	"sync"
	"time"
)

// PCM is a mono pulse-code-modulated signal with samples in [-1, 1].
type PCM struct {
	Rate    int
	Samples []float64
}

// NewPCM returns a zeroed signal of the given duration.
func NewPCM(rate int, d time.Duration) PCM {
	n := int(float64(rate) * d.Seconds())
	return PCM{Rate: rate, Samples: make([]float64, n)}
}

// Duration returns the signal length.
func (p PCM) Duration() time.Duration {
	if p.Rate == 0 {
		return 0
	}
	return time.Duration(float64(len(p.Samples)) / float64(p.Rate) * float64(time.Second))
}

// Clone returns a deep copy.
func (p PCM) Clone() PCM {
	s := make([]float64, len(p.Samples))
	copy(s, p.Samples)
	return PCM{Rate: p.Rate, Samples: s}
}

// Append concatenates q after p (rates must match; mismatch appends nothing).
func (p *PCM) Append(q PCM) {
	if p.Rate == 0 {
		p.Rate = q.Rate
	}
	if q.Rate != p.Rate {
		return
	}
	p.Samples = append(p.Samples, q.Samples...)
}

// Gain scales the signal in place and returns it.
func (p PCM) Gain(g float64) PCM {
	for i := range p.Samples {
		p.Samples[i] *= g
	}
	return p
}

// Clamp limits all samples to [-1, 1] in place and returns the signal.
func (p PCM) Clamp() PCM {
	for i, s := range p.Samples {
		if s > 1 {
			p.Samples[i] = 1
		} else if s < -1 {
			p.Samples[i] = -1
		}
	}
	return p
}

// RMS returns the root-mean-square level of the signal.
func (p PCM) RMS() float64 {
	if len(p.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range p.Samples {
		sum += s * s
	}
	return math.Sqrt(sum / float64(len(p.Samples)))
}

// Peak returns the maximum absolute sample value.
func (p PCM) Peak() float64 {
	var peak float64
	for _, s := range p.Samples {
		if a := math.Abs(s); a > peak {
			peak = a
		}
	}
	return peak
}

// ToInt16 quantizes to signed 16-bit samples (the I2S wire format used in
// the experiments).
func (p PCM) ToInt16() []int16 {
	out := make([]int16, len(p.Samples))
	for i, s := range p.Samples {
		v := math.Round(s * 32768)
		if v > 32767 {
			v = 32767
		} else if v < -32768 {
			v = -32768
		}
		out[i] = int16(v)
	}
	return out
}

// FromInt16 builds a PCM signal from 16-bit samples.
func FromInt16(rate int, samples []int16) PCM {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = float64(s) / 32768
	}
	return PCM{Rate: rate, Samples: out}
}

// DecodePCM16Into decodes a little-endian 16-bit wire payload into dst's
// capacity (grown when needed), applying the FromInt16 scaling. It is
// the shared scratch-reusing decode for provider-side ingest paths.
func DecodePCM16Into(dst []float64, payload []byte) ([]float64, error) {
	if len(payload)%2 != 0 {
		return nil, fmt.Errorf("audio: odd PCM16 payload %d", len(payload))
	}
	n := len(payload) / 2
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	out := dst[:n]
	for i := range out {
		s := int16(uint16(payload[2*i]) | uint16(payload[2*i+1])<<8)
		out[i] = float64(s) / 32768
	}
	return out, nil
}

// Frames splits the signal into overlapping frames of frameLen samples
// advancing by hop. The tail that does not fill a frame is discarded.
func (p PCM) Frames(frameLen, hop int) [][]float64 {
	if frameLen <= 0 || hop <= 0 || len(p.Samples) < frameLen {
		return nil
	}
	n := (len(p.Samples)-frameLen)/hop + 1
	frames := make([][]float64, 0, n)
	for i := 0; i+frameLen <= len(p.Samples); i += hop {
		frames = append(frames, p.Samples[i:i+frameLen])
	}
	return frames
}

// Sine generates a sine tone.
func Sine(rate int, freq, amp float64, d time.Duration) PCM {
	p := NewPCM(rate, d)
	w := 2 * math.Pi * freq / float64(rate)
	for i := range p.Samples {
		p.Samples[i] = amp * math.Sin(w*float64(i))
	}
	return p
}

// Silence generates a zero signal.
func Silence(rate int, d time.Duration) PCM { return NewPCM(rate, d) }

// WhiteNoise generates seeded uniform noise with the given amplitude.
func WhiteNoise(rate int, amp float64, d time.Duration, seed uint64) PCM {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	p := NewPCM(rate, d)
	for i := range p.Samples {
		p.Samples[i] = amp * (2*rng.Float64() - 1)
	}
	return p
}

// MixInto adds src into dst starting at sample offset, clamping afterwards.
func MixInto(dst PCM, src PCM, offset int) PCM {
	for i, s := range src.Samples {
		j := offset + i
		if j < 0 || j >= len(dst.Samples) {
			continue
		}
		dst.Samples[j] += s
	}
	return dst.Clamp()
}

// Formants are the resonant frequencies giving a synthetic word its
// acoustic identity.
type Formants [3]float64

// WordFormants derives the stable formant signature of a word. The three
// frequencies land in disjoint speech-plausible bands (F1 300–800 Hz,
// F2 900–1800 Hz, F3 2000–3400 Hz), so distinct words are spectrally
// separable while all remaining inside a 16 kHz capture band.
func WordFormants(word string) Formants {
	h := fnv.New64a()
	_, _ = h.Write([]byte(strings.ToLower(word)))
	v := h.Sum64()
	f1 := 300 + float64(v%500)
	f2 := 900 + float64((v>>16)%900)
	f3 := 2000 + float64((v>>32)%1400)
	return Formants{f1, f2, f3}
}

// Voice configures the synthetic speaker.
type Voice struct {
	// Rate is the output sample rate in Hz.
	Rate int
	// WordDur is the voiced duration of each word.
	WordDur time.Duration
	// GapDur is the silence between words.
	GapDur time.Duration
	// NoiseAmp is the amplitude of additive background noise (0 disables).
	NoiseAmp float64
	// Seed drives all randomness (jitter and noise); same seed, same audio.
	Seed uint64
}

// DefaultVoice returns the speaker used across the experiments:
// 16 kHz, 220 ms words, 120 ms gaps, mild background noise.
func DefaultVoice(seed uint64) Voice {
	return Voice{
		Rate:     16000,
		WordDur:  220 * time.Millisecond,
		GapDur:   120 * time.Millisecond,
		NoiseAmp: 0.01,
		Seed:     seed,
	}
}

// envCache memoizes the raised-cosine word envelope per sample count.
// Every word of a given Voice has the same duration, so the per-sample
// math.Cos of the historical inner loop collapses to one table lookup;
// the cached values are the exact floats the inline computation produced.
var envCache sync.Map // int -> []float64

func wordEnvelope(n int) []float64 {
	if v, ok := envCache.Load(n); ok {
		return v.([]float64)
	}
	env := make([]float64, n)
	for i := range env {
		env[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	v, _ := envCache.LoadOrStore(n, env)
	return v.([]float64)
}

// renderWordInto synthesizes one word into dst (the word's sample span),
// including the per-word noise mix and clamp. It draws from the same RNG
// streams in the same order as the historical SynthesizeWord, producing
// bit-identical samples while touching each sample O(1) times with no
// intermediate buffers.
func (v Voice) renderWordInto(dst []float64, word string) {
	f := WordFormants(word)
	rng := rand.New(rand.NewPCG(v.Seed, fnvMix(word, v.Seed)))
	n := len(dst)
	if n == 0 {
		return
	}
	// Small random detune (±1.5%) models speaker variability.
	detune := 1 + (rng.Float64()-0.5)*0.03
	amps := [3]float64{0.5, 0.3, 0.2}
	phases := [3]float64{rng.Float64() * 2 * math.Pi, rng.Float64() * 2 * math.Pi, rng.Float64() * 2 * math.Pi}
	w := [3]float64{2 * math.Pi * f[0] * detune, 2 * math.Pi * f[1] * detune, 2 * math.Pi * f[2] * detune}
	env := wordEnvelope(n)
	// The formant arguments w[k]*t + phase form arithmetic progressions,
	// so each sine is generated by a complex-rotation recurrence instead
	// of a math.Sin call per sample. The oscillator is resynchronized to
	// the exact math.Sin/Cos value every oscResync samples, bounding the
	// accumulated rounding drift to ~1e-14 absolute — twelve orders of
	// magnitude below the synthesizer's own noise floor, so downstream
	// VAD/matching decisions are unaffected.
	const oscResync = 64
	var sn, cs, rotS, rotC [3]float64
	for k := 0; k < 3; k++ {
		step := w[k] / float64(v.Rate)
		rotS[k], rotC[k] = math.Sin(step), math.Cos(step)
	}
	for i := 0; i < n; i++ {
		if i%oscResync == 0 {
			t := float64(i) / float64(v.Rate)
			for k := 0; k < 3; k++ {
				a := w[k]*t + phases[k]
				sn[k], cs[k] = math.Sin(a), math.Cos(a)
			}
		}
		s := amps[0]*sn[0] + amps[1]*sn[1] + amps[2]*sn[2]
		dst[i] = s * env[i] * 0.6
		for k := 0; k < 3; k++ {
			sn[k], cs[k] = sn[k]*rotC[k]+cs[k]*rotS[k], cs[k]*rotC[k]-sn[k]*rotS[k]
		}
	}
	if v.NoiseAmp > 0 {
		seed := rng.Uint64()
		nr := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		for i := 0; i < n; i++ {
			dst[i] += v.NoiseAmp * (2*nr.Float64() - 1)
		}
	}
	if !clampNeverFires(v.NoiseAmp) {
		clampInPlace(dst)
	}
}

func clampInPlace(s []float64) {
	for i, v := range s {
		if v > 1 {
			s[i] = 1
		} else if v < -1 {
			s[i] = -1
		}
	}
}

// clampNeverFires reports whether clamping a signal whose clean part is
// bounded by 0.61 plus noise of the given amplitude is provably the
// identity, letting the synthesizer skip the pass. The formant sum is
// ≤ (0.5+0.3+0.2)·env·0.6 ≤ 0.6 with at most a few ulps of rounding;
// 0.61 absorbs that slack with twelve orders of magnitude to spare.
func clampNeverFires(noiseAmp float64) bool {
	return 0.61+noiseAmp <= 1
}

// SynthesizeWord renders one word: its three formants with harmonic
// rolloff, an attack/release envelope, and per-utterance jitter so repeated
// words are similar but not identical (as in real speech).
func (v Voice) SynthesizeWord(word string) PCM {
	p := NewPCM(v.Rate, v.WordDur)
	v.renderWordInto(p.Samples, word)
	return p
}

// Synthesize renders an utterance: words separated by gaps, with leading
// and trailing silence so voice-activity detection has room to settle.
// The utterance is rendered directly into one exact-size buffer — same
// samples as concatenating SynthesizeWord outputs, without the repeated
// growth, noise and clamp passes.
func (v Voice) Synthesize(words []string) PCM {
	return v.SynthesizeInto(nil, words)
}

// SynthesizeInto is Synthesize rendering into buf's capacity (grown when
// needed), so per-utterance synthesis in a streaming loop reuses one
// buffer. The returned PCM aliases buf; hand its Samples back as the
// next call's buf once the signal has been consumed.
func (v Voice) SynthesizeInto(buf []float64, words []string) PCM {
	gapN := int(float64(v.Rate) * v.GapDur.Seconds())
	wordN := int(float64(v.Rate) * v.WordDur.Seconds())
	gaps := len(words) + 1
	if len(words) == 0 {
		gaps = 2
	}
	total := gaps*gapN + len(words)*wordN
	if cap(buf) < total {
		buf = make([]float64, total)
	}
	out := PCM{Rate: v.Rate, Samples: buf[:total]}
	// Words fully overwrite their spans, so only the gap regions need
	// zeroing (buf may hold a previous utterance).
	clear(out.Samples[:gapN])
	for i, w := range words {
		start := gapN + i*(wordN+gapN)
		v.renderWordInto(out.Samples[start:start+wordN], w)
		clear(out.Samples[start+wordN : start+wordN+gapN])
	}
	if len(words) == 0 {
		clear(out.Samples[gapN:])
	}
	if v.NoiseAmp > 0 {
		// Historical path: WhiteNoise over out.Duration() mixed at offset
		// 0 then a whole-signal clamp. The noise length is re-derived the
		// same way (duration round trip), as it can differ from len(out).
		seed := v.Seed ^ 0xabcdef
		nr := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		amp := v.NoiseAmp / 2
		nn := int(float64(v.Rate) * out.Duration().Seconds())
		if nn > len(out.Samples) {
			nn = len(out.Samples)
		}
		for i := 0; i < nn; i++ {
			out.Samples[i] += amp * (2*nr.Float64() - 1)
		}
		// Word samples are bounded by 0.61 + NoiseAmp, the utterance
		// noise adds NoiseAmp/2 more; when that total cannot reach ±1 the
		// clamp is the identity and is skipped.
		if !clampNeverFires(1.5 * v.NoiseAmp) {
			clampInPlace(out.Samples)
		}
	}
	return out
}

func fnvMix(s string, seed uint64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64() ^ seed
}
