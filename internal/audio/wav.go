package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// WAV codec errors.
var (
	// ErrBadWAV is returned for malformed RIFF/WAVE input.
	ErrBadWAV = errors.New("audio: malformed WAV")
	// ErrUnsupportedWAV is returned for WAV files we do not decode
	// (non-PCM, not 16-bit, not mono).
	ErrUnsupportedWAV = errors.New("audio: unsupported WAV variant")
)

// EncodeWAV writes the signal as a 16-bit mono PCM RIFF/WAVE stream.
func EncodeWAV(w io.Writer, p PCM) error {
	samples := p.ToInt16()
	dataLen := uint32(len(samples) * 2)
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], 36+dataLen)
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16)               // fmt chunk size
	binary.LittleEndian.PutUint16(hdr[20:22], 1)                // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], 1)                // mono
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(p.Rate))   // sample rate
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(p.Rate*2)) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)                // block align
	binary.LittleEndian.PutUint16(hdr[34:36], 16)               // bits per sample
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], dataLen)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wav header: %w", err)
	}
	buf := make([]byte, len(samples)*2)
	for i, s := range samples {
		binary.LittleEndian.PutUint16(buf[i*2:], uint16(s))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wav data: %w", err)
	}
	return nil
}

// DecodeWAV reads a 16-bit mono PCM RIFF/WAVE stream.
func DecodeWAV(r io.Reader) (PCM, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return PCM{}, fmt.Errorf("%w: %v", ErrBadWAV, err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" {
		return PCM{}, fmt.Errorf("%w: missing RIFF/WAVE magic", ErrBadWAV)
	}
	var (
		rate    int
		sawFmt  bool
		samples []int16
	)
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return PCM{}, fmt.Errorf("%w: chunk header: %v", ErrBadWAV, err)
		}
		id := string(chunk[0:4])
		size := binary.LittleEndian.Uint32(chunk[4:8])
		body := make([]byte, size)
		if _, err := io.ReadFull(r, body); err != nil {
			return PCM{}, fmt.Errorf("%w: chunk %q body: %v", ErrBadWAV, id, err)
		}
		switch id {
		case "fmt ":
			if size < 16 {
				return PCM{}, fmt.Errorf("%w: short fmt chunk", ErrBadWAV)
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			channels := binary.LittleEndian.Uint16(body[2:4])
			bits := binary.LittleEndian.Uint16(body[14:16])
			if format != 1 || channels != 1 || bits != 16 {
				return PCM{}, fmt.Errorf("%w: format=%d channels=%d bits=%d",
					ErrUnsupportedWAV, format, channels, bits)
			}
			rate = int(binary.LittleEndian.Uint32(body[4:8]))
			sawFmt = true
		case "data":
			if !sawFmt {
				return PCM{}, fmt.Errorf("%w: data before fmt", ErrBadWAV)
			}
			samples = make([]int16, len(body)/2)
			for i := range samples {
				samples[i] = int16(binary.LittleEndian.Uint16(body[i*2:]))
			}
		default:
			// Skip unknown chunks (LIST, fact, ...).
		}
		if size%2 == 1 {
			// Chunks are word-aligned; consume the pad byte if present.
			var pad [1]byte
			if _, err := io.ReadFull(r, pad[:]); err != nil && !errors.Is(err, io.EOF) {
				return PCM{}, fmt.Errorf("%w: pad: %v", ErrBadWAV, err)
			}
		}
	}
	if !sawFmt || samples == nil {
		return PCM{}, fmt.Errorf("%w: missing fmt or data chunk", ErrBadWAV)
	}
	return FromInt16(rate, samples), nil
}
