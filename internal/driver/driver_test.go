package driver

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/bus"
	"repro/internal/ftrace"
	"repro/internal/i2s"
	"repro/internal/memory"
	"repro/internal/peripheral"
	"repro/internal/tcb"
	"repro/internal/tz"
)

// rig is a complete platform fixture for driver tests.
type rig struct {
	plat   *memory.Platform
	clock  *tz.Clock
	bus    *bus.Bus
	ctrl   *i2s.Controller
	dma    *bus.DMA
	tracer *ftrace.Tracer
	drv    *SoundDriver
	mic    *peripheral.Microphone
}

const ctrlBase = 0x7000_0000

// newRig builds a driver instance in the given world. Secure builds draw
// I/O buffers from the secure heap and mark the controller window secure.
func newRig(t *testing.T, world tz.World, bufBytes int) *rig {
	t.Helper()
	plat, err := memory.NewPlatform(memory.DefaultLayout())
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	clock := tz.NewClock()
	cost := tz.DefaultCostModel()
	b := bus.New(clock, cost)
	ctrl := i2s.NewController("i2s0", 4096)
	if err := b.Map(ctrlBase, i2s.RegSize, world == tz.WorldSecure, ctrl); err != nil {
		t.Fatalf("Map: %v", err)
	}
	dma := bus.NewDMA(clock, cost, plat.Mem)
	heap := plat.DMAHeap
	if world == tz.WorldSecure {
		heap = plat.SecureHeap
	}
	tracer := ftrace.New(clock)
	drv, err := New(Config{
		Name:     "i2s0-" + world.String(),
		World:    world,
		Bus:      b,
		Ctrl:     ctrl,
		CtrlBase: ctrlBase,
		DMA:      dma,
		Mem:      plat.Mem,
		Heap:     heap,
		Clock:    clock,
		Cost:     cost,
		Tracer:   tracer,
		BufBytes: bufBytes,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mic, err := peripheral.NewMicrophone(ctrl, i2s.DefaultFormat())
	if err != nil {
		t.Fatalf("NewMicrophone: %v", err)
	}
	return &rig{plat: plat, clock: clock, bus: b, ctrl: ctrl, dma: dma, tracer: tracer, drv: drv, mic: mic}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{World: tz.World(9)}); err == nil {
		t.Error("bad world accepted")
	}
}

func TestLifecycleErrors(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 4096)
	if err := r.drv.Open(); !errors.Is(err, ErrNotProbed) {
		t.Errorf("Open before probe = %v", err)
	}
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if _, err := r.drv.ReadPCM(make([]byte, 8)); !errors.Is(err, ErrNotOpen) {
		t.Errorf("ReadPCM before open = %v", err)
	}
	if err := r.drv.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := r.drv.Open(); !errors.Is(err, ErrAlreadyOpen) {
		t.Errorf("double Open = %v", err)
	}
	if err := r.drv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.drv.Close(); !errors.Is(err, ErrNotOpen) {
		t.Errorf("double Close = %v", err)
	}
	// Probe is idempotent.
	if err := r.drv.Probe(); err != nil {
		t.Errorf("re-Probe = %v", err)
	}
}

func TestCaptureRoundTrip(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 4096)
	tone := audio.Sine(16000, 440, 0.5, 100*time.Millisecond)
	r.mic.Load(tone)

	wireBytes := len(tone.Samples) * 2
	got, err := r.drv.CaptureTask(i2s.DefaultFormat(), wireBytes, func(need int) {
		_, _ = r.mic.PumpBytes(minInt(need, 1024))
	})
	if err != nil {
		t.Fatalf("CaptureTask: %v", err)
	}
	if len(got) != wireBytes {
		t.Fatalf("captured %d bytes, want %d", len(got), wireBytes)
	}
	samples, err := i2s.DecodeFrames(got, i2s.DefaultFormat())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// The decoded stream must match the original within quantization.
	want := tone.ToInt16()
	for i := range want {
		if d := int(samples[i]) - int(want[i]); d < -1 || d > 1 {
			t.Fatalf("sample %d = %d, want %d", i, samples[i], want[i])
		}
	}
	if st := r.drv.Stats(); st.BytesCaptured != uint64(wireBytes) {
		t.Errorf("BytesCaptured = %d, want %d", st.BytesCaptured, wireBytes)
	}
}

func TestSecureBuildBuffersInSecureRAM(t *testing.T) {
	r := newRig(t, tz.WorldSecure, 4096)
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if err := r.drv.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	addr := r.drv.BufferAddr()
	if addr < r.plat.Layout.SecureBase {
		t.Fatalf("secure driver buffer at %#x, outside secure carve-out", addr)
	}
	// Normal world (compromised OS) cannot read the capture buffer.
	probe := make([]byte, 16)
	if err := r.plat.Mem.ReadAt(tz.WorldNormal, addr, probe); !errors.Is(err, tz.ErrSecurityViolation) {
		t.Errorf("normal-world read of secure buffer = %v, want violation", err)
	}
	// Normal world cannot even reach the controller registers.
	if _, err := r.bus.Read32(tz.WorldNormal, ctrlBase); !errors.Is(err, bus.ErrSecureDevice) {
		t.Errorf("normal-world MMIO on secure controller = %v", err)
	}
}

func TestNormalBuildBuffersSnoopable(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 4096)
	tone := audio.Sine(16000, 440, 0.5, 50*time.Millisecond)
	r.mic.Load(tone)
	want := len(tone.Samples) * 2
	if _, err := r.drv.CaptureTask(i2s.DefaultFormat(), want, func(need int) {
		_, _ = r.mic.PumpBytes(minInt(need, 1024))
	}); err != nil {
		t.Fatalf("CaptureTask: %v", err)
	}
	// CaptureTask closed the stream, but during capture the buffer was in
	// plain DRAM. Re-open to hold a live buffer and verify readability.
	if err := r.drv.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = r.drv.Close() }()
	probe := make([]byte, 16)
	if err := r.plat.Mem.ReadAt(tz.WorldNormal, r.drv.BufferAddr(), probe); err != nil {
		t.Errorf("normal-world read of normal buffer failed: %v", err)
	}
}

func TestCloseZeroesBuffer(t *testing.T) {
	r := newRig(t, tz.WorldSecure, 1024)
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if err := r.drv.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	addr := r.drv.BufferAddr()
	if err := r.plat.Mem.WriteAt(tz.WorldSecure, addr, []byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := r.drv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := make([]byte, 4)
	if err := r.plat.Mem.ReadAt(tz.WorldSecure, addr, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatalf("buffer not zeroed on close: %v", got)
		}
	}
}

func TestIoctls(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	f := i2s.Format{SampleRate: 48000, BitsPerSample: 16, Channels: 2}
	arg := uint64(uint32(f.SampleRate/25) | uint32(f.BitsPerSample)<<16 | uint32(f.Channels)<<24)
	if _, err := r.drv.IoctlDispatch(IoctlSetFormat, arg); err != nil {
		t.Fatalf("set format: %v", err)
	}
	got, err := r.drv.IoctlDispatch(IoctlGetFormat, 0)
	if err != nil {
		t.Fatalf("get format: %v", err)
	}
	if got != arg {
		t.Errorf("format round trip = %#x, want %#x", got, arg)
	}
	if _, err := r.drv.IoctlDispatch(IoctlGetStats, 0); err != nil {
		t.Errorf("get stats: %v", err)
	}
	if _, err := r.drv.IoctlDispatch(0xffff, 0); !errors.Is(err, ErrBadIoctl) {
		t.Errorf("unknown ioctl = %v", err)
	}
}

func TestTraceCaptureTaskMatchesStaticGraph(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 2048)
	tone := audio.Sine(16000, 300, 0.4, 30*time.Millisecond)
	r.mic.Load(tone)

	r.tracer.Start("capture")
	want := len(tone.Samples) * 2
	if _, err := r.drv.CaptureTask(i2s.DefaultFormat(), want, func(need int) {
		_, _ = r.mic.PumpBytes(minInt(need, 512))
	}); err != nil {
		t.Fatalf("CaptureTask: %v", err)
	}
	trace := r.tracer.Stop()

	tbl, err := BuildTable()
	if err != nil {
		t.Fatalf("BuildTable: %v", err)
	}
	// 1. Every traced function is in the inventory.
	for _, fn := range trace.Functions() {
		if _, ok := tbl.Meta(fn); !ok {
			t.Errorf("traced function %q missing from inventory", fn)
		}
	}
	// 2. Every observed parent->child call is a declared static edge.
	type frame struct{ name string }
	var stack []frame
	for _, e := range trace.Events {
		if e.Depth < len(stack) {
			stack = stack[:e.Depth]
		}
		if e.Depth > 0 && len(stack) >= e.Depth {
			parent := stack[e.Depth-1].name
			found := false
			for _, c := range tbl.Callees(parent) {
				if c == e.Name {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("observed call %s -> %s not in static graph", parent, e.Name)
			}
		}
		stack = append(stack[:e.Depth], frame{e.Name})
	}
	// 3. The static closure of the capture entry points covers the trace.
	closure, err := tbl.Closure(CaptureEntryPoints())
	if err != nil {
		t.Fatalf("Closure: %v", err)
	}
	for _, fn := range trace.Functions() {
		if !closure[fn] {
			t.Errorf("traced %q outside static closure of capture entry points", fn)
		}
	}
	// 4. The capture trace must not touch the unused subsystems.
	for _, fn := range trace.Functions() {
		m, _ := tbl.Meta(fn)
		switch m.Module {
		case "usb-audio", "spdif", "hdmi-audio", "playback", "mixer", "debug":
			t.Errorf("capture trace entered unused module %s (%s)", m.Module, fn)
		}
	}
}

func TestOtherTasksLightUpOtherModules(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}

	runTask := func(name string, task func() error) map[string]bool {
		t.Helper()
		r.tracer.Start(name)
		if err := task(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return ftrace.MinimalSet(r.tracer.Stop())
	}

	usb := runTask("usb", r.drv.UsbAudioTask)
	if !usb["usb_audio_probe"] || !usb["usb_urb_submit"] {
		t.Errorf("usb task trace = %v", ftrace.SetNames(usb))
	}
	playback := runTask("playback", func() error { return r.drv.PlaybackTask(256) })
	if !playback["playback_write"] || !playback["tx_enable"] {
		t.Errorf("playback trace = %v", ftrace.SetNames(playback))
	}
	mixer := runTask("mixer", r.drv.MixerTask)
	if !mixer["mixer_set_volume"] {
		t.Errorf("mixer trace = %v", ftrace.SetNames(mixer))
	}
	spdif := runTask("spdif", r.drv.SpdifTask)
	if !spdif["spdif_set_rate"] {
		t.Errorf("spdif trace = %v", ftrace.SetNames(spdif))
	}
	hdmi := runTask("hdmi", r.drv.HdmiTask)
	if !hdmi["hdmi_eld_parse"] {
		t.Errorf("hdmi trace = %v", ftrace.SetNames(hdmi))
	}
	pm := runTask("pm", r.drv.PMTask)
	if !pm["pm_suspend"] || !pm["pm_resume"] {
		t.Errorf("pm trace = %v", ftrace.SetNames(pm))
	}
	r.tracer.Start("debug")
	r.drv.DebugTask()
	dbg := ftrace.MinimalSet(r.tracer.Stop())
	if !dbg["debugfs_dump_regs"] || !dbg["proc_info_show"] {
		t.Errorf("debug trace = %v", ftrace.SetNames(dbg))
	}
}

func TestTCBMinimizationShrinksImage(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 2048)
	tone := audio.Sine(16000, 500, 0.4, 40*time.Millisecond)
	r.mic.Load(tone)
	r.tracer.Start("capture")
	want := len(tone.Samples) * 2
	if _, err := r.drv.CaptureTask(i2s.DefaultFormat(), want, func(need int) {
		_, _ = r.mic.PumpBytes(minInt(need, 512))
	}); err != nil {
		t.Fatalf("CaptureTask: %v", err)
	}
	traced := ftrace.MinimalSet(r.tracer.Stop())

	tbl, err := BuildTable()
	if err != nil {
		t.Fatalf("BuildTable: %v", err)
	}
	full := tbl.FullImage()
	minImg, err := tbl.BuildImage("capture-min", traced, tcb.StaticClosure)
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	if minImg.TotalLoC >= full.TotalLoC {
		t.Fatalf("minimal image (%d LoC) not smaller than full (%d LoC)", minImg.TotalLoC, full.TotalLoC)
	}
	cut := 100 * float64(full.TotalLoC-minImg.TotalLoC) / float64(full.TotalLoC)
	if cut < 30 {
		t.Errorf("TCB cut only %.1f%%, want >= 30%%", cut)
	}
}

func TestOverrunTriggersXrunRecovery(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	// Tiny controller FIFO so the mic can overrun it.
	small := i2s.NewController("i2s-small", 512)
	if err := r.bus.Map(ctrlBase+0x100, i2s.RegSize, false, small); err != nil {
		t.Fatalf("Map: %v", err)
	}
	drv, err := New(Config{
		Name: "i2s-small", World: tz.WorldNormal, Bus: r.bus, Ctrl: small,
		CtrlBase: ctrlBase + 0x100, DMA: r.dma, Mem: r.plat.Mem,
		Heap: r.plat.DMAHeap, Clock: r.clock, Cost: tz.DefaultCostModel(),
		Tracer: r.tracer, BufBytes: 1024,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mic, err := peripheral.NewMicrophone(small, i2s.DefaultFormat())
	if err != nil {
		t.Fatalf("NewMicrophone: %v", err)
	}
	if err := drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if err := drv.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = drv.Close() }()
	if err := drv.HwParams(i2s.DefaultFormat()); err != nil {
		t.Fatalf("HwParams: %v", err)
	}
	if err := drv.TriggerStart(); err != nil {
		t.Fatalf("TriggerStart: %v", err)
	}
	// Flood the 512-byte FIFO with ~2 KiB: guaranteed overrun.
	mic.Load(audio.Sine(16000, 300, 0.4, 80*time.Millisecond))
	for i := 0; i < 4; i++ {
		_, _ = mic.PumpBytes(512)
	}
	if small.Stats().Overruns == 0 {
		t.Fatal("failed to force an overrun")
	}
	r.tracer.Start("overrun-read")
	if _, err := drv.ReadPCM(make([]byte, 256)); err != nil {
		t.Fatalf("ReadPCM: %v", err)
	}
	trace := ftrace.MinimalSet(r.tracer.Stop())
	if !trace["xrun_recover"] {
		t.Errorf("xrun_recover not traced on overrun; trace = %v", ftrace.SetNames(trace))
	}
	if st := drv.Stats(); st.Overruns == 0 {
		t.Error("driver did not account the overrun")
	}
}

func TestRemoveAndIRQHandler(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	if err := r.drv.Remove(); !errors.Is(err, ErrNotProbed) {
		t.Errorf("Remove before probe = %v", err)
	}
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	r.drv.IRQHandler() // must not panic
	if err := r.drv.Remove(); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

func TestHwParamsRejectsBadFormat(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if err := r.drv.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = r.drv.Close() }()
	if err := r.drv.HwParams(i2s.Format{SampleRate: 16000, BitsPerSample: 12, Channels: 1}); err == nil {
		t.Error("bad format accepted")
	}
	if err := r.drv.HwParams(i2s.DefaultFormat()); err != nil {
		t.Errorf("good format rejected: %v", err)
	}
}

func TestSecureHeapExhaustionSurfacesAsError(t *testing.T) {
	r := newRig(t, tz.WorldSecure, 1024)
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	// Exhaust the secure heap, then Open must fail with the TEE
	// out-of-memory condition from the paper's §V.
	if _, err := r.plat.SecureHeap.Alloc(r.plat.Layout.SecureSize - 512); err != nil {
		t.Fatalf("pre-alloc: %v", err)
	}
	if err := r.drv.Open(); !errors.Is(err, memory.ErrOutOfSecureMemory) {
		t.Errorf("Open with exhausted heap = %v, want ErrOutOfSecureMemory", err)
	}
}

func TestFunctionTableSelfConsistent(t *testing.T) {
	tbl, err := BuildTable()
	if err != nil {
		t.Fatalf("BuildTable: %v", err)
	}
	if tbl.Len() < 60 {
		t.Errorf("inventory has %d functions, want a realistic >= 60", tbl.Len())
	}
	mods := tbl.Modules()
	wantMods := []string{"clock", "core", "debug", "dma", "hdmi-audio", "i2sops",
		"mixer", "pcm", "pinmux", "playback", "pm", "regmap", "spdif", "uapi", "usb-audio"}
	if len(mods) != len(wantMods) {
		t.Errorf("modules = %v", mods)
	}
	// Every inventory function must have positive sizes.
	for _, fn := range tbl.Functions() {
		m, _ := tbl.Meta(fn)
		if m.LoC <= 0 || m.Bytes <= 0 {
			t.Errorf("function %s has degenerate size %d/%d", fn, m.LoC, m.Bytes)
		}
	}
}

func TestCaptureStallsWithoutPump(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	_, err := r.drv.CaptureTask(i2s.DefaultFormat(), 4096, nil)
	if err == nil {
		t.Error("capture without a source should stall out")
	}
}

func TestCostAccountingGrowsWithWork(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 4096)
	tone := audio.Sine(16000, 440, 0.5, 80*time.Millisecond)
	r.mic.Load(tone)
	before := r.clock.Now()
	want := len(tone.Samples) * 2
	if _, err := r.drv.CaptureTask(i2s.DefaultFormat(), want, func(need int) {
		_, _ = r.mic.PumpBytes(minInt(need, 1024))
	}); err != nil {
		t.Fatalf("CaptureTask: %v", err)
	}
	perByte := float64(r.clock.Now()-before) / float64(want)
	if perByte <= 0 {
		t.Error("capture consumed no cycles")
	}
	if math.IsInf(perByte, 0) {
		t.Error("cycle accounting overflowed")
	}
}

func TestProcInfoShow(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	if got := r.drv.ProcInfoShow(); got == "" {
		t.Error("ProcInfoShow returned empty string")
	}
}
