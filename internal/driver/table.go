package driver

import "repro/internal/tcb"

// funcEntry describes one driver function for the TCB inventory: size
// metadata plus its static callees (instrumented functions only). The
// graph below mirrors the actual call structure of this package; the test
// suite cross-validates it against live traces.
type funcEntry struct {
	meta    tcb.FuncMeta
	callees []string
}

// funcTable is the full driver inventory. LoC figures model a realistic
// SoC sound driver where protocol bring-up and descriptor parsing dominate.
var funcTable = []funcEntry{
	// regmap
	{tcb.FuncMeta{Name: "regmap_init", Module: "regmap", LoC: 16}, nil},
	{tcb.FuncMeta{Name: "reg_read", Module: "regmap", LoC: 8}, nil},
	{tcb.FuncMeta{Name: "reg_write", Module: "regmap", LoC: 8}, nil},
	{tcb.FuncMeta{Name: "reg_update_bits", Module: "regmap", LoC: 14}, []string{"reg_read", "reg_write"}},
	// clock
	{tcb.FuncMeta{Name: "clk_get", Module: "clock", LoC: 12}, nil},
	{tcb.FuncMeta{Name: "divider_compute", Module: "clock", LoC: 20}, nil},
	{tcb.FuncMeta{Name: "pll_configure", Module: "clock", LoC: 34}, nil},
	{tcb.FuncMeta{Name: "clk_set_rate", Module: "clock", LoC: 26}, []string{"pll_configure", "divider_compute"}},
	{tcb.FuncMeta{Name: "clk_enable", Module: "clock", LoC: 10}, []string{"reg_write"}},
	{tcb.FuncMeta{Name: "clk_disable", Module: "clock", LoC: 10}, nil},
	// pinmux
	{tcb.FuncMeta{Name: "pin_function_select", Module: "pinmux", LoC: 16}, nil},
	{tcb.FuncMeta{Name: "pinmux_apply", Module: "pinmux", LoC: 24}, []string{"pin_function_select"}},
	// core
	{tcb.FuncMeta{Name: "i2s_reset", Module: "core", LoC: 18}, []string{"reg_write"}},
	{tcb.FuncMeta{Name: "i2s_probe", Module: "core", LoC: 48}, []string{
		"clk_get", "clk_set_rate", "clk_enable", "pinmux_apply", "regmap_init", "i2s_reset", "dma_channel_request"}},
	{tcb.FuncMeta{Name: "i2s_remove", Module: "core", LoC: 22}, []string{"rx_disable", "clk_disable", "dma_channel_release"}},
	{tcb.FuncMeta{Name: "i2s_irq_handler", Module: "core", LoC: 26}, []string{"fifo_level"}},
	// dma
	{tcb.FuncMeta{Name: "dma_channel_request", Module: "dma", LoC: 22}, nil},
	{tcb.FuncMeta{Name: "dma_channel_release", Module: "dma", LoC: 12}, nil},
	{tcb.FuncMeta{Name: "dma_buffer_alloc", Module: "dma", LoC: 24}, nil},
	{tcb.FuncMeta{Name: "dma_buffer_free", Module: "dma", LoC: 14}, nil},
	{tcb.FuncMeta{Name: "dma_start", Module: "dma", LoC: 16}, []string{"reg_write"}},
	{tcb.FuncMeta{Name: "dma_stop", Module: "dma", LoC: 14}, nil},
	{tcb.FuncMeta{Name: "dma_transfer", Module: "dma", LoC: 36}, nil},
	// i2s ops
	{tcb.FuncMeta{Name: "i2s_set_format", Module: "i2sops", LoC: 28}, []string{"divider_compute", "reg_write"}},
	{tcb.FuncMeta{Name: "watermark_set", Module: "i2sops", LoC: 12}, []string{"reg_write"}},
	{tcb.FuncMeta{Name: "fifo_flush", Module: "i2sops", LoC: 14}, []string{"reg_read"}},
	{tcb.FuncMeta{Name: "fifo_level", Module: "i2sops", LoC: 8}, []string{"reg_read"}},
	{tcb.FuncMeta{Name: "rx_enable", Module: "i2sops", LoC: 10}, []string{"reg_update_bits"}},
	{tcb.FuncMeta{Name: "rx_disable", Module: "i2sops", LoC: 10}, []string{"reg_update_bits"}},
	// pcm capture
	{tcb.FuncMeta{Name: "pcm_open", Module: "pcm", LoC: 30}, []string{"dma_buffer_alloc"}},
	{tcb.FuncMeta{Name: "pcm_hw_params", Module: "pcm", LoC: 42}, []string{"i2s_set_format", "watermark_set"}},
	{tcb.FuncMeta{Name: "pcm_prepare", Module: "pcm", LoC: 20}, []string{"fifo_flush"}},
	{tcb.FuncMeta{Name: "pcm_trigger_start", Module: "pcm", LoC: 18}, []string{"rx_enable", "dma_start"}},
	{tcb.FuncMeta{Name: "pcm_trigger_stop", Module: "pcm", LoC: 16}, []string{"rx_disable", "dma_stop"}},
	{tcb.FuncMeta{Name: "pcm_pointer", Module: "pcm", LoC: 10}, nil},
	{tcb.FuncMeta{Name: "xrun_recover", Module: "pcm", LoC: 26}, []string{"fifo_flush", "rx_disable", "rx_enable"}},
	{tcb.FuncMeta{Name: "pcm_read", Module: "pcm", LoC: 44}, []string{"fifo_level", "dma_transfer", "pcm_pointer", "xrun_recover"}},
	{tcb.FuncMeta{Name: "pcm_close", Module: "pcm", LoC: 22}, []string{"dma_buffer_free"}},
	// uapi
	{tcb.FuncMeta{Name: "ioctl_get_format", Module: "uapi", LoC: 14}, nil},
	{tcb.FuncMeta{Name: "ioctl_set_format", Module: "uapi", LoC: 18}, []string{"i2s_set_format"}},
	{tcb.FuncMeta{Name: "ioctl_get_stats", Module: "uapi", LoC: 16}, nil},
	{tcb.FuncMeta{Name: "ioctl_dispatch", Module: "uapi", LoC: 38}, []string{
		"ioctl_get_format", "ioctl_set_format", "ioctl_get_stats"}},
	// playback
	{tcb.FuncMeta{Name: "tx_enable", Module: "playback", LoC: 10}, []string{"reg_update_bits"}},
	{tcb.FuncMeta{Name: "tx_disable", Module: "playback", LoC: 10}, []string{"reg_update_bits"}},
	{tcb.FuncMeta{Name: "dma_feed", Module: "playback", LoC: 28}, nil},
	{tcb.FuncMeta{Name: "playback_open", Module: "playback", LoC: 30}, []string{"dma_buffer_alloc"}},
	{tcb.FuncMeta{Name: "playback_write", Module: "playback", LoC: 46}, []string{"dma_feed", "tx_enable"}},
	{tcb.FuncMeta{Name: "playback_drain", Module: "playback", LoC: 22}, []string{"fifo_level"}},
	{tcb.FuncMeta{Name: "playback_close", Module: "playback", LoC: 20}, []string{"tx_disable", "dma_buffer_free"}},
	// mixer
	{tcb.FuncMeta{Name: "mixer_scale_db", Module: "mixer", LoC: 24}, nil},
	{tcb.FuncMeta{Name: "mixer_get_volume", Module: "mixer", LoC: 14}, []string{"reg_read"}},
	{tcb.FuncMeta{Name: "mixer_set_volume", Module: "mixer", LoC: 18}, []string{"mixer_scale_db", "reg_write"}},
	{tcb.FuncMeta{Name: "mixer_mute", Module: "mixer", LoC: 12}, []string{"reg_update_bits"}},
	// usb audio
	{tcb.FuncMeta{Name: "usb_parse_descriptors", Module: "usb-audio", LoC: 88}, nil},
	{tcb.FuncMeta{Name: "usb_select_interface", Module: "usb-audio", LoC: 32}, nil},
	{tcb.FuncMeta{Name: "usb_urb_submit", Module: "usb-audio", LoC: 40}, nil},
	{tcb.FuncMeta{Name: "usb_stream_start", Module: "usb-audio", LoC: 36}, []string{"usb_urb_submit"}},
	{tcb.FuncMeta{Name: "usb_stream_stop", Module: "usb-audio", LoC: 24}, nil},
	{tcb.FuncMeta{Name: "usb_audio_probe", Module: "usb-audio", LoC: 66}, []string{
		"usb_parse_descriptors", "usb_select_interface"}},
	{tcb.FuncMeta{Name: "usb_audio_disconnect", Module: "usb-audio", LoC: 28}, []string{"usb_stream_stop"}},
	// spdif
	{tcb.FuncMeta{Name: "spdif_probe", Module: "spdif", LoC: 40}, []string{"reg_write"}},
	{tcb.FuncMeta{Name: "spdif_set_rate", Module: "spdif", LoC: 26}, []string{"divider_compute", "reg_write"}},
	{tcb.FuncMeta{Name: "spdif_channel_status", Module: "spdif", LoC: 30}, []string{"reg_read"}},
	// hdmi audio
	{tcb.FuncMeta{Name: "hdmi_eld_parse", Module: "hdmi-audio", LoC: 52}, nil},
	{tcb.FuncMeta{Name: "hdmi_audio_probe", Module: "hdmi-audio", LoC: 44}, []string{"hdmi_eld_parse"}},
	{tcb.FuncMeta{Name: "hdmi_audio_set_rate", Module: "hdmi-audio", LoC: 24}, []string{"reg_write"}},
	// pm
	{tcb.FuncMeta{Name: "pm_suspend", Module: "pm", LoC: 30}, []string{"rx_disable", "clk_disable"}},
	{tcb.FuncMeta{Name: "pm_resume", Module: "pm", LoC: 32}, []string{"clk_enable", "rx_enable"}},
	{tcb.FuncMeta{Name: "pm_runtime_idle", Module: "pm", LoC: 14}, nil},
	// debug
	{tcb.FuncMeta{Name: "debugfs_dump_regs", Module: "debug", LoC: 36}, []string{"reg_read"}},
	{tcb.FuncMeta{Name: "proc_info_show", Module: "debug", LoC: 20}, nil},
}

// funcByName indexes metadata for the per-call cycle charge in enter().
var funcByName = buildFuncIndex()

func buildFuncIndex() map[string]tcb.FuncMeta {
	out := make(map[string]tcb.FuncMeta, len(funcTable))
	for _, e := range funcTable {
		m := e.meta
		m.Bytes = m.LoC * 14 // ~14 bytes of AArch64 text per source line
		out[m.Name] = m
	}
	return out
}

// BuildTable constructs the TCB inventory for this driver.
func BuildTable() (*tcb.Table, error) {
	t := tcb.NewTable()
	for _, e := range funcTable {
		m := e.meta
		m.Bytes = m.LoC * 14
		if err := t.Add(m, e.callees...); err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// CaptureEntryPoints are the functions a capture task enters from outside
// the driver (syscall/PTA surface); the static-closure TCB build starts
// from these roots.
func CaptureEntryPoints() []string {
	return []string{
		"i2s_probe", "pcm_open", "pcm_hw_params", "pcm_prepare",
		"pcm_trigger_start", "pcm_read", "pcm_trigger_stop", "pcm_close",
	}
}
