package driver

import (
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/i2s"
	"repro/internal/kernel"
	"repro/internal/tz"
)

// TestInterruptDrivenCapture wires the full IRQ path: the controller's
// watermark interrupt fires into the kernel's IRQ layer, whose handler is
// the driver's IRQ service routine — the event-driven alternative to the
// polling reads the pipeline uses.
func TestInterruptDrivenCapture(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 4096)
	kern := kernel.New(r.clock, tz.DefaultCostModel(), r.plat.Mem)

	const irqLine = 77
	irqServiced := 0
	kern.RegisterIRQ(irqLine, func() {
		irqServiced++
		r.drv.IRQHandler()
	})
	// The controller raises the platform IRQ on watermark crossings.
	r.ctrl.SetIRQHandler(func() {
		if err := kern.RaiseIRQ(irqLine); err != nil {
			t.Errorf("RaiseIRQ: %v", err)
		}
	})

	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if err := r.drv.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = r.drv.Close() }()
	if err := r.drv.HwParams(i2s.DefaultFormat()); err != nil {
		t.Fatalf("HwParams: %v", err)
	}
	if err := r.drv.TriggerStart(); err != nil {
		t.Fatalf("TriggerStart: %v", err)
	}
	// Enable the controller's IRQ generation on top of RX.
	if err := r.ctrl.WriteReg(i2s.RegCtrl, i2s.CtrlRXEnable|i2s.CtrlIRQEnable); err != nil {
		t.Fatalf("ctrl irq enable: %v", err)
	}

	tone := audio.Sine(16000, 440, 0.5, 50*time.Millisecond)
	r.mic.Load(tone)
	drained := 0
	buf := make([]byte, 1024)
	for {
		if _, err := r.mic.PumpBytes(512); err != nil {
			break
		}
		// Service data as interrupts indicate availability.
		if irqServiced > 0 {
			n, err := r.drv.ReadPCM(buf)
			if err != nil {
				t.Fatalf("ReadPCM: %v", err)
			}
			drained += n
		}
	}
	if irqServiced == 0 {
		t.Fatal("no interrupts serviced")
	}
	if drained == 0 {
		t.Fatal("no data drained under IRQ-driven capture")
	}
	if st := kern.Stats(); st.IRQs != uint64(irqServiced) {
		t.Errorf("kernel IRQ count %d != serviced %d", st.IRQs, irqServiced)
	}
	if st := r.ctrl.Stats(); st.IRQs == 0 {
		t.Error("controller recorded no IRQs")
	}
}
