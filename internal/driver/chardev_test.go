package driver

import (
	"errors"
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/i2s"
	"repro/internal/kernel"
	"repro/internal/tz"
)

// kernelRig wires a char device into a live kernel.
func kernelRig(t *testing.T) (*kernel.Kernel, *rig) {
	t.Helper()
	r := newRig(t, tz.WorldNormal, 4096)
	kern := kernel.New(r.clock, tz.DefaultCostModel(), r.plat.Mem)
	kern.RegisterDevice("/dev/i2s0", NewCharDev(r.drv, i2s.DefaultFormat()))
	return kern, r
}

func TestCharDevFullSyscallPath(t *testing.T) {
	kern, r := kernelRig(t)
	fd, err := kern.Open("/dev/i2s0")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tone := audio.Sine(16000, 440, 0.5, 40*time.Millisecond)
	r.mic.Load(tone)
	want := len(tone.Samples) * 2
	captured := make([]byte, 0, want)
	buf := make([]byte, 1024)
	for len(captured) < want {
		if _, err := r.mic.PumpBytes(2048); err != nil && len(captured) == 0 {
			t.Fatalf("PumpBytes: %v", err)
		}
		n, err := kern.Read(fd, buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		captured = append(captured, buf[:n]...)
	}
	if len(captured) < want {
		t.Fatalf("captured %d, want %d", len(captured), want)
	}
	// Ioctl through the syscall layer.
	got, err := kern.Ioctl(fd, IoctlGetStats, 0)
	if err != nil {
		t.Fatalf("Ioctl: %v", err)
	}
	if got == 0 {
		t.Error("stats ioctl returned zero bytes captured")
	}
	if _, err := kern.Ioctl(fd, 0xdead, 0); !errors.Is(err, ErrBadIoctl) {
		t.Errorf("bad ioctl = %v", err)
	}
	if err := kern.Close(fd); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The buffer must be released: a second open works.
	fd2, err := kern.Open("/dev/i2s0")
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	if err := kern.Close(fd2); err != nil {
		t.Fatalf("re-Close: %v", err)
	}
}

func TestCharDevDoubleOpenFails(t *testing.T) {
	kern, _ := kernelRig(t)
	fd, err := kern.Open("/dev/i2s0")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = kern.Close(fd) }()
	if _, err := kern.Open("/dev/i2s0"); !errors.Is(err, ErrAlreadyOpen) {
		t.Errorf("second Open = %v, want ErrAlreadyOpen", err)
	}
}

func TestCharDevDriverAccessor(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	cd := NewCharDev(r.drv, i2s.DefaultFormat())
	if cd.Driver() != r.drv {
		t.Error("Driver() accessor broken")
	}
}

func TestCharDevBadFormatFailsOpen(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	cd := NewCharDev(r.drv, i2s.Format{SampleRate: 16000, BitsPerSample: 12, Channels: 1})
	if err := cd.DevOpen(); err == nil {
		t.Error("open with invalid format accepted")
		_ = cd.DevClose()
	}
}

func TestDriverAccessors(t *testing.T) {
	r := newRig(t, tz.WorldSecure, 2048)
	if r.drv.Name() == "" {
		t.Error("empty Name")
	}
	if r.drv.World() != tz.WorldSecure {
		t.Errorf("World = %v", r.drv.World())
	}
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if err := r.drv.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = r.drv.Close() }()
	if r.drv.BufferSize() != 2048 {
		t.Errorf("BufferSize = %d", r.drv.BufferSize())
	}
	if r.drv.Format() != i2s.DefaultFormat() {
		t.Errorf("Format = %+v", r.drv.Format())
	}
}

func TestTriggerWithoutOpen(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if err := r.drv.TriggerStart(); !errors.Is(err, ErrNotOpen) {
		t.Errorf("TriggerStart unopened = %v", err)
	}
	if err := r.drv.TriggerStop(); !errors.Is(err, ErrNotOpen) {
		t.Errorf("TriggerStop unopened = %v", err)
	}
	if err := r.drv.Prepare(); !errors.Is(err, ErrNotOpen) {
		t.Errorf("Prepare unopened = %v", err)
	}
	if err := r.drv.HwParams(i2s.DefaultFormat()); !errors.Is(err, ErrNotOpen) {
		t.Errorf("HwParams unopened = %v", err)
	}
}

func TestMixerVolumeRoundTrip(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if err := r.drv.MixerSetVolume(50); err != nil {
		t.Fatalf("MixerSetVolume: %v", err)
	}
	if got := r.drv.MixerGetVolume(); got != 127 { // 50 * 255 / 100
		t.Errorf("volume = %d, want 127", got)
	}
	// Clamping.
	if err := r.drv.MixerSetVolume(150); err != nil {
		t.Fatalf("MixerSetVolume: %v", err)
	}
	if got := r.drv.MixerGetVolume(); got != 255 {
		t.Errorf("clamped volume = %d, want 255", got)
	}
	if err := r.drv.MixerSetVolume(-10); err != nil {
		t.Fatalf("MixerSetVolume: %v", err)
	}
	if got := r.drv.MixerGetVolume(); got != 0 {
		t.Errorf("clamped volume = %d, want 0", got)
	}
	if err := r.drv.MixerMute(true); err != nil {
		t.Fatalf("MixerMute: %v", err)
	}
}

func TestDebugfsDump(t *testing.T) {
	r := newRig(t, tz.WorldNormal, 1024)
	if err := r.drv.Probe(); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	regs := r.drv.DebugfsDumpRegs()
	if len(regs) != 4 {
		t.Errorf("dump has %d registers", len(regs))
	}
}
