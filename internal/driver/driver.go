// Package driver implements the platform I2S sound driver the paper ports
// into OP-TEE (§IV.3). The same code base builds in two flavours:
//
//   - a normal-world build, registered as a kernel character device, whose
//     DMA buffers live in ordinary DRAM (readable by a compromised OS); and
//   - a secure-world build, invoked through the OP-TEE PTA, whose DMA
//     buffers come from the TrustZone-carved secure heap.
//
// Every function is instrumented for the ftrace-based TCB minimization
// experiment, and the driver deliberately carries the full multi-protocol
// surface of a real SoC sound driver (playback, mixer, USB audio, S/PDIF,
// HDMI audio, power management, debugfs) even though the paper's capture
// task needs only a small fraction of it — that surplus is precisely what
// the tracing mechanism is meant to cut.
package driver

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bus"
	"repro/internal/ftrace"
	"repro/internal/i2s"
	"repro/internal/memory"
	"repro/internal/tz"
)

// Errors returned by the driver.
var (
	// ErrNotProbed is returned when using the driver before Probe.
	ErrNotProbed = errors.New("driver: device not probed")
	// ErrNotOpen is returned when the PCM stream is not open.
	ErrNotOpen = errors.New("driver: stream not open")
	// ErrAlreadyOpen is returned on double open.
	ErrAlreadyOpen = errors.New("driver: stream already open")
	// ErrBadIoctl is returned for unknown ioctl commands.
	ErrBadIoctl = errors.New("driver: unknown ioctl")
)

// Ioctl commands implemented by the capture interface.
const (
	IoctlGetFormat uint32 = 0x6901
	IoctlSetFormat uint32 = 0x6902
	IoctlGetStats  uint32 = 0x6903
)

// Config wires a driver instance to its platform resources.
type Config struct {
	// Name labels the instance (e.g. "i2s0-normal", "i2s0-tee").
	Name string
	// World is the TrustZone world the driver executes in.
	World tz.World
	// Bus carries the MMIO register accesses.
	Bus *bus.Bus
	// Ctrl is the I2S controller instance (DMA handshake target).
	Ctrl *i2s.Controller
	// CtrlBase is the controller's MMIO base address on Bus.
	CtrlBase uint64
	// DMA is the platform DMA engine.
	DMA *bus.DMA
	// Mem is physical memory (for buffer copies).
	Mem *memory.PhysMem
	// Heap provides I/O buffers: the secure heap in the TEE build, the
	// normal-world DMA pool otherwise.
	Heap *memory.Heap
	// Clock and Cost account the driver's own CPU work.
	Clock *tz.Clock
	Cost  tz.CostModel
	// Tracer instruments function entries; nil disables tracing.
	Tracer *ftrace.Tracer
	// BufBytes is the capture DMA buffer size (default 4096).
	BufBytes int
}

func (c Config) validate() error {
	if c.Bus == nil || c.Ctrl == nil || c.DMA == nil || c.Mem == nil || c.Heap == nil || c.Clock == nil {
		return errors.New("driver: incomplete config")
	}
	if !c.World.Valid() {
		return errors.New("driver: invalid world")
	}
	return nil
}

// CaptureStats counts capture-path activity.
type CaptureStats struct {
	BytesCaptured uint64
	Reads         uint64
	Overruns      uint64
}

// SoundDriver is one bound instance of the I2S driver.
type SoundDriver struct {
	cfg Config

	mu       sync.Mutex
	probed   bool
	open     bool
	format   i2s.Format
	bufAddr  uint64
	bufBytes int
	stats    CaptureStats
	overruns uint64 // controller overruns already recovered

	// Scratch register cache for the regmap layer.
	regCache map[uint32]uint32
}

// New creates an unprobed driver instance.
func New(cfg Config) (*SoundDriver, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.BufBytes <= 0 {
		cfg.BufBytes = 4096
	}
	return &SoundDriver{
		cfg:      cfg,
		format:   i2s.DefaultFormat(),
		regCache: make(map[uint32]uint32),
	}, nil
}

// Name returns the instance label.
func (d *SoundDriver) Name() string { return d.cfg.Name }

// World returns the world the driver executes in.
func (d *SoundDriver) World() tz.World { return d.cfg.World }

// BufferAddr returns the physical address of the capture DMA buffer
// (valid after Open). Experiments aim the snooper at it.
func (d *SoundDriver) BufferAddr() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bufAddr
}

// BufferSize returns the capture DMA buffer size in bytes.
func (d *SoundDriver) BufferSize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bufBytes
}

// Stats returns a snapshot of capture counters.
func (d *SoundDriver) Stats() CaptureStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// enter instruments a driver function: it notifies the tracer and charges
// CPU cycles proportional to the function's size, so bigger functions cost
// more — the same first-order model compilers and cycle estimators use.
func (d *SoundDriver) enter(fn string) func() {
	if m, ok := funcByName[fn]; ok {
		d.cfg.Clock.Advance(tz.Cycles(m.LoC))
	}
	return d.cfg.Tracer.Enter(fn)
}

// --- regmap layer ---------------------------------------------------------

func (d *SoundDriver) regmapInit() {
	defer d.enter("regmap_init")()
	d.regCache = make(map[uint32]uint32)
}

func (d *SoundDriver) regRead(off uint32) uint32 {
	defer d.enter("reg_read")()
	v, err := d.cfg.Bus.Read32(d.cfg.World, d.cfg.CtrlBase+uint64(off))
	if err != nil {
		return 0
	}
	d.regCache[off] = v
	return v
}

func (d *SoundDriver) regWrite(off uint32, val uint32) error {
	defer d.enter("reg_write")()
	d.regCache[off] = val
	return d.cfg.Bus.Write32(d.cfg.World, d.cfg.CtrlBase+uint64(off), val)
}

func (d *SoundDriver) regUpdateBits(off, mask, val uint32) error {
	defer d.enter("reg_update_bits")()
	cur := d.regRead(off)
	return d.regWrite(off, cur&^mask|val&mask)
}

// --- clock layer ----------------------------------------------------------

func (d *SoundDriver) clkGet() {
	defer d.enter("clk_get")()
}

func (d *SoundDriver) dividerCompute(rate int) uint32 {
	defer d.enter("divider_compute")()
	const mclk = 24_576_000 // typical audio master clock
	if rate <= 0 {
		return 1
	}
	div := mclk / rate
	if div == 0 {
		div = 1
	}
	return uint32(div)
}

func (d *SoundDriver) pllConfigure(rate int) {
	defer d.enter("pll_configure")()
	// Model PLL lock time: a real audio PLL takes ~50 us to lock.
	d.cfg.Clock.Advance(5000)
	_ = rate
}

func (d *SoundDriver) clkSetRate(rate int) {
	defer d.enter("clk_set_rate")()
	d.pllConfigure(rate)
	_ = d.dividerCompute(rate)
}

func (d *SoundDriver) clkEnable() error {
	defer d.enter("clk_enable")()
	return d.regWrite(i2s.RegClkCfg, encodeFormatReg(d.format))
}

func (d *SoundDriver) clkDisable() error {
	defer d.enter("clk_disable")()
	return nil
}

// --- pinmux layer ----------------------------------------------------------

func (d *SoundDriver) pinFunctionSelect(pin int) {
	defer d.enter("pin_function_select")()
	_ = pin
}

func (d *SoundDriver) pinmuxApply() {
	defer d.enter("pinmux_apply")()
	for pin := 0; pin < 3; pin++ { // SCK, WS, SD
		d.pinFunctionSelect(pin)
	}
}

// --- core -------------------------------------------------------------------

func encodeFormatReg(f i2s.Format) uint32 {
	return uint32(f.SampleRate/25)&0xffff | uint32(f.BitsPerSample)<<16 | uint32(f.Channels)<<24
}

func (d *SoundDriver) i2sReset() error {
	defer d.enter("i2s_reset")()
	return d.regWrite(i2s.RegCtrl, 0)
}

// Probe initializes the hardware: clocks, pinmux, register map, reset, and
// a DMA channel — the sequence a real platform driver runs at bind time.
func (d *SoundDriver) Probe() error {
	defer d.enter("i2s_probe")()
	d.mu.Lock()
	if d.probed {
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()

	d.clkGet()
	d.clkSetRate(d.format.SampleRate)
	if err := d.clkEnable(); err != nil {
		return fmt.Errorf("probe %s: %w", d.cfg.Name, err)
	}
	d.pinmuxApply()
	d.regmapInit()
	if err := d.i2sReset(); err != nil {
		return fmt.Errorf("probe %s: %w", d.cfg.Name, err)
	}
	d.dmaChannelRequest()

	d.mu.Lock()
	d.probed = true
	d.mu.Unlock()
	return nil
}

// Remove unbinds the driver.
func (d *SoundDriver) Remove() error {
	defer d.enter("i2s_remove")()
	d.mu.Lock()
	probed := d.probed
	d.probed = false
	d.mu.Unlock()
	if !probed {
		return ErrNotProbed
	}
	if err := d.rxDisable(); err != nil {
		return err
	}
	if err := d.clkDisable(); err != nil {
		return err
	}
	d.dmaChannelRelease()
	return nil
}

// IRQHandler services the controller's watermark interrupt.
func (d *SoundDriver) IRQHandler() {
	defer d.enter("i2s_irq_handler")()
	_ = d.fifoLevel()
}

// --- dma layer ---------------------------------------------------------------

func (d *SoundDriver) dmaChannelRequest() {
	defer d.enter("dma_channel_request")()
}

func (d *SoundDriver) dmaChannelRelease() {
	defer d.enter("dma_channel_release")()
}

func (d *SoundDriver) dmaBufferAlloc(n int) (uint64, error) {
	defer d.enter("dma_buffer_alloc")()
	addr, err := d.cfg.Heap.Alloc(uint64(n))
	if err != nil {
		return 0, fmt.Errorf("dma buffer: %w", err)
	}
	return addr, nil
}

func (d *SoundDriver) dmaBufferFree(addr uint64) {
	defer d.enter("dma_buffer_free")()
	_ = d.cfg.Heap.Free(addr)
}

func (d *SoundDriver) dmaStart() error {
	defer d.enter("dma_start")()
	return d.regWrite(i2s.RegWatermark, uint32(minInt(d.bufBytes/2, 128)))
}

func (d *SoundDriver) dmaStop() error {
	defer d.enter("dma_stop")()
	return nil
}

// dmaTransfer drains up to n bytes from the controller FIFO into the
// capture buffer and returns the transfer size.
func (d *SoundDriver) dmaTransfer(n int) (int, error) {
	defer d.enter("dma_transfer")()
	return d.cfg.DMA.FromDevice(d.cfg.World, d.cfg.Ctrl, d.bufAddr, n)
}

// --- i2s ops ------------------------------------------------------------------

func (d *SoundDriver) i2sSetFormat(f i2s.Format) error {
	defer d.enter("i2s_set_format")()
	if err := f.Validate(); err != nil {
		return err
	}
	_ = d.dividerCompute(f.SampleRate)
	if err := d.regWrite(i2s.RegClkCfg, encodeFormatReg(f)); err != nil {
		return err
	}
	d.mu.Lock()
	d.format = f
	d.mu.Unlock()
	return nil
}

func (d *SoundDriver) watermarkSet(level int) error {
	defer d.enter("watermark_set")()
	return d.regWrite(i2s.RegWatermark, uint32(level))
}

func (d *SoundDriver) fifoFlush() {
	defer d.enter("fifo_flush")()
	_ = d.regRead(i2s.RegFIFOLevel)
}

func (d *SoundDriver) fifoLevel() int {
	defer d.enter("fifo_level")()
	return int(d.regRead(i2s.RegFIFOLevel))
}

func (d *SoundDriver) rxEnable() error {
	defer d.enter("rx_enable")()
	return d.regUpdateBits(i2s.RegCtrl, i2s.CtrlRXEnable, i2s.CtrlRXEnable)
}

func (d *SoundDriver) rxDisable() error {
	defer d.enter("rx_disable")()
	return d.regUpdateBits(i2s.RegCtrl, i2s.CtrlRXEnable, 0)
}

// --- pcm capture interface ------------------------------------------------------

// Open allocates the capture buffer (pcm_open).
func (d *SoundDriver) Open() error {
	defer d.enter("pcm_open")()
	d.mu.Lock()
	if !d.probed {
		d.mu.Unlock()
		return ErrNotProbed
	}
	if d.open {
		d.mu.Unlock()
		return ErrAlreadyOpen
	}
	n := d.cfg.BufBytes
	d.mu.Unlock()

	addr, err := d.dmaBufferAlloc(n)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.bufAddr = addr
	d.bufBytes = n
	d.open = true
	d.mu.Unlock()
	return nil
}

// HwParams configures the stream format (pcm_hw_params).
func (d *SoundDriver) HwParams(f i2s.Format) error {
	defer d.enter("pcm_hw_params")()
	if !d.isOpen() {
		return ErrNotOpen
	}
	if err := d.i2sSetFormat(f); err != nil {
		return err
	}
	if err := d.cfg.Ctrl.SetFormat(f); err != nil {
		return err
	}
	return d.watermarkSet(minInt(d.cfg.BufBytes/2, 128))
}

// Prepare flushes stale FIFO state (pcm_prepare).
func (d *SoundDriver) Prepare() error {
	defer d.enter("pcm_prepare")()
	if !d.isOpen() {
		return ErrNotOpen
	}
	d.fifoFlush()
	return nil
}

// TriggerStart enables capture (pcm_trigger START).
func (d *SoundDriver) TriggerStart() error {
	defer d.enter("pcm_trigger_start")()
	if !d.isOpen() {
		return ErrNotOpen
	}
	if err := d.rxEnable(); err != nil {
		return err
	}
	return d.dmaStart()
}

// TriggerStop disables capture (pcm_trigger STOP).
func (d *SoundDriver) TriggerStop() error {
	defer d.enter("pcm_trigger_stop")()
	if !d.isOpen() {
		return ErrNotOpen
	}
	if err := d.rxDisable(); err != nil {
		return err
	}
	return d.dmaStop()
}

func (d *SoundDriver) pcmPointer() int {
	defer d.enter("pcm_pointer")()
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.stats.BytesCaptured) % maxInt(d.bufBytes, 1)
}

// xrunRecover handles a FIFO overrun (xrun): flush stale samples and
// restart the receiver. It is statically reachable from pcm_read but only
// executes when the consumer has fallen behind — the canonical error path
// a trace-based TCB minimization misses (see experiment E6).
func (d *SoundDriver) xrunRecover() error {
	defer d.enter("xrun_recover")()
	d.fifoFlush()
	if err := d.rxDisable(); err != nil {
		return err
	}
	return d.rxEnable()
}

// ReadPCM drains the FIFO through DMA into the capture buffer, then copies
// into dst. It returns the number of bytes delivered. Reads are
// non-blocking: if the FIFO is empty the return is 0, as with an ALSA
// capture stream in non-blocking mode.
func (d *SoundDriver) ReadPCM(dst []byte) (int, error) {
	defer d.enter("pcm_read")()
	if !d.isOpen() {
		return 0, ErrNotOpen
	}
	if st := d.cfg.Ctrl.Stats(); st.Overruns > d.seenOverruns() {
		d.noteOverruns(st.Overruns)
		if err := d.xrunRecover(); err != nil {
			return 0, err
		}
	}
	avail := d.fifoLevel()
	if avail == 0 {
		return 0, nil
	}
	want := minInt(minInt(avail, len(dst)), d.bufBytes)
	moved, err := d.dmaTransfer(want)
	if err != nil {
		return 0, err
	}
	if moved == 0 {
		return 0, nil
	}
	if err := d.cfg.Mem.ReadAt(d.cfg.World, d.bufAddr, dst[:moved]); err != nil {
		return 0, fmt.Errorf("pcm copy-out: %w", err)
	}
	d.cfg.Clock.Advance(tz.Cycles(moved) * d.cfg.Cost.CopyPerByte)
	_ = d.pcmPointer()
	d.mu.Lock()
	d.stats.BytesCaptured += uint64(moved)
	d.stats.Reads++
	d.mu.Unlock()
	return moved, nil
}

// Close releases the capture buffer (pcm_close). The buffer is zeroed
// before release — in the secure build this is what prevents stale audio
// from leaking to the next TA; kernels do the same for page reuse.
func (d *SoundDriver) Close() error {
	defer d.enter("pcm_close")()
	d.mu.Lock()
	if !d.open {
		d.mu.Unlock()
		return ErrNotOpen
	}
	addr, n := d.bufAddr, d.bufBytes
	d.open = false
	d.bufAddr = 0
	d.mu.Unlock()
	_ = d.cfg.Mem.Zero(d.cfg.World, addr, n)
	d.dmaBufferFree(addr)
	return nil
}

func (d *SoundDriver) isOpen() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.open
}

func (d *SoundDriver) seenOverruns() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.overruns
}

func (d *SoundDriver) noteOverruns(n uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.overruns = n
	d.stats.Overruns++
}

// Format returns the current stream format.
func (d *SoundDriver) Format() i2s.Format {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.format
}

// --- uapi/ioctl layer -------------------------------------------------------------

func (d *SoundDriver) ioctlGetFormat() uint64 {
	defer d.enter("ioctl_get_format")()
	f := d.Format()
	return uint64(encodeFormatReg(f))
}

func (d *SoundDriver) ioctlSetFormat(arg uint64) error {
	defer d.enter("ioctl_set_format")()
	f := i2s.Format{
		SampleRate:    int(arg&0xffff) * 25,
		BitsPerSample: int(arg >> 16 & 0xff),
		Channels:      int(arg >> 24 & 0xff),
	}
	return d.i2sSetFormat(f)
}

func (d *SoundDriver) ioctlGetStats() uint64 {
	defer d.enter("ioctl_get_stats")()
	return d.Stats().BytesCaptured
}

// IoctlDispatch routes an ioctl command (ioctl_dispatch).
func (d *SoundDriver) IoctlDispatch(cmd uint32, arg uint64) (uint64, error) {
	defer d.enter("ioctl_dispatch")()
	switch cmd {
	case IoctlGetFormat:
		return d.ioctlGetFormat(), nil
	case IoctlSetFormat:
		return 0, d.ioctlSetFormat(arg)
	case IoctlGetStats:
		return d.ioctlGetStats(), nil
	default:
		return 0, fmt.Errorf("%w: %#x", ErrBadIoctl, cmd)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
