package driver

// This file carries the driver sub-modules that the paper's capture task
// never executes: playback, mixer controls, USB audio, S/PDIF, HDMI audio,
// power management and debugfs. Real SoC sound drivers bundle all of these
// behind one code base ("a large set of I/O devices and driver software,
// sometimes for the same purpose", §IV.2); the tracing experiment shows how
// much of it the minimal OP-TEE image can drop.

import (
	"fmt"

	"repro/internal/i2s"
)

// --- playback ---------------------------------------------------------------

func (d *SoundDriver) txEnable() error {
	defer d.enter("tx_enable")()
	return d.regUpdateBits(0x00, 1<<4, 1<<4)
}

func (d *SoundDriver) txDisable() error {
	defer d.enter("tx_disable")()
	return d.regUpdateBits(0x00, 1<<4, 0)
}

func (d *SoundDriver) dmaFeed(n int) int {
	defer d.enter("dma_feed")()
	return n
}

func (d *SoundDriver) playbackOpen() (uint64, error) {
	defer d.enter("playback_open")()
	return d.dmaBufferAlloc(d.cfg.BufBytes)
}

func (d *SoundDriver) playbackWrite(n int) error {
	defer d.enter("playback_write")()
	_ = d.dmaFeed(n)
	return d.txEnable()
}

func (d *SoundDriver) playbackDrain() {
	defer d.enter("playback_drain")()
	_ = d.fifoLevel()
}

func (d *SoundDriver) playbackClose(addr uint64) error {
	defer d.enter("playback_close")()
	if err := d.txDisable(); err != nil {
		return err
	}
	d.dmaBufferFree(addr)
	return nil
}

// PlaybackTask exercises the playback path end to end. It exists so the
// tracing experiment can show that a different task lights up a different
// function subset.
func (d *SoundDriver) PlaybackTask(frames int) error {
	addr, err := d.playbackOpen()
	if err != nil {
		return fmt.Errorf("playback: %w", err)
	}
	if err := d.playbackWrite(frames); err != nil {
		return fmt.Errorf("playback: %w", err)
	}
	d.playbackDrain()
	return d.playbackClose(addr)
}

// --- mixer -------------------------------------------------------------------

func (d *SoundDriver) mixerScaleDb(vol int) uint32 {
	defer d.enter("mixer_scale_db")()
	if vol < 0 {
		vol = 0
	}
	if vol > 100 {
		vol = 100
	}
	return uint32(vol * 255 / 100)
}

// MixerGetVolume reads the volume control.
func (d *SoundDriver) MixerGetVolume() uint32 {
	defer d.enter("mixer_get_volume")()
	return d.regRead(i2s.RegAux) // the aux block carries the gain register
}

// MixerSetVolume writes the volume control.
func (d *SoundDriver) MixerSetVolume(vol int) error {
	defer d.enter("mixer_set_volume")()
	raw := d.mixerScaleDb(vol)
	return d.regWrite(i2s.RegAux, raw)
}

// MixerMute toggles the mute bit.
func (d *SoundDriver) MixerMute(mute bool) error {
	defer d.enter("mixer_mute")()
	var v uint32
	if mute {
		v = 1 << 7
	}
	return d.regUpdateBits(0x00, 1<<7, v)
}

// MixerTask exercises the mixer controls.
func (d *SoundDriver) MixerTask() error {
	_ = d.MixerGetVolume()
	if err := d.MixerSetVolume(80); err != nil {
		return err
	}
	return d.MixerMute(false)
}

// --- usb audio ------------------------------------------------------------------

func (d *SoundDriver) usbParseDescriptors() int {
	defer d.enter("usb_parse_descriptors")()
	return 4 // pretend we found 4 endpoints
}

func (d *SoundDriver) usbSelectInterface(alt int) {
	defer d.enter("usb_select_interface")()
	_ = alt
}

func (d *SoundDriver) usbURBSubmit() {
	defer d.enter("usb_urb_submit")()
}

func (d *SoundDriver) usbStreamStart() {
	defer d.enter("usb_stream_start")()
	d.usbURBSubmit()
}

func (d *SoundDriver) usbStreamStop() {
	defer d.enter("usb_stream_stop")()
}

// UsbAudioProbe binds the (modelled) USB audio function.
func (d *SoundDriver) UsbAudioProbe() error {
	defer d.enter("usb_audio_probe")()
	if n := d.usbParseDescriptors(); n == 0 {
		return fmt.Errorf("usb audio: no endpoints")
	}
	d.usbSelectInterface(1)
	return nil
}

// UsbAudioDisconnect tears the USB function down.
func (d *SoundDriver) UsbAudioDisconnect() {
	defer d.enter("usb_audio_disconnect")()
	d.usbStreamStop()
}

// UsbAudioTask exercises the USB audio path.
func (d *SoundDriver) UsbAudioTask() error {
	if err := d.UsbAudioProbe(); err != nil {
		return err
	}
	d.usbStreamStart()
	d.UsbAudioDisconnect()
	return nil
}

// --- spdif ----------------------------------------------------------------------

// SpdifProbe initializes the S/PDIF transmitter block.
func (d *SoundDriver) SpdifProbe() error {
	defer d.enter("spdif_probe")()
	return d.regWrite(0x00, 0)
}

// SpdifSetRate programs the S/PDIF sample rate.
func (d *SoundDriver) SpdifSetRate(rate int) error {
	defer d.enter("spdif_set_rate")()
	_ = d.dividerCompute(rate)
	return d.regWrite(i2s.RegAux, uint32(rate/25))
}

func (d *SoundDriver) spdifChannelStatus() uint32 {
	defer d.enter("spdif_channel_status")()
	return d.regRead(0x04)
}

// SpdifTask exercises the S/PDIF path.
func (d *SoundDriver) SpdifTask() error {
	if err := d.SpdifProbe(); err != nil {
		return err
	}
	if err := d.SpdifSetRate(48000); err != nil {
		return err
	}
	_ = d.spdifChannelStatus()
	return nil
}

// --- hdmi audio ------------------------------------------------------------------

func (d *SoundDriver) hdmiEldParse() int {
	defer d.enter("hdmi_eld_parse")()
	return 2 // pretend the sink advertises 2 channels
}

// HdmiAudioProbe binds the HDMI audio function.
func (d *SoundDriver) HdmiAudioProbe() error {
	defer d.enter("hdmi_audio_probe")()
	if ch := d.hdmiEldParse(); ch == 0 {
		return fmt.Errorf("hdmi audio: no sink channels")
	}
	return nil
}

// HdmiAudioSetRate programs the HDMI audio clock regenerator.
func (d *SoundDriver) HdmiAudioSetRate(rate int) error {
	defer d.enter("hdmi_audio_set_rate")()
	return d.regWrite(i2s.RegAux, uint32(rate/25))
}

// HdmiTask exercises the HDMI audio path.
func (d *SoundDriver) HdmiTask() error {
	if err := d.HdmiAudioProbe(); err != nil {
		return err
	}
	return d.HdmiAudioSetRate(48000)
}

// --- power management ---------------------------------------------------------------

// PMSuspend quiesces the device for system sleep.
func (d *SoundDriver) PMSuspend() error {
	defer d.enter("pm_suspend")()
	if err := d.rxDisable(); err != nil {
		return err
	}
	return d.clkDisable()
}

// PMResume restores the device after sleep.
func (d *SoundDriver) PMResume() error {
	defer d.enter("pm_resume")()
	if err := d.clkEnable(); err != nil {
		return err
	}
	return d.rxEnable()
}

// PMRuntimeIdle is the runtime-PM idle callback.
func (d *SoundDriver) PMRuntimeIdle() {
	defer d.enter("pm_runtime_idle")()
}

// PMTask exercises suspend/resume.
func (d *SoundDriver) PMTask() error {
	if err := d.PMSuspend(); err != nil {
		return err
	}
	if err := d.PMResume(); err != nil {
		return err
	}
	d.PMRuntimeIdle()
	return nil
}

// --- debug ------------------------------------------------------------------------------

// DebugfsDumpRegs snapshots the register file.
func (d *SoundDriver) DebugfsDumpRegs() map[uint32]uint32 {
	defer d.enter("debugfs_dump_regs")()
	out := make(map[uint32]uint32, 4)
	for _, off := range []uint32{0x00, 0x04, 0x0c, 0x10} {
		out[off] = d.regRead(off)
	}
	return out
}

// ProcInfoShow renders the procfs info line.
func (d *SoundDriver) ProcInfoShow() string {
	defer d.enter("proc_info_show")()
	f := d.Format()
	return fmt.Sprintf("%s: %d Hz, %d bit, %d ch", d.cfg.Name, f.SampleRate, f.BitsPerSample, f.Channels)
}

// DebugTask exercises the debug surfaces.
func (d *SoundDriver) DebugTask() {
	_ = d.DebugfsDumpRegs()
	_ = d.ProcInfoShow()
}
