package driver

import (
	"errors"
	"fmt"

	"repro/internal/i2s"
	"repro/internal/kernel"
)

// CharDev adapts a SoundDriver to the kernel's character-device interface.
// This is the *baseline* deployment from the paper's Fig. 1 discussion:
// "in a regular setup, the device driver software is part of the untrusted
// OS" — audio flows through normal-world memory the kernel can read.
type CharDev struct {
	drv    *SoundDriver
	format i2s.Format
}

var _ kernel.CharDevice = (*CharDev)(nil)

// NewCharDev wraps drv as a character device capturing in format f.
func NewCharDev(drv *SoundDriver, f i2s.Format) *CharDev {
	return &CharDev{drv: drv, format: f}
}

// Driver exposes the wrapped driver (for stats and buffer introspection).
func (c *CharDev) Driver() *SoundDriver { return c.drv }

// DevOpen probes on first use, then opens and starts the capture stream.
func (c *CharDev) DevOpen() error {
	if err := c.drv.Probe(); err != nil {
		return err
	}
	if err := c.drv.Open(); err != nil {
		if errors.Is(err, ErrAlreadyOpen) {
			return err
		}
		return fmt.Errorf("chardev open: %w", err)
	}
	if err := c.drv.HwParams(c.format); err != nil {
		return fmt.Errorf("chardev hw_params: %w", err)
	}
	if err := c.drv.Prepare(); err != nil {
		return fmt.Errorf("chardev prepare: %w", err)
	}
	if err := c.drv.TriggerStart(); err != nil {
		return fmt.Errorf("chardev trigger: %w", err)
	}
	return nil
}

// DevRead drains captured PCM bytes.
func (c *CharDev) DevRead(buf []byte) (int, error) {
	return c.drv.ReadPCM(buf)
}

// DevIoctl forwards to the driver's ioctl dispatcher.
func (c *CharDev) DevIoctl(cmd uint32, arg uint64) (uint64, error) {
	return c.drv.IoctlDispatch(cmd, arg)
}

// DevClose stops and releases the stream.
func (c *CharDev) DevClose() error {
	if err := c.drv.TriggerStop(); err != nil {
		return err
	}
	return c.drv.Close()
}

// CaptureTask runs one complete capture task: the unit of work the paper's
// tracing mechanism brackets ("a particular task, e.g., recording a sound").
// pump is called before each read to shift more microphone data into the
// controller; it receives the number of bytes still wanted.
func (d *SoundDriver) CaptureTask(f i2s.Format, total int, pump func(need int)) ([]byte, error) {
	if err := d.Probe(); err != nil {
		return nil, err
	}
	if err := d.Open(); err != nil {
		return nil, err
	}
	defer func() { _ = d.Close() }()
	if err := d.HwParams(f); err != nil {
		return nil, err
	}
	if err := d.Prepare(); err != nil {
		return nil, err
	}
	if err := d.TriggerStart(); err != nil {
		return nil, err
	}
	defer func() { _ = d.TriggerStop() }()

	out := make([]byte, 0, total)
	chunk := make([]byte, minInt(total, d.cfg.BufBytes))
	idle := 0
	for len(out) < total {
		if pump != nil {
			pump(total - len(out))
		}
		n, err := d.ReadPCM(chunk[:minInt(len(chunk), total-len(out))])
		if err != nil {
			return out, err
		}
		if n == 0 {
			idle++
			if idle > 1000 {
				return out, fmt.Errorf("driver %s: capture stalled at %d/%d bytes", d.cfg.Name, len(out), total)
			}
			continue
		}
		idle = 0
		out = append(out, chunk[:n]...)
	}
	return out, nil
}
