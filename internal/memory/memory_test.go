package memory

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/tz"
)

func testPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(DefaultLayout())
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return p
}

func TestPhysMemReadWriteRoundTrip(t *testing.T) {
	p := testPlatform(t)
	addr := p.Layout.DRAMBase + 0x100
	want := []byte("hello, peripheral world")
	if err := p.Mem.WriteAt(tz.WorldNormal, addr, want); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if err := p.Mem.ReadAt(tz.WorldNormal, addr, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("round trip = %q, want %q", got, want)
	}
}

func TestPhysMemSecureIsolation(t *testing.T) {
	p := testPlatform(t)
	secret := []byte("wake word audio frames")
	addr := p.Layout.SecureBase + 0x40

	// Secure world can write and read the carve-out.
	if err := p.Mem.WriteAt(tz.WorldSecure, addr, secret); err != nil {
		t.Fatalf("secure WriteAt: %v", err)
	}
	got := make([]byte, len(secret))
	if err := p.Mem.ReadAt(tz.WorldSecure, addr, got); err != nil {
		t.Fatalf("secure ReadAt: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("secure round trip = %q, want %q", got, secret)
	}

	// Normal world is rejected for both read and write.
	if err := p.Mem.ReadAt(tz.WorldNormal, addr, got); !errors.Is(err, tz.ErrSecurityViolation) {
		t.Errorf("normal ReadAt = %v, want security violation", err)
	}
	if err := p.Mem.WriteAt(tz.WorldNormal, addr, []byte("overwrite")); !errors.Is(err, tz.ErrSecurityViolation) {
		t.Errorf("normal WriteAt = %v, want security violation", err)
	}
	// And the rejected write must not have modified memory.
	check := make([]byte, len(secret))
	if err := p.Mem.ReadAt(tz.WorldSecure, addr, check); err != nil {
		t.Fatalf("verify ReadAt: %v", err)
	}
	if !bytes.Equal(check, secret) {
		t.Error("rejected normal-world write corrupted secure memory")
	}
}

func TestPhysMemSecureWorldReadsNormalRAM(t *testing.T) {
	p := testPlatform(t)
	addr := p.Layout.DRAMBase + 0x2000
	if err := p.Mem.WriteAt(tz.WorldNormal, addr, []byte{1, 2, 3}); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, 3)
	if err := p.Mem.ReadAt(tz.WorldSecure, addr, got); err != nil {
		t.Errorf("secure world should read non-secure RAM: %v", err)
	}
}

func TestPhysMemOutOfRange(t *testing.T) {
	p := testPlatform(t)
	end := p.Layout.DRAMBase + p.Layout.TotalSize()
	buf := make([]byte, 8)
	if err := p.Mem.ReadAt(tz.WorldNormal, end-4, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end = %v, want ErrOutOfRange", err)
	}
	if err := p.Mem.ReadAt(tz.WorldNormal, p.Layout.DRAMBase-16, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read before base = %v, want ErrOutOfRange", err)
	}
	if err := p.Mem.WriteAt(tz.WorldNormal, ^uint64(0)-2, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("wrapping write = %v, want ErrOutOfRange", err)
	}
}

func TestPhysMemZero(t *testing.T) {
	p := testPlatform(t)
	addr := p.Layout.SecureBase + 0x80
	if err := p.Mem.WriteAt(tz.WorldSecure, addr, []byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := p.Mem.Zero(tz.WorldSecure, addr, 4); err != nil {
		t.Fatalf("Zero: %v", err)
	}
	got := make([]byte, 4)
	if err := p.Mem.ReadAt(tz.WorldSecure, addr, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Errorf("Zero left %v", got)
	}
	// Normal world cannot zero secure memory (that would be a DoS primitive).
	if err := p.Mem.Zero(tz.WorldNormal, addr, 4); !errors.Is(err, tz.ErrSecurityViolation) {
		t.Errorf("normal Zero of secure ram = %v, want violation", err)
	}
}

func TestHeapAllocFree(t *testing.T) {
	h := NewHeap("t", 0x1000, 0x1000, 16)
	a, err := h.Alloc(100)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if a%16 != 0 {
		t.Errorf("alloc %#x not aligned", a)
	}
	b, err := h.Alloc(200)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if a == b {
		t.Error("two allocations share an address")
	}
	if err := h.Free(a); err != nil {
		t.Errorf("Free: %v", err)
	}
	if err := h.Free(b); err != nil {
		t.Errorf("Free: %v", err)
	}
	st := h.Stats()
	if st.Used != 0 {
		t.Errorf("Used = %d after freeing all, want 0", st.Used)
	}
	if st.Allocs != 2 || st.Frees != 2 {
		t.Errorf("Allocs/Frees = %d/%d, want 2/2", st.Allocs, st.Frees)
	}
}

func TestHeapExhaustion(t *testing.T) {
	h := NewHeap("small", 0, 256, 16)
	if _, err := h.Alloc(200); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if _, err := h.Alloc(200); !errors.Is(err, ErrOutOfSecureMemory) {
		t.Errorf("over-alloc = %v, want ErrOutOfSecureMemory", err)
	}
	if st := h.Stats(); st.Failures != 1 {
		t.Errorf("Failures = %d, want 1", st.Failures)
	}
}

func TestHeapBadFree(t *testing.T) {
	h := NewHeap("t", 0, 1024, 16)
	if err := h.Free(0x40); !errors.Is(err, ErrBadFree) {
		t.Errorf("Free of unallocated = %v, want ErrBadFree", err)
	}
	a, err := h.Alloc(10)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := h.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := h.Free(a); !errors.Is(err, ErrBadFree) {
		t.Errorf("double Free = %v, want ErrBadFree", err)
	}
}

func TestHeapCoalescingAllowsFullReuse(t *testing.T) {
	h := NewHeap("t", 0, 1024, 16)
	var addrs []uint64
	for i := 0; i < 4; i++ {
		a, err := h.Alloc(256)
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		addrs = append(addrs, a)
	}
	// Free out of order; holes must coalesce back into one block.
	for _, i := range []int{2, 0, 3, 1} {
		if err := h.Free(addrs[i]); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	if _, err := h.Alloc(1024); err != nil {
		t.Errorf("full-size alloc after coalescing failed: %v", err)
	}
}

func TestHeapHighWater(t *testing.T) {
	h := NewHeap("t", 0, 4096, 16)
	a, _ := h.Alloc(1024)
	b, _ := h.Alloc(1024)
	_ = h.Free(a)
	_ = h.Free(b)
	if st := h.Stats(); st.HighWater != 2048 {
		t.Errorf("HighWater = %d, want 2048", st.HighWater)
	}
}

// Property: whatever sequence of allocs/frees happens, allocations never
// overlap and never leave the managed range.
func TestHeapNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		h := NewHeap("prop", 0x1_0000, 1<<16, 16)
		type alloc struct{ addr, size uint64 }
		var live []alloc
		for i, s := range sizes {
			n := uint64(s%2048) + 1
			a, err := h.Alloc(n)
			if err != nil {
				// Exhaustion is fine; free one and continue.
				if len(live) > 0 {
					_ = h.Free(live[0].addr)
					live = live[1:]
				}
				continue
			}
			if a < 0x1_0000 || a+n > 0x1_0000+1<<16 {
				return false
			}
			for _, l := range live {
				if a < l.addr+l.size && l.addr < a+n {
					return false // overlap
				}
			}
			live = append(live, alloc{a, alignUp(n, 16)})
			if i%3 == 2 && len(live) > 1 {
				_ = h.Free(live[1].addr)
				live = append(live[:1], live[2:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDefaultLayoutRegions(t *testing.T) {
	l := DefaultLayout()
	regions := l.Regions()
	if len(regions) != 2 {
		t.Fatalf("Regions() returned %d regions, want 2", len(regions))
	}
	if regions[0].Attr != tz.AttrNonSecure || regions[1].Attr != tz.AttrSecureOnly {
		t.Error("region attributes wrong")
	}
	if regions[0].Overlaps(regions[1]) {
		t.Error("dram and tzdram overlap")
	}
	if l.TotalSize() != l.DRAMSize+l.SecureSize {
		t.Error("TotalSize inconsistent")
	}
}

func TestNewPlatformHeapsInsideRegions(t *testing.T) {
	p := testPlatform(t)
	// Secure heap allocations must land in the secure region.
	a, err := p.SecureHeap.Alloc(4096)
	if err != nil {
		t.Fatalf("SecureHeap.Alloc: %v", err)
	}
	if err := p.ASC.Check(tz.WorldSecure, a, 4096); err != nil {
		t.Errorf("secure alloc not accessible to secure world: %v", err)
	}
	if err := p.ASC.Check(tz.WorldNormal, a, 4096); !errors.Is(err, tz.ErrSecurityViolation) {
		t.Errorf("secure alloc accessible to normal world: %v", err)
	}
	// DMA heap allocations must be in non-secure DRAM.
	d, err := p.DMAHeap.Alloc(4096)
	if err != nil {
		t.Fatalf("DMAHeap.Alloc: %v", err)
	}
	if err := p.ASC.Check(tz.WorldNormal, d, 4096); err != nil {
		t.Errorf("dma alloc not accessible to normal world: %v", err)
	}
}

func TestPhysMemSparsePaging(t *testing.T) {
	p := testPlatform(t)
	if p.Mem.ResidentPages() != 0 {
		t.Fatalf("fresh memory has %d resident pages", p.Mem.ResidentPages())
	}
	// Reading untouched memory returns zeros without materializing pages.
	buf := make([]byte, 128)
	buf[0] = 0xff
	if err := p.Mem.ReadAt(tz.WorldNormal, p.Layout.DRAMBase+1<<20, buf); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("untouched byte %d = %d", i, b)
		}
	}
	if p.Mem.ResidentPages() != 0 {
		t.Errorf("read materialized %d pages", p.Mem.ResidentPages())
	}
	// A write materializes exactly the pages it spans.
	if err := p.Mem.WriteAt(tz.WorldNormal, p.Layout.DRAMBase+(1<<16)-4, make([]byte, 8)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if got := p.Mem.ResidentPages(); got != 2 {
		t.Errorf("straddling write resident pages = %d, want 2", got)
	}
}

func TestPhysMemCrossPageRoundTrip(t *testing.T) {
	p := testPlatform(t)
	// A write spanning three pages must read back intact.
	addr := p.Layout.DRAMBase + (1 << 16) - 100
	want := make([]byte, 3*200+1<<16)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := p.Mem.WriteAt(tz.WorldNormal, addr, want); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if err := p.Mem.ReadAt(tz.WorldNormal, addr, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cross-page round trip corrupted data")
	}
	// Zero a sub-range crossing the page boundary.
	if err := p.Mem.Zero(tz.WorldNormal, addr+50, 1<<16); err != nil {
		t.Fatalf("Zero: %v", err)
	}
	if err := p.Mem.ReadAt(tz.WorldNormal, addr, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	for i := 50; i < 50+1<<16; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
	if got[49] != want[49] || got[50+1<<16] != want[50+1<<16] {
		t.Error("Zero clobbered neighbouring bytes")
	}
}

func TestAlignUp(t *testing.T) {
	tests := []struct{ v, a, want uint64 }{
		{0, 16, 0},
		{1, 16, 16},
		{16, 16, 16},
		{17, 16, 32},
		{100, 64, 128},
	}
	for _, tt := range tests {
		if got := alignUp(tt.v, tt.a); got != tt.want {
			t.Errorf("alignUp(%d,%d) = %d, want %d", tt.v, tt.a, got, tt.want)
		}
	}
}
