// Package memory models the platform's physical memory: a flat byte-
// addressable space whose accesses are checked by the TrustZone address
// space controller, plus an allocator for the (small) secure-RAM carve-out
// that OP-TEE hands to trusted applications.
//
// The secure allocator's fixed capacity reproduces the paper's §V
// limitation: "TEE technologies like TrustZone provide relatively small
// memory resources for applications".
package memory

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/tz"
)

// Errors returned by the memory subsystem.
var (
	// ErrOutOfRange is returned when an access falls outside physical memory.
	ErrOutOfRange = errors.New("memory: access out of physical range")
	// ErrOutOfSecureMemory is returned when the secure heap is exhausted.
	ErrOutOfSecureMemory = errors.New("memory: out of secure memory")
	// ErrBadFree is returned when freeing an address that was not allocated.
	ErrBadFree = errors.New("memory: free of unallocated address")
)

// AccessChecker validates a [addr, addr+n) access from a world.
// *tz.TZASC implements it.
type AccessChecker interface {
	Check(w tz.World, addr, n uint64) error
}

var _ AccessChecker = (*tz.TZASC)(nil)

// pageBits sizes the sparse backing pages (64 KiB).
const pageBits = 16

// PhysMem is the flat physical memory of the platform. All loads and stores
// pass through the access checker, so a normal-world caller cannot touch
// secure-only regions. Backing storage is paged sparsely: untouched memory
// reads as zero without ever being allocated, so building a platform is
// cheap regardless of its modelled RAM size.
type PhysMem struct {
	checker AccessChecker
	base    uint64
	size    uint64

	mu    sync.RWMutex
	pages map[uint64][]byte
}

// NewPhysMem creates size bytes of physical memory starting at base.
func NewPhysMem(base, size uint64, checker AccessChecker) *PhysMem {
	return &PhysMem{
		checker: checker,
		base:    base,
		size:    size,
		pages:   make(map[uint64][]byte),
	}
}

// Base returns the first physical address.
func (p *PhysMem) Base() uint64 { return p.base }

// Size returns the memory size in bytes.
func (p *PhysMem) Size() uint64 { return p.size }

func (p *PhysMem) bounds(addr uint64, n int) error {
	if n < 0 {
		return fmt.Errorf("%w: negative length %d", ErrOutOfRange, n)
	}
	end := addr + uint64(n)
	if addr < p.base || end < addr || end > p.base+p.size {
		return fmt.Errorf("%w: [%#x,+%d)", ErrOutOfRange, addr, n)
	}
	return nil
}

// forEachPage walks the page spans covering [addr, addr+n), handing the
// callback the page index and the intra-page byte range.
func (p *PhysMem) forEachPage(addr uint64, n int, fn func(page uint64, off, length int)) {
	rel := addr - p.base
	remaining := n
	for remaining > 0 {
		page := rel >> pageBits
		off := int(rel & ((1 << pageBits) - 1))
		length := (1 << pageBits) - off
		if length > remaining {
			length = remaining
		}
		fn(page, off, length)
		rel += uint64(length)
		remaining -= length
	}
}

// ReadAt copies len(buf) bytes at addr into buf on behalf of world w.
func (p *PhysMem) ReadAt(w tz.World, addr uint64, buf []byte) error {
	if err := p.bounds(addr, len(buf)); err != nil {
		return err
	}
	if err := p.checker.Check(w, addr, uint64(len(buf))); err != nil {
		return err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	pos := 0
	p.forEachPage(addr, len(buf), func(page uint64, off, length int) {
		if data, ok := p.pages[page]; ok {
			copy(buf[pos:pos+length], data[off:])
		} else {
			for i := pos; i < pos+length; i++ {
				buf[i] = 0
			}
		}
		pos += length
	})
	return nil
}

// WriteAt copies buf into memory at addr on behalf of world w.
func (p *PhysMem) WriteAt(w tz.World, addr uint64, buf []byte) error {
	if err := p.bounds(addr, len(buf)); err != nil {
		return err
	}
	if err := p.checker.Check(w, addr, uint64(len(buf))); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pos := 0
	p.forEachPage(addr, len(buf), func(page uint64, off, length int) {
		data, ok := p.pages[page]
		if !ok {
			data = make([]byte, 1<<pageBits)
			p.pages[page] = data
		}
		copy(data[off:], buf[pos:pos+length])
		pos += length
	})
	return nil
}

// Zero clears n bytes at addr on behalf of world w. OP-TEE zeroes secure
// buffers before releasing them; the kernel does the same for page reuse.
func (p *PhysMem) Zero(w tz.World, addr uint64, n int) error {
	if err := p.bounds(addr, n); err != nil {
		return err
	}
	if err := p.checker.Check(w, addr, uint64(n)); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.forEachPage(addr, n, func(page uint64, off, length int) {
		if data, ok := p.pages[page]; ok {
			for i := off; i < off+length; i++ {
				data[i] = 0
			}
		}
	})
	return nil
}

// ResidentPages reports how many backing pages have been materialized
// (observability for tests and memory-footprint accounting).
func (p *PhysMem) ResidentPages() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.pages)
}

// block is one allocation or free hole inside the heap.
type block struct {
	addr uint64
	size uint64
}

// HeapStats describes allocator occupancy.
type HeapStats struct {
	Capacity  uint64
	Used      uint64
	Allocs    uint64
	Frees     uint64
	Failures  uint64 // allocations rejected for lack of space
	HighWater uint64 // maximum Used ever observed
}

// Heap is a first-fit allocator over a fixed address range. It is used for
// the secure-RAM carve-out (OP-TEE's TA heap) and for normal-world DMA
// pools; the capacity limit is the TEE memory constraint from the paper.
type Heap struct {
	name  string
	base  uint64
	size  uint64
	align uint64

	mu     sync.Mutex
	free   []block // sorted by addr, coalesced
	allocs map[uint64]uint64
	stats  HeapStats
}

// NewHeap creates an allocator managing [base, base+size) with the given
// alignment (0 means 16-byte default).
func NewHeap(name string, base, size, align uint64) *Heap {
	if align == 0 {
		align = 16
	}
	h := &Heap{
		name:   name,
		base:   base,
		size:   size,
		align:  align,
		free:   []block{{addr: base, size: size}},
		allocs: make(map[uint64]uint64),
	}
	h.stats.Capacity = size
	return h
}

// Name returns the heap's label.
func (h *Heap) Name() string { return h.name }

func alignUp(v, a uint64) uint64 {
	return (v + a - 1) / a * a
}

// Alloc reserves n bytes and returns the physical address.
func (h *Heap) Alloc(n uint64) (uint64, error) {
	if n == 0 {
		n = 1
	}
	n = alignUp(n, h.align)
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, b := range h.free {
		start := alignUp(b.addr, h.align)
		pad := start - b.addr
		if b.size < pad+n {
			continue
		}
		// Carve [start, start+n) out of the hole.
		var repl []block
		if pad > 0 {
			repl = append(repl, block{addr: b.addr, size: pad})
		}
		if rest := b.size - pad - n; rest > 0 {
			repl = append(repl, block{addr: start + n, size: rest})
		}
		h.free = append(h.free[:i], append(repl, h.free[i+1:]...)...)
		h.allocs[start] = n
		h.stats.Used += n
		h.stats.Allocs++
		if h.stats.Used > h.stats.HighWater {
			h.stats.HighWater = h.stats.Used
		}
		return start, nil
	}
	h.stats.Failures++
	return 0, fmt.Errorf("%w: heap %q: need %d, used %d of %d",
		ErrOutOfSecureMemory, h.name, n, h.stats.Used, h.size)
}

// Free releases an allocation made by Alloc.
func (h *Heap) Free(addr uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	n, ok := h.allocs[addr]
	if !ok {
		return fmt.Errorf("%w: %#x in heap %q", ErrBadFree, addr, h.name)
	}
	delete(h.allocs, addr)
	h.stats.Used -= n
	h.stats.Frees++
	h.free = append(h.free, block{addr: addr, size: n})
	sort.Slice(h.free, func(i, j int) bool { return h.free[i].addr < h.free[j].addr })
	// Coalesce adjacent holes.
	out := h.free[:1]
	for _, b := range h.free[1:] {
		last := &out[len(out)-1]
		if last.addr+last.size == b.addr {
			last.size += b.size
		} else {
			out = append(out, b)
		}
	}
	h.free = out
	return nil
}

// Stats returns a snapshot of heap occupancy.
func (h *Heap) Stats() HeapStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Layout is the standard platform memory map used across experiments:
// a large non-secure DRAM bank and a small TrustZone-carved secure bank,
// mirroring a Jetson-class device running OP-TEE.
type Layout struct {
	DRAMBase   uint64
	DRAMSize   uint64
	SecureBase uint64
	SecureSize uint64
}

// DefaultLayout returns the platform memory map: 64 MiB of modelled DRAM
// (enough for the workloads while keeping the simulation light) and a
// 16 MiB secure carve-out, matching OP-TEE's default TZDRAM scale.
func DefaultLayout() Layout {
	return Layout{
		DRAMBase:   0x8000_0000,
		DRAMSize:   64 << 20,
		SecureBase: 0x8000_0000 + 64<<20,
		SecureSize: 16 << 20,
	}
}

// Regions returns the TZASC region set for the layout.
func (l Layout) Regions() []tz.Region {
	return []tz.Region{
		{Name: "dram", Base: l.DRAMBase, Size: l.DRAMSize, Attr: tz.AttrNonSecure},
		{Name: "tzdram", Base: l.SecureBase, Size: l.SecureSize, Attr: tz.AttrSecureOnly},
	}
}

// TotalSize returns the total physical memory size.
func (l Layout) TotalSize() uint64 { return l.DRAMSize + l.SecureSize }

// Platform bundles the memory-system pieces every experiment needs.
type Platform struct {
	Layout Layout
	ASC    *tz.TZASC
	Mem    *PhysMem
	// SecureHeap allocates TA/PTA buffers inside the secure carve-out.
	SecureHeap *Heap
	// DMAHeap allocates normal-world DMA buffers inside DRAM.
	DMAHeap *Heap
}

// NewPlatform builds memory, TZASC and heaps for the layout.
func NewPlatform(l Layout) (*Platform, error) {
	asc, err := tz.NewTZASC(l.Regions())
	if err != nil {
		return nil, fmt.Errorf("platform tzasc: %w", err)
	}
	mem := NewPhysMem(l.DRAMBase, l.TotalSize(), asc)
	return &Platform{
		Layout:     l,
		ASC:        asc,
		Mem:        mem,
		SecureHeap: NewHeap("tzdram", l.SecureBase, l.SecureSize, 64),
		DMAHeap:    NewHeap("dma", l.DRAMBase+32<<20, 16<<20, 64),
	}, nil
}
