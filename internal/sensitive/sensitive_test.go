package sensitive

import (
	"errors"
	"testing"
)

func TestGenerateDeterministicAndLabelled(t *testing.T) {
	cfg := DefaultGenConfig(42)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(a) != cfg.N || len(b) != cfg.N {
		t.Fatalf("sizes %d/%d, want %d", len(a), len(b), cfg.N)
	}
	for i := range a {
		if a[i].Text() != b[i].Text() || a[i].Sensitive != b[i].Sensitive {
			t.Fatal("same seed produced different corpora")
		}
	}
	// Labels must be consistent with the lexicon.
	for _, u := range a {
		want := CountSensitiveTokens(u.Words) > 0
		if u.Sensitive != want {
			t.Errorf("utterance %q labelled %v, lexicon says %v", u.Text(), u.Sensitive, want)
		}
	}
}

func TestGenerateFractionRoughlyHonored(t *testing.T) {
	corpus, err := Generate(GenConfig{N: 1000, SensitiveFraction: 0.4, Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	count := 0
	for _, u := range corpus {
		if u.Sensitive {
			count++
		}
	}
	frac := float64(count) / float64(len(corpus))
	if frac < 0.33 || frac > 0.47 {
		t.Errorf("sensitive fraction = %v, want ~0.4", frac)
	}
}

func TestGenerateEmpty(t *testing.T) {
	if _, err := Generate(GenConfig{N: 0}); !errors.Is(err, ErrEmptyCorpus) {
		t.Errorf("Generate(0) = %v", err)
	}
}

func TestVocabularyEncoding(t *testing.T) {
	v := NewVocabulary()
	if v.Size() < 20 {
		t.Errorf("vocabulary size %d suspiciously small", v.Size())
	}
	if v.ID("<pad>") != PAD || v.ID("<unk>") != UNK {
		t.Error("reserved ids wrong")
	}
	if v.ID("password") == UNK {
		t.Error("password missing from vocabulary")
	}
	if v.ID("zyzzyva") != UNK {
		t.Error("unknown word should map to UNK")
	}
	if v.ID("PASSWORD") != v.ID("password") {
		t.Error("vocabulary not case-insensitive")
	}
	ids := v.Encode([]string{"turn", "on", "zyzzyva"})
	if len(ids) != 3 || ids[2] != UNK {
		t.Errorf("Encode = %v", ids)
	}
	// Round trip id -> word.
	if v.Word(v.ID("doctor")) != "doctor" {
		t.Error("Word/ID round trip failed")
	}
	if v.Word(-1) != "" || v.Word(99999) != "" {
		t.Error("out-of-range Word should be empty")
	}
}

func TestVocabularyDeterministicOrder(t *testing.T) {
	a, b := NewVocabulary(), NewVocabulary()
	if a.Size() != b.Size() {
		t.Fatal("sizes differ")
	}
	for i := 0; i < a.Size(); i++ {
		if a.Word(i) != b.Word(i) {
			t.Fatal("vocabulary order not deterministic")
		}
	}
}

func TestWordsExcludesReserved(t *testing.T) {
	v := NewVocabulary()
	for _, w := range v.Words() {
		if w == "<pad>" || w == "<unk>" {
			t.Errorf("Words() contains reserved token %q", w)
		}
	}
	if len(v.Words()) != v.Size()-2 {
		t.Errorf("Words() = %d, want %d", len(v.Words()), v.Size()-2)
	}
}

func TestSplit(t *testing.T) {
	corpus, err := Generate(GenConfig{N: 100, SensitiveFraction: 0.5, Seed: 9})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	trainSet, testSet := Split(corpus, 0.8, 1)
	if len(trainSet) != 80 || len(testSet) != 20 {
		t.Errorf("split sizes = %d/%d", len(trainSet), len(testSet))
	}
	// No overlap: every utterance accounted for exactly once.
	seen := make(map[string]int)
	for _, u := range corpus {
		seen[u.Text()]++
	}
	for _, u := range append(append([]Utterance{}, trainSet...), testSet...) {
		seen[u.Text()]--
	}
	for text, n := range seen {
		if n != 0 {
			t.Errorf("utterance %q count off by %d after split", text, n)
		}
	}
}

func TestCountSensitiveTokens(t *testing.T) {
	tests := []struct {
		words []string
		want  int
	}{
		{[]string{"turn", "on", "the", "light"}, 0},
		{[]string{"my", "password", "is", "tango"}, 1},
		{[]string{"credit", "card", "and", "account"}, 3},
		{[]string{"PASSWORD"}, 1}, // case-insensitive
		{nil, 0},
	}
	for _, tt := range tests {
		if got := CountSensitiveTokens(tt.words); got != tt.want {
			t.Errorf("CountSensitiveTokens(%v) = %d, want %d", tt.words, got, tt.want)
		}
	}
}

func TestUtteranceLabel(t *testing.T) {
	if (Utterance{Sensitive: true}).Label() != 1 || (Utterance{}).Label() != 0 {
		t.Error("Label() mapping wrong")
	}
}

func TestSensitivePhrasesAllContainLexiconWord(t *testing.T) {
	for _, p := range sensitivePhrases {
		if CountSensitiveTokens(p) == 0 {
			t.Errorf("sensitive phrase %v has no lexicon word", p)
		}
	}
	for _, p := range benignPhrases {
		if CountSensitiveTokens(p) != 0 {
			t.Errorf("benign phrase %v contains lexicon word", p)
		}
	}
}

func TestMaxLen(t *testing.T) {
	data := []Utterance{
		{Words: []string{"a"}},
		{Words: []string{"a", "b", "c"}},
	}
	if MaxLen(data) != 3 {
		t.Errorf("MaxLen = %d", MaxLen(data))
	}
	if MaxLen(nil) != 0 {
		t.Error("MaxLen(nil) should be 0")
	}
}
