// Package sensitive defines the labelled smart-home utterance corpus the
// classifiers train and evaluate on. The paper's motivating scenario (§I)
// is a voice assistant that involuntarily ships private speech to the
// cloud; this corpus mixes routine assistant commands with utterances
// carrying private content (credentials, finances, health, identities),
// labelled sensitive when any private token appears.
package sensitive

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
)

// ErrEmptyCorpus is returned when generation parameters yield no data.
var ErrEmptyCorpus = errors.New("sensitive: empty corpus")

// benignPhrases are routine assistant commands (no private content).
var benignPhrases = [][]string{
	{"turn", "on", "the", "light"},
	{"turn", "off", "the", "light"},
	{"play", "some", "music"},
	{"stop", "the", "music"},
	{"set", "a", "timer"},
	{"what", "is", "the", "weather"},
	{"volume", "up"},
	{"volume", "down"},
	{"good", "morning"},
	{"set", "the", "temperature"},
	{"open", "the", "garage"},
	{"start", "the", "vacuum"},
	{"what", "time", "is", "it"},
	{"add", "milk", "to", "the", "list"},
	{"remind", "me", "to", "exercise"},
}

// sensitivePhrases carry private content; every phrase contains at least
// one token from sensitiveWords.
var sensitivePhrases = [][]string{
	{"my", "password", "is", "tango", "seven"},
	{"the", "wifi", "password", "is", "sunset"},
	{"my", "account", "number", "is", "nine", "two"},
	{"transfer", "money", "to", "my", "account"},
	{"call", "my", "doctor", "about", "the", "diagnosis"},
	{"refill", "my", "medication", "tomorrow"},
	{"my", "salary", "is", "confidential"},
	{"the", "safe", "code", "is", "four", "one"},
	{"my", "social", "security", "number", "follows"},
	{"schedule", "therapy", "for", "tuesday"},
	{"my", "credit", "card", "expires", "soon"},
	{"the", "alarm", "code", "is", "five", "nine"},
}

// sensitiveWords is the private-token lexicon; an utterance is labelled
// sensitive iff it contains at least one of these.
var sensitiveWords = map[string]bool{
	"password": true, "account": true, "doctor": true, "diagnosis": true,
	"medication": true, "salary": true, "confidential": true, "code": true,
	"social": true, "security": true, "therapy": true, "credit": true,
	"card": true, "money": true, "safe": true, "alarm": true,
}

// IsSensitiveWord reports whether a single token is private.
func IsSensitiveWord(w string) bool { return sensitiveWords[strings.ToLower(w)] }

// CountSensitiveTokens counts private tokens in a transcript — the
// leakage unit used by experiment E5.
func CountSensitiveTokens(tokens []string) int {
	n := 0
	for _, t := range tokens {
		if IsSensitiveWord(t) {
			n++
		}
	}
	return n
}

// Utterance is one labelled example.
type Utterance struct {
	Words     []string
	Sensitive bool
}

// Label returns 1 for sensitive, 0 for benign (the classifier classes).
func (u Utterance) Label() int {
	if u.Sensitive {
		return 1
	}
	return 0
}

// Text returns the utterance as a space-joined string.
func (u Utterance) Text() string { return strings.Join(u.Words, " ") }

// Vocabulary maps words to token ids. Id 0 is PAD, id 1 is UNK.
type Vocabulary struct {
	byWord map[string]int
	words  []string
}

// PAD and UNK are the reserved token ids.
const (
	PAD = 0
	UNK = 1
)

// NewVocabulary builds the corpus vocabulary (deterministic order).
func NewVocabulary() *Vocabulary {
	set := make(map[string]bool)
	for _, p := range benignPhrases {
		for _, w := range p {
			set[w] = true
		}
	}
	for _, p := range sensitivePhrases {
		for _, w := range p {
			set[w] = true
		}
	}
	words := make([]string, 0, len(set))
	for w := range set {
		words = append(words, w)
	}
	sort.Strings(words)
	v := &Vocabulary{
		byWord: make(map[string]int, len(words)+2),
		words:  append([]string{"<pad>", "<unk>"}, words...),
	}
	for i, w := range v.words {
		v.byWord[w] = i
	}
	return v
}

// NewVocabularyFromWords builds a vocabulary over an explicit word list
// (deduplicated, lowercased order preserved via sorting) — used by
// callers that speak a different lexicon than the built-in corpus, and
// by tests that need two distinct vocabularies.
func NewVocabularyFromWords(words []string) *Vocabulary {
	set := make(map[string]bool)
	for _, w := range words {
		set[strings.ToLower(w)] = true
	}
	uniq := make([]string, 0, len(set))
	for w := range set {
		uniq = append(uniq, w)
	}
	sort.Strings(uniq)
	v := &Vocabulary{
		byWord: make(map[string]int, len(uniq)+2),
		words:  append([]string{"<pad>", "<unk>"}, uniq...),
	}
	for i, w := range v.words {
		v.byWord[w] = i
	}
	return v
}

// Size returns the vocabulary size including PAD and UNK.
func (v *Vocabulary) Size() int { return len(v.words) }

// ID returns the token id of a word (UNK for unknown words).
func (v *Vocabulary) ID(word string) int {
	if id, ok := v.byWord[strings.ToLower(word)]; ok {
		return id
	}
	return UNK
}

// Word returns the word for an id (empty for out of range).
func (v *Vocabulary) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		return ""
	}
	return v.words[id]
}

// Encode converts words to token ids.
func (v *Vocabulary) Encode(words []string) []int {
	out := make([]int, len(words))
	for i, w := range words {
		out[i] = v.ID(w)
	}
	return out
}

// Words returns all spoken words (excluding PAD/UNK), sorted — the ASR
// vocabulary.
func (v *Vocabulary) Words() []string {
	return append([]string(nil), v.words[2:]...)
}

// GenConfig drives corpus generation.
type GenConfig struct {
	// N is the number of utterances.
	N int
	// SensitiveFraction is the fraction carrying private content.
	SensitiveFraction float64
	// Seed fixes the sequence.
	Seed uint64
}

// DefaultGenConfig returns the standard experimental corpus shape.
func DefaultGenConfig(seed uint64) GenConfig {
	return GenConfig{N: 400, SensitiveFraction: 0.4, Seed: seed}
}

// Generate produces a labelled corpus.
func Generate(cfg GenConfig) ([]Utterance, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrEmptyCorpus, cfg.N)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5eed))
	out := make([]Utterance, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if rng.Float64() < cfg.SensitiveFraction {
			base := sensitivePhrases[rng.IntN(len(sensitivePhrases))]
			words := append([]string(nil), base...)
			// Half the time, prefix with a benign opener so sensitive
			// content appears mid-stream, as in real conversations.
			if rng.IntN(2) == 0 {
				opener := benignPhrases[rng.IntN(len(benignPhrases))]
				words = append(append([]string(nil), opener...), words...)
			}
			out = append(out, Utterance{Words: words, Sensitive: true})
		} else {
			base := benignPhrases[rng.IntN(len(benignPhrases))]
			out = append(out, Utterance{Words: append([]string(nil), base...), Sensitive: false})
		}
	}
	return out, nil
}

// Split partitions a corpus into train/test by fraction (deterministic,
// seeded shuffle).
func Split(data []Utterance, trainFrac float64, seed uint64) (train, test []Utterance) {
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x511f))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(float64(len(data)) * trainFrac)
	for i, id := range idx {
		if i < cut {
			train = append(train, data[id])
		} else {
			test = append(test, data[id])
		}
	}
	return train, test
}

// MaxLen returns the longest utterance length in words.
func MaxLen(data []Utterance) int {
	max := 0
	for _, u := range data {
		if len(u.Words) > max {
			max = len(u.Words)
		}
	}
	return max
}
