// Package teec is the normal-world TEE client library (the GlobalPlatform
// TEE Client API shape: contexts, sessions, command invocation). Normal-
// world applications — and the paper's baseline measurement harness — use
// it to talk to TAs; every call crosses the secure monitor and is
// cost-accounted by the underlying tz machinery.
package teec

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/optee"
)

// Errors returned by the client library.
var (
	// ErrClosed is returned for operations on finalized contexts/sessions.
	ErrClosed = errors.New("teec: closed")
)

// Context is an open connection to the TEE.
type Context struct {
	os *optee.OS

	mu       sync.Mutex
	closed   bool
	sessions map[uint32]*Session
}

// InitializeContext connects to the TEE.
func InitializeContext(os *optee.OS) *Context {
	return &Context{os: os, sessions: make(map[uint32]*Session)}
}

// OpenSession opens a session to the TA identified by uuid.
func (c *Context) OpenSession(uuid string) (*Session, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()
	id, err := c.os.OpenSession(uuid)
	if err != nil {
		return nil, fmt.Errorf("open session %s: %w", uuid, err)
	}
	s := &Session{ctx: c, id: id, uuid: uuid}
	c.mu.Lock()
	c.sessions[id] = s
	c.mu.Unlock()
	return s, nil
}

// FinalizeContext closes all sessions and the context.
func (c *Context) FinalizeContext() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	open := make([]*Session, 0, len(c.sessions))
	for _, s := range c.sessions {
		open = append(open, s)
	}
	c.sessions = nil
	c.mu.Unlock()
	var firstErr error
	for _, s := range open {
		if err := s.closeInternal(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Session is an open session to one TA.
type Session struct {
	ctx  *Context
	id   uint32
	uuid string

	mu     sync.Mutex
	closed bool
}

// ID returns the TEE session identifier.
func (s *Session) ID() uint32 { return s.id }

// UUID returns the target TA's UUID.
func (s *Session) UUID() string { return s.uuid }

// InvokeCommand executes a command on the session.
func (s *Session) InvokeCommand(cmd uint32, p *optee.Params) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	if err := s.ctx.os.Invoke(s.id, cmd, p); err != nil {
		return fmt.Errorf("invoke %s cmd %#x: %w", s.uuid, cmd, err)
	}
	return nil
}

// Close closes the session.
func (s *Session) Close() error {
	s.ctx.mu.Lock()
	if s.ctx.sessions != nil {
		delete(s.ctx.sessions, s.id)
	}
	s.ctx.mu.Unlock()
	return s.closeInternal()
}

func (s *Session) closeInternal() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.mu.Unlock()
	if err := s.ctx.os.CloseSession(s.id); err != nil {
		return fmt.Errorf("close %s: %w", s.uuid, err)
	}
	return nil
}
