package teec

import (
	"errors"
	"testing"

	"repro/internal/memory"
	"repro/internal/optee"
	"repro/internal/tz"
)

type countTA struct {
	uuid    string
	invokes int
	closes  int
}

func (c *countTA) UUID() string                { return c.uuid }
func (c *countTA) Open(sessionID uint32) error { return nil }
func (c *countTA) Close(sessionID uint32)      { c.closes++ }

func (c *countTA) Invoke(sessionID uint32, cmd uint32, p *optee.Params) error {
	c.invokes++
	if p[0].Type == optee.ValueInOut {
		p[0].A++
	}
	return nil
}

func fixture(t *testing.T) (*Context, *countTA) {
	t.Helper()
	clock := tz.NewClock()
	mon := tz.NewMonitor(clock, tz.DefaultCostModel())
	plat, err := memory.NewPlatform(memory.DefaultLayout())
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	os := optee.New(mon, plat.SecureHeap)
	ta := &countTA{uuid: "ta.count"}
	os.RegisterTA(ta)
	return InitializeContext(os), ta
}

func TestClientRoundTrip(t *testing.T) {
	ctx, ta := fixture(t)
	sess, err := ctx.OpenSession("ta.count")
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if sess.UUID() != "ta.count" || sess.ID() == 0 {
		t.Errorf("session = %q id %d", sess.UUID(), sess.ID())
	}
	p := &optee.Params{{Type: optee.ValueInOut, A: 41}}
	if err := sess.InvokeCommand(1, p); err != nil {
		t.Fatalf("InvokeCommand: %v", err)
	}
	if p[0].A != 42 {
		t.Errorf("A = %d, want 42", p[0].A)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if ta.invokes != 1 || ta.closes != 1 {
		t.Errorf("ta saw invokes=%d closes=%d", ta.invokes, ta.closes)
	}
}

func TestSessionClosedOperations(t *testing.T) {
	ctx, _ := fixture(t)
	sess, err := ctx.OpenSession("ta.count")
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := sess.InvokeCommand(1, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Invoke on closed = %v", err)
	}
	if err := sess.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close = %v", err)
	}
}

func TestOpenSessionUnknownTA(t *testing.T) {
	ctx, _ := fixture(t)
	if _, err := ctx.OpenSession("ghost"); !errors.Is(err, optee.ErrUnknownTA) {
		t.Errorf("OpenSession ghost = %v", err)
	}
}

func TestFinalizeContextClosesSessions(t *testing.T) {
	ctx, ta := fixture(t)
	if _, err := ctx.OpenSession("ta.count"); err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if _, err := ctx.OpenSession("ta.count"); err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if err := ctx.FinalizeContext(); err != nil {
		t.Fatalf("FinalizeContext: %v", err)
	}
	if ta.closes != 2 {
		t.Errorf("closes = %d, want 2", ta.closes)
	}
	if _, err := ctx.OpenSession("ta.count"); !errors.Is(err, ErrClosed) {
		t.Errorf("OpenSession after finalize = %v", err)
	}
	if err := ctx.FinalizeContext(); !errors.Is(err, ErrClosed) {
		t.Errorf("double finalize = %v", err)
	}
}
