// Package sched implements the cross-device TEE inference scheduler:
// pending utterances from many devices are coalesced into one batched
// forward pass on a shared per-model-version enclave classifier, instead
// of each device paying a per-device pass. Admission is deadline-aware —
// a queue flushes when it reaches the configured batch size OR when its
// oldest entry has waited the configured max age in virtual cycles — and
// queues are segregated by model version, so a rollout's canary cohort
// never shares a batch with the stable cohort.
//
// The scheduler is latency machinery only: it never drops, reorders
// within a device, or re-labels work. Classifier predictions are
// per-sample, so a device's flags (and therefore its transcripts, audit
// counters, and cloud events) are bit-identical to the per-device
// unbatched path no matter how flushes compose. Only virtual wait time
// and batch occupancy differ — that is the invariant the fleet-level
// batch-equivalence property suite pins.
//
// Trust boundary: the scheduler runs in the shared service enclave. It
// sees encoded token IDs (already vocabulary-clamped inside the device
// TA) and cleartext queue metadata (device ID, model version, virtual
// timestamps) — never raw audio, transcript words, or sealed payloads.
package sched

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/tz"
)

// ErrBadConfig is returned for invalid scheduler configurations.
var ErrBadConfig = errors.New("sched: invalid config")

// ErrClosed is returned for submissions after Close.
var ErrClosed = errors.New("sched: scheduler closed")

// DefaultMaxAge is the flush deadline when none is configured: 2 virtual
// milliseconds at the 1 GHz cycle model — about the cost of one batched
// forward pass, so deadline flushes do not dominate under light load.
const DefaultMaxAge tz.Cycles = 2_000_000

// DefaultWorkers bounds concurrent flush executions when unset.
const DefaultWorkers = 2

// Request is one device's pending classification work: the encoded token
// sequences of its queued utterances plus the device's virtual clock at
// submit time. Items from one request always ride the same flush.
type Request struct {
	DeviceID string
	Version  uint64  // model version; selects the queue and shared classifier
	Items    [][]int // encoded token sequences, one per utterance
	Now      tz.Cycles
}

// Response carries the per-item verdicts back to the submitting device,
// the virtual cycles its clock must advance (queue wait plus its share of
// the shared forward pass), and the occupancy of the flush it rode in.
type Response struct {
	Flagged   []bool
	Wait      tz.Cycles
	Occupancy int
}

// Executor runs one batched forward pass over items of a single model
// version, returning per-item flags and the total pass cost in cycles.
// The scheduler never mixes versions in one call.
type Executor func(version uint64, items [][]int) ([]bool, tz.Cycles, error)

// Config parameterizes a Scheduler.
type Config struct {
	// Batch is the flush occupancy cap (items per shared forward pass).
	Batch int
	// MaxAge is the deadline in virtual cycles: a queue whose oldest
	// entry has waited this long flushes regardless of occupancy.
	// Default DefaultMaxAge.
	MaxAge tz.Cycles
	// Workers bounds concurrent flush executions. Default DefaultWorkers.
	Workers int
	// Pressure, when set, reports downstream uplink utilization in
	// [0,1] (the cloud admission policy's occupancy signal). At or above
	// HighWater the scheduler halves its effective max age: it flushes
	// smaller batches sooner, smoothing arrivals into a loaded uplink
	// instead of bursting into queues the admission policy would shed.
	Pressure func() float64
	// HighWater is the pressure threshold; default 0.75, matching
	// cloud.DefaultHighWater.
	HighWater float64
}

// Flush reasons, tallied in Stats.Flushes.
const (
	ReasonFull  = "full"  // queue reached the batch size
	ReasonAge   = "age"   // oldest entry exceeded max age
	ReasonIdle  = "idle"  // deadline timer fired with all producers blocked
	ReasonDrain = "drain" // end-of-run drain
)

// Stats is a snapshot of scheduler behavior for results and snapshots.
type Stats struct {
	Flushes        map[string]uint64 // flush count by reason
	Batches        uint64            // total flushes
	Items          uint64            // total items classified
	ItemsByVersion map[uint64]uint64 // items per model version
	Occupancy      map[int]uint64    // flush size -> count
	MaxOccupancy   int
	// MixedVersionFlushes counts flushes whose items spanned more than
	// one model version. Per-version queues make this impossible by
	// construction; it is tallied defensively and asserted zero in tests.
	MixedVersionFlushes uint64
	// PressureFlushes counts flushes cut under the halved deadline while
	// downstream pressure was at or above the high-water mark.
	PressureFlushes uint64
	// DrainBatches/DrainItems single out the end-of-run drain flushes
	// (reason "drain", typically size 0–1), so steady-state occupancy can
	// be reported without the drain tail dragging the mean down.
	DrainBatches uint64
	DrainItems   uint64
}

// entry is one queued request with its completion hook: a channel for
// blocking Classify callers, or a callback for SubmitAsync continuations.
// Exactly one of done/cb is set.
type entry struct {
	req   Request
	stamp tz.Cycles // scheduler clock at enqueue
	resp  Response
	err   error
	done  chan struct{}
	cb    func(Response, error)
}

// complete delivers the entry's outcome: wake the blocked producer or
// run the continuation. Called off the scheduler lock, after the flush
// job's inflight slot is released — so a continuation that re-submits
// (or an idle probe racing it) always observes settled inflight state.
func (e *entry) complete() {
	if e.cb != nil {
		e.cb(e.resp, e.err)
		return
	}
	close(e.done)
}

// queue is the FIFO for one model version.
type queue struct {
	entries []*entry
	items   int // sum of len(req.Items) over entries
}

// flushJob is one cut batch handed to the worker pool.
type flushJob struct {
	version    uint64
	entries    []*entry
	items      int
	reason     string
	flushClock tz.Cycles
}

// Scheduler coalesces classification requests across devices. Producers
// (fleet device workers) register with AddProducer/ProducerDone and block
// in Classify until their flush executes; a bounded worker pool runs the
// shared forward passes.
type Scheduler struct {
	cfg  Config
	exec Executor

	mu         sync.Mutex
	cond       *sync.Cond // signals pending flush jobs to workers
	clock      tz.Cycles  // scheduler virtual clock: max over submit stamps
	queues     map[uint64]*queue
	jobs       []*flushJob
	producers  int // registered, not yet done
	blocked    int // producers currently waiting in Classify
	inflight   int // flush jobs queued or executing
	delivering int // executed flushes whose completions are being delivered
	closed     bool

	flushes        map[string]uint64
	itemsByVersion map[uint64]uint64
	occupancy      map[int]uint64
	maxOccupancy   int
	batches        uint64
	totalItems     uint64
	mixed          uint64
	pressureCuts   uint64
	drainBatches   uint64
	drainItems     uint64

	wg sync.WaitGroup
}

// New validates the config and starts the flush worker pool.
func New(cfg Config, exec Executor) (*Scheduler, error) {
	if exec == nil {
		return nil, fmt.Errorf("%w: nil executor", ErrBadConfig)
	}
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("%w: batch %d", ErrBadConfig, cfg.Batch)
	}
	if cfg.MaxAge <= 0 {
		cfg.MaxAge = DefaultMaxAge
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.HighWater <= 0 || cfg.HighWater > 1 {
		cfg.HighWater = 0.75
	}
	s := &Scheduler{
		cfg:            cfg,
		exec:           exec,
		queues:         make(map[uint64]*queue),
		flushes:        make(map[string]uint64),
		itemsByVersion: make(map[uint64]uint64),
		occupancy:      make(map[int]uint64),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// AddProducer registers a producer goroutine. The idle-flush rule fires
// only when every registered producer is blocked in Classify, so
// producers must deregister with ProducerDone when they exit.
func (s *Scheduler) AddProducer() {
	s.mu.Lock()
	s.producers++
	s.mu.Unlock()
}

// ProducerDone deregisters a producer and re-evaluates flush conditions:
// the departing producer may have been the one the remaining queues were
// waiting on.
func (s *Scheduler) ProducerDone() {
	s.mu.Lock()
	s.producers--
	s.maybeFlush()
	s.mu.Unlock()
}

// Classify submits a device's pending utterances and blocks until the
// flush carrying them has executed. A request never exceeds the flush
// batch size (per-device batches are capped below it by the caller).
func (s *Scheduler) Classify(req Request) (Response, error) {
	if len(req.Items) == 0 {
		return Response{}, nil
	}
	if len(req.Items) > s.cfg.Batch {
		return Response{}, fmt.Errorf("%w: request of %d items exceeds batch %d",
			ErrBadConfig, len(req.Items), s.cfg.Batch)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Response{}, ErrClosed
	}
	if req.Now > s.clock {
		s.clock = req.Now
	}
	e := &entry{req: req, stamp: s.clock, done: make(chan struct{})}
	q := s.queues[req.Version]
	if q == nil {
		q = &queue{}
		s.queues[req.Version] = q
	}
	q.entries = append(q.entries, e)
	q.items += len(req.Items)
	s.blocked++
	s.maybeFlush()
	s.mu.Unlock()

	<-e.done

	s.mu.Lock()
	s.blocked--
	s.mu.Unlock()
	return e.resp, e.err
}

// SubmitAsync enqueues a request without blocking: cb fires exactly once
// with the response once the flush carrying the request has executed.
// Callbacks run on scheduler worker goroutines, never synchronously on
// the submit path, and always after the flush's inflight slot has been
// released — so a callback may safely re-submit or probe NotifyIdle.
// Async submitters do not register as producers; the event-driven caller
// drives idle cuts explicitly via NotifyIdle instead of the blocked-
// producer rule.
func (s *Scheduler) SubmitAsync(req Request, cb func(Response, error)) error {
	if cb == nil {
		return fmt.Errorf("%w: nil callback", ErrBadConfig)
	}
	if len(req.Items) == 0 {
		return fmt.Errorf("%w: empty async request", ErrBadConfig)
	}
	if len(req.Items) > s.cfg.Batch {
		return fmt.Errorf("%w: request of %d items exceeds batch %d",
			ErrBadConfig, len(req.Items), s.cfg.Batch)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if req.Now > s.clock {
		s.clock = req.Now
	}
	e := &entry{req: req, stamp: s.clock, cb: cb}
	q := s.queues[req.Version]
	if q == nil {
		q = &queue{}
		s.queues[req.Version] = q
	}
	q.entries = append(q.entries, e)
	q.items += len(req.Items)
	s.maybeFlush()
	s.mu.Unlock()
	return nil
}

// NotifyIdle is the event-driven analogue of the blocked-producer idle
// rule: the caller (an executor pool with no runnable work) asserts that
// nothing new can arrive until a pending flush completes. If no flush is
// in flight and entries are queued, the scheduler advances its clock to
// the oldest queue's deadline and cuts it (reason "idle"), returning
// true. Returns false when there was nothing to cut — closed, a flush
// already in flight (its completion will re-evaluate the queues),
// completions still being delivered (the continuations they fire may
// submit the work that fills a batch, so cutting now would be premature
// and would advance the clock on a false idle premise), or no queued
// entries.
func (s *Scheduler) NotifyIdle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.inflight > 0 || s.delivering > 0 {
		return false
	}
	maxAge, pressured := s.effectiveMaxAge()
	var oldestQ *queue
	var oldestV uint64
	for version, q := range s.queues {
		if len(q.entries) == 0 {
			continue
		}
		if oldestQ == nil || q.entries[0].stamp < oldestQ.entries[0].stamp ||
			(q.entries[0].stamp == oldestQ.entries[0].stamp && version < oldestV) {
			oldestQ, oldestV = q, version
		}
	}
	if oldestQ == nil {
		return false
	}
	deadline := oldestQ.entries[0].stamp + maxAge
	if deadline > s.clock {
		s.clock = deadline
	}
	s.cut(oldestV, oldestQ, ReasonIdle, s.clock)
	if pressured {
		s.pressureCuts++
	}
	return true
}

// Drain flushes every remaining queue and waits for all in-flight work,
// then stops the worker pool. Call after all producers are done; further
// Classify calls fail with ErrClosed.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	for version, q := range s.queues {
		for len(q.entries) > 0 {
			s.cut(version, q, ReasonDrain, s.clock)
		}
	}
	for s.inflight > 0 {
		// Workers broadcast on completion; wait for the tail.
		s.cond.Wait()
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Pending returns the number of items currently queued (not yet cut
// into a flush) across all version queues.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, q := range s.queues {
		n += q.items
	}
	return n
}

// Stats returns a copy of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Flushes:             make(map[string]uint64, len(s.flushes)),
		Batches:             s.batches,
		Items:               s.totalItems,
		ItemsByVersion:      make(map[uint64]uint64, len(s.itemsByVersion)),
		Occupancy:           make(map[int]uint64, len(s.occupancy)),
		MaxOccupancy:        s.maxOccupancy,
		MixedVersionFlushes: s.mixed,
		PressureFlushes:     s.pressureCuts,
		DrainBatches:        s.drainBatches,
		DrainItems:          s.drainItems,
	}
	for k, v := range s.flushes {
		st.Flushes[k] = v
	}
	for k, v := range s.itemsByVersion {
		st.ItemsByVersion[k] = v
	}
	for k, v := range s.occupancy {
		st.Occupancy[k] = v
	}
	return st
}

// effectiveMaxAge applies the backpressure coupling: at or above the
// high-water mark the deadline halves, trading batch occupancy for
// smoother arrival at the loaded uplink.
func (s *Scheduler) effectiveMaxAge() (tz.Cycles, bool) {
	if s.cfg.Pressure != nil && s.cfg.Pressure() >= s.cfg.HighWater {
		return s.cfg.MaxAge / 2, true
	}
	return s.cfg.MaxAge, false
}

// maybeFlush cuts every batch the admission rules currently allow.
// Called with s.mu held.
func (s *Scheduler) maybeFlush() {
	maxAge, pressured := s.effectiveMaxAge()
	for {
		cutAny := false
		for version, q := range s.queues {
			for q.items >= s.cfg.Batch {
				s.cut(version, q, ReasonFull, s.clock)
				cutAny = true
			}
			if len(q.entries) > 0 && s.clock-q.entries[0].stamp >= maxAge {
				s.cut(version, q, ReasonAge, s.clock)
				if pressured {
					s.pressureCuts++
				}
				cutAny = true
			}
		}
		if cutAny {
			continue
		}
		// Idle rule: every registered producer is blocked waiting, no
		// flush is in flight and no completions are pending delivery (a
		// producer being woken right now is about to unblock and may
		// resubmit), so nothing can arrive to fill a batch — model the
		// oldest queue's deadline timer firing. This is what makes the
		// scheduler deadlock-free under a bounded worker pool and bounds
		// a lone device's wait at max age.
		if s.blocked < s.producers || s.producers == 0 || s.inflight > 0 || s.delivering > 0 {
			return
		}
		var oldestQ *queue
		var oldestV uint64
		for version, q := range s.queues {
			if len(q.entries) == 0 {
				continue
			}
			if oldestQ == nil || q.entries[0].stamp < oldestQ.entries[0].stamp ||
				(q.entries[0].stamp == oldestQ.entries[0].stamp && version < oldestV) {
				oldestQ, oldestV = q, version
			}
		}
		if oldestQ == nil {
			return
		}
		deadline := oldestQ.entries[0].stamp + maxAge
		if deadline > s.clock {
			s.clock = deadline
		}
		s.cut(oldestV, oldestQ, ReasonIdle, s.clock)
		if pressured {
			s.pressureCuts++
		}
	}
}

// cut takes whole entries from the head of q up to the batch size and
// enqueues the flush job. Entries are never split: a request's items all
// ride one flush, so its occupancy and wait are well-defined. Called with
// s.mu held.
func (s *Scheduler) cut(version uint64, q *queue, reason string, flushClock tz.Cycles) {
	job := &flushJob{version: version, reason: reason, flushClock: flushClock}
	for len(q.entries) > 0 {
		head := q.entries[0]
		n := len(head.req.Items)
		if job.items > 0 && job.items+n > s.cfg.Batch {
			break
		}
		job.entries = append(job.entries, head)
		job.items += n
		q.entries = q.entries[1:]
		q.items -= n
	}
	if len(job.entries) == 0 {
		return
	}
	s.inflight++
	s.jobs = append(s.jobs, job)
	// Broadcast, not Signal: Drain waits on the same cond for the
	// in-flight count, and a lone Signal could wake it instead of a
	// worker, stalling the job.
	s.cond.Broadcast()
}

// worker executes flush jobs until the scheduler closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.jobs) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.jobs) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		job := s.jobs[0]
		s.jobs = s.jobs[1:]
		s.mu.Unlock()

		s.execute(job)

		s.mu.Lock()
		s.inflight--
		// The delivering count keeps the idle rule honest between the
		// slot release and the completions below: an idle probe in that
		// window would see inflight==0 while continuations that may
		// immediately resubmit are still pending, and cut a spurious
		// "idle" flush on a false premise.
		s.delivering++
		s.maybeFlush()
		s.cond.Broadcast()
		s.mu.Unlock()

		// Deliver completions only after the inflight slot is released:
		// an async continuation that re-submits (or checks NotifyIdle)
		// must not observe this flush as still in flight, or an executor
		// pool could park forever waiting for a completion that already
		// happened.
		for _, e := range job.entries {
			e.complete()
		}

		s.mu.Lock()
		s.delivering--
		// Re-evaluate the idle rule the delivering count suppressed: if
		// every producer is still blocked (nobody the completions woke
		// resubmitted), the deferred idle cut fires now.
		s.maybeFlush()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// execute runs the shared forward pass for one flush and distributes
// flags, wait cycles, and occupancy back to the blocked producers.
func (s *Scheduler) execute(job *flushJob) {
	items := make([][]int, 0, job.items)
	for _, e := range job.entries {
		items = append(items, e.req.Items...)
	}
	flagged, passCycles, err := s.exec(job.version, items)

	s.mu.Lock()
	s.batches++
	s.flushes[job.reason]++
	s.totalItems += uint64(job.items)
	s.itemsByVersion[job.version] += uint64(job.items)
	s.occupancy[job.items]++
	if job.items > s.maxOccupancy {
		s.maxOccupancy = job.items
	}
	if job.reason == ReasonDrain {
		s.drainBatches++
		s.drainItems += uint64(job.items)
	}
	versions := make(map[uint64]bool)
	for _, e := range job.entries {
		versions[e.req.Version] = true
	}
	if len(versions) > 1 {
		s.mixed++
	}
	s.mu.Unlock()

	if err == nil && len(flagged) != job.items {
		err = fmt.Errorf("sched: executor returned %d flags for %d items", len(flagged), job.items)
	}
	// The pass cost is shared evenly per item, mirroring the per-item
	// charge of the unbatched path; queue wait is capped at max age
	// (the deadline would have fired by then).
	perItem := tz.Cycles(0)
	if err == nil && job.items > 0 {
		perItem = passCycles / tz.Cycles(job.items)
	}
	off := 0
	for _, e := range job.entries {
		n := len(e.req.Items)
		if err != nil {
			e.err = err
		} else {
			wait := job.flushClock - e.stamp
			if wait < 0 {
				wait = 0
			}
			if wait > s.cfg.MaxAge {
				wait = s.cfg.MaxAge
			}
			e.resp = Response{
				Flagged:   append([]bool(nil), flagged[off:off+n]...),
				Wait:      wait + perItem*tz.Cycles(n),
				Occupancy: job.items,
			}
		}
		off += n
	}
	// Completion delivery (waking blocked producers / firing async
	// callbacks) is the worker's job, after it releases the inflight slot.
}
