package sched

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/tz"
)

// testExec flags items whose first token is odd and charges 100 cycles
// per item, recording every (version, batch-size) call it serves.
type testExec struct {
	mu    sync.Mutex
	calls []struct {
		version uint64
		items   int
	}
}

func (x *testExec) run(version uint64, items [][]int) ([]bool, tz.Cycles, error) {
	x.mu.Lock()
	x.calls = append(x.calls, struct {
		version uint64
		items   int
	}{version, len(items)})
	x.mu.Unlock()
	flagged := make([]bool, len(items))
	for i, toks := range items {
		flagged[i] = len(toks) > 0 && toks[0]%2 == 1
	}
	return flagged, tz.Cycles(100 * len(items)), nil
}

func item(tok int) []int { return []int{tok} }

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Batch: 4}, nil); err == nil {
		t.Fatal("nil executor accepted")
	}
	x := &testExec{}
	if _, err := New(Config{Batch: 0}, x.run); err == nil {
		t.Fatal("zero batch accepted")
	}
	s, err := New(Config{Batch: 2}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	s.AddProducer()
	defer s.ProducerDone()
	if _, err := s.Classify(Request{DeviceID: "d", Version: 1, Items: [][]int{item(1), item(2), item(3)}}); err == nil {
		t.Fatal("oversized request accepted")
	}
}

// TestFlushOnFull: four producers fill the batch exactly; one full flush
// serves all of them with correct per-item flags and occupancy.
func TestFlushOnFull(t *testing.T) {
	x := &testExec{}
	s, err := New(Config{Batch: 4, MaxAge: 1 << 40}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	for i := 0; i < n; i++ {
		s.AddProducer()
	}
	var wg sync.WaitGroup
	resps := make([]Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer s.ProducerDone()
			r, err := s.Classify(Request{
				DeviceID: fmt.Sprintf("d%d", i), Version: 1,
				Items: [][]int{item(i)}, Now: 0,
			})
			if err != nil {
				t.Error(err)
				return
			}
			resps[i] = r
		}(i)
	}
	wg.Wait()
	s.Drain()
	for i, r := range resps {
		if len(r.Flagged) != 1 || r.Flagged[0] != (i%2 == 1) {
			t.Errorf("producer %d: flags %v", i, r.Flagged)
		}
		if r.Occupancy != 4 {
			t.Errorf("producer %d: occupancy %d, want 4", i, r.Occupancy)
		}
		if r.Wait < 100 {
			t.Errorf("producer %d: wait %d missing the pass share", i, r.Wait)
		}
	}
	st := s.Stats()
	if st.Flushes[ReasonFull] != 1 || st.Batches != 1 || st.Items != 4 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MaxOccupancy != 4 || st.Occupancy[4] != 1 {
		t.Fatalf("occupancy: %+v", st)
	}
}

// TestDeadlineStarvation: a lone device whose single utterance can never
// fill the batch still flushes, charged exactly the deadline plus its
// pass share — batch-full is not required for progress.
func TestDeadlineStarvation(t *testing.T) {
	x := &testExec{}
	const maxAge = tz.Cycles(50_000)
	s, err := New(Config{Batch: 8, MaxAge: maxAge}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	s.AddProducer()
	r, err := s.Classify(Request{DeviceID: "lone", Version: 1, Items: [][]int{item(3)}, Now: 1000})
	if err != nil {
		t.Fatal(err)
	}
	s.ProducerDone()
	s.Drain()
	if !r.Flagged[0] {
		t.Fatal("odd token not flagged")
	}
	if want := maxAge + 100; r.Wait != want {
		t.Fatalf("wait %d, want deadline+share %d", r.Wait, want)
	}
	st := s.Stats()
	if st.Flushes[ReasonIdle] != 1 {
		t.Fatalf("expected one idle flush: %+v", st.Flushes)
	}
}

// TestFlushOnAge: a late submitter whose virtual clock is already past
// the head entry's deadline triggers an age flush carrying both.
func TestFlushOnAge(t *testing.T) {
	x := &testExec{}
	const maxAge = tz.Cycles(10_000)
	s, err := New(Config{Batch: 8, MaxAge: maxAge}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	s.AddProducer()
	s.AddProducer()
	var wg sync.WaitGroup
	var early Response
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer s.ProducerDone()
		r, err := s.Classify(Request{DeviceID: "early", Version: 1, Items: [][]int{item(1)}, Now: 0})
		if err != nil {
			t.Error(err)
			return
		}
		early = r
	}()
	waitPending(t, s, 1)
	r, err := s.Classify(Request{DeviceID: "late", Version: 1, Items: [][]int{item(2)}, Now: maxAge})
	s.ProducerDone()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	s.Drain()
	if early.Wait != maxAge+100 {
		t.Fatalf("early wait %d, want %d", early.Wait, maxAge+100)
	}
	if r.Wait != 100 {
		t.Fatalf("late wait %d, want pass share only", r.Wait)
	}
	st := s.Stats()
	if st.Flushes[ReasonAge] != 1 {
		t.Fatalf("expected one age flush: %+v", st.Flushes)
	}
}

// TestPerVersionQueues: stable and canary cohorts flush separately even
// when interleaved; no executor call ever spans versions.
func TestPerVersionQueues(t *testing.T) {
	x := &testExec{}
	s, err := New(Config{Batch: 4, MaxAge: 1 << 40}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	const perVersion = 4
	for i := 0; i < 2*perVersion; i++ {
		s.AddProducer()
	}
	var wg sync.WaitGroup
	for v := uint64(1); v <= 2; v++ {
		for i := 0; i < perVersion; i++ {
			wg.Add(1)
			go func(v uint64, i int) {
				defer wg.Done()
				defer s.ProducerDone()
				r, err := s.Classify(Request{
					DeviceID: fmt.Sprintf("v%d-d%d", v, i), Version: v,
					Items: [][]int{item(i)},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if r.Flagged[0] != (i%2 == 1) {
					t.Errorf("v%d d%d: wrong flag", v, i)
				}
			}(v, i)
		}
	}
	wg.Wait()
	s.Drain()
	st := s.Stats()
	if st.MixedVersionFlushes != 0 {
		t.Fatalf("%d mixed-version flushes", st.MixedVersionFlushes)
	}
	if st.ItemsByVersion[1] != perVersion || st.ItemsByVersion[2] != perVersion {
		t.Fatalf("items by version: %+v", st.ItemsByVersion)
	}
}

// TestPressureHalvesDeadline: with downstream utilization above the
// high-water mark, the idle deadline halves and the flush is tallied as
// pressure-driven.
func TestPressureHalvesDeadline(t *testing.T) {
	x := &testExec{}
	const maxAge = tz.Cycles(40_000)
	s, err := New(Config{
		Batch: 8, MaxAge: maxAge,
		Pressure: func() float64 { return 0.9 },
	}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	s.AddProducer()
	r, err := s.Classify(Request{DeviceID: "d", Version: 1, Items: [][]int{item(2)}})
	if err != nil {
		t.Fatal(err)
	}
	s.ProducerDone()
	s.Drain()
	if want := maxAge/2 + 100; r.Wait != want {
		t.Fatalf("wait %d, want halved deadline %d", r.Wait, want)
	}
	if st := s.Stats(); st.PressureFlushes != 1 {
		t.Fatalf("pressure flushes: %+v", st)
	}
}

// TestDrainFlushesLeftovers: entries that neither fill a batch nor hit a
// deadline are flushed by Drain with the drain reason.
func TestDrainFlushesLeftovers(t *testing.T) {
	x := &testExec{}
	s, err := New(Config{Batch: 8, MaxAge: 1 << 40}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	// Two registered producers, only one submits: the idle rule cannot
	// fire, so the entry sits queued until Drain.
	s.AddProducer()
	s.AddProducer()
	var wg sync.WaitGroup
	var r Response
	wg.Add(1)
	go func() {
		defer wg.Done()
		var err error
		r, err = s.Classify(Request{DeviceID: "d", Version: 1, Items: [][]int{item(5)}})
		if err != nil {
			t.Error(err)
		}
	}()
	waitPending(t, s, 1)
	s.Drain()
	wg.Wait()
	if !r.Flagged[0] {
		t.Fatal("flag lost in drain")
	}
	st := s.Stats()
	if st.Flushes[ReasonDrain] != 1 {
		t.Fatalf("expected one drain flush: %+v", st.Flushes)
	}
	if _, err := s.Classify(Request{DeviceID: "d", Version: 1, Items: [][]int{item(1)}}); err == nil {
		t.Fatal("Classify after Drain must fail")
	}
}

// TestSchedulerHammer drives many producers over mixed versions and
// random item counts concurrently (meaningful under -race): every item's
// flag must match the per-sample rule regardless of flush composition,
// and no flush may mix versions.
func TestSchedulerHammer(t *testing.T) {
	x := &testExec{}
	s, err := New(Config{Batch: 8, MaxAge: 5_000, Workers: 4}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 16
	const rounds = 25
	for i := 0; i < producers; i++ {
		s.AddProducer()
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer s.ProducerDone()
			for r := 0; r < rounds; r++ {
				n := 1 + (p+r)%3
				items := make([][]int, n)
				for i := range items {
					items[i] = item(p*1000 + r*10 + i)
				}
				resp, err := s.Classify(Request{
					DeviceID: fmt.Sprintf("d%d", p),
					Version:  uint64(1 + p%3),
					Items:    items,
					Now:      tz.Cycles(r * 1000),
				})
				if err != nil {
					t.Error(err)
					return
				}
				for i := range items {
					if resp.Flagged[i] != (items[i][0]%2 == 1) {
						t.Errorf("p%d r%d item %d: flag mismatch", p, r, i)
					}
				}
				if resp.Occupancy < n || resp.Occupancy > 8 {
					t.Errorf("occupancy %d out of range", resp.Occupancy)
				}
			}
		}(p)
	}
	wg.Wait()
	s.Drain()
	st := s.Stats()
	var want uint64
	for p := 0; p < producers; p++ {
		for r := 0; r < rounds; r++ {
			want += uint64(1 + (p+r)%3)
		}
	}
	if st.Items != want {
		t.Fatalf("classified %d items, want %d", st.Items, want)
	}
	if st.MixedVersionFlushes != 0 {
		t.Fatalf("%d mixed-version flushes", st.MixedVersionFlushes)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, c := range x.calls {
		if c.items > 8 {
			t.Fatalf("executor saw a %d-item batch over the cap", c.items)
		}
	}
}

// TestSubmitAsyncCoalesces: single-item asynchronous enqueues from one
// logical caller coalesce into a full flush exactly like blocking
// producers, the callbacks see the flush occupancy, and no callback runs
// on the submit path.
func TestSubmitAsyncCoalesces(t *testing.T) {
	x := &testExec{}
	s, err := New(Config{Batch: 4, MaxAge: 1 << 40}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	var mu sync.Mutex
	resps := make([]Response, n)
	fired := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		submitting := true
		err := s.SubmitAsync(Request{
			DeviceID: fmt.Sprintf("d%d", i), Version: 1, Items: [][]int{item(i)},
		}, func(r Response, err error) {
			if err != nil {
				t.Error(err)
			}
			mu.Lock()
			if submitting {
				t.Error("callback fired synchronously on the submit path")
			}
			resps[i] = r
			mu.Unlock()
			fired <- i
		})
		mu.Lock()
		submitting = false
		mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < n; k++ {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatalf("callback %d of %d never fired", k+1, n)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, r := range resps {
		if len(r.Flagged) != 1 || r.Flagged[0] != (i%2 == 1) {
			t.Errorf("submission %d: flags %v", i, r.Flagged)
		}
		if r.Occupancy != 4 {
			t.Errorf("submission %d: occupancy %d, want the full flush", i, r.Occupancy)
		}
	}
	st := s.Stats()
	if st.Flushes[ReasonFull] != 1 || st.Batches != 1 || st.Items != 4 {
		t.Fatalf("four single-item async submissions did not coalesce: %+v", st)
	}
	s.Drain()

	// Invalid submissions are rejected up front, never via callback.
	if err := s.SubmitAsync(Request{Items: [][]int{item(1)}}, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
}

// TestNotifyIdleCutsStarvedQueue: with no flush in flight and no blocked
// producers, NotifyIdle advances the virtual clock to the starved queue's
// deadline and cuts it — the event-driven caller's replacement for the
// blocked-producer idle rule.
func TestNotifyIdleCutsStarvedQueue(t *testing.T) {
	x := &testExec{}
	s, err := New(Config{Batch: 8, MaxAge: 50_000}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	if s.NotifyIdle() {
		t.Fatal("NotifyIdle cut an empty scheduler")
	}
	done := make(chan Response, 1)
	if err := s.SubmitAsync(Request{DeviceID: "d", Version: 1, Items: [][]int{item(3)}},
		func(r Response, err error) {
			if err != nil {
				t.Error(err)
			}
			done <- r
		}); err != nil {
		t.Fatal(err)
	}
	if !s.NotifyIdle() {
		t.Fatal("NotifyIdle found nothing to cut with one item starved")
	}
	var r Response
	select {
	case r = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("idle cut never completed the submission")
	}
	if r.Wait < 50_000 {
		t.Fatalf("idle-cut wait %d did not charge the deadline", r.Wait)
	}
	st := s.Stats()
	if st.Flushes[ReasonIdle] != 1 {
		t.Fatalf("expected one idle flush: %+v", st.Flushes)
	}
	s.Drain()
	if s.NotifyIdle() {
		t.Fatal("NotifyIdle cut a drained scheduler")
	}
}

// TestDrainStatsSeparated is the occupancy bugfix's unit regression: the
// raw mean occupancy averages over every flush including the end-of-run
// drain tail, while DrainBatches/DrainItems let callers recover the
// steady-state figure. One full flush of 4 plus a drain flush of 1 must
// report raw mean 2.5 with exactly one drain batch carrying one item.
func TestDrainStatsSeparated(t *testing.T) {
	x := &testExec{}
	s, err := New(Config{Batch: 4, MaxAge: 1 << 40}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{}, 5)
	cb := func(r Response, err error) {
		if err != nil {
			t.Error(err)
		}
		fired <- struct{}{}
	}
	for i := 0; i < 4; i++ {
		if err := s.SubmitAsync(Request{DeviceID: "d", Version: 1, Items: [][]int{item(i)}}, cb); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 4; k++ {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatal("full flush callbacks missing")
		}
	}
	if err := s.SubmitAsync(Request{DeviceID: "d", Version: 1, Items: [][]int{item(9)}}, cb); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	select {
	case <-fired:
	default:
		t.Fatal("drain returned before the leftover's callback fired")
	}
	st := s.Stats()
	if st.Batches != 2 || st.Items != 5 {
		t.Fatalf("stats: %+v, want 2 batches / 5 items", st)
	}
	if st.DrainBatches != 1 || st.DrainItems != 1 {
		t.Fatalf("drain tally %d batches / %d items, want 1/1: %+v",
			st.DrainBatches, st.DrainItems, st)
	}
	if got := float64(st.Items) / float64(st.Batches); got != 2.5 {
		t.Fatalf("raw mean occupancy %v, want 2.5 (drain tail included)", got)
	}
	if steady := float64(st.Items-st.DrainItems) / float64(st.Batches-st.DrainBatches); steady != 4 {
		t.Fatalf("steady occupancy %v, want 4 (drain tail excluded)", steady)
	}
}

// TestNotifyIdleDefersToPendingDelivery is the idle-probe regression: an
// executor pool probing between a flush's inflight release and its
// completion delivery must not cut queued entries as "idle" — the
// continuations being delivered may submit the work that fills the
// batch, so the premature cut would advance the virtual clock and record
// a spurious idle flush. NotifyIdle returns false while completions are
// pending and the deferred cut fires once delivery has finished.
func TestNotifyIdleDefersToPendingDelivery(t *testing.T) {
	x := &testExec{}
	s, err := New(Config{Batch: 2, MaxAge: 50_000, Workers: 1}, x.run)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan int, 3)
	// A full flush of two whose first completion parks mid-delivery,
	// pinning the lone worker inside the delivery loop.
	if err := s.SubmitAsync(Request{DeviceID: "a", Version: 1, Items: [][]int{item(2)}},
		func(Response, error) {
			close(entered)
			<-gate
			done <- 1
		}); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitAsync(Request{DeviceID: "b", Version: 1, Items: [][]int{item(4)}},
		func(Response, error) { done <- 2 }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered: // the worker has released the inflight slot and is delivering
	case <-time.After(5 * time.Second):
		t.Fatal("full flush never started delivering")
	}
	if err := s.SubmitAsync(Request{DeviceID: "c", Version: 1, Items: [][]int{item(6)}},
		func(Response, error) { done <- 3 }); err != nil {
		t.Fatal(err)
	}
	if s.NotifyIdle() {
		t.Fatal("NotifyIdle cut while the full flush's completions were still being delivered")
	}
	if st := s.Stats(); st.Flushes[ReasonIdle] != 0 {
		t.Fatalf("spurious idle flush during delivery: %+v", st.Flushes)
	}
	close(gate)
	for _, want := range []int{1, 2} {
		select {
		case got := <-done:
			if got != want {
				t.Fatalf("completion %d delivered, want %d", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("full-flush completions missing")
		}
	}
	// The callbacks have run; once the worker retires its delivering
	// count the deferred idle cut is allowed through.
	deadline := time.Now().Add(5 * time.Second)
	for !s.NotifyIdle() {
		if time.Now().After(deadline) {
			t.Fatal("NotifyIdle never cut the starved queue after delivery finished")
		}
		time.Sleep(100 * time.Microsecond)
	}
	select {
	case got := <-done:
		if got != 3 {
			t.Fatalf("idle cut delivered completion %d, want 3", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle cut never delivered the queued entry")
	}
	st := s.Stats()
	if st.Flushes[ReasonFull] != 1 || st.Flushes[ReasonIdle] != 1 {
		t.Fatalf("flush tally %+v, want one full and one idle", st.Flushes)
	}
	s.Drain()
}

// waitPending spins until the scheduler holds n queued items (test
// synchronization only; production code never polls).
func waitPending(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Pending() == n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("scheduler never reached %d pending items", n)
}
