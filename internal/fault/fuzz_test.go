package fault

import (
	"errors"
	"testing"

	"repro/internal/cloud"
	"repro/internal/tz"
)

// FuzzPlanConfig drives plan compilation with arbitrary configurations.
// PlanConfig is the trust boundary a chaos run crosses when it takes
// rates and cycle counts from a CLI or a CI matrix, so NewPlan must never
// panic: every rejection is ErrBadPlan, and every accepted config
// compiles to a plan whose device sets are in range, internally
// consistent, deterministic across recompiles — and whose injectors
// replay the same decision stream call for call.
func FuzzPlanConfig(f *testing.F) {
	f.Add(8, 0.25, 0.1, 0.1, 0.1, 0.1, int64(50_000), 4, 0.25, int64(200_000), 0.25, int64(1_000_000), 2, uint64(7))
	f.Add(1, 1.0, 1.0, 0.0, 0.0, 0.0, int64(0), 0, 0.0, int64(0), 0.0, int64(0), 0, uint64(0))
	f.Add(0, 0.0, 0.0, 0.0, 0.0, 0.0, int64(0), 0, 0.0, int64(0), 0.0, int64(0), 0, uint64(0))   // Devices required
	f.Add(8, -0.1, 0.0, 0.0, 0.0, 0.0, int64(0), 0, 0.0, int64(0), 0.0, int64(0), 0, uint64(0))  // fraction out of range
	f.Add(8, 0.5, 0.6, 0.6, 0.0, 0.0, int64(0), 0, 0.0, int64(0), 0.0, int64(0), 0, uint64(0))   // rates sum > 1
	f.Add(8, 0.5, 0.0, 0.0, 0.0, 0.0, int64(-1), 0, 0.0, int64(0), 0.0, int64(0), -3, uint64(0)) // negative delay/crashes
	f.Fuzz(func(t *testing.T, devices int,
		touch, drop, dup, delay, expire float64, delayCycles int64, attempts int,
		slowFrac float64, slowCycles int64, teeFrac float64, teePenalty int64,
		crashes int, seed uint64) {
		// Bound only the permutation allocation, never the validation
		// surface: negatives and zero must reach NewPlan to exercise the
		// Devices check.
		if devices > 4096 {
			devices = devices % 4096
		}
		cfg := PlanConfig{
			Devices:       devices,
			TouchFraction: touch,
			DropRate:      drop,
			DuplicateRate: dup,
			DelayRate:     delay,
			ExpireRate:    expire,
			DelayCycles:   tz.Cycles(delayCycles),
			Attempts:      attempts,
			SlowFraction:  slowFrac,
			SlowCycles:    tz.Cycles(slowCycles),
			TEEFraction:   teeFrac,
			TEEPenalty:    tz.Cycles(teePenalty),
			Crashes:       crashes,
			Seed:          seed,
		}
		p, err := NewPlan(cfg)
		if err != nil {
			if !errors.Is(err, ErrBadPlan) {
				t.Fatalf("rejection not ErrBadPlan: %v", err)
			}
			return
		}
		got := p.Config()
		if got.Devices <= 0 || got.Seed == 0 || got.Attempts <= 0 ||
			got.DelayCycles <= 0 || got.SlowCycles <= 0 || got.TEEPenalty <= 0 {
			t.Fatalf("accepted config missing defaults: %+v", got)
		}
		if got.TouchFraction <= 0 || got.TouchFraction > 1 {
			t.Fatalf("accepted touch fraction %v outside (0,1]", got.TouchFraction)
		}
		if n := p.TouchedCount(); n < 0 || n > got.Devices {
			t.Fatalf("touched %d of %d devices", n, got.Devices)
		}
		touchedSet := 0
		for i := 0; i < got.Devices; i++ {
			if p.Touches(i) {
				touchedSet++
			}
			if (p.Slow(i) || p.TEEFault(i)) && !p.Touches(i) {
				t.Fatalf("device %d slow/TEE-faulted but untouched", i)
			}
		}
		if touchedSet != p.TouchedCount() {
			t.Fatalf("touched set %d devices, count says %d", touchedSet, p.TouchedCount())
		}
		pts := p.CrashPoints()
		if len(pts) != got.Crashes {
			t.Fatalf("%d crash points for %d crashes", len(pts), got.Crashes)
		}
		for i, pt := range pts {
			if pt < 1 || pt > got.Devices {
				t.Fatalf("crash point %d outside [1,%d]", pt, got.Devices)
			}
			if i > 0 && pt < pts[i-1] {
				t.Fatalf("crash points not ascending: %v", pts)
			}
		}

		// Recompile: membership, schedule and a touched injector's decision
		// stream must replay bit for bit.
		q, err := NewPlan(cfg)
		if err != nil {
			t.Fatalf("recompile of accepted config rejected: %v", err)
		}
		victim := -1
		for i := 0; i < got.Devices; i++ {
			if p.Touches(i) != q.Touches(i) || p.Slow(i) != q.Slow(i) || p.TEEFault(i) != q.TEEFault(i) {
				t.Fatalf("device %d membership diverged between identical plans", i)
			}
			if victim < 0 && p.Touches(i) {
				victim = i
			}
		}
		qpts := q.CrashPoints()
		for i := range pts {
			if pts[i] != qpts[i] {
				t.Fatalf("crash schedules diverged: %v vs %v", pts, qpts)
			}
		}
		if victim < 0 {
			return
		}
		np, nq := &countIngestor{}, &countIngestor{}
		cp, cq := tz.NewClock(), tz.NewClock()
		ip := p.Injector(victim, np, cp)
		iq := q.Injector(victim, nq, cq)
		for k := 0; k < 32; k++ {
			_, errP := ip.IngestMeta("device", nil, cloud.FrameMeta{Seq: uint64(k + 1)})
			_, errQ := iq.IngestMeta("device", nil, cloud.FrameMeta{Seq: uint64(k + 1)})
			if (errP == nil) != (errQ == nil) {
				t.Fatalf("call %d: verdicts diverged: %v vs %v", k, errP, errQ)
			}
		}
		if np.calls != nq.calls || p.Stats() != q.Stats() {
			t.Fatalf("injector streams diverged: %d/%d calls, %+v vs %+v",
				np.calls, nq.calls, p.Stats(), q.Stats())
		}
		if cp.Now() != cq.Now() {
			t.Fatalf("injected virtual time diverged: %d vs %d", cp.Now(), cq.Now())
		}
		if cp.Now() < 0 {
			t.Fatalf("injections ran virtual time backwards to %d", cp.Now())
		}
	})
}
