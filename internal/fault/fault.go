// Package fault builds deterministic chaos plans for the fleet. A plan
// is a pure function of (fleet size, rates, seed): which devices it
// touches, what each touched device's uplink suffers per delivery
// (drops, duplicates, delays, expiry blackholes), which devices run
// slow, which see a transient TEE fault at boot, and where in the run
// the shard crashes land. Re-running the same plan against the same
// fleet replays every injection bit-for-bit — chaos you can regress
// against, not chaos you chase.
//
// Trust model: a plan is *cleartext operational metadata* — device
// indices, rates, cycle counts. It never sees, holds or alters sealed
// frame content; an injector drops, delays or re-sends opaque sealed
// bytes exactly as an unreliable network or a crashing frontend would.
// The security argument of the relay is therefore untouched by chaos:
// every frame that does arrive is the sealed frame the TA emitted.
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/supplicant"
	"repro/internal/tz"
)

// ErrInjectedDrop marks an uplink delivery the plan swallowed. It wraps
// supplicant.ErrTransient so the device's retry layer classifies it as
// retriable without importing this package.
var ErrInjectedDrop = fmt.Errorf("fault: injected uplink drop (%w)", supplicant.ErrTransient)

// ErrBadPlan is returned for invalid plan configurations.
var ErrBadPlan = errors.New("fault: invalid plan")

// PlanConfig parameterizes a chaos plan. All zero values are safe: a
// zero config touches a quarter of the fleet and injects nothing.
type PlanConfig struct {
	// Devices is the fleet size the plan spans (required, > 0).
	Devices int
	// TouchFraction is the fraction of devices the plan touches (default
	// 0.25). Untouched devices bypass injection entirely — their runs
	// must be bit-identical to a fault-free run, which E15 asserts.
	TouchFraction float64

	// Per-delivery decision rates on touched devices. Each delivery
	// draws once; the rates partition the draw (their sum must be ≤ 1).
	DropRate      float64 // delivery swallowed (retriable)
	DuplicateRate float64 // delivery duplicated after success (dedup target)
	DelayRate     float64 // delivery delayed by DelayCycles, then sent
	ExpireRate    float64 // blackhole window: this delivery and every retry dropped

	// DelayCycles is the virtual delay charged per delayed delivery
	// (default 50_000).
	DelayCycles tz.Cycles
	// Attempts is the device retry layer's attempt bound, used to size
	// an expiry blackhole so the frame deterministically exhausts its
	// retries (default 8 — keep in sync with core.RetryConfig.Attempts).
	Attempts int

	// SlowFraction of the touched devices pay SlowCycles (default
	// 200_000) of extra virtual latency per delivery — the straggler set.
	SlowFraction float64
	SlowCycles   tz.Cycles

	// TEEFraction of the touched devices hit a transient TEE error at
	// provisioning time, charged as TEEPenalty cycles (default 1_000_000)
	// of retried sealed-storage work before the handshake proceeds.
	TEEFraction float64
	TEEPenalty  tz.Cycles

	// Crashes is the number of shard crashes scheduled across the run
	// (see CrashPoints).
	Crashes int

	// Seed roots every stream the plan derives (default 1).
	Seed uint64
}

func (c *PlanConfig) fillDefaults() error {
	if c.Devices <= 0 {
		return fmt.Errorf("%w: Devices must be > 0", ErrBadPlan)
	}
	if c.TouchFraction == 0 {
		c.TouchFraction = 0.25
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"TouchFraction", c.TouchFraction}, {"DropRate", c.DropRate},
		{"DuplicateRate", c.DuplicateRate}, {"DelayRate", c.DelayRate},
		{"ExpireRate", c.ExpireRate}, {"SlowFraction", c.SlowFraction},
		{"TEEFraction", c.TEEFraction},
	} {
		// NaN compares false against both bounds — reject it explicitly,
		// or int(NaN·Devices) would slice the permutation out of range.
		if !(f.v >= 0 && f.v <= 1) {
			return fmt.Errorf("%w: %s %v outside [0,1]", ErrBadPlan, f.name, f.v)
		}
	}
	if sum := c.DropRate + c.DuplicateRate + c.DelayRate + c.ExpireRate; sum > 1 {
		return fmt.Errorf("%w: injection rates sum to %v > 1", ErrBadPlan, sum)
	}
	if c.Crashes < 0 {
		return fmt.Errorf("%w: Crashes must be >= 0", ErrBadPlan)
	}
	// Negative cycle counts would run injected delays backwards in
	// virtual time; negative attempt bounds would size a blackhole that
	// never closes.
	if c.DelayCycles < 0 || c.SlowCycles < 0 || c.TEEPenalty < 0 {
		return fmt.Errorf("%w: negative cycle counts %d/%d/%d",
			ErrBadPlan, c.DelayCycles, c.SlowCycles, c.TEEPenalty)
	}
	if c.Attempts < 0 {
		return fmt.Errorf("%w: Attempts must be >= 0", ErrBadPlan)
	}
	if c.DelayCycles == 0 {
		c.DelayCycles = 50_000
	}
	if c.Attempts <= 0 {
		c.Attempts = 8
	}
	if c.SlowCycles == 0 {
		c.SlowCycles = 200_000
	}
	if c.TEEPenalty == 0 {
		c.TEEPenalty = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Plan is a compiled chaos plan: the touched/slow/TEE-fault device sets
// plus the per-device injector factory. Safe for concurrent use.
type Plan struct {
	cfg     PlanConfig
	touched map[int]bool
	slow    map[int]bool
	tee     map[int]bool

	mu        sync.Mutex
	injectors []*Injector
}

// NewPlan compiles a plan. Device membership is drawn from the plan
// seed's SaltFault stream: a shuffled index permutation yields the
// touched set, whose head is the straggler set and tail the TEE-fault
// set — all pure functions of (Devices, fractions, Seed).
func NewPlan(cfg PlanConfig) (*Plan, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	p := &Plan{
		cfg:     cfg,
		touched: make(map[int]bool),
		slow:    make(map[int]bool),
		tee:     make(map[int]bool),
	}
	rng := core.NewRNG(cfg.Seed, core.SaltFault)
	perm := rng.Perm(cfg.Devices)
	tn := int(cfg.TouchFraction*float64(cfg.Devices) + 0.5)
	if tn > cfg.Devices {
		tn = cfg.Devices
	}
	touched := perm[:tn]
	for _, i := range touched {
		p.touched[i] = true
	}
	sn := int(cfg.SlowFraction*float64(tn) + 0.5)
	for _, i := range touched[:min(sn, tn)] {
		p.slow[i] = true
	}
	en := int(cfg.TEEFraction*float64(tn) + 0.5)
	for _, i := range touched[tn-min(en, tn):] {
		p.tee[i] = true
	}
	return p, nil
}

// Config returns the compiled (defaults-filled) configuration.
func (p *Plan) Config() PlanConfig { return p.cfg }

// Touches reports whether the plan injects faults on device index i.
func (p *Plan) Touches(i int) bool { return p.touched[i] }

// Slow reports whether device i is in the straggler set.
func (p *Plan) Slow(i int) bool { return p.slow[i] }

// TEEFault reports whether device i hits a transient TEE error at boot.
func (p *Plan) TEEFault(i int) bool { return p.tee[i] }

// TouchedCount returns how many devices the plan touches.
func (p *Plan) TouchedCount() int { return len(p.touched) }

// CrashPoints returns the device-completion counts at which the plan's
// shard crashes fire: Crashes points spread evenly across the run
// ((i+1)·devices/(crashes+1)), so the first crash lands mid-traffic and
// the last leaves room for recovery before the run drains.
func (p *Plan) CrashPoints() []int {
	if p.cfg.Crashes == 0 {
		return nil
	}
	pts := make([]int, 0, p.cfg.Crashes)
	for i := 0; i < p.cfg.Crashes; i++ {
		pt := (i + 1) * p.cfg.Devices / (p.cfg.Crashes + 1)
		if pt < 1 {
			pt = 1
		}
		pts = append(pts, pt)
	}
	return pts
}

// Injector returns device i's delivery path: the device's own seeded
// injector wrapping next for touched devices, next unchanged otherwise
// (untouched devices must not even share an RNG with the chaos).
func (p *Plan) Injector(i int, next cloud.Ingestor, clock *tz.Clock) cloud.Ingestor {
	if !p.touched[i] {
		return next
	}
	inj := &Injector{
		plan:  p,
		next:  next,
		clock: clock,
		rng:   core.NewRNG(core.DeriveSeed(p.cfg.Seed, core.SaltFault, i), core.SaltFault),
		slow:  p.slow[i],
	}
	p.mu.Lock()
	p.injectors = append(p.injectors, inj)
	p.mu.Unlock()
	return inj
}

// Stats sums every injector's counters.
func (p *Plan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total Stats
	for _, inj := range p.injectors {
		s := inj.Stats()
		total.Delivered += s.Delivered
		total.Drops += s.Drops
		total.Duplicates += s.Duplicates
		total.Delays += s.Delays
		total.Blackholes += s.Blackholes
		total.DelayCharged += s.DelayCharged
	}
	return total
}

// Stats counts one injector's (or a whole plan's) injections.
type Stats struct {
	// Delivered counts deliveries passed through (possibly delayed).
	Delivered uint64
	// Drops counts swallowed deliveries, including blackhole drops.
	Drops uint64
	// Duplicates counts extra same-seq deliveries sent after a success.
	Duplicates uint64
	// Delays counts deliveries delayed by DelayCycles before sending.
	Delays uint64
	// Blackholes counts expiry windows opened (frames doomed to expire).
	Blackholes uint64
	// DelayCharged is the total virtual time charged for delays.
	DelayCharged tz.Cycles
}

// Injected sums the individual injection events.
func (s Stats) Injected() uint64 { return s.Drops + s.Duplicates + s.Delays }

// Injector is one touched device's delivery path: it wraps the router
// (below the retry layer, above the ring) and decides per delivery —
// from the device's own PCG stream — whether to drop, duplicate, delay
// or blackhole the frame. A device's pipeline is sequential, so the
// decision sequence is deterministic per (plan seed, device index).
type Injector struct {
	plan  *Plan
	next  cloud.Ingestor
	clock *tz.Clock
	rng   *rand.Rand
	slow  bool

	mu        sync.Mutex
	blackhole int // remaining deliveries to swallow (expiry window)
	stats     Stats
}

var _ cloud.Ingestor = (*Injector)(nil)

// IngestMeta implements cloud.Ingestor.
func (inj *Injector) IngestMeta(deviceID string, frame []byte, meta cloud.FrameMeta) ([]byte, error) {
	cfg := inj.plan.cfg
	if inj.slow {
		// Straggler: every delivery pays extra virtual latency.
		inj.clock.Advance(cfg.SlowCycles)
	}
	inj.mu.Lock()
	if inj.blackhole > 0 {
		// Open expiry window: this frame's retries all vanish, so the
		// device's retry layer deterministically expires it.
		inj.blackhole--
		inj.stats.Drops++
		inj.mu.Unlock()
		return nil, fmt.Errorf("%w: %q seq %d (blackhole)", ErrInjectedDrop, deviceID, meta.Seq)
	}
	roll := inj.rng.Float64()
	var verdict int // 0 pass, 1 drop, 2 duplicate, 3 delay
	switch {
	case roll < cfg.ExpireRate:
		// Blackhole the frame: swallow this delivery and the next
		// Attempts-1 (its retries — the device pipeline is sequential).
		inj.blackhole = cfg.Attempts - 1
		inj.stats.Blackholes++
		inj.stats.Drops++
		verdict = 1
	case roll < cfg.ExpireRate+cfg.DropRate:
		inj.stats.Drops++
		verdict = 1
	case roll < cfg.ExpireRate+cfg.DropRate+cfg.DuplicateRate:
		inj.stats.Duplicates++
		verdict = 2
	case roll < cfg.ExpireRate+cfg.DropRate+cfg.DuplicateRate+cfg.DelayRate:
		inj.stats.Delays++
		inj.stats.DelayCharged += cfg.DelayCycles
		verdict = 3
	}
	if verdict != 1 {
		inj.stats.Delivered++
	}
	inj.mu.Unlock()

	switch verdict {
	case 1: // drop
		return nil, fmt.Errorf("%w: %q seq %d", ErrInjectedDrop, deviceID, meta.Seq)
	case 3: // delay, then deliver
		inj.clock.Advance(cfg.DelayCycles)
	}
	directive, err := inj.next.IngestMeta(deviceID, frame, meta)
	if verdict == 2 && err == nil {
		// Duplicate the delivery that just succeeded: same meta, same seq.
		// The shard's (device, seq) dedup must swallow it; whatever comes
		// back is discarded — the device already has its directive.
		_, _ = inj.next.IngestMeta(deviceID, frame, meta)
	}
	return directive, err
}

// Stats snapshots the injector's counters.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}
