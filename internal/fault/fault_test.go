package fault

import (
	"errors"
	"testing"

	"repro/internal/cloud"
	"repro/internal/supplicant"
	"repro/internal/tz"
)

type countIngestor struct {
	calls int
}

func (c *countIngestor) IngestMeta(deviceID string, frame []byte, meta cloud.FrameMeta) ([]byte, error) {
	c.calls++
	return []byte("ok"), nil
}

func TestPlanValidation(t *testing.T) {
	cases := []PlanConfig{
		{},                                // Devices required
		{Devices: 8, DropRate: 1.5},       // rate outside [0,1]
		{Devices: 8, TouchFraction: -0.1}, // fraction outside [0,1]
		{Devices: 8, DropRate: 0.6, DuplicateRate: 0.6}, // rates sum > 1
		{Devices: 8, Crashes: -1},                       // negative crashes
	}
	for i, cfg := range cases {
		if _, err := NewPlan(cfg); !errors.Is(err, ErrBadPlan) {
			t.Errorf("case %d: want ErrBadPlan, got %v", i, err)
		}
	}
	if _, err := NewPlan(PlanConfig{Devices: 8}); err != nil {
		t.Fatalf("zero-rate plan must be valid: %v", err)
	}
}

// TestPlanDeterminism: the touched/slow/TEE sets, the crash schedule and
// every injector's decision stream are pure functions of the config.
func TestPlanDeterminism(t *testing.T) {
	cfg := PlanConfig{
		Devices: 64, TouchFraction: 0.5, DropRate: 0.2, DuplicateRate: 0.2,
		DelayRate: 0.1, ExpireRate: 0.1, SlowFraction: 0.25, TEEFraction: 0.25,
		Crashes: 3, Seed: 99,
	}
	a, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	touched := 0
	for i := 0; i < cfg.Devices; i++ {
		if a.Touches(i) != b.Touches(i) || a.Slow(i) != b.Slow(i) || a.TEEFault(i) != b.TEEFault(i) {
			t.Fatalf("device %d membership diverged between identical plans", i)
		}
		if a.Touches(i) {
			touched++
		}
	}
	if touched != 32 {
		t.Fatalf("touched %d of 64 at fraction 0.5", touched)
	}
	pa, pb := a.CrashPoints(), b.CrashPoints()
	if len(pa) != cfg.Crashes || len(pb) != cfg.Crashes {
		t.Fatalf("crash points %v / %v, want %d each", pa, pb, cfg.Crashes)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("crash schedules diverged: %v vs %v", pa, pb)
		}
		if pa[i] <= 0 || pa[i] >= cfg.Devices {
			t.Fatalf("crash point %d outside the run", pa[i])
		}
		if i > 0 && pa[i] < pa[i-1] {
			t.Fatalf("crash points not ascending: %v", pa)
		}
	}

	// Drive one touched device's injector through both plans: the
	// decision sequences must match call for call.
	victim := -1
	for i := 0; i < cfg.Devices; i++ {
		if a.Touches(i) {
			victim = i
			break
		}
	}
	na, nb := &countIngestor{}, &countIngestor{}
	ia := a.Injector(victim, na, tz.NewClock())
	ib := b.Injector(victim, nb, tz.NewClock())
	for k := 0; k < 200; k++ {
		_, errA := ia.IngestMeta("device", nil, cloud.FrameMeta{Seq: uint64(k + 1)})
		_, errB := ib.IngestMeta("device", nil, cloud.FrameMeta{Seq: uint64(k + 1)})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("call %d: verdicts diverged: %v vs %v", k, errA, errB)
		}
	}
	if na.calls != nb.calls {
		t.Fatalf("downstream call counts diverged: %d vs %d", na.calls, nb.calls)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("plan stats diverged: %+v vs %+v", sa, sb)
	}
	if sa.Injected() == 0 {
		t.Fatal("200 deliveries at 60% injection rates injected nothing")
	}
}

// TestInjectorBlackhole: an expiry verdict swallows the delivery and the
// next Attempts-1 calls — the whole retry schedule of one frame — then
// the stream resumes.
func TestInjectorBlackhole(t *testing.T) {
	p, err := NewPlan(PlanConfig{Devices: 1, TouchFraction: 1, ExpireRate: 1, Attempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	next := &countIngestor{}
	inj := p.Injector(0, next, tz.NewClock())
	for k := 0; k < 8; k++ {
		_, err := inj.IngestMeta("device", nil, cloud.FrameMeta{Seq: uint64(k + 1)})
		if !errors.Is(err, ErrInjectedDrop) || !errors.Is(err, supplicant.ErrTransient) {
			t.Fatalf("call %d: blackholed delivery misclassified: %v", k, err)
		}
	}
	if next.calls != 0 {
		t.Fatalf("blackhole leaked %d deliveries downstream", next.calls)
	}
	st := p.Stats()
	if st.Blackholes != 2 || st.Drops != 8 {
		t.Fatalf("8 calls at ExpireRate 1 with Attempts 4: %+v (want 2 blackholes, 8 drops)", st)
	}
}

// TestUntouchedBypass: an untouched device's delivery path is the
// downstream ingestor itself — no wrapper, no shared RNG, no overhead.
func TestUntouchedBypass(t *testing.T) {
	p, err := NewPlan(PlanConfig{Devices: 4, TouchFraction: 0.25, DropRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	next := &countIngestor{}
	for i := 0; i < 4; i++ {
		if p.Touches(i) {
			continue
		}
		if got := p.Injector(i, next, tz.NewClock()); got != cloud.Ingestor(next) {
			t.Fatalf("untouched device %d got a wrapped path", i)
		}
	}
}
