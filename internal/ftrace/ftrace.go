// Package ftrace reproduces the paper's in-kernel tracing mechanism
// (§IV.2): "logging of driver function calls when a particular task, e.g.,
// recording a sound, is being executed. The logs are then analyzed to
// identify a minimal set of executed functions necessary for the task to
// complete."
//
// Instrumented driver functions report entry/exit to a Tracer; a Session
// brackets one task; analysis over one or more sessions yields the minimal
// function set handed to the TCB image builder (internal/tcb).
package ftrace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/tz"
)

// Event is one function entry in the trace log.
type Event struct {
	Seq   int       // monotonically increasing per tracer
	Name  string    // function name
	Depth int       // call nesting depth at entry
	At    tz.Cycles // virtual time of entry
}

// Trace is the completed log of one session.
type Trace struct {
	Task   string
	Events []Event
}

// Functions returns the unique function names in first-call order.
func (t Trace) Functions() []string {
	seen := make(map[string]bool, len(t.Events))
	var out []string
	for _, e := range t.Events {
		if !seen[e.Name] {
			seen[e.Name] = true
			out = append(out, e.Name)
		}
	}
	return out
}

// CallCounts returns how many times each function was entered.
func (t Trace) CallCounts() map[string]int {
	out := make(map[string]int)
	for _, e := range t.Events {
		out[e.Name]++
	}
	return out
}

// MaxDepth returns the deepest nesting observed.
func (t Trace) MaxDepth() int {
	max := 0
	for _, e := range t.Events {
		if e.Depth > max {
			max = e.Depth
		}
	}
	return max
}

// String renders the trace in an ftrace-like indented format.
func (t Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# task: %s (%d events)\n", t.Task, len(t.Events))
	for _, e := range t.Events {
		fmt.Fprintf(&b, "%8d | %s%s()\n", uint64(e.At), strings.Repeat("  ", e.Depth), e.Name)
	}
	return b.String()
}

// Tracer collects function-call events while enabled. It is safe for
// concurrent use; a disabled tracer adds only an atomic-scale overhead,
// mirroring nop-patched ftrace sites.
type Tracer struct {
	clock *tz.Clock

	mu      sync.Mutex
	enabled bool
	task    string
	seq     int
	depth   int
	events  []Event
}

// New creates a tracer reading timestamps from clock (may be nil).
func New(clock *tz.Clock) *Tracer {
	return &Tracer{clock: clock}
}

// Start begins a session for the named task, clearing previous events.
func (t *Tracer) Start(task string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enabled = true
	t.task = task
	t.seq = 0
	t.depth = 0
	t.events = nil
}

// Stop ends the session and returns the collected trace.
func (t *Tracer) Stop() Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enabled = false
	tr := Trace{Task: t.task, Events: t.events}
	t.events = nil
	return tr
}

// Enabled reports whether a session is active.
func (t *Tracer) Enabled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enabled
}

// Enter records entry into a function and returns the matching exit hook.
// Usage in instrumented code:
//
//	defer tracer.Enter("pcm_read")()
//
// A nil *Tracer is valid and records nothing, so un-instrumented builds of
// the driver need no branches at call sites.
func (t *Tracer) Enter(name string) func() {
	if t == nil {
		return func() {}
	}
	t.mu.Lock()
	if !t.enabled {
		t.mu.Unlock()
		return func() {}
	}
	var at tz.Cycles
	if t.clock != nil {
		at = t.clock.Now()
	}
	t.events = append(t.events, Event{Seq: t.seq, Name: name, Depth: t.depth, At: at})
	t.seq++
	t.depth++
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		if t.depth > 0 {
			t.depth--
		}
		t.mu.Unlock()
	}
}

// MinimalSet unions the functions observed across traces: the minimal set
// of driver functionality needed for the traced task(s), per the paper.
func MinimalSet(traces ...Trace) map[string]bool {
	out := make(map[string]bool)
	for _, tr := range traces {
		for _, e := range tr.Events {
			out[e.Name] = true
		}
	}
	return out
}

// SetNames returns the sorted names of a function set.
func SetNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
