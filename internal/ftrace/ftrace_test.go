package ftrace

import (
	"strings"
	"testing"

	"repro/internal/tz"
)

func TestTracerRecordsCallsInOrder(t *testing.T) {
	clock := tz.NewClock()
	tr := New(clock)
	tr.Start("capture")

	func() {
		defer tr.Enter("probe")()
		clock.Advance(10)
		func() {
			defer tr.Enter("clk_enable")()
			clock.Advance(5)
		}()
	}()
	func() {
		defer tr.Enter("pcm_open")()
	}()

	trace := tr.Stop()
	if trace.Task != "capture" {
		t.Errorf("Task = %q", trace.Task)
	}
	want := []string{"probe", "clk_enable", "pcm_open"}
	got := trace.Functions()
	if len(got) != len(want) {
		t.Fatalf("Functions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Functions[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if trace.Events[0].Depth != 0 || trace.Events[1].Depth != 1 || trace.Events[2].Depth != 0 {
		t.Errorf("depths = %d,%d,%d, want 0,1,0",
			trace.Events[0].Depth, trace.Events[1].Depth, trace.Events[2].Depth)
	}
	if trace.Events[1].At != 10 {
		t.Errorf("clk_enable at %d, want 10", trace.Events[1].At)
	}
}

func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := New(nil)
	done := tr.Enter("orphan")
	done()
	trace := tr.Stop()
	if len(trace.Events) != 0 {
		t.Errorf("disabled tracer recorded %d events", len(trace.Events))
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	defer tr.Enter("anything")() // must not panic
}

func TestTracerRestartClears(t *testing.T) {
	tr := New(nil)
	tr.Start("a")
	tr.Enter("f1")()
	_ = tr.Stop()
	tr.Start("b")
	tr.Enter("f2")()
	trace := tr.Stop()
	if fns := trace.Functions(); len(fns) != 1 || fns[0] != "f2" {
		t.Errorf("second session saw %v", fns)
	}
}

func TestTracerEnabled(t *testing.T) {
	tr := New(nil)
	if tr.Enabled() {
		t.Error("new tracer should be disabled")
	}
	tr.Start("x")
	if !tr.Enabled() {
		t.Error("started tracer should be enabled")
	}
	tr.Stop()
	if tr.Enabled() {
		t.Error("stopped tracer should be disabled")
	}
}

func TestCallCountsAndMaxDepth(t *testing.T) {
	tr := New(nil)
	tr.Start("t")
	for i := 0; i < 3; i++ {
		func() {
			defer tr.Enter("read")()
			func() {
				defer tr.Enter("dma")()
			}()
		}()
	}
	trace := tr.Stop()
	counts := trace.CallCounts()
	if counts["read"] != 3 || counts["dma"] != 3 {
		t.Errorf("counts = %v", counts)
	}
	if d := trace.MaxDepth(); d != 1 {
		t.Errorf("MaxDepth = %d, want 1", d)
	}
}

func TestMinimalSetUnion(t *testing.T) {
	a := Trace{Events: []Event{{Name: "f1"}, {Name: "f2"}}}
	b := Trace{Events: []Event{{Name: "f2"}, {Name: "f3"}}}
	set := MinimalSet(a, b)
	if len(set) != 3 || !set["f1"] || !set["f2"] || !set["f3"] {
		t.Errorf("MinimalSet = %v", set)
	}
	names := SetNames(set)
	if len(names) != 3 || names[0] != "f1" || names[2] != "f3" {
		t.Errorf("SetNames = %v", names)
	}
}

func TestTraceString(t *testing.T) {
	tr := New(nil)
	tr.Start("demo")
	func() {
		defer tr.Enter("outer")()
		func() {
			defer tr.Enter("inner")()
		}()
	}()
	s := tr.Stop().String()
	if !strings.Contains(s, "outer()") || !strings.Contains(s, "  inner()") {
		t.Errorf("String() = %q", s)
	}
	if !strings.Contains(s, "task: demo") {
		t.Errorf("String() missing task header: %q", s)
	}
}
