package metrics

// Fixed-bucket histograms for the telemetry registry (internal/obs).
// Unlike Recorder — which keeps every sample so percentiles are exact —
// a Histogram has a fixed memory footprint and a Merge that is a plain
// bucket-count addition, so per-shard histograms fold into a fleet view
// bit-identically regardless of merge order (the same property
// cloud.Audit.Merge gives the audit counters).

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts observations into fixed buckets. Bucket i counts
// samples v with v <= bounds[i] (and > bounds[i-1]); one overflow bucket
// counts samples above the last bound. Observe never allocates.
type Histogram struct {
	bounds []float64 // sorted upper bounds
	counts []uint64  // len(bounds)+1; last is the overflow bucket
	count  uint64
	sum    float64
}

// NewHistogram builds a histogram over the given upper bounds. Bounds
// are sorted and deduplicated; at least one bound is required.
func NewHistogram(bounds ...float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bucket bound")
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:1]
	for _, b := range bs[1:] {
		if b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	for _, b := range dedup {
		if math.IsNaN(b) {
			return nil, fmt.Errorf("metrics: NaN bucket bound")
		}
	}
	return &Histogram{bounds: dedup, counts: make([]uint64, len(dedup)+1)}, nil
}

// ExpBuckets returns n upper bounds growing geometrically from first by
// factor (the registry's default bucket layout).
func ExpBuckets(first, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := first
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe counts one sample. It never allocates (hot-path safe).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Bounds returns the bucket upper bounds (shared backing; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Buckets returns the per-bucket counts, overflow last (shared backing;
// do not mutate).
func (h *Histogram) Buckets() []uint64 { return h.counts }

// Quantile estimates the q-th quantile (0..1) from the bucket counts:
// the upper bound of the bucket holding the q-th observation. The
// overflow bucket reports the last finite bound (the estimate is
// saturating, not extrapolated).
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			return h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Merge folds the others' buckets into h. Every histogram must share
// h's bucket layout — merging is pure per-bucket addition, so shard
// merge order can never change a count bit. Nil histograms are skipped
// (matching Recorder.Merge).
func (h *Histogram) Merge(others ...*Histogram) error {
	for _, o := range others {
		if o == nil {
			continue
		}
		if len(o.bounds) != len(h.bounds) {
			return fmt.Errorf("metrics: merging histograms with %d vs %d buckets", len(o.bounds), len(h.bounds))
		}
		for i, b := range o.bounds {
			if b != h.bounds[i] {
				return fmt.Errorf("metrics: merging histograms with different bounds (%g vs %g at %d)", b, h.bounds[i], i)
			}
		}
		for i, c := range o.counts {
			h.counts[i] += c
		}
		h.count += o.count
		h.sum += o.sum
	}
	return nil
}

// Clone returns an independent copy (merge targets start from a clone so
// per-shard histograms stay untouched).
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		bounds: h.bounds, // immutable after construction
		counts: append([]uint64(nil), h.counts...),
		count:  h.count,
		sum:    h.sum,
	}
}
