// Package metrics provides the measurement utilities the experiment
// harness uses: latency recorders with percentile summaries, throughput
// accounting, and plain-text table/series rendering so every table and
// figure of EXPERIMENTS.md regenerates as aligned console output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Recorder accumulates latency-style samples (unit-agnostic).
type Recorder struct {
	samples []float64
	sorted  bool
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Observe appends one sample.
func (r *Recorder) Observe(v float64) {
	r.samples = append(r.samples, v)
	r.sorted = false
}

// Count returns the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Merge folds the others' samples into r (cross-shard / cross-device
// aggregation: percentiles of the merged population, not averages of
// per-shard percentiles).
func (r *Recorder) Merge(others ...*Recorder) {
	for _, o := range others {
		if o == nil {
			continue
		}
		r.samples = append(r.samples, o.samples...)
	}
	r.sorted = false
}

// Throughput converts an item count over elapsed seconds to items/s
// (0 when elapsed is not positive).
func Throughput(items int, elapsedSeconds float64) float64 {
	if elapsedSeconds <= 0 {
		return 0
	}
	return float64(items) / elapsedSeconds
}

// Mean returns the sample mean (incremental form, immune to the sum
// overflowing even for extreme samples).
func (r *Recorder) Mean() float64 {
	var m float64
	for i, v := range r.samples {
		m += (v - m) / float64(i+1)
	}
	return m
}

// Stddev returns the population standard deviation (Welford's algorithm,
// overflow-safe and exact-zero for constant samples).
func (r *Recorder) Stddev() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	var mean, m2 float64
	for i, v := range r.samples {
		delta := v - mean
		mean += delta / float64(i+1)
		m2 += delta * (v - mean)
	}
	return math.Sqrt(m2 / float64(len(r.samples)))
}

func (r *Recorder) sort() {
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
func (r *Recorder) Percentile(p float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[len(r.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(r.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return r.samples[rank]
}

// Min and Max return the extremes.
func (r *Recorder) Min() float64 { return r.Percentile(0) }

// Max returns the largest sample.
func (r *Recorder) Max() float64 { return r.Percentile(100) }

// Summary renders mean/p50/p99 in one line with the given unit.
func (r *Recorder) Summary(unit string) string {
	return fmt.Sprintf("n=%d mean=%.1f%s p50=%.1f%s p99=%.1f%s",
		r.Count(), r.Mean(), unit, r.Percentile(50), unit, r.Percentile(99), unit)
}

// Table renders aligned plain-text tables (the harness's "paper table"
// output format).
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a labelled (x, y) sequence: one line of a "figure".
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String renders the series as aligned x/y pairs (figure data, printable
// and plottable).
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# series: %s (%s vs %s)\n", s.Name, s.YLabel, s.XLabel)
	for i := range s.X {
		fmt.Fprintf(&b, "%12s  %12s\n", formatFloat(s.X[i]), formatFloat(s.Y[i]))
	}
	return b.String()
}

// Figure groups series that share axes.
type Figure struct {
	Title  string
	Series []*Series
}

// String renders all series.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	for _, s := range f.Series {
		b.WriteString(s.String())
	}
	return b.String()
}
