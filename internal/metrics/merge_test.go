package metrics

import "testing"

func TestRecorderMerge(t *testing.T) {
	a, b, c := NewRecorder(), NewRecorder(), NewRecorder()
	for i := 1; i <= 50; i++ {
		a.Observe(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Observe(float64(i))
	}
	a.Merge(b, c, nil)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", a.Count())
	}
	// Percentiles must come from the merged population, not the first
	// recorder's.
	if got := a.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := a.Max(); got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
}

func TestRecorderMergeAfterSort(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.Observe(10)
	_ = a.Percentile(50) // forces the sorted state
	b.Observe(5)
	a.Merge(b)
	if got := a.Min(); got != 5 {
		t.Fatalf("min after merge = %v, want 5", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, 4); got != 25 {
		t.Fatalf("throughput = %v, want 25", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Fatalf("throughput at zero elapsed = %v, want 0", got)
	}
}
