package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: percentiles are bounded by min/max, monotone in p, and the
// mean lies within [min, max].
func TestPercentileProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		r := NewRecorder()
		n := 0
		for _, v := range raw {
			// Recorder samples are latencies/counts: bound the domain to
			// physically meaningful magnitudes (differences must not
			// overflow float64).
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e18 {
				continue
			}
			r.Observe(v)
			n++
		}
		if n == 0 {
			return true
		}
		min, max := r.Min(), r.Max()
		if min > max {
			return false
		}
		prev := min
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
			v := r.Percentile(p)
			if v < min || v > max || v < prev {
				return false
			}
			prev = v
		}
		m := r.Mean()
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: merging per-shard histograms of a partitioned event stream
// yields bit-identical bucket counts to one histogram observing the
// whole stream — the same associativity Recorder.Merge has for samples,
// here checked down to the individual bucket counters.
func TestHistogramMergeProperty(t *testing.T) {
	bounds := ExpBuckets(1, 4, 10)
	prop := func(raw []float64, shardsRaw uint8) bool {
		var vals []float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			vals = append(vals, v)
		}
		shards := int(shardsRaw%7) + 1
		single, err := NewHistogram(bounds...)
		if err != nil {
			return false
		}
		parts := make([]*Histogram, shards)
		for i := range parts {
			if parts[i], err = NewHistogram(bounds...); err != nil {
				return false
			}
		}
		for i, v := range vals {
			single.Observe(v)
			parts[i%shards].Observe(v)
		}
		merged, err := NewHistogram(bounds...)
		if err != nil {
			return false
		}
		if err := merged.Merge(parts...); err != nil {
			return false
		}
		if merged.Count() != single.Count() {
			return false
		}
		for i, c := range merged.Buckets() {
			if c != single.Buckets()[i] {
				return false
			}
		}
		// Quantile estimates come straight from the counts, so they must
		// agree too.
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if merged.Quantile(q) != single.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: stddev is zero iff all samples are equal (within float64).
func TestStddevProperty(t *testing.T) {
	prop := func(v float64, n uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		r := NewRecorder()
		for i := 0; i <= int(n%20); i++ {
			r.Observe(v)
		}
		return r.Stddev() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
