package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestRecorderStats(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Observe(float64(i))
	}
	if r.Count() != 100 {
		t.Errorf("Count = %d", r.Count())
	}
	if math.Abs(r.Mean()-50.5) > 1e-9 {
		t.Errorf("Mean = %v", r.Mean())
	}
	if r.Percentile(50) != 50 {
		t.Errorf("p50 = %v", r.Percentile(50))
	}
	if r.Percentile(99) != 99 {
		t.Errorf("p99 = %v", r.Percentile(99))
	}
	if r.Min() != 1 || r.Max() != 100 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
	if r.Stddev() <= 0 {
		t.Errorf("Stddev = %v", r.Stddev())
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder()
	if r.Mean() != 0 || r.Percentile(50) != 0 || r.Stddev() != 0 {
		t.Error("empty recorder stats should be 0")
	}
}

func TestRecorderObserveAfterPercentile(t *testing.T) {
	r := NewRecorder()
	r.Observe(10)
	_ = r.Percentile(50)
	r.Observe(1) // must re-sort
	if r.Min() != 1 {
		t.Errorf("Min = %v after late observe", r.Min())
	}
}

func TestRecorderSummary(t *testing.T) {
	r := NewRecorder()
	r.Observe(5)
	s := r.Summary("us")
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "us") {
		t.Errorf("Summary = %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1: capture throughput", "mode", "MB/s", "overhead")
	tb.AddRow("baseline", 12.5, "1.0x")
	tb.AddRow("secure", 4.166667, "3.0x")
	out := tb.String()
	if !strings.Contains(out, "Table 1") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "secure") {
		t.Error("missing rows")
	}
	if !strings.Contains(out, "4.167") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and rows share prefix width for column 2.
	if !strings.Contains(lines[1], "mode") {
		t.Errorf("header = %q", lines[1])
	}
}

func TestTableIntegerFloats(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(3.0)
	if !strings.Contains(tb.String(), "3") || strings.Contains(tb.String(), "3.000") {
		t.Errorf("integer float rendering: %q", tb.String())
	}
}

func TestSeriesAndFigure(t *testing.T) {
	s := &Series{Name: "secure", XLabel: "buffer", YLabel: "latency"}
	s.Add(256, 100)
	s.Add(4096, 40)
	out := s.String()
	if !strings.Contains(out, "secure") || !strings.Contains(out, "256") {
		t.Errorf("Series = %q", out)
	}
	f := &Figure{Title: "Fig A", Series: []*Series{s}}
	if !strings.Contains(f.String(), "Fig A") {
		t.Error("figure title missing")
	}
}
