package peripheral

import (
	"errors"
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/i2s"
)

func newMicFixture(t *testing.T) (*Microphone, *i2s.Controller) {
	t.Helper()
	ctrl := i2s.NewController("i2s0", 65536)
	if err := ctrl.WriteReg(i2s.RegCtrl, i2s.CtrlRXEnable); err != nil {
		t.Fatalf("enable controller: %v", err)
	}
	mic, err := NewMicrophone(ctrl, i2s.DefaultFormat())
	if err != nil {
		t.Fatalf("NewMicrophone: %v", err)
	}
	return mic, ctrl
}

func TestNewMicrophoneRejectsStereo(t *testing.T) {
	ctrl := i2s.NewController("i2s0", 64)
	if _, err := NewMicrophone(ctrl, i2s.Format{SampleRate: 16000, BitsPerSample: 16, Channels: 2}); err == nil {
		t.Error("stereo microphone accepted")
	}
	if _, err := NewMicrophone(ctrl, i2s.Format{SampleRate: 100, BitsPerSample: 16, Channels: 1}); err == nil {
		t.Error("bad rate accepted")
	}
}

func TestMicrophonePumpDeliversAudio(t *testing.T) {
	mic, ctrl := newMicFixture(t)
	tone := audio.Sine(16000, 440, 0.5, 20*time.Millisecond)
	mic.Load(tone)
	wantBytes := len(tone.Samples) * 2

	var pushed int
	for {
		n, err := mic.PumpBytes(256)
		if errors.Is(err, ErrNoSignal) {
			break
		}
		if err != nil {
			t.Fatalf("PumpBytes: %v", err)
		}
		pushed += n
	}
	if pushed != wantBytes {
		t.Errorf("pushed %d bytes, want %d", pushed, wantBytes)
	}
	if mic.BytesPushed() != uint64(wantBytes) {
		t.Errorf("BytesPushed = %d", mic.BytesPushed())
	}
	wire := ctrl.PopBytes(wantBytes)
	samples, err := i2s.DecodeFrames(wire, i2s.DefaultFormat())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := tone.ToInt16()
	for i := range want {
		if d := int(samples[i]) - int(want[i]); d < -1 || d > 1 {
			t.Fatalf("sample %d = %d, want %d", i, samples[i], want[i])
		}
	}
}

func TestMicrophoneLoadQueues(t *testing.T) {
	mic, _ := newMicFixture(t)
	a := audio.Sine(16000, 100, 0.3, 10*time.Millisecond)
	b := audio.Sine(16000, 200, 0.3, 10*time.Millisecond)
	mic.Load(a)
	if _, err := mic.PumpBytes(64); err != nil {
		t.Fatalf("PumpBytes: %v", err)
	}
	mic.Load(b)
	want := len(a.Samples) + len(b.Samples) - 32 // 64 bytes = 32 samples gone
	if got := mic.Remaining(); got != want {
		t.Errorf("Remaining = %d, want %d", got, want)
	}
}

func TestMicrophoneEmpty(t *testing.T) {
	mic, _ := newMicFixture(t)
	if _, err := mic.PumpBytes(64); !errors.Is(err, ErrNoSignal) {
		t.Errorf("PumpBytes on empty = %v, want ErrNoSignal", err)
	}
}

func TestMicrophoneControllerOff(t *testing.T) {
	ctrl := i2s.NewController("i2s0", 64)
	mic, err := NewMicrophone(ctrl, i2s.DefaultFormat())
	if err != nil {
		t.Fatalf("NewMicrophone: %v", err)
	}
	mic.Load(audio.Sine(16000, 100, 0.3, 10*time.Millisecond))
	if _, err := mic.PumpBytes(64); !errors.Is(err, i2s.ErrControllerOff) {
		t.Errorf("PumpBytes with controller off = %v", err)
	}
}

func TestImageBasics(t *testing.T) {
	im, err := NewImage(4, 3)
	if err != nil {
		t.Fatalf("NewImage: %v", err)
	}
	im.Set(2, 1, 200)
	if im.At(2, 1) != 200 {
		t.Error("Set/At mismatch")
	}
	f := im.Floats()
	if len(f) != 12 {
		t.Fatalf("Floats len = %d", len(f))
	}
	if f[1*4+2] < 0.78 || f[1*4+2] > 0.79 {
		t.Errorf("normalized pixel = %v", f[6])
	}
	if _, err := NewImage(0, 5); !errors.Is(err, ErrBadImage) {
		t.Errorf("NewImage(0,5) = %v", err)
	}
}

func TestSynthesizeImageScenesDiffer(t *testing.T) {
	empty := SynthesizeImage(SceneEmpty, 1)
	person := SynthesizeImage(ScenePerson, 1)
	if empty.W != person.W || empty.H != person.H {
		t.Fatal("scene dimensions differ")
	}
	// A person frame must be brighter (head blob + torso).
	sum := func(im Image) int {
		total := 0
		for _, p := range im.Pix {
			total += int(p)
		}
		return total
	}
	if sum(person) <= sum(empty) {
		t.Error("person scene not brighter than empty scene")
	}
	// Determinism.
	again := SynthesizeImage(ScenePerson, 1)
	for i := range person.Pix {
		if person.Pix[i] != again.Pix[i] {
			t.Fatal("same seed produced different frames")
		}
	}
}

func TestSceneLabels(t *testing.T) {
	if SceneEmpty.Sensitive() || !ScenePerson.Sensitive() {
		t.Error("sensitivity labels wrong")
	}
	if SceneEmpty.String() != "empty" || ScenePerson.String() != "person" {
		t.Error("scene names wrong")
	}
	if Scene(9).String() != "scene(9)" {
		t.Error("unknown scene name wrong")
	}
}

func TestCameraQueueCapture(t *testing.T) {
	cam := NewCamera(7)
	cam.Queue(SceneEmpty, ScenePerson)
	if cam.Pending() != 2 {
		t.Fatalf("Pending = %d", cam.Pending())
	}
	im1, s1, ok := cam.Capture()
	if !ok || s1 != SceneEmpty || im1.W == 0 {
		t.Errorf("first capture = %v scene %v", ok, s1)
	}
	_, s2, ok := cam.Capture()
	if !ok || s2 != ScenePerson {
		t.Errorf("second capture = %v scene %v", ok, s2)
	}
	if _, _, ok := cam.Capture(); ok {
		t.Error("empty camera returned a frame")
	}
}

func TestCameraFramesVaryBetweenCaptures(t *testing.T) {
	cam := NewCamera(7)
	cam.Queue(ScenePerson, ScenePerson)
	a, _, _ := cam.Capture()
	b, _, _ := cam.Capture()
	same := true
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive person frames identical; jitter missing")
	}
}
