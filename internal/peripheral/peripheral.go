// Package peripheral models the user-facing input devices of the paper's
// smart-home setup: an I2S digital microphone (the POC's primary target)
// and a simple camera. Both produce deterministic synthetic data so
// experiments are reproducible end to end.
package peripheral

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"repro/internal/audio"
	"repro/internal/i2s"
)

// Errors returned by the package.
var (
	// ErrNoSignal is returned when pumping a microphone with nothing loaded.
	ErrNoSignal = errors.New("peripheral: no signal loaded")
	// ErrBadImage is returned for invalid image dimensions.
	ErrBadImage = errors.New("peripheral: invalid image")
)

// Microphone is an I2S digital microphone wired to a controller. Loading a
// PCM signal models sound reaching the diaphragm; Pump shifts the next
// samples onto the I2S bus (a real mic is clocked continuously; the pump
// granularity stands in for elapsed bus time).
type Microphone struct {
	ctrl *i2s.Controller

	mu     sync.Mutex
	format i2s.Format
	signal audio.PCM
	pos    int
	pushed uint64

	// Pump scratch (guarded by mu): quantized samples and their wire
	// encoding are recycled across PumpBytes calls.
	sampleBuf []int32
	wireBuf   []byte
}

// NewMicrophone wires a microphone to the controller with the format.
func NewMicrophone(ctrl *i2s.Controller, f i2s.Format) (*Microphone, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if f.Channels != 1 {
		return nil, fmt.Errorf("%w: microphone is mono", i2s.ErrBadFormat)
	}
	return &Microphone{ctrl: ctrl, format: f}, nil
}

// Load queues a PCM signal behind any remaining samples. The samples are
// copied into the microphone's own buffer (compacted in place), so the
// caller may reuse p's backing slice immediately and repeated loads do
// not re-clone the queued remainder.
func (m *Microphone) Load(p audio.PCM) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pos >= len(m.signal.Samples) {
		m.signal.Rate = p.Rate
		m.signal.Samples = append(m.signal.Samples[:0], p.Samples...)
		m.pos = 0
		return
	}
	// Compact the unplayed remainder to the front, then append — same
	// result as cloning remainder+new, without the quadratic re-copy.
	rem := copy(m.signal.Samples, m.signal.Samples[m.pos:])
	m.signal.Samples = m.signal.Samples[:rem]
	if m.signal.Rate == 0 {
		m.signal.Rate = p.Rate
	}
	if p.Rate == m.signal.Rate {
		m.signal.Samples = append(m.signal.Samples, p.Samples...)
	}
	m.pos = 0
}

// Remaining returns the number of unplayed samples.
func (m *Microphone) Remaining() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.signal.Samples) - m.pos
}

// PumpBytes shifts up to n bytes of encoded audio into the controller and
// returns the number of wire bytes pushed. Returns ErrNoSignal when the
// loaded signal is exhausted.
func (m *Microphone) PumpBytes(n int) (int, error) {
	m.mu.Lock()
	bpw := m.format.BytesPerWord()
	wantSamples := n / bpw
	avail := len(m.signal.Samples) - m.pos
	if avail <= 0 {
		m.mu.Unlock()
		return 0, ErrNoSignal
	}
	if wantSamples > avail {
		wantSamples = avail
	}
	if wantSamples == 0 {
		m.mu.Unlock()
		return 0, nil
	}
	chunk := m.signal.Samples[m.pos : m.pos+wantSamples]
	m.pos += wantSamples
	f := m.format
	// Quantize under the lock (chunk aliases the signal buffer, which a
	// concurrent Load may compact in place), detaching the scratch while
	// it is in flight — a rare concurrent pump simply allocates fresh.
	sampleBuf, wireBuf := m.sampleBuf, m.wireBuf
	m.sampleBuf, m.wireBuf = nil, nil
	if cap(sampleBuf) < len(chunk) {
		sampleBuf = make([]int32, len(chunk))
	}
	samples := sampleBuf[:len(chunk)]
	for i, s := range chunk {
		v := math.Round(s * 32768)
		if v > 32767 {
			v = 32767
		} else if v < -32768 {
			v = -32768
		}
		samples[i] = int32(v)
	}
	m.mu.Unlock()

	wire, err := i2s.EncodeFramesInto(wireBuf, samples, f)
	if err != nil {
		m.mu.Lock()
		m.pos -= wantSamples
		m.mu.Unlock()
		return 0, err
	}
	// PushWire runs outside m.mu: the controller copies the bytes into
	// its FIFO and may invoke the IRQ callback synchronously, which must
	// be free to call back into the microphone.
	pushErr := m.ctrl.PushWire(wire)
	m.mu.Lock()
	m.sampleBuf, m.wireBuf = samples[:0], wire[:0]
	if pushErr != nil {
		// The receiver rejected the data (e.g. RX disabled); rewind so the
		// signal is not silently consumed.
		m.pos -= wantSamples
		m.mu.Unlock()
		return 0, pushErr
	}
	m.pushed += uint64(len(wire))
	m.mu.Unlock()
	return len(wire), nil
}

// BytesPushed returns the total wire bytes delivered to the controller.
func (m *Microphone) BytesPushed() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pushed
}

// Image is a grayscale frame with pixel values in [0,255].
type Image struct {
	W, H int
	Pix  []uint8
}

// NewImage allocates a zeroed frame.
func NewImage(w, h int) (Image, error) {
	if w <= 0 || h <= 0 {
		return Image{}, fmt.Errorf("%w: %dx%d", ErrBadImage, w, h)
	}
	return Image{W: w, H: h, Pix: make([]uint8, w*h)}, nil
}

// At returns the pixel at (x, y).
func (im Image) At(x, y int) uint8 { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y).
func (im Image) Set(x, y int, v uint8) { im.Pix[y*im.W+x] = v }

// Floats returns the pixels normalized to [0,1].
func (im Image) Floats() []float32 {
	out := make([]float32, len(im.Pix))
	for i, p := range im.Pix {
		out[i] = float32(p) / 255
	}
	return out
}

// Scene labels what the synthetic camera sees.
type Scene int

const (
	// SceneEmpty is an unoccupied room: sensor noise and a weak gradient.
	SceneEmpty Scene = iota + 1
	// ScenePerson adds a bright person-like blob with a vertical torso
	// edge — the sensitive content the camera classifier must catch.
	ScenePerson
)

// String returns the scene name.
func (s Scene) String() string {
	switch s {
	case SceneEmpty:
		return "empty"
	case ScenePerson:
		return "person"
	default:
		return fmt.Sprintf("scene(%d)", int(s))
	}
}

// Sensitive reports whether the scene counts as sensitive content.
func (s Scene) Sensitive() bool { return s == ScenePerson }

// SynthesizeImage renders a deterministic 24x24 frame of the scene.
func SynthesizeImage(s Scene, seed uint64) Image {
	const size = 24
	rng := rand.New(rand.NewPCG(seed, uint64(s)*0x9e3779b97f4a7c15+1))
	im, _ := NewImage(size, size)
	// Base: sensor noise over a soft vertical illumination gradient.
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			base := 40 + 40*float64(y)/size
			noise := rng.Float64() * 25
			im.Set(x, y, clampPix(base+noise))
		}
	}
	if s != ScenePerson {
		return im
	}
	// Person: head blob + torso column, position jittered per frame.
	cx := 8 + rng.IntN(8)
	cy := 6 + rng.IntN(4)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dx, dy := float64(x-cx), float64(y-cy)
			head := 170 * math.Exp(-(dx*dx+dy*dy)/9)
			var torso float64
			if y > cy+2 && x >= cx-2 && x <= cx+2 {
				torso = 120
			}
			v := float64(im.At(x, y)) + head + torso
			im.Set(x, y, clampPix(v))
		}
	}
	return im
}

func clampPix(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Camera produces frames of queued scenes.
type Camera struct {
	mu     sync.Mutex
	queue  []Scene
	seed   uint64
	frames uint64
}

// NewCamera creates a camera with a deterministic seed.
func NewCamera(seed uint64) *Camera { return &Camera{seed: seed} }

// Queue appends scenes to capture.
func (c *Camera) Queue(scenes ...Scene) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queue = append(c.queue, scenes...)
}

// Pending returns the number of queued scenes.
func (c *Camera) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Capture renders the next queued scene. The boolean is false when the
// queue is empty.
func (c *Camera) Capture() (Image, Scene, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return Image{}, 0, false
	}
	s := c.queue[0]
	c.queue = c.queue[1:]
	c.frames++
	return SynthesizeImage(s, c.seed+c.frames), s, true
}
