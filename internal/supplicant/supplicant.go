// Package supplicant models the OP-TEE user-space daemon (tee-supplicant)
// that "provides OS-level services such as network communication" to the
// secure world (paper §II). It runs in the normal world and is therefore
// untrusted: the relay's security argument depends on the supplicant only
// ever carrying AEAD-sealed frames it cannot read. The daemon records
// everything it forwards so tests and the leakage experiment can audit
// exactly what an adversarial supplicant would observe.
package supplicant

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/optee"
	"repro/internal/tz"
)

// Errors returned by the daemon.
var (
	// ErrUnknownService is returned for unsupported RPC kinds.
	ErrUnknownService = errors.New("supplicant: unknown service")
	// ErrNoRoute is returned when no network sink matches the target.
	ErrNoRoute = errors.New("supplicant: no route to target")
	// ErrShed marks a delivery the remote frontend refused under
	// admission pressure (load shedding). It lives here, on the NetSink
	// contract, so both sides of the daemon can classify it: sinks
	// (cloud.ErrShed wraps it) signal "carried correctly, dropped by
	// policy", and the daemon counts it as Stats.Shed rather than a
	// transport error.
	ErrShed = errors.New("supplicant: delivery shed by remote admission policy")
	// ErrTransient marks a delivery failure the sender may retry: the
	// frame was neither admitted nor refused by policy (a dropped uplink
	// attempt, a crashed shard mid-restart). Sinks wrap it so retry layers
	// can classify without importing them.
	ErrTransient = errors.New("supplicant: transient delivery failure")
	// ErrExpired marks a delivery whose retry budget ran out: the frame
	// was never admitted, and the sender accounts it explicitly as
	// expired — never silently lost. The daemon counts it as
	// Stats.Expired, parallel to ErrShed/Stats.Shed.
	ErrExpired = errors.New("supplicant: delivery expired after retry budget")
)

// NetSink receives payloads forwarded by the supplicant's network service
// and returns the remote peer's reply. The cloud endpoint implements it.
type NetSink interface {
	Deliver(payload []byte) ([]byte, error)
}

// Stats counts serviced requests.
type Stats struct {
	NetSends uint64
	TimeGets uint64
	Logs     uint64
	Errors   uint64
	// Shed counts deliveries the remote frontend dropped by admission
	// policy (ErrShed) — payloads the daemon carried correctly, kept
	// separate from transport Errors.
	Shed uint64
	// Expired counts deliveries whose retry budget ran out (ErrExpired):
	// the frame was retried deterministically and given up on explicitly,
	// kept separate from both Shed and transport Errors.
	Expired uint64
}

// Supplicant is the RPC daemon instance.
type Supplicant struct {
	clock *tz.Clock
	cost  tz.CostModel

	mu       sync.Mutex
	routes   map[string]NetSink
	log      []string
	observed [][]byte // every network payload the daemon could inspect
	stats    Stats
}

var _ optee.RPCHandler = (*Supplicant)(nil)

// New creates a supplicant daemon.
func New(clock *tz.Clock, cost tz.CostModel) *Supplicant {
	return &Supplicant{
		clock:  clock,
		cost:   cost,
		routes: make(map[string]NetSink),
	}
}

// Route binds a network target name to a sink.
func (s *Supplicant) Route(target string, sink NetSink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.routes[target] = sink
}

// HandleRPC implements optee.RPCHandler.
func (s *Supplicant) HandleRPC(req optee.RPCRequest) (optee.RPCResponse, error) {
	// Each RPC is a syscall-weight round trip in the normal world.
	s.clock.Advance(s.cost.Syscall)
	switch req.Kind {
	case optee.RPCNetSend:
		return s.netSend(req)
	case optee.RPCTimeGet:
		s.mu.Lock()
		s.stats.TimeGets++
		s.mu.Unlock()
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, uint64(s.clock.Now()))
		return optee.RPCResponse{Payload: out}, nil
	case optee.RPCLog:
		s.mu.Lock()
		s.stats.Logs++
		s.log = append(s.log, string(req.Payload))
		s.mu.Unlock()
		return optee.RPCResponse{}, nil
	default:
		s.mu.Lock()
		s.stats.Errors++
		s.mu.Unlock()
		return optee.RPCResponse{}, fmt.Errorf("%w: %v", ErrUnknownService, req.Kind)
	}
}

func (s *Supplicant) netSend(req optee.RPCRequest) (optee.RPCResponse, error) {
	s.mu.Lock()
	sink, ok := s.routes[req.Target]
	if ok {
		s.stats.NetSends++
		// The daemon sees every byte it forwards; remember them so the
		// experiment can measure what a hostile supplicant learns.
		s.observed = append(s.observed, append([]byte(nil), req.Payload...))
	} else {
		s.stats.Errors++
	}
	s.mu.Unlock()
	if !ok {
		return optee.RPCResponse{}, fmt.Errorf("%w: %q", ErrNoRoute, req.Target)
	}
	// Per-byte transmission cost.
	s.clock.Advance(tz.Cycles(len(req.Payload)) * s.cost.CopyPerByte)
	reply, err := sink.Deliver(req.Payload)
	if err != nil {
		s.mu.Lock()
		switch {
		case errors.Is(err, ErrShed):
			s.stats.Shed++ // carried correctly, refused by policy — not a fault
		case errors.Is(err, ErrExpired):
			s.stats.Expired++ // retried, budget exhausted — explicit give-up
		default:
			s.stats.Errors++
		}
		s.mu.Unlock()
		return optee.RPCResponse{}, fmt.Errorf("deliver to %q: %w", req.Target, err)
	}
	return optee.RPCResponse{Payload: reply}, nil
}

// Observed returns copies of every network payload the daemon forwarded.
func (s *Supplicant) Observed() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.observed))
	for i, p := range s.observed {
		out[i] = append([]byte(nil), p...)
	}
	return out
}

// Log returns the diagnostic lines TAs asked the daemon to record.
func (s *Supplicant) Log() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.log...)
}

// Stats returns a snapshot of serviced requests.
func (s *Supplicant) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
