package supplicant

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/internal/optee"
	"repro/internal/tz"
)

type fakeSink struct {
	got   [][]byte
	reply []byte
	err   error
}

func (f *fakeSink) Deliver(payload []byte) ([]byte, error) {
	f.got = append(f.got, append([]byte(nil), payload...))
	return f.reply, f.err
}

func newSupplicant() *Supplicant {
	return New(tz.NewClock(), tz.DefaultCostModel())
}

func TestNetSendRoutesAndRecords(t *testing.T) {
	s := newSupplicant()
	sink := &fakeSink{reply: []byte("ok")}
	s.Route("cloud", sink)

	resp, err := s.HandleRPC(optee.RPCRequest{
		Kind: optee.RPCNetSend, Target: "cloud", Payload: []byte("frame-1"),
	})
	if err != nil {
		t.Fatalf("HandleRPC: %v", err)
	}
	if string(resp.Payload) != "ok" {
		t.Errorf("reply = %q", resp.Payload)
	}
	if len(sink.got) != 1 || string(sink.got[0]) != "frame-1" {
		t.Errorf("sink saw %q", sink.got)
	}
	obs := s.Observed()
	if len(obs) != 1 || !bytes.Equal(obs[0], []byte("frame-1")) {
		t.Errorf("observed = %q", obs)
	}
	if st := s.Stats(); st.NetSends != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestNetSendClassifiesShed: a delivery the remote frontend shed by
// admission policy is counted as Shed, not as a transport error — the
// daemon carried the payload correctly.
func TestNetSendClassifiesShed(t *testing.T) {
	s := newSupplicant()
	sink := &fakeSink{err: fmt.Errorf("frontend says: %w", ErrShed)}
	s.Route("cloud", sink)
	_, err := s.HandleRPC(optee.RPCRequest{
		Kind: optee.RPCNetSend, Target: "cloud", Payload: []byte("frame"),
	})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("HandleRPC = %v, want ErrShed in chain", err)
	}
	if st := s.Stats(); st.Shed != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want Shed=1 Errors=0", st)
	}
}

func TestNetSendNoRoute(t *testing.T) {
	s := newSupplicant()
	_, err := s.HandleRPC(optee.RPCRequest{Kind: optee.RPCNetSend, Target: "nowhere"})
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("HandleRPC = %v, want ErrNoRoute", err)
	}
	if st := s.Stats(); st.Errors != 1 {
		t.Errorf("Errors = %d", st.Errors)
	}
}

func TestNetSendSinkError(t *testing.T) {
	s := newSupplicant()
	boom := errors.New("connection reset")
	s.Route("cloud", &fakeSink{err: boom})
	if _, err := s.HandleRPC(optee.RPCRequest{Kind: optee.RPCNetSend, Target: "cloud"}); !errors.Is(err, boom) {
		t.Errorf("HandleRPC = %v, want wrapped sink error", err)
	}
}

func TestTimeGet(t *testing.T) {
	clock := tz.NewClock()
	s := New(clock, tz.DefaultCostModel())
	clock.Advance(5000)
	resp, err := s.HandleRPC(optee.RPCRequest{Kind: optee.RPCTimeGet})
	if err != nil {
		t.Fatalf("HandleRPC: %v", err)
	}
	got := binary.LittleEndian.Uint64(resp.Payload)
	// The handler itself advances the clock by the syscall cost.
	if got < 5000 {
		t.Errorf("time = %d, want >= 5000", got)
	}
}

func TestLogService(t *testing.T) {
	s := newSupplicant()
	if _, err := s.HandleRPC(optee.RPCRequest{Kind: optee.RPCLog, Payload: []byte("ta: hello")}); err != nil {
		t.Fatalf("HandleRPC: %v", err)
	}
	log := s.Log()
	if len(log) != 1 || log[0] != "ta: hello" {
		t.Errorf("Log = %v", log)
	}
}

func TestUnknownService(t *testing.T) {
	s := newSupplicant()
	if _, err := s.HandleRPC(optee.RPCRequest{Kind: optee.RPCKind(77)}); !errors.Is(err, ErrUnknownService) {
		t.Errorf("HandleRPC = %v, want ErrUnknownService", err)
	}
}

func TestHandleRPCAdvancesClock(t *testing.T) {
	clock := tz.NewClock()
	s := New(clock, tz.DefaultCostModel())
	s.Route("cloud", &fakeSink{})
	before := clock.Now()
	if _, err := s.HandleRPC(optee.RPCRequest{
		Kind: optee.RPCNetSend, Target: "cloud", Payload: make([]byte, 1000),
	}); err != nil {
		t.Fatalf("HandleRPC: %v", err)
	}
	// Syscall cost + 1000 bytes of copy cost.
	cost := tz.DefaultCostModel()
	want := cost.Syscall + 1000*cost.CopyPerByte
	if got := clock.Now() - before; got < want {
		t.Errorf("RPC cost %d cycles, want >= %d", got, want)
	}
}
