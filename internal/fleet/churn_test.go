package fleet

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// fingerprint reduces one device's run to the counters the churn
// invariant protects: everything the provider learned from it plus its
// own outcome tallies.
func fingerprint(r *core.DeviceResult) string {
	if r == nil {
		return "<nil>"
	}
	if r.Session != nil {
		a := r.Session.CloudAudit
		forwarded, flagged := 0, 0
		for _, u := range r.Session.Utterances {
			if u.Forwarded {
				forwarded++
			}
			if u.Flagged {
				flagged++
			}
		}
		return fmt.Sprintf("speaker events=%d tokens=%d sens=%d bytes=%d utts=%d fwd=%d flag=%d radio=%d",
			a.Events, a.TokensSeen, a.SensitiveTokens, a.AudioBytes,
			len(r.Session.Utterances), forwarded, flagged, r.Session.RadioBytes)
	}
	c := r.Camera
	return fmt.Sprintf("doorbell frames=%d persons=%d fwd=%d fwdPersons=%d blocked=%d",
		c.Frames, c.PersonFrames, c.ForwardedFrames, c.ForwardedPersons, c.BlockedEmpties)
}

// TestChurnInvariant is the tentpole's correctness claim: run the same
// fleet twice — once static, once with 25% joins, 25% leaves, a mid-run
// shard drain and a weighted shard addition — and every device that did
// not churn must produce bit-identical audit counters. Rebalancing and
// churn may move traffic; they may never change it.
func TestChurnInvariant(t *testing.T) {
	base := Config{
		Devices:    32,
		Shards:     4,
		Utterances: 2,
		Frames:     2,
		Seed:       13,
		Attest:     true,
	}
	static, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	churned := base
	churned.Churn = &ChurnSpec{JoinFraction: 0.25, LeaveFraction: 0.25}
	churned.Rebalance = &RebalanceSpec{AtFraction: 0.5, DrainShard: 0, AddShards: 1, AddWeight: 2}
	elastic, err := Run(churned)
	if err != nil {
		t.Fatal(err)
	}

	if elastic.Joined == 0 || elastic.Left == 0 {
		t.Fatalf("churn did not churn: joined %d, left %d", elastic.Joined, elastic.Left)
	}
	if elastic.LostFrames() != 0 {
		t.Fatalf("lost %d frames under churn", elastic.LostFrames())
	}
	if elastic.Audit.Events != elastic.ExpectedCloudEvents-int(elastic.ShedFrames()) {
		t.Fatalf("audit events %d, expected %d (departed audits lost?)",
			elastic.Audit.Events, elastic.ExpectedCloudEvents)
	}
	if elastic.Rebalance == nil || !elastic.Rebalance.Fired ||
		elastic.Rebalance.DrainedShard != "shard-00" || len(elastic.Rebalance.AddedShards) != 1 {
		t.Fatalf("rebalance did not run as scheduled: %+v", elastic.Rebalance)
	}
	sawDrained := false
	for _, s := range elastic.ShardStats {
		sawDrained = sawDrained || s.Drained
	}
	if !sawDrained {
		t.Fatal("drained shard missing from stats")
	}

	left := make(map[int]bool, len(elastic.Leavers))
	for _, i := range elastic.Leavers {
		left[i] = true
	}
	compared := 0
	for i := 0; i < base.Devices; i++ {
		if left[i] {
			continue
		}
		if got, want := fingerprint(elastic.DeviceResults[i]), fingerprint(static.DeviceResults[i]); got != want {
			t.Fatalf("non-churned device %d diverged under churn:\n churn: %s\nstatic: %s", i, got, want)
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no non-churned devices compared")
	}

	// Leavers departed cleanly: truncated workloads, released sessions.
	for _, i := range elastic.Leavers {
		res := elastic.DeviceResults[i]
		if res.Session != nil && len(res.Session.Utterances) >= base.Utterances {
			t.Fatalf("leaver %d processed a full workload (%d items)", i, len(res.Session.Utterances))
		}
	}
	// Released sessions are gone from the verifier's view: every device
	// that attests (all but baseline doorbells, which never uplink) and
	// did not leave is still attested; every leaver is released.
	want := 0
	for i, res := range elastic.DeviceResults {
		attests := !(res.Spec.Kind == core.DeviceDoorbell && res.Spec.Mode == core.ModeBaseline)
		if attests && !left[i] {
			want++
		}
	}
	if elastic.AttestedDevices != want {
		t.Fatalf("attested %d devices at end of run, want %d (leavers released)",
			elastic.AttestedDevices, want)
	}
	// The priority lane carried the doorbell (flagged-event) traffic and
	// nothing was shed from it — or at all, at this load.
	if elastic.PriorityFrames() == 0 {
		t.Fatal("no frames rode the priority lane")
	}
	if elastic.ShedFrames() != 0 {
		t.Fatalf("fixed policy shed %d frames", elastic.ShedFrames())
	}
}

// TestChurnDeterminism: the same churned config reruns to the same
// aggregate accounting (arrival order is seeded, not scheduled).
func TestChurnDeterminism(t *testing.T) {
	cfg := Config{
		Devices:    16,
		Shards:     3,
		Utterances: 2,
		Frames:     2,
		Seed:       5,
		Churn:      &ChurnSpec{JoinFraction: 0.3, LeaveFraction: 0.2},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Churn = &ChurnSpec{JoinFraction: 0.3, LeaveFraction: 0.2}
	b, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Joined != b.Joined || a.Left != b.Left {
		t.Fatalf("churn counts differ: %d/%d vs %d/%d", a.Joined, a.Left, b.Joined, b.Left)
	}
	if a.Audit.Events != b.Audit.Events || a.Audit.TokensSeen != b.Audit.TokensSeen ||
		a.Audit.SensitiveTokens != b.Audit.SensitiveTokens || a.Audit.AudioBytes != b.Audit.AudioBytes {
		t.Fatalf("audits differ across identical churned seeds:\n%+v\n%+v", a.Audit, b.Audit)
	}
	for i := range a.DeviceResults {
		if got, want := fingerprint(a.DeviceResults[i]), fingerprint(b.DeviceResults[i]); got != want {
			t.Fatalf("device %d differs across reruns:\n%s\n%s", i, got, want)
		}
	}
}

// TestJoinersAttestAtCurrentMinVersion: joiners arriving around a staged
// rollout run the full provision→attest→handshake flow against the
// verifier's state at join time, and the whole elastic fleet converges
// on the published version — which then becomes the ingest floor.
func TestJoinersAttestAtCurrentMinVersion(t *testing.T) {
	res, err := Run(Config{
		Devices:    24,
		Shards:     3,
		Utterances: 2,
		Frames:     2,
		Seed:       17,
		Rollout:    &RolloutSpec{CanaryFraction: 0.1},
		Churn:      &ChurnSpec{JoinFraction: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Joined == 0 {
		t.Fatal("no joiners")
	}
	if res.Rollout == nil || !res.Rollout.Converged {
		t.Fatalf("elastic rollout did not converge: %+v versions %v", res.Rollout, res.ModelVersions)
	}
	if res.Rollout.MinVersion != res.Rollout.ToVersion {
		t.Fatalf("ingest floor %d, want %d", res.Rollout.MinVersion, res.Rollout.ToVersion)
	}
	if res.LostFrames() != 0 {
		t.Fatalf("lost %d frames", res.LostFrames())
	}
	if len(res.ModelVersions) != 1 || res.ModelVersions[res.Rollout.ToVersion] == 0 {
		t.Fatalf("fleet (joiners included) not converged: %v", res.ModelVersions)
	}
}

// TestRolloutAbortEmitsRollbacks is the PR's bugfix regression test:
// Rollout.Abort used to leave devices silently on the base pack; now
// every device held back by an abort leaves a structured rollback record
// with the abort reason.
func TestRolloutAbortEmitsRollbacks(t *testing.T) {
	cfg := Config{
		Devices:          4,
		DoorbellFraction: -1,
		Mix:              MixSpec{core.ModeSecureFilter: 1}, // all secure-filter speakers
		Utterances:       1,
		Seed:             9,
		Rollout:          &RolloutSpec{CanaryFraction: 0.25},
	}
	specs, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = cfg.fillDefaults()
	if err := core.Pretrain(specs); err != nil {
		t.Fatal(err)
	}
	st, err := newAttestState(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	// A phantom canary takes the single slot, so the real device is held
	// on the base pack; then the canary "fails" and the rollout aborts.
	_ = st.rollout.Target("phantom-canary")
	d, err := core.NewDevice(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	id := specs[0].DeviceID
	if err := st.provision(d, id, tenantFor(cfg, 0)); err != nil {
		t.Fatal(err)
	}
	if got := d.ModelVersion(); got != st.base.Version {
		t.Fatalf("held device at v%d, want base v%d", got, st.base.Version)
	}
	st.rollout.Abort("canary failed healthcheck")
	if err := st.converge(d, id, tenantFor(cfg, 0), false); err != nil {
		t.Fatal(err)
	}

	if len(st.rollbacks) != 1 {
		t.Fatalf("rollback records: %+v, want 1", st.rollbacks)
	}
	rb := st.rollbacks[0]
	if rb.Device != id || rb.FromVersion != st.base.Version ||
		rb.ToVersion != st.next.Version || rb.Reason != "canary failed healthcheck" {
		t.Fatalf("bad rollback record: %+v", rb)
	}

	// A leaver never blocks on the verdict even while the rollout is
	// still staged (regression guard for worker-pool wedging).
	d2, err := core.NewDevice(specs[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := st.provision(d2, specs[1].DeviceID, tenantFor(cfg, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.converge(d2, specs[1].DeviceID, tenantFor(cfg, 1), true); err != nil {
		t.Fatal(err)
	}
	if len(st.rollbacks) != 1 {
		t.Fatalf("leaver must not add a rollback record: %+v", st.rollbacks)
	}
}
